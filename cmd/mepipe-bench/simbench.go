package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"mepipe/internal/opt"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

// simReport is the BENCH_sim.json document: candidate-evaluation
// throughput of the three simulator entry points on the artifact's
// canonical point, plus the steady-state allocation count of the
// incremental path. Every incremental result is cross-checked bitwise
// against a full replay before anything is timed.
type simReport struct {
	Note       string `json:"note"`
	Go         string `json:"go"`
	Arch       string `json:"arch"`
	Cores      int    `json:"cores"`
	P          int    `json:"p"`
	V          int    `json:"v"`
	S          int    `json:"s"`
	N          int    `json:"n"`
	Candidates int    `json:"candidates"`

	// The top-level rates are the all-cores row, kept flat for
	// compatibility with earlier baselines; Rows carries the full
	// per-core-count breakdown (GOMAXPROCS=1 and all cores).
	FullPerSec  float64 `json:"full_candidates_per_sec"`
	IncrPerSec  float64 `json:"incremental_candidates_per_sec"`
	BatchPerSec float64 `json:"batched_candidates_per_sec"`

	IncrSpeedup  float64 `json:"incremental_speedup"`
	BatchSpeedup float64 `json:"batched_speedup"`

	Rows []simThroughput `json:"rows"`

	AllocsPerCandidate float64 `json:"allocs_per_candidate"`
}

// simThroughput is one GOMAXPROCS configuration's measured rates. The
// full and incremental paths are single-threaded, so their rates pin the
// scheduler overhead; the batched path is the one that scales.
type simThroughput struct {
	Cores       int     `json:"cores"`
	FullPerSec  float64 `json:"full_candidates_per_sec"`
	IncrPerSec  float64 `json:"incremental_candidates_per_sec"`
	BatchPerSec float64 `json:"batched_candidates_per_sec"`

	IncrSpeedup  float64 `json:"incremental_speedup"`
	BatchSpeedup float64 `json:"batched_speedup"`
}

// simLCG is a tiny deterministic generator for the candidate walk, so
// BENCH_sim.json measures the same workload on every machine.
type simLCG uint64

func (l *simLCG) next(n int) int {
	*l = *l*6364136223846793005 + 1442695040888963407
	return int((uint64(*l) >> 33) % uint64(n))
}

// simDisplace moves ops[from] to position to, shifting the ops between
// (the same displacement primitive the optimizer's operators use).
func simDisplace(ops []sched.Op, from, to int) {
	op := ops[from]
	if from < to {
		copy(ops[from:], ops[from+1:to+1])
	} else {
		copy(ops[to+1:], ops[to:from])
	}
	ops[to] = op
}

func simClone(s *sched.Schedule) *sched.Schedule {
	c := *s
	c.Stages = make([][]sched.Op, len(s.Stages))
	for k := range s.Stages {
		c.Stages[k] = append([]sched.Op(nil), s.Stages[k]...)
	}
	return &c
}

// simCandidates walks deterministic local moves from the seed, keeping
// the first n distinct orders that simulate successfully (invalid moves
// are reverted, exactly like rejected annealer proposals).
func simCandidates(seed *sched.Schedule, o sim.Options, n int) ([]*sched.Schedule, error) {
	rng := simLCG(1)
	cur := simClone(seed)
	out := make([]*sched.Schedule, 0, n)
	for tries := 0; len(out) < n && tries < 64*n; tries++ {
		cand := simClone(cur)
		k := rng.next(len(cand.Stages))
		ops := cand.Stages[k]
		if len(ops) < 2 {
			continue
		}
		switch rng.next(3) {
		case 0: // adjacent swap
			i := rng.next(len(ops) - 1)
			ops[i], ops[i+1] = ops[i+1], ops[i]
		case 1: // short shift
			from := rng.next(len(ops))
			to := from + rng.next(7) - 3
			if to < 0 {
				to = 0
			}
			if to >= len(ops) {
				to = len(ops) - 1
			}
			if to == from {
				continue
			}
			simDisplace(ops, from, to)
		default: // long displace
			from := rng.next(len(ops))
			to := rng.next(len(ops))
			if to == from {
				continue
			}
			simDisplace(ops, from, to)
		}
		co := o
		co.Sched = cand
		if _, err := sim.Run(co); err != nil {
			continue
		}
		out = append(out, cand)
		cur = cand
	}
	if len(out) < n {
		return nil, fmt.Errorf("candidate walk stalled at %d/%d valid orders", len(out), n)
	}
	return out, nil
}

// runSimBench measures candidate-evaluation throughput at the artifact's
// canonical point: full sim.Run replay vs one incremental Session vs
// batched EvaluateMany, over the same deterministic candidate set. It
// refuses to report if any incremental result diverges bitwise from the
// full replay.
func runSimBench(candidates int, out string) error {
	a, err := opt.Discovered()
	if err != nil {
		return err
	}
	seed, err := a.PresetSchedule()
	if err != nil {
		return err
	}
	o := sim.Options{Costs: a.Costs(), MakespanOnly: true}
	cands, err := simCandidates(seed, o, candidates)
	if err != nil {
		return err
	}

	so := o
	so.Sched = cands[0]
	se, err := sim.NewSession(so)
	if err != nil {
		return err
	}
	// Correctness gate before any timing: every candidate must evaluate
	// bitwise-identically through the session.
	for i, c := range cands {
		co := o
		co.Sched = c
		full, err := sim.Run(co)
		if err != nil {
			return fmt.Errorf("full replay of candidate %d: %w", i, err)
		}
		inc, err := se.Eval(c)
		if err != nil {
			return fmt.Errorf("incremental replay of candidate %d: %w", i, err)
		}
		if math.Float64bits(full.IterTime) != math.Float64bits(inc.IterTime) {
			return fmt.Errorf("candidate %d diverges: full %.17g, incremental %.17g", i, full.IterTime, inc.IterTime)
		}
	}

	const minDur = 500 * time.Millisecond
	timeLoop := func(eval func(i int) error) (float64, error) {
		done := 0
		t0 := time.Now()
		for time.Since(t0) < minDur {
			for i := range cands {
				if err := eval(i); err != nil {
					return 0, err
				}
			}
			done += len(cands)
		}
		return float64(done) / time.Since(t0).Seconds(), nil
	}

	// measure times all three paths at the current GOMAXPROCS setting.
	measure := func(cores int) (simThroughput, error) {
		prev := runtime.GOMAXPROCS(cores)
		defer runtime.GOMAXPROCS(prev)
		row := simThroughput{Cores: cores}
		var err error
		if row.FullPerSec, err = timeLoop(func(i int) error {
			co := o
			co.Sched = cands[i]
			_, err := sim.Run(co)
			return err
		}); err != nil {
			return row, err
		}
		if row.IncrPerSec, err = timeLoop(func(i int) error {
			_, err := se.Eval(cands[i])
			return err
		}); err != nil {
			return row, err
		}
		if row.BatchPerSec, err = timeLoop(func(i int) error {
			if i != 0 {
				return nil // one EvaluateMany call covers the whole set
			}
			rs, err := sim.EvaluateMany(context.Background(), cands, o, 0)
			if err != nil {
				return err
			}
			for j, r := range rs {
				if r == nil {
					return fmt.Errorf("batched evaluation dropped candidate %d", j)
				}
			}
			return nil
		}); err != nil {
			return row, err
		}
		if row.FullPerSec > 0 {
			row.IncrSpeedup = row.IncrPerSec / row.FullPerSec
			row.BatchSpeedup = row.BatchPerSec / row.FullPerSec
		}
		return row, nil
	}

	allCores := runtime.GOMAXPROCS(0)
	row1, err := measure(1)
	if err != nil {
		return err
	}
	rowN, err := measure(allCores)
	if err != nil {
		return err
	}

	// Steady-state allocations of one incremental evaluation, after the
	// timing loops above have warmed every buffer.
	const allocRounds = 200
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for r := 0; r < allocRounds; r++ {
		if _, err := se.Eval(cands[r%len(cands)]); err != nil {
			return err
		}
	}
	runtime.ReadMemStats(&after)
	allocs := float64(after.Mallocs-before.Mallocs) / allocRounds

	rep := simReport{
		Note: "simulator fast-path throughput at the discovered-schedule artifact's point; " +
			"regenerate with `make bench-sim`",
		Go: runtime.Version(), Arch: runtime.GOARCH, Cores: runtime.NumCPU(),
		P: a.P, V: a.V, S: a.S, N: a.N,
		Candidates:         len(cands),
		FullPerSec:         rowN.FullPerSec,
		IncrPerSec:         rowN.IncrPerSec,
		BatchPerSec:        rowN.BatchPerSec,
		IncrSpeedup:        rowN.IncrSpeedup,
		BatchSpeedup:       rowN.BatchSpeedup,
		Rows:               []simThroughput{row1, rowN},
		AllocsPerCandidate: allocs,
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close() //nolint:errcheck // encode error wins
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	fmt.Printf("sim bench: P=%d V=%d S=%d N=%d, %d candidates, %s on %s (%d cores)\n",
		rep.P, rep.V, rep.S, rep.N, rep.Candidates, rep.Go, rep.Arch, rep.Cores)
	for _, row := range rep.Rows {
		fmt.Printf("  [%d core(s)]\n", row.Cores)
		fmt.Printf("    full replay   %.0f candidates/s\n", row.FullPerSec)
		fmt.Printf("    incremental   %.0f candidates/s (%.1fx)\n", row.IncrPerSec, row.IncrSpeedup)
		fmt.Printf("    batched       %.0f candidates/s (%.1fx)\n", row.BatchPerSec, row.BatchSpeedup)
	}
	fmt.Printf("  incremental steady state: %.2f allocs/candidate\n", rep.AllocsPerCandidate)
	fmt.Printf("  report        written to %s\n", out)
	return nil
}
