// Command mepipe-bench regenerates the paper's evaluation tables and
// figures from the reproduction's models and simulator, and load-tests
// the mepipe-serve planning server.
//
// Examples:
//
//	mepipe-bench                # every experiment
//	mepipe-bench -exp fig8      # one experiment
//	mepipe-bench -list          # what exists
//	mepipe-bench -serve-load    # drive the planning server, write BENCH_serve.json
//	mepipe-bench -opt           # replay the discovered-schedule artifact, write BENCH_opt.json
//	mepipe-bench -sim           # measure simulator fast-path throughput, write BENCH_sim.json
//	mepipe-bench -sweep         # measure grid-search sweep-engine throughput, write BENCH_sweep.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	v1 "mepipe/api/v1"
	"mepipe/internal/bench"
	"mepipe/internal/opt"
	"mepipe/internal/serve"
	"mepipe/internal/sim"
)

func main() {
	var (
		exp       = flag.String("exp", "", "run a single experiment by id (see -list)")
		list      = flag.Bool("list", false, "list available experiments")
		format    = flag.String("format", "text", "output format: text or csv")
		serveLoad = flag.Bool("serve-load", false, "load-test an in-process planning server and write a latency/cache report")
		serveReqs = flag.Int("serve-requests", 200, "requests to issue in -serve-load mode")
		serveConc = flag.Int("serve-concurrency", 8, "parallel clients in -serve-load mode")
		serveOut  = flag.String("serve-out", "BENCH_serve.json", "report file written by -serve-load")
		optBench  = flag.Bool("opt", false, "replay the checked-in discovered-schedule artifact's optimization and write a throughput report")
		optIters  = flag.Int("opt-iters", 0, "override the artifact's annealing rounds in -opt mode (0 = the recorded count)")
		optOut    = flag.String("opt-out", "BENCH_opt.json", "report file written by -opt")
		simBench  = flag.Bool("sim", false, "measure simulator candidate-evaluation throughput (full vs incremental vs batched) and write a report")
		simCands  = flag.Int("sim-candidates", 512, "candidate schedules to evaluate in -sim mode")
		simOut    = flag.String("sim-out", "BENCH_sim.json", "report file written by -sim")
		sweep     = flag.Bool("sweep", false, "measure multi-system grid-search throughput (sweep engine vs the pre-sweep path) and write a report")
		sweepMinS = flag.Float64("sweep-min-s", 2.0, "minimum measured duration per row in -sweep mode")
		sweepOut  = flag.String("sweep-out", "BENCH_sweep.json", "report file written by -sweep")
	)
	flag.Parse()

	if *sweep {
		if err := runSweepBench(*sweepMinS, *sweepOut); err != nil {
			fmt.Fprintln(os.Stderr, "mepipe-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *simBench {
		if err := runSimBench(*simCands, *simOut); err != nil {
			fmt.Fprintln(os.Stderr, "mepipe-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *serveLoad {
		if err := runServeLoad(*serveReqs, *serveConc, *serveOut); err != nil {
			fmt.Fprintln(os.Stderr, "mepipe-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *optBench {
		if err := runOptBench(*optIters, *optOut); err != nil {
			fmt.Fprintln(os.Stderr, "mepipe-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Desc)
		}
		return
	}
	exps := bench.Experiments()
	if *exp != "" {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "mepipe-bench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		exps = []bench.Experiment{e}
	}
	for _, e := range exps {
		t0 := time.Now()
		r, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mepipe-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		var werr error
		switch *format {
		case "text":
			werr = r.WriteText(os.Stdout)
		case "csv":
			fmt.Printf("# %s: %s\n", r.ID, r.Title)
			werr = r.WriteCSV(os.Stdout)
			fmt.Println()
		default:
			werr = fmt.Errorf("unknown format %q", *format)
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "mepipe-bench:", werr)
			os.Exit(1)
		}
		if *format == "text" {
			fmt.Printf("  (generated in %v)\n\n", time.Since(t0).Round(time.Millisecond))
		}
	}
}

// optReport is the BENCH_opt.json document: the artifact's point, the
// preset baseline vs the schedule the replayed search discovered, and the
// search throughput on this machine.
type optReport struct {
	Note string `json:"note"`
	P    int    `json:"p"`
	V    int    `json:"v"`
	S    int    `json:"s"`
	N    int    `json:"n"`

	Preset           string  `json:"preset"`
	PresetIterTime   float64 `json:"preset_iter_time"`
	PresetBubble     float64 `json:"preset_bubble"`
	StartedFrom      string  `json:"started_from"`
	HEFTIterTime     float64 `json:"heft_iter_time,omitempty"`
	BestIterTime     float64 `json:"best_iter_time"`
	BestBubble       float64 `json:"best_bubble"`
	Gain             float64 `json:"gain"`
	ArtifactIterTime float64 `json:"artifact_iter_time"`

	Seed      int64 `json:"seed"`
	Iters     int   `json:"iters"`
	Proposals int   `json:"proposals"`

	Proposed         int     `json:"proposed"`
	Infeasible       int     `json:"infeasible"`
	Evaluated        int     `json:"evaluated"`
	Accepted         int     `json:"accepted"`
	Improved         int     `json:"improved"`
	AcceptRate       float64 `json:"accept_rate"`
	CandidatesPerSec float64 `json:"candidates_per_sec"`
	ElapsedS         float64 `json:"elapsed_s"`
}

// runOptBench replays the checked-in discovered-schedule artifact's
// optimization — same point, same seed — and measures the search's
// throughput on this machine. With the artifact's full round count the
// replay rediscovers the recorded schedule exactly (the search is
// deterministic); -opt-iters shortens it for smoke runs.
func runOptBench(iters int, out string) error {
	a, err := opt.Discovered()
	if err != nil {
		return err
	}
	best, presetSched, err := a.BestPreset()
	if err != nil {
		return err
	}
	o := opt.Options{
		Seed:      a.Opt.Seed,
		Iters:     a.Opt.Iters,
		Proposals: a.Opt.Proposals,
		Budget:    a.Budget(),
	}
	if iters > 0 {
		o.Iters = iters
	}
	t0 := time.Now()
	res, err := opt.Optimize(context.Background(), presetSched, a.Costs(), o)
	if err != nil {
		return err
	}
	elapsed := time.Since(t0).Seconds()

	presetRun, err := sim.Run(sim.Options{Sched: presetSched, Costs: a.Costs()})
	if err != nil {
		return err
	}
	bestRun, err := sim.Run(sim.Options{Sched: res.Schedule, Costs: a.Costs()})
	if err != nil {
		return err
	}

	rep := optReport{
		Note: a.Note, P: a.P, V: a.V, S: a.S, N: a.N,
		Preset:           best.Name,
		PresetIterTime:   res.BaseTime,
		PresetBubble:     presetRun.BubbleRatio,
		StartedFrom:      res.Seed,
		HEFTIterTime:     res.HEFTTime,
		BestIterTime:     res.BestTime,
		BestBubble:       bestRun.BubbleRatio,
		Gain:             res.Gain(),
		ArtifactIterTime: a.Opt.IterTime,
		Seed:             o.Seed, Iters: o.Iters, Proposals: o.Proposals,
		Proposed: res.Proposed, Infeasible: res.Infeasible,
		Evaluated: res.Evaluated, Accepted: res.Accepted, Improved: res.Improved,
		ElapsedS: elapsed,
	}
	if o.Iters > 0 {
		rep.AcceptRate = float64(res.Accepted) / float64(o.Iters)
	}
	if elapsed > 0 {
		rep.CandidatesPerSec = float64(res.Proposed) / elapsed
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close() //nolint:errcheck // encode error wins
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	fmt.Printf("opt replay: P=%d V=%d S=%d N=%d, %d rounds x %d proposals, seed %d\n",
		rep.P, rep.V, rep.S, rep.N, rep.Iters, rep.Proposals, rep.Seed)
	fmt.Printf("  preset     %s: %.3f (bubble %.1f%%)\n", rep.Preset, rep.PresetIterTime, 100*rep.PresetBubble)
	fmt.Printf("  discovered %.3f (bubble %.1f%%, %.2f%% faster, from the %s seed)\n",
		rep.BestIterTime, 100*rep.BestBubble, 100*rep.Gain, rep.StartedFrom)
	fmt.Printf("  search     %d proposed (%d infeasible), %.0f candidates/s, accept rate %.2f\n",
		rep.Proposed, rep.Infeasible, rep.CandidatesPerSec, rep.AcceptRate)
	fmt.Printf("  report     written to %s\n", out)
	return nil
}

// runServeLoad boots the planning server in-process, drives it with a
// realistic request mix (a handful of distinct planning documents cycled
// by many concurrent clients), and writes the measured p50/p99 latency and
// cache hit rate to out.
func runServeLoad(requests, concurrency int, out string) error {
	s := serve.New(serve.Options{})

	// Four distinct 7b planning documents on the paper's single-server
	// 4090 testbed: small enough that a cold evaluation is quick, distinct
	// enough that the cache has real work to do.
	var docs [][]byte
	for _, gbs := range []int{8, 16, 24, 32} {
		doc, err := json.Marshal(v1.PlanRequest{
			System:   "mepipe",
			Model:    v1.ModelSpec{Preset: "7b"},
			Cluster:  v1.ClusterSpec{Preset: "rtx4090", Servers: 1},
			Training: v1.TrainingSpec{GlobalBatch: gbs},
			Parallel: &v1.ParallelSpec{PP: 8},
		})
		if err != nil {
			return err
		}
		docs = append(docs, doc)
	}

	rep, err := serve.RunLoad(context.Background(), s.Handler(), docs, serve.LoadOptions{
		Requests:    requests,
		Concurrency: concurrency,
	})
	if err != nil {
		return err
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close() //nolint:errcheck // encode error wins
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	fmt.Printf("serve load: %d requests x %d clients over %d documents on %s\n",
		rep.Requests, rep.Concurrency, rep.Documents, rep.Endpoint)
	fmt.Printf("  latency   p50 %.2f ms, p99 %.2f ms, mean %.2f ms, max %.2f ms\n",
		rep.P50S*1e3, rep.P99S*1e3, rep.MeanS*1e3, rep.MaxS*1e3)
	fmt.Printf("  cache     %.1f%% hit rate (%d hits, %d misses, %d coalesced), %d errors\n",
		100*rep.HitRate, rep.Hits, rep.Misses, rep.Coalesced, rep.Errors)
	fmt.Printf("  volume    %.0f req/s over %.2f s\n", rep.PerSecond, rep.ElapsedS)
	fmt.Printf("  report    written to %s\n", out)
	return nil
}
