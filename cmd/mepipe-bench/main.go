// Command mepipe-bench regenerates the paper's evaluation tables and
// figures from the reproduction's models and simulator.
//
// Examples:
//
//	mepipe-bench                # every experiment
//	mepipe-bench -exp fig8      # one experiment
//	mepipe-bench -list          # what exists
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mepipe/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "", "run a single experiment by id (see -list)")
		list   = flag.Bool("list", false, "list available experiments")
		format = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Desc)
		}
		return
	}
	exps := bench.Experiments()
	if *exp != "" {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "mepipe-bench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		exps = []bench.Experiment{e}
	}
	for _, e := range exps {
		t0 := time.Now()
		r, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mepipe-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		var werr error
		switch *format {
		case "text":
			werr = r.WriteText(os.Stdout)
		case "csv":
			fmt.Printf("# %s: %s\n", r.ID, r.Title)
			werr = r.WriteCSV(os.Stdout)
			fmt.Println()
		default:
			werr = fmt.Errorf("unknown format %q", *format)
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "mepipe-bench:", werr)
			os.Exit(1)
		}
		if *format == "text" {
			fmt.Printf("  (generated in %v)\n\n", time.Since(t0).Round(time.Millisecond))
		}
	}
}
