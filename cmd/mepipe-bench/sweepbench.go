package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/strategy"
)

// sweepRow is one measured configuration of the grid-search benchmark.
type sweepRow struct {
	// Path is "reference" (the pre-sweep per-point search path, kept in
	// tree as strategy.SearchReference) or "sweep" (the streaming engine).
	Path  string `json:"path"`
	Cores int    `json:"cores"`
	// GridPointsPerSec is enumerated grid points processed per second
	// (both paths walk the identical grid, so the rates are comparable).
	GridPointsPerSec float64 `json:"grid_points_per_sec"`
	// PassSeconds is the wall time of one full multi-system pass.
	PassSeconds float64 `json:"pass_seconds"`
	Passes      int     `json:"passes"`
}

// sweepReport is the BENCH_sweep.json document: the sweep engine measured
// live against the pre-sweep search path in the same process (so machine
// drift between runs can never contaminate the speedup), at one core and
// at every core.
type sweepReport struct {
	Note  string `json:"note"`
	Go    string `json:"go"`
	Arch  string `json:"arch"`
	Cores int    `json:"cores"`

	Model       string `json:"model"`
	GPUs        int    `json:"gpus"`
	GlobalBatch int    `json:"global_batch"`
	Systems     int    `json:"systems"`
	Prune       bool   `json:"prune"`

	// Engine counters of one sweep over the grid.
	Stats      strategy.SweepStats `json:"stats"`
	DedupRatio float64             `json:"dedup_ratio"`
	PruneRate  float64             `json:"prune_rate"`

	Rows []sweepRow `json:"rows"`

	// Speedup of the sweep engine over the reference path at matched
	// core counts.
	Speedup1Core    float64 `json:"speedup_1core"`
	SpeedupAllCores float64 `json:"speedup_all_cores"`
}

// runSweepBench measures multi-system grid-search throughput on the
// paper's 32-GPU point: the streaming sweep engine vs the pre-sweep
// per-point path, both at GOMAXPROCS=1 and at full parallelism. Before
// anything is timed, every system's sweep result is cross-checked bitwise
// against the reference path.
func runSweepBench(minSeconds float64, out string) error {
	m := config.Llama13B()
	cl := cluster.RTX4090Cluster(4) // 32 GPUs, the paper's full testbed point
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}
	sp := strategy.DefaultSpace()
	sp.Prune = true
	systems := strategy.Systems()
	ctx := context.Background()

	// Correctness gate: the engine must agree with the reference path on
	// every system before its speed means anything.
	sw, err := strategy.Sweep(ctx, systems, m, cl, tr, sp)
	if err != nil {
		return err
	}
	for i, sys := range systems {
		ref, refErr := strategy.SearchReference(ctx, sys, m, cl, tr, sp)
		if (refErr == nil) != (sw.Errs[i] == nil) {
			return fmt.Errorf("sweep bench: %s: error mismatch: sweep %v, reference %v", sys, sw.Errs[i], refErr)
		}
		got := sw.Results[i]
		if got.Evaluated != ref.Evaluated || got.Pruned != ref.Pruned || len(got.Candidates) != len(ref.Candidates) {
			return fmt.Errorf("sweep bench: %s: counters diverge: sweep (%d evaluated, %d pruned, %d candidates), reference (%d, %d, %d)",
				sys, got.Evaluated, got.Pruned, len(got.Candidates), ref.Evaluated, ref.Pruned, len(ref.Candidates))
		}
		for j := range ref.Candidates {
			g, r := got.Candidates[j], ref.Candidates[j]
			if g.Par != r.Par || g.OOM != r.OOM ||
				math.Float64bits(g.IterTime) != math.Float64bits(r.IterTime) {
				return fmt.Errorf("sweep bench: %s: candidate %d diverges: sweep %v %.17g, reference %v %.17g",
					sys, j, g.Par, g.IterTime, r.Par, r.IterTime)
			}
		}
	}

	minDur := time.Duration(minSeconds * float64(time.Second))
	timeLoop := func(run func() error) (sweepRow, error) {
		// One warm pass, outside the timed window.
		if err := run(); err != nil {
			return sweepRow{}, err
		}
		passes := 0
		t0 := time.Now()
		for time.Since(t0) < minDur {
			if err := run(); err != nil {
				return sweepRow{}, err
			}
			passes++
		}
		elapsed := time.Since(t0).Seconds()
		return sweepRow{
			GridPointsPerSec: float64(passes*sw.Stats.GridPoints) / elapsed,
			PassSeconds:      elapsed / float64(passes),
			Passes:           passes,
		}, nil
	}
	runReference := func() error {
		for _, sys := range systems {
			if _, err := strategy.SearchReference(ctx, sys, m, cl, tr, sp); err != nil {
				return err
			}
		}
		return nil
	}
	runSweep := func() error {
		_, err := strategy.Sweep(ctx, systems, m, cl, tr, sp)
		return err
	}

	allCores := runtime.GOMAXPROCS(0)
	measure := func(cores int) (ref, eng sweepRow, err error) {
		prev := runtime.GOMAXPROCS(cores)
		defer runtime.GOMAXPROCS(prev)
		if ref, err = timeLoop(runReference); err != nil {
			return
		}
		ref.Path, ref.Cores = "reference", cores
		if eng, err = timeLoop(runSweep); err != nil {
			return
		}
		eng.Path, eng.Cores = "sweep", cores
		return
	}

	ref1, sweep1, err := measure(1)
	if err != nil {
		return err
	}
	// On a single-core box the all-cores configuration is the 1-core one;
	// reuse the measurement rather than timing the same thing twice.
	refN, sweepN := ref1, sweep1
	if allCores > 1 {
		if refN, sweepN, err = measure(allCores); err != nil {
			return err
		}
	}

	rows := []sweepRow{ref1, sweep1}
	if allCores > 1 {
		rows = append(rows, refN, sweepN)
	}
	rep := sweepReport{
		Note: "multi-system grid-search throughput, sweep engine vs the pre-sweep per-point path " +
			"measured live in the same process; regenerate with `make bench-sweep`",
		Go: runtime.Version(), Arch: runtime.GOARCH, Cores: runtime.NumCPU(),
		Model: m.Name, GPUs: cl.GPUs(), GlobalBatch: tr.GlobalBatch,
		Systems: len(systems), Prune: sp.Prune,
		Stats:      sw.Stats,
		DedupRatio: sw.Stats.DedupRatio(),
		PruneRate:  sw.Stats.PruneRate(),
		Rows:       rows,
	}
	if ref1.GridPointsPerSec > 0 {
		rep.Speedup1Core = sweep1.GridPointsPerSec / ref1.GridPointsPerSec
	}
	if refN.GridPointsPerSec > 0 {
		rep.SpeedupAllCores = sweepN.GridPointsPerSec / refN.GridPointsPerSec
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close() //nolint:errcheck // encode error wins
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	fmt.Printf("sweep bench: %s, %d GPUs, gbs %d, %d systems, %d grid points (%d shapes)\n",
		rep.Model, rep.GPUs, rep.GlobalBatch, rep.Systems, sw.Stats.GridPoints, sw.Stats.Shapes)
	fmt.Printf("  engine       %d generated, %d certified, %d deduped (ratio %.2f), %d pruned (rate %.2f), %d gate-skipped\n",
		sw.Stats.Generated, sw.Stats.Certified, sw.Stats.Deduped, rep.DedupRatio, sw.Stats.Pruned, rep.PruneRate, sw.Stats.GateSkipped)
	fmt.Printf("  1 core       reference %.0f points/s, sweep %.0f points/s (%.1fx)\n",
		ref1.GridPointsPerSec, sweep1.GridPointsPerSec, rep.Speedup1Core)
	if allCores > 1 {
		fmt.Printf("  %d cores%s    reference %.0f points/s, sweep %.0f points/s (%.1fx)\n",
			allCores, pad(allCores), refN.GridPointsPerSec, sweepN.GridPointsPerSec, rep.SpeedupAllCores)
	}
	fmt.Printf("  report       written to %s\n", out)
	return nil
}

// pad keeps the printed core-count rows aligned for 1- vs 2-digit counts.
func pad(n int) string {
	if n < 10 {
		return " "
	}
	return ""
}
