// Command mepipe-trace records the structured event trace of one simulated
// training iteration — op spans, cross-stage communication, activation
// memory traffic, stalls by cause, and the §5 dynamic engine's drain and
// budget events — and exports it as Chrome trace-event JSON (open in
// Perfetto or chrome://tracing) or JSONL.
//
// Examples:
//
//	mepipe-trace -o trace.json
//	mepipe-trace -model 13b -gbs 64 -pp 8 -spp 4 -o trace.json
//	mepipe-trace -system dapple -format jsonl -o trace.jsonl
//
// It is written entirely against the public mepipe façade.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"mepipe"
)

func main() {
	var (
		modelName = flag.String("model", "7b", "model preset: 7b, 13b, 34b")
		system    = flag.String("system", "mepipe", "scheduler: mepipe, dapple, vpp, zb, zbv, terapipe, gpipe")
		gbs       = flag.Int("gbs", 64, "global batch size")
		pp        = flag.Int("pp", 8, "pipeline stages")
		cp        = flag.Int("cp", 1, "context-parallel size")
		spp       = flag.Int("spp", 0, "sequence pipeline size (slices); 0 picks 4 for mepipe/terapipe, 1 otherwise")
		vp        = flag.Int("vp", 0, "virtual pipeline size; 0 picks the system default")
		gpu       = flag.String("cluster", "4090", "cluster: 4090 (8 servers x 8) or a100 (4 servers x 8)")
		out       = flag.String("o", "", "output file (default stdout)")
		format    = flag.String("format", "chrome", "trace format: chrome, jsonl")
	)
	flag.Parse()

	m, err := mepipe.ModelByName(*modelName)
	fatal(err)
	var cl mepipe.Cluster
	switch strings.ToLower(*gpu) {
	case "4090":
		cl = mepipe.RTX4090Cluster(8)
	case "a100":
		cl = mepipe.A100Cluster(4)
	default:
		fatal(fmt.Errorf("unknown cluster %q", *gpu))
	}
	sys, err := systemByName(*system)
	fatal(err)
	var exp mepipe.Exporter
	switch strings.ToLower(*format) {
	case "chrome":
		exp = mepipe.ChromeTrace{}
	case "jsonl":
		exp = mepipe.JSONLTrace{}
	default:
		fatal(fmt.Errorf("unknown format %q (want chrome or jsonl)", *format))
	}

	par := mepipe.Parallel{PP: *pp, CP: *cp, SPP: *spp, VP: *vp}
	if par.SPP == 0 {
		par.SPP = 1
		if sys == mepipe.MEPipe || sys == mepipe.TeraPipe {
			par.SPP = 4
		}
	}
	if par.VP == 0 {
		par.VP = 1
		if sys == mepipe.VPP || sys == mepipe.ZBV {
			par.VP = 2
		}
	}
	par.DP = cl.GPUs() / (par.PP * par.CP)
	tr := mepipe.Training{GlobalBatch: *gbs, MicroBatch: 1}

	rec := mepipe.NewRecorder()
	ev, err := mepipe.Evaluate(context.Background(), sys, m, cl, par, tr, mepipe.WithTrace(rec))
	fatal(err)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		fatal(err)
		defer f.Close()
		w = f
	}
	trace := rec.Trace()
	fatal(exp.Export(w, trace))

	// Human-readable summary on stderr so the trace stream stays clean.
	fmt.Fprintf(os.Stderr, "%s %s on %s: %v, n=%d, %d events\n",
		sys, m.Name, cl.GPU.Name, ev.Par, ev.N, rec.Len())
	if ev.OOM {
		fmt.Fprintf(os.Stderr, "OUT OF MEMORY: %s\n", ev.OOMWhy)
	}
	for _, line := range trace.Snapshot().Summary() {
		fmt.Fprintln(os.Stderr, "  "+line)
	}
	if *out != "" {
		dest := "chrome://tracing or https://ui.perfetto.dev"
		if strings.ToLower(*format) == "jsonl" {
			dest = "jq or any line-oriented tool"
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (open in %s)\n", *out, dest)
	}
}

func systemByName(s string) (mepipe.System, error) {
	switch strings.ToLower(s) {
	case "mepipe":
		return mepipe.MEPipe, nil
	case "dapple":
		return mepipe.DAPPLE, nil
	case "vpp":
		return mepipe.VPP, nil
	case "zb":
		return mepipe.ZB, nil
	case "zbv":
		return mepipe.ZBV, nil
	case "terapipe":
		return mepipe.TeraPipe, nil
	case "gpipe":
		return mepipe.GPipe, nil
	}
	return 0, fmt.Errorf("unknown system %q", s)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mepipe-trace:", err)
		os.Exit(1)
	}
}
