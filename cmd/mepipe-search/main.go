// Command mepipe-search grid-searches the parallel-strategy space (§7.3)
// for one or all scheduling systems and prints the ranked candidates.
//
// With -f it searches exactly what a v1 request document describes — the
// same JSON POST /v1/search consumes on the mepipe-serve planning server,
// including a bounded search space. See docs/SERVE.md for the schema.
//
// With -optimize it additionally anneals the winning candidate's preset
// schedule with the internal/opt local search (single system only) and
// reports what the search discovered; -opt-out saves the discovered
// schedule as a portable JSON artifact.
//
// Examples:
//
//	mepipe-search -model 13b -gbs 64
//	mepipe-search -model 34b -gbs 128 -system mepipe -top 10
//	mepipe-search -f request.json
//	mepipe-search -model 7b -gbs 32 -system mepipe -optimize -opt-out best.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	v1 "mepipe/api/v1"
	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/opt"
	"mepipe/internal/strategy"
)

func main() {
	var (
		file      = flag.String("f", "", "read a v1 request document (JSON) instead of building one from flags")
		modelName = flag.String("model", "13b", "model preset: 7b, 13b, 34b")
		gbs       = flag.Int("gbs", 64, "global batch size")
		system    = flag.String("system", "all", "system to search, or 'all'")
		gpu       = flag.String("cluster", "4090", "cluster: 4090 or a100")
		top       = flag.Int("top", 3, "candidates to print per system")
		optimize  = flag.Bool("optimize", false, "anneal the best candidate's schedule after ranking (single system only)")
		optSeed   = flag.Int64("opt-seed", v1.DefaultOptSeed, "optimizer random seed")
		optIters  = flag.Int("opt-iters", v1.DefaultOptIters, "optimizer annealing rounds")
		optOut    = flag.String("opt-out", "", "write the discovered schedule (JSON) to this file")
	)
	flag.Parse()

	var (
		m       config.Model
		cl      cluster.Cluster
		tr      config.Training
		space   strategy.SearchSpace
		systems []strategy.System
	)
	if *file != "" {
		f, err := os.Open(*file)
		fatal(err)
		req, err := v1.DecodePlanRequest(f)
		fatal(err)
		fatal(f.Close())
		plan, err := req.Compile()
		fatal(err)
		m, cl, tr, space = plan.Model, plan.Cluster, plan.Training, plan.Space
		systems = []strategy.System{plan.System}
		if plan.Top > 0 {
			*top = plan.Top
		}
	} else {
		var err error
		m, err = config.ModelByName(*modelName)
		fatal(err)
		cl = cluster.RTX4090Cluster(8)
		if strings.EqualFold(*gpu, "a100") {
			cl = cluster.A100Cluster(4)
		}
		tr = config.Training{GlobalBatch: *gbs, MicroBatch: 1}
		space = strategy.DefaultSpace()
		systems = strategy.Systems()
		if !strings.EqualFold(*system, "all") {
			sys, err := v1.SystemByName(*system)
			fatal(err)
			systems = []strategy.System{sys}
		}
	}

	if *optimize && len(systems) != 1 {
		fatal(fmt.Errorf("-optimize needs a single system (got -system %s)", *system))
	}

	// One streaming sweep over all requested systems: schedules shared by
	// several grid points are generated and certified once, and the
	// results are identical to per-system Search calls.
	sw, err := strategy.Sweep(context.Background(), systems, m, cl, tr, space)
	fatal(err)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\trank\tstrategy\tn\titeration\tbubble\tpeak act\tstatus")
	var best *strategy.Eval
	for i, sys := range systems {
		res := sw.Results[i]
		if err := sw.Errs[i]; err != nil && len(res.Candidates) == 0 {
			fmt.Fprintf(w, "%s\t-\t%v\t\t\t\t\t\n", sys, err)
			continue
		}
		best = res.Best()
		shown := 0
		for _, c := range res.Candidates {
			if shown >= *top {
				break
			}
			shown++
			status := "ok"
			iter := fmt.Sprintf("%.1f ms", c.IterTime*1e3)
			if c.OOM {
				status = "OOM: " + c.OOMWhy
				iter = "-"
			}
			fmt.Fprintf(w, "%s\t#%d\t%v\t%d\t%s\t%.1f%%\t%.2f GiB\t%s\n",
				sys, shown, c.Par, c.N, iter, 100*c.Bubble, float64(c.PeakAct)/(1<<30), status)
		}
	}
	fatal(w.Flush())

	if *optimize {
		if best == nil {
			fatal(fmt.Errorf("-optimize: no feasible candidate to optimize"))
		}
		fatal(runOptimize(systems[0], m, cl, best.Par, tr, *optSeed, *optIters, *optOut))
	}
}

// runOptimize anneals the winning candidate's preset schedule and prints
// what the local search discovered.
func runOptimize(sys strategy.System, m config.Model, cl cluster.Cluster, par config.Parallel, tr config.Training, seed int64, iters int, out string) error {
	res, err := strategy.OptimizeContext(context.Background(), sys, m, cl, par, tr, opt.Options{Seed: seed, Iters: iters})
	if err != nil {
		return err
	}
	r := res.Opt
	fmt.Printf("\noptimize %s %v (seed %d, %d rounds):\n", sys, par, seed, iters)
	fmt.Printf("  preset     %.3f ms\n", r.BaseTime*1e3)
	if r.HEFTTime > 0 {
		fmt.Printf("  heft seed  %.3f ms\n", r.HEFTTime*1e3)
	}
	fmt.Printf("  discovered %.3f ms (%.2f%% faster, annealed from the %s seed)\n",
		r.BestTime*1e3, 100*r.Gain(), r.Seed)
	fmt.Printf("  search     %d proposed, %d infeasible, %d evaluated, %d accepted, %d improvements\n",
		r.Proposed, r.Infeasible, r.Evaluated, r.Accepted, r.Improved)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := r.Schedule.Save(f); err != nil {
			f.Close() //nolint:errcheck // save error wins
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  schedule   written to %s\n", out)
	}
	return nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mepipe-search:", err)
		os.Exit(1)
	}
}
