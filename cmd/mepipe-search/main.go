// Command mepipe-search grid-searches the parallel-strategy space (§7.3)
// for one or all scheduling systems and prints the ranked candidates.
//
// Example:
//
//	mepipe-search -model 13b -gbs 64
//	mepipe-search -model 34b -gbs 128 -system mepipe -top 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/strategy"
)

func main() {
	var (
		modelName = flag.String("model", "13b", "model preset: 7b, 13b, 34b")
		gbs       = flag.Int("gbs", 64, "global batch size")
		system    = flag.String("system", "all", "system to search, or 'all'")
		gpu       = flag.String("cluster", "4090", "cluster: 4090 or a100")
		top       = flag.Int("top", 3, "candidates to print per system")
	)
	flag.Parse()

	m, err := config.ModelByName(*modelName)
	fatal(err)
	cl := cluster.RTX4090Cluster(8)
	if strings.EqualFold(*gpu, "a100") {
		cl = cluster.A100Cluster(4)
	}
	tr := config.Training{GlobalBatch: *gbs, MicroBatch: 1}

	systems := strategy.Systems()
	if !strings.EqualFold(*system, "all") {
		sys, err := systemByName(*system)
		fatal(err)
		systems = []strategy.System{sys}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\trank\tstrategy\tn\titeration\tbubble\tpeak act\tstatus")
	for _, sys := range systems {
		res, err := strategy.Search(sys, m, cl, tr, strategy.DefaultSpace())
		if err != nil && res == nil {
			fmt.Fprintf(w, "%s\t-\t%v\t\t\t\t\t\n", sys, err)
			continue
		}
		shown := 0
		for _, c := range res.Candidates {
			if shown >= *top {
				break
			}
			shown++
			status := "ok"
			iter := fmt.Sprintf("%.1f ms", c.IterTime*1e3)
			if c.OOM {
				status = "OOM: " + c.OOMWhy
				iter = "-"
			}
			fmt.Fprintf(w, "%s\t#%d\t%v\t%d\t%s\t%.1f%%\t%.2f GiB\t%s\n",
				sys, shown, c.Par, c.N, iter, 100*c.Bubble, float64(c.PeakAct)/(1<<30), status)
		}
	}
	fatal(w.Flush())
}

func systemByName(s string) (strategy.System, error) {
	switch strings.ToLower(s) {
	case "mepipe":
		return strategy.MEPipe, nil
	case "dapple":
		return strategy.DAPPLE, nil
	case "vpp":
		return strategy.VPP, nil
	case "zb":
		return strategy.ZB, nil
	case "zbv":
		return strategy.ZBV, nil
	case "terapipe":
		return strategy.TeraPipe, nil
	case "gpipe":
		return strategy.GPipe, nil
	}
	return 0, fmt.Errorf("unknown system %q", s)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mepipe-search:", err)
		os.Exit(1)
	}
}
