// Command mepipe-search grid-searches the parallel-strategy space (§7.3)
// for one or all scheduling systems and prints the ranked candidates.
//
// With -f it searches exactly what a v1 request document describes — the
// same JSON POST /v1/search consumes on the mepipe-serve planning server,
// including a bounded search space. See docs/SERVE.md for the schema.
//
// Examples:
//
//	mepipe-search -model 13b -gbs 64
//	mepipe-search -model 34b -gbs 128 -system mepipe -top 10
//	mepipe-search -f request.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	v1 "mepipe/api/v1"
	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/strategy"
)

func main() {
	var (
		file      = flag.String("f", "", "read a v1 request document (JSON) instead of building one from flags")
		modelName = flag.String("model", "13b", "model preset: 7b, 13b, 34b")
		gbs       = flag.Int("gbs", 64, "global batch size")
		system    = flag.String("system", "all", "system to search, or 'all'")
		gpu       = flag.String("cluster", "4090", "cluster: 4090 or a100")
		top       = flag.Int("top", 3, "candidates to print per system")
	)
	flag.Parse()

	var (
		m       config.Model
		cl      cluster.Cluster
		tr      config.Training
		space   strategy.SearchSpace
		systems []strategy.System
	)
	if *file != "" {
		f, err := os.Open(*file)
		fatal(err)
		req, err := v1.DecodePlanRequest(f)
		fatal(err)
		fatal(f.Close())
		plan, err := req.Compile()
		fatal(err)
		m, cl, tr, space = plan.Model, plan.Cluster, plan.Training, plan.Space
		systems = []strategy.System{plan.System}
		if plan.Top > 0 {
			*top = plan.Top
		}
	} else {
		var err error
		m, err = config.ModelByName(*modelName)
		fatal(err)
		cl = cluster.RTX4090Cluster(8)
		if strings.EqualFold(*gpu, "a100") {
			cl = cluster.A100Cluster(4)
		}
		tr = config.Training{GlobalBatch: *gbs, MicroBatch: 1}
		space = strategy.DefaultSpace()
		systems = strategy.Systems()
		if !strings.EqualFold(*system, "all") {
			sys, err := v1.SystemByName(*system)
			fatal(err)
			systems = []strategy.System{sys}
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\trank\tstrategy\tn\titeration\tbubble\tpeak act\tstatus")
	for _, sys := range systems {
		res, err := strategy.Search(sys, m, cl, tr, space)
		if err != nil && res == nil {
			fmt.Fprintf(w, "%s\t-\t%v\t\t\t\t\t\n", sys, err)
			continue
		}
		shown := 0
		for _, c := range res.Candidates {
			if shown >= *top {
				break
			}
			shown++
			status := "ok"
			iter := fmt.Sprintf("%.1f ms", c.IterTime*1e3)
			if c.OOM {
				status = "OOM: " + c.OOMWhy
				iter = "-"
			}
			fmt.Fprintf(w, "%s\t#%d\t%v\t%d\t%s\t%.1f%%\t%.2f GiB\t%s\n",
				sys, shown, c.Par, c.N, iter, 100*c.Bubble, float64(c.PeakAct)/(1<<30), status)
		}
	}
	fatal(w.Flush())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mepipe-search:", err)
		os.Exit(1)
	}
}
