// Command mepipe-sched generates, inspects, saves, and reloads pipeline
// schedules as standalone artifacts: the scheduling half of MEPipe without
// the cluster model. Unit-cost simulation shows the schedule's intrinsic
// bubble structure and how close it sits to the order-free lower bound.
//
// Examples:
//
//	mepipe-sched -system mepipe -pp 4 -vp 1 -spp 2 -n 4 -order -timeline
//	mepipe-sched -system svpp -pp 4 -vp 2 -spp 2 -n 4 -f 6 -save sched.json
//	mepipe-sched -load sched.json -timeline -svg sched.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mepipe/internal/sched"
	"mepipe/internal/sim"
	"mepipe/internal/timeline"
	"mepipe/internal/tune"
)

func main() {
	var (
		system   = flag.String("system", "mepipe", "scheduler: mepipe, svpp, dapple, gpipe, vpp, hanayo, terapipe, zb, zbv")
		pp       = flag.Int("pp", 4, "pipeline stages")
		vp       = flag.Int("vp", 1, "virtual pipeline size")
		spp      = flag.Int("spp", 2, "slices per micro-batch")
		n        = flag.Int("n", 4, "micro-batches")
		fKnob    = flag.Int("f", 0, "SVPP in-flight limit (0 = bubble-optimal)")
		pieces   = flag.Int("pieces", 7, "fine-grained W GEMM pieces (mepipe)")
		resched  = flag.Bool("reschedule", true, "apply Fig-6 backward rescheduling")
		order    = flag.Bool("order", false, "print the per-stage op order")
		showTL   = flag.Bool("timeline", false, "render the unit-cost ASCII timeline")
		saveTo   = flag.String("save", "", "write the schedule as JSON")
		loadFrom = flag.String("load", "", "load a schedule JSON instead of generating")
		svgTo    = flag.String("svg", "", "write an SVG timeline")
		tuneIt   = flag.Int("tune", 0, "run N local-search proposals to improve the order")
		showMem  = flag.Bool("mem", false, "print each stage's peak and final retained units")
	)
	flag.Parse()

	var s *sched.Schedule
	var err error
	if *loadFrom != "" {
		f, ferr := os.Open(*loadFrom)
		fatal(ferr)
		s, err = sched.Load(f)
		fatal(err)
		fatal(f.Close())
	} else {
		s, err = build(*system, *pp, *vp, *spp, *n, *fKnob, *pieces, *resched)
		fatal(err)
	}

	if *tuneIt > 0 {
		tr, err := tune.Improve(s, sim.Unit(), tune.Options{Iters: *tuneIt, Seed: 1, MaxMove: 6, Plateau: true})
		fatal(err)
		fmt.Printf("tuned      %d proposals, %d accepted: makespan %.4g -> %.4g\n",
			tr.Tried, tr.Accepted, tr.Before, tr.After)
		s = tr.Schedule
	}
	res, err := sim.Run(sim.Options{Sched: s, Costs: sim.Unit()})
	fatal(err)
	bound, err := sim.MakespanBound(s, sim.Unit())
	fatal(err)
	fmt.Printf("schedule   %s\n", s)
	fmt.Printf("makespan   %.4g units (lower bound %.4g, +%.1f%%)\n",
		res.IterTime, bound, 100*(res.IterTime-bound)/bound)
	fmt.Printf("bubble     %.1f%%\n", 100*res.BubbleRatio)
	fmt.Printf("peak act   %d slice-chunk families (%d/%d of a sample)\n",
		res.PeakAct, res.PeakAct, s.V*s.S*s.P)
	if *showMem {
		for k := 0; k < s.P; k++ {
			series, err := res.MemorySeries(s, sim.Unit(), k)
			fatal(err)
			var peak int64
			for _, p := range series {
				if p.Bytes > peak {
					peak = p.Bytes
				}
			}
			fmt.Printf("stage %d    peak %d units across %d events\n", k, peak, len(series))
		}
	}
	if *order {
		fmt.Println()
		timeline.RenderOrder(os.Stdout, s)
	}
	if *showTL {
		fmt.Println()
		timeline.Render(os.Stdout, res, 0)
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		fatal(err)
		fatal(s.Save(f))
		fatal(f.Close())
		fmt.Printf("saved      %s\n", *saveTo)
	}
	if *svgTo != "" {
		f, err := os.Create(*svgTo)
		fatal(err)
		fatal(timeline.WriteSVG(f, res))
		fatal(f.Close())
		fmt.Printf("svg        %s\n", *svgTo)
	}
}

func build(system string, p, v, s, n, f, pieces int, resched bool) (*sched.Schedule, error) {
	switch strings.ToLower(system) {
	case "mepipe":
		return sched.MEPipe(p, v, s, n, f, pieces, nil)
	case "svpp":
		return sched.SVPP(sched.SVPPOptions{P: p, V: v, S: s, N: n, F: f, Reschedule: resched})
	case "dapple":
		return sched.DAPPLE(p, n, nil)
	case "gpipe":
		return sched.GPipe(p, n, nil)
	case "vpp":
		return sched.VPP(p, v, n, nil)
	case "hanayo":
		return sched.Hanayo(p, n, nil)
	case "terapipe":
		return sched.TeraPipe(p, s, n, nil)
	case "zb":
		return sched.ZB1P(p, n, nil)
	case "zbv":
		return sched.ZBV(p, n, nil)
	}
	return nil, fmt.Errorf("unknown system %q", system)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mepipe-sched:", err)
		os.Exit(1)
	}
}
