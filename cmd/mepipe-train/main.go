// Command mepipe-train runs real slice-level pipelined training of a tiny
// decoder on synthetic data — one goroutine per pipeline stage executing a
// generated schedule with actual float32 tensors — and verifies every
// iteration's gradients against sequential execution (the artifact's E0
// functionality check).
//
// Example:
//
//	mepipe-train -pp 4 -slices 2 -micro 4 -steps 20 -verify
package main

import (
	"flag"
	"fmt"
	"os"

	"mepipe/internal/data"
	"mepipe/internal/nn"
	"mepipe/internal/pipeline"
	"mepipe/internal/sched"
	"mepipe/internal/tensor"
)

func main() {
	var (
		pp        = flag.Int("pp", 4, "pipeline stages")
		dp        = flag.Int("dp", 1, "data-parallel pipeline replicas (gradients averaged)")
		vp        = flag.Int("vp", 1, "virtual pipeline size")
		slices    = flag.Int("slices", 2, "sequence pipeline size (slices per sample)")
		micro     = flag.Int("micro", 4, "micro-batches per iteration")
		steps     = flag.Int("steps", 20, "training steps")
		hidden    = flag.Int("hidden", 16, "hidden size")
		layers    = flag.Int("layers", 8, "transformer layers")
		seqLen    = flag.Int("seq", 16, "sequence length")
		vocab     = flag.Int("vocab", 31, "vocabulary size")
		lr        = flag.Float64("lr", 0.05, "SGD learning rate")
		seed      = flag.Int64("seed", 42, "weights and data seed")
		verify    = flag.Bool("verify", false, "check gradients against sequential execution every step")
		transport = flag.String("transport", "channels", "stage links: channels, pipes (net.Pipe), or tcp (loopback sockets)")
		useAdam   = flag.Bool("adam", false, "optimise with Adam instead of SGD")
		kworkers  = flag.Int("kernel-workers", 0, "GEMM kernel workers per process (0 = GOMAXPROCS); results are bitwise identical for any count")
	)
	flag.Parse()
	if *kworkers > 0 {
		tensor.Configure(tensor.KernelConfig{Workers: *kworkers})
	}

	cfg := nn.Config{Hidden: *hidden, Heads: 2, FFN: *hidden * 2, Vocab: *vocab, Layers: *layers, SeqLen: *seqLen}
	m, err := nn.NewModel(cfg, *seed)
	fatal(err)
	var ref *nn.Model
	if *verify {
		if *useAdam {
			fatal(fmt.Errorf("-verify compares against an SGD-stepped sequential reference; use it without -adam"))
		}
		ref, err = nn.NewModel(cfg, *seed)
		fatal(err)
	}
	stream, err := data.NewStream(cfg.Vocab, cfg.SeqLen, *seed+1)
	fatal(err)
	s, err := sched.MEPipe(*pp, *vp, *slices, *micro, 0, nn.WeightGradGEMMs, nil)
	fatal(err)
	fmt.Printf("schedule %s, model %d params, %s transport, dp=%d\n", s, countParams(cfg), *transport, *dp)
	var opt *nn.Adam
	if *useAdam {
		opt = nn.NewAdam(float32(*lr))
	}
	if *dp > 1 {
		if *transport != "channels" || *useAdam {
			fatal(fmt.Errorf("-dp composes with the default channel transport and SGD"))
		}
		trainDP(m, ref, s, stream, *dp, *micro, *steps, float32(*lr), *verify)
		return
	}

	for step := 0; step < *steps; step++ {
		batch := stream.Batch(*micro)
		m.ZeroGrads()
		r, err := pipeline.New(m, s, batch)
		fatal(err)
		var loss float64
		switch *transport {
		case "channels":
			loss, err = r.Run()
		case "pipes":
			loss, err = r.RunOverPipes()
		case "tcp":
			loss, err = r.RunOverTCP()
		default:
			fatal(fmt.Errorf("unknown transport %q", *transport))
		}
		fatal(err)
		status := ""
		if *verify {
			ref.ZeroGrads()
			refLoss, err := ref.TrainSequential(batch, *slices)
			fatal(err)
			maxDiff := 0.0
			pg, rg := m.Grads(), ref.Grads()
			for name, g := range rg {
				if d := tensor.MaxAbsDiff(g, pg[name]); d > maxDiff {
					maxDiff = d
				}
			}
			status = fmt.Sprintf("  (sequential loss %.6f, max grad diff %.2g)", refLoss, maxDiff)
			if maxDiff > 1e-4 {
				fatal(fmt.Errorf("step %d: pipelined gradients diverge from sequential by %g", step, maxDiff))
			}
			ref.SGDStep(float32(*lr))
		}
		if opt != nil {
			opt.Step(m)
		} else {
			m.SGDStep(float32(*lr))
		}
		fmt.Printf("step %3d  loss %.6f%s\n", step, loss, status)
	}
	fmt.Println("done: pipelined training matches sequential execution")
}

// trainDP drives data-parallel replicas of the pipelined runtime.
func trainDP(m, ref *nn.Model, s *sched.Schedule, stream *data.Stream, dp, micro, steps int, lr float32, verify bool) {
	d, err := pipeline.NewDataParallel(m, dp)
	fatal(err)
	for step := 0; step < steps; step++ {
		batch := stream.Batch(dp * micro)
		loss, err := d.Run(s, batch)
		fatal(err)
		status := ""
		if verify {
			ref.ZeroGrads()
			refLoss, err := ref.TrainSequential(batch, s.S)
			fatal(err)
			maxDiff := 0.0
			pg, rg := d.Replicas()[0].Grads(), ref.Grads()
			for name, g := range rg {
				if diff := tensor.MaxAbsDiff(g, pg[name]); diff > maxDiff {
					maxDiff = diff
				}
			}
			status = fmt.Sprintf("  (sequential loss %.6f, max grad diff %.2g)", refLoss, maxDiff)
			if maxDiff > 1e-4 {
				fatal(fmt.Errorf("step %d: DP gradients diverge from sequential by %g", step, maxDiff))
			}
			ref.SGDStep(lr)
		}
		d.StepAll(lr)
		fmt.Printf("step %3d  loss %.6f%s\n", step, loss, status)
	}
	fmt.Println("done: data-parallel pipelined training matches sequential execution")
}

func countParams(cfg nn.Config) int {
	perLayer := 4*cfg.Hidden*cfg.Hidden + 3*cfg.Hidden*cfg.FFN + 2*cfg.Hidden
	return cfg.Layers*perLayer + 2*cfg.Vocab*cfg.Hidden + cfg.Hidden
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mepipe-train:", err)
		os.Exit(1)
	}
}
