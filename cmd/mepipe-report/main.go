// Command mepipe-report regenerates the entire evaluation and writes a
// single self-contained HTML page with every table, the paper-vs-measured
// notes, and embedded SVG timelines for the headline configuration.
//
//	mepipe-report -o report.html
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mepipe/internal/bench"
	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/strategy"
	"mepipe/internal/timeline"
)

func main() {
	out := flag.String("o", "report.html", "output file")
	flag.Parse()

	var reports []*bench.Report
	for _, e := range bench.Experiments() {
		fmt.Fprintf(os.Stderr, "running %s...\n", e.ID)
		r, err := e.Run()
		fatal(err)
		reports = append(reports, r)
	}
	// Embed the Fig 11/12 headline timeline as SVG.
	svgs := map[string]string{}
	ev, err := strategy.Evaluate(strategy.MEPipe, config.Llama13B(), cluster.RTX4090Cluster(8),
		config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1},
		config.Training{GlobalBatch: 64, MicroBatch: 1})
	fatal(err)
	var sb strings.Builder
	fatal(timeline.WriteSVG(&sb, ev.Result))
	svgs["fig11_12"] = sb.String()

	f, err := os.Create(*out)
	fatal(err)
	fatal(bench.WriteHTML(f, reports, svgs))
	fatal(f.Close())
	fmt.Printf("wrote %s (%d experiments)\n", *out, len(reports))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mepipe-report:", err)
		os.Exit(1)
	}
}
