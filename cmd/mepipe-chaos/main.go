// Command mepipe-chaos evaluates the §9 reliability claim end to end: it
// walks a seeded failure process over a simulated training horizon,
// measures the wall-clock overhead of checkpointing, lost work and
// recovery, and compares it against the Young–Daly closed form — while
// driving a bounded number of REAL injected-failure pipeline iterations
// (crash, restore, replay) through the goroutine runtime to prove the
// recovery path works, not just the arithmetic.
//
// The default scenario is a thousand-GPU job failing about once per
// simulated hour. Everything is derived from -seed: two invocations with
// the same flags produce byte-identical output.
//
// Example:
//
//	mepipe-chaos -gpus 1000 -horizon 1000h -seed 1
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"mepipe/internal/chaos"
	"mepipe/internal/faults"
	"mepipe/internal/nn"
	"mepipe/internal/obs"
	"mepipe/internal/pipeline"
	"mepipe/internal/sched"
	"mepipe/internal/tensor"
)

func main() {
	var (
		gpus     = flag.Int("gpus", 1000, "GPUs in the job")
		perGPU   = flag.Duration("mtbf-per-gpu", 1000*time.Hour, "single-GPU mean time between failures (default puts the cluster at one failure per hour)")
		ckptCost = flag.Duration("ckpt-cost", 30*time.Second, "time to take one checkpoint")
		recCost  = flag.Duration("rec-cost", 2*time.Minute, "time to detect a failure and restore")
		horizon  = flag.Duration("horizon", 1000*time.Hour, "simulated training duration")
		interval = flag.Duration("interval", 0, "checkpoint interval (0 = Young–Daly optimum)")
		seed     = flag.Int64("seed", 1, "failure sampling and fault-injection seed")
		execute  = flag.Int("execute", 3, "real injected-failure runtime iterations to drive (0 = none)")
		pp       = flag.Int("pp", 4, "pipeline stages of the executed runtime iterations")
		slices   = flag.Int("slices", 2, "sequence slices of the executed runtime iterations")
		micro    = flag.Int("micro", 3, "micro-batches of the executed runtime iterations")
		every    = flag.Int("ckpt-every", 2, "runtime checkpoint period in ops for executed iterations")
		tol      = flag.Float64("tolerance", 0.02, "maximum |measured − predicted| overhead to accept")
	)
	flag.Parse()

	rel := faults.Reliability{
		GPUs:           *gpus,
		PerGPUMTBF:     *perGPU,
		CheckpointCost: *ckptCost,
		RecoveryCost:   *recCost,
	}
	mtbf, err := rel.ClusterMTBF()
	fatal(err)

	var exec func(k int, subSeed int64) (int, error)
	if *execute > 0 {
		exec = func(k int, subSeed int64) (int, error) {
			return runFaultyIteration(*pp, *slices, *micro, *every, subSeed)
		}
	}
	res, err := faults.Resilient(faults.ResilientOptions{
		Rel:        rel,
		Horizon:    *horizon,
		Interval:   *interval,
		Seed:       *seed,
		Execute:    exec,
		MaxExecute: *execute,
	})
	fatal(err)

	fmt.Printf("cluster: %d GPUs, per-GPU MTBF %v, cluster MTBF %v\n", *gpus, *perGPU, mtbf)
	fmt.Printf("checkpoint cost %v, recovery cost %v, interval %v\n",
		*ckptCost, *recCost, res.Interval.Round(time.Second))
	fmt.Printf("walked %v: %d failures, %d checkpoints\n",
		*horizon, res.Failures, res.Checkpoints)
	fmt.Printf("  useful %v  checkpointing %v  lost work %v  recovery %v\n",
		res.Useful.Round(time.Minute), res.CheckpointTime.Round(time.Minute),
		res.LostWork.Round(time.Minute), res.RecoveryTime.Round(time.Minute))
	if res.Executed > 0 {
		fmt.Printf("  executed %d real injected-failure iterations (%d ops replayed, gradients verified)\n",
			res.Executed, res.ReplayedOps)
	}
	fmt.Printf("predicted overhead %.4f  measured %.4f  (Δ %+.4f)\n",
		res.Predicted, res.Measured, res.Measured-res.Predicted)
	if d := math.Abs(res.Measured - res.Predicted); d > *tol {
		fmt.Printf("verdict: DIVERGED — |Δ| %.4f exceeds %.4f\n", d, *tol)
		os.Exit(1)
	}
	fmt.Printf("verdict: measured overhead within %.1f points of the Young–Daly prediction\n", 100**tol)
}

// runFaultyIteration drives one real pipeline iteration with a seeded
// injected crash, verifies the recovered gradients against sequential
// execution, and returns the number of ops the runtime replayed.
func runFaultyIteration(pp, slices, micro, every int, seed int64) (int, error) {
	s, err := sched.SVPP(sched.SVPPOptions{P: pp, V: 1, S: slices, N: micro, Reschedule: true})
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	stage := rng.Intn(s.P)
	at := 1 + rng.Intn(len(s.Stages[stage])-1)
	plan := chaos.Plan{Seed: seed, Crashes: []chaos.Crash{{Stage: stage, AtOp: at}}}

	cfg := nn.Config{Hidden: 8, Heads: 2, FFN: 16, Vocab: 13, Layers: 2 * pp, SeqLen: 4 * slices}
	batch := make([][]int, micro)
	for i := range batch {
		sample := make([]int, cfg.SeqLen+1)
		for j := range sample {
			sample[j] = rng.Intn(cfg.Vocab)
		}
		batch[i] = sample
	}
	m, err := nn.NewModel(cfg, seed)
	if err != nil {
		return 0, err
	}
	r, err := pipeline.New(m, s, batch)
	if err != nil {
		return 0, err
	}
	rec := obs.NewRecorder()
	in := chaos.New(plan, s.P)
	r.WithStageHook(in).WithTransport(in).WithCheckpointEvery(every).WithTrace(rec)
	loss, err := r.Run()
	if err != nil {
		return 0, fmt.Errorf("injected iteration (stage %d op %d): %w", stage, at, err)
	}

	ref, err := nn.NewModel(cfg, seed)
	if err != nil {
		return 0, err
	}
	refLoss, err := ref.TrainSequential(batch, s.S)
	if err != nil {
		return 0, err
	}
	if math.Abs(loss-refLoss) > 1e-5 {
		return 0, fmt.Errorf("recovered loss %.8f diverges from sequential %.8f", loss, refLoss)
	}
	pg, rg := m.Grads(), ref.Grads()
	for name, g := range rg {
		if d := tensor.MaxAbsDiff(g, pg[name]); d > 1e-4 {
			return 0, fmt.Errorf("recovered grad %s diverges from sequential by %g", name, d)
		}
	}
	if got := in.Stats().Crashes; got != 1 {
		return 0, errors.New("planned crash did not fire")
	}
	replayed := 0
	for _, sm := range rec.Trace().Snapshot().Stages {
		replayed += sm.Replayed
	}
	return replayed, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mepipe-chaos:", err)
		os.Exit(1)
	}
}
