// Command mepipe-worker runs ONE pipeline stage as its own OS process,
// exchanging tensors with peer processes over TCP — the deployment shape of
// a real multi-host pipeline. Every worker constructs the model, schedule,
// and batch deterministically from the shared flags (same seeds → same
// weights), so no parameter transfer is needed, exactly like ranks loading
// the same initialisation.
//
// Coordinator mode spawns the whole pipeline locally and verifies it:
//
//	mepipe-worker -spawn -pp 4 -slices 2 -micro 4 -steps 5 -verify
//
// Each child prints its listening address; the coordinator broadcasts the
// address map; children dial their lower-index peers, run the requested
// number of training steps (SGD on each stage's own layers in between,
// frames routed by iteration tag), and verify their owned weights against
// a locally replayed sequential reference.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"

	"mepipe/internal/data"
	"mepipe/internal/nn"
	"mepipe/internal/pipeline"
	"mepipe/internal/sched"
	"mepipe/internal/tensor"
)

type jobFlags struct {
	pp, vp, slices, micro         int
	hidden, layers, seqLen, vocab int
	steps                         int
	lr                            float64
	seed                          int64
	verify                        bool
	kernelWorkers                 int
}

func main() {
	var (
		spawn = flag.Bool("spawn", false, "coordinator: spawn one worker process per stage")
		stage = flag.Int("stage", -1, "worker: the pipeline stage this process executes")
	)
	jf := jobFlags{}
	flag.IntVar(&jf.pp, "pp", 4, "pipeline stages")
	flag.IntVar(&jf.vp, "vp", 1, "virtual pipeline size")
	flag.IntVar(&jf.slices, "slices", 2, "sequence pipeline size")
	flag.IntVar(&jf.micro, "micro", 4, "micro-batches")
	flag.IntVar(&jf.hidden, "hidden", 16, "hidden size")
	flag.IntVar(&jf.layers, "layers", 8, "transformer layers")
	flag.IntVar(&jf.seqLen, "seq", 16, "sequence length")
	flag.IntVar(&jf.vocab, "vocab", 31, "vocabulary size")
	flag.IntVar(&jf.steps, "steps", 1, "training steps (SGD on each stage's own layers between steps)")
	flag.Float64Var(&jf.lr, "lr", 0.05, "SGD learning rate")
	flag.Int64Var(&jf.seed, "seed", 42, "weights and data seed")
	flag.BoolVar(&jf.verify, "verify", false, "check owned gradients against a local sequential reference")
	flag.IntVar(&jf.kernelWorkers, "kernel-workers", 0, "GEMM kernel workers per process (0 = GOMAXPROCS); results are bitwise identical for any count")
	flag.Parse()
	if jf.kernelWorkers > 0 {
		tensor.Configure(tensor.KernelConfig{Workers: jf.kernelWorkers})
	}

	if *spawn {
		fatal(coordinator(jf))
		return
	}
	if *stage < 0 {
		fatal(fmt.Errorf("need -stage (worker) or -spawn (coordinator)"))
	}
	fatal(worker(*stage, jf))
}

// worker executes one stage: announce the listener, learn the peers, wire
// up, run, report.
func worker(stage int, jf jobFlags) error {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Printf("LISTEN %d %s\n", stage, l.Addr())

	in := bufio.NewScanner(os.Stdin)
	if !in.Scan() {
		return fmt.Errorf("stage %d: no PEERS line on stdin", stage)
	}
	fields := strings.Fields(in.Text())
	if len(fields) != jf.pp+1 || fields[0] != "PEERS" {
		return fmt.Errorf("stage %d: malformed PEERS line %q", stage, in.Text())
	}
	addrs := fields[1:]

	m, s, batches, err := buildJob(jf)
	if err != nil {
		return err
	}
	loop, err := pipeline.NewStageLoop(m, s, stage)
	if err != nil {
		return err
	}
	probe, err := pipeline.NewStageWorker(m, s, batches[0], stage)
	if err != nil {
		return err
	}
	conns := map[int]net.Conn{}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	// Higher stage dials lower; lower accepts and reads the dialer's id.
	accepts := 0
	for _, peer := range probe.Peers() {
		if peer < stage {
			c, err := net.Dial("tcp", addrs[peer])
			if err != nil {
				return fmt.Errorf("stage %d dialing %d: %w", stage, peer, err)
			}
			if err := binary.Write(c, binary.LittleEndian, uint32(stage)); err != nil {
				return err
			}
			conns[peer] = c
		} else {
			accepts++
		}
	}
	for i := 0; i < accepts; i++ {
		c, err := l.Accept()
		if err != nil {
			return err
		}
		var id uint32
		if err := binary.Read(c, binary.LittleEndian, &id); err != nil {
			return err
		}
		conns[int(id)] = c
	}

	losses, err := loop.RunSteps(conns, batches, float32(jf.lr))
	if err != nil {
		return err
	}
	for i, loss := range losses {
		fmt.Printf("STAGE %d step %d loss %.6f\n", stage, i, loss)
	}
	if jf.verify {
		// Replay the same steps sequentially and compare this stage's
		// owned weights after training.
		ref, _, refBatches, err := buildJob(jf)
		if err != nil {
			return err
		}
		for _, b := range refBatches {
			ref.ZeroGrads()
			if _, err := ref.TrainSequential(b, jf.slices); err != nil {
				return err
			}
			ref.SGDStep(float32(jf.lr))
		}
		maxDiff := 0.0
		for _, li := range probe.OwnedLayers() {
			for _, pair := range [][2]*tensor.Matrix{
				{ref.Layers[li].Wq.W, m.Layers[li].Wq.W},
				{ref.Layers[li].Wd.W, m.Layers[li].Wd.W},
			} {
				if d := tensor.MaxAbsDiff(pair[0], pair[1]); d > maxDiff {
					maxDiff = d
				}
			}
		}
		if maxDiff > 1e-4 {
			return fmt.Errorf("stage %d: weights diverged from sequential training by %g", stage, maxDiff)
		}
		fmt.Printf("STAGE %d verified: owned weights match sequential training (max diff %.2g)\n", stage, maxDiff)
	}
	return nil
}

// buildJob deterministically constructs the model, schedule and per-step
// batches every process agrees on.
func buildJob(jf jobFlags) (*nn.Model, *sched.Schedule, [][][]int, error) {
	cfg := nn.Config{
		Hidden: jf.hidden, Heads: 2, FFN: jf.hidden * 2,
		Vocab: jf.vocab, Layers: jf.layers, SeqLen: jf.seqLen,
	}
	m, err := nn.NewModel(cfg, jf.seed)
	if err != nil {
		return nil, nil, nil, err
	}
	s, err := sched.MEPipe(jf.pp, jf.vp, jf.slices, jf.micro, 0, nn.WeightGradGEMMs, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	stream, err := data.NewStream(cfg.Vocab, cfg.SeqLen, jf.seed+1)
	if err != nil {
		return nil, nil, nil, err
	}
	batches := make([][][]int, jf.steps)
	for i := range batches {
		batches[i] = stream.Batch(jf.micro)
	}
	return m, s, batches, nil
}

// coordinator spawns one worker process per stage and brokers the address
// exchange.
func coordinator(jf jobFlags) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	addrs := make([]string, jf.pp)
	type child struct {
		cmd   *exec.Cmd
		stdin io.WriteCloser
		out   *bufio.Scanner
	}
	children := make([]child, jf.pp)
	for k := 0; k < jf.pp; k++ {
		args := []string{
			"-stage", fmt.Sprint(k),
			"-pp", fmt.Sprint(jf.pp), "-vp", fmt.Sprint(jf.vp),
			"-slices", fmt.Sprint(jf.slices), "-micro", fmt.Sprint(jf.micro),
			"-hidden", fmt.Sprint(jf.hidden), "-layers", fmt.Sprint(jf.layers),
			"-seq", fmt.Sprint(jf.seqLen), "-vocab", fmt.Sprint(jf.vocab),
			"-seed", fmt.Sprint(jf.seed),
			"-steps", fmt.Sprint(jf.steps), "-lr", fmt.Sprint(jf.lr),
		}
		if jf.verify {
			args = append(args, "-verify")
		}
		if jf.kernelWorkers > 0 {
			args = append(args, "-kernel-workers", fmt.Sprint(jf.kernelWorkers))
		}
		cmd := exec.Command(self, args...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		children[k] = child{cmd: cmd, stdin: stdin, out: bufio.NewScanner(stdout)}
	}
	// Gather LISTEN lines.
	for k := range children {
		if !children[k].out.Scan() {
			return fmt.Errorf("stage %d exited before announcing its address", k)
		}
		var stage int
		var addr string
		if _, err := fmt.Sscanf(children[k].out.Text(), "LISTEN %d %s", &stage, &addr); err != nil {
			return fmt.Errorf("stage %d: bad announce %q", k, children[k].out.Text())
		}
		addrs[stage] = addr
	}
	// Broadcast the address map.
	peers := "PEERS " + strings.Join(addrs, " ") + "\n"
	for k := range children {
		if _, err := io.WriteString(children[k].stdin, peers); err != nil {
			return err
		}
		children[k].stdin.Close()
	}
	// Collect reports.
	perStep := make([]float64, jf.steps)
	for k := range children {
		for children[k].out.Scan() {
			line := children[k].out.Text()
			fmt.Println(line)
			var st, step int
			var loss float64
			if n, _ := fmt.Sscanf(line, "STAGE %d step %d loss %f", &st, &step, &loss); n == 3 && step < jf.steps {
				perStep[step] += loss
			}
		}
		if err := children[k].cmd.Wait(); err != nil {
			return fmt.Errorf("stage %d failed: %w", k, err)
		}
	}
	for i, loss := range perStep {
		fmt.Printf("TOTAL step %d loss %.6f\n", i, loss)
	}
	return nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mepipe-worker:", err)
		os.Exit(1)
	}
}
