// Command mepipe-serve runs the MEPipe planning service: the strategy
// search, the simulator, the static certifier and the trace exporter
// behind a versioned JSON HTTP API with request coalescing and a
// content-addressed response cache. See docs/SERVE.md.
//
// Examples:
//
//	mepipe-serve -addr :8080
//	mepipe-serve -addr 127.0.0.1:9000 -cache 1024 -timeout 2m
//	mepipe-serve -selfcheck
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	v1 "mepipe/api/v1"
	"mepipe/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		cacheSize = flag.Int("cache", serve.DefaultCacheSize, "response cache capacity in entries (negative disables)")
		timeout   = flag.Duration("timeout", 0, "per-request wait bound (0 = none); timed-out waits report 499")
		selfcheck = flag.Bool("selfcheck", false, "boot on an ephemeral port, exercise the cached search path, and exit")
	)
	flag.Parse()

	if *selfcheck {
		fatal(runSelfcheck(*cacheSize, *timeout))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s := serve.New(serve.Options{CacheSize: *cacheSize, Timeout: *timeout, BaseContext: ctx})
	srv := &http.Server{Addr: *addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			errc <- err
			return
		}
		fmt.Printf("mepipe-serve: listening on %s (cache %d entries)\n", ln.Addr(), *cacheSize)
		errc <- srv.Serve(ln)
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		fmt.Println("mepipe-serve: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		fatal(srv.Shutdown(sctx))
	}
}

// runSelfcheck boots the service in-process on an ephemeral port and
// proves the full request path: a search answers 200 and certified, the
// identical repeat is served from the cache, and the stats endpoint
// reflects both. It is the CI smoke test (`make serve-smoke`).
func runSelfcheck(cacheSize int, timeout time.Duration) error {
	s := serve.New(serve.Options{CacheSize: cacheSize, Timeout: timeout})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln) //nolint:errcheck // torn down with Close below
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	doc, err := json.Marshal(v1.PlanRequest{
		API:      v1.Version,
		System:   "mepipe",
		Model:    v1.ModelSpec{Preset: "7b"},
		Cluster:  v1.ClusterSpec{Preset: "rtx4090", Servers: 1},
		Training: v1.TrainingSpec{GlobalBatch: 8},
		Space:    &v1.SpaceSpec{PP: []int{8}, CP: []int{1}, SPP: []int{4}, VP: []int{1, 2}, MinDP: 1},
	})
	if err != nil {
		return err
	}

	var res v1.SearchResponse
	outcome, err := post(base+"/v1/search", doc, &res)
	if err != nil {
		return err
	}
	if outcome != "miss" {
		return fmt.Errorf("selfcheck: first search served %q, want miss", outcome)
	}
	if !res.Certified || !res.Found || res.Best == nil {
		return fmt.Errorf("selfcheck: search found no certified candidate (certified=%v found=%v)", res.Certified, res.Found)
	}
	var res2 v1.SearchResponse
	outcome, err = post(base+"/v1/search", doc, &res2)
	if err != nil {
		return err
	}
	if outcome != "hit" {
		return fmt.Errorf("selfcheck: repeated search served %q, want hit", outcome)
	}
	if res2.Key != res.Key {
		return fmt.Errorf("selfcheck: cached key %s differs from computed %s", res2.Key, res.Key)
	}

	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var stats v1.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return err
	}
	ep := stats.Endpoints["/v1/search"]
	if ep.Requests != 2 || ep.Hits != 1 || ep.Misses != 1 {
		return fmt.Errorf("selfcheck: stats requests=%d hits=%d misses=%d, want 2/1/1", ep.Requests, ep.Hits, ep.Misses)
	}

	fmt.Printf("selfcheck ok: key %s, best pp=%d spp=%d dp=%d at %.1f ms/iter, cache hit on repeat\n",
		res.Key[:12], res.Best.Parallel.PP, res.Best.Parallel.SPP, res.Best.Parallel.DP, res.Best.IterTimeS*1e3)
	return nil
}

// post sends one JSON document and decodes the 200 response into out,
// returning the X-Mepipe-Cache header value.
func post(url string, doc []byte, out any) (string, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(doc))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("POST %s: %s: %s", url, resp.Status, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return "", err
	}
	return resp.Header.Get("X-Mepipe-Cache"), nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mepipe-serve:", err)
		os.Exit(1)
	}
}
