// Command mepipe-sim simulates one training configuration on a modelled
// cluster and reports iteration time, bubble ratio, memory, and (optionally)
// the stage timeline.
//
// Examples:
//
//	mepipe-sim -model 13b -gbs 64 -system mepipe -pp 8 -spp 4
//	mepipe-sim -model 13b -gbs 64 -system dapple -pp 8 -cp 2 -timeline
//	mepipe-sim -model 34b -gbs 128 -system mepipe -pp 16 -spp 16 -trace out.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/strategy"
	"mepipe/internal/timeline"
)

func main() {
	var (
		modelName = flag.String("model", "13b", "model preset: 7b, 13b, 34b")
		gbs       = flag.Int("gbs", 64, "global batch size")
		system    = flag.String("system", "mepipe", "scheduler: mepipe, dapple, vpp, zb, zbv, terapipe, gpipe")
		pp        = flag.Int("pp", 8, "pipeline stages")
		cp        = flag.Int("cp", 1, "context-parallel size")
		spp       = flag.Int("spp", 0, "sequence pipeline size (slices); 0 picks 4 for mepipe/terapipe, 1 otherwise")
		vp        = flag.Int("vp", 0, "virtual pipeline size; 0 picks the system default")
		recompute = flag.String("recompute", "none", "activation recomputation: none, selective, full")
		gpu       = flag.String("cluster", "4090", "cluster: 4090 (8 servers x 8) or a100 (4 servers x 8)")
		showTL    = flag.Bool("timeline", false, "render the per-stage ASCII timeline")
		traceOut  = flag.String("trace", "", "write a Chrome trace JSON to this file")
	)
	flag.Parse()

	m, err := config.ModelByName(*modelName)
	fatal(err)
	var cl cluster.Cluster
	switch strings.ToLower(*gpu) {
	case "4090":
		cl = cluster.RTX4090Cluster(8)
	case "a100":
		cl = cluster.A100Cluster(4)
	default:
		fatal(fmt.Errorf("unknown cluster %q", *gpu))
	}
	sys, err := systemByName(*system)
	fatal(err)

	rec, err := recomputeByName(*recompute)
	fatal(err)
	par := config.Parallel{PP: *pp, CP: *cp, SPP: *spp, VP: *vp, Recompute: rec}
	if par.SPP == 0 {
		par.SPP = 1
		if sys == strategy.MEPipe || sys == strategy.TeraPipe {
			par.SPP = 4
		}
	}
	if par.VP == 0 {
		par.VP = 1
		if sys == strategy.VPP || sys == strategy.ZBV {
			par.VP = 2
		}
	}
	par.DP = cl.GPUs() / (par.PP * par.CP)
	tr := config.Training{GlobalBatch: *gbs, MicroBatch: 1}

	ev, err := strategy.Evaluate(sys, m, cl, par, tr)
	fatal(err)
	fmt.Printf("system     %s\n", sys)
	fmt.Printf("model      %s on %s (%d GPUs)\n", m.Name, cl.GPU.Name, cl.GPUs())
	fmt.Printf("strategy   %v, n=%d micro-batches\n", ev.Par, ev.N)
	if ev.OOM {
		fmt.Printf("result     OUT OF MEMORY: %s\n", ev.OOMWhy)
		os.Exit(2)
	}
	fmt.Printf("iteration  %.1f ms\n", ev.IterTime*1e3)
	fmt.Printf("bubble     %.1f%%\n", 100*ev.Bubble)
	fmt.Printf("peak act   %.2f GiB (budget %.2f GiB)\n", float64(ev.PeakAct)/(1<<30), float64(ev.Budget)/(1<<30))
	fmt.Printf("throughput %.1f TFLOPS/GPU, MFU %.1f%%\n",
		ev.TFLOPSPerGPU(m, tr, cl.GPUs()), 100*ev.MFU(m, tr, cl))
	if ev.F > 0 {
		fmt.Printf("variant    f=%d forwards in flight (§4.2)\n", ev.F)
	}
	u := ev.Result.MeanUtilization()
	fr, b, wt, tail, idle := u.Fractions()
	fmt.Printf("breakdown  forward %.1f%%, backward %.1f%%, weight-grad %.1f%%, grad-sync %.1f%%, idle %.1f%%\n",
		100*fr, 100*b, 100*wt, 100*tail, 100*idle)
	if *showTL {
		fmt.Println()
		timeline.Render(os.Stdout, ev.Result, 0)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fatal(err)
		fatal(timeline.WriteChromeTrace(f, ev.Result))
		fatal(f.Close())
		fmt.Printf("trace      written to %s (open in chrome://tracing)\n", *traceOut)
	}
}

func recomputeByName(s string) (config.RecomputeMode, error) {
	switch strings.ToLower(s) {
	case "none", "":
		return config.RecomputeNone, nil
	case "selective":
		return config.RecomputeSelective, nil
	case "full":
		return config.RecomputeFull, nil
	}
	return 0, fmt.Errorf("unknown recompute mode %q", s)
}

func systemByName(s string) (strategy.System, error) {
	switch strings.ToLower(s) {
	case "mepipe":
		return strategy.MEPipe, nil
	case "dapple":
		return strategy.DAPPLE, nil
	case "vpp":
		return strategy.VPP, nil
	case "zb":
		return strategy.ZB, nil
	case "zbv":
		return strategy.ZBV, nil
	case "terapipe":
		return strategy.TeraPipe, nil
	case "gpipe":
		return strategy.GPipe, nil
	}
	return 0, fmt.Errorf("unknown system %q", s)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mepipe-sim:", err)
		os.Exit(1)
	}
}
