// Command mepipe-sim simulates one training configuration on a modelled
// cluster and reports iteration time, bubble ratio, memory, and (optionally)
// the stage timeline.
//
// The configuration comes either from flags or from a v1 request document
// (-f), the same JSON the mepipe-serve planning server consumes — a request
// is a portable artifact that means the same thing on the command line and
// over HTTP. See docs/SERVE.md for the schema.
//
// Examples:
//
//	mepipe-sim -model 13b -gbs 64 -system mepipe -pp 8 -spp 4
//	mepipe-sim -model 13b -gbs 64 -system dapple -pp 8 -cp 2 -timeline
//	mepipe-sim -f request.json -trace out.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	v1 "mepipe/api/v1"
	"mepipe/internal/strategy"
	"mepipe/internal/timeline"
)

func main() {
	var (
		file      = flag.String("f", "", "read a v1 request document (JSON) instead of building one from flags")
		modelName = flag.String("model", "13b", "model preset: 7b, 13b, 34b")
		gbs       = flag.Int("gbs", 64, "global batch size")
		system    = flag.String("system", "mepipe", "scheduler: mepipe, dapple, vpp, zb, zbv, terapipe, gpipe")
		pp        = flag.Int("pp", 8, "pipeline stages")
		cp        = flag.Int("cp", 1, "context-parallel size")
		spp       = flag.Int("spp", 0, "sequence pipeline size (slices); 0 picks 4 for mepipe/terapipe, 1 otherwise")
		vp        = flag.Int("vp", 0, "virtual pipeline size; 0 picks the system default")
		recompute = flag.String("recompute", "none", "activation recomputation: none, selective, full")
		gpu       = flag.String("cluster", "4090", "cluster: 4090 (8 servers x 8) or a100 (4 servers x 8)")
		showTL    = flag.Bool("timeline", false, "render the per-stage ASCII timeline")
		traceOut  = flag.String("trace", "", "write a Chrome trace JSON to this file")
	)
	flag.Parse()

	var req *v1.PlanRequest
	if *file != "" {
		f, err := os.Open(*file)
		fatal(err)
		req, err = v1.DecodePlanRequest(f)
		fatal(err)
		fatal(f.Close())
	} else {
		req = &v1.PlanRequest{
			System:   *system,
			Model:    v1.ModelSpec{Preset: *modelName},
			Cluster:  v1.ClusterSpec{Preset: *gpu},
			Training: v1.TrainingSpec{GlobalBatch: *gbs},
			Parallel: &v1.ParallelSpec{PP: *pp, CP: *cp, SPP: *spp, VP: *vp, Recompute: *recompute},
		}
	}
	plan, err := req.Compile()
	fatal(err)
	if plan.Parallel == nil {
		fatal(errors.New("request has no parallel strategy (mepipe-sim simulates one pinned strategy; use mepipe-search for grids)"))
	}
	sys, m, cl, par, tr := plan.System, plan.Model, plan.Cluster, *plan.Parallel, plan.Training

	ev, err := strategy.Evaluate(sys, m, cl, par, tr)
	fatal(err)
	fmt.Printf("system     %s\n", sys)
	fmt.Printf("model      %s on %s (%d GPUs)\n", m.Name, cl.GPU.Name, cl.GPUs())
	fmt.Printf("strategy   %v, n=%d micro-batches\n", ev.Par, ev.N)
	if ev.OOM {
		fmt.Printf("result     OUT OF MEMORY: %s\n", ev.OOMWhy)
		os.Exit(2)
	}
	fmt.Printf("iteration  %.1f ms\n", ev.IterTime*1e3)
	fmt.Printf("bubble     %.1f%%\n", 100*ev.Bubble)
	fmt.Printf("peak act   %.2f GiB (budget %.2f GiB)\n", float64(ev.PeakAct)/(1<<30), float64(ev.Budget)/(1<<30))
	fmt.Printf("throughput %.1f TFLOPS/GPU, MFU %.1f%%\n",
		ev.TFLOPSPerGPU(m, tr, cl.GPUs()), 100*ev.MFU(m, tr, cl))
	if ev.F > 0 {
		fmt.Printf("variant    f=%d forwards in flight (§4.2)\n", ev.F)
	}
	u, err := ev.Result.MeanUtilization()
	fatal(err)
	fr, b, wt, tail, idle := u.Fractions()
	fmt.Printf("breakdown  forward %.1f%%, backward %.1f%%, weight-grad %.1f%%, grad-sync %.1f%%, idle %.1f%%\n",
		100*fr, 100*b, 100*wt, 100*tail, 100*idle)
	if *showTL {
		fmt.Println()
		timeline.Render(os.Stdout, ev.Result, 0)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fatal(err)
		fatal(timeline.WriteChromeTrace(f, ev.Result))
		fatal(f.Close())
		fmt.Printf("trace      written to %s (open in chrome://tracing)\n", *traceOut)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mepipe-sim:", err)
		os.Exit(1)
	}
}
