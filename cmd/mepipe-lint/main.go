// Command mepipe-lint runs the repository's invariant analyzers
// (internal/lint) over Go package patterns and reports violations as
// file:line:col diagnostics. It exits 1 when any violation survives the
// allowlist, 2 on usage or I/O errors, and 0 on a clean tree — so it
// slots directly into `make lint` and CI.
//
// Usage:
//
//	mepipe-lint [-allow file] [-rule name] [-json] [-stale] [patterns...]
//
// Patterns default to ./... and are resolved against the module root
// (found by walking up from the working directory to go.mod). The
// allowlist defaults to .mepipe-lint-allow at the module root; audited
// exceptions are one `rule path-suffix` pair per line.
//
// Whole-module runs (the default ./... pattern) additionally verify the
// allowlist itself: an entry that suppresses nothing is reported as an
// `allowstale` violation anchored at its line in the allowlist file, so
// audited exceptions cannot outlive the code they excused. Use -stale to
// force this check on narrower patterns, or -stale=false to disable it.
//
// With -json each diagnostic is emitted as one JSON object per line
// (rule, file, line, col, msg, chain) for machine consumers such as the
// CI problem matcher.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mepipe/internal/lint"
)

// jsonDiag is the machine-readable diagnostic shape emitted under -json,
// one object per line. Field order is fixed and part of the tool's
// interface (CI problem matchers key on it).
type jsonDiag struct {
	Rule  string   `json:"rule"`
	File  string   `json:"file"`
	Line  int      `json:"line"`
	Col   int      `json:"col"`
	Msg   string   `json:"msg"`
	Chain []string `json:"chain,omitempty"`
}

func main() {
	allowFlag := flag.String("allow", "", "allowlist file (default <module root>/.mepipe-lint-allow)")
	ruleFlag := flag.String("rule", "", "run only the named rule (default all: see lint.Rules)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON Lines instead of file:line:col text")
	staleFlag := flag.Bool("stale", false, "report allowlist entries that suppress nothing (default: on for whole-module ./... runs)")
	flag.Parse()
	staleSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "stale" {
			staleSet = true
		}
	})

	root, err := moduleRoot()
	if err != nil {
		fail(err)
	}
	allowPath := *allowFlag
	if allowPath == "" {
		allowPath = filepath.Join(root, ".mepipe-lint-allow")
	}
	allow, err := lint.LoadAllowlist(allowPath)
	if err != nil {
		fail(err)
	}
	opts := lint.Options{Allow: allow, AllowPath: allowPath}
	if *ruleFlag != "" {
		valid := false
		for _, r := range lint.Rules() {
			valid = valid || r == *ruleFlag
		}
		if !valid {
			fail(fmt.Errorf("unknown rule %q (have %v)", *ruleFlag, lint.Rules()))
		}
		opts.Rules = []string{*ruleFlag}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if staleSet {
		opts.ReportStale = *staleFlag
	} else {
		// A whole-module run sees every possible violation, so an unused
		// allowlist entry is provably stale; narrower patterns cannot tell.
		opts.ReportStale = len(patterns) == 1 && patterns[0] == "./..."
	}
	diags, err := lint.Run(root, patterns, opts)
	if err != nil {
		fail(err)
	}
	out := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *jsonFlag {
			rel := d.Pos.Filename
			if r, err := filepath.Rel(root, rel); err == nil {
				rel = r
			}
			if err := out.Encode(jsonDiag{
				Rule: d.Rule, File: rel, Line: d.Pos.Line, Col: d.Pos.Column,
				Msg: d.Msg, Chain: d.Chain,
			}); err != nil {
				fail(err)
			}
		} else {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mepipe-lint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mepipe-lint:", err)
	os.Exit(2)
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
