// Command mepipe-lint runs the repository's invariant analyzers
// (internal/lint) over Go package patterns and reports violations as
// file:line:col diagnostics. It exits 1 when any violation survives the
// allowlist, 2 on usage or I/O errors, and 0 on a clean tree — so it
// slots directly into `make lint` and CI.
//
// Usage:
//
//	mepipe-lint [-allow file] [-rule name] [patterns...]
//
// Patterns default to ./... and are resolved against the module root
// (found by walking up from the working directory to go.mod). The
// allowlist defaults to .mepipe-lint-allow at the module root; audited
// exceptions are one `rule path-suffix` pair per line.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mepipe/internal/lint"
)

func main() {
	allowFlag := flag.String("allow", "", "allowlist file (default <module root>/.mepipe-lint-allow)")
	ruleFlag := flag.String("rule", "", "run only the named rule (default all: determinism, gospawn, noprint, errwrap)")
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fail(err)
	}
	allowPath := *allowFlag
	if allowPath == "" {
		allowPath = filepath.Join(root, ".mepipe-lint-allow")
	}
	allow, err := lint.LoadAllowlist(allowPath)
	if err != nil {
		fail(err)
	}
	opts := lint.Options{Allow: allow}
	if *ruleFlag != "" {
		valid := false
		for _, r := range lint.Rules() {
			valid = valid || r == *ruleFlag
		}
		if !valid {
			fail(fmt.Errorf("unknown rule %q (have %v)", *ruleFlag, lint.Rules()))
		}
		opts.Rules = []string{*ruleFlag}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(root, patterns, opts)
	if err != nil {
		fail(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mepipe-lint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mepipe-lint:", err)
	os.Exit(2)
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
