package v1_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	v1 "mepipe/api/v1"
	"mepipe/internal/config"
	"mepipe/internal/strategy"
)

var update = flag.Bool("update", false, "rewrite golden files")

// searchReq is the preset-spelled request used across the wire tests.
func searchReq() *v1.PlanRequest {
	return &v1.PlanRequest{
		System:   "MEPipe", // case-insensitive on the wire
		Model:    v1.ModelSpec{Preset: "13b"},
		Cluster:  v1.ClusterSpec{Preset: "rtx4090"},
		Training: v1.TrainingSpec{GlobalBatch: 64},
		Space:    &v1.SpaceSpec{PP: []int{16, 8, 8}, SPP: []int{4, 2}},
		Top:      3,
	}
}

// TestNormalizeGolden pins the canonical (normalized) form of a request —
// the exact bytes the cache key hashes. Any drift in field names, default
// filling, or preset expansion shows up as a diff. Regenerate with:
// go test ./api/v1 -run Golden -update
func TestNormalizeGolden(t *testing.T) {
	norm, err := searchReq().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(norm, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "search_canonical.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("canonical document drifted from golden %s (-update to accept):\n%s", golden, got)
	}

	// The canonical form must round-trip through the wire losslessly.
	back, err := v1.DecodePlanRequest(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, norm) {
		t.Errorf("round-trip changed the document:\ngot  %+v\nwant %+v", back, norm)
	}
}

// TestKeyEquivalence proves the content address ignores spelling: preset
// vs explicit model, shuffled and duplicated space lists, upper vs lower
// case system names.
func TestKeyEquivalence(t *testing.T) {
	a := searchReq()
	keyA, err := a.Key("search")
	if err != nil {
		t.Fatal(err)
	}
	if len(keyA) != 64 || strings.ToLower(keyA) != keyA {
		t.Fatalf("key %q is not lower-case hex sha256", keyA)
	}

	m := config.Llama13B()
	b := &v1.PlanRequest{
		System: "mepipe",
		Model: v1.ModelSpec{
			Name: m.Name, HiddenSize: m.HiddenSize, NumLayers: m.NumLayers,
			NumHeads: m.NumHeads, NumKVHeads: m.NumKVHeads, FFNHidden: m.FFNHidden,
			VocabSize: m.VocabSize, SeqLen: m.SeqLen,
		},
		Cluster:  v1.ClusterSpec{GPU: "rtx4090", GPUsPerServer: 8, Servers: 8},
		Training: v1.TrainingSpec{GlobalBatch: 64, MicroBatch: 1},
		Space:    &v1.SpaceSpec{PP: []int{8, 16}, SPP: []int{2, 4, 4}},
		Top:      3,
	}
	keyB, err := b.Key("search")
	if err != nil {
		t.Fatal(err)
	}
	if keyA != keyB {
		t.Errorf("equivalent spellings hash differently:\n%s\n%s", keyA, keyB)
	}

	// The operation tag and any semantic change must change the key.
	keySim, err := a.Key("simulate")
	if err != nil {
		t.Fatal(err)
	}
	if keySim == keyA {
		t.Error("search and simulate share a key")
	}
	c := searchReq()
	c.Training.GlobalBatch = 128
	keyC, err := c.Key("search")
	if err != nil {
		t.Fatal(err)
	}
	if keyC == keyA {
		t.Error("different global batch shares a key")
	}
}

// TestNormalizeDefaults pins the CLI-compatible default filling for pinned
// strategies.
func TestNormalizeDefaults(t *testing.T) {
	req := &v1.PlanRequest{
		System:   "mepipe",
		Model:    v1.ModelSpec{Preset: "7b"},
		Cluster:  v1.ClusterSpec{Preset: "rtx4090"},
		Training: v1.TrainingSpec{GlobalBatch: 64},
		Parallel: &v1.ParallelSpec{PP: 8},
	}
	norm, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	p := norm.Parallel
	if p.SPP != 4 || p.VP != 1 || p.CP != 1 || p.DP != 8 {
		t.Errorf("mepipe defaults = spp=%d vp=%d cp=%d dp=%d, want 4/1/1/8", p.SPP, p.VP, p.CP, p.DP)
	}
	if norm.Training.MicroBatch != 1 {
		t.Errorf("micro batch defaulted to %d, want 1", norm.Training.MicroBatch)
	}
	if norm.Space != nil {
		t.Error("simulate document grew a search space")
	}

	req.System = "vpp"
	req.Parallel = &v1.ParallelSpec{PP: 8}
	norm, err = req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Parallel.VP != 2 || norm.Parallel.SPP != 1 {
		t.Errorf("vpp defaults = vp=%d spp=%d, want 2/1", norm.Parallel.VP, norm.Parallel.SPP)
	}
}

// TestDecodeStrict pins the malformed-document contract: unknown fields,
// trailing data, bad versions and missing requireds all wrap ErrBadRequest.
func TestDecodeStrict(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"system":"mepipe","modle":{}}`,
		"trailing data": `{"system":"mepipe"} {"again":true}`,
		"not json":      `hello`,
	}
	for name, doc := range cases {
		if _, err := v1.DecodePlanRequest(strings.NewReader(doc)); !isBadRequest(err) {
			t.Errorf("%s: err = %v, want ErrBadRequest", name, err)
		}
	}

	bad := searchReq()
	bad.API = "v2"
	if _, err := bad.Normalize(); !isBadRequest(err) {
		t.Errorf("api v2: err = %v, want ErrBadRequest", err)
	}
	bad = searchReq()
	bad.System = "magic"
	if _, err := bad.Normalize(); !isBadRequest(err) {
		t.Errorf("unknown system: err = %v, want ErrBadRequest", err)
	}
	bad = searchReq()
	bad.Training.GlobalBatch = 0
	if _, err := bad.Normalize(); !isBadRequest(err) {
		t.Errorf("zero batch: err = %v, want ErrBadRequest", err)
	}
	bad = searchReq()
	bad.Model.HiddenSize = 4096 // preset + explicit dimensions conflict
	if _, err := bad.Normalize(); !isBadRequest(err) {
		t.Errorf("preset+explicit model: err = %v, want ErrBadRequest", err)
	}

	if _, err := v1.DecodeCertifyRequest(strings.NewReader(`{}`)); !isBadRequest(err) {
		t.Errorf("certify without schedule: err = %v, want ErrBadRequest", err)
	}
}

// TestSystemNames round-trips every system through the wire spelling.
func TestSystemNames(t *testing.T) {
	for _, sys := range strategy.Systems() {
		name := v1.SystemName(sys)
		back, err := v1.SystemByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back != sys {
			t.Errorf("%s round-tripped to %s", sys, back)
		}
	}
}

// TestCompile checks the compiled plan reaches the domain types intact.
func TestCompile(t *testing.T) {
	plan, err := searchReq().Compile()
	if err != nil {
		t.Fatal(err)
	}
	if plan.System != strategy.MEPipe {
		t.Errorf("system = %v", plan.System)
	}
	if plan.Model.Name != config.Llama13B().Name {
		t.Errorf("model = %q", plan.Model.Name)
	}
	if got := plan.Cluster.GPUs(); got != 64 {
		t.Errorf("cluster GPUs = %d, want 64", got)
	}
	if !reflect.DeepEqual(plan.Space.PP, []int{8, 16}) || !reflect.DeepEqual(plan.Space.SPP, []int{2, 4}) {
		t.Errorf("space lists not canonicalized: %+v", plan.Space)
	}
	if plan.Top != 3 || plan.Parallel != nil {
		t.Errorf("top = %d parallel = %v", plan.Top, plan.Parallel)
	}
}

func isBadRequest(err error) bool { return errors.Is(err, v1.ErrBadRequest) }

// optimizeReq is a pinned-strategy optimize request.
func optimizeReq(spec *v1.OptSpec) *v1.OptimizeRequest {
	return &v1.OptimizeRequest{
		PlanRequest: v1.PlanRequest{
			System:   "mepipe",
			Model:    v1.ModelSpec{Preset: "7b"},
			Cluster:  v1.ClusterSpec{Preset: "rtx4090", Servers: 1},
			Training: v1.TrainingSpec{GlobalBatch: 8},
			Parallel: &v1.ParallelSpec{PP: 8},
		},
		Opt: spec,
	}
}

// TestOptimizeNormalize pins the optimizer-spec defaults and the
// requirement for a pinned strategy.
func TestOptimizeNormalize(t *testing.T) {
	norm, err := optimizeReq(nil).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want := v1.OptSpec{Seed: v1.DefaultOptSeed, Iters: v1.DefaultOptIters, Proposals: v1.DefaultOptProposals}
	if norm.Opt == nil || *norm.Opt != want {
		t.Errorf("defaulted spec = %+v, want %+v", norm.Opt, want)
	}
	if norm.Parallel == nil || norm.Parallel.DP == 0 {
		t.Errorf("plan was not normalized: %+v", norm.PlanRequest)
	}

	noPar := optimizeReq(nil)
	noPar.Parallel = nil
	if _, err := noPar.Normalize(); !errors.Is(err, v1.ErrBadRequest) {
		t.Errorf("missing parallel: err = %v, want ErrBadRequest", err)
	}
	bad := optimizeReq(&v1.OptSpec{Iters: -1})
	if _, err := bad.Normalize(); !errors.Is(err, v1.ErrBadRequest) {
		t.Errorf("negative iters: err = %v, want ErrBadRequest", err)
	}
}

// TestOptimizeKey pins the optimize key's equivalence class: defaults
// spelled out hash like defaults omitted, the optimizer spec is part of
// the key, and the key never collides with the simulate key of the same
// plan.
func TestOptimizeKey(t *testing.T) {
	k1, err := optimizeReq(nil).Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := optimizeReq(&v1.OptSpec{Seed: v1.DefaultOptSeed, Iters: v1.DefaultOptIters, Proposals: v1.DefaultOptProposals}).Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("spelled-out defaults hash differently from omitted defaults")
	}
	k3, err := optimizeReq(&v1.OptSpec{Seed: 2}).Key()
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("a different optimizer seed must change the key")
	}
	sim, err := optimizeReq(nil).PlanRequest.Key("simulate")
	if err != nil {
		t.Fatal(err)
	}
	if sim == k1 {
		t.Error("optimize key collides with the simulate key of the same plan")
	}
}
