package v1

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/strategy"
)

// SweepRequest asks POST /v1/sweep to grid-search several systems in one
// streaming pass over a deduplicated work plan. It is the multi-system
// sibling of the search document: the same model/cluster/training/space
// fields, with a list of systems instead of one.
type SweepRequest struct {
	// API is the wire version; empty means "v1".
	API string `json:"api,omitempty"`
	// Systems lists the systems to sweep, in response order; empty means
	// all of them. Duplicates are rejected.
	Systems []string `json:"systems,omitempty"`

	Model    ModelSpec    `json:"model"`
	Cluster  ClusterSpec  `json:"cluster"`
	Training TrainingSpec `json:"training"`

	// Space bounds the shared search grid; nil selects the paper's
	// default space.
	Space *SpaceSpec `json:"space,omitempty"`

	// Top caps the ranked candidates carried per system; 0 returns all.
	Top int `json:"top,omitempty"`
}

// SweepPlan is a compiled sweep request.
type SweepPlan struct {
	Systems  []strategy.System
	Model    config.Model
	Cluster  cluster.Cluster
	Training config.Training
	Space    strategy.SearchSpace
	Top      int
}

// SweepStats mirrors strategy.SweepStats on the wire, with the derived
// ratios spelled out so clients need no arithmetic.
type SweepStats struct {
	GridPoints  int     `json:"grid_points"`
	Shapes      int     `json:"shapes"`
	Generated   int     `json:"generated"`
	Certified   int     `json:"certified"`
	Deduped     int     `json:"deduped"`
	Simulated   int     `json:"simulated"`
	GateSkipped int     `json:"gate_skipped"`
	Evaluated   int     `json:"evaluated"`
	Pruned      int     `json:"pruned"`
	DedupRatio  float64 `json:"dedup_ratio"`
	PruneRate   float64 `json:"prune_rate"`
}

// SweepSystemResult is one system's slice of a sweep response — the same
// shape a /v1/search response has for that system, plus the per-system
// error SearchContext would have reported (e.g. "no candidate fits").
type SweepSystemResult struct {
	System     string      `json:"system"`
	Found      bool        `json:"found"`
	Best       *Candidate  `json:"best,omitempty"`
	Candidates []Candidate `json:"candidates"`
	Evaluated  int         `json:"evaluated"`
	Pruned     int         `json:"pruned,omitempty"`
	Error      string      `json:"error,omitempty"`
}

// SweepResponse is the body of a successful POST /v1/sweep.
type SweepResponse struct {
	API string `json:"api"`
	Key string `json:"key"`
	// Certified reports that every simulated candidate passed static
	// certification before it was timed; deduplicated grid points share
	// their representative's certificate by byte-equality of the
	// schedules.
	Certified bool                `json:"certified"`
	Systems   []SweepSystemResult `json:"systems"`
	Stats     SweepStats          `json:"stats"`
}

// DecodeSweepRequest reads one strict SweepRequest document.
func DecodeSweepRequest(r io.Reader) (*SweepRequest, error) {
	var req SweepRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	return &req, nil
}

// Normalize returns the canonical form of the sweep request: version
// pinned, presets expanded, defaults filled, and the system list spelled
// out in canonical lower-case (an empty list expands to every system, so
// "all by default" and "all spelled out" hash identically). The receiver
// is not modified; failures wrap ErrBadRequest.
func (r *SweepRequest) Normalize() (*SweepRequest, error) {
	if r == nil {
		return nil, fmt.Errorf("%w: empty request", ErrBadRequest)
	}
	if r.API != "" && r.API != Version {
		return nil, fmt.Errorf("%w: unsupported api version %q (this server speaks %q)", ErrBadRequest, r.API, Version)
	}
	systems, err := sweepSystems(r.Systems)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(systems))
	for i, sys := range systems {
		names[i] = SystemName(sys)
	}
	m, err := r.Model.Model()
	if err != nil {
		return nil, err
	}
	cl, err := r.Cluster.Cluster()
	if err != nil {
		return nil, err
	}
	if r.Training.GlobalBatch <= 0 {
		return nil, fmt.Errorf("%w: training.global_batch %d must be positive", ErrBadRequest, r.Training.GlobalBatch)
	}
	tr := r.Training.Training()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if r.Top < 0 {
		return nil, fmt.Errorf("%w: top %d must be non-negative", ErrBadRequest, r.Top)
	}
	return &SweepRequest{
		API:      Version,
		Systems:  names,
		Model:    ModelFrom(m),
		Cluster:  ClusterFrom(cl),
		Training: TrainingFrom(tr),
		Space:    SpaceFrom(r.Space.Space()),
		Top:      r.Top,
	}, nil
}

// sweepSystems parses the request's system list; empty means all systems.
func sweepSystems(names []string) ([]strategy.System, error) {
	if len(names) == 0 {
		return strategy.Systems(), nil
	}
	systems := make([]strategy.System, 0, len(names))
	seen := make(map[strategy.System]bool, len(names))
	for _, name := range names {
		sys, err := SystemByName(name)
		if err != nil {
			return nil, err
		}
		if seen[sys] {
			return nil, fmt.Errorf("%w: duplicate system %q in sweep", ErrBadRequest, name)
		}
		seen[sys] = true
		systems = append(systems, sys)
	}
	return systems, nil
}

// Compile normalizes the request and converts it to domain values.
func (r *SweepRequest) Compile() (*SweepPlan, error) {
	norm, err := r.Normalize()
	if err != nil {
		return nil, err
	}
	systems, err := sweepSystems(norm.Systems)
	if err != nil {
		return nil, err
	}
	m, err := norm.Model.Model()
	if err != nil {
		return nil, err
	}
	cl, err := norm.Cluster.Cluster()
	if err != nil {
		return nil, err
	}
	return &SweepPlan{
		Systems:  systems,
		Model:    m,
		Cluster:  cl,
		Training: norm.Training.Training(),
		Space:    norm.Space.Space(),
		Top:      norm.Top,
	}, nil
}

// Key returns the sweep request's content address: the hex SHA-256 of the
// "sweep" operation tag plus the canonical JSON of the normalized
// document.
func (r *SweepRequest) Key() (string, error) {
	norm, err := r.Normalize()
	if err != nil {
		return "", err
	}
	doc, err := json.Marshal(struct {
		Op  string        `json:"op"`
		Req *SweepRequest `json:"req"`
	}{Op: "sweep", Req: norm})
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:]), nil
}

// SweepStatsFrom builds the wire form of the engine counters.
func SweepStatsFrom(st strategy.SweepStats) SweepStats {
	return SweepStats{
		GridPoints:  st.GridPoints,
		Shapes:      st.Shapes,
		Generated:   st.Generated,
		Certified:   st.Certified,
		Deduped:     st.Deduped,
		Simulated:   st.Simulated,
		GateSkipped: st.GateSkipped,
		Evaluated:   st.Evaluated,
		Pruned:      st.Pruned,
		DedupRatio:  st.DedupRatio(),
		PruneRate:   st.PruneRate(),
	}
}
