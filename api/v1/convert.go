package v1

import (
	"fmt"
	"sort"
	"strings"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/hw"
	"mepipe/internal/strategy"
)

// SystemByName parses a wire system name (case-insensitive).
func SystemByName(name string) (strategy.System, error) {
	switch strings.ToLower(name) {
	case "mepipe":
		return strategy.MEPipe, nil
	case "dapple":
		return strategy.DAPPLE, nil
	case "vpp":
		return strategy.VPP, nil
	case "zb":
		return strategy.ZB, nil
	case "zbv":
		return strategy.ZBV, nil
	case "terapipe":
		return strategy.TeraPipe, nil
	case "gpipe":
		return strategy.GPipe, nil
	}
	return 0, fmt.Errorf("%w: unknown system %q (want mepipe, dapple, vpp, zb, zbv, terapipe or gpipe)", ErrBadRequest, name)
}

// SystemName renders a system in canonical wire form (lower-case).
func SystemName(sys strategy.System) string { return strings.ToLower(sys.String()) }

// recomputeByName parses a wire recompute mode.
func recomputeByName(name string) (config.RecomputeMode, error) {
	switch strings.ToLower(name) {
	case "", "none":
		return config.RecomputeNone, nil
	case "selective":
		return config.RecomputeSelective, nil
	case "full":
		return config.RecomputeFull, nil
	}
	return 0, fmt.Errorf("%w: unknown recompute mode %q (want none, selective or full)", ErrBadRequest, name)
}

// recomputeName renders a recompute mode in canonical wire form; the
// default mode is the empty string so it stays omitted from canonical
// documents.
func recomputeName(m config.RecomputeMode) string {
	switch m {
	case config.RecomputeSelective:
		return "selective"
	case config.RecomputeFull:
		return "full"
	}
	return ""
}

// Model converts the spec to a validated config.Model.
func (s ModelSpec) Model() (config.Model, error) {
	if s.Preset != "" {
		if s.HiddenSize != 0 || s.NumLayers != 0 || s.NumHeads != 0 || s.NumKVHeads != 0 ||
			s.FFNHidden != 0 || s.VocabSize != 0 || s.SeqLen != 0 || s.Name != "" {
			return config.Model{}, fmt.Errorf("%w: model preset %q cannot be combined with explicit dimensions", ErrBadRequest, s.Preset)
		}
		m, err := config.ModelByName(s.Preset)
		if err != nil {
			return config.Model{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return m, nil
	}
	m := config.Model{
		Name: s.Name, HiddenSize: s.HiddenSize, NumLayers: s.NumLayers,
		NumHeads: s.NumHeads, NumKVHeads: s.NumKVHeads, FFNHidden: s.FFNHidden,
		VocabSize: s.VocabSize, SeqLen: s.SeqLen,
	}
	if m.NumKVHeads == 0 {
		m.NumKVHeads = m.NumHeads
	}
	if err := m.Validate(); err != nil {
		return config.Model{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return m, nil
}

// ModelFrom builds the canonical explicit spec for a model.
func ModelFrom(m config.Model) ModelSpec {
	return ModelSpec{
		Name: m.Name, HiddenSize: m.HiddenSize, NumLayers: m.NumLayers,
		NumHeads: m.NumHeads, NumKVHeads: m.NumKVHeads, FFNHidden: m.FFNHidden,
		VocabSize: m.VocabSize, SeqLen: m.SeqLen,
	}
}

// Cluster converts the spec to a modelled cluster.
func (s ClusterSpec) Cluster() (cluster.Cluster, error) {
	if s.Preset != "" && s.GPU != "" {
		return cluster.Cluster{}, fmt.Errorf("%w: cluster preset %q cannot be combined with an explicit gpu", ErrBadRequest, s.Preset)
	}
	switch strings.ToLower(s.Preset) {
	case "rtx4090", "4090":
		servers := s.Servers
		if servers == 0 {
			servers = 8
		}
		cl := cluster.RTX4090Cluster(servers)
		if s.GPUsPerServer != 0 {
			cl.GPUsPerServer = s.GPUsPerServer
		}
		return cl, nil
	case "a100":
		servers := s.Servers
		if servers == 0 {
			servers = 4
		}
		cl := cluster.A100Cluster(servers)
		if s.GPUsPerServer != 0 {
			cl.GPUsPerServer = s.GPUsPerServer
		}
		return cl, nil
	case "":
	default:
		return cluster.Cluster{}, fmt.Errorf("%w: unknown cluster preset %q (want rtx4090 or a100)", ErrBadRequest, s.Preset)
	}
	if s.GPU == "" {
		return cluster.Cluster{}, fmt.Errorf("%w: cluster needs a preset or a gpu name", ErrBadRequest)
	}
	gpu, err := hw.GPUByName(s.GPU)
	if err != nil {
		return cluster.Cluster{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	// Explicit clusters reuse the preset testbed matching the GPU so the
	// interconnect model stays calibrated; only the shape is overridden.
	var cl cluster.Cluster
	if gpu.Name == hw.A100().Name {
		cl = cluster.A100Cluster(4)
	} else {
		cl = cluster.RTX4090Cluster(8)
	}
	if s.Servers != 0 {
		cl.Servers = s.Servers
	}
	if s.GPUsPerServer != 0 {
		cl.GPUsPerServer = s.GPUsPerServer
	}
	if cl.Servers <= 0 || cl.GPUsPerServer <= 0 {
		return cluster.Cluster{}, fmt.Errorf("%w: cluster shape %dx%d must be positive", ErrBadRequest, cl.Servers, cl.GPUsPerServer)
	}
	return cl, nil
}

// ClusterFrom builds the canonical explicit spec for a cluster.
func ClusterFrom(cl cluster.Cluster) ClusterSpec {
	name := "rtx4090"
	if cl.GPU.Name == hw.A100().Name {
		name = "a100"
	}
	return ClusterSpec{GPU: name, GPUsPerServer: cl.GPUsPerServer, Servers: cl.Servers}
}

// Parallel converts the spec to a config.Parallel. Zero DP/CP/SPP/VP are
// left for Normalize to default; callers converting un-normalized specs
// get the literal values.
func (s ParallelSpec) Parallel() (config.Parallel, error) {
	rec, err := recomputeByName(s.Recompute)
	if err != nil {
		return config.Parallel{}, err
	}
	return config.Parallel{
		PP: s.PP, DP: s.DP, CP: s.CP, SPP: s.SPP, VP: s.VP, TP: s.TP,
		Recompute: rec,
	}, nil
}

// ParallelFrom builds the wire spec for a strategy.
func ParallelFrom(p config.Parallel) ParallelSpec {
	return ParallelSpec{
		PP: p.PP, DP: p.DP, CP: p.CP, SPP: p.SPP, VP: p.VP, TP: p.TP,
		Recompute: recomputeName(p.Recompute),
	}
}

// Training converts the spec to a config.Training.
func (s TrainingSpec) Training() config.Training {
	mb := s.MicroBatch
	if mb == 0 {
		mb = 1
	}
	return config.Training{GlobalBatch: s.GlobalBatch, MicroBatch: mb}
}

// TrainingFrom builds the wire spec for a training config.
func TrainingFrom(t config.Training) TrainingSpec {
	return TrainingSpec{GlobalBatch: t.GlobalBatch, MicroBatch: t.MicroBatch}
}

// Space converts the spec to a strategy.SearchSpace; a nil spec is the
// paper's default space.
func (s *SpaceSpec) Space() strategy.SearchSpace {
	if s == nil {
		return strategy.DefaultSpace()
	}
	sp := strategy.SearchSpace{
		PP: append([]int(nil), s.PP...), CP: append([]int(nil), s.CP...),
		SPP: append([]int(nil), s.SPP...), VP: append([]int(nil), s.VP...),
		MinDP: s.MinDP, Prune: s.Prune,
	}
	d := strategy.DefaultSpace()
	if len(sp.PP) == 0 {
		sp.PP = d.PP
	}
	if len(sp.CP) == 0 {
		sp.CP = d.CP
	}
	if len(sp.SPP) == 0 {
		sp.SPP = d.SPP
	}
	if len(sp.VP) == 0 {
		sp.VP = d.VP
	}
	if sp.MinDP == 0 {
		sp.MinDP = d.MinDP
	}
	return sp
}

// SpaceFrom builds the wire spec for a search space.
func SpaceFrom(sp strategy.SearchSpace) *SpaceSpec {
	return &SpaceSpec{
		PP: sortedUnique(sp.PP), CP: sortedUnique(sp.CP),
		SPP: sortedUnique(sp.SPP), VP: sortedUnique(sp.VP),
		MinDP: sp.MinDP, Prune: sp.Prune,
	}
}

// sortedUnique returns a sorted copy with duplicates removed — the
// canonical list form used by hashing (the ranked search result is
// independent of enumeration order, so this is semantics-preserving).
func sortedUnique(xs []int) []int {
	if len(xs) == 0 {
		return nil
	}
	out := append([]int(nil), xs...)
	sort.Ints(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// CandidateFrom builds the wire form of one evaluated configuration,
// deriving throughput figures from the job context.
func CandidateFrom(ev *strategy.Eval, m config.Model, cl cluster.Cluster, tr config.Training) Candidate {
	c := Candidate{
		Parallel:     ParallelFrom(ev.Par),
		MicroBatches: ev.N,
		OOM:          ev.OOM,
		OOMWhy:       ev.OOMWhy,
		BudgetBytes:  ev.Budget,
		F:            ev.F,
	}
	if !ev.OOM {
		c.IterTimeS = ev.IterTime
		c.Bubble = ev.Bubble
		c.PeakActBytes = ev.PeakAct
		c.TFLOPSPerGPU = ev.TFLOPSPerGPU(m, tr, cl.GPUs())
		c.MFU = ev.MFU(m, tr, cl)
	}
	return c
}
