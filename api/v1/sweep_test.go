package v1_test

import (
	"errors"
	"strings"
	"testing"

	v1 "mepipe/api/v1"
	"mepipe/internal/strategy"
)

func sweepReq() *v1.SweepRequest {
	return &v1.SweepRequest{
		Systems:  []string{"MEPipe", "dapple"},
		Model:    v1.ModelSpec{Preset: "13b"},
		Cluster:  v1.ClusterSpec{Preset: "rtx4090"},
		Training: v1.TrainingSpec{GlobalBatch: 64},
		Space:    &v1.SpaceSpec{PP: []int{16, 8, 8}, SPP: []int{4, 2}},
	}
}

// TestSweepKeyEquivalence: equivalent spellings share a key, semantic
// differences change it.
func TestSweepKeyEquivalence(t *testing.T) {
	base, err := sweepReq().Key()
	if err != nil {
		t.Fatal(err)
	}

	// Case and list order are not semantic.
	alt := sweepReq()
	alt.Systems = []string{"mepipe", "DAPPLE"}
	alt.Space = &v1.SpaceSpec{PP: []int{8, 16}, SPP: []int{2, 4, 4}}
	if k, err := alt.Key(); err != nil || k != base {
		t.Errorf("equivalent spelling: key %q err %v, want %q", k, err, base)
	}

	// System order IS semantic (it is the response order).
	swapped := sweepReq()
	swapped.Systems = []string{"dapple", "mepipe"}
	if k, _ := swapped.Key(); k == base {
		t.Error("system order change did not change the key")
	}

	// An empty system list means all systems, spelled out or not.
	all := sweepReq()
	all.Systems = nil
	allKey, err := all.Key()
	if err != nil {
		t.Fatal(err)
	}
	spelled := sweepReq()
	spelled.Systems = nil
	for _, sys := range strategy.Systems() {
		spelled.Systems = append(spelled.Systems, v1.SystemName(sys))
	}
	if k, _ := spelled.Key(); k != allKey {
		t.Errorf("spelled-out all-systems key %q differs from empty-list key %q", k, allKey)
	}

	// A different operation tag keys differently than search even with
	// one system.
	one := sweepReq()
	one.Systems = []string{"mepipe"}
	oneKey, err := one.Key()
	if err != nil {
		t.Fatal(err)
	}
	plain := searchReq()
	plain.Top = 0
	plainKey, err := plain.Key("search")
	if err != nil {
		t.Fatal(err)
	}
	if oneKey == plainKey {
		t.Error("sweep and search share a cache key")
	}
}

// TestSweepNormalizeRejects pins the bad-request classifications.
func TestSweepNormalizeRejects(t *testing.T) {
	dup := sweepReq()
	dup.Systems = []string{"mepipe", "MEPIPE"}
	if _, err := dup.Normalize(); !errors.Is(err, v1.ErrBadRequest) {
		t.Errorf("duplicate systems: err = %v, want ErrBadRequest", err)
	}

	unknown := sweepReq()
	unknown.Systems = []string{"nope"}
	if _, err := unknown.Normalize(); !errors.Is(err, v1.ErrBadRequest) {
		t.Errorf("unknown system: err = %v, want ErrBadRequest", err)
	}

	ver := sweepReq()
	ver.API = "v2"
	if _, err := ver.Normalize(); !errors.Is(err, v1.ErrBadRequest) {
		t.Errorf("bad version: err = %v, want ErrBadRequest", err)
	}

	batch := sweepReq()
	batch.Training.GlobalBatch = 0
	if _, err := batch.Normalize(); !errors.Is(err, v1.ErrBadRequest) {
		t.Errorf("zero batch: err = %v, want ErrBadRequest", err)
	}
}

// TestSweepDecodeStrict: unknown fields are rejected like every other
// document.
func TestSweepDecodeStrict(t *testing.T) {
	_, err := v1.DecodeSweepRequest(strings.NewReader(`{"systems":["mepipe"],"modle":{}}`))
	if !errors.Is(err, v1.ErrBadRequest) {
		t.Errorf("misspelled field: err = %v, want ErrBadRequest", err)
	}
	req, err := v1.DecodeSweepRequest(strings.NewReader(
		`{"systems":["mepipe"],"model":{"preset":"7b"},"cluster":{"preset":"rtx4090"},"training":{"global_batch":8}}`))
	if err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	plan, err := req.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Systems) != 1 || plan.Systems[0] != strategy.MEPipe {
		t.Errorf("compiled systems = %v", plan.Systems)
	}
	if len(plan.Space.PP) == 0 {
		t.Error("default space not filled")
	}
}
