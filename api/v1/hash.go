package v1

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/strategy"
)

// Plan is a compiled request: the domain values every entry point
// ultimately consumes.
type Plan struct {
	System   strategy.System
	Model    config.Model
	Cluster  cluster.Cluster
	Training config.Training
	// Parallel is nil for pure search documents.
	Parallel *config.Parallel
	Space    strategy.SearchSpace
	// Top caps the candidates carried by a search response (0 = all).
	Top int
}

// Normalize returns the canonical form of the request: version pinned,
// presets expanded to explicit dimensions, defaults filled (micro batch,
// SPP/VP system defaults, derived DP, default search space with sorted
// lists). Two documents that mean the same job normalize to byte-identical
// canonical JSON, which is what Key hashes. The receiver is not modified;
// failures wrap ErrBadRequest.
func (r *PlanRequest) Normalize() (*PlanRequest, error) {
	if r == nil {
		return nil, fmt.Errorf("%w: empty request", ErrBadRequest)
	}
	if r.API != "" && r.API != Version {
		return nil, fmt.Errorf("%w: unsupported api version %q (this server speaks %q)", ErrBadRequest, r.API, Version)
	}
	sys, err := SystemByName(r.System)
	if err != nil {
		return nil, err
	}
	m, err := r.Model.Model()
	if err != nil {
		return nil, err
	}
	cl, err := r.Cluster.Cluster()
	if err != nil {
		return nil, err
	}
	if r.Training.GlobalBatch <= 0 {
		return nil, fmt.Errorf("%w: training.global_batch %d must be positive", ErrBadRequest, r.Training.GlobalBatch)
	}
	tr := r.Training.Training()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	out := &PlanRequest{
		API:      Version,
		System:   SystemName(sys),
		Model:    ModelFrom(m),
		Cluster:  ClusterFrom(cl),
		Training: TrainingFrom(tr),
		Top:      r.Top,
	}
	if r.Top < 0 {
		return nil, fmt.Errorf("%w: top %d must be non-negative", ErrBadRequest, r.Top)
	}
	if r.Parallel != nil {
		par, err := r.Parallel.Parallel()
		if err != nil {
			return nil, err
		}
		par = defaultParallel(par, sys, cl)
		if err := par.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		spec := ParallelFrom(par)
		out.Parallel = &spec
	}
	if r.Space != nil || r.Parallel == nil {
		sp := r.Space.Space()
		out.Space = SpaceFrom(sp)
	}
	return out, nil
}

// defaultParallel fills the zero fields of a pinned strategy the way the
// CLIs always have: SPP defaults to 4 for the slice-level systems and 1
// otherwise, VP to the system's natural depth, CP to 1, and DP to
// whatever is left of the cluster.
func defaultParallel(par config.Parallel, sys strategy.System, cl cluster.Cluster) config.Parallel {
	if par.CP == 0 {
		par.CP = 1
	}
	if par.SPP == 0 {
		par.SPP = 1
		if sys == strategy.MEPipe || sys == strategy.TeraPipe {
			par.SPP = 4
		}
	}
	if par.VP == 0 {
		par.VP = 1
		if sys == strategy.VPP || sys == strategy.ZBV {
			par.VP = 2
		}
	}
	if par.DP == 0 && par.PP > 0 {
		if div := par.PP * par.CP * par.TPSize(); div > 0 && cl.GPUs()%div == 0 {
			par.DP = cl.GPUs() / div
		}
	}
	return par
}

// Compile normalizes the request and converts it to domain values.
func (r *PlanRequest) Compile() (*Plan, error) {
	norm, err := r.Normalize()
	if err != nil {
		return nil, err
	}
	sys, err := SystemByName(norm.System)
	if err != nil {
		return nil, err
	}
	m, err := norm.Model.Model()
	if err != nil {
		return nil, err
	}
	cl, err := norm.Cluster.Cluster()
	if err != nil {
		return nil, err
	}
	p := &Plan{
		System: sys, Model: m, Cluster: cl,
		Training: norm.Training.Training(),
		Space:    norm.Space.Space(),
		Top:      norm.Top,
	}
	if norm.Parallel != nil {
		par, err := norm.Parallel.Parallel()
		if err != nil {
			return nil, err
		}
		p.Parallel = &par
	}
	return p, nil
}

// Key returns the request's content address for one operation ("search",
// "simulate", …): the hex SHA-256 of the operation tag plus the canonical
// JSON of the normalized document. Equivalent requests — preset vs
// explicit model, shuffled search lists, defaulted vs spelled-out fields —
// share a key; any semantic difference changes it.
func (r *PlanRequest) Key(op string) (string, error) {
	norm, err := r.Normalize()
	if err != nil {
		return "", err
	}
	doc, err := json.Marshal(struct {
		Op  string       `json:"op"`
		Req *PlanRequest `json:"req"`
	}{Op: op, Req: norm})
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:]), nil
}

// Wire defaults for optimizer settings, matching the opt package's own
// (spelled out here so the canonical document is explicit about what a
// defaulted request means, and its key stable against optimizer-default
// drift).
const (
	DefaultOptSeed      = 1
	DefaultOptIters     = 1500
	DefaultOptProposals = 4
)

// Normalize returns the canonical form of an optimize request: the plan
// normalized exactly like simulate (parallel required), the optimizer
// spec filled with the wire defaults. Failures wrap ErrBadRequest.
func (r *OptimizeRequest) Normalize() (*OptimizeRequest, error) {
	if r == nil {
		return nil, fmt.Errorf("%w: empty request", ErrBadRequest)
	}
	norm, err := r.PlanRequest.Normalize()
	if err != nil {
		return nil, err
	}
	if norm.Parallel == nil {
		return nil, fmt.Errorf("%w: optimize needs a parallel strategy", ErrBadRequest)
	}
	spec := OptSpec{}
	if r.Opt != nil {
		spec = *r.Opt
	}
	if spec.Iters < 0 {
		return nil, fmt.Errorf("%w: opt.iters %d must be non-negative", ErrBadRequest, spec.Iters)
	}
	if spec.Proposals < 0 {
		return nil, fmt.Errorf("%w: opt.proposals %d must be non-negative", ErrBadRequest, spec.Proposals)
	}
	if spec.Seed == 0 {
		spec.Seed = DefaultOptSeed
	}
	if spec.Iters == 0 {
		spec.Iters = DefaultOptIters
	}
	if spec.Proposals == 0 {
		spec.Proposals = DefaultOptProposals
	}
	return &OptimizeRequest{PlanRequest: *norm, Opt: &spec}, nil
}

// Key returns the optimize request's content address: the hex SHA-256 of
// the "optimize" operation tag plus the canonical JSON of the normalized
// document (optimizer spec included — the search is deterministic in it,
// so two requests share a key exactly when they discover the same
// schedule).
func (r *OptimizeRequest) Key() (string, error) {
	norm, err := r.Normalize()
	if err != nil {
		return "", err
	}
	doc, err := json.Marshal(struct {
		Op  string           `json:"op"`
		Req *OptimizeRequest `json:"req"`
	}{Op: "optimize", Req: norm})
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:]), nil
}
