// Package v1 is the versioned wire schema of the MEPipe planning service
// (cmd/mepipe-serve) and its CLIs: one canonical JSON request document
// describing (model, cluster, parallel grid, training config) drives
// POST /v1/search, /v1/simulate, /v1/optimize and /v1/trace over HTTP as
// well as
// `mepipe-sim -f` and `mepipe-search -f` on the command line, so a request
// is a portable artifact that means the same thing everywhere.
//
// The schema is versioned: every document may carry `"api": "v1"` (empty
// means v1), every response echoes it, and field names are frozen — new
// fields may be added, existing names never change meaning. Requests
// normalize to a canonical form (presets expanded, defaults filled, search
// lists sorted) whose SHA-256 is the service's cache and coalescing key;
// see Key. docs/SERVE.md documents the API end to end.
package v1

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Version is the wire version this package speaks.
const Version = "v1"

// ErrBadRequest classifies malformed request documents: syntactically
// invalid JSON, unknown fields, an unsupported api version, or missing
// required fields. The planning server maps it to HTTP 400, distinct from
// the 422 family (ErrOOM / ErrIncompatible / ErrUncertified) that marks
// well-formed requests whose configuration cannot be served.
var ErrBadRequest = errors.New("bad request")

// PlanRequest is the planning document shared by every planning entry
// point. Search uses (system, model, cluster, training, space); simulate
// and trace additionally require parallel. Fields left zero are filled by
// Normalize with the same defaults the CLIs apply.
type PlanRequest struct {
	// API is the wire version; empty means "v1". Any other value is
	// rejected with ErrBadRequest.
	API string `json:"api,omitempty"`
	// System names the scheduling system: mepipe, dapple, vpp, zb, zbv,
	// terapipe or gpipe (case-insensitive).
	System string `json:"system"`

	Model    ModelSpec    `json:"model"`
	Cluster  ClusterSpec  `json:"cluster"`
	Training TrainingSpec `json:"training"`

	// Parallel pins one strategy (required by simulate and trace,
	// ignored by search).
	Parallel *ParallelSpec `json:"parallel,omitempty"`
	// Space bounds the search grid (search only); nil selects the
	// paper's default space.
	Space *SpaceSpec `json:"space,omitempty"`

	// Top caps the number of ranked candidates a search response
	// carries; 0 returns all of them.
	Top int `json:"top,omitempty"`
}

// ModelSpec selects a model either by preset name or by its full
// dimensions. When Preset is set every other field must be zero; Normalize
// expands the preset into explicit dimensions so equivalent spellings hash
// identically.
type ModelSpec struct {
	// Preset is a catalog name: llama-7b, llama-13b or llama-34b
	// (7b/13b/34b shorthands accepted).
	Preset string `json:"preset,omitempty"`

	Name       string `json:"name,omitempty"`
	HiddenSize int    `json:"hidden_size,omitempty"`
	NumLayers  int    `json:"num_layers,omitempty"`
	NumHeads   int    `json:"num_heads,omitempty"`
	NumKVHeads int    `json:"num_kv_heads,omitempty"`
	FFNHidden  int    `json:"ffn_hidden,omitempty"`
	VocabSize  int    `json:"vocab_size,omitempty"`
	SeqLen     int    `json:"seq_len,omitempty"`
}

// ClusterSpec selects a modelled cluster. Preset picks a whole testbed
// ("rtx4090" or "a100", with the paper's default server counts);
// otherwise GPU names a catalog accelerator and GPUsPerServer/Servers size
// the cluster explicitly.
type ClusterSpec struct {
	// Preset is a testbed name: rtx4090 (8 servers x 8 GPUs on PCIe +
	// 100G IB) or a100 (4 servers x 8 on NVLink + 800G IB).
	Preset string `json:"preset,omitempty"`

	// GPU is a catalog accelerator name (rtx4090 or a100) for explicit
	// sizing.
	GPU           string `json:"gpu,omitempty"`
	GPUsPerServer int    `json:"gpus_per_server,omitempty"`
	// Servers overrides the preset's server count (or sizes an explicit
	// cluster).
	Servers int `json:"servers,omitempty"`
}

// ParallelSpec mirrors config.Parallel on the wire.
type ParallelSpec struct {
	PP  int `json:"pp"`
	DP  int `json:"dp,omitempty"`
	CP  int `json:"cp,omitempty"`
	SPP int `json:"spp,omitempty"`
	VP  int `json:"vp,omitempty"`
	TP  int `json:"tp,omitempty"`
	// Recompute is none (default), selective or full.
	Recompute string `json:"recompute,omitempty"`
}

// TrainingSpec mirrors config.Training on the wire.
type TrainingSpec struct {
	GlobalBatch int `json:"global_batch"`
	MicroBatch  int `json:"micro_batch,omitempty"` // default 1
}

// SpaceSpec mirrors strategy.SearchSpace on the wire. Normalize sorts and
// deduplicates the lists (the ranked result is independent of enumeration
// order), so equivalent spaces hash identically.
type SpaceSpec struct {
	PP    []int `json:"pp,omitempty"`
	CP    []int `json:"cp,omitempty"`
	SPP   []int `json:"spp,omitempty"`
	VP    []int `json:"vp,omitempty"`
	MinDP int   `json:"min_dp,omitempty"`
	Prune bool  `json:"prune,omitempty"`
}

// TraceRequest is a PlanRequest plus the export format for /v1/trace.
type TraceRequest struct {
	PlanRequest
	// Format selects the exporter: "chrome" (default; Chrome trace-event
	// JSON for Perfetto) or "jsonl".
	Format string `json:"format,omitempty"`
}

// OptSpec tunes the schedule optimizer behind POST /v1/optimize. Zero
// fields are filled by OptimizeRequest.Normalize with the wire defaults
// (seed 1, the optimizer's standard round and proposal counts), so
// equivalent spellings hash identically. The spec is part of the cache
// key: the optimizer is deterministic in it.
type OptSpec struct {
	// Seed drives the deterministic annealing trajectory.
	Seed int64 `json:"seed,omitempty"`
	// Iters is the number of annealing rounds.
	Iters int `json:"iters,omitempty"`
	// Proposals is the number of candidates per round (part of the
	// trajectory, unlike worker count — which is why it is on the wire
	// and worker count is not).
	Proposals int `json:"proposals,omitempty"`
}

// OptimizeRequest asks /v1/optimize to anneal the preset schedule of one
// pinned configuration: a PlanRequest (parallel required, like simulate)
// plus the optimizer settings.
type OptimizeRequest struct {
	PlanRequest
	Opt *OptSpec `json:"opt,omitempty"`
}

// CertifyRequest asks /v1/certify to statically certify a schedule
// artifact (the JSON produced by Schedule.Save).
type CertifyRequest struct {
	API string `json:"api,omitempty"`
	// Schedule is the schedule document itself, embedded verbatim.
	Schedule json.RawMessage `json:"schedule"`
	// SlotBudget, when present, additionally certifies the static sweep
	// against per-stage family-slot caps (unit footprints).
	SlotBudget []int `json:"slot_budget,omitempty"`
}

// Candidate is one evaluated configuration in a response: the wire form
// of a strategy evaluation.
type Candidate struct {
	Parallel     ParallelSpec `json:"parallel"`
	MicroBatches int          `json:"micro_batches"`
	OOM          bool         `json:"oom,omitempty"`
	OOMWhy       string       `json:"oom_why,omitempty"`
	IterTimeS    float64      `json:"iter_time_s,omitempty"`
	Bubble       float64      `json:"bubble,omitempty"`
	PeakActBytes int64        `json:"peak_act_bytes,omitempty"`
	BudgetBytes  int64        `json:"budget_bytes,omitempty"`
	// F is the chosen SVPP forwards-in-flight variant (MEPipe only).
	F            int     `json:"f,omitempty"`
	TFLOPSPerGPU float64 `json:"tflops_per_gpu,omitempty"`
	MFU          float64 `json:"mfu,omitempty"`
}

// SearchResponse is the body of a successful POST /v1/search.
type SearchResponse struct {
	API    string `json:"api"`
	Key    string `json:"key"` // the request's canonical cache key
	System string `json:"system"`
	// Certified reports that every simulated candidate passed static
	// certification (deadlock-freedom, completeness) before it was
	// timed — the server never serves an uncertified schedule.
	Certified  bool        `json:"certified"`
	Found      bool        `json:"found"`
	Best       *Candidate  `json:"best,omitempty"`
	Candidates []Candidate `json:"candidates"`
	Evaluated  int         `json:"evaluated"`
	Pruned     int         `json:"pruned,omitempty"`
}

// Breakdown is the mean per-stage utilisation of a simulated iteration,
// as fractions of the makespan.
type Breakdown struct {
	Forward  float64 `json:"forward"`
	Backward float64 `json:"backward"`
	Weight   float64 `json:"weight"`
	Tail     float64 `json:"tail"`
	Idle     float64 `json:"idle"`
}

// SimulateResponse is the body of a successful POST /v1/simulate.
type SimulateResponse struct {
	API       string    `json:"api"`
	Key       string    `json:"key"`
	System    string    `json:"system"`
	Certified bool      `json:"certified"`
	Candidate Candidate `json:"candidate"`
	Breakdown Breakdown `json:"breakdown"`
}

// OptimizeResponse is the body of a successful POST /v1/optimize: what
// the preset cost, what the search discovered, the search counters, and
// the discovered schedule itself as a portable Schedule.Save document
// (feed it back to /v1/certify, or load it with mepipe.LoadSchedule).
type OptimizeResponse struct {
	API    string `json:"api"`
	Key    string `json:"key"`
	System string `json:"system"`
	// Certified reports that the discovered schedule passed full static
	// certification — deadlock-freedom, completeness and the
	// configuration's byte-accurate memory budget — before it was
	// served. Always true on a 2xx reply.
	Certified    bool         `json:"certified"`
	Parallel     ParallelSpec `json:"parallel"`
	MicroBatches int          `json:"micro_batches"`
	// F is the chosen SVPP forwards-in-flight variant (MEPipe only).
	F   int     `json:"f,omitempty"`
	Opt OptSpec `json:"opt"`

	// StartedFrom names the annealing seed that won: "preset" or "heft".
	StartedFrom string `json:"started_from"`
	// BaseIterTimeS is the preset schedule's simulated iteration time,
	// HEFTIterTimeS the list-scheduling seed's (omitted when infeasible),
	// BestIterTimeS the discovered schedule's; Gain the fractional
	// improvement over the preset.
	BaseIterTimeS float64 `json:"base_iter_time_s"`
	HEFTIterTimeS float64 `json:"heft_iter_time_s,omitempty"`
	BestIterTimeS float64 `json:"best_iter_time_s"`
	Gain          float64 `json:"gain"`

	// Search counters: candidates proposed, rejected by certification
	// before simulation, simulated, accepted, and global improvements.
	Proposed   int `json:"proposed"`
	Infeasible int `json:"infeasible"`
	Evaluated  int `json:"evaluated"`
	Accepted   int `json:"accepted"`
	Improved   int `json:"improved"`

	Schedule json.RawMessage `json:"schedule"`
}

// CertifyResponse is the body of a successful POST /v1/certify: the
// certificate's evidence, mirroring verify.Certificate.
type CertifyResponse struct {
	API          string  `json:"api"`
	Schedule     string  `json:"schedule"`
	Nodes        int     `json:"nodes"`
	Edges        int     `json:"edges"`
	CrossEdges   int     `json:"cross_edges"`
	PeakFamilies []int   `json:"peak_families"`
	PeakBytes    []int64 `json:"peak_bytes,omitempty"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	API string `json:"api"`
	// Code classifies the failure: bad_request, oom, incompatible,
	// uncertified, cancelled or internal.
	Code  string `json:"code"`
	Error string `json:"error"`
}

// EndpointStats is one endpoint's counters in GET /v1/stats.
type EndpointStats struct {
	Requests  int64 `json:"requests"`
	Errors    int64 `json:"errors"`
	Hits      int64 `json:"cache_hits"`
	Misses    int64 `json:"cache_misses"`
	Coalesced int64 `json:"coalesced"`
	// Latency of served requests in seconds.
	LatencyMeanS float64 `json:"latency_mean_s"`
	LatencyMaxS  float64 `json:"latency_max_s"`
}

// CacheStats sizes the content-addressed response cache in GET /v1/stats.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Evictions int64 `json:"evictions"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	API       string                   `json:"api"`
	UptimeS   float64                  `json:"uptime_s"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
	Cache     CacheStats               `json:"cache"`
}

// decode decodes one strict JSON document (unknown fields rejected) into
// dst, classifying every failure as ErrBadRequest.
func decode(r io.Reader, dst any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	// Trailing garbage after the document is a malformed request too.
	if dec.More() {
		return fmt.Errorf("%w: trailing data after request document", ErrBadRequest)
	}
	return nil
}

// DecodePlanRequest reads one strict PlanRequest document. Unknown fields
// are rejected (misspelled field names must not silently change what a
// request means), and every failure wraps ErrBadRequest.
func DecodePlanRequest(r io.Reader) (*PlanRequest, error) {
	var req PlanRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeTraceRequest reads one strict TraceRequest document.
func DecodeTraceRequest(r io.Reader) (*TraceRequest, error) {
	var req TraceRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeOptimizeRequest reads one strict OptimizeRequest document.
func DecodeOptimizeRequest(r io.Reader) (*OptimizeRequest, error) {
	var req OptimizeRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeCertifyRequest reads one strict CertifyRequest document.
func DecodeCertifyRequest(r io.Reader) (*CertifyRequest, error) {
	var req CertifyRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	if len(req.Schedule) == 0 {
		return nil, fmt.Errorf("%w: certify request has no schedule document", ErrBadRequest)
	}
	if req.API != "" && req.API != Version {
		return nil, fmt.Errorf("%w: unsupported api version %q (this server speaks %q)", ErrBadRequest, req.API, Version)
	}
	return &req, nil
}
