// Package mepipe is a from-scratch reproduction of "MEPipe: Democratizing
// LLM Training with Memory-Efficient Slice-Level Pipeline Scheduling on
// Cost-Effective Accelerators" (EuroSys 2025).
//
// It provides, in pure Go with no dependencies:
//
//   - the paper's SVPP scheduler (slice-level pipeline schedules with
//     memory-limited variants and backward rescheduling) plus every
//     baseline it is evaluated against (GPipe, DAPPLE/1F1B, interleaved
//     VPP, Hanayo waves, TeraPipe, ZB-1P, ZBV);
//   - the fine-grained weight-gradient engine of §5 (per-GEMM decomposition
//     drained into pipeline stalls);
//   - a calibrated discrete-event simulator of the paper's RTX 4090 and
//     A100 clusters, with the §4.5 memory model and §7.3 grid search;
//   - a real goroutine pipeline runtime over a tiny numeric decoder that
//     proves every generated schedule gradient-equivalent to sequential
//     training;
//   - a benchmark harness regenerating every table and figure of the
//     paper's evaluation.
//
// This root package is a façade over the internal packages: it re-exports
// the types and entry points a downstream user needs. See README.md for a
// tour and DESIGN.md for the architecture.
package mepipe

import (
	"context"
	"io"

	"mepipe/internal/analytic"
	"mepipe/internal/bench"
	"mepipe/internal/chaos"
	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/core"
	"mepipe/internal/errs"
	"mepipe/internal/obs"
	"mepipe/internal/opt"
	"mepipe/internal/partition"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
	"mepipe/internal/strategy"
	"mepipe/internal/timeline"
	"mepipe/internal/tune"
	"mepipe/internal/verify"
)

// Sentinel errors. Every failure the engines and the strategy search report
// wraps one of these, so callers classify with errors.Is instead of string
// matching.
var (
	ErrOOM          = errs.ErrOOM
	ErrIncompatible = errs.ErrIncompatible
	ErrCancelled    = errs.ErrCancelled
	// ErrStageFailed classifies an unrecoverable pipeline-stage failure
	// (see docs/RESILIENCE.md); ErrTransient marks retryable
	// communication faults absorbed by the runtime's bounded backoff.
	ErrStageFailed = errs.ErrStageFailed
	ErrTransient   = errs.ErrTransient
	// ErrUncertified classifies schedules rejected by the static
	// certifier (see docs/VERIFICATION.md): a dependency cycle, a swept
	// activation peak over budget, or an incomplete op family. Both
	// execution engines and the strategy search certify before running.
	ErrUncertified = errs.ErrUncertified
)

// Model, parallelism and training configuration.
type (
	Model    = config.Model
	Parallel = config.Parallel
	Training = config.Training
	Cluster  = cluster.Cluster
)

// Llama 2 presets (Table 4) and clusters (§7.1, §7.6).
var (
	Llama7B        = config.Llama7B
	Llama13B       = config.Llama13B
	Llama34B       = config.Llama34B
	ModelByName    = config.ModelByName
	RTX4090Cluster = cluster.RTX4090Cluster
	A100Cluster    = cluster.A100Cluster
)

// Schedules.
type (
	Schedule    = sched.Schedule
	SVPPOptions = sched.SVPPOptions
	Op          = sched.Op
)

// LoadSchedule deserialises and validates a schedule saved with
// Schedule.Save — schedules are portable JSON artifacts. Invalid files
// are rejected with an error wrapping ErrIncompatible (malformed shape)
// or ErrUncertified (deadlocking order).
var LoadSchedule = sched.Load

// Static certification (docs/VERIFICATION.md): CertifySchedule proves a
// schedule deadlock-free, complete, and — when a budget is supplied —
// within its per-stage activation budget, returning a Certificate with
// the swept peaks or an error wrapping ErrUncertified that carries a
// minimal counterexample (the cycle, or the first over-budget op).
type (
	Certificate    = verify.Certificate
	CertifyOptions = verify.Options
	CertifyBudget  = verify.Budget
)

var (
	CertifySchedule = verify.Certify
	// SlotBudget builds a CertifyBudget from per-stage family-slot
	// counts (unit footprints); PlanBudget derives one from a memory
	// plan and a cost model's activation footprints.
	SlotBudget = verify.SlotBudget
	PlanBudget = verify.PlanBudget
)

// Schedule constructors: the paper's system and its baselines.
var (
	NewSVPP     = sched.SVPP
	NewMEPipe   = sched.MEPipe
	NewGPipe    = sched.GPipe
	NewDAPPLE   = sched.DAPPLE
	NewVPP      = sched.VPP
	NewHanayo   = sched.Hanayo
	NewTeraPipe = sched.TeraPipe
	NewZB1P     = sched.ZB1P
	NewZBV      = sched.ZBV
	DefaultF    = sched.DefaultF
)

// Simulation.
type (
	SimOptions = sim.Options
	SimResult  = sim.Result
	SimCosts   = sim.Costs
)

// Observability: both execution engines (the discrete-event simulator and
// the live goroutine runtime) emit structured span events — op execution,
// cross-stage communication with byte counts, activation memory traffic
// with high-water marks, stalls by cause, and the §5 dynamic engine's
// budget-stall / W-drain events — into a pluggable TraceSink. A Recorder
// collects them into a Trace; a Trace aggregates into a Snapshot of
// per-stage metrics and exports through any Exporter. See
// docs/OBSERVABILITY.md.
type (
	TraceEvent = obs.Event
	TraceSink  = obs.Sink
	Trace      = obs.Trace
	Recorder   = obs.Recorder
	Snapshot   = obs.Snapshot

	// Exporter is the single output interface of the system: ASCII and
	// SVG Gantt charts, Chrome trace-event JSON (Perfetto /
	// chrome://tracing), and JSONL all implement it.
	Exporter = obs.Exporter

	// The exporters.
	ChromeTrace   = obs.ChromeTrace
	JSONLTrace    = obs.JSONL
	ASCIITimeline = timeline.ASCII
	SVGTimeline   = timeline.SVG
)

// NewRecorder returns an empty in-memory trace sink.
var NewRecorder = obs.NewRecorder

// Option tunes Simulate, Evaluate and Search calls. Options that do not
// apply to a call are ignored (Evaluate and Search derive memory budgets
// and engine mode from the configuration itself, so only WithTrace applies
// to them).
type Option func(*runConfig)

type runConfig struct {
	sink      obs.Sink
	budget    []int64
	dynamicW  bool
	tail      func(stage int) float64
	faults    *chaos.Plan
	ckptEvery int
	// kernels sizes the GEMM pool for calls that execute real tensor
	// kernels (see WithKernelWorkers in kernels.go).
	kernels *KernelConfig
}

// WithTrace attaches a sink receiving the run's structured span events.
func WithTrace(sink TraceSink) Option {
	return func(c *runConfig) { c.sink = sink }
}

// WithActBudget sets the per-stage activation memory budget in bytes. In
// dynamic weight-gradient mode the budget forces deferred W work to drain
// before new forwards are admitted (§5); exceeding it with nothing to drain
// marks the run OOM.
func WithActBudget(budget []int64) Option {
	return func(c *runConfig) { c.budget = budget }
}

// WithDynamicW enables the paper's execution-engine behaviour: W/WPiece ops
// leave their static schedule positions and drain from a per-stage queue
// into dependency stalls. Requires a split-backward schedule.
func WithDynamicW() Option {
	return func(c *runConfig) { c.dynamicW = true }
}

// WithTailTime appends per-stage post-iteration time (optimizer step plus
// gradient synchronisation).
func WithTailTime(tail func(stage int) float64) Option {
	return func(c *runConfig) { c.tail = tail }
}

// Fault injection and resilience (§9). A FaultPlan describes deterministic
// seeded faults — stage crashes, slow links, transient send failures — and
// applies to both execution engines: Simulate and Evaluate charge the
// plan's costs onto the simulated timeline (chaos.FaultyCosts), while the
// live pipeline runtime takes an Injector through its StageHook/Transport
// seams and actually recovers. See docs/RESILIENCE.md.
type (
	FaultPlan  = chaos.Plan
	FaultCrash = chaos.Crash
	SlowLink   = chaos.SlowLink
	FlakyLink  = chaos.FlakyLink
)

// NewFaultInjector builds the runtime injector for a plan.
var NewFaultInjector = chaos.New

// WithFaultPlan subjects a Simulate or Evaluate call to a deterministic
// fault plan: crashes charge the plan's recovery and replay costs, slow
// links stretch transfers.
func WithFaultPlan(p *FaultPlan) Option {
	return func(c *runConfig) { c.faults = p }
}

// WithCheckpointEvery sets the stage-level checkpoint period in scheduled
// ops. Under a fault plan, crashes then replay only from the last
// checkpoint boundary instead of losing the whole iteration, at the
// plan's per-checkpoint cost.
func WithCheckpointEvery(n int) Option {
	return func(c *runConfig) { c.ckptEvery = n }
}

// Simulate runs one simulated iteration of s under the given cost model.
// The context cancels long runs (the returned error then wraps
// ErrCancelled); options attach tracing, memory budgets, the §5 dynamic
// weight-gradient engine, and tail time:
//
//	rec := mepipe.NewRecorder()
//	res, err := mepipe.Simulate(ctx, s, costs,
//		mepipe.WithTrace(rec), mepipe.WithActBudget(budget), mepipe.WithDynamicW())
func Simulate(ctx context.Context, s *Schedule, costs SimCosts, opts ...Option) (*SimResult, error) {
	var c runConfig
	for _, fn := range opts {
		fn(&c)
	}
	if c.faults != nil {
		costs = chaos.FaultyCosts(costs, s, *c.faults, c.ckptEvery)
	}
	return sim.RunContext(ctx, sim.Options{
		Sched: s, Costs: costs,
		ActBudget: c.budget,
		DynamicW:  c.dynamicW,
		TailTime:  c.tail,
		Trace:     c.sink,
	})
}

// UnitCosts returns uniform unit costs for analytic-style simulations.
func UnitCosts() sim.UniformCosts { return sim.Unit() }

// Planning (core, §6) and strategy search (§7.3).
type (
	Job  = core.Job
	Plan = core.Plan

	System       = strategy.System
	Eval         = strategy.Eval
	SearchResult = strategy.SearchResult
	SearchSpace  = strategy.SearchSpace
	SweepResult  = strategy.SweepResult
	SweepStats   = strategy.SweepStats
)

// Systems under evaluation.
const (
	DAPPLE   = strategy.DAPPLE
	VPP      = strategy.VPP
	ZB       = strategy.ZB
	ZBV      = strategy.ZBV
	MEPipe   = strategy.MEPipe
	TeraPipe = strategy.TeraPipe
	GPipe    = strategy.GPipe
)

var (
	PlanMEPipe   = core.PlanMEPipe
	PlanMEPipeAt = core.PlanMEPipeAt
	DefaultSpace = strategy.DefaultSpace
	Systems      = strategy.Systems
)

// Evaluate runs one (system, parallel strategy) configuration through the
// memory model, the schedule generator, and the simulator. WithTrace
// captures the simulated iteration's event stream.
func Evaluate(ctx context.Context, sys System, m Model, cl Cluster, par Parallel, tr Training, opts ...Option) (*Eval, error) {
	var c runConfig
	for _, fn := range opts {
		fn(&c)
	}
	sopts := []strategy.Option{strategy.WithSink(c.sink)}
	if c.faults != nil {
		plan, every := *c.faults, c.ckptEvery
		sopts = append(sopts, strategy.WithCostWrap(func(s *sched.Schedule, costs sim.Costs) sim.Costs {
			return chaos.FaultyCosts(costs, s, plan, every)
		}))
	}
	return strategy.EvaluateContext(ctx, sys, m, cl, par, tr, sopts...)
}

// Search grid-searches the strategy space for one system (§7.3) and returns
// candidates sorted fastest-feasible-first in a deterministic total order.
// Cancelling ctx mid-search stops the grid, drains every worker, and
// returns an error wrapping ErrCancelled.
func Search(ctx context.Context, sys System, m Model, cl Cluster, tr Training, sp SearchSpace, opts ...Option) (*SearchResult, error) {
	var c runConfig
	for _, fn := range opts {
		fn(&c)
	}
	return strategy.SearchContext(ctx, sys, m, cl, tr, sp, strategy.WithSink(c.sink))
}

// Sweep grid-searches several systems in one streaming pass over a
// deduplicated work plan: schedules are generated and certified once per
// distinct shape, planning objects are memoized across grid points, and
// shape groups run on a parallel branch-and-bound worker pool. The result
// is byte-identical, per system, to a sequential Search call — including
// candidate order and the Evaluated/Pruned counters — just cheaper to
// produce (see docs/PERFORMANCE.md). Tracing options are incompatible with
// the engine's session reuse; use Evaluate with WithTrace instead.
func Sweep(ctx context.Context, systems []System, m Model, cl Cluster, tr Training, sp SearchSpace) (*SweepResult, error) {
	return strategy.Sweep(ctx, systems, m, cl, tr, sp)
}

// Analytic closed forms (Table 3).
type (
	AnalyticParams = analytic.Params
	AnalyticMethod = analytic.Method
)

// Table 3 rows.
const (
	AnalyticGPipe    = analytic.GPipe
	AnalyticDAPPLE   = analytic.DAPPLE
	AnalyticVPP      = analytic.VPP
	AnalyticHanayo   = analytic.Hanayo
	AnalyticTeraPipe = analytic.TeraPipe
	AnalyticSVPP     = analytic.SVPP
)

var (
	BubbleRatio      = analytic.BubbleRatio
	ActivationMemory = analytic.ActivationMemory
)

// Slice partitioning (uniform vs TeraPipe-style non-uniform, §5).
var (
	UniformPartition = partition.Uniform
	OptimalPartition = partition.Optimal
)

// Experiments: every table and figure of the paper's evaluation.
type (
	Experiment = bench.Experiment
	Report     = bench.Report
)

var (
	Experiments  = bench.Experiments
	ExperimentBy = bench.ByID
)

// Export writes a simulated result through any Exporter — ASCII or SVG
// Gantt charts, Chrome trace-event JSON, or JSONL:
//
//	mepipe.Export(os.Stdout, mepipe.ASCIITimeline{}, res)
//	mepipe.Export(f, mepipe.ChromeTrace{}, res)
func Export(w io.Writer, e Exporter, res *SimResult) error {
	return e.Export(w, res.Trace())
}

// Schedule tuning and order-free lower bounds.
type (
	TuneOptions = tune.Options
	TuneResult  = tune.Result
)

var (
	TuneSchedule  = tune.Improve
	MakespanBound = sim.MakespanBound
)

// Schedule optimization (docs/OPTIMIZER.md): seeded, deterministic
// simulated annealing over certified op reorderings, with the static
// certifier as feasibility oracle and the discrete-event simulator as
// cost oracle. OptimizeOptions tunes the search; OptimizeResult carries
// the discovered schedule, its full certificate and the search counters;
// Optimized wraps a result with the configuration it was derived from.
type (
	OptimizeOptions = opt.Options
	OptimizeResult  = opt.Result
	Optimized       = strategy.Optimized
)

// Optimize anneals one schedule under a cost model and returns the best
// certified reordering discovered. The search is deterministic in
// (schedule, costs, options) — Workers only changes wall-clock time.
// Errors wrap ErrIncompatible (nil inputs), ErrUncertified (the input
// schedule fails certification under the options' budget) or
// ErrCancelled. WithTrace taps one EvMove event per proposal.
func Optimize(ctx context.Context, s *Schedule, costs SimCosts, o OptimizeOptions, opts ...Option) (*OptimizeResult, error) {
	var c runConfig
	for _, fn := range opts {
		fn(&c)
	}
	if o.Trace == nil {
		o.Trace = c.sink
	}
	return opt.Optimize(ctx, s, costs, o)
}

// OptimizeEval optimizes the preset schedule of one (system, parallel
// strategy) configuration: it rebuilds the configuration's memory plan,
// calibrated cost model and preset schedule exactly like Evaluate, then
// anneals the schedule under the plan's byte-accurate activation budget.
// This is what POST /v1/optimize on the planning server serves.
func OptimizeEval(ctx context.Context, sys System, m Model, cl Cluster, par Parallel, tr Training, o OptimizeOptions, opts ...Option) (*Optimized, error) {
	var c runConfig
	for _, fn := range opts {
		fn(&c)
	}
	return strategy.OptimizeContext(ctx, sys, m, cl, par, tr, o, strategy.WithSink(c.sink))
}

// DiscoveredArtifact loads the repo's checked-in discovered-schedule
// artifact — the optimization point, best preset, optimizer
// configuration and discovered schedule that CI re-certifies on every
// push (see docs/OPTIMIZER.md).
var DiscoveredArtifact = opt.Discovered
