// Package mepipe is a from-scratch reproduction of "MEPipe: Democratizing
// LLM Training with Memory-Efficient Slice-Level Pipeline Scheduling on
// Cost-Effective Accelerators" (EuroSys 2025).
//
// It provides, in pure Go with no dependencies:
//
//   - the paper's SVPP scheduler (slice-level pipeline schedules with
//     memory-limited variants and backward rescheduling) plus every
//     baseline it is evaluated against (GPipe, DAPPLE/1F1B, interleaved
//     VPP, Hanayo waves, TeraPipe, ZB-1P, ZBV);
//   - the fine-grained weight-gradient engine of §5 (per-GEMM decomposition
//     drained into pipeline stalls);
//   - a calibrated discrete-event simulator of the paper's RTX 4090 and
//     A100 clusters, with the §4.5 memory model and §7.3 grid search;
//   - a real goroutine pipeline runtime over a tiny numeric decoder that
//     proves every generated schedule gradient-equivalent to sequential
//     training;
//   - a benchmark harness regenerating every table and figure of the
//     paper's evaluation.
//
// This root package is a façade over the internal packages: it re-exports
// the types and entry points a downstream user needs. See README.md for a
// tour and DESIGN.md for the architecture.
package mepipe

import (
	"io"

	"mepipe/internal/analytic"
	"mepipe/internal/bench"
	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/core"
	"mepipe/internal/partition"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
	"mepipe/internal/strategy"
	"mepipe/internal/timeline"
	"mepipe/internal/tune"
)

// Model, parallelism and training configuration.
type (
	Model    = config.Model
	Parallel = config.Parallel
	Training = config.Training
	Cluster  = cluster.Cluster
)

// Llama 2 presets (Table 4) and clusters (§7.1, §7.6).
var (
	Llama7B        = config.Llama7B
	Llama13B       = config.Llama13B
	Llama34B       = config.Llama34B
	ModelByName    = config.ModelByName
	RTX4090Cluster = cluster.RTX4090Cluster
	A100Cluster    = cluster.A100Cluster
)

// Schedules.
type (
	Schedule    = sched.Schedule
	SVPPOptions = sched.SVPPOptions
	Op          = sched.Op
)

// LoadSchedule deserialises and validates a schedule saved with
// Schedule.Save — schedules are portable JSON artifacts.
var LoadSchedule = sched.Load

// Schedule constructors: the paper's system and its baselines.
var (
	NewSVPP     = sched.SVPP
	NewMEPipe   = sched.MEPipe
	NewGPipe    = sched.GPipe
	NewDAPPLE   = sched.DAPPLE
	NewVPP      = sched.VPP
	NewHanayo   = sched.Hanayo
	NewTeraPipe = sched.TeraPipe
	NewZB1P     = sched.ZB1P
	NewZBV      = sched.ZBV
	DefaultF    = sched.DefaultF
)

// Simulation.
type (
	SimOptions = sim.Options
	SimResult  = sim.Result
)

// Simulate runs one simulated iteration.
func Simulate(opt SimOptions) (*SimResult, error) { return sim.Run(opt) }

// UnitCosts returns uniform unit costs for analytic-style simulations.
func UnitCosts() sim.UniformCosts { return sim.Unit() }

// Planning (core, §6) and strategy search (§7.3).
type (
	Job  = core.Job
	Plan = core.Plan

	System       = strategy.System
	Eval         = strategy.Eval
	SearchResult = strategy.SearchResult
	SearchSpace  = strategy.SearchSpace
)

// Systems under evaluation.
const (
	DAPPLE   = strategy.DAPPLE
	VPP      = strategy.VPP
	ZB       = strategy.ZB
	ZBV      = strategy.ZBV
	MEPipe   = strategy.MEPipe
	TeraPipe = strategy.TeraPipe
	GPipe    = strategy.GPipe
)

var (
	PlanMEPipe   = core.PlanMEPipe
	PlanMEPipeAt = core.PlanMEPipeAt
	Evaluate     = strategy.Evaluate
	Search       = strategy.Search
	DefaultSpace = strategy.DefaultSpace
	Systems      = strategy.Systems
)

// Analytic closed forms (Table 3).
type (
	AnalyticParams = analytic.Params
	AnalyticMethod = analytic.Method
)

// Table 3 rows.
const (
	AnalyticGPipe    = analytic.GPipe
	AnalyticDAPPLE   = analytic.DAPPLE
	AnalyticVPP      = analytic.VPP
	AnalyticHanayo   = analytic.Hanayo
	AnalyticTeraPipe = analytic.TeraPipe
	AnalyticSVPP     = analytic.SVPP
)

var (
	BubbleRatio      = analytic.BubbleRatio
	ActivationMemory = analytic.ActivationMemory
)

// Slice partitioning (uniform vs TeraPipe-style non-uniform, §5).
var (
	UniformPartition = partition.Uniform
	OptimalPartition = partition.Optimal
)

// Experiments: every table and figure of the paper's evaluation.
type (
	Experiment = bench.Experiment
	Report     = bench.Report
)

var (
	Experiments  = bench.Experiments
	ExperimentBy = bench.ByID
)

// RenderTimeline writes an ASCII Gantt chart of a simulated result.
func RenderTimeline(w io.Writer, res *SimResult) { timeline.Render(w, res, 0) }

// RenderSVG writes an SVG Gantt chart of a simulated result.
func RenderSVG(w io.Writer, res *SimResult) error { return timeline.WriteSVG(w, res) }

// Schedule tuning and order-free lower bounds.
type (
	TuneOptions = tune.Options
	TuneResult  = tune.Result
)

var (
	TuneSchedule  = tune.Improve
	MakespanBound = sim.MakespanBound
)
