package mepipe

// One benchmark per table and figure of the paper's evaluation (§7): each
// regenerates the corresponding result from the reproduction's models and
// simulator and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// re-derives the entire evaluation. Micro-benchmarks for the core engines
// (schedule generation, simulation, real pipelined execution) follow.

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"mepipe/internal/bench"
	"mepipe/internal/data"
	"mepipe/internal/nn"
	"mepipe/internal/pipeline"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

// runExperiment drives one registered experiment under the benchmark loop.
func runExperiment(b *testing.B, id string) *bench.Report {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var r *bench.Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = e.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	return r
}

// metric extracts the leading float from a table cell like "3520.3 ms".
func metric(b *testing.B, cell string) float64 {
	b.Helper()
	f := strings.Fields(cell)[0]
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSuffix(f, "%"), "x"), 64)
	if err != nil {
		b.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func findRow(b *testing.B, r *bench.Report, prefix string) []string {
	b.Helper()
	for _, row := range r.Rows {
		if strings.HasPrefix(row[0], prefix) {
			return row
		}
	}
	b.Fatalf("%s: no row %q", r.ID, prefix)
	return nil
}

// BenchmarkFig1 — bubble ratio vs peak activation memory (Fig 1).
func BenchmarkFig1(b *testing.B) {
	r := runExperiment(b, "fig1")
	b.ReportMetric(metric(b, findRow(b, r, "MEPipe (s=8)")[2]), "GiB-peak-act-s8")
	b.ReportMetric(metric(b, findRow(b, r, "DAPPLE")[2]), "GiB-peak-act-dapple")
}

// BenchmarkTable3 — analytic vs simulated bubble/memory (Table 3).
func BenchmarkTable3(b *testing.B) {
	r := runExperiment(b, "table3")
	b.ReportMetric(float64(len(r.Rows)), "rows")
}

// BenchmarkFig8 — Llama 13B end-to-end iteration times (Fig 8).
func BenchmarkFig8(b *testing.B) {
	r := runExperiment(b, "fig8")
	me := findRow(b, r, "MEPipe")
	b.ReportMetric(metric(b, me[1]), "ms-gbs32")
	b.ReportMetric(metric(b, me[2]), "ms-gbs64")
	b.ReportMetric(metric(b, me[3]), "ms-gbs128")
}

// BenchmarkTable5 — optimal configurations per system (Table 5).
func BenchmarkTable5(b *testing.B) {
	r := runExperiment(b, "table5")
	b.ReportMetric(float64(len(r.Rows)), "systems")
}

// BenchmarkTable6 — PP influence on DAPPLE (Table 6).
func BenchmarkTable6(b *testing.B) {
	r := runExperiment(b, "table6")
	b.ReportMetric(metric(b, r.Rows[2][4]), "ms-pp8")
}

// BenchmarkTable7 — CP influence on DAPPLE (Table 7).
func BenchmarkTable7(b *testing.B) {
	r := runExperiment(b, "table7")
	b.ReportMetric(metric(b, r.Rows[1][4]), "ms-cp2")
}

// BenchmarkFig9 — per-layer throughput vs CP/SPP size (Fig 9).
func BenchmarkFig9(b *testing.B) {
	r := runExperiment(b, "fig9")
	b.ReportMetric(100-metric(b, r.Rows[len(r.Rows)-1][2]), "pct-spp8-degradation")
}

// BenchmarkFig10 — iteration time across model sizes (Fig 10).
func BenchmarkFig10(b *testing.B) {
	r := runExperiment(b, "fig10")
	me := findRow(b, r, "MEPipe")
	b.ReportMetric(metric(b, me[1]), "ms-7b")
	b.ReportMetric(metric(b, me[2]), "ms-13b")
	b.ReportMetric(metric(b, me[3]), "ms-34b")
}

// BenchmarkTable8 — optimal configuration across model sizes (Table 8).
func BenchmarkTable8(b *testing.B) {
	r := runExperiment(b, "table8")
	b.ReportMetric(float64(len(r.Rows)), "systems")
}

// BenchmarkTable9 — A100 vs 4090 cost-effectiveness (Table 9).
func BenchmarkTable9(b *testing.B) {
	r := runExperiment(b, "table9")
	b.ReportMetric(metric(b, findRow(b, r, "llama-13b")[6]), "x-cost-effectiveness-13b")
}

// BenchmarkFig5Variants — SVPP memory variants and Fig 6 rescheduling.
func BenchmarkFig5Variants(b *testing.B) {
	r := runExperiment(b, "fig5")
	b.ReportMetric(metric(b, r.Rows[0][3]), "makespan-f8")
	b.ReportMetric(metric(b, r.Rows[2][3]), "makespan-f4")
}

// BenchmarkFig11_12 — fine-grained weight-gradient ablation (Figs 11–12).
func BenchmarkFig11_12(b *testing.B) {
	r := runExperiment(b, "fig11_12")
	b.ReportMetric(metric(b, findRow(b, r, "with fine-grained")[1]), "ms-with")
	b.ReportMetric(metric(b, findRow(b, r, "w/o: W fused")[1]), "ms-without")
}

// BenchmarkAblation — design-choice ablations from DESIGN.md §5.
func BenchmarkAblation(b *testing.B) {
	r := runExperiment(b, "ablation")
	b.ReportMetric(float64(len(r.Rows)), "variants")
}

// --- engine micro-benchmarks ---

// BenchmarkScheduleGeneration measures SVPP generation for a production
// shape (p=8, s=4, n=16, 7-piece W).
func BenchmarkScheduleGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := NewMEPipe(8, 1, 4, 16, 0, 7, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulation measures one simulated iteration replay.
func BenchmarkSimulation(b *testing.B) {
	s, err := NewMEPipe(8, 1, 4, 16, 0, 7, nil)
	if err != nil {
		b.Fatal(err)
	}
	costs := sim.UniformCosts{Est: sched.UniformEst{F: 1, BAct: 1, WPiece: 0.2}, Act: 1, Grad: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Options{Sched: s, Costs: costs, DynamicW: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinedIteration measures a real pipelined training iteration
// of the tiny decoder under the full MEPipe schedule.
func BenchmarkPipelinedIteration(b *testing.B) {
	cfg := nn.Config{Hidden: 16, Heads: 2, FFN: 32, Vocab: 29, Layers: 8, SeqLen: 16}
	m, err := nn.NewModel(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sched.MEPipe(4, 1, 2, 4, 0, nn.WeightGradGEMMs, nil)
	if err != nil {
		b.Fatal(err)
	}
	stream, err := data.NewStream(cfg.Vocab, cfg.SeqLen, 7)
	if err != nil {
		b.Fatal(err)
	}
	batch := stream.Batch(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrads()
		r, err := pipeline.New(m, s, batch)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialIteration is the single-goroutine reference for the
// pipelined iteration above.
func BenchmarkSequentialIteration(b *testing.B) {
	cfg := nn.Config{Hidden: 16, Heads: 2, FFN: 32, Vocab: 29, Layers: 8, SeqLen: 16}
	m, err := nn.NewModel(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	stream, err := data.NewStream(cfg.Vocab, cfg.SeqLen, 7)
	if err != nil {
		b.Fatal(err)
	}
	batch := stream.Batch(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrads()
		if _, err := m.TrainSequential(batch, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidate measures schedule validation on a large schedule.
func BenchmarkValidate(b *testing.B) {
	s, err := NewMEPipe(8, 1, 8, 32, 0, 7, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFacade exercises the public API surface end to end.
func TestFacade(t *testing.T) {
	s, err := NewSVPP(SVPPOptions{P: 4, V: 1, S: 2, N: 4, Reschedule: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(context.Background(), s, UnitCosts())
	if err != nil {
		t.Fatal(err)
	}
	want, err := BubbleRatio(AnalyticSVPP, AnalyticParams{P: 4, V: 1, S: 2, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.BubbleRatio - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("facade simulation bubble %v != analytic %v", res.BubbleRatio, want)
	}
	var sb strings.Builder
	if err := Export(&sb, ASCIITimeline{}, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "stage") {
		t.Error("timeline rendering empty")
	}
	if len(Experiments()) < 10 {
		t.Error("experiment registry too small")
	}
	// Planning a pinned paper configuration through core.
	plan, err := PlanMEPipeAt(Job{
		Model:   Llama13B(),
		Cluster: RTX4090Cluster(8),
		Train:   Training{GlobalBatch: 64, MicroBatch: 1},
	}, Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1})
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := plan.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if simRes.OOM {
		t.Error("paper configuration should fit")
	}
	if simRes.IterTime < 1 || simRes.IterTime > 10 {
		t.Errorf("13B iteration %v s implausible", simRes.IterTime)
	}
}
