package mepipe_test

import (
	"context"
	"fmt"
	"log"

	"mepipe"
)

// The SVPP schedule of the paper's Fig 4(a) — 4 stages, 2 slices per
// sample — simulated with unit costs: peak activations are 5 slice-forwards
// (5/8 of a sample) and the bubble ratio matches Table 3's closed form.
func ExampleNewSVPP() {
	s, err := mepipe.NewSVPP(mepipe.SVPPOptions{P: 4, V: 1, S: 2, N: 8, Reschedule: true})
	if err != nil {
		log.Fatal(err)
	}
	res, err := mepipe.Simulate(context.Background(), s, mepipe.UnitCosts())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peak activations: %d/8 of a sample\n", res.PeakAct)
	fmt.Printf("bubble ratio: %.2f%%\n", 100*res.BubbleRatio)
	// Output:
	// peak activations: 5/8 of a sample
	// bubble ratio: 15.79%
}

// Table 3's closed forms are available directly.
func ExampleBubbleRatio() {
	b, err := mepipe.BubbleRatio(mepipe.AnalyticSVPP, mepipe.AnalyticParams{P: 8, V: 2, S: 4, N: 8})
	if err != nil {
		log.Fatal(err)
	}
	m, err := mepipe.ActivationMemory(mepipe.AnalyticSVPP, mepipe.AnalyticParams{P: 8, V: 2, S: 4, N: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bubble %.4f, memory %.4f A\n", b, m)
	// Output:
	// bubble 0.0986, memory 0.2969 A
}

// Planning MEPipe for the paper's Table 5 configuration: the memory model
// picks the SVPP variant f, and the simulator reports the iteration.
func ExamplePlanMEPipeAt() {
	plan, err := mepipe.PlanMEPipeAt(mepipe.Job{
		Model:   mepipe.Llama13B(),
		Cluster: mepipe.RTX4090Cluster(8),
		Train:   mepipe.Training{GlobalBatch: 64, MicroBatch: 1},
	}, mepipe.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("micro-batches per pipeline: %d\n", plan.N)
	fmt.Printf("SVPP variant: f=%d (bubble-optimal is %d)\n",
		plan.F, mepipe.DefaultF(8, 1, 4))
	// Output:
	// micro-batches per pipeline: 8
	// SVPP variant: f=11 (bubble-optimal is 11)
}

// Evaluating a single named configuration end to end.
func ExampleEvaluate() {
	ev, err := mepipe.Evaluate(context.Background(), mepipe.DAPPLE,
		mepipe.Llama13B(), mepipe.RTX4090Cluster(8),
		mepipe.Parallel{PP: 2, DP: 4, CP: 8, SPP: 1, VP: 1},
		mepipe.Training{GlobalBatch: 64, MicroBatch: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fits:", !ev.OOM) // Table 6's first row dies on static memory
	// Output:
	// fits: false
}
