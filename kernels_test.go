package mepipe_test

import (
	"context"
	"math/rand"
	"testing"

	"mepipe"
)

// TestTrainPipelinedFacade drives a real pipelined iteration through the
// facade with an explicit kernel worker count and a trace sink, and checks
// the op events carry GEMM FLOPs.
func TestTrainPipelinedFacade(t *testing.T) {
	s, err := mepipe.NewSVPP(mepipe.SVPPOptions{P: 2, V: 1, S: 2, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mepipe.DecoderConfig{Hidden: 8, Heads: 2, FFN: 16, Vocab: 11, Layers: 2, SeqLen: 8}
	rng := rand.New(rand.NewSource(1))
	batch := make([][]int, 2)
	for i := range batch {
		sample := make([]int, cfg.SeqLen+1)
		for j := range sample {
			sample[j] = rng.Intn(cfg.Vocab)
		}
		batch[i] = sample
	}

	ref, err := mepipe.NewDecoderModel(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	wantLoss, err := ref.TrainSequential(batch, 2)
	if err != nil {
		t.Fatal(err)
	}

	m, err := mepipe.NewDecoderModel(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	rec := mepipe.NewRecorder()
	loss, err := mepipe.TrainPipelined(context.Background(), m, s, batch,
		mepipe.WithTrace(rec), mepipe.WithKernelWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if loss != wantLoss {
		t.Fatalf("pipelined loss %v != sequential %v", loss, wantLoss)
	}
	var flops int64
	for _, m := range rec.Trace().Snapshot().Stages {
		flops += m.GemmFLOPs
	}
	if flops <= 0 {
		t.Fatalf("trace carries no GEMM FLOPs (got %d)", flops)
	}
	if got := mepipe.CurrentKernelConfig().Workers; got != 2 {
		t.Fatalf("kernel pool has %d workers after WithKernelWorkers(2)", got)
	}
}

func TestConfigureKernelsFacade(t *testing.T) {
	old := mepipe.CurrentKernelConfig()
	defer mepipe.ConfigureKernels(old)
	got := mepipe.ConfigureKernels(mepipe.KernelConfig{Workers: 1, TileM: 16})
	if got.Workers != 1 || got.TileM != 16 {
		t.Fatalf("ConfigureKernels did not apply: %+v", got)
	}
}
