module mepipe

go 1.22
