package mepipe_test

import (
	"context"
	"testing"
	"time"

	"mepipe"
)

// TestSimulateWithFaultPlan: a fault plan slows the simulated iteration by
// its recovery and checkpoint charges, deterministically.
func TestSimulateWithFaultPlan(t *testing.T) {
	s := svpp(t)
	ctx := context.Background()
	clean, err := mepipe.Simulate(ctx, s, mepipe.UnitCosts())
	if err != nil {
		t.Fatal(err)
	}
	plan := &mepipe.FaultPlan{
		Seed:              1,
		Crashes:           []mepipe.FaultCrash{{Stage: 1, AtOp: 6}},
		Slow:              []mepipe.SlowLink{{From: 0, To: 1, Delay: 100 * time.Millisecond}},
		RecoverySeconds:   20,
		CheckpointSeconds: 0.1,
	}
	faulty, err := mepipe.Simulate(ctx, s, mepipe.UnitCosts(),
		mepipe.WithFaultPlan(plan), mepipe.WithCheckpointEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	if faulty.IterTime <= clean.IterTime+19 {
		t.Errorf("faulty iteration %g vs clean %g: recovery charge not applied", faulty.IterTime, clean.IterTime)
	}
	again, err := mepipe.Simulate(ctx, s, mepipe.UnitCosts(),
		mepipe.WithFaultPlan(plan), mepipe.WithCheckpointEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	if again.IterTime != faulty.IterTime {
		t.Errorf("same fault plan gave %g then %g", faulty.IterTime, again.IterTime)
	}
}

// TestEvaluateWithFaultPlan: the fault plan threads through the strategy
// evaluation path and stretches the evaluated iteration.
func TestEvaluateWithFaultPlan(t *testing.T) {
	m := mepipe.Llama13B()
	cl := mepipe.RTX4090Cluster(8)
	tr := mepipe.Training{GlobalBatch: 64, MicroBatch: 1}
	par := mepipe.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1}
	ctx := context.Background()

	clean, err := mepipe.Evaluate(ctx, mepipe.MEPipe, m, cl, par, tr)
	if err != nil {
		t.Fatal(err)
	}
	plan := &mepipe.FaultPlan{
		Crashes:         []mepipe.FaultCrash{{Stage: 0, AtOp: 10}},
		RecoverySeconds: 120,
	}
	faulty, err := mepipe.Evaluate(ctx, mepipe.MEPipe, m, cl, par, tr,
		mepipe.WithFaultPlan(plan), mepipe.WithCheckpointEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	if clean.OOM || faulty.OOM {
		t.Fatalf("unexpected OOM: clean %v faulty %v", clean.OOMWhy, faulty.OOMWhy)
	}
	if faulty.IterTime <= clean.IterTime+119 {
		t.Errorf("faulty evaluation %g vs clean %g: recovery charge not applied", faulty.IterTime, clean.IterTime)
	}
}

// TestFaultInjectorFacade: the facade exposes the runtime injector
// constructor.
func TestFaultInjectorFacade(t *testing.T) {
	in := mepipe.NewFaultInjector(mepipe.FaultPlan{
		Flaky: []mepipe.FlakyLink{{From: 0, To: 1, FailFirst: 1}},
	}, 2)
	if err := in.Send(0, 1, mepipe.Op{}, 0); err == nil {
		t.Error("first transfer on a FailFirst link did not fail")
	}
	if err := in.Send(0, 1, mepipe.Op{}, 1); err != nil {
		t.Errorf("retry attempt failed: %v", err)
	}
	if st := in.Stats(); st.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", st.Dropped)
	}
}
