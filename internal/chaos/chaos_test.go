package chaos_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"mepipe/internal/chaos"
	"mepipe/internal/errs"
	"mepipe/internal/nn"
	"mepipe/internal/pipeline"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
	"mepipe/internal/tensor"
)

// The injector must satisfy the runtime seams structurally.
var (
	_ pipeline.StageHook = (*chaos.Injector)(nil)
	_ pipeline.Transport = (*chaos.Injector)(nil)
)

func testCfg() nn.Config {
	return nn.Config{Hidden: 8, Heads: 2, FFN: 16, Vocab: 13, Layers: 8, SeqLen: 8}
}

func testBatch(rng *rand.Rand, c nn.Config, n int) [][]int {
	out := make([][]int, n)
	for i := range out {
		s := make([]int, c.SeqLen+1)
		for j := range s {
			s[j] = rng.Intn(c.Vocab)
		}
		out[i] = s
	}
	return out
}

func svpp4(t *testing.T) *sched.Schedule {
	t.Helper()
	s, err := sched.SVPP(sched.SVPPOptions{P: 4, V: 1, S: 2, N: 3, Reschedule: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runInjected drives one real pipeline iteration under the plan and
// returns the loss, the model gradients and the run error.
func runInjected(t *testing.T, s *sched.Schedule, plan chaos.Plan, ckptEvery int, seed int64) (float64, map[string]*tensor.Matrix, error) {
	t.Helper()
	c := testCfg()
	b := testBatch(rand.New(rand.NewSource(seed)), c, s.N)
	m, err := nn.NewModel(c, seed)
	if err != nil {
		t.Fatal(err)
	}
	r, err := pipeline.New(m, s, b)
	if err != nil {
		t.Fatal(err)
	}
	in := chaos.New(plan, s.P)
	r.WithStageHook(in).WithTransport(in).WithCheckpointEvery(ckptEvery)
	loss, err := r.Run()
	return loss, m.Grads(), err
}

// TestInjectedCrashRecovers: a planned crash under checkpointing recovers
// and the iteration still matches sequential training exactly.
func TestInjectedCrashRecovers(t *testing.T) {
	s := svpp4(t)
	plan := chaos.Plan{Seed: 1, Crashes: []chaos.Crash{{Stage: 2, AtOp: 5}}}
	loss, grads, err := runInjected(t, s, plan, 2, 31)
	if err != nil {
		t.Fatal(err)
	}

	c := testCfg()
	b := testBatch(rand.New(rand.NewSource(31)), c, s.N)
	seq, err := nn.NewModel(c, 31)
	if err != nil {
		t.Fatal(err)
	}
	seqLoss, err := seq.TrainSequential(b, s.S)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-seqLoss) > 1e-5 {
		t.Errorf("injected loss %.8f != sequential %.8f", loss, seqLoss)
	}
	for name, ref := range seq.Grads() {
		if d := tensor.MaxAbsDiff(ref, grads[name]); d > 1e-4 {
			t.Errorf("grad %s differs by %g after injected recovery", name, d)
		}
	}
}

// TestInjectedCrashWithoutCheckpointFails: the same crash without a
// checkpoint degrades into a classified failure wrapping both the stage
// sentinel and the injector's cause.
func TestInjectedCrashWithoutCheckpointFails(t *testing.T) {
	s := svpp4(t)
	plan := chaos.Plan{Crashes: []chaos.Crash{{Stage: 1, AtOp: 3}}}
	_, _, err := runInjected(t, s, plan, 0, 7)
	if !errors.Is(err, errs.ErrStageFailed) || !errors.Is(err, chaos.ErrCrash) {
		t.Fatalf("got %v, want ErrStageFailed wrapping chaos.ErrCrash", err)
	}
}

// TestFlakyLinkAbsorbed: deterministic first-attempt drops on every link
// are absorbed by retry; the run completes and the drops are counted.
func TestFlakyLinkAbsorbed(t *testing.T) {
	s := svpp4(t)
	var plan chaos.Plan
	for from := 0; from < s.P; from++ {
		for to := 0; to < s.P; to++ {
			if from != to {
				plan.Flaky = append(plan.Flaky, chaos.FlakyLink{From: from, To: to, FailFirst: 2})
			}
		}
	}
	_, _, err := runInjected(t, s, plan, 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	c := testCfg()
	b := testBatch(rand.New(rand.NewSource(17)), c, s.N)
	m, _ := nn.NewModel(c, 17)
	r, _ := pipeline.New(m, s, b)
	in := chaos.New(plan, s.P)
	r.WithStageHook(in).WithTransport(in)
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if st := in.Stats(); st.Dropped == 0 {
		t.Error("flaky links dropped nothing")
	}
}

// TestDropRateOneExhaustsRetries: a link that fails every attempt
// escalates through the retry budget into a stage failure.
func TestDropRateOneExhaustsRetries(t *testing.T) {
	s := svpp4(t)
	plan := chaos.Plan{Seed: 3, Flaky: []chaos.FlakyLink{{From: 0, To: 1, DropRate: 1}}}
	_, _, err := runInjected(t, s, plan, 0, 5)
	if !errors.Is(err, errs.ErrStageFailed) || !errors.Is(err, errs.ErrTransient) {
		t.Fatalf("got %v, want ErrStageFailed wrapping ErrTransient", err)
	}
}

// TestSlowLinkCounted: slow links delay transfers without changing the
// result.
func TestSlowLinkCounted(t *testing.T) {
	s := svpp4(t)
	plan := chaos.Plan{Slow: []chaos.SlowLink{{From: 0, To: 1, Delay: 100 * time.Microsecond}}}
	c := testCfg()
	b := testBatch(rand.New(rand.NewSource(9)), c, s.N)
	m, err := nn.NewModel(c, 9)
	if err != nil {
		t.Fatal(err)
	}
	r, err := pipeline.New(m, s, b)
	if err != nil {
		t.Fatal(err)
	}
	in := chaos.New(plan, s.P)
	r.WithStageHook(in).WithTransport(in)
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if st := in.Stats(); st.Delayed == 0 {
		t.Error("slow link delayed nothing")
	}
}

// TestInjectionDeterministic: the same plan over the same run produces
// bit-equal losses, gradients, and injector counters.
func TestInjectionDeterministic(t *testing.T) {
	s := svpp4(t)
	plan := chaos.Plan{
		Seed:    99,
		Crashes: []chaos.Crash{{Stage: 0, AtOp: 4}, {Stage: 3, AtOp: 2}},
		Flaky:   []chaos.FlakyLink{{From: 1, To: 2, FailFirst: 1}},
	}
	l1, g1, err := runInjected(t, s, plan, 3, 41)
	if err != nil {
		t.Fatal(err)
	}
	l2, g2, err := runInjected(t, s, plan, 3, 41)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Errorf("losses differ across identical injected runs: %v vs %v", l1, l2)
	}
	for name, a := range g1 {
		if d := tensor.MaxAbsDiff(a, g2[name]); d != 0 {
			t.Errorf("grad %s differs by %g across identical injected runs", name, d)
		}
	}
}

// TestOutOfRangeEntriesIgnored: plan entries beyond the topology are
// dropped rather than panicking.
func TestOutOfRangeEntriesIgnored(t *testing.T) {
	plan := chaos.Plan{
		Crashes: []chaos.Crash{{Stage: 9, AtOp: 0}, {Stage: -1, AtOp: 2}},
		Slow:    []chaos.SlowLink{{From: 9, To: 0, Delay: time.Second}},
		Flaky:   []chaos.FlakyLink{{From: 0, To: 9, DropRate: 1}},
	}
	in := chaos.New(plan, 4)
	if err := in.BeforeOp(0, 0, sched.Op{}); err != nil {
		t.Errorf("unexpected crash: %v", err)
	}
	if err := in.Send(0, 3, sched.Op{}, 0); err != nil {
		t.Errorf("unexpected send failure: %v", err)
	}
}

// TestFaultyCostsCharges pins the simulated fault charges: a crash adds
// recovery plus the replay span since the last checkpoint boundary,
// checkpoints add their own cost at every boundary, slow links stretch
// transfers.
func TestFaultyCostsCharges(t *testing.T) {
	s := svpp4(t)
	base := sim.Unit()
	plan := chaos.Plan{
		Crashes:           []chaos.Crash{{Stage: 2, AtOp: 5}},
		Slow:              []chaos.SlowLink{{From: 0, To: 1, Delay: 250 * time.Millisecond}},
		RecoverySeconds:   7,
		CheckpointSeconds: 0.5,
	}
	fc := chaos.FaultyCosts(base, s, plan, 2)

	ops := s.Stages[2]
	// A crash at op 5 with checkpoints every 2 ops replays from the
	// boundary at op 4: recovery plus one replayed op on top of its own
	// time. The checkpoint charge itself lands on the boundary op.
	want := base.OpTime(2, ops[5]) + 7 + base.OpTime(2, ops[4])
	if got := fc.OpTime(2, ops[5]); math.Abs(got-want) > 1e-12 {
		t.Errorf("crashed op time %v, want %v", got, want)
	}
	// Boundary op 4 carries one checkpoint charge.
	if got, want := fc.OpTime(2, ops[4]), base.OpTime(2, ops[4])+0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("boundary op time %v, want %v", got, want)
	}
	// Unrelated op on another stage is untouched... except its own
	// checkpoint boundaries.
	if got, want := fc.OpTime(0, s.Stages[0][1]), base.OpTime(0, s.Stages[0][1]); got != want {
		t.Errorf("unrelated op time %v, want %v", got, want)
	}
	// Slow link stretches transfers by its delay.
	op := sched.Op{Kind: sched.F}
	if got, want := fc.CommTime(0, 1, op), base.CommTime(0, 1, op)+0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("slow link comm time %v, want %v", got, want)
	}
	if got, want := fc.CommTime(1, 2, op), base.CommTime(1, 2, op); got != want {
		t.Errorf("clean link comm time %v, want %v", got, want)
	}
}

// TestFaultyCostsWholePrefixWithoutCheckpoints: with no checkpointing the
// crash replays the whole prefix.
func TestFaultyCostsWholePrefixWithoutCheckpoints(t *testing.T) {
	s := svpp4(t)
	base := sim.Unit()
	plan := chaos.Plan{Crashes: []chaos.Crash{{Stage: 1, AtOp: 4}}, RecoverySeconds: 3}
	fc := chaos.FaultyCosts(base, s, plan, 0)
	ops := s.Stages[1]
	want := base.OpTime(1, ops[4]) + 3
	for i := 0; i < 4; i++ {
		want += base.OpTime(1, ops[i])
	}
	if got := fc.OpTime(1, ops[4]); math.Abs(got-want) > 1e-12 {
		t.Errorf("uncheckpointed crash op time %v, want %v", got, want)
	}
}

// TestFaultySimulationSlowsDown: the charged plan visibly stretches a
// simulated iteration.
func TestFaultySimulationSlowsDown(t *testing.T) {
	s := svpp4(t)
	base := sim.Unit()
	clean, err := sim.Run(sim.Options{Sched: s, Costs: base})
	if err != nil {
		t.Fatal(err)
	}
	plan := chaos.Plan{Crashes: []chaos.Crash{{Stage: 0, AtOp: 6}}, RecoverySeconds: 50}
	faulty, err := sim.Run(sim.Options{Sched: s, Costs: chaos.FaultyCosts(base, s, plan, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.IterTime <= clean.IterTime+49 {
		t.Errorf("faulty iteration %v vs clean %v: recovery charge not visible", faulty.IterTime, clean.IterTime)
	}
}
