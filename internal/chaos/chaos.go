// Package chaos injects deterministic, seeded faults into the pipeline
// runtime — the executable half of §9's reliability argument. A Plan
// describes stage crashes, slow cross-stage links, and transient send
// failures; an Injector replays the plan through the runtime's StageHook
// and Transport seams. Everything is derived from the plan's seed and
// per-link counters, so two runs with the same plan inject byte-identical
// faults regardless of goroutine interleaving: each crash entry belongs to
// one stage goroutine and each link's state is touched only by its sending
// stage.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"mepipe/internal/errs"
	"mepipe/internal/sched"
)

// ErrCrash marks an injected stage crash. The runtime either recovers it
// from a checkpoint or surfaces it wrapped in errs.ErrStageFailed.
var ErrCrash = errors.New("chaos: injected crash")

// Crash fails a stage immediately before its AtOp'th scheduled op. Each
// entry fires once.
type Crash struct {
	Stage, AtOp int
}

// SlowLink delays every cross-stage transfer from From to To — a degraded
// PCIe lane or congested switch.
type SlowLink struct {
	From, To int
	Delay    time.Duration
}

// FlakyLink makes transfers from From to To fail transiently: the first
// FailFirst transfers each fail their first delivery attempt
// (deterministically), and every attempt additionally fails with
// probability DropRate drawn from the link's seeded source. DropRate 1
// fails every attempt, exhausting the runtime's retry budget.
type FlakyLink struct {
	From, To  int
	FailFirst int
	DropRate  float64
}

// Plan is a deterministic fault plan for one run.
type Plan struct {
	// Seed drives every probabilistic choice (per-link drop draws).
	Seed int64

	Crashes []Crash
	Slow    []SlowLink
	Flaky   []FlakyLink

	// RecoverySeconds and CheckpointSeconds are the simulated-time
	// costs fault-aware simulations charge for a restore and a
	// checkpoint (see FaultyCosts). The live runtime ignores them: its
	// recovery cost is the actual restore-and-replay work.
	RecoverySeconds, CheckpointSeconds float64
}

// crashState fires once; it is touched only by its stage's goroutine.
type crashState struct{ fired bool }

// linkState is touched only by the sending stage's goroutine.
type linkState struct {
	delay     time.Duration
	failFirst int
	dropRate  float64
	rng       *rand.Rand
	transfers int
}

// Injector replays a Plan through the runtime seams. It implements
// pipeline.StageHook (BeforeOp) and pipeline.Transport (Send).
type Injector struct {
	crashes map[[2]int]*crashState // (stage, op index)
	links   [][]*linkState         // [from][to], nil when unaffected

	crashed, delayed, dropped atomic.Int64
}

// New builds an injector for a run with the given number of stages.
// Entries referring to stages outside [0, stages) are ignored.
func New(p Plan, stages int) *Injector {
	in := &Injector{
		crashes: map[[2]int]*crashState{},
		links:   make([][]*linkState, stages),
	}
	for i := range in.links {
		in.links[i] = make([]*linkState, stages)
	}
	for _, c := range p.Crashes {
		if c.Stage >= 0 && c.Stage < stages && c.AtOp >= 0 {
			in.crashes[[2]int{c.Stage, c.AtOp}] = &crashState{}
		}
	}
	link := func(from, to int) *linkState {
		if from < 0 || from >= stages || to < 0 || to >= stages {
			return nil
		}
		if in.links[from][to] == nil {
			// Per-link seeds keep draws independent of which other
			// links exist and of cross-stage interleaving.
			seed := p.Seed ^ (int64(from+1) * 0x5851f42d4c957f2d) ^ int64(to+1)
			in.links[from][to] = &linkState{rng: rand.New(rand.NewSource(seed))}
		}
		return in.links[from][to]
	}
	for _, s := range p.Slow {
		if ls := link(s.From, s.To); ls != nil {
			ls.delay += s.Delay
		}
	}
	for _, f := range p.Flaky {
		if ls := link(f.From, f.To); ls != nil {
			ls.failFirst += f.FailFirst
			ls.dropRate += f.DropRate
		}
	}
	return in
}

// BeforeOp implements the stage hook: it crashes the stage when the plan
// says so (once per entry).
func (in *Injector) BeforeOp(stage, index int, op sched.Op) error {
	cs := in.crashes[[2]int{stage, index}]
	if cs == nil || cs.fired {
		return nil
	}
	cs.fired = true
	in.crashed.Add(1)
	return fmt.Errorf("%w: stage %d before op %d (%v)", ErrCrash, stage, index, op)
}

// Send implements the transport hook: it delays transfers on slow links
// and fails attempts on flaky ones with an error wrapping
// errs.ErrTransient.
func (in *Injector) Send(from, to int, op sched.Op, attempt int) error {
	ls := in.links[from][to]
	if ls == nil {
		return nil
	}
	if attempt == 0 {
		ls.transfers++
		if ls.delay > 0 {
			in.delayed.Add(1)
			sleep(ls.delay)
		}
	}
	fail := attempt == 0 && ls.transfers <= ls.failFirst
	if !fail && ls.dropRate > 0 {
		fail = ls.rng.Float64() < ls.dropRate
	}
	if fail {
		in.dropped.Add(1)
		return fmt.Errorf("chaos: link %d->%d dropped frame %d (attempt %d): %w",
			from, to, ls.transfers, attempt, errs.ErrTransient)
	}
	return nil
}

// Stats reports what the injector actually did.
type Stats struct {
	// Crashes fired, transfers delayed, and delivery attempts failed.
	Crashes, Delayed, Dropped int64
}

// Stats returns the injector's counters (safe to call concurrently).
func (in *Injector) Stats() Stats {
	return Stats{
		Crashes: in.crashed.Load(),
		Delayed: in.delayed.Load(),
		Dropped: in.dropped.Load(),
	}
}
