package chaos

import "time"

// sleep delays the calling goroutine for d. Slow-link injection is the
// one place the chaos package intentionally touches real time: the delay
// models link latency for the resilience tests, and the injected fault
// *schedule* stays deterministic (which links delay, and for how long,
// is decided by the seeded plan — only the waiting itself is wall-clock).
//
// This file is the package's only timer access point; mepipe-lint's
// determinism rule forbids time.Sleep and the timer APIs elsewhere in
// the package, and the allowlist entries for this file are the audited
// exception (see internal/pipeline/clock.go for the pattern).
func sleep(d time.Duration) { time.Sleep(d) }
