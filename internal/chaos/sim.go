package chaos

import (
	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

// FaultyCosts charges a plan's faults onto a simulated iteration of s,
// mirroring what the live resilient runtime pays:
//
//   - each crash adds the plan's RecoverySeconds plus the replay of every
//     op between the stage's last checkpoint boundary and the interrupted
//     op (with no checkpointing the whole prefix is lost);
//   - checkpointEvery > 0 charges CheckpointSeconds before every
//     checkpointEvery'th op on every stage;
//   - each slow link adds its delay to every transfer on that link.
//
// Flaky links are not charged: a transient retry costs microseconds
// against millisecond ops. Hooks key faults by op identity, so the model
// stays a pure function of its arguments as sim.HookedCosts requires.
func FaultyCosts(base sim.Costs, s *sched.Schedule, p Plan, checkpointEvery int) sim.Costs {
	type opKey struct {
		stage int
		op    sched.Op
	}
	extra := map[opKey]float64{}
	for _, c := range p.Crashes {
		if c.Stage < 0 || c.Stage >= len(s.Stages) {
			continue
		}
		ops := s.Stages[c.Stage]
		if c.AtOp < 0 || c.AtOp >= len(ops) {
			continue
		}
		replayFrom := 0
		if checkpointEvery > 0 {
			replayFrom = c.AtOp / checkpointEvery * checkpointEvery
		}
		lost := p.RecoverySeconds
		for i := replayFrom; i < c.AtOp; i++ {
			lost += base.OpTime(c.Stage, ops[i])
		}
		extra[opKey{c.Stage, ops[c.AtOp]}] += lost
	}
	if checkpointEvery > 0 && p.CheckpointSeconds > 0 {
		for stage, ops := range s.Stages {
			for i := 0; i < len(ops); i += checkpointEvery {
				extra[opKey{stage, ops[i]}] += p.CheckpointSeconds
			}
		}
	}
	delay := map[[2]int]float64{}
	for _, sl := range p.Slow {
		delay[[2]int{sl.From, sl.To}] += sl.Delay.Seconds()
	}
	return sim.HookedCosts{
		Base: base,
		Op: func(stage int, op sched.Op, d float64) float64 {
			return d + extra[opKey{stage, op}]
		},
		Comm: func(from, to int, op sched.Op, d float64) float64 {
			return d + delay[[2]int{from, to}]
		},
	}
}
