package bench

import (
	"fmt"
	"sort"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/memplan"
	"mepipe/internal/perf"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

func init() {
	register("pareto", "memory/time Pareto frontier of SVPP variants at real scale (Fig 5 writ large)", Pareto)
}

// Pareto sweeps the §4.2 variant knob f across its whole range for the
// Table 5 MEPipe configuration and reports the memory/time frontier — the
// quantitative version of Fig 5's qualitative trade-off: every point is a
// deployable schedule for a different memory budget.
func Pareto() (*Report, error) {
	m := config.Llama13B()
	cl := cluster.RTX4090Cluster(8)
	par := config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1}
	mesh, err := cluster.NewMesh(cl, par)
	if err != nil {
		return nil, err
	}
	costs, err := perf.New(m, mesh)
	if err != nil {
		return nil, err
	}
	plan, err := memplan.New(m, mesh)
	if err != nil {
		return nil, err
	}
	const n = 8 // GBS 64 at DP 8
	r := &Report{
		ID:     "pareto",
		Title:  "SVPP variant frontier (Llama 13B, GBS 64, PP=8, SPP=4): f vs memory vs time",
		Header: []string{"f", "peak act (GiB)", "iteration", "bubble", "frontier"},
	}
	type point struct {
		f        int
		peak     int64
		iter     float64
		bubble   float64
		frontier bool
	}
	var pts []point
	lo := par.VP * par.SPP
	hi := sched.DefaultF(par.PP, par.VP, par.SPP)
	for f := lo; f <= hi; f++ {
		s, err := sched.SVPP(sched.SVPPOptions{
			P: par.PP, V: par.VP, S: par.SPP, N: n, F: f,
			Reschedule: true, Split: true, FineGrainedW: costs.WPieces(), Est: costs,
		})
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(sim.Options{
			Sched: s, Costs: costs, ActBudget: plan.ActBudget,
			DynamicW: true, TailTime: costs.TailTime,
		})
		if err != nil {
			return nil, err
		}
		pts = append(pts, point{f: f, peak: res.PeakAct, iter: res.IterTime, bubble: res.BubbleRatio})
	}
	// A point is on the frontier if no other point is at least as good in
	// both memory and time and strictly better in one.
	for i := range pts {
		dominated := false
		for j := range pts {
			if i == j {
				continue
			}
			if pts[j].peak <= pts[i].peak && pts[j].iter <= pts[i].iter &&
				(pts[j].peak < pts[i].peak || pts[j].iter < pts[i].iter) {
				dominated = true
				break
			}
		}
		pts[i].frontier = !dominated
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].f > pts[j].f })
	frontier := 0
	for _, p := range pts {
		mark := ""
		if p.frontier {
			mark = "*"
			frontier++
		}
		r.Add(p.f, fmt.Sprintf("%.1f", float64(p.peak)/(1<<30)),
			fmt.Sprintf("%.0f ms", p.iter*1e3),
			fmt.Sprintf("%.1f%%", 100*p.bubble), mark)
	}
	r.Note("%d of %d variants sit on the memory/time frontier — each is the right schedule for some memory budget (§4.5's selection problem)", frontier, len(pts))
	return r, nil
}
