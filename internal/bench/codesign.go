package bench

import (
	"fmt"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/strategy"
)

func init() {
	register("codesign", "hardware design-space sweep: how memory capacity changes who wins (§9)", CoDesign)
}

// CoDesign regenerates §9's closing argument quantitatively: MEPipe's
// slice-level scheduling removes the premium on memory capacity. Sweeping
// the accelerator's memory from 16 GB to 80 GB (everything else held at
// RTX 4090 values) shows the MEPipe-over-DAPPLE advantage collapsing as
// memory grows — on memory-rich parts, plain 1F1B no longer needs CP or
// recomputation and closes most of the gap, which is why expensive HBM
// stops being mandatory once slice-level scheduling exists.
func CoDesign() (*Report, error) {
	m := config.Llama13B()
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}
	r := &Report{
		ID:     "codesign",
		Title:  "MEPipe advantage vs accelerator memory (Llama 13B, GBS 64, 4090-like compute)",
		Header: []string{"memory", "DAPPLE best", "DAPPLE config", "MEPipe best", "MEPipe speedup"},
	}
	for _, gib := range []int{16, 24, 32, 48, 80} {
		cl := cluster.RTX4090Cluster(8)
		cl.GPU.MemoryBytes = int64(gib) << 30
		cl.GPU.Name = fmt.Sprintf("4090-like %dGB", gib)
		space := strategy.DefaultSpace()
		space.Prune = true
		dap, err := strategy.Search(strategy.DAPPLE, m, cl, tr, space)
		if err != nil && dap == nil {
			return nil, err
		}
		me, err := strategy.Search(strategy.MEPipe, m, cl, tr, space)
		if err != nil && me == nil {
			return nil, err
		}
		db, mb := dap.Best(), me.Best()
		switch {
		case mb == nil && db == nil:
			r.Add(fmt.Sprintf("%d GiB", gib), "OOM", "-", "OOM", "-")
		case db == nil:
			r.Add(fmt.Sprintf("%d GiB", gib), "OOM", "-",
				fmt.Sprintf("%.0f ms", mb.IterTime*1e3), "only MEPipe fits")
		default:
			r.Add(fmt.Sprintf("%d GiB", gib),
				fmt.Sprintf("%.0f ms", db.IterTime*1e3), tuple(db.Par),
				fmt.Sprintf("%.0f ms", mb.IterTime*1e3),
				fmt.Sprintf("%.2fx", db.IterTime/mb.IterTime))
		}
	}
	r.Note("as memory grows DAPPLE sheds its crutches (selective recompute at 16 GiB, then CP), shrinking MEPipe's edge to its pure scheduling advantage")
	r.Note("§9: slice-level scheduling 'diminishes the traditional emphasis on memory capacity' — the memory-driven share of the win exists only where memory is scarce")
	return r, nil
}
