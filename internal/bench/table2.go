package bench

import (
	"fmt"

	"mepipe/internal/config"
	"mepipe/internal/model"
)

func init() {
	register("table2", "communication volume per strategy: the numbers behind Table 2's plus signs", Table2)
}

// commVolumes returns the per-GPU, per-iteration communication volume (in
// bytes) each parallel strategy moves for a reference job, computed from
// first principles. g is the group size each strategy uses.
func commVolumes(m config.Model, gbs, g int) map[string]float64 {
	layers := float64(m.NumLayers)
	seq := float64(m.SeqLen)
	h := float64(m.HiddenSize)
	kv := float64(m.HeadDim() * m.NumKVHeads)
	params := float64(model.TotalParams(m))
	samples := float64(gbs)
	ring := 2 * float64(g-1) / float64(g) // ring all-reduce volume factor

	return map[string]float64{
		// TP: two activation all-reduces per layer per forward and two
		// per backward, for every sample's tokens (§2.2).
		"TP": samples * layers * 4 * ring * seq * h * model.BytesFP16,
		// CP: ring exchange of K/V forward and K/V gradients backward,
		// per layer per sample.
		"CP (ZeRO)": samples*layers*3*(float64(g-1)/float64(g))*seq*2*kv*model.BytesFP16 +
			// plus the ZeRO gradient reduce-scatter + param all-gather
			ring*params*model.BytesFP16,
		// DP with ZeRO-1: one gradient reduce-scatter + parameter
		// all-gather per iteration, independent of the batch.
		"DP (ZeRO)": ring * params * model.BytesFP16,
		// PP: activations forward + gradients backward across each of
		// the p−1 cuts, but each GPU touches only its two cuts: per
		// GPU ≈ 2 sends + 2 receives of seq·h per sample.
		"PP": samples * 4 * seq * h * model.BytesFP16 / float64(g),
		// SPP: identical wire traffic to PP — slicing is temporal, the
		// per-sample bytes crossing each cut are unchanged (Table 2's
		// point: memory partitioning without new communication).
		"SPP": samples * 4 * seq * h * model.BytesFP16 / float64(g),
	}
}

// Table2 quantifies Table 2: per-GPU communication volume for each
// parallel strategy at group size 8 on Llama 13B with global batch 64 —
// turning the paper's qualitative +++++/++++/++/+ column into bytes.
func Table2() (*Report, error) {
	m := config.Llama13B()
	const gbs, g = 64, 8
	vols := commVolumes(m, gbs, g)
	r := &Report{
		ID:     "table2",
		Title:  fmt.Sprintf("per-GPU communication per iteration, %s, GBS %d, group size %d", m.Name, gbs, g),
		Header: []string{"strategy", "volume", "paper's Table 2", "partitions"},
	}
	rows := []struct {
		name, plus, parts string
	}{
		{"TP", "+++++", "parameters, activations, optimizer"},
		{"CP (ZeRO)", "++++", "activations, optimizer"},
		{"DP (ZeRO)", "++", "optimizer"},
		{"PP", "+", "parameters, optimizer"},
		{"SPP", "+", "parameters, activations, optimizer"},
	}
	for _, row := range rows {
		r.Add(row.name, fmt.Sprintf("%.1f GiB", vols[row.name]/(1<<30)), row.plus, row.parts)
	}
	r.Note("SPP matches PP's wire bytes while also partitioning activations — Table 2's bottom row, the paper's reason to build on it")
	return r, nil
}
