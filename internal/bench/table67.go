package bench

import (
	"fmt"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/strategy"
)

func init() {
	register("table6", "influence of pipeline parallelism on DAPPLE (Llama 13B, GBS 64)", Table6)
	register("table7", "influence of context parallelism on DAPPLE (Llama 13B, GBS 32)", Table7)
}

// dappleSweep evaluates DAPPLE at fixed (PP, DP, CP) triples.
func dappleSweep(id, title string, gbs int, rows [][3]int, paperMS map[[3]int]string) (*Report, error) {
	m := config.Llama13B()
	cl := cluster.RTX4090Cluster(8)
	tr := config.Training{GlobalBatch: gbs, MicroBatch: 1}
	r := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"(PP, DP, CP)", "n", "bubble (theory)", "bubble (sim)", "iteration", "paper"},
	}
	for _, c := range rows {
		par := config.Parallel{PP: c[0], DP: c[1], CP: c[2], SPP: 1, VP: 1}
		ev, err := strategy.Evaluate(strategy.DAPPLE, m, cl, par, tr)
		if err != nil {
			return nil, err
		}
		theory := float64(par.PP-1) / float64(par.PP-1+ev.N)
		iter := fmt.Sprintf("%.1f ms", ev.IterTime*1e3)
		simB := fmt.Sprintf("%.1f%%", 100*ev.Bubble)
		if ev.OOM {
			iter = "OOM"
			simB = "-"
		}
		r.Add(fmt.Sprintf("(%d, %d, %d)", c[0], c[1], c[2]), ev.N,
			fmt.Sprintf("%.1f%%", 100*theory), simB, iter, paperMS[c])
	}
	return r, nil
}

// Table6 regenerates Table 6: PP ∈ {2, 4, 8} at DP = 4 for Llama 13B with
// global batch 64 — larger PP trades bubble for memory until PP = 2 stops
// fitting at all.
func Table6() (*Report, error) {
	r, err := dappleSweep("table6",
		"DAPPLE under different pipeline sizes (Llama 13B, GBS 64)",
		64,
		[][3]int{{2, 4, 8}, {4, 4, 4}, {8, 4, 2}},
		map[[3]int]string{
			{2, 4, 8}: "OOM",
			{4, 4, 4}: "6711.8 ms",
			{8, 4, 2}: "6226.3 ms",
		})
	if err != nil {
		return nil, err
	}
	r.Note("paper: PP=2 OOMs on static memory; PP=8 beats PP=4 despite the higher bubble")
	return r, nil
}

// Table7 regenerates Table 7: CP ∈ {1, 2, 4} at PP = 8 for Llama 13B with
// global batch 32 — CP = 2 is the sweet spot before communication and
// operator degradation dominate.
func Table7() (*Report, error) {
	r, err := dappleSweep("table7",
		"DAPPLE under different context-parallel sizes (Llama 13B, GBS 32)",
		32,
		[][3]int{{8, 8, 1}, {8, 4, 2}, {8, 2, 4}},
		map[[3]int]string{
			{8, 8, 1}: "3619.0 ms",
			{8, 4, 2}: "3199.7 ms",
			{8, 2, 4}: "3772.9 ms",
		})
	if err != nil {
		return nil, err
	}
	r.Note("paper: CP=2 fastest — bubble reduction first outweighs, then loses to comm + operator degradation")
	return r, nil
}
