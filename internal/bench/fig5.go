package bench

import (
	"fmt"

	"mepipe/internal/obs"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

func init() {
	register("fig5", "SVPP scheduling variants: memory vs bubble trade-off (+Fig 6 rescheduling)", Fig5)
}

// Fig5 regenerates Figures 5 and 6: the SVPP variants for p=4, v=2, s=2,
// n=2 under shrinking in-flight limits f, with and without the backward
// rescheduling optimisation.
func Fig5() (*Report, error) {
	r := &Report{
		ID:     "fig5",
		Title:  "SVPP variants (p=4, v=2, s=2, n=2): f vs peak memory and makespan",
		Header: []string{"f", "peak act (units of A)", "makespan (base)", "makespan (rescheduled)", "bubble (rescheduled)"},
	}
	for _, f := range []int{8, 6, 4} {
		base, err := sched.SVPP(sched.SVPPOptions{P: 4, V: 2, S: 2, N: 2, F: f})
		if err != nil {
			return nil, err
		}
		baseRes, err := sim.Run(sim.Options{Sched: base, Costs: sim.Unit()})
		if err != nil {
			return nil, err
		}
		opt, err := sched.SVPP(sched.SVPPOptions{P: 4, V: 2, S: 2, N: 2, F: f, Reschedule: true})
		if err != nil {
			return nil, err
		}
		rec := obs.NewRecorder()
		optRes, err := sim.Run(sim.Options{Sched: opt, Costs: sim.Unit(), Trace: rec})
		if err != nil {
			return nil, err
		}
		// Attach the tightest variant's (f=4) observability snapshot.
		if f == 4 {
			r.Obs = rec.Trace().Snapshot()
		}
		r.Add(f,
			fmt.Sprintf("%d/16 = %.3f A", optRes.PeakAct, float64(optRes.PeakAct)/16),
			fmt.Sprintf("%.0f", baseRes.IterTime),
			fmt.Sprintf("%.0f", optRes.IterTime),
			fmt.Sprintf("%.1f%%", 100*optRes.BubbleRatio))
	}
	r.Note("paper Fig 5(c) vs 5(a): half the memory for ~50%% more bubble; Fig 6: rescheduling compacts the tail at 1/2 A peak")
	return r, nil
}
