package bench

import (
	"fmt"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/perf"
)

func init() {
	register("fig9", "transformer-layer performance under CP vs SPP slicing", Fig9)
}

// Fig9 regenerates Figure 9: measured per-GPU transformer-layer throughput
// for Llama 13B as the sample is sliced 1/2/4/8 ways by context parallelism
// and by sequence pipeline parallelism. SPP degrades only through operator
// efficiency; CP additionally pays ring communication and finer 2·cp
// chunking, so its curve falls faster.
func Fig9() (*Report, error) {
	m := config.Llama13B()
	cl := cluster.RTX4090Cluster(8)
	r := &Report{
		ID:     "fig9",
		Title:  "per-layer throughput (TFLOPS/GPU) vs CP/SPP size, Llama 13B",
		Header: []string{"size", "SPP TFLOPS", "SPP relative", "CP TFLOPS", "CP relative"},
	}
	base, err := perf.TransformerLayerTFLOPS(m, cl, 1, false)
	if err != nil {
		return nil, err
	}
	for _, f := range []int{1, 2, 4, 8} {
		spp, err := perf.TransformerLayerTFLOPS(m, cl, f, false)
		if err != nil {
			return nil, err
		}
		cp, err := perf.TransformerLayerTFLOPS(m, cl, f, true)
		if err != nil {
			return nil, err
		}
		r.Add(f,
			fmt.Sprintf("%.1f", spp), fmt.Sprintf("%.1f%%", 100*spp/base),
			fmt.Sprintf("%.1f", cp), fmt.Sprintf("%.1f%%", 100*cp/base))
	}
	spp8, _ := perf.TransformerLayerTFLOPS(m, cl, 8, false)
	r.Note("paper anchor: SPP=8 loses 12.6%% per layer; measured here: %.1f%%", 100*(1-spp8/base))
	return r, nil
}
