// Package bench regenerates every table and figure of the paper's
// evaluation (§7) from the reproduction's analytic models, schedule
// generators, and discrete-event simulator. Each experiment returns a
// Report; cmd/mepipe-bench prints them and the repository's top-level
// benchmarks time them.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"mepipe/internal/obs"
)

// Report is one regenerated table or figure (figures become the table of
// series the paper plots).
type Report struct {
	ID     string // e.g. "fig8"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string

	// Obs, when set, is the observability snapshot of the experiment's
	// headline simulated iteration (per-stage busy/stall/comm/memory
	// aggregates); WriteText appends its summary lines.
	Obs *obs.Snapshot
}

// Add appends a row; values are stringified with %v and floats compactly.
func (r *Report) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	r.Rows = append(r.Rows, row)
}

// Note records a free-form observation shown under the table.
func (r *Report) Note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// WriteText renders the report as an aligned text table.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range r.Header {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, row := range r.Rows {
		for i, c := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, c)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	if r.Obs != nil {
		for _, line := range r.Obs.Summary() {
			if _, err := fmt.Fprintf(w, "  obs: %s\n", line); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the report as RFC-4180-ish CSV (the artifact's plot
// scripts consume exactly this kind of table).
func (r *Report) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := fmt.Fprint(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := fmt.Fprint(w, c); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	if err := writeRow(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Experiment pairs an identifier with its generator.
type Experiment struct {
	ID   string
	Desc string
	Run  func() (*Report, error)
}

var registry []Experiment

func register(id, desc string, run func() (*Report, error)) {
	registry = append(registry, Experiment{ID: id, Desc: desc, Run: run})
}

// Experiments lists every registered experiment sorted by ID.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
