package bench

import (
	"fmt"
	"sync"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/strategy"
)

func init() {
	register("fig8", "iteration time of Llama 13B across global batch sizes (end-to-end)", Fig8)
	register("table5", "optimal parallel configuration per system (Llama 13B)", Table5)
}

// fig8Data caches the grid searches shared by Fig 8 and Table 5.
var fig8Data = struct {
	sync.Mutex
	results map[int]map[strategy.System]*strategy.SearchResult
}{results: map[int]map[strategy.System]*strategy.SearchResult{}}

func fig8Search(gbs int) (map[strategy.System]*strategy.SearchResult, error) {
	fig8Data.Lock()
	defer fig8Data.Unlock()
	if r, ok := fig8Data.results[gbs]; ok {
		return r, nil
	}
	m := config.Llama13B()
	cl := cluster.RTX4090Cluster(8)
	tr := config.Training{GlobalBatch: gbs, MicroBatch: 1}
	out := map[strategy.System]*strategy.SearchResult{}
	for _, sys := range strategy.Systems() {
		res, err := strategy.Search(sys, m, cl, tr, strategy.DefaultSpace())
		if err != nil && res == nil {
			return nil, fmt.Errorf("bench: fig8 gbs=%d %s: %w", gbs, sys, err)
		}
		out[sys] = res
	}
	fig8Data.results[gbs] = out
	return out, nil
}

// Fig8 regenerates Figure 8: best iteration time per system for Llama 13B
// at global batch sizes 32, 64 and 128 on the 64× RTX 4090 cluster.
func Fig8() (*Report, error) {
	r := &Report{
		ID:     "fig8",
		Title:  "Llama 13B iteration time (ms) by global batch size, 64x RTX 4090",
		Header: []string{"system", "GBS 32", "GBS 64", "GBS 128"},
	}
	times := map[strategy.System][3]float64{}
	gbses := []int{32, 64, 128}
	for gi, gbs := range gbses {
		res, err := fig8Search(gbs)
		if err != nil {
			return nil, err
		}
		for _, sys := range strategy.Systems() {
			t := times[sys]
			if best := res[sys].Best(); best != nil {
				t[gi] = best.IterTime * 1e3
			}
			times[sys] = t
		}
	}
	for _, sys := range strategy.Systems() {
		t := times[sys]
		cells := []interface{}{sys.String()}
		for gi := range gbses {
			if t[gi] == 0 {
				cells = append(cells, "OOM")
			} else {
				cells = append(cells, fmt.Sprintf("%.0f", t[gi]))
			}
		}
		r.Add(cells...)
	}
	// Speedup of MEPipe over the best baseline, the paper's headline.
	for gi, gbs := range gbses {
		best := 0.0
		for _, sys := range strategy.Systems() {
			if sys == strategy.MEPipe {
				continue
			}
			if t := times[sys][gi]; t > 0 && (best == 0 || t < best) {
				best = t
			}
		}
		me := times[strategy.MEPipe][gi]
		if me > 0 && best > 0 {
			r.Note("GBS %d: MEPipe speedup over best baseline = %.2fx (paper: %s)",
				gbs, best/me, map[int]string{32: "1.86x", 64: "1.49x", 128: "1.36x"}[gbs])
		}
	}
	return r, nil
}

// Table5 regenerates Table 5: the grid-searched optimal (PP, CP/SPP, VP,
// recompute) tuple per system and batch size.
func Table5() (*Report, error) {
	r := &Report{
		ID:     "table5",
		Title:  "optimal parallel configuration (PP, CP/SPP, VP, recompute) per system, Llama 13B",
		Header: []string{"system", "GBS 32", "GBS 64", "GBS 128"},
	}
	for _, sys := range strategy.Systems() {
		cells := []interface{}{sys.String()}
		for _, gbs := range []int{32, 64, 128} {
			res, err := fig8Search(gbs)
			if err != nil {
				return nil, err
			}
			best := res[sys].Best()
			if best == nil {
				cells = append(cells, "OOM")
				continue
			}
			cells = append(cells, tuple(best.Par))
		}
		r.Add(cells...)
	}
	r.Note("paper Table 5: DAPPLE (8,2,1,x); VPP (4,*,2,r); ZB (8,4,1,x); ZBV (4,8,2,x)/OOM@128; MEPipe (8,4,1,x)")
	return r, nil
}

// tuple renders a strategy as the paper's (PP, CP/SPP, VP, recompute) cell.
func tuple(p config.Parallel) string {
	slice := p.CP
	if p.SPP > 1 {
		slice = p.SPP
	}
	rec := "x"
	switch p.Recompute {
	case config.RecomputeSelective:
		rec = "s"
	case config.RecomputeFull:
		rec = "r"
	}
	return fmt.Sprintf("(%d,%d,%d,%s)", p.PP, slice, p.VP, rec)
}
