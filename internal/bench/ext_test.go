package bench

import (
	"strings"
	"testing"
)

// TestLongContextCrossover asserts the §5 discussion: uniform slicing with
// fine-grained weight gradients wins at 4k context, non-uniform balanced
// slicing wins at 128k.
func TestLongContextCrossover(t *testing.T) {
	r, err := LongContext()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(r.Rows))
	}
	if got := r.Rows[0][3]; got != "uniform+fgW" {
		t.Errorf("4k winner = %s, §5 says fine-grained W absorbs the imbalance", got)
	}
	if got := r.Rows[2][3]; got != "non-uniform" {
		t.Errorf("128k winner = %s, §5 says non-uniform wins past 128k tokens", got)
	}
	// At 4k the DP should find the (near-)uniform partition.
	if !strings.Contains(r.Rows[0][4], "256 / 256") {
		t.Errorf("4k partition %s, want uniform 256/256", r.Rows[0][4])
	}
	// The 128k gap should be material (> 5%).
	u := cell(t, r.Rows[2][1])
	nu := cell(t, r.Rows[2][2])
	if (u-nu)/u < 0.05 {
		t.Errorf("128k non-uniform advantage only %.1f%%, want > 5%%", 100*(u-nu)/u)
	}
}

// TestTensorParallelCrossover asserts the §2.2 judgement the experiment
// measures: TP degrades steeply on PCIe and is useful on NVLink.
func TestTensorParallelCrossover(t *testing.T) {
	r, err := TensorParallel()
	if err != nil {
		t.Fatal(err)
	}
	// Rows are TP = 1, 2, 4, 8; columns: [tp, 4090, a100].
	g2 := cell(t, r.Rows[1][1])
	g4 := cell(t, r.Rows[2][1])
	g8 := cell(t, r.Rows[3][1])
	if !(g2 < g4 && g4 < g8) {
		t.Errorf("4090: TP should degrade monotonically: %v, %v, %v", g2, g4, g8)
	}
	if g8 < 1.8*g2 {
		t.Errorf("4090: TP=8 (%v) should be far worse than TP=2 (%v) on PCIe", g8, g2)
	}
	a1 := cell(t, r.Rows[0][2])
	a2 := cell(t, r.Rows[1][2])
	if a2 > a1*1.05 {
		t.Errorf("A100: TP=2 (%v) should not lose to TP=1 (%v) on NVLink", a2, a1)
	}
	// The same TP=2 config is far cheaper on NVLink than on PCIe.
	if g2 < 1.3*a2 {
		t.Errorf("TP=2 on PCIe (%v) should cost far more than on NVLink (%v)", g2, a2)
	}
}

// TestPowerParity asserts the §9 headline: roughly 24 years for the A100
// cluster to reach cost parity through electricity savings.
func TestPowerParity(t *testing.T) {
	years := YearsToParity()
	if years < 15 || years > 35 {
		t.Errorf("years to parity = %.1f, paper estimates ~24", years)
	}
	r, err := Power()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(r.Rows))
	}
	// The 4090 cluster must draw more total power (§9: two 4090s match
	// one A100, so the consumer cluster pays more in operation).
	kw4090 := cell(t, r.Rows[0][2])
	kwA100 := cell(t, r.Rows[1][2])
	if kw4090 <= kwA100 {
		t.Errorf("4090 cluster %v kW should exceed A100 cluster %v kW", kw4090, kwA100)
	}
}

// TestCoDesignShape: the MEPipe advantage weakly shrinks as accelerator
// memory grows, and DAPPLE's config simplifies (recompute/CP disappear).
func TestCoDesignShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid searches are slow")
	}
	r, err := CoDesign()
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i, rw := range r.Rows {
		if rw[4] == "only MEPipe fits" || rw[4] == "-" {
			continue
		}
		sp := cell(t, rw[4])
		if sp <= 1 {
			t.Errorf("%s: MEPipe should keep an advantage (%.2fx)", rw[0], sp)
		}
		if i > 0 && prev > 0 && sp > prev+0.02 {
			t.Errorf("%s: advantage grew with more memory (%.2fx after %.2fx)", rw[0], sp, prev)
		}
		prev = sp
	}
	// At the memory-rich end DAPPLE runs bare 1F1B.
	last := r.Rows[len(r.Rows)-1]
	if last[2] != "(8,1,1,x)" {
		t.Errorf("80 GiB DAPPLE config %s, want bare (8,1,1,x)", last[2])
	}
}

// TestParetoShape: the f sweep must trade memory for time monotonically in
// peak, and the bubble-optimal f dominates nothing above it.
func TestParetoShape(t *testing.T) {
	r, err := Pareto()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 5 {
		t.Fatalf("only %d variants", len(r.Rows))
	}
	// Rows are sorted f descending: peak non-increasing, iteration
	// non-decreasing.
	for i := 1; i < len(r.Rows); i++ {
		if cell(t, r.Rows[i][1]) > cell(t, r.Rows[i-1][1])+1e-9 {
			t.Errorf("row %d: peak memory rose while f shrank", i)
		}
		if cell(t, r.Rows[i][2]) < cell(t, r.Rows[i-1][2])-1e-9 {
			t.Errorf("row %d: iteration improved while f shrank", i)
		}
	}
	// The top (bubble-optimal) variant is always on the frontier.
	if r.Rows[0][4] != "*" {
		t.Error("bubble-optimal variant missing from the frontier")
	}
	// Most variants should be frontier points (near-strict trade-off).
	stars := 0
	for _, row := range r.Rows {
		if row[4] == "*" {
			stars++
		}
	}
	if stars < len(r.Rows)/2 {
		t.Errorf("only %d/%d variants on the frontier", stars, len(r.Rows))
	}
}

// TestTable2Ordering: the computed volumes must reproduce the paper's
// qualitative ordering TP > CP > DP > PP = SPP.
func TestTable2Ordering(t *testing.T) {
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 { return cell(t, row(t, r, name)[1]) }
	tp, cp, dp := get("TP"), get("CP"), get("DP")
	pp, spp := get("PP"), get("SPP")
	if !(tp > cp && cp > dp && dp > pp) {
		t.Errorf("ordering broken: TP %.1f, CP %.1f, DP %.1f, PP %.1f", tp, cp, dp, pp)
	}
	if pp != spp {
		t.Errorf("SPP (%.1f) must equal PP (%.1f) — no extra communication", spp, pp)
	}
	// The gaps should be decisive (an order of magnitude TP vs PP).
	if tp < 20*pp {
		t.Errorf("TP (%.1f) should dwarf PP (%.1f)", tp, pp)
	}
}
