package bench

import (
	"fmt"

	"mepipe/internal/faults"
)

func init() {
	register("faults", "failure overhead at scale with in-memory checkpointing (§9's <5% estimate)", Faults)
}

// Faults regenerates §9's reliability estimate: at the OPT-logbook failure
// rate (~12 h MTBF per thousand GPUs) and with in-memory checkpointing
// (30 s checkpoints, 5 min recovery), the Young–Daly overhead of hardware
// failures stays under 5% for a thousand RTX 4090s.
func Faults() (*Report, error) {
	r := &Report{
		ID:     "faults",
		Title:  "hardware-failure overhead vs cluster size (Young-Daly, in-memory checkpoints)",
		Header: []string{"GPUs", "cluster MTBF", "checkpoint interval", "overhead", "goodput"},
	}
	for _, gpus := range []int{64, 256, 1000, 2048, 4096} {
		rel := faults.Default4090(gpus)
		mtbf, err := rel.ClusterMTBF()
		if err != nil {
			return nil, err
		}
		tau, err := rel.OptimalInterval()
		if err != nil {
			return nil, err
		}
		o, err := rel.Overhead()
		if err != nil {
			return nil, err
		}
		r.Add(gpus,
			fmt.Sprintf("%.1f h", mtbf.Hours()),
			fmt.Sprintf("%.0f min", tau.Minutes()),
			fmt.Sprintf("%.1f%%", 100*o),
			fmt.Sprintf("%.1f%%", 100*(1-o)))
	}
	r.Note("paper §9: 'we estimate the cost of hardware failures is less than 5%% for a thousand RTX 4090 GPUs'")
	return r, nil
}
