package bench

import (
	"fmt"

	"mepipe/internal/analytic"
	"mepipe/internal/config"
	"mepipe/internal/model"
)

func init() {
	register("fig1", "bubble ratio vs peak activation memory of SOTA schedulers (Llama 13B)", Fig1)
}

// Fig1 regenerates Figure 1: bubble ratio and peak activation memory per
// worker for the state-of-the-art schedulers on Llama 13B with context 4096,
// p = 8, v = 2, micro-batch size 1, and n = 8 micro-batches; MEPipe shown at
// s = 4 and s = 8.
func Fig1() (*Report, error) {
	m := config.Llama13B()
	a := float64(model.SampleActivationBytes(m)) / (1 << 30)
	r := &Report{
		ID:     "fig1",
		Title:  "bubble ratio and peak activation memory (Llama 13B, p=8, v=2, n=8)",
		Header: []string{"scheduler", "bubble ratio", "peak act (GiB/worker)", "vs DAPPLE"},
	}
	type entry struct {
		name string
		meth analytic.Method
		p    analytic.Params
	}
	entries := []entry{
		{"DAPPLE", analytic.DAPPLE, analytic.Params{P: 8, V: 1, S: 1, N: 8}},
		{"VPP", analytic.VPP, analytic.Params{P: 8, V: 2, S: 1, N: 8}},
		{"Hanayo", analytic.Hanayo, analytic.Params{P: 8, V: 2, S: 1, N: 8}},
		{"TeraPipe (s=4)", analytic.TeraPipe, analytic.Params{P: 8, V: 1, S: 4, N: 8}},
		{"MEPipe (s=4)", analytic.SVPP, analytic.Params{P: 8, V: 2, S: 4, N: 8}},
		{"MEPipe (s=8)", analytic.SVPP, analytic.Params{P: 8, V: 2, S: 8, N: 8}},
	}
	base := 0.0
	for _, e := range entries {
		b, err := analytic.BubbleRatio(e.meth, e.p)
		if err != nil {
			return nil, err
		}
		mem, err := analytic.ActivationMemory(e.meth, e.p)
		if err != nil {
			return nil, err
		}
		gib := mem * a
		if e.name == "DAPPLE" {
			base = gib
		}
		r.Add(e.name, fmt.Sprintf("%.1f%%", 100*b), fmt.Sprintf("%.1f", gib),
			fmt.Sprintf("%+.0f%%", 100*(gib-base)/base))
	}
	r.Note("A = %.1f GiB per sample; paper claims >70%% reduction at s=4 and >80%% at s=8", a)
	return r, nil
}
