package bench

import (
	"fmt"

	"mepipe/internal/analytic"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

func init() {
	register("table3", "analytic bubble ratio and activation memory vs simulation", Table3)
}

// Table3 regenerates Table 3: closed-form bubble ratio and activation
// memory of every scheduling method in both regimes, cross-checked against
// the discrete-event simulator under uniform costs.
func Table3() (*Report, error) {
	r := &Report{
		ID:     "table3",
		Title:  "bubble ratio and activation memory: closed form vs simulated",
		Header: []string{"method", "regime", "bubble (formula)", "bubble (sim)", "memory/A (formula)", "memory/A (sim)"},
	}
	type row struct {
		name  string
		meth  analytic.Method
		p     analytic.Params
		build func(p analytic.Params) (*sched.Schedule, error)
	}
	build := []row{
		{"GPipe", analytic.GPipe, analytic.Params{P: 4, V: 1, S: 1, N: 8},
			func(p analytic.Params) (*sched.Schedule, error) { return sched.GPipe(p.P, p.N, nil) }},
		{"DAPPLE", analytic.DAPPLE, analytic.Params{P: 4, V: 1, S: 1, N: 8},
			func(p analytic.Params) (*sched.Schedule, error) { return sched.DAPPLE(p.P, p.N, nil) }},
		{"VPP", analytic.VPP, analytic.Params{P: 4, V: 2, S: 1, N: 8},
			func(p analytic.Params) (*sched.Schedule, error) { return sched.VPP(p.P, p.V, p.N, nil) }},
		{"Hanayo", analytic.Hanayo, analytic.Params{P: 4, V: 2, S: 1, N: 8},
			func(p analytic.Params) (*sched.Schedule, error) { return sched.Hanayo(p.P, p.N, nil) }},
		{"TeraPipe", analytic.TeraPipe, analytic.Params{P: 4, V: 1, S: 4, N: 8},
			func(p analytic.Params) (*sched.Schedule, error) { return sched.TeraPipe(p.P, p.S, p.N, nil) }},
		{"SVPP", analytic.SVPP, analytic.Params{P: 4, V: 2, S: 2, N: 8},
			func(p analytic.Params) (*sched.Schedule, error) {
				return sched.SVPP(sched.SVPPOptions{P: p.P, V: p.V, S: p.S, N: p.N, Reschedule: true})
			}},
		// Large-cluster regime (n < p).
		{"DAPPLE", analytic.DAPPLE, analytic.Params{P: 8, V: 1, S: 1, N: 4},
			func(p analytic.Params) (*sched.Schedule, error) { return sched.DAPPLE(p.P, p.N, nil) }},
		{"TeraPipe", analytic.TeraPipe, analytic.Params{P: 8, V: 1, S: 4, N: 4},
			func(p analytic.Params) (*sched.Schedule, error) { return sched.TeraPipe(p.P, p.S, p.N, nil) }},
		{"SVPP", analytic.SVPP, analytic.Params{P: 8, V: 2, S: 2, N: 4},
			func(p analytic.Params) (*sched.Schedule, error) {
				return sched.SVPP(sched.SVPPOptions{P: p.P, V: p.V, S: p.S, N: p.N, Reschedule: true})
			}},
	}
	for _, b := range build {
		wantB, err := analytic.BubbleRatio(b.meth, b.p)
		if err != nil {
			return nil, err
		}
		wantM, err := analytic.ActivationMemory(b.meth, b.p)
		if err != nil {
			return nil, err
		}
		s, err := b.build(b.p)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(sim.Options{Sched: s, Costs: sim.Unit()})
		if err != nil {
			return nil, err
		}
		regime := "n>=p"
		if b.p.N < b.p.P {
			regime = "n<p"
		}
		simM := float64(res.PeakAct) / float64(b.p.V*b.p.S*b.p.P)
		r.Add(b.name, regime,
			fmt.Sprintf("%.2f%%", 100*wantB), fmt.Sprintf("%.2f%%", 100*res.BubbleRatio),
			fmt.Sprintf("%.4f", wantM), fmt.Sprintf("%.4f", simM))
	}
	r.Note("simulated bubbles can sit slightly above the idealized closed forms (drain-phase chain latency)")
	return r, nil
}
