package bench

import (
	"fmt"
	"sync"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/strategy"
)

func init() {
	register("fig10", "iteration time across model sizes (Llama 7B/13B/34B, GBS 128)", Fig10)
	register("table8", "optimal parallel configuration per system across model sizes", Table8)
}

var fig10Data = struct {
	sync.Mutex
	results map[string]map[strategy.System]*strategy.SearchResult
}{results: map[string]map[strategy.System]*strategy.SearchResult{}}

func fig10Search(m config.Model) (map[strategy.System]*strategy.SearchResult, error) {
	fig10Data.Lock()
	defer fig10Data.Unlock()
	if r, ok := fig10Data.results[m.Name]; ok {
		return r, nil
	}
	cl := cluster.RTX4090Cluster(8)
	tr := config.Training{GlobalBatch: 128, MicroBatch: 1}
	out := map[strategy.System]*strategy.SearchResult{}
	for _, sys := range strategy.Systems() {
		res, err := strategy.Search(sys, m, cl, tr, strategy.DefaultSpace())
		if err != nil && res == nil {
			return nil, fmt.Errorf("bench: fig10 %s %s: %w", m.Name, sys, err)
		}
		out[sys] = res
	}
	fig10Data.results[m.Name] = out
	return out, nil
}

func fig10Models() []config.Model {
	return []config.Model{config.Llama7B(), config.Llama13B(), config.Llama34B()}
}

// Fig10 regenerates Figure 10: best iteration time per system for Llama
// 7B/13B/34B at global batch 128.
func Fig10() (*Report, error) {
	r := &Report{
		ID:     "fig10",
		Title:  "iteration time (ms) by model size, GBS 128, 64x RTX 4090",
		Header: []string{"system", "7B", "13B", "34B"},
	}
	for _, sys := range strategy.Systems() {
		cells := []interface{}{sys.String()}
		for _, m := range fig10Models() {
			res, err := fig10Search(m)
			if err != nil {
				return nil, err
			}
			if best := res[sys].Best(); best != nil {
				cells = append(cells, fmt.Sprintf("%.0f", best.IterTime*1e3))
			} else {
				cells = append(cells, "OOM")
			}
		}
		r.Add(cells...)
	}
	r.Note("paper anchors (Table 9, MEPipe on 4090): 7B 3171 ms, 13B 5852 ms, 34B 17043 ms")
	return r, nil
}

// Table8 regenerates Table 8: the optimal configuration tuples per system
// and model size (VPP/ZB/ZBV hit the 34B static-memory wall).
func Table8() (*Report, error) {
	r := &Report{
		ID:     "table8",
		Title:  "optimal (PP, CP/SPP, VP, recompute) per system and model size, GBS 128",
		Header: []string{"system", "7B", "13B", "34B"},
	}
	for _, sys := range strategy.Systems() {
		cells := []interface{}{sys.String()}
		for _, m := range fig10Models() {
			res, err := fig10Search(m)
			if err != nil {
				return nil, err
			}
			if best := res[sys].Best(); best != nil {
				cells = append(cells, tuple(best.Par))
			} else {
				cells = append(cells, "OOM")
			}
		}
		r.Add(cells...)
	}
	r.Note("paper Table 8: MEPipe (8,4,1) for 7B/13B and (16,16,1) for 34B; VPP/ZB/ZBV unable to train 34B")
	return r, nil
}
