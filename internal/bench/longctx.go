package bench

import (
	"fmt"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/partition"
	"mepipe/internal/perf"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

func init() {
	register("longctx", "uniform + fine-grained W vs TeraPipe-style non-uniform slicing across context lengths (§5 discussion)", LongContext)
}

// longCtxVariant simulates one slicing strategy at one context length and
// returns the iteration time.
func longCtxVariant(m config.Model, cl cluster.Cluster, par config.Parallel, n int, widths []int, fineGrained bool) (float64, error) {
	mesh, err := cluster.NewMesh(cl, par)
	if err != nil {
		return 0, err
	}
	costs, err := perf.New(m, mesh)
	if err != nil {
		return 0, err
	}
	if widths != nil {
		if _, err := costs.WithSlicePartition(widths); err != nil {
			return 0, err
		}
	}
	opts := sched.SVPPOptions{
		P: par.PP, V: par.VP, S: par.SPP, N: n,
		Reschedule: true, Est: costs,
	}
	if fineGrained {
		opts.Split = true
		opts.FineGrainedW = costs.WPieces()
	}
	s, err := sched.SVPP(opts)
	if err != nil {
		return 0, err
	}
	res, err := sim.Run(sim.Options{
		Sched: s, Costs: costs, DynamicW: fineGrained, TailTime: costs.TailTime,
	})
	if err != nil {
		return 0, err
	}
	return res.IterTime, nil
}

// LongContext measures the §5 trade-off the paper discusses but does not
// plot: uniform slices with fine-grained weight-gradient filling (MEPipe's
// choice) versus TeraPipe-style non-uniform slices balanced by dynamic
// programming. At 4k context the attention imbalance is small and weight
// gradients absorb it; past ~128k tokens the attention share dominates and
// the balanced partition wins — "in this scenario, the non-uniform
// partitioning strategy would be more efficient".
//
// Memory budgets are intentionally not enforced here (128k-token samples
// exceed any 24 GB card regardless of slicing); the experiment isolates the
// compute-balance question, like the paper's discussion.
func LongContext() (*Report, error) {
	cl := cluster.RTX4090Cluster(8)
	r := &Report{
		ID:     "longctx",
		Title:  "uniform + fine-grained W vs non-uniform balanced slices (Llama-7B-shaped model, PP=8, SPP=16)",
		Header: []string{"context", "uniform+fgW", "non-uniform", "winner", "largest/smallest slice"},
	}
	par := config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 16, VP: 1}
	const n = 8
	for _, ctx := range []int{4096, 32768, 131072} {
		m := config.Llama7B()
		m.SeqLen = ctx
		uniform, err := longCtxVariant(m, cl, par, n, nil, true)
		if err != nil {
			return nil, err
		}
		// Balance slice processing times with the TeraPipe DP (§5),
		// boundaries on 128-token quanta.
		mesh, err := cluster.NewMesh(cl, par)
		if err != nil {
			return nil, err
		}
		costs, err := perf.New(m, mesh)
		if err != nil {
			return nil, err
		}
		widths, err := partition.Optimal(ctx, par.SPP, 128, costs.SliceCost())
		if err != nil {
			return nil, err
		}
		nonUniform, err := longCtxVariant(m, cl, par, n, widths, false)
		if err != nil {
			return nil, err
		}
		winner := "uniform+fgW"
		if nonUniform < uniform {
			winner = "non-uniform"
		}
		lo, hi := widths[0], widths[0]
		for _, w := range widths {
			if w < lo {
				lo = w
			}
			if w > hi {
				hi = w
			}
		}
		r.Add(fmt.Sprintf("%dk", ctx/1024),
			fmt.Sprintf("%.0f ms", uniform*1e3),
			fmt.Sprintf("%.0f ms", nonUniform*1e3),
			winner,
			fmt.Sprintf("%d / %d tokens", hi, lo))
	}
	r.Note("§5: fine-grained W absorbs the imbalance at 4k context; beyond ~128k the attention share dominates and balanced non-uniform slicing wins")
	return r, nil
}
