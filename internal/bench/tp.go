package bench

import (
	"fmt"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/strategy"
)

func init() {
	register("tp", "tensor parallelism on PCIe vs NVLink: why the paper excludes TP on RTX 4090s (§2.2, §7.1)", TensorParallel)
}

// TensorParallel evaluates 1F1B with growing tensor-parallel sizes on both
// clusters. The paper drops TP from the 4090 search because "it requires
// huge communication, and RTX 4090 GPUs are not equipped with
// high-bandwidth interconnect like NVLinks" — this experiment measures that
// judgement instead of assuming it: per-layer all-reduces drown PCIe while
// NVLink absorbs them.
func TensorParallel() (*Report, error) {
	m := config.Llama13B()
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}
	r := &Report{
		ID:     "tp",
		Title:  "DAPPLE iteration time vs tensor-parallel size, Llama 13B, GBS 64",
		Header: []string{"TP", "RTX 4090 (PCIe)", "A100 (NVLink)"},
	}
	for _, tp := range []int{1, 2, 4, 8} {
		row := []interface{}{tp}
		for _, c := range []cluster.Cluster{cluster.RTX4090Cluster(8), cluster.A100Cluster(4)} {
			pp := 8
			dp := c.GPUs() / pp / tp
			if dp < 1 {
				row = append(row, "-")
				continue
			}
			par := config.Parallel{PP: pp, DP: dp, CP: 1, SPP: 1, VP: 1, TP: tp}
			ev, err := strategy.Evaluate(strategy.DAPPLE, m, c, par, tr)
			if err != nil {
				return nil, err
			}
			if ev.OOM {
				row = append(row, "OOM")
				continue
			}
			row = append(row, fmt.Sprintf("%.0f ms", ev.IterTime*1e3))
		}
		r.Add(row...)
	}
	r.Note("PCIe pays two activation all-reduces per layer per direction; NVLink shrugs them off — the 4090 search space is right to exclude TP")
	r.Note("TP=1 on the 4090 OOMs because full-sequence 1F1B holds 8 micro-batches of activations (the paper's DAPPLE needed CP=2); TP>=2 shards them but the communication price dwarfs the saving")
	return r, nil
}
