package bench

import (
	"fmt"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/strategy"
)

func init() {
	register("table9", "A100 vs RTX 4090: iteration time, TFLOPS, cost-effectiveness", Table9)
}

// bestAcrossSystems returns the fastest feasible evaluation over all
// systems on the given cluster (the paper reports the *optimal* A100 time).
func bestAcrossSystems(m config.Model, cl cluster.Cluster, tr config.Training) (*strategy.Eval, error) {
	var best *strategy.Eval
	for _, sys := range strategy.Systems() {
		res, err := strategy.Search(sys, m, cl, tr, strategy.DefaultSpace())
		if err != nil && res == nil {
			continue
		}
		if b := res.Best(); b != nil && (best == nil || b.IterTime < best.IterTime) {
			best = b
		}
	}
	if best == nil {
		return nil, fmt.Errorf("bench: no feasible configuration for %s on %s", m.Name, cl.GPU.Name)
	}
	return best, nil
}

// Table9 regenerates Table 9: Llama 7B/13B/34B at global batch 128 on the
// 64× RTX 4090 cluster (8 servers) vs the 32× A100 cluster (4 servers),
// with achieved TFLOPS per GPU and the cost-effectiveness ratio.
func Table9() (*Report, error) {
	tr := config.Training{GlobalBatch: 128, MicroBatch: 1}
	cl4090 := cluster.RTX4090Cluster(8)
	clA100 := cluster.A100Cluster(4)
	r := &Report{
		ID:    "table9",
		Title: "A100-32 vs RTX 4090-64 (GBS 128)",
		Header: []string{"model", "A100 iter", "A100 TFLOPS/GPU", "4090 iter", "4090 TFLOPS/GPU",
			"4090 MFU", "cost-effectiveness"},
	}
	paper := map[string][2]string{
		"llama-7b":  {"3216 ms / 220.4 TF", "3171 ms / 111.7 TF"},
		"llama-13b": {"6131 ms / 221.4 TF", "5852 ms / 116.0 TF"},
		"llama-34b": {"16167 ms / 213.9 TF", "17043 ms / 101.5 TF"},
	}
	for _, m := range fig10Models() {
		a100, err := bestAcrossSystems(m, clA100, tr)
		if err != nil {
			return nil, err
		}
		// 4090 numbers come from the (cached) Fig 10 MEPipe search.
		res, err := fig10Search(m)
		if err != nil {
			return nil, err
		}
		g4090 := res[strategy.MEPipe].Best()
		if g4090 == nil {
			return nil, fmt.Errorf("bench: MEPipe infeasible for %s on 4090s", m.Name)
		}
		// Cost-effectiveness: tokens/second per dollar, 4090 relative to
		// A100 (price × time, inverted).
		ce := (a100.IterTime * clA100.Price()) / (g4090.IterTime * cl4090.Price())
		r.Add(m.Name,
			fmt.Sprintf("%.0f ms", a100.IterTime*1e3),
			fmt.Sprintf("%.1f", a100.TFLOPSPerGPU(m, tr, clA100.GPUs())),
			fmt.Sprintf("%.0f ms", g4090.IterTime*1e3),
			fmt.Sprintf("%.1f", g4090.TFLOPSPerGPU(m, tr, cl4090.GPUs())),
			fmt.Sprintf("%.1f%%", 100*g4090.MFU(m, tr, cl4090)),
			fmt.Sprintf("%.2fx", ce))
		r.Note("%s paper: A100 %s; 4090 %s", m.Name, paper[m.Name][0], paper[m.Name][1])
	}
	r.Note("paper headline: comparable iteration times, 4090 cluster ~2.5x more cost-effective (price ratio alone = 2.5x)")
	return r, nil
}
