package bench

import (
	"fmt"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/memplan"
	"mepipe/internal/obs"
	"mepipe/internal/perf"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

func init() {
	register("fig11_12", "fine-grained weight-gradient computation ablation (timelines of Figs 11-12)", Fig11_12)
	register("ablation", "design-choice ablations: rescheduling, W granularity, dynamic engine", Ablation)
}

// mepipeSetup builds the Fig 11/12 configuration: Llama 13B, GBS 64,
// MEPipe's Table 5 optimum (PP=8, SPP=4, VP=1, DP=8).
func mepipeSetup() (*perf.Costs, *memplan.Plan, int, int, error) {
	m := config.Llama13B()
	cl := cluster.RTX4090Cluster(8)
	par := config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1}
	mesh, err := cluster.NewMesh(cl, par)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	costs, err := perf.New(m, mesh)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	plan, err := memplan.New(m, mesh)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	f, err := memplan.ChooseF(par,
		costs.ActBytes(0, sched.Op{Kind: sched.F}),
		costs.GradBytes(0, sched.Op{Kind: sched.BAct}),
		plan.ActBudget[0])
	if err != nil {
		return nil, nil, 0, 0, err
	}
	n := 64 / par.DP
	return costs, plan, f, n, nil
}

// fig11Variant identifies one interpretation of "MEPipe w/o fine-grained
// weight gradient computation" plus the full system.
type fig11Variant int

const (
	// variantFused keeps weight gradients inside a fused backward — the
	// strictest reading of Fig 11's "compute the weight gradient right
	// after the corresponding backward passes".
	variantFused fig11Variant = iota
	// variantPromptW splits B but forces each W immediately after its
	// BAct (zero deferral) — the weakest reading.
	variantPromptW
	// variantFineGrained is the full §5 system: 7-GEMM decomposition
	// drained dynamically into stalls.
	variantFineGrained
)

// runVariant simulates one Fig 11/12 variant, tracing into sink if non-nil.
func runVariant(costs *perf.Costs, plan *memplan.Plan, f, n int, v fig11Variant, sink obs.Sink) (*sim.Result, error) {
	opts := sched.SVPPOptions{
		P: 8, V: 1, S: 4, N: n, F: f,
		Reschedule: true, Est: costs,
	}
	dynamic := false
	switch v {
	case variantFused:
		// fused B: nothing to configure
	case variantPromptW:
		opts.Split = true
		opts.WDeferCap = func(int) int { return 0 }
	case variantFineGrained:
		opts.Split = true
		opts.FineGrainedW = costs.WPieces()
		dynamic = true
	}
	s, err := sched.SVPP(opts)
	if err != nil {
		return nil, err
	}
	return sim.Run(sim.Options{
		Sched: s, Costs: costs, ActBudget: plan.ActBudget,
		DynamicW: dynamic, TailTime: costs.TailTime, Trace: sink,
	})
}

// Fig11_12 regenerates the Figures 11–12 comparison: MEPipe with and
// without fine-grained weight-gradient computation on Llama 13B at GBS 64.
// The paper's "w/o" variant is bracketed by two readings — a fused backward
// (upper bound) and a split-but-immediate W (lower bound); the paper's
// measured 9.4% improvement falls between them.
func Fig11_12() (*Report, error) {
	costs, plan, f, n, err := mepipeSetup()
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "fig11_12",
		Title:  "MEPipe w/ and w/o fine-grained weight gradients (Llama 13B, GBS 64, PP=8, SPP=4)",
		Header: []string{"variant", "iteration", "bubble", "peak act (GiB)"},
	}
	names := map[fig11Variant]string{
		variantFused:       "w/o: W fused into backward (Fig 11, strict)",
		variantPromptW:     "w/o: W split but immediate (Fig 11, weak)",
		variantFineGrained: "with fine-grained W (Fig 12)",
	}
	results := map[fig11Variant]*sim.Result{}
	for _, v := range []fig11Variant{variantFused, variantPromptW, variantFineGrained} {
		var rec *obs.Recorder
		var sink obs.Sink
		if v == variantFineGrained {
			rec = obs.NewRecorder()
			sink = rec
		}
		res, err := runVariant(costs, plan, f, n, v, sink)
		if err != nil {
			return nil, err
		}
		if rec != nil {
			// The full system's snapshot: drained W counts and budget
			// stalls quantify the §5 dynamic engine at work.
			r.Obs = rec.Trace().Snapshot()
		}
		results[v] = res
		r.Add(names[v], fmt.Sprintf("%.1f ms", res.IterTime*1e3),
			fmt.Sprintf("%.1f%%", 100*res.BubbleRatio), fmt.Sprintf("%.1f", float64(res.PeakAct)/(1<<30)))
	}
	with := results[variantFineGrained].IterTime
	hi := (results[variantFused].IterTime - with) / results[variantFused].IterTime
	lo := (results[variantPromptW].IterTime - with) / results[variantPromptW].IterTime
	r.Note("improvement: %.1f%%-%.1f%% depending on the baseline reading (paper: 9.4%%)", 100*lo, 100*hi)
	r.Note("render the timelines with: mepipe-sim -model 13b -gbs 64 -system mepipe -timeline")
	return r, nil
}

// Ablation quantifies the design choices DESIGN.md calls out.
func Ablation() (*Report, error) {
	costs, plan, f, n, err := mepipeSetup()
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "ablation",
		Title:  "MEPipe design ablations (Llama 13B, GBS 64, PP=8, SPP=4)",
		Header: []string{"variant", "iteration", "bubble"},
	}
	run := func(name string, opts sched.SVPPOptions, dynamic bool) error {
		opts.P, opts.V, opts.S, opts.N, opts.F = 8, 1, 4, n, f
		opts.Split, opts.Est = true, costs
		s, err := sched.SVPP(opts)
		if err != nil {
			return err
		}
		res, err := sim.Run(sim.Options{Sched: s, Costs: costs, ActBudget: plan.ActBudget, DynamicW: dynamic, TailTime: costs.TailTime})
		if err != nil {
			return err
		}
		r.Add(name, fmt.Sprintf("%.1f ms", res.IterTime*1e3), fmt.Sprintf("%.1f%%", 100*res.BubbleRatio))
		return nil
	}
	full := sched.SVPPOptions{Reschedule: true, FineGrainedW: costs.WPieces()}
	if err := run("full MEPipe (rescheduled, 7-piece W, dynamic)", full, true); err != nil {
		return nil, err
	}
	if err := run("no backward rescheduling", sched.SVPPOptions{FineGrainedW: costs.WPieces()}, true); err != nil {
		return nil, err
	}
	if err := run("whole-op W (no GEMM decomposition)", sched.SVPPOptions{Reschedule: true}, true); err != nil {
		return nil, err
	}
	if err := run("static W placement (generator gap-filling only)", sched.SVPPOptions{Reschedule: true, FineGrainedW: costs.WPieces()}, false); err != nil {
		return nil, err
	}
	if err := run("prompt W (deferral disabled)", sched.SVPPOptions{Reschedule: true, WDeferCap: func(int) int { return 0 }}, false); err != nil {
		return nil, err
	}
	// How close is the full system to order-free optimal? Compare against
	// the DAG/resource lower bound (no schedule can beat it).
	full2, err := sched.SVPP(sched.SVPPOptions{
		P: 8, V: 1, S: 4, N: n, F: f, Split: true, Reschedule: true,
		FineGrainedW: costs.WPieces(), Est: costs,
	})
	if err != nil {
		return nil, err
	}
	bound, err := sim.MakespanBound(full2, costs)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(sim.Options{Sched: full2, Costs: costs, ActBudget: plan.ActBudget, DynamicW: true})
	if err != nil {
		return nil, err
	}
	r.Note("order-free lower bound (critical path / busiest stage): %.1f ms — full MEPipe is within %.1f%% of schedule-optimal before the gradient-sync tail",
		bound*1e3, 100*(res.IterTime-bound)/bound)
	return r, nil
}
