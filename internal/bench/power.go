package bench

import (
	"fmt"

	"mepipe/internal/cluster"
)

func init() {
	register("power", "power draw and total cost of ownership: 4090 vs A100 clusters (§9)", Power)
}

// ElectricityUSDPerKWh is the industrial rate the paper quotes (§9,
// February 2025).
const ElectricityUSDPerKWh = 0.1

// Power regenerates the §9 operational-cost argument: the 4090 cluster
// draws more power for equivalent compute, but the A100 cluster's capital
// premium takes decades of electricity savings to recoup — the paper
// estimates roughly 24 years.
func Power() (*Report, error) {
	g4090 := cluster.RTX4090Cluster(8)
	a100 := cluster.A100Cluster(4)
	r := &Report{
		ID:     "power",
		Title:  "power and total cost of ownership (64x RTX 4090 vs 32x A100)",
		Header: []string{"cluster", "GPUs", "board power", "energy $/year (24/7)", "hardware price"},
	}
	row := func(name string, c cluster.Cluster) (kw float64) {
		kw = float64(c.GPUs()) * c.GPU.PowerWatts / 1e3
		perYear := kw * 24 * 365 * ElectricityUSDPerKWh
		r.Add(name, c.GPUs(), fmt.Sprintf("%.1f kW", kw),
			fmt.Sprintf("$%.0f", perYear), fmt.Sprintf("$%.0fk", c.Price()/1e3))
		return kw
	}
	kw4090 := row("RTX 4090", g4090)
	kwA100 := row("A100", a100)

	priceGap := a100.Price() - g4090.Price()
	powerGapKW := kw4090 - kwA100
	perYearGap := powerGapKW * 24 * 365 * ElectricityUSDPerKWh
	years := priceGap / perYearGap
	r.Note("the 4090 cluster draws %.1f kW more; at $%.2f/kWh that is $%.0f/year extra", powerGapKW, ElectricityUSDPerKWh, perYearGap)
	r.Note("cost parity for the A100 cluster after %.0f years (paper: ~24 years)", years)
	return r, nil
}

// YearsToParity exposes the §9 headline number for tests.
func YearsToParity() float64 {
	g4090 := cluster.RTX4090Cluster(8)
	a100 := cluster.A100Cluster(4)
	kwGap := (float64(g4090.GPUs())*g4090.GPU.PowerWatts - float64(a100.GPUs())*a100.GPU.PowerWatts) / 1e3
	perYear := kwGap * 24 * 365 * ElectricityUSDPerKWh
	return (a100.Price() - g4090.Price()) / perYear
}
