package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// cell parses a numeric table cell ("6308" or "3520.3 ms").
func cell(t *testing.T, s string) float64 {
	t.Helper()
	f := strings.Fields(s)[0]
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSuffix(f, "%"), "x"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func row(t *testing.T, r *Report, name string) []string {
	t.Helper()
	for _, row := range r.Rows {
		if strings.HasPrefix(row[0], name) {
			return row
		}
	}
	t.Fatalf("%s: no row %q", r.ID, name)
	return nil
}

func TestFig1Shape(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline reductions: >70% at s=4, >80% at s=8.
	if v := cell(t, row(t, r, "MEPipe (s=4)")[3]); v > -70 {
		t.Errorf("s=4 reduction %v%%, want <= -70%%", v)
	}
	if v := cell(t, row(t, r, "MEPipe (s=8)")[3]); v > -80 {
		t.Errorf("s=8 reduction %v%%, want <= -80%%", v)
	}
	// MEPipe has both the lowest bubble and the lowest memory.
	me := cell(t, row(t, r, "MEPipe (s=8)")[1])
	for _, base := range []string{"DAPPLE", "VPP", "Hanayo", "TeraPipe"} {
		if b := cell(t, row(t, r, base)[1]); b <= me {
			t.Errorf("%s bubble %v%% not above MEPipe's %v%%", base, b, me)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid searches are slow")
	}
	r, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// MEPipe fastest at every batch size; speedup within a band of the
	// paper's 1.86/1.49/1.36.
	bands := map[int][2]float64{1: {1.3, 2.2}, 2: {1.25, 1.8}, 3: {1.15, 1.6}}
	me := row(t, r, "MEPipe")
	for col := 1; col <= 3; col++ {
		mine := cell(t, me[col])
		best := 0.0
		for _, base := range []string{"DAPPLE", "VPP", "ZB", "ZBV"} {
			c := row(t, r, base)[col]
			if c == "OOM" {
				continue
			}
			v := cell(t, c)
			if best == 0 || v < best {
				best = v
			}
		}
		if mine >= best {
			t.Errorf("col %d: MEPipe %v not fastest (best baseline %v)", col, mine, best)
		}
		sp := best / mine
		if sp < bands[col][0] || sp > bands[col][1] {
			t.Errorf("col %d: speedup %.2fx outside band %v (paper: 1.86/1.49/1.36)", col, sp, bands[col])
		}
	}
}

func TestTable5Configs(t *testing.T) {
	if testing.Short() {
		t.Skip("grid searches are slow")
	}
	r, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 5: MEPipe settles on (8,4,1,x) at every batch size and
	// DAPPLE on (8,2,1,x).
	me := row(t, r, "MEPipe")
	da := row(t, r, "DAPPLE")
	for col := 1; col <= 3; col++ {
		if me[col] != "(8,4,1,x)" {
			t.Errorf("MEPipe col %d = %s, paper reports (8,4,1,x)", col, me[col])
		}
		if da[col] != "(8,2,1,x)" {
			t.Errorf("DAPPLE col %d = %s, paper reports (8,2,1,x)", col, da[col])
		}
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for i, rw := range r.Rows {
		spp := cell(t, rw[2])
		cp := cell(t, rw[4])
		if i == 0 {
			continue
		}
		if cp >= spp {
			t.Errorf("size %s: CP relative %v%% not below SPP %v%% (Fig 9)", rw[0], cp, spp)
		}
	}
	// SPP=8 degradation near the paper's 12.6%.
	last := r.Rows[len(r.Rows)-1]
	if d := 100 - cell(t, last[2]); d < 8 || d > 20 {
		t.Errorf("SPP=8 degradation %v%%, want near 12.6%%", d)
	}
}

func TestTable6Shape(t *testing.T) {
	r, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][4] != "OOM" {
		t.Errorf("PP=2 should OOM, got %s", r.Rows[0][4])
	}
	pp4 := cell(t, r.Rows[1][4])
	pp8 := cell(t, r.Rows[2][4])
	if pp8 >= pp4 {
		t.Errorf("PP=8 (%v ms) should beat PP=4 (%v ms)", pp8, pp4)
	}
}

func TestTable7Shape(t *testing.T) {
	r, err := Table7()
	if err != nil {
		t.Fatal(err)
	}
	cp1 := cell(t, r.Rows[0][4])
	cp2 := cell(t, r.Rows[1][4])
	cp4 := cell(t, r.Rows[2][4])
	if !(cp2 < cp1 && cp2 < cp4) {
		t.Errorf("CP=2 (%v) should be the sweet spot (CP1 %v, CP4 %v)", cp2, cp1, cp4)
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid searches are slow")
	}
	r, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	me := row(t, r, "MEPipe")
	for col := 1; col <= 3; col++ {
		if me[col] == "OOM" {
			t.Fatalf("MEPipe OOM in col %d", col)
		}
		mine := cell(t, me[col])
		for _, base := range []string{"DAPPLE", "VPP", "ZB", "ZBV"} {
			c := row(t, r, base)[col]
			if c == "OOM" {
				continue
			}
			if cell(t, c) <= mine {
				t.Errorf("col %d: %s (%s) not slower than MEPipe (%v)", col, base, c, mine)
			}
		}
	}
	// 34B defeats the zero-bubble baselines (paper Table 8 dashes).
	if row(t, r, "ZB")[3] != "OOM" || row(t, r, "ZBV")[3] != "OOM" {
		t.Error("ZB/ZBV should OOM on 34B")
	}
	// Absolute anchors within 25% of the paper's Table 9 values.
	anchors := map[int]float64{1: 3171, 2: 5852, 3: 17043}
	for col, want := range anchors {
		got := cell(t, me[col])
		if got < want*0.75 || got > want*1.25 {
			t.Errorf("col %d: MEPipe %v ms vs paper %v ms (off by more than 25%%)", col, got, want)
		}
	}
}

func TestTable9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid searches are slow")
	}
	r, err := Table9()
	if err != nil {
		t.Fatal(err)
	}
	for _, rw := range r.Rows {
		a100 := cell(t, rw[1])
		g4090 := cell(t, rw[3])
		// §7.6: comparable iteration times between 64x4090 and 32xA100.
		if ratio := g4090 / a100; ratio < 0.75 || ratio > 1.4 {
			t.Errorf("%s: 4090/A100 time ratio %.2f outside the 'comparable' band", rw[0], ratio)
		}
		if ce := cell(t, rw[6]); ce < 1.7 || ce > 3.0 {
			t.Errorf("%s: cost-effectiveness %.2fx, paper reports ~2.5x", rw[0], ce)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	r, err := Fig11_12()
	if err != nil {
		t.Fatal(err)
	}
	fused := cell(t, row(t, r, "w/o: W fused")[1])
	prompt := cell(t, row(t, r, "w/o: W split")[1])
	fine := cell(t, row(t, r, "with fine-grained")[1])
	if !(fine < prompt && prompt < fused) {
		t.Errorf("expected fine (%v) < prompt (%v) < fused (%v)", fine, prompt, fused)
	}
	// The paper's 9.4% improvement must fall inside the two readings.
	lo := (prompt - fine) / prompt * 100
	hi := (fused - fine) / fused * 100
	if lo > 9.4 || hi < 9.4 {
		t.Errorf("paper's 9.4%% outside the measured [%.1f%%, %.1f%%] band", lo, hi)
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// f shrinks top to bottom: memory falls, makespan (weakly) grows, and
	// rescheduling never hurts.
	var prevMem, prevSpan float64
	for i, rw := range r.Rows {
		mem := cell(t, strings.Fields(rw[1])[2]) // "8/16 = 0.500 A"
		base := cell(t, rw[2])
		resched := cell(t, rw[3])
		if resched > base {
			t.Errorf("row %d: rescheduling worsened makespan", i)
		}
		if i > 0 {
			if mem >= prevMem {
				t.Errorf("row %d: memory did not shrink", i)
			}
			if resched+1e-9 < prevSpan {
				t.Errorf("row %d: makespan improved while shrinking memory", i)
			}
		}
		prevMem, prevSpan = mem, resched
	}
}

func TestAblationShape(t *testing.T) {
	r, err := Ablation()
	if err != nil {
		t.Fatal(err)
	}
	full := cell(t, row(t, r, "full MEPipe")[1])
	for _, variant := range []string{"whole-op W", "prompt W"} {
		if v := cell(t, row(t, r, variant)[1]); v < full {
			t.Errorf("%s (%v ms) should not beat the full system (%v ms)", variant, v, full)
		}
	}
}

func TestRegistryAndRendering(t *testing.T) {
	exps := Experiments()
	if len(exps) < 10 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if _, ok := ByID(e.ID); !ok {
			t.Fatalf("ByID(%s) failed", e.ID)
		}
	}
	if _, ok := ByID("nonexistent"); ok {
		t.Error("ByID accepted an unknown id")
	}
	// Rendering round-trip on a cheap report.
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig1") || !strings.Contains(out, "MEPipe") {
		t.Errorf("rendered report missing content:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	r := &Report{
		ID: "x", Title: "t",
		Header: []string{"a", "b"},
	}
	r.Add("plain", `with "quotes", comma`)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"with \"\"quotes\"\", comma\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestWriteHTML(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHTML(&buf, []*Report{r}, map[string]string{"fig1": `<svg xmlns="x"></svg>`}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"<!DOCTYPE html", "fig1", "MEPipe", "<svg", "</html>"} {
		if !strings.Contains(out, frag) {
			t.Errorf("HTML missing %q", frag)
		}
	}
	// Table cells must be escaped.
	evil := &Report{ID: "x", Title: "<script>alert(1)</script>", Header: []string{"h"}}
	evil.Add("<b>cell</b>")
	buf.Reset()
	if err := WriteHTML(&buf, []*Report{evil}, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>alert") || strings.Contains(buf.String(), "<b>cell</b>") {
		t.Error("HTML output not escaped")
	}
	// Non-SVG payloads in the svg map are rejected.
	if err := WriteHTML(&buf, []*Report{r}, map[string]string{"fig1": "<div>not svg</div>"}); err == nil {
		t.Error("non-SVG embed accepted")
	}
}

// TestEveryExperimentRuns is the catch-all: every registered experiment
// must produce a well-formed report (slow search-based ones are covered by
// their own tests and skipped under -short via the registry walk).
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment including the grid searches")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if r.ID != e.ID {
				t.Errorf("report id %q != experiment id %q", r.ID, e.ID)
			}
			if len(r.Header) == 0 || len(r.Rows) == 0 {
				t.Error("empty report")
			}
			for i, row := range r.Rows {
				if len(row) != len(r.Header) {
					t.Errorf("row %d has %d cells, header has %d", i, len(row), len(r.Header))
				}
			}
		})
	}
}
