package verify

import (
	"fmt"

	"mepipe/internal/errs"
	"mepipe/internal/memplan"
	"mepipe/internal/sched"
)

// Budget bounds the static memory sweep. ActBudget[k] is stage k's cap;
// FamilyBytes and GradBytes give the per-op footprints charged by the
// sweep (the same quantities sim.Costs reports). Nil footprints select
// unit slot counting: one slot per live family, no gradient retention —
// the right model for proving schedule-shape bounds like "DAPPLE retains
// at most p−k micro-batches on stage k".
type Budget struct {
	ActBudget   []int64
	FamilyBytes func(stage int, f sched.Op) int64
	GradBytes   func(stage int, b sched.Op) int64
}

// SlotBudget is a unit-slot Budget: stage k may retain at most
// maxFamilies[k] concurrently live activation families.
func SlotBudget(maxFamilies []int) *Budget {
	caps := make([]int64, len(maxFamilies))
	for i, m := range maxFamilies {
		caps[i] = int64(m)
	}
	return &Budget{ActBudget: caps}
}

// Footprints is the memory slice of the simulator's cost model
// (sim.Costs satisfies it): retained activation bytes per completed
// forward, and extra retention between a split backward and its weight
// gradients.
type Footprints interface {
	ActBytes(stage int, f sched.Op) int64
	GradBytes(stage int, b sched.Op) int64
}

// PlanBudget derives a byte-accurate Budget from a memory plan (§4.5)
// and a cost model's footprints: certifying against it proves the
// schedule's static retention fits each stage's activation budget.
func PlanBudget(plan *memplan.Plan, fp Footprints) *Budget {
	return &Budget{
		ActBudget:   plan.ActBudget,
		FamilyBytes: fp.ActBytes,
		GradBytes:   fp.GradBytes,
	}
}

// BudgetError is the memory-safety counterexample: the first op at which
// a stage's swept retention exceeds its budget, with what was live.
type BudgetError struct {
	Schedule string
	Stage    int
	// OpIndex is the offending op's position in the stage's list.
	OpIndex int
	Op      sched.Op
	// Live is the retention the op's allocation would reach; Budget is
	// the stage's cap (both in the Budget's units — bytes, or family
	// slots for unit budgets). Families counts the live families at the
	// overflow, including the op's own.
	Live, Budget int64
	Families     int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("verify: %s stage %d: retention exceeds budget at op %d (%v): %d live families, %d > budget %d",
		e.Schedule, e.Stage, e.OpIndex, e.Op, e.Families, e.Live, e.Budget)
}

func (e *BudgetError) Unwrap() error { return errs.ErrUncertified }

// sweep walks each stage's op list in program order, replaying the
// simulator's retention rules, and records peak live families (always)
// and peak bytes under b's footprints (when b is non-nil). It fails the
// moment a stage's retention exceeds its budget.
func sweep(s *sched.Schedule, b *Budget, cert *Certificate) error {
	famBytes := func(stage int, op sched.Op) int64 { return 1 }
	gradBytes := func(stage int, op sched.Op) int64 { return 0 }
	if b != nil {
		if b.FamilyBytes != nil {
			famBytes = b.FamilyBytes
		}
		if b.GradBytes != nil {
			gradBytes = b.GradBytes
		}
		if b.ActBudget != nil && len(b.ActBudget) != s.P {
			return &ShapeError{Schedule: s.String(),
				Detail: fmt.Sprintf("budget has %d stage entries, want %d", len(b.ActBudget), s.P)}
		}
	}
	cert.PeakFamilies = make([]int, s.P)
	if b != nil {
		cert.PeakBytes = make([]int64, s.P)
	}
	for k, ops := range s.Stages {
		var live int64
		fams := map[sched.Op]int64{} // family key -> retained bytes
		pieces := map[sched.Op]int{} // family key -> executed WPieces
		peakFams, peakBytes := 0, int64(0)
		for i, op := range ops {
			key := op.Key()
			switch op.Kind {
			case sched.F:
				add := famBytes(k, op)
				fams[key] += add
				live += add
			case sched.B:
				live -= fams[key]
				delete(fams, key)
			case sched.BAct:
				add := gradBytes(k, op)
				fams[key] += add
				live += add
			case sched.W:
				live -= fams[key]
				delete(fams, key)
			case sched.WPiece:
				pieces[key]++
				if pieces[key] == s.WPieces {
					live -= fams[key]
					delete(fams, key)
					delete(pieces, key)
				}
			}
			if len(fams) > peakFams {
				peakFams = len(fams)
			}
			if live > peakBytes {
				peakBytes = live
			}
			if b != nil && b.ActBudget != nil && live > b.ActBudget[k] {
				return &BudgetError{
					Schedule: s.String(), Stage: k, OpIndex: i, Op: op,
					Live: live, Budget: b.ActBudget[k], Families: len(fams),
				}
			}
		}
		cert.PeakFamilies[k] = peakFams
		if b != nil {
			cert.PeakBytes[k] = peakBytes
		}
	}
	return nil
}
