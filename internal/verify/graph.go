package verify

import (
	"sync"

	"mepipe/internal/sched"
)

// The certification graph: one node per (stage, op), edges from per-stage
// program order and from the dependency rules of sched.Deps. A schedule
// is deadlock-free iff this graph is acyclic (see the package comment for
// why bounded channels add no further condition).

type graph struct {
	s     *sched.Schedule
	nodes []Node
	index map[Node]int
	// adj[i] lists the successors of node i; kind[i][j] labels the edge
	// to adj[i][j] as "order" or "dep".
	adj  [][]int32
	kind [][]string
}

func buildGraph(s *sched.Schedule) (*graph, error) {
	g := &graph{s: s, index: make(map[Node]int)}
	id := func(k int, op sched.Op) int {
		n := Node{k, op}
		if i, ok := g.index[n]; ok {
			return i
		}
		g.index[n] = len(g.nodes)
		g.nodes = append(g.nodes, n)
		return len(g.nodes) - 1
	}
	for k, ops := range s.Stages {
		for _, op := range ops {
			id(k, op)
		}
	}
	g.adj = make([][]int32, len(g.nodes))
	g.kind = make([][]string, len(g.nodes))
	addEdge := func(from, to int, kind string) {
		g.adj[from] = append(g.adj[from], int32(to))
		g.kind[from] = append(g.kind[from], kind)
	}
	var deps []sched.Dep
	for k, ops := range s.Stages {
		for idx, op := range ops {
			to := id(k, op)
			if idx > 0 {
				addEdge(id(k, ops[idx-1]), to, "order")
			}
			deps = s.Deps(deps[:0], k, op)
			for _, d := range deps {
				from, ok := g.index[Node{d.Stage, d.Op}]
				if !ok {
					return nil, &MissingDepError{Schedule: s.String(), Node: Node{k, op}, Dep: d}
				}
				addEdge(from, to, "dep")
			}
		}
	}
	return g, nil
}

// edges returns total and cross-stage dependency-edge counts.
func (g *graph) edges() (total, cross int) {
	for i, succs := range g.adj {
		total += len(succs)
		for j, t := range succs {
			if g.kind[i][j] == "dep" && g.nodes[i].Stage != g.nodes[int(t)].Stage {
				cross++
			}
		}
	}
	return total, cross
}

// residual runs Kahn's algorithm and returns the nodes left on cycles
// (empty when the graph is acyclic).
func (g *graph) residual() []int {
	indeg := make([]int32, len(g.nodes))
	for _, succs := range g.adj {
		for _, t := range succs {
			indeg[t]++
		}
	}
	queue := make([]int, 0, len(g.nodes))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for _, t := range g.adj[n] {
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, int(t))
			}
		}
	}
	if done == len(g.nodes) {
		return nil
	}
	var res []int
	for i, d := range indeg {
		if d > 0 {
			res = append(res, i)
		}
	}
	return res
}

// minimalCycle extracts a shortest dependency cycle through the residual
// subgraph: every residual node lies on at least one cycle, so a BFS from
// each residual source back to itself finds one; the shortest over all
// sources is the minimal counterexample. To bound work on huge residuals
// the search stops early once a 2-cycle is found and caps the number of
// BFS sources.
func (g *graph) minimalCycle(residual []int) ([]Node, []string) {
	inRes := make([]bool, len(g.nodes))
	for _, i := range residual {
		inRes[i] = true
	}
	const maxSources = 256
	sources := residual
	if len(sources) > maxSources {
		sources = sources[:maxSources]
	}
	var best []int
	for _, src := range sources {
		cyc := g.bfsCycle(src, inRes, len(best))
		if cyc != nil && (best == nil || len(cyc) < len(best)) {
			best = cyc
			if len(best) == 2 {
				break
			}
		}
	}
	if best == nil {
		// Unreachable: residual nodes always close a cycle. Fall back to
		// reporting the first residual node against itself.
		best = []int{residual[0]}
	}
	nodes := make([]Node, len(best))
	kinds := make([]string, len(best))
	for i, n := range best {
		nodes[i] = g.nodes[n]
		next := best[(i+1)%len(best)]
		kinds[i] = g.edgeKind(n, next)
	}
	return nodes, kinds
}

// bfsCycle finds a shortest path src -> ... -> src within the residual
// subgraph, returned as the node sequence of the cycle (src first).
// Returns nil if no cycle through src exists or it would not beat bound
// (0 = unbounded).
func (g *graph) bfsCycle(src int, inRes []bool, bound int) []int {
	parent := make(map[int]int, 64)
	queue := []int{src}
	depth := map[int]int{src: 0}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if bound > 0 && depth[n]+1 >= bound {
			continue // cannot beat the best cycle found so far
		}
		for _, t32 := range g.adj[n] {
			t := int(t32)
			if !inRes[t] {
				continue
			}
			if t == src {
				// Close the cycle: walk parents back from n to src.
				var rev []int
				for cur := n; cur != src; cur = parent[cur] {
					rev = append(rev, cur)
				}
				cyc := []int{src}
				for i := len(rev) - 1; i >= 0; i-- {
					cyc = append(cyc, rev[i])
				}
				return cyc
			}
			if _, seen := depth[t]; !seen {
				depth[t] = depth[n] + 1
				parent[t] = n
				queue = append(queue, t)
			}
		}
	}
	return nil
}

// edgeKind returns the label of the from -> to edge ("dep" wins when both
// a program-order and a data edge connect the pair).
func (g *graph) edgeKind(from, to int) string {
	kind := "order"
	for j, t := range g.adj[from] {
		if int(t) == to {
			if g.kind[from][j] == "dep" {
				return "dep"
			}
			kind = g.kind[from][j]
		}
	}
	return kind
}

// checkAcyclic proves deadlock-freedom, filling the certificate's graph
// statistics, or returns the minimal counterexample cycle. The proof runs
// on the dense arithmetic op index (no hashing, no per-node allocation);
// only when a cycle exists — the rare failure path — is the labelled
// map-based graph rebuilt to extract the same minimal counterexample the
// original implementation reported.
func checkAcyclic(s *sched.Schedule, cert *Certificate) error {
	ok, handled, err := kahnDense(s, cert)
	if err != nil {
		return err
	}
	if handled && ok {
		return nil
	}
	g, err := buildGraph(s)
	if err != nil {
		return err
	}
	if !handled {
		cert.Nodes = len(g.nodes)
		cert.Edges, cert.CrossEdges = g.edges()
		if g.residual() == nil {
			return nil
		}
	}
	res := g.residual()
	nodes, kinds := g.minimalCycle(res)
	return &CycleError{Schedule: s.String(), Cycle: nodes, Kind: kinds}
}

// kahnScratch recycles the dense certification pass's working arrays:
// sweep workers certify dozens of schedules back to back, and the arrays
// are shape-sized, so pooling removes certification's entire allocation
// profile on the hot path.
type kahnScratch struct {
	seen  []bool
	next  []int32
	indeg []int32
	queue []int32
}

var kahnPool = sync.Pool{New: func() any { return new(kahnScratch) }}

// kgrow returns s resized to n elements, reusing capacity when it can.
// Contents are NOT cleared — callers overwrite every element they read.
func kgrow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// kahnDense runs Kahn's algorithm over the dense op index, filling the
// certificate's node/edge statistics. The edge universe is never
// materialized: in-degrees come from the schedule's cached dependency
// table row widths, successors are walked through the table's dependents
// CSR plus a per-stage program-order chain, and the edge statistics are
// cached on the table itself. It reports ok=false when the graph has a
// cycle (counterexample extraction is the caller's job) and handled=false
// on tables the fast path does not model — incomplete op universes or
// out-of-shape deps, both only reachable with AssumeComplete or
// hand-built placements — which fall back to the labelled map-based
// graph.
func kahnDense(s *sched.Schedule, cert *Certificate) (ok, handled bool, err error) {
	t := s.DepTable()
	x := t.Ix
	total := x.Total()
	n := 0
	nonEmpty := 0
	for k := range s.Stages {
		if len(s.Stages[k]) > 0 {
			nonEmpty++
		}
		n += len(s.Stages[k])
	}
	if n != total || t.Neg > 0 {
		return false, false, nil
	}
	sc := kahnPool.Get().(*kahnScratch)
	defer kahnPool.Put(sc)
	sc.seen = kgrow(sc.seen, total)
	for i := range sc.seen {
		sc.seen[i] = false
	}
	sc.next = kgrow(sc.next, total)
	sc.indeg = kgrow(sc.indeg, total)
	// One pass over the stages pins the op universe (every op indexes,
	// no duplicates — with n == total that makes coverage exact), seeds
	// in-degrees from the table rows, and chains program order.
	for k, ops := range s.Stages {
		prev := int32(-1)
		for idx, op := range ops {
			id := x.ID(k, op)
			if id < 0 || sc.seen[id] {
				return false, false, nil
			}
			sc.seen[id] = true
			deg := t.Off[id+1] - t.Off[id]
			if idx > 0 {
				deg++
				sc.next[prev] = id
			}
			sc.indeg[id] = deg
			prev = id
		}
		if prev >= 0 {
			sc.next[prev] = -1
		}
	}
	cert.Nodes = total
	cert.Edges = len(t.ID) + n - nonEmpty
	cert.CrossEdges = t.Cross
	sc.queue = sc.queue[:0]
	for id := 0; id < total; id++ {
		if sc.indeg[id] == 0 {
			sc.queue = append(sc.queue, int32(id))
		}
	}
	done := 0
	dec := func(j int32) {
		sc.indeg[j]--
		if sc.indeg[j] == 0 {
			sc.queue = append(sc.queue, j)
		}
	}
	for len(sc.queue) > 0 {
		u := sc.queue[len(sc.queue)-1]
		sc.queue = sc.queue[:len(sc.queue)-1]
		done++
		for _, j := range t.OutID[t.OutOff[u]:t.OutOff[u+1]] {
			dec(j)
		}
		if j := sc.next[u]; j >= 0 {
			dec(j)
		}
	}
	return done == total, true, nil
}
