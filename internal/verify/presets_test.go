package verify

import (
	"errors"
	"testing"

	"mepipe/internal/errs"
	"mepipe/internal/sched"
)

// TestPresets certifies the three preset families the paper's memory
// argument covers — SVPP (fused), MEPipe (split backward + fine-grained
// W), and interleaved VPP — across P ∈ {2, 4, 8}, against their analytic
// per-stage retention bounds: f−k for the slice-level schedules (§4.2's
// memory knob) and v·p+p−1−k for VPP (Table 3's memory row). It also
// proves the bounds tight: shrinking stage 0's budget by one slot must
// produce a BudgetError naming stage 0.
func TestPresets(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		v, s, n := 2, 4, 2*p
		f := sched.DefaultF(p, v, s)

		svppBound := make([]int, p)
		vppBound := make([]int, p)
		for k := 0; k < p; k++ {
			svppBound[k] = f - k
			vppBound[k] = v*p + p - 1 - k
		}

		type preset struct {
			name  string
			build func() (*sched.Schedule, error)
			bound []int
		}
		presets := []preset{
			{"svpp", func() (*sched.Schedule, error) {
				return sched.SVPP(sched.SVPPOptions{P: p, V: v, S: s, N: n, Reschedule: true})
			}, svppBound},
			{"mepipe-split", func() (*sched.Schedule, error) {
				return sched.MEPipe(p, v, s, n, 0, 3, nil)
			}, svppBound},
			{"vpp", func() (*sched.Schedule, error) {
				return sched.VPP(p, v, n, nil)
			}, vppBound},
		}
		for _, pr := range presets {
			sc, err := pr.build()
			if err != nil {
				t.Fatalf("p=%d %s: %v", p, pr.name, err)
			}
			cert, err := Certify(sc, Options{Budget: SlotBudget(pr.bound)})
			if err != nil {
				t.Fatalf("p=%d %s: certification failed: %v", p, pr.name, err)
			}
			for k, peak := range cert.PeakFamilies {
				if peak > pr.bound[k] {
					t.Errorf("p=%d %s stage %d: peak %d exceeds analytic bound %d", p, pr.name, k, peak, pr.bound[k])
				}
			}

			// Tightness: one slot less on stage 0 must fail with an
			// actionable counterexample.
			tight := append([]int(nil), pr.bound...)
			tight[0]--
			_, err = Certify(sc, Options{Budget: SlotBudget(tight)})
			if err == nil {
				t.Fatalf("p=%d %s: certified below the analytic bound", p, pr.name)
			}
			var be *BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("p=%d %s: want *BudgetError, got %T (%v)", p, pr.name, err, err)
			}
			if be.Stage != 0 {
				t.Errorf("p=%d %s: overflow on stage %d, want 0", p, pr.name, be.Stage)
			}
			if !errors.Is(err, errs.ErrUncertified) {
				t.Errorf("p=%d %s: budget error does not wrap ErrUncertified", p, pr.name)
			}
		}
	}
}

// TestPresetsBaselines certifies the remaining generator presets
// structurally (no budget): GPipe, DAPPLE, TeraPipe, ZB-1P, ZBV, Hanayo.
func TestPresetsBaselines(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		n := 2 * p
		builds := map[string]func() (*sched.Schedule, error){
			"gpipe":    func() (*sched.Schedule, error) { return sched.GPipe(p, n, nil) },
			"dapple":   func() (*sched.Schedule, error) { return sched.DAPPLE(p, n, nil) },
			"terapipe": func() (*sched.Schedule, error) { return sched.TeraPipe(p, 4, n, nil) },
			"zb1p":     func() (*sched.Schedule, error) { return sched.ZB1P(p, n, nil) },
			"zbv":      func() (*sched.Schedule, error) { return sched.ZBV(p, n, nil) },
			"hanayo":   func() (*sched.Schedule, error) { return sched.Hanayo(p, n, nil) },
		}
		for name, build := range builds {
			sc, err := build()
			if err != nil {
				t.Fatalf("p=%d %s: %v", p, name, err)
			}
			cert, err := Certify(sc, Options{})
			if err != nil {
				t.Fatalf("p=%d %s: certification failed: %v", p, name, err)
			}
			if cert.Nodes == 0 || cert.Edges == 0 {
				t.Errorf("p=%d %s: empty certificate %v", p, name, cert)
			}
			if p > 1 && cert.CrossEdges == 0 {
				t.Errorf("p=%d %s: no cross-stage edges in a %d-stage schedule", p, name, p)
			}
		}
	}
}

// TestDAPPLESlots proves DAPPLE's textbook memory property statically:
// stage k retains at most p−k micro-batches.
func TestDAPPLESlots(t *testing.T) {
	p, n := 4, 8
	s, err := sched.DAPPLE(p, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	bound := make([]int, p)
	for k := range bound {
		bound[k] = p - k
	}
	cert, err := Certify(s, Options{Budget: SlotBudget(bound)})
	if err != nil {
		t.Fatalf("DAPPLE does not fit its 1F1B bound: %v", err)
	}
	for k, peak := range cert.PeakFamilies {
		if peak != p-k {
			t.Errorf("stage %d: peak %d, want exactly %d", k, peak, p-k)
		}
	}
}
