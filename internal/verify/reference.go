package verify

// The frozen pre-sweep certifier, kept as the tree stood before the
// streaming sweep engine landed: completeness via a per-stage op map and
// acyclicity via the labelled map-based graph (buildGraph), with no dense
// fast path. strategy.SearchReference certifies through CertifyReference
// so that mepipe-bench's reported speedup compares the sweep engine
// against the code it actually replaced, and so the equivalence tests pin
// the dense certifier against an independent implementation.
//
// buildGraph, residual, and minimalCycle are shared with the optimized
// path's diagnostic fallback — they ARE the pre-sweep implementations,
// unchanged; only the acyclicity fast path (kahnDense) is new.
//
// Nothing here is reachable from production paths; do not "optimize" this
// file — its value is that it does not change.

import (
	"fmt"

	"mepipe/internal/sched"
)

// CertifyReference is the frozen pre-sweep Certify: identical guarantees,
// identical error types, original map-based proofs.
func CertifyReference(s *sched.Schedule, opts Options) (*Certificate, error) {
	if s == nil {
		return nil, &ShapeError{Schedule: "<nil>", Detail: "no schedule"}
	}
	if s.P <= 0 || s.V <= 0 || s.S <= 0 || s.N <= 0 {
		return nil, &ShapeError{Schedule: s.String(), Detail: "non-positive shape"}
	}
	if len(s.Stages) != s.P {
		return nil, &ShapeError{Schedule: s.String(),
			Detail: fmt.Sprintf("%d stage lists, want %d", len(s.Stages), s.P)}
	}
	if s.Place == nil {
		return nil, &ShapeError{Schedule: s.String(), Detail: "no chunk placement"}
	}
	if !opts.AssumeComplete {
		if err := refCheckComplete(s); err != nil {
			return nil, err
		}
	}
	cert := &Certificate{Schedule: s.String()}
	if err := refCheckAcyclic(s, cert); err != nil {
		return nil, err
	}
	if err := sweep(s, opts.Budget, cert); err != nil {
		return nil, err
	}
	return cert, nil
}

// refCheckComplete is the frozen map-based completeness pass.
func refCheckComplete(s *sched.Schedule) error {
	for k, ops := range s.Stages {
		seen := make(map[sched.Op]bool, len(ops))
		for _, op := range ops {
			if op.Micro < 0 || op.Micro >= s.N || op.Slice < 0 || op.Slice >= s.S ||
				op.Chunk < 0 || op.Chunk >= s.V || op.Piece < 0 {
				return &ShapeError{Schedule: s.String(),
					Detail: fmt.Sprintf("stage %d: op %v out of range", k, op)}
			}
			if bad := kindMismatch(s, op); bad != "" {
				return &ShapeError{Schedule: s.String(),
					Detail: fmt.Sprintf("stage %d: op %v %s", k, op, bad)}
			}
			if seen[op] {
				return &ShapeError{Schedule: s.String(),
					Detail: fmt.Sprintf("stage %d: duplicate op %v", k, op)}
			}
			seen[op] = true
		}
		for m := 0; m < s.N; m++ {
			for i := 0; i < s.S; i++ {
				for j := 0; j < s.V; j++ {
					for _, op := range familyOps(s, m, i, j) {
						if !seen[op] {
							return &IncompleteError{Schedule: s.String(), Stage: k, Missing: op}
						}
					}
				}
			}
		}
	}
	return nil
}

// refCheckAcyclic is the frozen graph-based acyclicity pass: build the
// labelled map graph, fill the certificate's statistics from it, and
// extract the minimal counterexample on failure.
func refCheckAcyclic(s *sched.Schedule, cert *Certificate) error {
	g, err := buildGraph(s)
	if err != nil {
		return err
	}
	cert.Nodes = len(g.nodes)
	cert.Edges, cert.CrossEdges = g.edges()
	res := g.residual()
	if res == nil {
		return nil
	}
	nodes, kinds := g.minimalCycle(res)
	return &CycleError{Schedule: s.String(), Cycle: nodes, Kind: kinds}
}
