// Package verify statically certifies pipeline schedules before anything
// executes them. Where sched.Validate answers "is this table well formed",
// Certify proves the two properties the paper's correctness argument rests
// on (§4–§5) and produces an actionable counterexample when either fails:
//
//   - Deadlock-freedom. The graph over (stage, op) nodes formed by
//     per-stage program order plus the data dependencies of sched.Deps
//     admits a topological order. Because the runtime dedicates one
//     1-buffered channel to every cross-stage edge and each edge carries
//     exactly one tensor per iteration, sends never block — so acyclicity
//     of this graph is not merely necessary but sufficient: sequential
//     workers draining their op lists in order cannot deadlock. On
//     failure, Certify reports a minimal dependency cycle, not just the
//     fact of one.
//
//   - Memory safety. Sweeping each stage's op list in program order with
//     the simulator's retention rules (F retains a family's activations,
//     fused B releases them, split BAct adds gradient retention, the
//     family's last W/WPiece releases everything) yields the stage's peak
//     static retention. Under a Budget the peak must fit the per-stage
//     bound; the counterexample names the op at which the sweep first
//     overflows and what was live.
//
// Certification is wired in as a pre-flight gate: strategy evaluation,
// the façade's Evaluate/Search, and pipeline.New reject schedules that do
// not certify with an error wrapping errs.ErrUncertified, and the sched
// generator fuzz harness requires every generated schedule to certify.
package verify

import (
	"fmt"
	"strings"

	"mepipe/internal/errs"
	"mepipe/internal/sched"
)

// Node is one vertex of the certification graph: an op on a stage.
type Node struct {
	Stage int
	Op    sched.Op
}

func (n Node) String() string { return fmt.Sprintf("%v@stage%d", n.Op, n.Stage) }

// Certificate summarises a successful certification. It is evidence, not
// a capability: holding one means the checks below ran and passed for the
// schedule named in it.
type Certificate struct {
	Schedule string

	// Nodes and Edges size the certified dependency graph; CrossEdges
	// counts the edges that carry cross-stage communication (and
	// therefore each need a dedicated channel in the runtime).
	Nodes, Edges, CrossEdges int

	// PeakFamilies[k] is stage k's peak count of concurrently retained
	// activation/weight-gradient families in the static table sweep.
	PeakFamilies []int

	// PeakBytes[k] is stage k's peak retained bytes under the Budget's
	// footprint model. Nil when certification ran without a Budget.
	PeakBytes []int64
}

func (c *Certificate) String() string {
	return fmt.Sprintf("certificate{%s: %d nodes, %d edges (%d cross-stage), peak families %v}",
		c.Schedule, c.Nodes, c.Edges, c.CrossEdges, c.PeakFamilies)
}

// Options configures one Certify call.
type Options struct {
	// Budget, when non-nil, additionally certifies the static memory
	// sweep against per-stage bounds. Without it only structural
	// properties (deadlock-freedom, completeness) are certified.
	Budget *Budget

	// AssumeComplete skips the op-family completeness check. It is sound
	// only when the schedule's op multiset has already been certified and
	// the candidate merely permutes op positions — the schedule
	// optimizer's inner loop, where every move preserves the multiset by
	// construction and completeness would otherwise dominate the
	// per-candidate certification cost. Deadlock-freedom and the memory
	// sweep are always re-proved.
	AssumeComplete bool
}

// CycleError reports a dependency cycle: the minimal counterexample to
// deadlock-freedom. Cycle[i] must complete before Cycle[i+1] can run (the
// last node feeds the first), so no executor can run any of them.
type CycleError struct {
	Schedule string
	Cycle    []Node
	// Kind[i] says why Cycle[i] precedes Cycle[(i+1)%len]: "order" for
	// per-stage program order, "dep" for a data dependency.
	Kind []string
}

func (e *CycleError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %s deadlocks: dependency cycle of %d ops: ", e.Schedule, len(e.Cycle))
	for i, n := range e.Cycle {
		if i > 0 {
			fmt.Fprintf(&b, " -%s-> ", e.Kind[i-1])
		}
		b.WriteString(n.String())
	}
	fmt.Fprintf(&b, " -%s-> %s", e.Kind[len(e.Kind)-1], e.Cycle[0])
	return b.String()
}

func (e *CycleError) Unwrap() error { return errs.ErrUncertified }

// MissingDepError reports a dependency whose producer op appears nowhere
// in the schedule — a cross-stage Dep without a sender, or a local input
// that was never scheduled.
type MissingDepError struct {
	Schedule string
	Node     Node
	Dep      sched.Dep
}

func (e *MissingDepError) Error() string {
	return fmt.Sprintf("verify: %s: %v depends on %v@stage%d, which is not scheduled (no sender)",
		e.Schedule, e.Node, e.Dep.Op, e.Dep.Stage)
}

func (e *MissingDepError) Unwrap() error { return errs.ErrUncertified }

// IncompleteError reports an op family with a missing member: a forward
// without its backward, a split backward without its weight-gradient
// work, or vice versa.
type IncompleteError struct {
	Schedule string
	Stage    int
	Missing  sched.Op
}

func (e *IncompleteError) Error() string {
	return fmt.Sprintf("verify: %s stage %d: incomplete op family: missing %v", e.Schedule, e.Stage, e.Missing)
}

func (e *IncompleteError) Unwrap() error { return errs.ErrUncertified }

// ShapeError reports a malformed table (bad dimensions, out-of-range or
// duplicate ops) that certification cannot proceed past.
type ShapeError struct {
	Schedule string
	Detail   string
}

func (e *ShapeError) Error() string {
	return fmt.Sprintf("verify: %s: %s", e.Schedule, e.Detail)
}

func (e *ShapeError) Unwrap() error { return errs.ErrUncertified }

// Certify proves the schedule deadlock-free and complete — and, when
// opts.Budget is set, that its swept activation retention fits the
// per-stage memory bound. The returned error always wraps
// errs.ErrUncertified and carries a minimal counterexample
// (*CycleError, *BudgetError, *MissingDepError, *IncompleteError or
// *ShapeError).
func Certify(s *sched.Schedule, opts Options) (*Certificate, error) {
	if s == nil {
		return nil, &ShapeError{Schedule: "<nil>", Detail: "no schedule"}
	}
	if s.P <= 0 || s.V <= 0 || s.S <= 0 || s.N <= 0 {
		return nil, &ShapeError{Schedule: s.String(), Detail: "non-positive shape"}
	}
	if len(s.Stages) != s.P {
		return nil, &ShapeError{Schedule: s.String(),
			Detail: fmt.Sprintf("%d stage lists, want %d", len(s.Stages), s.P)}
	}
	if s.Place == nil {
		return nil, &ShapeError{Schedule: s.String(), Detail: "no chunk placement"}
	}
	if !opts.AssumeComplete {
		if err := checkComplete(s); err != nil {
			return nil, err
		}
	}
	cert := &Certificate{Schedule: s.String()}
	if err := checkAcyclic(s, cert); err != nil {
		return nil, err
	}
	if err := sweep(s, opts.Budget, cert); err != nil {
		return nil, err
	}
	return cert, nil
}

// checkComplete verifies that every op is in range, unique, and that
// every (micro, slice, chunk) family has all its members: an F, and a B
// (fused) or BAct plus W/WPieces (split). Presence is tracked in a dense
// bitset over the arithmetic op index — no map, no per-family allocation.
func checkComplete(s *sched.Schedule) error {
	x := sched.IndexOf(s)
	base := 0
	seen := make([]bool, x.PerStage())
	for k, ops := range s.Stages {
		for i := range seen {
			seen[i] = false
		}
		for _, op := range ops {
			if op.Micro < 0 || op.Micro >= s.N || op.Slice < 0 || op.Slice >= s.S ||
				op.Chunk < 0 || op.Chunk >= s.V || op.Piece < 0 {
				return &ShapeError{Schedule: s.String(),
					Detail: fmt.Sprintf("stage %d: op %v out of range", k, op)}
			}
			if bad := kindMismatch(s, op); bad != "" {
				return &ShapeError{Schedule: s.String(),
					Detail: fmt.Sprintf("stage %d: op %v %s", k, op, bad)}
			}
			id := int(x.ID(k, op)) - base
			if seen[id] {
				return &ShapeError{Schedule: s.String(),
					Detail: fmt.Sprintf("stage %d: duplicate op %v", k, op)}
			}
			seen[id] = true
		}
		for m := 0; m < s.N; m++ {
			for i := 0; i < s.S; i++ {
				for j := 0; j < s.V; j++ {
					if op, ok := missingFamilyOp(s, x, seen, base, k, m, i, j); !ok {
						return &IncompleteError{Schedule: s.String(), Stage: k, Missing: op}
					}
				}
			}
		}
		base += x.PerStage()
	}
	return nil
}

// missingFamilyOp scans one family's members in familyOps order and
// returns the first absent one (ok=false), if any.
func missingFamilyOp(s *sched.Schedule, x sched.OpIndex, seen []bool, base, k, m, i, j int) (sched.Op, bool) {
	probe := func(op sched.Op) bool { return seen[int(x.ID(k, op))-base] }
	f := sched.Op{Kind: sched.F, Micro: m, Slice: i, Chunk: j}
	if !probe(f) {
		return f, false
	}
	switch {
	case !s.SplitBW:
		b := sched.Op{Kind: sched.B, Micro: m, Slice: i, Chunk: j}
		if !probe(b) {
			return b, false
		}
	case s.WPieces == 0:
		b := sched.Op{Kind: sched.BAct, Micro: m, Slice: i, Chunk: j}
		if !probe(b) {
			return b, false
		}
		w := sched.Op{Kind: sched.W, Micro: m, Slice: i, Chunk: j}
		if !probe(w) {
			return w, false
		}
	default:
		b := sched.Op{Kind: sched.BAct, Micro: m, Slice: i, Chunk: j}
		if !probe(b) {
			return b, false
		}
		for p := 0; p < s.WPieces; p++ {
			w := sched.Op{Kind: sched.WPiece, Micro: m, Slice: i, Chunk: j, Piece: p}
			if !probe(w) {
				return w, false
			}
		}
	}
	return sched.Op{}, true
}

// kindMismatch reports why op's kind is inexpressible under the
// schedule's backward mode ("" when fine).
func kindMismatch(s *sched.Schedule, op sched.Op) string {
	switch op.Kind {
	case sched.F:
	case sched.B:
		if s.SplitBW {
			return "is a fused backward in a split schedule"
		}
	case sched.BAct:
		if !s.SplitBW {
			return "is a split backward in a fused schedule"
		}
	case sched.W:
		if !s.SplitBW || s.WPieces > 0 {
			return "is a whole weight-gradient op this schedule does not use"
		}
	case sched.WPiece:
		if !s.SplitBW || s.WPieces == 0 || op.Piece >= s.WPieces {
			return fmt.Sprintf("piece is out of range (w_pieces=%d)", s.WPieces)
		}
	default:
		return "has an unknown kind"
	}
	return ""
}

// familyOps returns the complete member set of one op family under the
// schedule's backward mode.
func familyOps(s *sched.Schedule, m, i, j int) []sched.Op {
	out := []sched.Op{{Kind: sched.F, Micro: m, Slice: i, Chunk: j}}
	switch {
	case !s.SplitBW:
		out = append(out, sched.Op{Kind: sched.B, Micro: m, Slice: i, Chunk: j})
	case s.WPieces == 0:
		out = append(out,
			sched.Op{Kind: sched.BAct, Micro: m, Slice: i, Chunk: j},
			sched.Op{Kind: sched.W, Micro: m, Slice: i, Chunk: j})
	default:
		out = append(out, sched.Op{Kind: sched.BAct, Micro: m, Slice: i, Chunk: j})
		for p := 0; p < s.WPieces; p++ {
			out = append(out, sched.Op{Kind: sched.WPiece, Micro: m, Slice: i, Chunk: j, Piece: p})
		}
	}
	return out
}
