package verify

import (
	"errors"
	"strings"
	"testing"

	"mepipe/internal/errs"
	"mepipe/internal/memplan"
	"mepipe/internal/sched"
)

// mustDAPPLE builds a small DAPPLE schedule for mutation tests.
func mustDAPPLE(t *testing.T, p, n int) *sched.Schedule {
	t.Helper()
	s, err := sched.DAPPLE(p, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCycleCounterexample hand-builds deadlocking orders and asserts the
// reported cycle is real, minimal, and names the ops on it.
func TestCycleCounterexample(t *testing.T) {
	t.Run("reversed-stage0", func(t *testing.T) {
		// Putting stage 0's backwards before its forwards makes B0
		// wait (transitively) on F0, which program order places after
		// it — a classic cross-stage deadlock.
		s := mustDAPPLE(t, 2, 2)
		ops := s.Stages[0]
		rev := make([]sched.Op, 0, len(ops))
		var bs, fs []sched.Op
		for _, op := range ops {
			if op.Kind == sched.B {
				bs = append(bs, op)
			} else {
				fs = append(fs, op)
			}
		}
		rev = append(append(rev, bs...), fs...)
		s.Stages[0] = rev

		_, err := Certify(s, Options{})
		if err == nil {
			t.Fatal("certified a deadlocking order")
		}
		var ce *CycleError
		if !errors.As(err, &ce) {
			t.Fatalf("want *CycleError, got %T (%v)", err, err)
		}
		if !errors.Is(err, errs.ErrUncertified) {
			t.Error("cycle error does not wrap ErrUncertified")
		}
		if len(ce.Cycle) < 2 {
			t.Fatalf("degenerate cycle %v", ce.Cycle)
		}
		// The counterexample must be a real cycle: every consecutive
		// pair connected by program order or a dependency.
		assertRealCycle(t, s, ce)
		// Minimality here: the shortest deadlock in this mutation is
		// B0@0 before F0@0 in program order while B0 (transitively)
		// needs F0 — the cycle must stay small, not enumerate the
		// whole residual graph.
		if len(ce.Cycle) > 4 {
			t.Errorf("cycle of %d nodes is not minimal: %v", len(ce.Cycle), ce.Cycle)
		}
		msg := err.Error()
		if !strings.Contains(msg, "deadlocks") || !strings.Contains(msg, "->") {
			t.Errorf("counterexample message not actionable: %q", msg)
		}
	})

	t.Run("swapped-pair", func(t *testing.T) {
		// The smallest mutation: swap one F with the B scheduled
		// right before it needs to be.
		s := mustDAPPLE(t, 2, 4)
		ops := s.Stages[1]
		fi, bi := -1, -1
		for i, op := range ops {
			if op.Kind == sched.F && op.Micro == 0 && fi < 0 {
				fi = i
			}
			if op.Kind == sched.B && op.Micro == 0 && bi < 0 {
				bi = i
			}
		}
		ops[fi], ops[bi] = ops[bi], ops[fi]
		_, err := Certify(s, Options{})
		var ce *CycleError
		if !errors.As(err, &ce) {
			t.Fatalf("want *CycleError, got %T (%v)", err, err)
		}
		assertRealCycle(t, s, ce)
		if len(ce.Cycle) != 2 {
			t.Errorf("swapping F0/B0 on one stage is a 2-cycle, got %d: %v", len(ce.Cycle), ce.Cycle)
		}
	})
}

// assertRealCycle checks every consecutive counterexample pair is an
// actual edge (program order on the same stage, or a sched.Deps edge).
func assertRealCycle(t *testing.T, s *sched.Schedule, ce *CycleError) {
	t.Helper()
	pos := map[Node]int{}
	for k, ops := range s.Stages {
		for i, op := range ops {
			pos[Node{k, op}] = i
		}
	}
	var deps []sched.Dep
	for i := range ce.Cycle {
		a, b := ce.Cycle[i], ce.Cycle[(i+1)%len(ce.Cycle)]
		// Program order: same stage, a immediately before b.
		if a.Stage == b.Stage && pos[b] == pos[a]+1 {
			continue
		}
		// Data edge: a is among b's dependencies.
		ok := false
		deps = s.Deps(deps[:0], b.Stage, b.Op)
		for _, d := range deps {
			if d.Stage == a.Stage && d.Op == a.Op {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("counterexample edge %v -> %v is not a real edge", a, b)
		}
	}
}

// TestBudgetCounterexample hand-builds an over-budget schedule (GPipe
// retains all n forwards) and asserts the reported overflow op and slot
// count.
func TestBudgetCounterexample(t *testing.T) {
	p, n := 2, 6
	s, err := sched.GPipe(p, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	// GPipe peaks at n live micro-batches per stage; budget n−2 must
	// overflow at the (n−1)'th forward.
	bound := []int{n - 2, n - 2}
	_, err = Certify(s, Options{Budget: SlotBudget(bound)})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %T (%v)", err, err)
	}
	if be.Op.Kind != sched.F {
		t.Errorf("overflow op %v, want a forward", be.Op)
	}
	if be.Live != int64(n-1) || be.Budget != int64(n-2) {
		t.Errorf("counterexample says %d > %d, want %d > %d", be.Live, be.Budget, n-1, n-2)
	}
	if be.Families != n-1 {
		t.Errorf("counterexample live families %d, want %d", be.Families, n-1)
	}
	if msg := be.Error(); !strings.Contains(msg, "exceeds budget") || !strings.Contains(msg, "F[") {
		t.Errorf("counterexample message not actionable: %q", msg)
	}

	// The exact peak certifies.
	if _, err := Certify(s, Options{Budget: SlotBudget([]int{n, n})}); err != nil {
		t.Fatalf("GPipe does not certify at its own peak: %v", err)
	}
}

// TestIncompleteAndMissing covers the completeness counterexamples.
func TestIncompleteAndMissing(t *testing.T) {
	t.Run("missing-backward", func(t *testing.T) {
		s := mustDAPPLE(t, 2, 2)
		// Drop stage 1's last backward: its F family is incomplete.
		ops := s.Stages[1]
		for i := len(ops) - 1; i >= 0; i-- {
			if ops[i].Kind == sched.B {
				s.Stages[1] = append(ops[:i:i], ops[i+1:]...)
				break
			}
		}
		_, err := Certify(s, Options{})
		var ie *IncompleteError
		if !errors.As(err, &ie) {
			t.Fatalf("want *IncompleteError, got %T (%v)", err, err)
		}
		if ie.Missing.Kind != sched.B {
			t.Errorf("missing op %v, want a backward", ie.Missing)
		}
	})

	t.Run("duplicate-op", func(t *testing.T) {
		s := mustDAPPLE(t, 2, 2)
		s.Stages[0] = append(s.Stages[0], s.Stages[0][0])
		_, err := Certify(s, Options{})
		var se *ShapeError
		if !errors.As(err, &se) {
			t.Fatalf("want *ShapeError, got %T (%v)", err, err)
		}
	})

	t.Run("nil-schedule", func(t *testing.T) {
		if _, err := Certify(nil, Options{}); !errors.Is(err, errs.ErrUncertified) {
			t.Fatalf("nil schedule: %v", err)
		}
	})
}

// TestPlanBudget certifies against a real memory plan through the
// Footprints seam using synthetic byte footprints.
func TestPlanBudget(t *testing.T) {
	p, n := 2, 4
	s := mustDAPPLE(t, p, n)
	plan := &memplan.Plan{
		Capacity:  1 << 20,
		ActBudget: []int64{4 << 10, 4 << 10},
	}
	b := PlanBudget(plan, constFootprints{act: 1 << 10})
	cert, err := Certify(s, Options{Budget: b})
	if err != nil {
		t.Fatalf("DAPPLE at 1 KiB/family does not fit 4 KiB budgets: %v", err)
	}
	if cert.PeakBytes[0] != int64(p)<<10 {
		t.Errorf("stage 0 peak %d bytes, want %d", cert.PeakBytes[0], p<<10)
	}

	plan.ActBudget = []int64{1 << 10, 4 << 10}
	if _, err := Certify(s, Options{Budget: PlanBudget(plan, constFootprints{act: 1 << 10})}); err == nil {
		t.Fatal("certified past a 1-family byte budget")
	}
}

type constFootprints struct{ act int64 }

func (c constFootprints) ActBytes(stage int, f sched.Op) int64  { return c.act }
func (c constFootprints) GradBytes(stage int, b sched.Op) int64 { return 0 }
