package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mepipe/internal/obs"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestChromeTraceGolden pins the full Chrome-trace export of a small SVPP
// schedule — every event the simulator emits, byte for byte. The simulator
// is deterministic, so any drift in event content, ordering, or JSON shape
// shows up as a diff. Regenerate with: go test ./internal/obs -run Golden -update
func TestChromeTraceGolden(t *testing.T) {
	s, err := sched.SVPP(sched.SVPPOptions{P: 2, V: 1, S: 2, N: 2, Reschedule: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	if _, err := sim.Run(sim.Options{Sched: s, Costs: sim.Unit(), Trace: rec}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := (obs.ChromeTrace{}).Export(&buf, rec.Trace()); err != nil {
		t.Fatal(err)
	}
	// The export must be loadable before it is comparable.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export has no events")
	}

	golden := filepath.Join("testdata", "svpp_p2s2n2.chrome.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace drifted from golden %s (-update to accept):\ngot  %d bytes\nwant %d bytes",
			golden, buf.Len(), len(want))
	}
}
