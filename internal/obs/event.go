// Package obs is the observability layer shared by the discrete-event
// simulator (internal/sim) and the live goroutine runtime
// (internal/pipeline): both engines emit the same structured span events —
// op execution, cross-stage communication, activation memory traffic,
// schedule-induced stalls, and §5 dynamic weight-gradient drains — into a
// pluggable Sink. A Recorder sink collects events into a Trace, which
// aggregates into per-stage metrics (Snapshot) and exports to trace viewers
// (ChromeTrace for Perfetto / chrome://tracing, JSONL for ad-hoc tooling).
//
// The package is zero-dependency (stdlib plus the schedule IR) and adds no
// cost when no sink is attached: engines guard every emission on a nil
// check.
package obs

import "mepipe/internal/sched"

// EventKind classifies a trace event.
type EventKind uint8

const (
	// EvOp is one executed schedule op: [Start, End) on Stage. Cause is
	// empty for ops run at their scheduled position, "drain-gap" for
	// weight-gradient work drained into a dependency stall, and
	// "drain-budget" for work forced out by activation-memory pressure
	// (§5 dynamic mode).
	EvOp EventKind = iota
	// EvComm is a cross-stage tensor transfer feeding Op on Stage: it
	// leaves stage From at Start and is available on Stage at End.
	// Bytes carries the payload size when the engine knows it.
	EvComm
	// EvAlloc is activation/gradient memory retained on Stage when Op
	// completed: Bytes newly retained, Live the stage total after.
	EvAlloc
	// EvFree is the release of Op's family retention: Bytes freed, Live
	// the stage total after.
	EvFree
	// EvStall is schedule-induced idle time on Stage before Op could
	// start. Cause distinguishes "dep" (waiting on an upstream or
	// same-stage op) from "comm" (inputs computed but still in flight).
	EvStall
	// EvBudget is an instant marking that Op's admission on Stage was
	// deferred until weight-gradient work drained below the activation
	// budget (§5 memory pressure).
	EvBudget
	// EvFault is an instant marking an injected or real fault on Stage:
	// a crash before Op (Cause "crash") or an exhausted retry budget
	// (Cause "send"). Recovery, if any, follows as EvRestore.
	EvFault
	// EvCkpt is an instant marking a stage-level checkpoint taken on
	// Stage just before Op; Bytes carries the snapshot's payload size
	// when the runtime knows it.
	EvCkpt
	// EvRestore is the span of a stage restoring its last checkpoint
	// after a fault; replayed ops follow as EvOp spans with Cause
	// "replay".
	EvRestore
	// EvRetry is an instant marking one transient-failure retry of a
	// cross-stage send from Stage to the peer stage in From; Cause
	// carries the failure being retried.
	EvRetry
	// EvMove is an instant emitted by the schedule optimizer for each
	// candidate move it proposes: Stage is the stage the move touched, Op
	// the op it displaced, Start/End the candidate's simulated iteration
	// time (End == Start), and Cause "<operator>/<outcome>" — e.g.
	// "swap/accept", "shift/reject", "rebalance/infeasible".
	EvMove
)

// String returns the mnemonic used by the JSONL exporter.
func (k EventKind) String() string {
	switch k {
	case EvOp:
		return "op"
	case EvComm:
		return "comm"
	case EvAlloc:
		return "alloc"
	case EvFree:
		return "free"
	case EvStall:
		return "stall"
	case EvBudget:
		return "budget"
	case EvFault:
		return "fault"
	case EvCkpt:
		return "ckpt"
	case EvRestore:
		return "restore"
	case EvRetry:
		return "retry"
	case EvMove:
		return "move"
	}
	return "unknown"
}

// Event is one structured trace record. Times are seconds from the start of
// the iteration (simulated time in the simulator, wall-clock in the
// goroutine runtime).
type Event struct {
	Kind  EventKind
	Stage int      // stage the event happened on (the receiver for EvComm)
	From  int      // producing stage for EvComm, else equal to Stage
	Op    sched.Op // the op executed / fed / charged
	Start float64  // seconds
	End   float64  // seconds (== Start for instants)
	Bytes int64    // payload (EvComm), delta (EvAlloc/EvFree), or bytes freshly allocated during an EvOp
	Live  int64    // retained bytes on Stage after the event (memory kinds)
	FLOPs int64    // floating-point work of an EvOp's GEMMs (runtime only)
	Cause string   // stall/drain cause, empty otherwise
}

// Dur returns the event duration in seconds.
func (e Event) Dur() float64 { return e.End - e.Start }

// Sink receives events as an engine executes. Implementations must be safe
// for concurrent use: the goroutine runtime emits from one goroutine per
// stage.
type Sink interface {
	Emit(Event)
}

// multi fans one stream out to several sinks.
type multi []Sink

func (m multi) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Multi returns a sink that forwards every event to each of sinks. Nil
// entries are skipped; Multi() returns nil so the result can be attached
// unconditionally.
func Multi(sinks ...Sink) Sink {
	out := make(multi, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}
