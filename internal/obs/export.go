package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Exporter writes a recorded trace to a stream in some concrete format.
// timeline.ASCII and timeline.SVG render Gantt charts from the same
// interface, so every output path of the system — text, SVG, Chrome trace,
// JSONL — is one implementation of Exporter.
type Exporter interface {
	Export(w io.Writer, t *Trace) error
}

// chromeEvent is one entry of the Chrome trace-event format (loadable in
// Perfetto and chrome://tracing). Complete spans are ph "X", counters "C",
// instants "i".
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace exports the trace in Chrome trace-event JSON. Op spans and
// stalls appear as complete events on pid 0 (one thread per stage),
// cross-stage transfers as spans on pid 1, and retained activation bytes as
// a per-stage counter track.
type ChromeTrace struct {
	// OmitCounters drops the memory counter track (useful when only the
	// op timeline matters).
	OmitCounters bool
}

// Export implements Exporter. Times are converted to microseconds, the
// unit the trace-event format specifies.
func (c ChromeTrace) Export(w io.Writer, t *Trace) error {
	evs := make([]chromeEvent, 0, len(t.Events))
	for _, e := range t.Events {
		switch e.Kind {
		case EvOp:
			ce := chromeEvent{
				Name: e.Op.String(), Cat: e.Op.Kind.String(), Ph: "X",
				TS: e.Start * 1e6, Dur: e.Dur() * 1e6,
				PID: 0, TID: e.Stage,
			}
			if e.Cause != "" || e.FLOPs > 0 {
				ce.Args = map[string]any{}
				if e.Cause != "" {
					ce.Args["cause"] = e.Cause
				}
				if e.FLOPs > 0 {
					ce.Args["gflop"] = float64(e.FLOPs) / 1e9
					if d := e.Dur(); d > 0 {
						ce.Args["gflops"] = float64(e.FLOPs) / 1e9 / d
					}
				}
			}
			evs = append(evs, ce)
		case EvStall:
			evs = append(evs, chromeEvent{
				Name: "stall:" + e.Cause, Cat: "stall", Ph: "X",
				TS: e.Start * 1e6, Dur: e.Dur() * 1e6,
				PID: 0, TID: e.Stage,
				Args: map[string]any{"for": e.Op.String()},
			})
		case EvComm:
			evs = append(evs, chromeEvent{
				Name: "recv " + e.Op.String(), Cat: "comm", Ph: "X",
				TS: e.Start * 1e6, Dur: e.Dur() * 1e6,
				PID: 1, TID: e.Stage,
				Args: map[string]any{"from": e.From, "bytes": e.Bytes},
			})
		case EvAlloc, EvFree:
			if c.OmitCounters {
				continue
			}
			evs = append(evs, chromeEvent{
				Name: fmt.Sprintf("retained stage %d", e.Stage), Cat: "mem", Ph: "C",
				TS: e.End * 1e6, PID: 0, TID: e.Stage,
				Args: map[string]any{"bytes": e.Live},
			})
		case EvBudget:
			evs = append(evs, chromeEvent{
				Name: "budget-stall", Cat: "mem", Ph: "i",
				TS: e.Start * 1e6, PID: 0, TID: e.Stage, Scope: "t",
				Args: map[string]any{"deferred": e.Op.String()},
			})
		case EvFault:
			evs = append(evs, chromeEvent{
				Name: "fault:" + e.Cause, Cat: "fault", Ph: "i",
				TS: e.Start * 1e6, PID: 0, TID: e.Stage, Scope: "t",
				Args: map[string]any{"at": e.Op.String()},
			})
		case EvCkpt:
			evs = append(evs, chromeEvent{
				Name: "checkpoint", Cat: "fault", Ph: "i",
				TS: e.Start * 1e6, PID: 0, TID: e.Stage, Scope: "t",
				Args: map[string]any{"before": e.Op.String(), "bytes": e.Bytes},
			})
		case EvRestore:
			evs = append(evs, chromeEvent{
				Name: "restore", Cat: "fault", Ph: "X",
				TS: e.Start * 1e6, Dur: e.Dur() * 1e6,
				PID: 0, TID: e.Stage,
				Args: map[string]any{"replay-from": e.Op.String()},
			})
		case EvRetry:
			evs = append(evs, chromeEvent{
				Name: "retry", Cat: "fault", Ph: "i",
				TS: e.Start * 1e6, PID: 0, TID: e.Stage, Scope: "t",
				Args: map[string]any{"to": e.From, "cause": e.Cause},
			})
		case EvMove:
			evs = append(evs, chromeEvent{
				Name: "move:" + e.Cause, Cat: "opt", Ph: "i",
				TS: e.Start * 1e6, PID: 0, TID: e.Stage, Scope: "t",
				Args: map[string]any{"op": e.Op.String(), "iter": e.Start},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{evs})
}

// jsonlEvent is the flat JSONL record of one event.
type jsonlEvent struct {
	Kind  string  `json:"kind"`
	Stage int     `json:"stage"`
	From  int     `json:"from,omitempty"`
	Op    string  `json:"op"`
	Micro int     `json:"micro"`
	Slice int     `json:"slice"`
	Chunk int     `json:"chunk"`
	Piece int     `json:"piece,omitempty"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Bytes int64   `json:"bytes,omitempty"`
	Live  int64   `json:"live,omitempty"`
	FLOPs int64   `json:"flops,omitempty"`
	Cause string  `json:"cause,omitempty"`
}

// JSONL exports one JSON object per line — trivially consumable by jq,
// pandas, or a spreadsheet.
type JSONL struct{}

// Export implements Exporter.
func (JSONL) Export(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Events {
		rec := jsonlEvent{
			Kind: e.Kind.String(), Stage: e.Stage,
			Op: e.Op.Kind.String(), Micro: e.Op.Micro, Slice: e.Op.Slice,
			Chunk: e.Op.Chunk, Piece: e.Op.Piece,
			Start: e.Start, End: e.End,
			Bytes: e.Bytes, Live: e.Live, FLOPs: e.FLOPs, Cause: e.Cause,
		}
		if e.Kind == EvComm {
			rec.From = e.From
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}
