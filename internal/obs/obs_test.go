package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"mepipe/internal/sched"
)

func op(kind sched.Kind, micro int) sched.Op {
	return sched.Op{Kind: kind, Micro: micro}
}

// synthetic returns a tiny two-stage trace exercising every event kind.
func synthetic() []Event {
	return []Event{
		{Kind: EvOp, Stage: 0, From: 0, Op: op(sched.F, 0), Start: 0, End: 1},
		{Kind: EvAlloc, Stage: 0, From: 0, Op: op(sched.F, 0), Start: 0, End: 1, Bytes: 100, Live: 100},
		{Kind: EvComm, Stage: 1, From: 0, Op: op(sched.F, 0), Start: 1, End: 1.5, Bytes: 64},
		{Kind: EvStall, Stage: 1, From: 1, Op: op(sched.F, 0), Start: 0, End: 1.5, Cause: "dep"},
		{Kind: EvOp, Stage: 1, From: 1, Op: op(sched.F, 0), Start: 1.5, End: 2.5},
		{Kind: EvOp, Stage: 1, From: 1, Op: op(sched.B, 0), Start: 2.5, End: 4.5},
		{Kind: EvBudget, Stage: 0, From: 0, Op: op(sched.F, 1), Start: 2, End: 2},
		{Kind: EvOp, Stage: 0, From: 0, Op: op(sched.W, 0), Start: 2, End: 3, Cause: "drain-gap"},
		{Kind: EvFree, Stage: 0, From: 0, Op: op(sched.B, 0), Start: 5, End: 5, Bytes: 100, Live: 0},
		{Kind: EvOp, Stage: 0, From: 0, Op: op(sched.B, 0), Start: 4.5, End: 5},
	}
}

func record(t *testing.T, evs []Event) *Trace {
	t.Helper()
	rec := NewRecorder()
	for _, e := range evs {
		rec.Emit(e)
	}
	return rec.Trace()
}

func TestRecorderCanonicalOrder(t *testing.T) {
	tr := record(t, synthetic())
	for i := 1; i < len(tr.Events); i++ {
		a, b := tr.Events[i-1], tr.Events[i]
		if a.Start > b.Start || (a.Start == b.Start && a.Stage > b.Stage) {
			t.Fatalf("events %d,%d out of (start, stage) order: %+v then %+v", i-1, i, a, b)
		}
	}
	if tr.Stages != 2 {
		t.Errorf("Stages = %d, want 2", tr.Stages)
	}
	if tr.Makespan != 5 {
		t.Errorf("Makespan = %g, want 5 (latest op end)", tr.Makespan)
	}
	// busy = 1 + 1 + 2 + 1 + 0.5 = 5.5 over 2 stages * 5 s.
	if got, want := tr.Bubble, 1-5.5/10; got < want-1e-12 || got > want+1e-12 {
		t.Errorf("Bubble = %g, want %g", got, want)
	}
	if got := len(tr.OpSpans(0)); got != 3 {
		t.Errorf("stage 0 op spans = %d, want 3", got)
	}
}

func TestRecorderResetAndLen(t *testing.T) {
	rec := NewRecorder()
	if rec.Len() != 0 {
		t.Fatalf("new recorder Len = %d", rec.Len())
	}
	rec.Emit(Event{Kind: EvOp})
	if rec.Len() != 1 {
		t.Fatalf("Len after one emit = %d", rec.Len())
	}
	rec.Reset()
	if rec.Len() != 0 || len(rec.Trace().Events) != 0 {
		t.Fatal("Reset did not clear events")
	}
}

func TestRecorderConcurrentEmit(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rec.Emit(Event{Kind: EvOp, Stage: g, Start: float64(i), End: float64(i) + 1})
			}
		}(g)
	}
	wg.Wait()
	if rec.Len() != 800 {
		t.Fatalf("concurrent Len = %d, want 800", rec.Len())
	}
}

func TestMulti(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	if Multi() != nil {
		t.Error("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) should be nil")
	}
	if got := Multi(a, nil); got != a {
		t.Error("Multi(a, nil) should collapse to a")
	}
	m := Multi(a, b)
	m.Emit(Event{Kind: EvOp})
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("fan-out missed a sink: a=%d b=%d", a.Len(), b.Len())
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.String() != "empty" {
		t.Errorf("empty histogram String = %q", h.String())
	}
	for _, v := range []float64{5e-7, 5e-4, 5e-4, 0.05, 100} {
		h.Observe(v)
	}
	if h.Count != 5 {
		t.Errorf("Count = %d", h.Count)
	}
	if h.Max != 100 {
		t.Errorf("Max = %g", h.Max)
	}
	if got, want := h.Mean(), (5e-7+5e-4+5e-4+0.05+100)/5; got != want {
		t.Errorf("Mean = %g, want %g", got, want)
	}
	if h.Buckets[0] != 1 || h.Buckets[3] != 2 || h.Buckets[numHistBounds] != 1 {
		t.Errorf("bucket placement wrong: %v", h.Buckets)
	}
	if s := h.String(); !strings.Contains(s, ">10s:1") {
		t.Errorf("String misses overflow bucket: %q", s)
	}
}

func TestSnapshot(t *testing.T) {
	s := record(t, synthetic()).Snapshot()
	if len(s.Stages) != 2 {
		t.Fatalf("stages = %d", len(s.Stages))
	}
	s0, s1 := s.Stages[0], s.Stages[1]
	if s0.Ops != 3 || s1.Ops != 2 {
		t.Errorf("ops = %d,%d want 3,2", s0.Ops, s1.Ops)
	}
	if s0.Forward != 1 || s0.Weight != 1 || s0.Backward != 0.5 {
		t.Errorf("stage 0 busy split = F%g W%g B%g", s0.Forward, s0.Weight, s0.Backward)
	}
	if s0.Drained != 1 {
		t.Errorf("stage 0 drained = %d, want 1", s0.Drained)
	}
	if s0.BudgetStalls != 1 {
		t.Errorf("stage 0 budget stalls = %d, want 1", s0.BudgetStalls)
	}
	if s0.PeakBytes != 100 || s.PeakBytes != 100 {
		t.Errorf("peak bytes = %d/%d, want 100", s0.PeakBytes, s.PeakBytes)
	}
	if s1.BytesIn != 64 || s0.BytesOut != 64 || s.CommBytes != 64 {
		t.Errorf("comm bytes in/out/total = %d/%d/%d, want 64", s1.BytesIn, s0.BytesOut, s.CommBytes)
	}
	if s1.StallTime["dep"] != 1.5 || s.StallTime["dep"] != 1.5 {
		t.Errorf("dep stall = %g/%g, want 1.5", s1.StallTime["dep"], s.StallTime["dep"])
	}
	if s1.QueueWait.Count != 1 {
		t.Errorf("queue-wait observations = %d, want 1", s1.QueueWait.Count)
	}
	if lines := s.Summary(); len(lines) < 2 || !strings.Contains(lines[0], "makespan") {
		t.Errorf("Summary = %q", lines)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := record(t, synthetic())
	var buf bytes.Buffer
	if err := (ChromeTrace{}).Export(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e["ph"].(string)]++
	}
	// 5 ops + 1 stall + 1 comm as complete spans, 2 memory counters, 1
	// budget instant.
	if phases["X"] != 7 || phases["C"] != 2 || phases["i"] != 1 {
		t.Errorf("phase counts = %v, want X:7 C:2 i:1", phases)
	}

	buf.Reset()
	if err := (ChromeTrace{OmitCounters: true}).Export(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, e := range doc.TraceEvents {
		if e["ph"] == "C" {
			t.Fatal("OmitCounters left a counter event")
		}
	}
}

func TestJSONLExport(t *testing.T) {
	tr := record(t, synthetic())
	var buf bytes.Buffer
	if err := (JSONL{}).Export(&buf, tr); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	kinds := map[string]int{}
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d invalid JSON: %v", n, err)
		}
		kinds[rec["kind"].(string)]++
		n++
	}
	if n != len(tr.Events) {
		t.Errorf("lines = %d, want %d", n, len(tr.Events))
	}
	for _, k := range []string{"op", "comm", "alloc", "free", "stall", "budget"} {
		if kinds[k] == 0 {
			t.Errorf("no %q line in JSONL output", k)
		}
	}
}
