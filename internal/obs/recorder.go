package obs

import (
	"sort"
	"sync"
)

// Recorder is a Sink that collects every event in memory. It is safe for
// concurrent emission; Trace takes a consistent copy.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit implements Sink.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Len returns the number of events recorded so far.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

// Trace returns the recorded events as a Trace. Events are sorted by start
// time (stable, so same-instant events keep emission order — the goroutine
// runtime's per-stage streams interleave nondeterministically, and sorting
// gives exporters and golden tests a canonical order).
func (r *Recorder) Trace() *Trace {
	r.mu.Lock()
	evs := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		return evs[i].Stage < evs[j].Stage
	})
	t := &Trace{Events: evs}
	t.fill()
	return t
}

// Trace is a complete recorded iteration: the event stream plus the summary
// quantities exporters and renderers need.
type Trace struct {
	// Events in canonical (start-time, stage) order.
	Events []Event
	// Stages is 1 + the highest stage index seen.
	Stages int
	// Makespan is the latest event end time.
	Makespan float64
	// Bubble is the aggregate idle fraction 1 − Σ busy / (stages ·
	// makespan) over op events. Engines that know a more precise value
	// (e.g. the simulator, which accounts for post-iteration tail time)
	// overwrite it.
	Bubble float64
}

// fill derives Stages, Makespan and Bubble from the event stream.
func (t *Trace) fill() {
	busy := 0.0
	for _, e := range t.Events {
		if e.Stage >= t.Stages {
			t.Stages = e.Stage + 1
		}
		if e.Kind == EvComm && e.From >= t.Stages {
			t.Stages = e.From + 1
		}
		if e.Kind == EvOp {
			if e.End > t.Makespan {
				t.Makespan = e.End
			}
			busy += e.Dur()
		}
	}
	if t.Makespan > 0 && t.Stages > 0 {
		t.Bubble = 1 - busy/(float64(t.Stages)*t.Makespan)
	}
}

// OpSpans returns the executed-op events of stage k in order.
func (t *Trace) OpSpans(k int) []Event {
	var out []Event
	for _, e := range t.Events {
		if e.Kind == EvOp && e.Stage == k {
			out = append(out, e)
		}
	}
	return out
}
