package obs

import (
	"fmt"
	"sort"
	"strings"

	"mepipe/internal/sched"
)

// histBounds are the queue-wait histogram bucket upper bounds in seconds
// (log-spaced from 1µs to 10s, with a catch-all final bucket).
var histBounds = [numHistBounds]float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

const numHistBounds = 8

// Histogram is a fixed-bucket latency histogram (bounds in histBounds).
type Histogram struct {
	Buckets [numHistBounds + 1]int
	Count   int
	Sum     float64
	Max     float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	for i, b := range histBounds {
		if v <= b {
			h.Buckets[i]++
			return
		}
	}
	h.Buckets[len(histBounds)]++
}

// Mean returns the average observed value.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// String renders the non-empty buckets compactly, e.g. "≤1ms:3 ≤10ms:1".
func (h *Histogram) String() string {
	if h.Count == 0 {
		return "empty"
	}
	var parts []string
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if i < len(histBounds) {
			parts = append(parts, fmt.Sprintf("≤%gs:%d", histBounds[i], n))
		} else {
			parts = append(parts, fmt.Sprintf(">%gs:%d", histBounds[len(histBounds)-1], n))
		}
	}
	return strings.Join(parts, " ")
}

// StageMetrics aggregates one stage's events.
type StageMetrics struct {
	Ops int // executed op events

	// Busy seconds by op class.
	Forward, Backward, Weight float64

	// StallTime is idle seconds by cause ("dep", "comm").
	StallTime map[string]float64
	// QueueWait is the distribution of stall durations.
	QueueWait Histogram

	// Communication in and out of the stage.
	BytesIn, BytesOut int64
	CommIn, CommOut   int

	// Memory high-water and churn.
	PeakBytes  int64
	AllocBytes int64

	// GemmFLOPs is the floating-point work of the stage's GEMMs (runtime
	// traces only; the simulator does not model FLOPs).
	GemmFLOPs int64

	// Dynamic §5 engine behaviour: weight-gradient ops drained into
	// stalls, and forwards deferred by the activation budget.
	Drained      int
	BudgetStalls int

	// Resilience: faults injected or hit, checkpoints taken, restores
	// performed (RestoreTime is their total span), ops re-executed
	// during restore-and-replay, and transient-send retries.
	Faults      int
	Checkpoints int
	Restores    int
	RestoreTime float64
	Replayed    int
	Retries     int
}

// Snapshot is the aggregated view of one traced iteration — the metrics
// half of the observability layer, attached to bench experiment reports.
type Snapshot struct {
	Stages   []StageMetrics
	Makespan float64
	Bubble   float64
	// PeakBytes is the maximum retained bytes over all stages.
	PeakBytes int64
	// CommBytes is the total cross-stage traffic.
	CommBytes int64
	// StallTime is the total idle seconds by cause across stages.
	StallTime map[string]float64
	// GemmFLOPs is the total GEMM work across stages (runtime traces).
	GemmFLOPs int64
}

// Snapshot aggregates the trace into per-stage counters and histograms.
func (t *Trace) Snapshot() *Snapshot {
	s := &Snapshot{
		Stages:    make([]StageMetrics, t.Stages),
		Makespan:  t.Makespan,
		Bubble:    t.Bubble,
		StallTime: map[string]float64{},
	}
	for k := range s.Stages {
		s.Stages[k].StallTime = map[string]float64{}
	}
	for _, e := range t.Events {
		if e.Stage < 0 || e.Stage >= len(s.Stages) {
			continue
		}
		m := &s.Stages[e.Stage]
		switch e.Kind {
		case EvOp:
			m.Ops++
			switch e.Op.Kind {
			case sched.F:
				m.Forward += e.Dur()
			case sched.B, sched.BAct:
				m.Backward += e.Dur()
			case sched.W, sched.WPiece:
				m.Weight += e.Dur()
			}
			if strings.HasPrefix(e.Cause, "drain") {
				m.Drained++
			}
			if e.Cause == "replay" {
				m.Replayed++
			}
			m.GemmFLOPs += e.FLOPs
			s.GemmFLOPs += e.FLOPs
			m.AllocBytes += e.Bytes
		case EvStall:
			m.StallTime[e.Cause] += e.Dur()
			m.QueueWait.Observe(e.Dur())
			s.StallTime[e.Cause] += e.Dur()
		case EvComm:
			m.BytesIn += e.Bytes
			m.CommIn++
			if e.From >= 0 && e.From < len(s.Stages) {
				s.Stages[e.From].BytesOut += e.Bytes
				s.Stages[e.From].CommOut++
			}
			s.CommBytes += e.Bytes
		case EvAlloc:
			m.AllocBytes += e.Bytes
			if e.Live > m.PeakBytes {
				m.PeakBytes = e.Live
			}
		case EvFree:
			if e.Live > m.PeakBytes {
				m.PeakBytes = e.Live
			}
		case EvBudget:
			m.BudgetStalls++
		case EvFault:
			m.Faults++
		case EvCkpt:
			m.Checkpoints++
		case EvRestore:
			m.Restores++
			m.RestoreTime += e.Dur()
		case EvRetry:
			m.Retries++
		}
	}
	for k := range s.Stages {
		if s.Stages[k].PeakBytes > s.PeakBytes {
			s.PeakBytes = s.Stages[k].PeakBytes
		}
	}
	return s
}

// Summary renders the snapshot as short human-readable lines (one per
// stage plus a total), for attaching to bench reports.
func (s *Snapshot) Summary() []string {
	out := []string{fmt.Sprintf(
		"makespan %.4g s, bubble %.1f%%, peak %.0f MiB retained, %.1f MiB cross-stage traffic",
		s.Makespan, 100*s.Bubble, float64(s.PeakBytes)/(1<<20), float64(s.CommBytes)/(1<<20))}
	if s.GemmFLOPs > 0 && s.Makespan > 0 {
		out = append(out, fmt.Sprintf(
			"compute: %.3g GFLOP at %.2f GFLOP/s aggregate",
			float64(s.GemmFLOPs)/1e9, float64(s.GemmFLOPs)/1e9/s.Makespan))
	}
	causes := make([]string, 0, len(s.StallTime))
	for c := range s.StallTime {
		causes = append(causes, c)
	}
	sort.Strings(causes)
	for _, c := range causes {
		out = append(out, fmt.Sprintf("stall[%s] %.4g s total", c, s.StallTime[c]))
	}
	var faults, ckpts, restores, replayed, retries int
	for _, m := range s.Stages {
		faults += m.Faults
		ckpts += m.Checkpoints
		restores += m.Restores
		replayed += m.Replayed
		retries += m.Retries
	}
	if faults+ckpts+restores+retries > 0 {
		out = append(out, fmt.Sprintf(
			"resilience: %d faults, %d checkpoints, %d restores (%d ops replayed), %d retries",
			faults, ckpts, restores, replayed, retries))
	}
	return out
}
