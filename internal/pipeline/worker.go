package pipeline

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"mepipe/internal/errs"
	"mepipe/internal/nn"
	"mepipe/internal/sched"
)

// StageWorker executes exactly one pipeline stage the way a separate
// process (or host) would: it holds its own model replica — every worker
// builds the model from the same seed, so weights agree without any
// transfer — but computes only its stage's layers, exchanging activation
// and gradient tensors with peer stages over net.Conn links. Gradients for
// the worker's own layers accumulate into its local model, exactly like a
// GPU rank.
type StageWorker struct {
	r     *Runner
	stage int
}

// NewStageWorker validates and prepares one stage's worker.
func NewStageWorker(m *nn.Model, s *sched.Schedule, batch [][]int, stage int) (*StageWorker, error) {
	if stage < 0 || stage >= s.P {
		return nil, fmt.Errorf("pipeline: stage %d out of range [0,%d): %w", stage, s.P, errs.ErrIncompatible)
	}
	r, err := New(m, s, batch)
	if err != nil {
		return nil, err
	}
	return &StageWorker{r: r, stage: stage}, nil
}

// Stage returns the stage index this worker executes.
func (w *StageWorker) Stage() int { return w.stage }

// OwnedLayers returns the model layers this stage computes (and therefore
// the only layers whose gradients this worker produces).
func (w *StageWorker) OwnedLayers() []int {
	var out []int
	for c := 0; c < w.r.s.V; c++ {
		g := w.r.s.Place.Global(w.stage, c)
		out = append(out, w.r.chunkLayers[g]...)
	}
	return out
}

// Peers returns the stages this worker must be connected to.
func (w *StageWorker) Peers() []int {
	set := map[int]bool{}
	for pair := range w.r.stagePairs() {
		if pair[0] == w.stage {
			set[pair[1]] = true
		}
		if pair[1] == w.stage {
			set[pair[0]] = true
		}
	}
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

// Run executes the stage over the given peer connections (keyed by peer
// stage). It returns this stage's share of the loss (non-zero only on the
// stage hosting the final chunk). The connections are not closed.
func (w *StageWorker) Run(conns map[int]net.Conn) (float64, error) {
	for _, peer := range w.Peers() {
		if conns[peer] == nil {
			return 0, fmt.Errorf("pipeline: stage %d missing connection to peer %d: %w", w.stage, peer, errs.ErrIncompatible)
		}
	}
	wires := make([]wire, w.r.s.P)
	wires[w.stage].out = map[int]*bufio.Writer{}
	var demux sync.WaitGroup
	for peer, conn := range conns {
		wires[w.stage].out[peer] = bufio.NewWriter(conn)
		c := conn
		spawn(&demux, func() {
			br := bufio.NewReader(c)
			for {
				_, e, m, err := readFrame(br)
				if err != nil {
					return // peer closed after the iteration
				}
				if e.stage != w.stage {
					continue // not addressed to this stage
				}
				w.r.recv[e] <- m
			}
		})
	}
	w.r.wires = wires
	defer func() { w.r.wires = nil }()

	st := w.r.newStage(w.stage)
	func() {
		defer func() {
			if p := recover(); p != nil {
				st.err = fmt.Errorf("pipeline: stage %d panicked: %v: %w", w.stage, p, errs.ErrStageFailed)
			}
		}()
		w.r.runStage(st)
	}()
	w.r.releaseStage(st)
	// The demux goroutines drain until the caller closes the conns; they
	// hold no state this iteration needs, so we do not wait on them.
	if st.err != nil {
		return 0, st.err
	}
	return st.loss, nil
}

// StageLoop drives multi-step distributed training of one stage: a fresh
// Runner per step over shared connections, frames routed by their iteration
// tag, and an SGD step over the stage's own layers between iterations.
// Because every worker steps only the layers it computes with gradients it
// produced locally, the fleet's weights evolve exactly like single-process
// training — no parameter synchronisation needed.
type StageLoop struct {
	model *nn.Model
	s     *sched.Schedule
	stage int
}

// NewStageLoop prepares a multi-step worker for one stage.
func NewStageLoop(m *nn.Model, s *sched.Schedule, stage int) (*StageLoop, error) {
	if stage < 0 || stage >= s.P {
		return nil, fmt.Errorf("pipeline: stage %d out of range [0,%d): %w", stage, s.P, errs.ErrIncompatible)
	}
	return &StageLoop{model: m, s: s, stage: stage}, nil
}

// RunSteps executes len(batches) iterations over the given peer
// connections, applying lr-scaled SGD to the stage's layers after each.
// It returns the per-step losses of this stage (non-zero only on the stage
// hosting the final chunk).
func (l *StageLoop) RunSteps(conns map[int]net.Conn, batches [][][]int, lr float32) ([]float64, error) {
	// Pre-build one runner (and worker) per step so the demultiplexer can
	// route any iteration's frames the moment they arrive — a fast
	// upstream stage may already be sending step i+1 while this stage
	// still drains step i.
	workers := make([]*StageWorker, len(batches))
	for i, b := range batches {
		w, err := NewStageWorker(l.model, l.s, b, l.stage)
		if err != nil {
			return nil, err
		}
		w.r.iter = i
		workers[i] = w
	}
	// One demux per conn, shared across steps.
	var demux sync.WaitGroup
	for _, conn := range conns {
		c := conn
		spawn(&demux, func() {
			br := bufio.NewReader(c)
			for {
				iter, e, m, err := readFrame(br)
				if err != nil {
					return
				}
				if iter < 0 || iter >= len(workers) || e.stage != l.stage {
					continue
				}
				workers[iter].r.recv[e] <- m
			}
		})
	}
	losses := make([]float64, len(batches))
	for i, w := range workers {
		// Route this step's outgoing frames through the shared conns.
		wires := make([]wire, l.s.P)
		wires[l.stage].out = map[int]*bufio.Writer{}
		for peer, conn := range conns {
			wires[l.stage].out[peer] = bufio.NewWriter(conn)
		}
		w.r.wires = wires

		l.model.ZeroGrads()
		st := w.r.newStage(l.stage)
		var runErr error
		func() {
			defer func() {
				if p := recover(); p != nil {
					runErr = fmt.Errorf("pipeline: stage %d step %d panicked: %v: %w", l.stage, i, p, errs.ErrStageFailed)
				}
			}()
			w.r.runStage(st)
		}()
		w.r.releaseStage(st)
		w.r.wires = nil
		if runErr != nil {
			return nil, runErr
		}
		if st.err != nil {
			return nil, st.err
		}
		losses[i] = st.loss
		l.stepOwnLayers(w, lr)
	}
	return losses, nil
}

// stepOwnLayers applies SGD only to the parameters this stage computes.
func (l *StageLoop) stepOwnLayers(w *StageWorker, lr float32) {
	step := func(wt, dw []float32) {
		for i := range wt {
			wt[i] -= lr * dw[i]
		}
	}
	for _, li := range w.OwnedLayers() {
		layer := l.model.Layers[li]
		for _, lin := range []*nn.Linear{&layer.Wq, &layer.Wk, &layer.Wv, &layer.Wo, &layer.Wg, &layer.Wu, &layer.Wd} {
			step(lin.W.Data, lin.DW.Data)
		}
		step(layer.AttnNorm, layer.DAttnNorm)
		step(layer.MLPNorm, layer.DMLPNorm)
	}
	if l.stage == 0 {
		step(l.model.Embed.Table.Data, l.model.Embed.DTable.Data)
	}
	if last, _ := l.s.Place.Host(l.s.TotalChunks() - 1); last == l.stage {
		step(l.model.Head.W.W.Data, l.model.Head.W.DW.Data)
		step(l.model.Head.Norm, l.model.Head.DNorm)
	}
}
