package pipeline

import (
	"bufio"
	"math"
	"math/rand"
	"net"
	"testing"

	"mepipe/internal/nn"
	"mepipe/internal/sched"
	"mepipe/internal/tensor"
)

func cfg() nn.Config {
	return nn.Config{Hidden: 8, Heads: 2, FFN: 16, Vocab: 13, Layers: 8, SeqLen: 8}
}

func batch(rng *rand.Rand, c nn.Config, n int) [][]int {
	out := make([][]int, n)
	for i := range out {
		s := make([]int, c.SeqLen+1)
		for j := range s {
			s[j] = rng.Intn(c.Vocab)
		}
		out[i] = s
	}
	return out
}

// runBoth executes the schedule in the pipeline runtime and sequentially on
// an identically seeded model, returning both models and losses.
func runBoth(t *testing.T, s *sched.Schedule, seed int64) (pipeLoss, seqLoss float64, pipeM, seqM *nn.Model) {
	t.Helper()
	c := cfg()
	rng := rand.New(rand.NewSource(seed))
	b := batch(rng, c, s.N)

	pipeM, err := nn.NewModel(c, seed)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(pipeM, s, b)
	if err != nil {
		t.Fatal(err)
	}
	pipeLoss, err = r.Run()
	if err != nil {
		t.Fatal(err)
	}

	seqM, err = nn.NewModel(c, seed)
	if err != nil {
		t.Fatal(err)
	}
	seqLoss, err = seqM.TrainSequential(b, s.S)
	if err != nil {
		t.Fatal(err)
	}
	return pipeLoss, seqLoss, pipeM, seqM
}

func assertEquivalent(t *testing.T, s *sched.Schedule, seed int64) {
	t.Helper()
	pipeLoss, seqLoss, pipeM, seqM := runBoth(t, s, seed)
	if math.Abs(pipeLoss-seqLoss) > 1e-5 {
		t.Errorf("%s: pipeline loss %.8f != sequential %.8f", s, pipeLoss, seqLoss)
	}
	pg, sg := pipeM.Grads(), seqM.Grads()
	for name, ref := range sg {
		if d := tensor.MaxAbsDiff(ref, pg[name]); d > 1e-4 {
			t.Errorf("%s: grad %s differs by %g", s, name, d)
		}
	}
}

// TestEverySchedulerMatchesSequential is the artifact-E0-style functionality
// check: pipelined execution under every scheduler produces the gradients
// of sequential execution.
func TestEverySchedulerMatchesSequential(t *testing.T) {
	type build struct {
		name string
		s    func() (*sched.Schedule, error)
	}
	builds := []build{
		{"gpipe", func() (*sched.Schedule, error) { return sched.GPipe(4, 3, nil) }},
		{"dapple", func() (*sched.Schedule, error) { return sched.DAPPLE(4, 5, nil) }},
		{"vpp", func() (*sched.Schedule, error) { return sched.VPP(4, 2, 4, nil) }},
		{"hanayo", func() (*sched.Schedule, error) { return sched.Hanayo(4, 4, nil) }},
		{"terapipe", func() (*sched.Schedule, error) { return sched.TeraPipe(4, 2, 3, nil) }},
		{"zb1p", func() (*sched.Schedule, error) { return sched.ZB1P(4, 4, nil) }},
		{"zbv", func() (*sched.Schedule, error) { return sched.ZBV(4, 3, nil) }},
		{"svpp", func() (*sched.Schedule, error) {
			return sched.SVPP(sched.SVPPOptions{P: 4, V: 1, S: 2, N: 3, Reschedule: true})
		}},
		{"svpp-v2", func() (*sched.Schedule, error) {
			return sched.SVPP(sched.SVPPOptions{P: 4, V: 2, S: 2, N: 3, Reschedule: true})
		}},
		{"mepipe", func() (*sched.Schedule, error) { return sched.MEPipe(4, 1, 2, 3, 0, 5, nil) }},
		{"mepipe-v2", func() (*sched.Schedule, error) { return sched.MEPipe(4, 2, 2, 3, 0, 3, nil) }},
		{"mepipe-minmem", func() (*sched.Schedule, error) { return sched.MEPipe(4, 1, 4, 3, 4, 7, nil) }},
	}
	for _, b := range builds {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			s, err := b.s()
			if err != nil {
				t.Fatal(err)
			}
			assertEquivalent(t, s, 31)
		})
	}
}

// TestSVPPPropertyEquivalence: random SVPP shapes and knobs, always
// gradient-equivalent to sequential execution.
func TestSVPPPropertyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		p := rng.Intn(4) + 1
		v := rng.Intn(2) + 1
		for p*v > 8 {
			v = 1
		}
		sOpt := []int{1, 2, 4, 8}[rng.Intn(4)]
		n := rng.Intn(4) + 1
		f := rng.Intn(v*sOpt*p+1) + 1
		split := rng.Intn(2) == 0
		pieces := 0
		if split {
			pieces = rng.Intn(6) + 1
		}
		sch, err := sched.SVPP(sched.SVPPOptions{
			P: p, V: v, S: sOpt, N: n, F: f,
			Reschedule: rng.Intn(2) == 0,
			Split:      split, FineGrainedW: pieces,
		})
		if err != nil {
			t.Fatalf("trial %d (p=%d v=%d s=%d n=%d f=%d): %v", trial, p, v, sOpt, n, f, err)
		}
		assertEquivalent(t, sch, int64(trial))
	}
}

// TestPipelinedTrainingConverges drives several full optimizer steps through
// the MEPipe schedule and checks the loss decreases — real slice-level
// pipelined training end to end.
func TestPipelinedTrainingConverges(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewSource(5))
	b := batch(rng, c, 3)
	m, err := nn.NewModel(c, 17)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.MEPipe(4, 1, 2, 3, 0, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	var first, last float64
	for step := 0; step < 10; step++ {
		m.ZeroGrads()
		r, err := New(m, s, b)
		if err != nil {
			t.Fatal(err)
		}
		loss, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
		m.SGDStep(0.05)
	}
	if last >= first {
		t.Errorf("pipelined training did not converge: %.4f -> %.4f", first, last)
	}
}

func TestNewValidation(t *testing.T) {
	c := cfg()
	m, _ := nn.NewModel(c, 1)
	s, _ := sched.DAPPLE(4, 3, nil)
	rng := rand.New(rand.NewSource(2))
	if _, err := New(m, s, batch(rng, c, 2)); err == nil {
		t.Error("micro-batch count mismatch accepted")
	}
	short := batch(rng, c, 3)
	short[1] = short[1][:3]
	if _, err := New(m, s, short); err == nil {
		t.Error("short sample accepted")
	}
	deep, _ := sched.VPP(4, 3, 4, nil) // 12 chunks > 8 layers
	if _, err := New(m, deep, batch(rng, c, 4)); err == nil {
		t.Error("more chunks than layers accepted")
	}
	bad, _ := sched.TeraPipe(2, 3, 2, nil) // 8 tokens not divisible by 3
	if _, err := New(m, bad, batch(rng, c, 2)); err == nil {
		t.Error("indivisible slices accepted")
	}
}

// TestSingleStageDegenerate: p=1 with multiple chunks exercises the local
// stash hand-off path.
func TestSingleStageDegenerate(t *testing.T) {
	s, err := sched.Generate(sched.GenOptions{
		Name: "p1v2", P: 1, V: 2, S: 2, N: 2,
		Place: sched.RoundRobin{P: 1, V: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, s, 77)
}

// TestNetworkTransportEquivalence: the same schedules over net.Pipe and TCP
// loopback links must compute the sequential gradients too — the execution
// logic is transport-independent.
func TestNetworkTransportEquivalence(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewSource(2024))
	s, err := sched.MEPipe(4, 1, 2, 3, 0, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := batch(rng, c, s.N)
	seq, err := nn.NewModel(c, 66)
	if err != nil {
		t.Fatal(err)
	}
	seqLoss, err := seq.TrainSequential(b, s.S)
	if err != nil {
		t.Fatal(err)
	}
	run := func(name string, exec func(*Runner) (float64, error)) {
		m, err := nn.NewModel(c, 66)
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(m, s, b)
		if err != nil {
			t.Fatal(err)
		}
		loss, err := exec(r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(loss-seqLoss) > 1e-5 {
			t.Errorf("%s: loss %.8f != sequential %.8f", name, loss, seqLoss)
		}
		sg, pg := seq.Grads(), m.Grads()
		for gname, g := range sg {
			if d := tensor.MaxAbsDiff(g, pg[gname]); d > 1e-4 {
				t.Errorf("%s: grad %s differs by %g", name, gname, d)
			}
		}
	}
	run("pipes", (*Runner).RunOverPipes)
	run("tcp", (*Runner).RunOverTCP)
}

// TestFrameCodecRoundTrip exercises the wire format directly.
func TestFrameCodecRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	rng := rand.New(rand.NewSource(8))
	want := tensor.New(3, 5)
	want.RandInit(rng, 1)
	edge := edgeKey{stage: 2, op: sched.Op{Kind: sched.BAct, Micro: 7, Slice: 1, Chunk: 3, Piece: 4}}
	go func() {
		w := bufio.NewWriter(a)
		if err := writeFrame(w, 5, edge, want); err != nil {
			t.Error(err)
		}
	}()
	gotIter, gotEdge, got, err := readFrame(bufio.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if gotIter != 5 || gotEdge != edge {
		t.Errorf("round trip: iter %d edge %+v, want 5 %+v", gotIter, gotEdge, edge)
	}
	if d := tensor.MaxAbsDiff(got, want); d != 0 {
		t.Errorf("tensor round trip differs by %g", d)
	}
}

// TestPipelineDeterministic: two identical runs produce bitwise-identical
// losses and gradients despite goroutine scheduling (each stage's work is
// fully ordered by its schedule, so float op order is fixed).
func TestPipelineDeterministic(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewSource(404))
	s, err := sched.MEPipe(4, 1, 2, 3, 0, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := batch(rng, c, s.N)
	run := func() (float64, *nn.Model) {
		m, err := nn.NewModel(c, 12)
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(m, s, b)
		if err != nil {
			t.Fatal(err)
		}
		loss, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return loss, m
	}
	l1, m1 := run()
	l2, m2 := run()
	if l1 != l2 {
		t.Fatalf("losses differ across identical runs: %v vs %v", l1, l2)
	}
	g1, g2 := m1.Grads(), m2.Grads()
	for name, g := range g1 {
		if d := tensor.MaxAbsDiff(g, g2[name]); d != 0 {
			t.Errorf("grad %s nondeterministic (diff %g)", name, d)
		}
	}
}

// TestPipelinedRecompute: activation recomputation composes with the full
// MEPipe schedule in the goroutine runtime.
func TestPipelinedRecompute(t *testing.T) {
	s, err := sched.MEPipe(4, 1, 2, 3, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg()
	rng := rand.New(rand.NewSource(55))
	b := batch(rng, c, s.N)
	lean, _ := nn.NewModel(c, 21)
	lean.LeanActivations = true
	r, err := New(lean, s, b)
	if err != nil {
		t.Fatal(err)
	}
	leanLoss, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := nn.NewModel(c, 21)
	refLoss, err := ref.TrainSequential(b, s.S)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(leanLoss-refLoss) > 1e-6 {
		t.Errorf("recomputing pipeline loss %v != sequential %v", leanLoss, refLoss)
	}
	rg, lg := ref.Grads(), lean.Grads()
	for name, g := range rg {
		if d := tensor.MaxAbsDiff(g, lg[name]); d > 1e-4 {
			t.Errorf("grad %s differs by %g", name, d)
		}
	}
}
