package pipeline

import "time"

// Clock supplies the runtime's wall-clock readings: the trace time base
// and every span timestamp flow through it. The default is the real
// clock; tests pin it with WithClock to make trace timestamps
// deterministic.
//
// This file is the package's only wall-clock access point — mepipe-lint's
// determinism rule forbids time.Now/time.Since elsewhere in the runtime,
// and the allowlist entry for this file is the single audited exception.
type Clock func() time.Time

// realClock is the production clock.
func realClock() time.Time { return time.Now() }

// after is the runtime's single timer construction point, used by the
// retry backoff. It returns the timer's channel and its Stop method;
// keeping the time.NewTimer call in this audited file means the
// determinism rule's timer check covers the rest of the package.
func after(d time.Duration) (<-chan time.Time, func() bool) {
	t := time.NewTimer(d)
	return t.C, t.Stop
}

// WithClock replaces the runner's wall-clock source and returns the
// receiver. A nil clock restores the real one.
func (r *Runner) WithClock(c Clock) *Runner {
	if c == nil {
		c = realClock
	}
	r.clock = c
	return r
}
