package pipeline

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"mepipe/internal/sched"
	"mepipe/internal/tensor"
)

// Network transport: the same pipeline runtime, but stage-to-stage tensors
// travel over real net.Conn links (framed binary messages) instead of
// in-process channels — the shape of an actual multi-host deployment. A
// demultiplexer per link decodes incoming frames and feeds the runner's
// existing per-edge channels, so the execution logic is identical and the
// gradient-equivalence guarantees carry over unchanged.

// wire is one stage's outgoing half-links, keyed by peer stage.
type wire struct {
	out map[int]*bufio.Writer
}

// writeFrame encodes (iteration, consumer edge, tensor) onto w. The caller
// owns w exclusively (one writer goroutine per link end), so no locking is
// needed. The iteration tag lets multi-step training share one connection:
// a frame is routed to the runner executing that step.
func writeFrame(w *bufio.Writer, iter int, e edgeKey, m *tensor.Matrix) error {
	hdr := []int32{
		int32(iter),
		int32(e.stage), int32(e.op.Kind), int32(e.op.Micro), int32(e.op.Slice),
		int32(e.op.Chunk), int32(e.op.Piece), int32(m.Rows), int32(m.Cols),
	}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, m.Data); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame decodes one message.
func readFrame(r *bufio.Reader) (int, edgeKey, *tensor.Matrix, error) {
	var hdr [9]int32
	for i := range hdr {
		if err := binary.Read(r, binary.LittleEndian, &hdr[i]); err != nil {
			return 0, edgeKey{}, nil, err
		}
	}
	e := edgeKey{
		stage: int(hdr[1]),
		op: sched.Op{
			Kind: sched.Kind(hdr[2]), Micro: int(hdr[3]), Slice: int(hdr[4]),
			Chunk: int(hdr[5]), Piece: int(hdr[6]),
		},
	}
	m := tensor.New(int(hdr[7]), int(hdr[8]))
	if err := binary.Read(r, binary.LittleEndian, m.Data); err != nil {
		return 0, edgeKey{}, nil, err
	}
	return int(hdr[0]), e, m, nil
}

// stagePairs returns the unordered stage pairs that exchange tensors.
func (r *Runner) stagePairs() map[[2]int]bool {
	pairs := map[[2]int]bool{}
	var deps []sched.Dep
	for k, ops := range r.s.Stages {
		for _, op := range ops {
			deps = r.s.Deps(deps[:0], k, op)
			for _, d := range deps {
				if d.Stage == k {
					continue
				}
				a, b := d.Stage, k
				if a > b {
					a, b = b, a
				}
				pairs[[2]int{a, b}] = true
			}
		}
	}
	return pairs
}

// RunOverLinks executes the schedule with cross-stage traffic flowing over
// the provided duplex links: dial(a, b) must return the two ends of a
// connection between stages a < b (net.Pipe for in-memory, a TCP loopback
// pair for sockets). Returns the mean loss, exactly like Runner.Run.
func (r *Runner) RunOverLinks(dial func(a, b int) (net.Conn, net.Conn, error)) (float64, error) {
	wires := make([]wire, r.s.P)
	for k := range wires {
		wires[k].out = map[int]*bufio.Writer{}
	}
	var conns []net.Conn
	var demux sync.WaitGroup
	for pair := range r.stagePairs() {
		a, b := pair[0], pair[1]
		ca, cb, err := dial(a, b)
		if err != nil {
			return 0, fmt.Errorf("pipeline: linking stages %d-%d: %w", a, b, err)
		}
		conns = append(conns, ca, cb)
		wires[a].out[b] = bufio.NewWriter(ca)
		wires[b].out[a] = bufio.NewWriter(cb)
		for _, end := range []net.Conn{ca, cb} {
			c := end
			spawn(&demux, func() {
				br := bufio.NewReader(c)
				for {
					_, e, m, err := readFrame(br)
					if err != nil {
						return // link closed after the iteration
					}
					r.recv[e] <- m
				}
			})
		}
	}
	r.wires = wires
	defer func() {
		r.wires = nil
		for _, c := range conns {
			c.Close()
		}
		demux.Wait()
	}()
	return r.Run()
}

// RunOverPipes is RunOverLinks with in-memory net.Pipe links.
func (r *Runner) RunOverPipes() (float64, error) {
	return r.RunOverLinks(func(a, b int) (net.Conn, net.Conn, error) {
		ca, cb := net.Pipe()
		return ca, cb, nil
	})
}

// RunOverTCP is RunOverLinks with loopback TCP sockets.
func (r *Runner) RunOverTCP() (float64, error) {
	return r.RunOverLinks(func(a, b int) (net.Conn, net.Conn, error) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		defer l.Close()
		type accepted struct {
			c   net.Conn
			err error
		}
		ch := make(chan accepted, 1)
		spawn(nil, func() {
			c, err := l.Accept()
			ch <- accepted{c, err}
		})
		out, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return nil, nil, err
		}
		in := <-ch
		if in.err != nil {
			out.Close()
			return nil, nil, in.err
		}
		return out, in.c, nil
	})
}

// sendWire frames one tensor onto the stage's link; transport failures
// surface through the stage's panic recovery in Run.
func (r *Runner) sendWire(from int, e edgeKey, m *tensor.Matrix) {
	w := r.wires[from].out[e.stage]
	if w == nil {
		panic(fmt.Sprintf("pipeline: no link from stage %d to %d", from, e.stage))
	}
	if err := writeFrame(w, r.iter, e, m); err != nil {
		panic(fmt.Sprintf("pipeline: sending %v to stage %d: %v", e.op, e.stage, err))
	}
}
