package pipeline

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"mepipe/internal/errs"
	"mepipe/internal/nn"
	"mepipe/internal/obs"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

// opID strips timing from an op event, leaving schedule identity.
type opID struct {
	kind                sched.Kind
	micro, slice, chunk int
	piece               int
}

func ids(evs []obs.Event) []opID {
	out := make([]opID, 0, len(evs))
	for _, e := range evs {
		out = append(out, opID{e.Op.Kind, e.Op.Micro, e.Op.Slice, e.Op.Chunk, e.Op.Piece})
	}
	return out
}

// TestSimAndRuntimeEmitSameOpEvents runs one schedule through both engines
// with a trace attached and checks they emit the same per-stage op-event
// sequences in the same dependency order, and the same set of cross-stage
// communication edges — the two tracing paths describe one execution.
func TestSimAndRuntimeEmitSameOpEvents(t *testing.T) {
	s, err := sched.SVPP(sched.SVPPOptions{P: 4, V: 1, S: 2, N: 4, Reschedule: true})
	if err != nil {
		t.Fatal(err)
	}

	simRec := obs.NewRecorder()
	if _, err := sim.Run(sim.Options{Sched: s, Costs: sim.Unit(), Trace: simRec}); err != nil {
		t.Fatal(err)
	}

	c := cfg()
	rng := rand.New(rand.NewSource(7))
	m, err := nn.NewModel(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(m, s, batch(rng, c, s.N))
	if err != nil {
		t.Fatal(err)
	}
	runRec := obs.NewRecorder()
	if _, err := r.WithTrace(runRec).Run(); err != nil {
		t.Fatal(err)
	}

	simTr, runTr := simRec.Trace(), runRec.Trace()
	if simTr.Stages != runTr.Stages {
		t.Fatalf("stage counts differ: sim %d, runtime %d", simTr.Stages, runTr.Stages)
	}
	for k := 0; k < simTr.Stages; k++ {
		simOps, runOps := ids(simTr.OpSpans(k)), ids(runTr.OpSpans(k))
		if len(simOps) != len(runOps) {
			t.Fatalf("stage %d: sim emitted %d op events, runtime %d", k, len(simOps), len(runOps))
		}
		for i := range simOps {
			if simOps[i] != runOps[i] {
				t.Errorf("stage %d op %d: sim %+v, runtime %+v", k, i, simOps[i], runOps[i])
			}
		}
	}

	// Cross-stage comm edges: same (consumer stage, producer stage, op).
	type commID struct {
		stage, from int
		op          opID
	}
	commSet := func(tr *obs.Trace) map[commID]int {
		out := map[commID]int{}
		for _, e := range tr.Events {
			if e.Kind == obs.EvComm {
				out[commID{e.Stage, e.From, opID{e.Op.Kind, e.Op.Micro, e.Op.Slice, e.Op.Chunk, e.Op.Piece}}]++
			}
		}
		return out
	}
	simComm, runComm := commSet(simTr), commSet(runTr)
	if len(simComm) != len(runComm) {
		t.Fatalf("comm edge counts differ: sim %d, runtime %d", len(simComm), len(runComm))
	}
	for id, n := range simComm {
		if runComm[id] != n {
			t.Errorf("comm edge %+v: sim %d, runtime %d", id, n, runComm[id])
		}
	}
}

// TestRunContextCancelled: cancelling mid-run unwinds every stage — even
// ones blocked on cross-stage receives — returns an error wrapping
// errs.ErrCancelled, and leaves no goroutines behind.
func TestRunContextCancelled(t *testing.T) {
	s, err := sched.SVPP(sched.SVPPOptions{P: 4, V: 1, S: 2, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := cfg()
	rng := rand.New(rand.NewSource(3))
	m, err := nn.NewModel(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(m, s, batch(rng, c, s.N))
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // every stage sees a dead context at its first op or receive
	if _, err := r.RunContext(ctx); !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("RunContext = %v, want ErrCancelled", err)
	}
	waitForGoroutines(t, before)
}

func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}
