package pipeline

import (
	"math/rand"
	"testing"
	"time"

	"mepipe/internal/nn"
	"mepipe/internal/obs"
	"mepipe/internal/sched"
)

// TestWithClockPinsTraceTimestamps pins the runner's Clock seam to a
// frozen instant and checks every emitted span carries an exactly-zero
// timestamp, identically across runs — the property that lets the
// determinism lint banish time.Now from the runtime: all wall-clock
// readings flow through the seam, so substituting the clock substitutes
// every timestamp.
func TestWithClockPinsTraceTimestamps(t *testing.T) {
	s, err := sched.SVPP(sched.SVPPOptions{P: 2, V: 1, S: 2, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Unix(1_700_000_000, 0)
	frozen := func() time.Time { return epoch }

	run := func() []obs.Event {
		c := cfg()
		rng := rand.New(rand.NewSource(11))
		m, err := nn.NewModel(c, 11)
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(m, s, batch(rng, c, s.N))
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.NewRecorder()
		if _, err := r.WithClock(frozen).WithTrace(rec).Run(); err != nil {
			t.Fatal(err)
		}
		return rec.Trace().Events
	}

	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("no events emitted")
	}
	for _, e := range first {
		if e.Start != 0 || e.End != 0 {
			t.Fatalf("frozen clock leaked a non-zero timestamp: %+v", e)
		}
	}
	if len(first) != len(second) {
		t.Fatalf("event counts differ across runs: %d vs %d", len(first), len(second))
	}

	// A nil clock restores the real one.
	r := &Runner{}
	if r.WithClock(nil); r.clock == nil {
		t.Fatal("WithClock(nil) left the clock unset")
	}
}
