// Package pipeline executes generated schedules on a real (tiny) decoder:
// one goroutine per pipeline stage, channels as inter-stage links, actual
// float32 tensors as payloads. It is the correctness half of the
// reproduction — a schedule is right iff pipelined execution produces the
// same loss and gradients as sequential execution, for every scheduler
// (GPipe, DAPPLE, VPP, TeraPipe, ZB, SVPP/MEPipe) including fine-grained
// weight-gradient pieces executed out of order in bubbles.
//
// Each stage owns the layers of its model chunks; tensors cross stages over
// buffered channels created one-per-dependency-edge, so the blocking
// receive IS the dependency wait. Schedule validation (deadlock freedom)
// guarantees the goroutines always drain.
package pipeline

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mepipe/internal/errs"
	"mepipe/internal/nn"
	"mepipe/internal/obs"
	"mepipe/internal/sched"
	"mepipe/internal/tensor"
	"mepipe/internal/verify"
)

// famKey identifies an activation family.
type famKey struct{ micro, slice, chunk int }

// edgeKey identifies the consumer endpoint of a cross-stage tensor.
type edgeKey struct {
	stage int
	op    sched.Op
}

// Runner executes one iteration of a schedule over a model and batch.
type Runner struct {
	model *nn.Model
	s     *sched.Schedule
	batch [][]int

	chunkLayers [][]int // global chunk -> layer indices
	sliceTokens int

	recv  map[edgeKey]chan *tensor.Matrix
	sends map[edgeKey][]chan *tensor.Matrix
	// wires, when non-nil, routes cross-stage traffic over net.Conn links
	// instead of the in-process channels (see RunOverLinks).
	wires []wire
	// iter tags outgoing frames in multi-step runs (see StageLoop).
	iter int

	// ctx cancels blocking receives mid-iteration (RunContext); it is
	// context.Background for plain Run.
	ctx context.Context
	// trace, when non-nil, receives wall-clock op and comm events as the
	// stages execute (see WithTrace).
	trace obs.Sink
	// clock is the runtime's wall-clock source (see clock.go); t0 is the
	// clock origin of the run's trace timestamps.
	clock Clock
	t0    time.Time
	// kernels, when non-nil, is applied to the shared GEMM pool before the
	// stages start (see WithKernels).
	kernels *tensor.KernelConfig

	// Resilience (see resilience.go). hook and transport are the fault
	// injection seams; ckptEvery enables restore-and-replay recovery;
	// retry bounds transient-send backoff. failed is the run's failure
	// latch: closed (once) when a stage fails unrecoverably so every
	// blocked peer unwinds instead of deadlocking.
	hook      StageHook
	transport Transport
	ckptEvery int
	retry     RetryPolicy
	failed    chan struct{}
	failOnce  sync.Once
	failErr   error
}

// New certifies the schedule, validates shapes, and wires the channel
// fabric. Uncertified schedules — a dependency cycle, an incomplete op
// family, a cross-stage dependency with no sender — are rejected up
// front with an error wrapping errs.ErrUncertified rather than
// discovered as a deadlocked goroutine fleet at run time.
func New(m *nn.Model, s *sched.Schedule, batch [][]int) (*Runner, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if _, err := verify.Certify(s, verify.Options{}); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	if len(batch) != s.N {
		return nil, fmt.Errorf("pipeline: %d micro-batches for schedule with n=%d: %w", len(batch), s.N, errs.ErrIncompatible)
	}
	if m.Cfg.SeqLen%s.S != 0 {
		return nil, fmt.Errorf("pipeline: seq len %d not divisible by %d slices: %w", m.Cfg.SeqLen, s.S, errs.ErrIncompatible)
	}
	for i, sample := range batch {
		if len(sample) != m.Cfg.SeqLen+1 {
			return nil, fmt.Errorf("pipeline: sample %d has %d tokens, want %d: %w", i, len(sample), m.Cfg.SeqLen+1, errs.ErrIncompatible)
		}
	}
	chunks := s.TotalChunks()
	if m.Cfg.Layers < chunks {
		return nil, fmt.Errorf("pipeline: %d layers cannot fill %d chunks: %w", m.Cfg.Layers, chunks, errs.ErrIncompatible)
	}
	r := &Runner{
		model: m, s: s, batch: batch,
		sliceTokens: m.Cfg.SeqLen / s.S,
		recv:        map[edgeKey]chan *tensor.Matrix{},
		sends:       map[edgeKey][]chan *tensor.Matrix{},
		ctx:         context.Background(),
		clock:       realClock,
		retry:       DefaultRetry(),
		failed:      make(chan struct{}),
	}
	// Spread layers over global chunks as evenly as possible.
	r.chunkLayers = make([][]int, chunks)
	base, rem := m.Cfg.Layers/chunks, m.Cfg.Layers%chunks
	next := 0
	for c := 0; c < chunks; c++ {
		n := base
		if c < rem {
			n++
		}
		for i := 0; i < n; i++ {
			r.chunkLayers[c] = append(r.chunkLayers[c], next)
			next++
		}
	}
	// One channel per cross-stage data edge; W ops never cross stages.
	var deps []sched.Dep
	for k, ops := range s.Stages {
		for _, op := range ops {
			deps = s.Deps(deps[:0], k, op)
			for _, d := range deps {
				if d.Stage == k {
					continue
				}
				ch := make(chan *tensor.Matrix, 1)
				r.recv[edgeKey{k, op}] = ch
				prod := edgeKey{d.Stage, d.Op}
				r.sends[prod] = append(r.sends[prod], ch)
			}
		}
	}
	return r, nil
}

// stage is the per-goroutine execution state.
type stage struct {
	k int
	// sc is the stage's scratch arena; nil when checkpointing is enabled
	// (snapshots share activation references, so recycling would corrupt
	// replay) — the passes then fall back to plain allocation.
	sc *tensor.Scratch
	// layer states per (layer index, micro).
	layers map[int][]*nn.LayerState
	heads  []*nn.HeadState
	logits map[famKey]*tensor.Matrix
	tasks  map[famKey][]nn.WeightTask
	// stash holds tensors handed between chunks that live on the same
	// stage (e.g. single-stage pipelines with several chunks), keyed by
	// the consumer op. Program order guarantees the producer ran first.
	stash map[edgeKey]*tensor.Matrix
	loss  float64
	err   error
	// res is the stage's recovery state when checkpointing is enabled.
	res *resilience
	// rng is the stage's deterministic jitter source for retry backoff.
	rng *rand.Rand
}

// Run executes the schedule and returns the mean loss. Gradients accumulate
// into the model with the same normalisation as nn.Model.TrainSequential.
func (r *Runner) Run() (float64, error) {
	return r.RunContext(context.Background())
}

// WithTrace attaches a sink receiving wall-clock op spans and cross-stage
// transfer events as the stages execute, and returns the receiver. The sink
// must be safe for concurrent emission (obs.Recorder is). Runtime op spans
// include any time spent blocked on the op's input; that wait is also
// reported separately as a stall event. Op events carry the op's GEMM
// FLOPs and freshly-allocated bytes (both zero under checkpointing, where
// stages run without a scratch arena).
func (r *Runner) WithTrace(sink obs.Sink) *Runner {
	r.trace = sink
	return r
}

// WithKernels applies a GEMM kernel configuration (worker count, tile
// sizes) to the shared kernel pool when the run starts. Kernel parallelism
// never changes results: work is partitioned by destination-row ownership,
// so outputs are bitwise identical to serial execution.
func (r *Runner) WithKernels(cfg tensor.KernelConfig) *Runner {
	r.kernels = &cfg
	return r
}

// cancelPanic aborts a stage goroutine when the run's context is cancelled;
// the recover handler turns it into errs.ErrCancelled.
type cancelPanic struct{}

// abortPanic unwinds a stage blocked (or about to block) after another
// stage failed; the recover handler wraps it in errs.ErrStageFailed.
type abortPanic struct{}

// failPanic carries an unrecoverable stage failure from deep in the
// execution path to the goroutine's recover handler.
type failPanic struct {
	idx int
	op  sched.Op
	err error
}

func (f failPanic) String() string {
	return fmt.Sprintf("stage failure at op %d (%v): %v", f.idx, f.op, f.err)
}

// RunContext is Run with cancellation: when ctx is cancelled, every stage —
// including those blocked waiting for cross-stage tensors — unwinds, and
// the call returns an error wrapping errs.ErrCancelled with no goroutines
// left behind.
func (r *Runner) RunContext(ctx context.Context) (float64, error) {
	r.ctx = ctx
	r.t0 = r.clock()
	r.applyKernels()
	stages := make([]*stage, r.s.P)
	for k := range stages {
		stages[k] = r.newStage(k)
	}
	var wg sync.WaitGroup
	for k := 0; k < r.s.P; k++ {
		st := stages[k]
		spawn(&wg, func() { r.runStageGuarded(st) })
	}
	wg.Wait()
	for _, st := range stages {
		r.releaseStage(st)
	}
	if r.failErr != nil {
		return 0, r.failErr
	}
	total := 0.0
	for _, st := range stages {
		if st.err != nil {
			return 0, st.err
		}
		total += st.loss
	}
	return total, nil
}

// runStageGuarded is the latch-guarded body of one stage goroutine: it
// converts the stage's control-flow panics into classified errors and
// latches unrecoverable failures so every blocked peer unwinds.
func (r *Runner) runStageGuarded(st *stage) {
	defer func() {
		if p := recover(); p != nil {
			switch v := p.(type) {
			case cancelPanic:
				st.err = fmt.Errorf("pipeline: stage %d: %w", st.k, errs.ErrCancelled)
			case abortPanic:
				st.err = fmt.Errorf("pipeline: stage %d aborted after a peer stage failed: %w", st.k, errs.ErrStageFailed)
			case failPanic:
				st.err = &StageFailure{Stage: st.k, OpIndex: v.idx, Op: v.op, Err: v.err}
				r.fail(st.err)
			default:
				st.err = fmt.Errorf("pipeline: stage %d panicked: %v: %w", st.k, p, errs.ErrStageFailed)
				r.fail(st.err)
			}
			return
		}
		if st.err != nil {
			r.fail(st.err)
		}
	}()
	r.runStage(st)
}

// fail latches the run's first unrecoverable failure and releases every
// stage blocked on cross-stage traffic, guaranteeing all goroutines exit.
func (r *Runner) fail(err error) {
	r.failOnce.Do(func() {
		r.failErr = err
		close(r.failed)
	})
}

// checkAborted unwinds the calling stage if a peer already failed.
func (r *Runner) checkAborted() {
	select {
	case <-r.failed:
		panic(abortPanic{})
	default:
	}
}

// now returns seconds since the run started (by the runner's clock), the
// trace time base.
func (r *Runner) now() float64 { return r.clock().Sub(r.t0).Seconds() }

// newStage allocates the mutable execution state of one stage.
func (r *Runner) newStage(k int) *stage {
	st := &stage{
		k:      k,
		layers: map[int][]*nn.LayerState{},
		heads:  make([]*nn.HeadState, r.s.N),
		logits: map[famKey]*tensor.Matrix{},
		tasks:  map[famKey][]nn.WeightTask{},
		stash:  map[edgeKey]*tensor.Matrix{},
	}
	for c := 0; c < r.s.V; c++ {
		g := r.s.Place.Global(k, c)
		for _, li := range r.chunkLayers[g] {
			states := make([]*nn.LayerState, r.s.N)
			for m := range states {
				states[m] = nn.NewLayerState(r.model.Cfg)
			}
			st.layers[li] = states
		}
	}
	for m := range st.heads {
		st.heads[m] = nn.NewHeadState()
	}
	if r.ckptEvery > 0 {
		st.res = &resilience{every: r.ckptEvery}
	} else {
		st.sc = tensor.GrabScratch()
	}
	st.rng = rand.New(rand.NewSource(0x5eed + int64(k)))
	return st
}

// applyKernels installs the runner's kernel configuration on the shared
// pool, skipping the swap when it is already in effect (per-step runner
// construction must not churn worker pools).
func (r *Runner) applyKernels() {
	if r.kernels == nil {
		return
	}
	if want := tensor.NormalizeKernelConfig(*r.kernels); want != tensor.CurrentConfig() {
		tensor.Configure(want)
	}
}

// releaseStage returns the stage's arena to the shared pool.
func (r *Runner) releaseStage(st *stage) {
	tensor.ReleaseScratch(st.sc)
	st.sc = nil
}

func (r *Runner) runStage(st *stage) {
	ops := r.s.Stages[st.k]
	for i := 0; i < len(ops); i++ {
		op := ops[i]
		if r.ctx.Err() != nil {
			panic(cancelPanic{})
		}
		r.checkAborted()
		if st.res != nil && i >= st.res.replayUntil && i%st.res.every == 0 {
			r.checkpoint(st, i, op)
		}
		if r.hook != nil {
			if err := r.hook.BeforeOp(st.k, i, op); err != nil {
				i = r.recoverStage(st, i, op, err)
				continue
			}
		}
		start := r.now()
		before := st.sc.Stats()
		switch op.Kind {
		case sched.F:
			r.forward(st, op)
		case sched.B:
			r.backward(st, op, true)
		case sched.BAct:
			r.backward(st, op, false)
		case sched.W:
			r.weight(st, op, 0, 1)
		case sched.WPiece:
			r.weight(st, op, op.Piece, r.s.WPieces)
		}
		if st.err != nil {
			panic(failPanic{idx: i, op: op, err: st.err})
		}
		if r.trace != nil {
			cause := ""
			if st.res != nil && i < st.res.replayUntil {
				cause = "replay"
			}
			after := st.sc.Stats()
			r.trace.Emit(obs.Event{
				Kind: obs.EvOp, Stage: st.k, From: st.k, Op: op,
				Start: start, End: r.now(), Cause: cause,
				Bytes: after.AllocBytes - before.AllocBytes,
				FLOPs: after.FLOPs - before.FLOPs,
			})
		}
	}
}

// isFirst / isHead classify the op's global chunk.
func (r *Runner) global(st *stage, op sched.Op) int { return r.s.Place.Global(st.k, op.Chunk) }

func (r *Runner) forward(st *stage, op sched.Op) {
	g := r.global(st, op)
	start := op.Slice * r.sliceTokens
	var x *tensor.Matrix
	if g == 0 {
		tokens := r.batch[op.Micro][start : start+r.sliceTokens]
		x = r.model.Embed.Forward(st.sc, tokens)
	} else {
		x = r.receive(st, op)
	}
	for _, li := range r.chunkLayers[g] {
		if r.model.LeanActivations {
			x = r.model.Layers[li].ForwardSliceLean(st.sc, st.layers[li][op.Micro], x, start)
		} else {
			x = r.model.Layers[li].ForwardSlice(st.sc, st.layers[li][op.Micro], x, start)
		}
	}
	if g == r.s.TotalChunks()-1 {
		logits := r.model.Head.Forward(st.sc, x, st.heads[op.Micro], start)
		st.logits[famKey{op.Micro, op.Slice, op.Chunk}] = logits
		return
	}
	ns, nl := r.s.Place.Host(g + 1)
	consumer := sched.Op{Kind: sched.F, Micro: op.Micro, Slice: op.Slice, Chunk: nl}
	r.deliver(st, ns, consumer, op, x)
}

// receive obtains the op's cross-chunk input: a channel for cross-stage
// edges, the local stash otherwise. Channel waits select on the run
// context and the failure latch, so a cancelled RunContext — or a failed
// peer stage — unwinds stages blocked here. During restore-and-replay the
// input is served from the stage's receive log instead: the producer will
// not resend.
func (r *Runner) receive(st *stage, op sched.Op) *tensor.Matrix {
	key := edgeKey{st.k, op}
	if ch, ok := r.recv[key]; ok {
		if st.res != nil && st.res.replayIdx < len(st.res.recvLog) {
			x := st.res.recvLog[st.res.replayIdx]
			st.res.replayIdx++
			return x
		}
		waitFrom := 0.0
		if r.trace != nil {
			waitFrom = r.now()
		}
		var x *tensor.Matrix
		select {
		case x = <-ch:
		case <-r.ctx.Done():
			panic(cancelPanic{})
		case <-r.failed:
			panic(abortPanic{})
		}
		if st.res != nil {
			st.res.recvLog = append(st.res.recvLog, x)
			st.res.replayIdx = len(st.res.recvLog)
		}
		if r.trace != nil {
			r.traceArrival(st.k, op, waitFrom, x)
		}
		return x
	}
	x, ok := st.stash[key]
	if !ok {
		panic(fmt.Sprintf("pipeline: stage %d: no input for %v", st.k, op))
	}
	delete(st.stash, key)
	return x
}

// traceArrival emits the comm event for a tensor that just arrived for op,
// plus a stall event when the stage measurably blocked waiting for it.
func (r *Runner) traceArrival(k int, op sched.Op, waitFrom float64, x *tensor.Matrix) {
	now := r.now()
	from := k
	var deps []sched.Dep
	for _, d := range r.s.Deps(deps, k, op) {
		if d.Stage != k {
			from = d.Stage
			break
		}
	}
	r.trace.Emit(obs.Event{
		Kind: obs.EvComm, Stage: k, From: from, Op: op,
		Start: waitFrom, End: now, Bytes: int64(len(x.Data)) * 4,
	})
	if now > waitFrom {
		r.trace.Emit(obs.Event{
			Kind: obs.EvStall, Stage: k, From: k, Op: op,
			Start: waitFrom, End: now, Cause: "dep",
		})
	}
}

// deliver hands x to the consumer op on stage ns. Cross-stage deliveries
// run through the transport hook (with transient-failure retry) and are
// suppressed during replay when the original execution already delivered
// them — peers must not see a frame twice.
func (r *Runner) deliver(st *stage, ns int, consumer, producer sched.Op, x *tensor.Matrix) {
	if ns == st.k {
		st.stash[edgeKey{ns, consumer}] = x
		return
	}
	if st.res != nil {
		if st.res.sendSeq < st.res.sendHW {
			st.res.sendSeq++ // replay of an already-delivered frame
			return
		}
		st.res.sendSeq++
		st.res.sendHW++
	}
	r.sendRetrying(st, ns, producer)
	if r.wires != nil {
		r.sendWire(st.k, edgeKey{ns, consumer}, x)
		// The frame is serialised; the local buffer can be recycled.
		st.sc.Put(x)
		return
	}
	for i, ch := range r.sends[edgeKey{st.k, producer}] {
		out := x
		if i > 0 && st.sc != nil {
			// Ownership of x transfers to the first consumer (which will
			// recycle it); further consumers need their own copy.
			out = x.Clone()
		}
		select {
		case ch <- out:
		case <-r.ctx.Done():
			panic(cancelPanic{})
		case <-r.failed:
			panic(abortPanic{})
		}
	}
}

func (r *Runner) backward(st *stage, op sched.Op, fused bool) {
	g := r.global(st, op)
	start := op.Slice * r.sliceTokens
	fam := famKey{op.Micro, op.Slice, op.Chunk}
	var dy *tensor.Matrix
	var tasks []nn.WeightTask
	if g == r.s.TotalChunks()-1 {
		// Loss gradient: mean over slices and micro-batches, matching
		// the sequential reference.
		logits := st.logits[fam]
		delete(st.logits, fam)
		targets := r.batch[op.Micro][start+1 : start+r.sliceTokens+1]
		dLogits := st.sc.GetRaw(r.sliceTokens, r.model.Cfg.Vocab)
		norm := float64(r.s.S * r.s.N)
		st.loss += tensor.CrossEntropy(dLogits, logits, targets) / norm
		dLogits.Scale(float32(1 / norm))
		st.sc.Put(logits)
		dy, tasks = r.model.Head.Backward(st.sc, dLogits, st.heads[op.Micro], start, nil)
	} else {
		dy = r.receive(st, op)
	}
	layers := r.chunkLayers[g]
	for i := len(layers) - 1; i >= 0; i-- {
		li := layers[i]
		dy, tasks = r.model.Layers[li].BackwardSlice(st.sc, st.layers[li][op.Micro], start, dy, tasks)
	}
	if g == 0 {
		tokens := r.batch[op.Micro][start : start+r.sliceTokens]
		r.model.Embed.Backward(tokens, dy)
		st.sc.Put(dy)
	} else {
		ps, pl := r.s.Place.Host(g - 1)
		kind := sched.B
		if r.s.SplitBW {
			kind = sched.BAct
		}
		consumer := sched.Op{Kind: kind, Micro: op.Micro, Slice: op.Slice, Chunk: pl}
		r.deliver(st, ps, consumer, op, dy)
	}
	if fused {
		for _, t := range tasks {
			t.RunCounted(st.sc)
		}
		nn.Release(st.sc, tasks)
		return
	}
	st.tasks[fam] = tasks
}

// weight executes piece `p` of `of` of the family's deferred GEMMs (whole W
// runs all of them).
func (r *Runner) weight(st *stage, op sched.Op, p, of int) {
	fam := famKey{op.Micro, op.Slice, op.Chunk}
	tasks := st.tasks[fam]
	if tasks == nil {
		st.err = fmt.Errorf("pipeline: stage %d: weight op %v before its backward: %w", st.k, op, errs.ErrUncertified)
		return
	}
	lo := len(tasks) * p / of
	hi := len(tasks) * (p + 1) / of
	for _, t := range tasks[lo:hi] {
		t.RunCounted(st.sc)
	}
	if p == of-1 {
		// Last piece of the family: every task has run, so the buffers the
		// family retained (shared across pieces) can go back to the arena.
		nn.Release(st.sc, tasks)
		delete(st.tasks, fam)
	}
}
