package pipeline

import "sync"

// spawn is the package's only goroutine launch point: every goroutine the
// runtime creates goes through it, registered with a WaitGroup when the
// caller joins it (wg may be nil for demultiplexers whose lifetime is
// bounded by their connection). Concentrating the go statements here is
// what lets mepipe-lint's gospawn rule forbid raw `go func` anywhere else
// in the package — so every new concurrency path is forced past this
// chokepoint and its review: a spawned body must either be joined, or
// unwind through the runner's failure latch (see Runner.fail), so no code
// path can silently leak a goroutine that outlives its run.
func spawn(wg *sync.WaitGroup, fn func()) {
	if wg == nil {
		go fn()
		return
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		fn()
	}()
}
