package pipeline

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"

	"mepipe/internal/nn"
	"mepipe/internal/sched"
	"mepipe/internal/tensor"
)

// TestDataParallelMatchesSequential: DP replicas of the goroutine pipeline,
// gradients averaged, must equal sequential training over the whole batch
// (whose gradient is already the per-shard mean of means, since shards are
// equal-sized).
func TestDataParallelMatchesSequential(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewSource(123))
	const dp, nPerReplica = 2, 3
	b := batch(rng, c, dp*nPerReplica)

	ref, err := nn.NewModel(c, 55)
	if err != nil {
		t.Fatal(err)
	}
	refLoss, err := ref.TrainSequential(b, 2)
	if err != nil {
		t.Fatal(err)
	}

	proto, err := nn.NewModel(c, 55)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDataParallel(proto, dp)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.MEPipe(4, 1, 2, nPerReplica, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	loss, err := d.Run(s, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-refLoss) > 1e-5 {
		t.Errorf("DP loss %.8f != sequential %.8f", loss, refLoss)
	}
	rg := ref.Grads()
	for i, rep := range d.Replicas() {
		for name, g := range rep.Grads() {
			if diff := tensor.MaxAbsDiff(rg[name], g); diff > 1e-4 {
				t.Errorf("replica %d grad %s differs by %g", i, name, diff)
			}
		}
	}
}

// TestDataParallelStaysInSync: after StepAll the replicas remain
// weight-identical across several iterations.
func TestDataParallelStaysInSync(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewSource(321))
	proto, _ := nn.NewModel(c, 9)
	d, err := NewDataParallel(proto, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.DAPPLE(4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		if _, err := d.Run(s, batch(rng, c, 4)); err != nil {
			t.Fatal(err)
		}
		d.StepAll(0.05)
	}
	a, b2 := d.Replicas()[0], d.Replicas()[1]
	if diff := tensor.MaxAbsDiff(a.Embed.Table, b2.Embed.Table); diff != 0 {
		t.Errorf("replicas drifted: embedding diff %g", diff)
	}
	if diff := tensor.MaxAbsDiff(a.Layers[3].Wq.W, b2.Layers[3].Wq.W); diff != 0 {
		t.Errorf("replicas drifted: Wq diff %g", diff)
	}
}

func TestDataParallelValidation(t *testing.T) {
	proto, _ := nn.NewModel(cfg(), 1)
	if _, err := NewDataParallel(proto, 0); err == nil {
		t.Error("dp=0 accepted")
	}
	d, _ := NewDataParallel(proto, 2)
	s, _ := sched.DAPPLE(4, 2, nil)
	rng := rand.New(rand.NewSource(1))
	if _, err := d.Run(s, batch(rng, cfg(), 3)); err == nil {
		t.Error("unshardable batch accepted")
	}
}

// TestAdamConvergesFasterThanSGDFlat: Adam must reduce the loss on the tiny
// task (and, as a sanity check on the moment bookkeeping, behave
// deterministically across identical runs).
func TestAdamTraining(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewSource(77))
	b := batch(rng, c, 3)
	run := func() []float64 {
		m, _ := nn.NewModel(c, 4)
		opt := nn.NewAdam(0.01)
		var losses []float64
		for step := 0; step < 10; step++ {
			m.ZeroGrads()
			loss, err := m.TrainSequential(b, 2)
			if err != nil {
				t.Fatal(err)
			}
			losses = append(losses, loss)
			opt.Step(m)
		}
		return losses
	}
	l1, l2 := run(), run()
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("Adam nondeterministic at step %d: %v vs %v", i, l1[i], l2[i])
		}
	}
	if l1[len(l1)-1] >= l1[0] {
		t.Errorf("Adam did not reduce loss: %.4f -> %.4f", l1[0], l1[len(l1)-1])
	}
}

// TestStageWorkersMatchSequential runs each stage as an isolated worker
// with its OWN model copy (as separate processes would), connected by
// net.Pipe links — and verifies every worker's owned-layer gradients match
// sequential training. This is the multi-process deployment shape.
func TestStageWorkersMatchSequential(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewSource(808))
	s, err := sched.MEPipe(4, 1, 2, 3, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := batch(rng, c, s.N)

	// Independent model replicas, one per "process", same seed.
	workers := make([]*StageWorker, s.P)
	models := make([]*nn.Model, s.P)
	for k := 0; k < s.P; k++ {
		models[k], err = nn.NewModel(c, 77)
		if err != nil {
			t.Fatal(err)
		}
		workers[k], err = NewStageWorker(models[k], s, b, k)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Full mesh of pipes between peers.
	conns := make([]map[int]net.Conn, s.P)
	for k := range conns {
		conns[k] = map[int]net.Conn{}
	}
	for a := 0; a < s.P; a++ {
		for _, peer := range workers[a].Peers() {
			if peer < a {
				continue
			}
			ca, cb := net.Pipe()
			conns[a][peer] = ca
			conns[peer][a] = cb
		}
	}
	losses := make([]float64, s.P)
	errs := make([]error, s.P)
	var wg sync.WaitGroup
	for k := 0; k < s.P; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			losses[k], errs[k] = workers[k].Run(conns[k])
		}(k)
	}
	wg.Wait()
	for k := range conns {
		for _, cn := range conns[k] {
			cn.Close()
		}
	}
	total := 0.0
	for k, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", k, err)
		}
		total += losses[k]
	}

	ref, _ := nn.NewModel(c, 77)
	refLoss, err := ref.TrainSequential(b, s.S)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-refLoss) > 1e-6 {
		t.Errorf("workers' loss %v != sequential %v", total, refLoss)
	}
	rg := ref.Grads()
	for k, w := range workers {
		for _, li := range w.OwnedLayers() {
			for _, name := range []string{"Wq", "Wk", "Wv", "Wo", "Wg", "Wu", "Wd"} {
				key := fmt.Sprintf("l%d.%s", li, name)
				got := models[k].Grads()[key]
				if d := tensor.MaxAbsDiff(rg[key], got); d > 1e-4 {
					t.Errorf("worker %d layer %d %s: grad differs by %g", k, li, name, d)
				}
			}
		}
	}
	// The first worker also owns the embedding gradient; the last the head.
	if d := tensor.MaxAbsDiff(rg["embed"], models[0].Grads()["embed"]); d > 1e-4 {
		t.Errorf("embedding grad differs by %g", d)
	}
	if d := tensor.MaxAbsDiff(rg["head.W"], models[s.P-1].Grads()["head.W"]); d > 1e-4 {
		t.Errorf("head grad differs by %g", d)
	}
}

// TestStageLoopMultiStep: multi-step distributed training (each stage its
// own model replica, stepping only its own layers) tracks single-process
// training exactly — including weight evolution.
func TestStageLoopMultiStep(t *testing.T) {
	c := cfg()
	rng := rand.New(rand.NewSource(909))
	s, err := sched.MEPipe(4, 1, 2, 3, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 4
	const lr = 0.05
	batches := make([][][]int, steps)
	for i := range batches {
		batches[i] = batch(rng, c, s.N)
	}

	// Reference: single-process sequential training.
	ref, _ := nn.NewModel(c, 31)
	refLosses := make([]float64, steps)
	for i := range batches {
		ref.ZeroGrads()
		loss, err := ref.TrainSequential(batches[i], s.S)
		if err != nil {
			t.Fatal(err)
		}
		refLosses[i] = loss
		ref.SGDStep(lr)
	}

	// Distributed: one loop per stage, independent model replicas.
	loops := make([]*StageLoop, s.P)
	models := make([]*nn.Model, s.P)
	for k := 0; k < s.P; k++ {
		models[k], _ = nn.NewModel(c, 31)
		loops[k], err = NewStageLoop(models[k], s, k)
		if err != nil {
			t.Fatal(err)
		}
	}
	conns := make([]map[int]net.Conn, s.P)
	for k := range conns {
		conns[k] = map[int]net.Conn{}
	}
	for a := 0; a < s.P; a++ {
		for b := a + 1; b < s.P; b++ {
			ca, cb := net.Pipe()
			conns[a][b] = ca
			conns[b][a] = cb
		}
	}
	lossesPer := make([][]float64, s.P)
	errs := make([]error, s.P)
	var wg sync.WaitGroup
	for k := 0; k < s.P; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			lossesPer[k], errs[k] = loops[k].RunSteps(conns[k], batches, lr)
		}(k)
	}
	wg.Wait()
	for k := range conns {
		for _, cn := range conns[k] {
			cn.Close()
		}
	}
	for k, err := range errs {
		if err != nil {
			t.Fatalf("stage %d: %v", k, err)
		}
	}
	for i := 0; i < steps; i++ {
		total := 0.0
		for k := 0; k < s.P; k++ {
			total += lossesPer[k][i]
		}
		if math.Abs(total-refLosses[i]) > 1e-5 {
			t.Errorf("step %d: distributed loss %.8f != sequential %.8f", i, total, refLosses[i])
		}
	}
	// Owned weights must match the reference after all steps.
	for k := 0; k < s.P; k++ {
		w, _ := NewStageWorker(models[k], s, batches[0], k)
		for _, li := range w.OwnedLayers() {
			if d := tensor.MaxAbsDiff(ref.Layers[li].Wq.W, models[k].Layers[li].Wq.W); d > 1e-5 {
				t.Errorf("stage %d layer %d Wq weights diverged by %g", k, li, d)
			}
		}
	}
}

func TestStageWorkerValidation(t *testing.T) {
	c := cfg()
	m, _ := nn.NewModel(c, 1)
	s, _ := sched.DAPPLE(4, 2, nil)
	b := batch(rand.New(rand.NewSource(1)), c, 2)
	if _, err := NewStageWorker(m, s, b, 4); err == nil {
		t.Error("out-of-range stage accepted")
	}
	if _, err := NewStageLoop(m, s, -1); err == nil {
		t.Error("negative stage accepted")
	}
	w, err := NewStageWorker(m, s, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Stage 1 of a 4-deep DAPPLE pipeline talks to stages 0 and 2.
	peers := w.Peers()
	if len(peers) != 2 {
		t.Fatalf("stage 1 peers = %v, want 2 of them", peers)
	}
	if _, err := w.Run(map[int]net.Conn{}); err == nil {
		t.Error("missing connections accepted")
	}
	if got := w.Stage(); got != 1 {
		t.Errorf("Stage() = %d", got)
	}
	if layers := w.OwnedLayers(); len(layers) != 2 { // 8 layers / 4 stages
		t.Errorf("stage 1 owns %v, want 2 layers", layers)
	}
}
