package pipeline

import (
	"fmt"
	"sync"

	"mepipe/internal/errs"
	"mepipe/internal/nn"
	"mepipe/internal/sched"
	"mepipe/internal/tensor"
)

// DataParallel composes data parallelism with the pipelined runtime: each
// replica runs the same schedule over its shard of the micro-batches on its
// own weight copy, and the gradients are all-reduced (averaged) afterwards
// — the ZeRO-1-style DP dimension of the paper's strategies, realised with
// goroutine pipelines instead of GPU ranks.
type DataParallel struct {
	replicas []*nn.Model
}

// NewDataParallel clones the reference model dp times. The clones share the
// seed-derived weights of ref (exact copies), so training stays
// deterministic.
func NewDataParallel(ref *nn.Model, dp int) (*DataParallel, error) {
	if dp < 1 {
		return nil, fmt.Errorf("pipeline: dp %d must be >= 1: %w", dp, errs.ErrIncompatible)
	}
	d := &DataParallel{}
	for i := 0; i < dp; i++ {
		clone, err := nn.NewModel(ref.Cfg, 0)
		if err != nil {
			return nil, err
		}
		copyWeights(clone, ref)
		d.replicas = append(d.replicas, clone)
	}
	return d, nil
}

// Replicas exposes the per-replica models (after Run every replica holds
// the averaged gradients).
func (d *DataParallel) Replicas() []*nn.Model { return d.replicas }

// StepAll applies the same SGD step to every replica; because the gradients
// were averaged, the replicas stay weight-identical.
func (d *DataParallel) StepAll(lr float32) {
	for _, m := range d.replicas {
		m.SGDStep(lr)
	}
}

// Run executes one iteration: the batch is split evenly across replicas
// (len(batch) must be dp × schedule n), each replica runs the schedule
// concurrently, and gradients are averaged into every replica. Returns the
// mean loss across replicas.
func (d *DataParallel) Run(s *sched.Schedule, batch [][]int) (float64, error) {
	dp := len(d.replicas)
	if len(batch)%dp != 0 {
		return 0, fmt.Errorf("pipeline: %d samples do not shard across dp=%d: %w", len(batch), dp, errs.ErrIncompatible)
	}
	per := len(batch) / dp
	losses := make([]float64, dp)
	runErrs := make([]error, dp)
	var wg sync.WaitGroup
	for i := range d.replicas {
		i := i
		spawn(&wg, func() {
			d.replicas[i].ZeroGrads()
			r, err := New(d.replicas[i], s, batch[i*per:(i+1)*per])
			if err != nil {
				runErrs[i] = err
				return
			}
			losses[i], runErrs[i] = r.Run()
		})
	}
	wg.Wait()
	for _, err := range runErrs {
		if err != nil {
			return 0, err
		}
	}
	d.allReduceGrads()
	total := 0.0
	for _, l := range losses {
		total += l
	}
	return total / float64(dp), nil
}

// allReduceGrads averages every gradient across replicas and writes the
// result back to all of them (a ring all-reduce's outcome, computed
// centrally).
func (d *DataParallel) allReduceGrads() {
	if len(d.replicas) == 1 {
		return
	}
	grads := make([]map[string]*tensor.Matrix, len(d.replicas))
	for i, m := range d.replicas {
		grads[i] = m.Grads()
	}
	inv := float32(1.0 / float64(len(d.replicas)))
	for name, g0 := range grads[0] {
		for i := 1; i < len(d.replicas); i++ {
			g0.Add(grads[i][name])
		}
		g0.Scale(inv)
		for i := 1; i < len(d.replicas); i++ {
			grads[i][name].CopyFrom(g0)
		}
	}
	// Norm-scale gradients travel outside Grads(); average them too.
	for li := range d.replicas[0].Layers {
		avgVec(d.replicas, func(m *nn.Model) []float32 { return m.Layers[li].DAttnNorm })
		avgVec(d.replicas, func(m *nn.Model) []float32 { return m.Layers[li].DMLPNorm })
	}
	avgVec(d.replicas, func(m *nn.Model) []float32 { return m.Head.DNorm })
}

func avgVec(models []*nn.Model, sel func(*nn.Model) []float32) {
	base := sel(models[0])
	for i := 1; i < len(models); i++ {
		for j, v := range sel(models[i]) {
			base[j] += v
		}
	}
	inv := float32(1.0 / float64(len(models)))
	for j := range base {
		base[j] *= inv
	}
	for i := 1; i < len(models); i++ {
		copy(sel(models[i]), base)
	}
}

// copyWeights copies all parameters from src into dst.
func copyWeights(dst, src *nn.Model) {
	dst.Embed.Table.CopyFrom(src.Embed.Table)
	for i := range src.Layers {
		s, t := src.Layers[i], dst.Layers[i]
		t.Wq.W.CopyFrom(s.Wq.W)
		t.Wk.W.CopyFrom(s.Wk.W)
		t.Wv.W.CopyFrom(s.Wv.W)
		t.Wo.W.CopyFrom(s.Wo.W)
		t.Wg.W.CopyFrom(s.Wg.W)
		t.Wu.W.CopyFrom(s.Wu.W)
		t.Wd.W.CopyFrom(s.Wd.W)
		copy(t.AttnNorm, s.AttnNorm)
		copy(t.MLPNorm, s.MLPNorm)
	}
	dst.Head.W.W.CopyFrom(src.Head.W.W)
	copy(dst.Head.Norm, src.Head.Norm)
}
