package pipeline

// Resilient execution: the runtime survives injected (or real) stage
// faults instead of deadlocking the iteration. Three mechanisms compose:
//
//   - failure propagation — the first stage to fail closes the run's
//     failure latch; every other stage, including those blocked on
//     cross-stage tensors, unwinds with an error wrapping
//     errs.ErrStageFailed. No goroutine is ever left behind.
//   - bounded retry — cross-stage sends consult an injectable Transport;
//     transient errors (errs.ErrTransient) are retried with exponential
//     backoff plus deterministic per-stage jitter before escalating.
//   - restore-and-replay — with checkpointing enabled, each stage
//     snapshots its mutable state (activations, accumulated gradients,
//     deferred weight tasks, loss) every CheckpointEvery ops, logs
//     tensors received since, and counts frames sent. A crash restores
//     the snapshot and re-executes the lost ops: logged receives are
//     served from the log, already-delivered sends are suppressed, so
//     peers never observe the recovery and the iteration's loss and
//     gradients are bit-identical to an undisturbed run.
//
// Every op processes one sequence slice, so op boundaries are the slice
// boundaries §9's in-memory checkpointing acts at.

import (
	"errors"
	"fmt"
	"time"

	"mepipe/internal/errs"
	"mepipe/internal/nn"
	"mepipe/internal/obs"
	"mepipe/internal/sched"
	"mepipe/internal/tensor"
)

// StageHook observes (and may veto) op execution: BeforeOp runs on the
// stage's goroutine immediately before the index'th op. Returning an error
// fails the op's stage — the runtime then restores the stage's last
// checkpoint and replays, or, without one, fails the iteration with a
// *StageFailure. Fault injectors (internal/chaos) implement this.
type StageHook interface {
	BeforeOp(stage, index int, op sched.Op) error
}

// Transport intercepts cross-stage tensor deliveries: Send runs before
// each delivery attempt of producer op's output from stage `from` to
// stage `to`. Returning an error wrapping errs.ErrTransient makes the
// runtime retry with backoff; any other error fails the sending stage.
// Implementations may also sleep to model slow links.
type Transport interface {
	Send(from, to int, op sched.Op, attempt int) error
}

// RetryPolicy bounds the runtime's handling of transient send failures.
type RetryPolicy struct {
	// MaxAttempts is the total number of delivery attempts per frame.
	MaxAttempts int
	// Base and Cap bound the exponential backoff between attempts; the
	// actual wait is jittered to [0.5·d, 1.5·d) by a deterministic
	// per-stage source.
	Base, Cap time.Duration
}

// DefaultRetry is the runtime's retry policy when none is set.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, Base: 100 * time.Microsecond, Cap: 5 * time.Millisecond}
}

// StageFailure reports an unrecovered stage failure: the stage, the op it
// failed at, and the root cause. It wraps errs.ErrStageFailed (and the
// cause), so callers classify with errors.Is.
type StageFailure struct {
	Stage   int
	OpIndex int
	Op      sched.Op
	Err     error
}

func (f *StageFailure) Error() string {
	return fmt.Sprintf("pipeline: stage %d failed at op %d (%v): %v", f.Stage, f.OpIndex, f.Op, f.Err)
}

// Unwrap exposes both the sentinel and the root cause.
func (f *StageFailure) Unwrap() []error { return []error{errs.ErrStageFailed, f.Err} }

// WithStageHook attaches a hook consulted before every op (fault
// injection seam) and returns the receiver.
func (r *Runner) WithStageHook(h StageHook) *Runner {
	r.hook = h
	return r
}

// WithTransport attaches a cross-stage delivery interceptor (slow or
// flaky link seam) and returns the receiver.
func (r *Runner) WithTransport(t Transport) *Runner {
	r.transport = t
	return r
}

// WithRetryPolicy overrides the transient-failure retry policy.
func (r *Runner) WithRetryPolicy(p RetryPolicy) *Runner {
	if p.MaxAttempts > 0 {
		r.retry = p
	}
	return r
}

// WithCheckpointEvery enables restore-and-replay recovery: every stage
// snapshots its state before every n'th op (n ≤ 0 disables). Smaller n
// bounds the replayed work after a crash at the cost of more frequent
// snapshots — the Young–Daly trade internal/faults quantifies.
func (r *Runner) WithCheckpointEvery(n int) *Runner {
	r.ckptEvery = n
	return r
}

// resilience is the per-stage recovery state.
type resilience struct {
	every int            // checkpoint period in ops
	snap  *stageSnapshot // last checkpoint
	// recvLog holds cross-stage tensors received since the checkpoint;
	// replayIdx < len(recvLog) means receives are being replayed.
	recvLog   []*tensor.Matrix
	replayIdx int
	// sendSeq counts cross-stage sends since the checkpoint (or since a
	// restore); sendHW is the high-water mark — sends with sequence
	// below it were already delivered and are suppressed on replay.
	sendSeq, sendHW int
	// replayUntil marks the op index live execution had reached when
	// the last fault hit; ops below it re-execute with Cause "replay".
	replayUntil int
}

// stageSnapshot is one stage's checkpoint.
type stageSnapshot struct {
	opIndex int
	loss    float64
	layers  map[int][]*nn.LayerState
	heads   []*nn.HeadState
	logits  map[famKey]*tensor.Matrix
	tasks   map[famKey][]nn.WeightTask
	stash   map[edgeKey]*tensor.Matrix
	grads   *gradSnapshot
}

// gradSnapshot deep-copies the model gradient buffers this stage's ops
// accumulate into: its own layers' weight and norm gradients, plus the
// embedding (stage hosting chunk 0) and head (stage hosting the last
// chunk) gradients. Stages own disjoint buffers, so restoring is safe
// while peers keep running.
type gradSnapshot struct {
	dw       map[int][]*tensor.Matrix // layer index -> 7 DW clones
	attnNorm map[int][]float32
	mlpNorm  map[int][]float32
	embed    *tensor.Matrix
	headW    *tensor.Matrix
	headNorm []float32
}

// stageOwned reports the model layers stage k computes and whether it
// hosts the embedding (first global chunk) or the head (last chunk).
func (r *Runner) stageOwned(k int) (layers []int, embed, head bool) {
	last := r.s.TotalChunks() - 1
	for c := 0; c < r.s.V; c++ {
		g := r.s.Place.Global(k, c)
		layers = append(layers, r.chunkLayers[g]...)
		if g == 0 {
			embed = true
		}
		if g == last {
			head = true
		}
	}
	return layers, embed, head
}

func layerLinears(l *nn.Layer) []*nn.Linear {
	return []*nn.Linear{&l.Wq, &l.Wk, &l.Wv, &l.Wo, &l.Wg, &l.Wu, &l.Wd}
}

// snapshotGrads deep-copies the gradient buffers stage k can mutate.
func (r *Runner) snapshotGrads(k int) (*gradSnapshot, int64) {
	owned, embed, head := r.stageOwned(k)
	g := &gradSnapshot{
		dw:       map[int][]*tensor.Matrix{},
		attnNorm: map[int][]float32{},
		mlpNorm:  map[int][]float32{},
	}
	var bytes int64
	for _, li := range owned {
		l := r.model.Layers[li]
		for _, lin := range layerLinears(l) {
			g.dw[li] = append(g.dw[li], lin.DW.Clone())
			bytes += int64(len(lin.DW.Data)) * 4
		}
		g.attnNorm[li] = append([]float32(nil), l.DAttnNorm...)
		g.mlpNorm[li] = append([]float32(nil), l.DMLPNorm...)
		bytes += int64(len(l.DAttnNorm)+len(l.DMLPNorm)) * 4
	}
	if embed {
		g.embed = r.model.Embed.DTable.Clone()
		bytes += int64(len(g.embed.Data)) * 4
	}
	if head {
		g.headW = r.model.Head.W.DW.Clone()
		g.headNorm = append([]float32(nil), r.model.Head.DNorm...)
		bytes += int64(len(g.headW.Data)+len(g.headNorm)) * 4
	}
	return g, bytes
}

// restoreGrads copies the snapshot back into the live model buffers.
func (r *Runner) restoreGrads(g *gradSnapshot) {
	for li, dws := range g.dw {
		l := r.model.Layers[li]
		for i, lin := range layerLinears(l) {
			copy(lin.DW.Data, dws[i].Data)
		}
		copy(l.DAttnNorm, g.attnNorm[li])
		copy(l.DMLPNorm, g.mlpNorm[li])
	}
	if g.embed != nil {
		copy(r.model.Embed.DTable.Data, g.embed.Data)
	}
	if g.headW != nil {
		copy(r.model.Head.W.DW.Data, g.headW.Data)
		copy(r.model.Head.DNorm, g.headNorm)
	}
}

// cloneStageState deep-copies a stage's execution state: layer and head
// states via their checkpoint clones, plus fresh maps for logits, deferred
// weight tasks and the same-stage stash (payloads are immutable once
// produced and shared by reference).
func cloneLayerStates(src map[int][]*nn.LayerState) map[int][]*nn.LayerState {
	out := make(map[int][]*nn.LayerState, len(src))
	for li, states := range src {
		cp := make([]*nn.LayerState, len(states))
		for i, st := range states {
			cp[i] = st.Clone()
		}
		out[li] = cp
	}
	return out
}

func cloneHeadStates(src []*nn.HeadState) []*nn.HeadState {
	out := make([]*nn.HeadState, len(src))
	for i, st := range src {
		out[i] = st.Clone()
	}
	return out
}

// checkpoint snapshots st's state just before executing op index i.
func (r *Runner) checkpoint(st *stage, i int, next sched.Op) {
	grads, bytes := r.snapshotGrads(st.k)
	snap := &stageSnapshot{
		opIndex: i,
		loss:    st.loss,
		layers:  cloneLayerStates(st.layers),
		heads:   cloneHeadStates(st.heads),
		logits:  make(map[famKey]*tensor.Matrix, len(st.logits)),
		tasks:   make(map[famKey][]nn.WeightTask, len(st.tasks)),
		stash:   make(map[edgeKey]*tensor.Matrix, len(st.stash)),
		grads:   grads,
	}
	for k, v := range st.logits {
		snap.logits[k] = v
	}
	for k, v := range st.tasks {
		snap.tasks[k] = v
	}
	for k, v := range st.stash {
		snap.stash[k] = v
	}
	st.res.snap = snap
	st.res.recvLog = nil
	st.res.replayIdx = 0
	st.res.sendSeq = 0
	st.res.sendHW = 0
	if r.trace != nil {
		now := r.now()
		r.trace.Emit(obs.Event{
			Kind: obs.EvCkpt, Stage: st.k, From: st.k, Op: next,
			Start: now, End: now, Bytes: bytes,
		})
	}
}

// restore installs a fresh copy of the last checkpoint and rewinds the
// replay cursors; the snapshot itself stays intact for repeated faults.
func (r *Runner) restore(st *stage) {
	snap := st.res.snap
	st.loss = snap.loss
	st.layers = cloneLayerStates(snap.layers)
	st.heads = cloneHeadStates(snap.heads)
	st.logits = make(map[famKey]*tensor.Matrix, len(snap.logits))
	for k, v := range snap.logits {
		st.logits[k] = v
	}
	st.tasks = make(map[famKey][]nn.WeightTask, len(snap.tasks))
	for k, v := range snap.tasks {
		st.tasks[k] = v
	}
	st.stash = make(map[edgeKey]*tensor.Matrix, len(snap.stash))
	for k, v := range snap.stash {
		st.stash[k] = v
	}
	r.restoreGrads(snap.grads)
	st.res.replayIdx = 0
	st.res.sendSeq = 0
}

// recoverStage handles a fault raised before op index i: with a
// checkpoint, restore it and rewind the stage's op cursor for replay;
// otherwise fail the stage (and with it, the iteration).
func (r *Runner) recoverStage(st *stage, i int, op sched.Op, cause error) int {
	if r.trace != nil {
		now := r.now()
		r.trace.Emit(obs.Event{
			Kind: obs.EvFault, Stage: st.k, From: st.k, Op: op,
			Start: now, End: now, Cause: "crash",
		})
	}
	if st.res == nil || st.res.snap == nil {
		panic(failPanic{idx: i, op: op, err: cause})
	}
	start := r.now()
	r.restore(st)
	if i > st.res.replayUntil {
		st.res.replayUntil = i
	}
	if r.trace != nil {
		from := r.s.Stages[st.k][st.res.snap.opIndex]
		r.trace.Emit(obs.Event{
			Kind: obs.EvRestore, Stage: st.k, From: st.k, Op: from,
			Start: start, End: r.now(), Cause: "crash",
		})
	}
	return st.res.snap.opIndex - 1 // caller's loop increment re-enters at the checkpoint
}

func isTransient(err error) bool { return errors.Is(err, errs.ErrTransient) }

// sendRetrying drives the transport hook for one cross-stage frame,
// retrying transient failures with capped exponential backoff and
// deterministic jitter. Exhausting the budget (or a non-transient error)
// fails the sending stage.
func (r *Runner) sendRetrying(st *stage, to int, producer sched.Op) {
	if r.transport == nil {
		return
	}
	for attempt := 0; ; attempt++ {
		err := r.transport.Send(st.k, to, producer, attempt)
		if err == nil {
			return
		}
		if !isTransient(err) || attempt+1 >= r.retry.MaxAttempts {
			panic(failPanic{idx: -1, op: producer,
				err: fmt.Errorf("sending %v to stage %d after %d attempts: %w", producer, to, attempt+1, err)})
		}
		if r.trace != nil {
			now := r.now()
			r.trace.Emit(obs.Event{
				Kind: obs.EvRetry, Stage: st.k, From: to, Op: producer,
				Start: now, End: now, Cause: err.Error(),
			})
		}
		r.backoffSleep(st, attempt)
	}
}

// backoffSleep waits Base·2^attempt (capped, jittered to [0.5d, 1.5d)),
// aborting promptly on cancellation or a peer failure.
func (r *Runner) backoffSleep(st *stage, attempt int) {
	d := r.retry.Base << uint(attempt)
	if d > r.retry.Cap || d <= 0 {
		d = r.retry.Cap
	}
	if st.rng != nil && d > 1 {
		d = d/2 + time.Duration(st.rng.Int63n(int64(d)))
	}
	fire, stop := after(d)
	defer stop()
	select {
	case <-fire:
	case <-r.ctx.Done():
		panic(cancelPanic{})
	case <-r.failed:
		panic(abortPanic{})
	}
}
