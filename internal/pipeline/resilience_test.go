package pipeline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mepipe/internal/errs"
	"mepipe/internal/nn"
	"mepipe/internal/obs"
	"mepipe/internal/sched"
	"mepipe/internal/tensor"
)

// crashOnce fails one (stage, op index) exactly once.
type crashOnce struct {
	stage, at int
	fired     bool
	err       error
}

func (c *crashOnce) BeforeOp(stage, index int, op sched.Op) error {
	if stage == c.stage && index == c.at && !c.fired {
		c.fired = true
		if c.err != nil {
			return c.err
		}
		return fmt.Errorf("test: injected crash at stage %d op %d", stage, index)
	}
	return nil
}

// multiCrash fails a set of (stage, op index) points, each once.
type multiCrash struct{ at map[[2]int]*crashOnce }

func newMultiCrash(points ...[2]int) *multiCrash {
	m := &multiCrash{at: map[[2]int]*crashOnce{}}
	for _, p := range points {
		m.at[p] = &crashOnce{stage: p[0], at: p[1]}
	}
	return m
}

func (m *multiCrash) BeforeOp(stage, index int, op sched.Op) error {
	if c := m.at[[2]int{stage, index}]; c != nil {
		return c.BeforeOp(stage, index, op)
	}
	return nil
}

// flakyTransport fails the first `failFirst` attempts of every frame with a
// transient error; failAlways exhausts any retry budget.
type flakyTransport struct {
	failFirst  int
	failAlways bool
}

func (t *flakyTransport) Send(from, to int, op sched.Op, attempt int) error {
	if t.failAlways || attempt < t.failFirst {
		return fmt.Errorf("test: dropped %v on %d->%d: %w", op, from, to, errs.ErrTransient)
	}
	return nil
}

func svpp4(t *testing.T) *sched.Schedule {
	t.Helper()
	s, err := sched.SVPP(sched.SVPPOptions{P: 4, V: 1, S: 2, N: 3, Reschedule: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runResilient executes s with the given runner mutator and compares loss
// and gradients against sequential execution.
func runResilient(t *testing.T, s *sched.Schedule, seed int64, mutate func(*Runner)) {
	t.Helper()
	c := cfg()
	rng := rand.New(rand.NewSource(seed))
	b := batch(rng, c, s.N)

	pipeM, err := nn.NewModel(c, seed)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(pipeM, s, b)
	if err != nil {
		t.Fatal(err)
	}
	mutate(r)
	pipeLoss, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}

	seqM, err := nn.NewModel(c, seed)
	if err != nil {
		t.Fatal(err)
	}
	seqLoss, err := seqM.TrainSequential(b, s.S)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pipeLoss-seqLoss) > 1e-5 {
		t.Errorf("%s: resilient loss %.8f != sequential %.8f", s, pipeLoss, seqLoss)
	}
	pg, sg := pipeM.Grads(), seqM.Grads()
	for name, ref := range sg {
		if d := tensor.MaxAbsDiff(ref, pg[name]); d > 1e-4 {
			t.Errorf("%s: grad %s differs by %g after recovery", s, name, d)
		}
	}
}

// TestCrashEveryStageFailsCleanly is the deadlock-freedom check: without
// checkpointing, a crash injected at EVERY stage index of a P=4 SVPP
// schedule must fail the iteration with an error wrapping
// errs.ErrStageFailed — and every goroutine must exit (a leak would hang
// Run; a racy unwind trips -race in CI).
func TestCrashEveryStageFailsCleanly(t *testing.T) {
	s := svpp4(t)
	c := cfg()
	rng := rand.New(rand.NewSource(7))
	b := batch(rng, c, s.N)
	cause := errors.New("test: boom")
	for stage := 0; stage < s.P; stage++ {
		for _, frac := range []int{0, 1, 2} {
			at := frac * (len(s.Stages[stage]) - 1) / 2
			t.Run(fmt.Sprintf("stage%d_op%d", stage, at), func(t *testing.T) {
				m, err := nn.NewModel(c, 7)
				if err != nil {
					t.Fatal(err)
				}
				r, err := New(m, s, b)
				if err != nil {
					t.Fatal(err)
				}
				r.WithStageHook(&crashOnce{stage: stage, at: at, err: cause})
				_, err = r.Run()
				if err == nil {
					t.Fatal("run survived an unrecoverable crash")
				}
				if !errors.Is(err, errs.ErrStageFailed) {
					t.Errorf("error %v does not wrap ErrStageFailed", err)
				}
				var sf *StageFailure
				if errors.As(err, &sf) {
					if sf.Stage != stage || sf.OpIndex != at || !errors.Is(sf.Err, cause) {
						t.Errorf("failure %v, want stage %d op %d cause %v", sf, stage, at, cause)
					}
				}
			})
		}
	}
}

// TestRecoveryGradientEquivalence: with checkpointing enabled, a crashed
// stage restores and replays, and the iteration's loss and gradients stay
// bit-compatible with sequential execution — peers never notice.
func TestRecoveryGradientEquivalence(t *testing.T) {
	builds := []struct {
		name string
		s    func() (*sched.Schedule, error)
	}{
		{"svpp", func() (*sched.Schedule, error) {
			return sched.SVPP(sched.SVPPOptions{P: 4, V: 1, S: 2, N: 3, Reschedule: true})
		}},
		{"mepipe-split", func() (*sched.Schedule, error) { return sched.MEPipe(4, 1, 2, 3, 0, 5, nil) }},
		{"vpp", func() (*sched.Schedule, error) { return sched.VPP(4, 2, 4, nil) }},
	}
	for _, bd := range builds {
		bd := bd
		t.Run(bd.name, func(t *testing.T) {
			t.Parallel()
			s, err := bd.s()
			if err != nil {
				t.Fatal(err)
			}
			for stage := 0; stage < s.P; stage++ {
				at := len(s.Stages[stage]) / 2
				t.Run(fmt.Sprintf("crash_stage%d_op%d", stage, at), func(t *testing.T) {
					runResilient(t, s, 31, func(r *Runner) {
						r.WithCheckpointEvery(2).WithStageHook(&crashOnce{stage: stage, at: at})
					})
				})
			}
		})
	}
}

// TestRepeatedCrashesRecover: several stages crash (one of them twice at
// different ops) in one iteration; every fault restores independently.
func TestRepeatedCrashesRecover(t *testing.T) {
	s := svpp4(t)
	last := len(s.Stages[1]) - 1
	runResilient(t, s, 11, func(r *Runner) {
		r.WithCheckpointEvery(3).WithStageHook(newMultiCrash(
			[2]int{0, 2}, [2]int{1, 4}, [2]int{1, last}, [2]int{3, 1},
		))
	})
}

// TestCrashWithoutCheckpointFails: faults without a checkpoint to restore
// from degrade gracefully into a classified iteration failure.
func TestCrashWithoutCheckpointFails(t *testing.T) {
	s := svpp4(t)
	c := cfg()
	b := batch(rand.New(rand.NewSource(3)), c, s.N)
	m, err := nn.NewModel(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(m, s, b)
	if err != nil {
		t.Fatal(err)
	}
	r.WithStageHook(&crashOnce{stage: 2, at: 5})
	if _, err = r.Run(); !errors.Is(err, errs.ErrStageFailed) {
		t.Fatalf("got %v, want ErrStageFailed", err)
	}
}

// TestTransientSendRetry: a transport that drops the first attempts of
// every frame is absorbed by bounded retry — the run still matches
// sequential execution, and the trace records the retries.
func TestTransientSendRetry(t *testing.T) {
	s := svpp4(t)
	rec := obs.NewRecorder()
	runResilient(t, s, 17, func(r *Runner) {
		r.WithTransport(&flakyTransport{failFirst: 2}).WithTrace(rec)
	})
	snap := rec.Trace().Snapshot()
	retries := 0
	for _, m := range snap.Stages {
		retries += m.Retries
	}
	if retries == 0 {
		t.Error("no retry events recorded for a flaky transport")
	}
}

// TestRetryExhaustionFails: a permanently failing link escalates to an
// unrecoverable stage failure wrapping both sentinels.
func TestRetryExhaustionFails(t *testing.T) {
	s := svpp4(t)
	c := cfg()
	b := batch(rand.New(rand.NewSource(5)), c, s.N)
	m, err := nn.NewModel(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(m, s, b)
	if err != nil {
		t.Fatal(err)
	}
	r.WithTransport(&flakyTransport{failAlways: true})
	_, err = r.Run()
	if !errors.Is(err, errs.ErrStageFailed) || !errors.Is(err, errs.ErrTransient) {
		t.Fatalf("got %v, want ErrStageFailed wrapping ErrTransient", err)
	}
}

// TestRecoveryEventsTraced: faults, checkpoints, restores and replayed ops
// all surface as first-class span events in the trace.
func TestRecoveryEventsTraced(t *testing.T) {
	s := svpp4(t)
	rec := obs.NewRecorder()
	runResilient(t, s, 23, func(r *Runner) {
		r.WithCheckpointEvery(2).
			WithStageHook(&crashOnce{stage: 1, at: 5}).
			WithTrace(rec)
	})
	snap := rec.Trace().Snapshot()
	m := snap.Stages[1]
	if m.Faults != 1 || m.Restores != 1 {
		t.Errorf("stage 1 recorded %d faults / %d restores, want 1 / 1", m.Faults, m.Restores)
	}
	if m.Checkpoints == 0 {
		t.Error("no checkpoint events recorded")
	}
	if m.Replayed == 0 {
		t.Error("no replayed ops recorded after a restore")
	}
	for k, sm := range snap.Stages {
		if k != 1 && (sm.Faults != 0 || sm.Restores != 0) {
			t.Errorf("stage %d recorded %d faults / %d restores, want none", k, sm.Faults, sm.Restores)
		}
	}
}

// TestRecoveryDeterminism: identical seeds and fault plans give bit-equal
// losses and gradients across runs.
func TestRecoveryDeterminism(t *testing.T) {
	s := svpp4(t)
	c := cfg()
	run := func() (float64, map[string]*tensor.Matrix) {
		b := batch(rand.New(rand.NewSource(41)), c, s.N)
		m, err := nn.NewModel(c, 41)
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(m, s, b)
		if err != nil {
			t.Fatal(err)
		}
		r.WithCheckpointEvery(2).WithStageHook(newMultiCrash([2]int{2, 5}, [2]int{0, 3}))
		loss, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return loss, m.Grads()
	}
	l1, g1 := run()
	l2, g2 := run()
	if l1 != l2 {
		t.Errorf("losses differ across identical faulty runs: %v vs %v", l1, l2)
	}
	for name, a := range g1 {
		if d := tensor.MaxAbsDiff(a, g2[name]); d != 0 {
			t.Errorf("grad %s differs by %g across identical faulty runs", name, d)
		}
	}
}
