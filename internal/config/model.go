// Package config defines model, training, and parallelism configurations
// used throughout MEPipe. The model presets follow Table 4 of the paper:
// Llama 2 variants with two transformer layers removed so the embedding and
// head layers can be balanced against transformer layers when partitioning
// the computation graph across pipeline stages.
package config

import "fmt"

// Model describes a decoder-only transformer in enough detail to account
// for its parameters, FLOPs, and activation memory.
type Model struct {
	Name string

	HiddenSize int // model dimension (d_model)
	NumLayers  int // number of transformer layers
	NumHeads   int // attention heads
	// NumKVHeads supports grouped-query attention; equal to NumHeads for
	// the Llama 2 sizes evaluated in the paper (7B/13B use MHA; 34B uses
	// GQA in the original release, but the paper's FLOP accounting treats
	// all sizes uniformly, so presets keep NumKVHeads == NumHeads).
	NumKVHeads int
	FFNHidden  int // MLP intermediate size (SwiGLU: two up projections + one down)
	VocabSize  int
	SeqLen     int // context length (4096 throughout the evaluation)
}

// Validate reports an error if the model configuration is internally
// inconsistent.
func (m Model) Validate() error {
	switch {
	case m.HiddenSize <= 0:
		return fmt.Errorf("config: model %q: hidden size %d must be positive", m.Name, m.HiddenSize)
	case m.NumLayers <= 0:
		return fmt.Errorf("config: model %q: layer count %d must be positive", m.Name, m.NumLayers)
	case m.NumHeads <= 0:
		return fmt.Errorf("config: model %q: head count %d must be positive", m.Name, m.NumHeads)
	case m.NumKVHeads <= 0 || m.NumHeads%m.NumKVHeads != 0:
		return fmt.Errorf("config: model %q: kv head count %d must divide head count %d", m.Name, m.NumKVHeads, m.NumHeads)
	case m.HiddenSize%m.NumHeads != 0:
		return fmt.Errorf("config: model %q: hidden size %d not divisible by %d heads", m.Name, m.HiddenSize, m.NumHeads)
	case m.FFNHidden <= 0:
		return fmt.Errorf("config: model %q: ffn hidden %d must be positive", m.Name, m.FFNHidden)
	case m.VocabSize <= 0:
		return fmt.Errorf("config: model %q: vocab size %d must be positive", m.Name, m.VocabSize)
	case m.SeqLen <= 0:
		return fmt.Errorf("config: model %q: sequence length %d must be positive", m.Name, m.SeqLen)
	}
	return nil
}

// HeadDim returns the per-head dimension.
func (m Model) HeadDim() int { return m.HiddenSize / m.NumHeads }

// Llama 2 presets per Table 4 of the paper. Layer counts are the original
// Llama 2 counts minus two (30/38/46 instead of 32/40/48), matching the
// paper's balancing trick. FFN sizes follow the Llama 2 release.
func Llama7B() Model {
	return Model{
		Name: "llama-7b", HiddenSize: 4096, NumLayers: 30, NumHeads: 32,
		NumKVHeads: 32, FFNHidden: 11008, VocabSize: 32000, SeqLen: 4096,
	}
}

func Llama13B() Model {
	return Model{
		Name: "llama-13b", HiddenSize: 5120, NumLayers: 38, NumHeads: 40,
		NumKVHeads: 40, FFNHidden: 13824, VocabSize: 32000, SeqLen: 4096,
	}
}

func Llama34B() Model {
	return Model{
		Name: "llama-34b", HiddenSize: 8192, NumLayers: 46, NumHeads: 64,
		NumKVHeads: 8, FFNHidden: 22016, VocabSize: 32000, SeqLen: 4096,
	}
}

// ModelByName returns the preset with the given name.
func ModelByName(name string) (Model, error) {
	switch name {
	case "llama-7b", "7b", "7B":
		return Llama7B(), nil
	case "llama-13b", "13b", "13B":
		return Llama13B(), nil
	case "llama-34b", "34b", "34B":
		return Llama34B(), nil
	}
	return Model{}, fmt.Errorf("config: unknown model %q (want llama-7b, llama-13b, or llama-34b)", name)
}
