package config

import (
	"fmt"

	"mepipe/internal/errs"
)

// Parallel describes a full parallelisation strategy for one training job.
//
// The device count consumed by a strategy is PP × DP × CP: context
// parallelism spreads a single sample across CP devices, while sequence
// pipeline parallelism (SPP) slices a sample in *time* on the same devices
// and therefore consumes no extra hardware — the distinction at the heart of
// the paper (Table 2).
type Parallel struct {
	PP  int // pipeline stages
	DP  int // data-parallel replicas (ZeRO-1 optimizer sharding assumed)
	CP  int // context-parallel group size (devices per sample)
	SPP int // sequence pipeline size: slices per sample (temporal, no devices)
	VP  int // virtual pipeline size: model chunks per stage
	// TP is the tensor-parallel group size (Megatron-style column/row
	// splits with two all-reduces per layer per direction). Zero means 1.
	// The paper excludes TP on the RTX 4090 cluster because the required
	// per-layer activation synchronisation overwhelms PCIe (§2.2, §7.1);
	// modelling it lets the search demonstrate that, and lets the A100
	// cluster use its NVLink.
	TP int
	// Recompute selects the activation-recomputation strategy (§2's
	// recomputation technique; the selective variant follows Korthikanti
	// et al., the paper's reference [16]).
	Recompute RecomputeMode
}

// RecomputeMode enumerates recomputation strategies.
type RecomputeMode int

const (
	// RecomputeNone keeps every backward-needed activation.
	RecomputeNone RecomputeMode = iota
	// RecomputeSelective drops only the memory-heavy MLP intermediates
	// and rebuilds them in the backward pass (two extra GEMMs per layer)
	// — roughly half the activation memory for ~15% extra backward time.
	RecomputeSelective
	// RecomputeFull keeps only each layer's input and re-runs the whole
	// forward in the backward pass (§7.3: ~90% memory reduction for 33%
	// more computation).
	RecomputeFull
)

func (m RecomputeMode) String() string {
	switch m {
	case RecomputeNone:
		return "none"
	case RecomputeSelective:
		return "selective"
	case RecomputeFull:
		return "full"
	}
	return fmt.Sprintf("RecomputeMode(%d)", int(m))
}

// TPSize returns the effective tensor-parallel size (the zero value means
// disabled).
func (p Parallel) TPSize() int {
	if p.TP <= 0 {
		return 1
	}
	return p.TP
}

// Devices returns the number of accelerators the strategy occupies.
func (p Parallel) Devices() int { return p.PP * p.DP * p.CP * p.TPSize() }

// Validate reports an error for degenerate or contradictory settings.
func (p Parallel) Validate() error {
	switch {
	case p.PP <= 0:
		return fmt.Errorf("config: pipeline size %d must be positive", p.PP)
	case p.DP <= 0:
		return fmt.Errorf("config: data-parallel size %d must be positive", p.DP)
	case p.CP <= 0:
		return fmt.Errorf("config: context-parallel size %d must be positive", p.CP)
	case p.SPP <= 0:
		return fmt.Errorf("config: sequence-pipeline size %d must be positive", p.SPP)
	case p.VP <= 0:
		return fmt.Errorf("config: virtual-pipeline size %d must be positive", p.VP)
	case p.TP < 0:
		return fmt.Errorf("config: tensor-parallel size %d must be non-negative", p.TP)
	case p.CP > 1 && p.SPP > 1:
		return fmt.Errorf("config: context parallelism (CP=%d) and sequence pipeline parallelism (SPP=%d) both slice the sample and cannot be combined", p.CP, p.SPP)
	}
	return nil
}

// String renders the strategy as the (PP, CP/SPP, VP, recompute) tuples used
// in the paper's tables, extended with DP.
func (p Parallel) String() string {
	slice := p.CP
	if p.SPP > 1 {
		slice = p.SPP
	}
	r := "x"
	switch p.Recompute {
	case RecomputeSelective:
		r = "s"
	case RecomputeFull:
		r = "r"
	}
	if p.TPSize() > 1 {
		return fmt.Sprintf("(PP=%d, DP=%d, TP=%d, CP/SPP=%d, VP=%d, recompute=%s)", p.PP, p.DP, p.TPSize(), slice, p.VP, r)
	}
	return fmt.Sprintf("(PP=%d, DP=%d, CP/SPP=%d, VP=%d, recompute=%s)", p.PP, p.DP, slice, p.VP, r)
}

// Training holds the job-level hyperparameters that, combined with a
// Parallel strategy, fully determine the per-iteration workload.
type Training struct {
	GlobalBatch int // samples per optimizer step across the whole cluster
	MicroBatch  int // samples per micro-batch (1 throughout the paper)
}

// Validate reports an error for unusable settings.
func (t Training) Validate() error {
	switch {
	case t.GlobalBatch <= 0:
		return fmt.Errorf("config: global batch %d must be positive", t.GlobalBatch)
	case t.MicroBatch <= 0:
		return fmt.Errorf("config: micro batch %d must be positive", t.MicroBatch)
	}
	return nil
}

// MicroBatches returns n, the number of micro-batches each data-parallel
// group processes per iteration, or an error when the batch does not divide
// evenly.
func (t Training) MicroBatches(p Parallel) (int, error) {
	perDP := t.GlobalBatch / p.DP
	if perDP*p.DP != t.GlobalBatch {
		return 0, fmt.Errorf("config: global batch %d not divisible by DP=%d: %w", t.GlobalBatch, p.DP, errs.ErrIncompatible)
	}
	n := perDP / t.MicroBatch
	if n*t.MicroBatch != perDP {
		return 0, fmt.Errorf("config: per-replica batch %d not divisible by micro batch %d: %w", perDP, t.MicroBatch, errs.ErrIncompatible)
	}
	if n == 0 {
		return 0, fmt.Errorf("config: global batch %d too small for DP=%d micro batch %d: %w", t.GlobalBatch, p.DP, t.MicroBatch, errs.ErrIncompatible)
	}
	return n, nil
}
