package config

import "testing"

func TestPresetsValidate(t *testing.T) {
	for _, m := range []Model{Llama7B(), Llama13B(), Llama34B()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestModelValidateErrors(t *testing.T) {
	base := Llama7B()
	cases := []struct {
		name string
		mut  func(*Model)
	}{
		{"hidden", func(m *Model) { m.HiddenSize = 0 }},
		{"layers", func(m *Model) { m.NumLayers = -1 }},
		{"heads", func(m *Model) { m.NumHeads = 0 }},
		{"kvheads-zero", func(m *Model) { m.NumKVHeads = 0 }},
		{"kvheads-divide", func(m *Model) { m.NumKVHeads = 7 }},
		{"headdim", func(m *Model) { m.NumHeads = 33 }},
		{"ffn", func(m *Model) { m.FFNHidden = 0 }},
		{"vocab", func(m *Model) { m.VocabSize = 0 }},
		{"seq", func(m *Model) { m.SeqLen = 0 }},
	}
	for _, c := range cases {
		m := base
		c.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
		}
	}
}

func TestModelByName(t *testing.T) {
	for _, name := range []string{"llama-7b", "7b", "7B", "llama-13b", "13b", "llama-34b", "34B"} {
		if _, err := ModelByName(name); err != nil {
			t.Errorf("ModelByName(%q): %v", name, err)
		}
	}
	if _, err := ModelByName("gpt-5"); err == nil {
		t.Error("ModelByName(gpt-5): expected error")
	}
}

func TestHeadDim(t *testing.T) {
	if got := Llama13B().HeadDim(); got != 128 {
		t.Errorf("13B head dim = %d, want 128", got)
	}
}

func TestParallelValidate(t *testing.T) {
	good := Parallel{PP: 8, DP: 4, CP: 1, SPP: 4, VP: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid strategy rejected: %v", err)
	}
	bad := []Parallel{
		{PP: 0, DP: 1, CP: 1, SPP: 1, VP: 1},
		{PP: 1, DP: 0, CP: 1, SPP: 1, VP: 1},
		{PP: 1, DP: 1, CP: 0, SPP: 1, VP: 1},
		{PP: 1, DP: 1, CP: 1, SPP: 0, VP: 1},
		{PP: 1, DP: 1, CP: 1, SPP: 1, VP: 0},
		{PP: 1, DP: 1, CP: 2, SPP: 2, VP: 1}, // CP and SPP both slice the sample
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%+v): expected error", i, p)
		}
	}
}

func TestParallelDevices(t *testing.T) {
	p := Parallel{PP: 8, DP: 4, CP: 2, SPP: 1, VP: 1}
	if got := p.Devices(); got != 64 {
		t.Errorf("Devices() = %d, want 64", got)
	}
	// SPP consumes no devices.
	p = Parallel{PP: 8, DP: 8, CP: 1, SPP: 16, VP: 1}
	if got := p.Devices(); got != 64 {
		t.Errorf("Devices() with SPP = %d, want 64", got)
	}
}

func TestMicroBatches(t *testing.T) {
	tr := Training{GlobalBatch: 64, MicroBatch: 1}
	n, err := tr.MicroBatches(Parallel{PP: 8, DP: 4, CP: 2, SPP: 1, VP: 1})
	if err != nil || n != 16 {
		t.Errorf("MicroBatches = %d, %v; want 16, nil", n, err)
	}
	// Table 7's point: CP shrinks DP, so each DP group sees more
	// micro-batches.
	n, err = tr.MicroBatches(Parallel{PP: 8, DP: 2, CP: 4, SPP: 1, VP: 1})
	if err != nil || n != 32 {
		t.Errorf("MicroBatches = %d, %v; want 32, nil", n, err)
	}
	if _, err := tr.MicroBatches(Parallel{PP: 8, DP: 5, CP: 1, SPP: 1, VP: 1}); err == nil {
		t.Error("expected divisibility error for DP=5")
	}
	if _, err := (Training{GlobalBatch: 4, MicroBatch: 8}).MicroBatches(Parallel{PP: 1, DP: 1, CP: 1, SPP: 1, VP: 1}); err == nil {
		t.Error("expected error for batch smaller than micro-batch")
	}
}

func TestTrainingValidate(t *testing.T) {
	if err := (Training{GlobalBatch: 128, MicroBatch: 1}).Validate(); err != nil {
		t.Errorf("valid training rejected: %v", err)
	}
	if err := (Training{GlobalBatch: 0, MicroBatch: 1}).Validate(); err == nil {
		t.Error("zero global batch accepted")
	}
	if err := (Training{GlobalBatch: 8, MicroBatch: 0}).Validate(); err == nil {
		t.Error("zero micro batch accepted")
	}
}

func TestTPSizeAndString(t *testing.T) {
	p := Parallel{PP: 8, DP: 4, CP: 1, SPP: 1, VP: 1}
	if p.TPSize() != 1 {
		t.Errorf("zero TP should mean 1, got %d", p.TPSize())
	}
	p.TP = 4
	if p.TPSize() != 4 || p.Devices() != 128 {
		t.Errorf("TPSize/Devices wrong: %d / %d", p.TPSize(), p.Devices())
	}
	if s := p.String(); !containsAll(s, "TP=4") {
		t.Errorf("String() missing TP: %s", s)
	}
	p.TP = -1
	if err := p.Validate(); err == nil {
		t.Error("negative TP accepted")
	}
}

func TestRecomputeModeString(t *testing.T) {
	want := map[RecomputeMode]string{
		RecomputeNone: "none", RecomputeSelective: "selective", RecomputeFull: "full",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if RecomputeMode(9).String() != "RecomputeMode(9)" {
		t.Error("unknown mode string")
	}
	// String renders the recompute letter.
	p := Parallel{PP: 4, DP: 16, CP: 1, SPP: 1, VP: 2, Recompute: RecomputeSelective}
	if s := p.String(); !containsAll(s, "recompute=s") {
		t.Errorf("String() = %s, want recompute=s", s)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
