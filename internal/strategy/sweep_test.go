package strategy

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/errs"
	"mepipe/internal/obs"
)

type nopSink struct{}

func (nopSink) Emit(obs.Event) {}

// TestSweepMatchesSequential is the engine's golden gate: for every preset
// system, with and without pruning, at 8/16/32 GPUs, the sweep must return
// bit-identical candidates — contents AND order — to a sequential
// SearchContext call, along with identical Evaluated/Pruned counters and
// per-system errors. Any drift between the deduplicated parallel engine
// and the reference path fails here.
func TestSweepMatchesSequential(t *testing.T) {
	m := config.Llama13B()
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}
	for _, servers := range []int{1, 2, 4} {
		cl := cluster.RTX4090Cluster(servers)
		for _, prune := range []bool{false, true} {
			t.Run(fmt.Sprintf("gpus=%d/prune=%v", cl.GPUs(), prune), func(t *testing.T) {
				sp := DefaultSpace()
				sp.Prune = prune
				sw, err := Sweep(context.Background(), Systems(), m, cl, tr, sp)
				if err != nil {
					t.Fatalf("Sweep: %v", err)
				}
				if got, want := len(sw.Results), len(Systems()); got != want {
					t.Fatalf("Sweep returned %d results, want %d", got, want)
				}
				for si, sys := range Systems() {
					// The sequential reference. SearchContext's pruned
					// branch is fully sequential; its unpruned branch
					// evaluates independent candidates in a pool — both
					// are the semantics Sweep must reproduce.
					ref, refErr := SearchContext(context.Background(), sys, m, cl, tr, sp)
					got, gotErr := sw.Results[si], sw.Errs[si]
					if (refErr == nil) != (gotErr == nil) ||
						(refErr != nil && refErr.Error() != gotErr.Error()) {
						t.Fatalf("%s: error mismatch: sweep %v, sequential %v", sys, gotErr, refErr)
					}
					if got == nil {
						t.Fatalf("%s: sweep returned no result", sys)
					}
					if got.Evaluated != ref.Evaluated || got.Pruned != ref.Pruned {
						t.Errorf("%s: counters (evaluated %d, pruned %d), want (%d, %d)",
							sys, got.Evaluated, got.Pruned, ref.Evaluated, ref.Pruned)
					}
					if len(got.Candidates) != len(ref.Candidates) {
						t.Fatalf("%s: %d candidates, want %d", sys, len(got.Candidates), len(ref.Candidates))
					}
					for i := range ref.Candidates {
						if !reflect.DeepEqual(got.Candidates[i], ref.Candidates[i]) {
							t.Fatalf("%s: candidate %d differs:\nsweep:      %+v\nsequential: %+v",
								sys, i, got.Candidates[i], ref.Candidates[i])
						}
					}
				}
				if sw.Stats.GridPoints == 0 {
					t.Errorf("implausible stats: %+v", sw.Stats)
				}
				// Grids where any system found a feasible candidate must
				// have certified at least one schedule; all-OOM grids (8
				// GPUs) legitimately settle every point during planning.
				var found bool
				for _, r := range sw.Results {
					found = found || r.Found()
				}
				if found && sw.Stats.Certified == 0 {
					t.Errorf("found candidates without certifying: %+v", sw.Stats)
				}
				if prune {
					var pruned int
					for _, r := range sw.Results {
						pruned += r.Pruned
					}
					if sw.Stats.Pruned != pruned {
						t.Errorf("Stats.Pruned = %d, want %d", sw.Stats.Pruned, pruned)
					}
				}
			})
		}
	}
}

// TestSweepDedup pins the structural win: on the default 32-GPU grid the
// recompute variants of DAPPLE and VPP must byte-share their schedule
// shapes, so the engine certifies strictly fewer schedules than it has
// grid points.
func TestSweepDedup(t *testing.T) {
	m := config.Llama13B()
	cl := cluster.RTX4090Cluster(4)
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}
	sw, err := Sweep(context.Background(), Systems(), m, cl, tr, DefaultSpace())
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	st := sw.Stats
	if st.Deduped == 0 {
		t.Fatalf("no deduplication on the default grid: %+v", st)
	}
	if st.Certified >= st.Generated {
		t.Errorf("certifications (%d) not reduced below generations (%d)", st.Certified, st.Generated)
	}
	if got := st.DedupRatio(); got <= 0 || got >= 1 {
		t.Errorf("dedup ratio %v out of (0, 1)", got)
	}
}

// TestSweepCancelled: cancelling mid-sweep drains every worker goroutine
// and reports an error wrapping errs.ErrCancelled.
func TestSweepCancelled(t *testing.T) {
	m := config.Llama13B()
	cl := cluster.RTX4090Cluster(2)
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}

	// Cancelled up front.
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Sweep(ctx, Systems(), m, cl, tr, DefaultSpace()); !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("pre-cancelled Sweep error = %v, want ErrCancelled", err)
	}

	// Cancelled midway: cancel shortly after the sweep starts, from a
	// timer rather than a hook, so workers observe it between points.
	ctx, cancel = context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	res, err := Sweep(ctx, Systems(), m, cl, tr, DefaultSpace())
	if err == nil {
		// The sweep may legitimately win the race and finish first;
		// then the result must be complete.
		if res == nil || len(res.Results) != len(Systems()) {
			t.Fatalf("raced Sweep returned incomplete result %+v", res)
		}
	} else if !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("mid-sweep cancel error = %v, want ErrCancelled", err)
	}
	cancel()

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d running, baseline %d", n, before)
	}
}

// TestSweepRejectsSinks: tracing is incompatible with the engine's session
// reuse and must be rejected up front with ErrIncompatible.
func TestSweepRejectsSinks(t *testing.T) {
	m := config.Llama13B()
	cl := cluster.RTX4090Cluster(1)
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}
	_, err := Sweep(context.Background(), Systems(), m, cl, tr, DefaultSpace(), WithSink(nopSink{}))
	if !errors.Is(err, errs.ErrIncompatible) {
		t.Fatalf("Sweep with sink = %v, want ErrIncompatible", err)
	}
}
