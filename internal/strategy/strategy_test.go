package strategy

import (
	"testing"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
)

var (
	m13  = config.Llama13B()
	cl64 = cluster.RTX4090Cluster(8)
)

func TestEvaluatePaperConfigs(t *testing.T) {
	// Table 5's GBS-64 row: every system at its reported optimum must be
	// feasible, and MEPipe must beat the others.
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}
	cases := []struct {
		sys System
		par config.Parallel
	}{
		{DAPPLE, config.Parallel{PP: 8, DP: 4, CP: 2, SPP: 1, VP: 1}},
		{VPP, config.Parallel{PP: 4, DP: 16, CP: 1, SPP: 1, VP: 2, Recompute: config.RecomputeFull}},
		{ZB, config.Parallel{PP: 8, DP: 2, CP: 4, SPP: 1, VP: 1}},
		{ZBV, config.Parallel{PP: 4, DP: 2, CP: 8, SPP: 1, VP: 2}},
		{MEPipe, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1}},
	}
	var mepipe, bestOther float64
	for _, c := range cases {
		ev, err := Evaluate(c.sys, m13, cl64, c.par, tr)
		if err != nil {
			t.Fatalf("%s %v: %v", c.sys, c.par, err)
		}
		if ev.OOM {
			t.Fatalf("%s %v unexpectedly OOM: %s", c.sys, c.par, ev.OOMWhy)
		}
		if ev.IterTime <= 0 || ev.Bubble < 0 || ev.Bubble >= 1 {
			t.Fatalf("%s: implausible result %+v", c.sys, ev)
		}
		if c.sys == MEPipe {
			mepipe = ev.IterTime
		} else if bestOther == 0 || ev.IterTime < bestOther {
			bestOther = ev.IterTime
		}
	}
	if mepipe >= bestOther {
		t.Errorf("MEPipe %.0f ms not faster than best baseline %.0f ms", mepipe*1e3, bestOther*1e3)
	}
	// Fig 8's GBS-64 headline: ≈1.49× over the best baseline; accept a
	// generous band since this is a simulation.
	if sp := bestOther / mepipe; sp < 1.2 || sp > 1.9 {
		t.Errorf("speedup %.2fx out of the Fig 8 band (paper: 1.49x)", sp)
	}
}

func TestEvaluateRejectsIncompatible(t *testing.T) {
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}
	bad := []struct {
		sys System
		par config.Parallel
	}{
		{DAPPLE, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1}},                              // slices
		{VPP, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 1, VP: 1}},                                 // vp=1
		{ZB, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 1, VP: 1, Recompute: config.RecomputeFull}}, // recompute
		{MEPipe, config.Parallel{PP: 8, DP: 4, CP: 2, SPP: 1, VP: 1}},                              // CP
		{TeraPipe, config.Parallel{PP: 8, DP: 4, CP: 2, SPP: 1, VP: 1}},                            // CP
		{GPipe, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 1, VP: 2}},                               // vp
	}
	for _, c := range bad {
		if _, err := Evaluate(c.sys, m13, cl64, c.par, tr); err == nil {
			t.Errorf("%s %v: expected incompatibility error", c.sys, c.par)
		}
	}
}

func TestEvaluateReportsStaticOOM(t *testing.T) {
	// Llama 34B at PP=8: static memory alone exceeds the 24 GB card.
	tr := config.Training{GlobalBatch: 128, MicroBatch: 1}
	ev, err := Evaluate(DAPPLE, config.Llama34B(), cl64, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 1, VP: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.OOM {
		t.Error("34B at PP=8 should be OOM")
	}
}

func TestSearchMEPipeMatchesTable5(t *testing.T) {
	// Table 5: MEPipe's optimum at GBS 64 is (PP=8, SPP=4, VP=1).
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}
	res, err := Search(MEPipe, m13, cl64, tr, DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best()
	if best == nil {
		t.Fatal("no feasible MEPipe candidate")
	}
	if best.Par.PP != 8 || best.Par.SPP != 4 || best.Par.VP != 1 {
		t.Errorf("best MEPipe config %v, paper reports (PP=8, SPP=4, VP=1)", best.Par)
	}
	// Candidates must be sorted feasible-first by time.
	for i := 1; i < len(res.Candidates); i++ {
		a, b := res.Candidates[i-1], res.Candidates[i]
		if a.OOM && !b.OOM {
			t.Fatal("OOM candidate sorted before a feasible one")
		}
		if !a.OOM && !b.OOM && a.IterTime > b.IterTime {
			t.Fatal("candidates not sorted by iteration time")
		}
	}
}

func TestSearchRespectsMinDP(t *testing.T) {
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}
	res, err := Search(DAPPLE, m13, cl64, tr, DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if c.Par.DP < 2 {
			t.Fatalf("candidate %v violates the DP >= 2 constraint", c.Par)
		}
	}
}

func TestTFLOPSAndMFU(t *testing.T) {
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}
	ev, err := Evaluate(MEPipe, m13, cl64, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	tf := ev.TFLOPSPerGPU(m13, tr, cl64.GPUs())
	if tf < 50 || tf > 140 {
		t.Errorf("TFLOPS/GPU %.1f out of plausible range", tf)
	}
	mfu := ev.MFU(m13, tr, cl64)
	if mfu < 0.15 || mfu > 0.45 {
		t.Errorf("MFU %.2f out of plausible range (paper: 0.35 at GBS 128)", mfu)
	}
	oom := &Eval{OOM: true}
	if oom.TFLOPSPerGPU(m13, tr, 64) != 0 {
		t.Error("OOM result must report zero TFLOPS")
	}
}

func TestSystemStrings(t *testing.T) {
	want := map[System]string{
		DAPPLE: "DAPPLE", VPP: "VPP", ZB: "ZB", ZBV: "ZBV",
		MEPipe: "MEPipe", TeraPipe: "TeraPipe", GPipe: "GPipe",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), str)
		}
	}
	if System(99).String() != "System(99)" {
		t.Error("unknown system string")
	}
}

// TestPrunedSearchSameBest: the analytic lower bound must never change the
// search outcome, only skip work (§9's cost-model-assisted search).
func TestPrunedSearchSameBest(t *testing.T) {
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}
	for _, sys := range []System{DAPPLE, MEPipe} {
		full, err := Search(sys, m13, cl64, tr, DefaultSpace())
		if err != nil {
			t.Fatal(err)
		}
		sp := DefaultSpace()
		sp.Prune = true
		pruned, err := Search(sys, m13, cl64, tr, sp)
		if err != nil {
			t.Fatal(err)
		}
		fb, pb := full.Best(), pruned.Best()
		if fb == nil || pb == nil {
			t.Fatalf("%s: missing best (full %v, pruned %v)", sys, fb, pb)
		}
		if fb.Par != pb.Par {
			t.Errorf("%s: pruned best %v != full best %v", sys, pb.Par, fb.Par)
		}
		if pruned.Pruned == 0 {
			t.Errorf("%s: pruning skipped nothing (evaluated %d)", sys, pruned.Evaluated)
		}
		// Pruned candidates may include ones Evaluate would have
		// rejected anyway, so only the direction is guaranteed.
		if pruned.Evaluated > full.Evaluated {
			t.Errorf("%s: pruned search evaluated more (%d) than full (%d)",
				sys, pruned.Evaluated, full.Evaluated)
		}
	}
}

// TestEvaluateOtherSystems exercises the GPipe/TeraPipe paths (they are
// searchable baselines even though the paper's figures omit them).
func TestEvaluateOtherSystems(t *testing.T) {
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}
	gp, err := Evaluate(GPipe, m13, cl64, config.Parallel{PP: 8, DP: 4, CP: 2, SPP: 1, VP: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := Evaluate(TeraPipe, m13, cl64, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	// TeraPipe schedules all forwards before the first backward, so every
	// stage retains n/p·A of activations *regardless of the slice count*
	// (Fig 1's critique) — Llama 13B at GBS 64 cannot fit on 24 GB cards.
	if !tp.OOM {
		t.Error("TeraPipe should exhaust activation memory at 13B GBS 64")
	}
	// GPipe retains all n micro-batches too — the reason 1F1B exists.
	if !gp.OOM {
		t.Errorf("GPipe at n=%d should exhaust activation memory", gp.N)
	}
	// MEPipe at the same slicing interleaves backwards and fits — the
	// SVPP-vs-TeraPipe contrast, end to end.
	me, err := Evaluate(MEPipe, m13, cl64, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if me.OOM {
		t.Fatalf("MEPipe at the same slicing should fit: %s", me.OOMWhy)
	}
}

// TestTPStrategyEndToEnd: tensor parallelism through the full Evaluate path.
func TestTPStrategyEndToEnd(t *testing.T) {
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}
	ev, err := Evaluate(DAPPLE, m13, cl64, config.Parallel{PP: 8, DP: 4, CP: 1, SPP: 1, VP: 1, TP: 2}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if ev.OOM {
		t.Fatalf("TP=2 shards activations; should fit: %s", ev.OOMWhy)
	}
	base, err := Evaluate(DAPPLE, m13, cl64, config.Parallel{PP: 8, DP: 4, CP: 2, SPP: 1, VP: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	// On PCIe, TP=2 must lose to CP=2 at the same device count (§2.2).
	if ev.IterTime <= base.IterTime {
		t.Errorf("TP=2 (%.0f ms) should lose to CP=2 (%.0f ms) on PCIe", ev.IterTime*1e3, base.IterTime*1e3)
	}
}

func TestLowerBoundIsConservative(t *testing.T) {
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}
	cases := []struct {
		sys System
		par config.Parallel
	}{
		{DAPPLE, config.Parallel{PP: 8, DP: 4, CP: 2, SPP: 1, VP: 1}},
		{MEPipe, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1}},
		{VPP, config.Parallel{PP: 4, DP: 16, CP: 1, SPP: 1, VP: 2}},
		{ZB, config.Parallel{PP: 8, DP: 2, CP: 4, SPP: 1, VP: 1}},
	}
	for _, c := range cases {
		lb, ok := lowerBound(c.sys, m13, cl64, c.par, tr)
		if !ok || lb <= 0 {
			t.Fatalf("%s: no bound", c.sys)
		}
		ev, err := Evaluate(c.sys, m13, cl64, c.par, tr)
		if err != nil {
			t.Fatal(err)
		}
		if !ev.OOM && ev.IterTime < lb {
			t.Errorf("%s %v: simulated %.3f beats the 'lower bound' %.3f — pruning would be unsound",
				c.sys, c.par, ev.IterTime, lb)
		}
	}
}
