// Package strategy evaluates complete training configurations — one
// scheduling system plus one parallel strategy — on a modelled cluster, and
// grid-searches the strategy space the way the paper does (§7.3: "we employ
// the grid search method to determine the optimal parallel strategy").
package strategy

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"mepipe/internal/analytic"
	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/errs"
	"mepipe/internal/memplan"
	"mepipe/internal/model"
	"mepipe/internal/obs"
	"mepipe/internal/perf"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
	"mepipe/internal/verify"
)

// Option tunes an Evaluate or Search call.
type Option func(*options)

type options struct {
	sink     obs.Sink
	costWrap func(*sched.Schedule, sim.Costs) sim.Costs
}

// WithSink attaches a trace sink to the underlying simulation runs. With
// Search, every simulated candidate emits into the same sink, so prefer
// attaching it to a single Evaluate.
func WithSink(s obs.Sink) Option {
	return func(o *options) { o.sink = s }
}

// WithCostWrap wraps the simulator's cost model once the schedule is
// known, right before the run — the seam fault plans use to perturb an
// evaluation (see chaos.FaultyCosts). The wrapper must be deterministic.
func WithCostWrap(wrap func(*sched.Schedule, sim.Costs) sim.Costs) Option {
	return func(o *options) { o.costWrap = wrap }
}

func buildOptions(opts []Option) options {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// System identifies a scheduling system under evaluation (the columns of
// Fig 8 / Fig 10).
type System int

const (
	DAPPLE System = iota
	VPP
	ZB
	ZBV
	MEPipe
	TeraPipe
	GPipe
)

func (s System) String() string {
	switch s {
	case DAPPLE:
		return "DAPPLE"
	case VPP:
		return "VPP"
	case ZB:
		return "ZB"
	case ZBV:
		return "ZBV"
	case MEPipe:
		return "MEPipe"
	case TeraPipe:
		return "TeraPipe"
	case GPipe:
		return "GPipe"
	}
	return fmt.Sprintf("System(%d)", int(s))
}

// Systems returns the evaluation set of Fig 8 / Fig 10.
func Systems() []System { return []System{DAPPLE, VPP, ZB, ZBV, MEPipe} }

// Eval is the outcome of evaluating one configuration.
type Eval struct {
	Sys System
	Par config.Parallel
	N   int // micro-batches per data-parallel group

	OOM      bool
	OOMWhy   string
	IterTime float64 // seconds
	Bubble   float64
	PeakAct  int64
	Budget   int64 // tightest per-stage activation budget
	F        int   // chosen SVPP variant (MEPipe only)

	Result *sim.Result
}

// TFLOPSPerGPU returns achieved model FLOPs per second per GPU, using the
// paper's 6·params·tokens convention.
func (e *Eval) TFLOPSPerGPU(m config.Model, tr config.Training, gpus int) float64 {
	if e.OOM || e.IterTime <= 0 {
		return 0
	}
	flops := 6 * float64(model.TotalParams(m)) * float64(tr.GlobalBatch) * float64(m.SeqLen)
	return flops / e.IterTime / float64(gpus) / 1e12
}

// MFU returns the model FLOPS utilisation against the GPU's peak.
func (e *Eval) MFU(m config.Model, tr config.Training, cl cluster.Cluster) float64 {
	return e.TFLOPSPerGPU(m, tr, cl.GPUs()) * 1e12 / cl.GPU.PeakFLOPS
}

// Evaluate runs one configuration through the memory model, the schedule
// generator, and the simulator.
func Evaluate(sys System, m config.Model, cl cluster.Cluster, par config.Parallel, tr config.Training) (*Eval, error) {
	return EvaluateContext(context.Background(), sys, m, cl, par, tr)
}

// EvaluateContext is Evaluate with cancellation and per-call options (e.g.
// WithSink to trace the simulated iteration).
//
//mepipe:deterministic
func EvaluateContext(ctx context.Context, sys System, m config.Model, cl cluster.Cluster, par config.Parallel, tr config.Training, opts ...Option) (*Eval, error) {
	o := buildOptions(opts)
	if err := compatible(sys, par); err != nil {
		return nil, err
	}
	mesh, err := cluster.NewMesh(cl, par)
	if err != nil {
		return nil, err
	}
	n, err := tr.MicroBatches(par)
	if err != nil {
		return nil, err
	}
	ev := &Eval{Sys: sys, Par: par, N: n}
	var reserve int64
	if sys == ZB || sys == ZBV {
		reserve = memplan.SplitReserve
	}
	plan, err := memplan.NewWithReserve(m, mesh, reserve)
	if err != nil {
		return nil, err
	}
	ev.Budget = minInt64(plan.ActBudget)
	if !plan.Feasible() {
		ev.OOM = true
		ev.OOMWhy = "static memory exceeds device capacity"
		return ev, nil
	}
	costs, err := perf.New(m, mesh)
	if err != nil {
		return nil, err
	}
	s, dynamicW, f, err := buildSchedule(sys, par, n, costs, plan)
	if err != nil {
		ev.OOM = true
		ev.OOMWhy = err.Error()
		return ev, nil
	}
	// Pre-flight gate: prove the schedule deadlock-free and complete
	// before spending simulation time on it. Generators always emit
	// certifiable tables, so a failure here is a bug — surfaced with the
	// certifier's minimal counterexample rather than a mid-run deadlock.
	if _, err := verify.Certify(s, verify.Options{}); err != nil {
		return nil, fmt.Errorf("strategy: %s schedule rejected: %w", sys, err)
	}
	var simCosts sim.Costs = costs
	if o.costWrap != nil {
		simCosts = o.costWrap(s, costs)
	}
	// Evaluate takes the pooled-session fast path for untraced runs and
	// falls back to RunContext itself when o.sink is set (tracing owns
	// span emission); results are bitwise-identical either way.
	res, err := sim.Evaluate(ctx, sim.Options{
		Sched: s, Costs: simCosts,
		ActBudget: plan.ActBudget,
		DynamicW:  dynamicW,
		TailTime:  costs.TailTime,
		Trace:     o.sink,
		// The schedule was validated by its generator and certified just
		// above — re-validating at session bind would prove nothing new.
		AssumeValid: true,
	})
	if err != nil {
		return nil, fmt.Errorf("strategy: simulating %s %v: %w", sys, par, err)
	}
	ev.Result = res
	ev.IterTime = res.IterTime
	ev.Bubble = res.BubbleRatio
	ev.PeakAct = res.PeakAct
	ev.F = f
	if res.OOM {
		ev.OOM = true
		ev.OOMWhy = fmt.Sprintf("activations exceed budget on stage %d", res.OOMStage)
	}
	return ev, nil
}

// compatible rejects strategy fields a system cannot express. Failures wrap
// errs.ErrIncompatible so callers can classify them with errors.Is.
func compatible(sys System, par config.Parallel) error {
	switch sys {
	case DAPPLE, GPipe:
		if par.VP != 1 || par.SPP != 1 {
			return fmt.Errorf("strategy: %s supports neither virtual pipelining nor slices: %w", sys, errs.ErrIncompatible)
		}
	case VPP:
		if par.VP < 2 || par.SPP != 1 {
			return fmt.Errorf("strategy: VPP needs VP >= 2 and no slices: %w", errs.ErrIncompatible)
		}
	case ZB:
		if par.VP != 1 || par.SPP != 1 || par.Recompute != config.RecomputeNone {
			return fmt.Errorf("strategy: ZB is incompatible with VP, SPP and recomputation: %w", errs.ErrIncompatible)
		}
	case ZBV:
		if par.VP != 2 || par.SPP != 1 || par.Recompute != config.RecomputeNone {
			return fmt.Errorf("strategy: ZBV needs VP = 2 and is incompatible with SPP and recomputation: %w", errs.ErrIncompatible)
		}
	case MEPipe:
		if par.CP != 1 || par.Recompute != config.RecomputeNone {
			return fmt.Errorf("strategy: MEPipe uses SPP instead of CP and never recomputes: %w", errs.ErrIncompatible)
		}
	case TeraPipe:
		if par.VP != 1 || par.CP != 1 {
			return fmt.Errorf("strategy: TeraPipe supports neither virtual pipelining nor CP: %w", errs.ErrIncompatible)
		}
	}
	return nil
}

// buildSchedule constructs the system's schedule, choosing the MEPipe
// memory variant from the plan. The returned bool selects the dynamic
// weight-gradient engine.
func buildSchedule(sys System, par config.Parallel, n int, costs *perf.Costs, plan *memplan.Plan) (s *sched.Schedule, dynamicW bool, f int, err error) {
	return buildScheduleWith(sched.Generate, sys, par, n, costs, plan)
}

// buildScheduleWith is buildSchedule over an explicit generator, so the
// production path (sched.Generate) and the frozen pre-sweep baseline
// (sched.GenerateReference) share one system-to-GenOptions mapping.
func buildScheduleWith(gen func(sched.GenOptions) (*sched.Schedule, error), sys System, par config.Parallel, n int, costs *perf.Costs, plan *memplan.Plan) (s *sched.Schedule, dynamicW bool, f int, err error) {
	p := par.PP
	switch sys {
	case DAPPLE:
		s, err = gen(sched.DAPPLEOpts(p, n, costs))
	case GPipe:
		s, err = gen(sched.GPipeOpts(p, n, costs))
	case VPP:
		s, err = gen(sched.VPPOpts(p, par.VP, n, costs))
	case ZB:
		s, err = gen(sched.ZB1POpts(p, n, costs))
	case ZBV:
		costs.WithPlacement(sched.Wave{P: p})
		s, err = gen(sched.ZBVOpts(p, n, costs))
	case TeraPipe:
		s, err = gen(sched.TeraPipeOpts(p, par.SPP, n, costs))
	case MEPipe:
		fam := costs.ActBytes(0, sched.Op{Kind: sched.F})
		grad := costs.GradBytes(0, sched.Op{Kind: sched.BAct})
		f, err = memplan.ChooseF(par, fam, grad, plan.ActBudget[0])
		if err != nil {
			// No SVPP variant fits the activation budget: a memory
			// failure, not a shape failure.
			return nil, false, 0, fmt.Errorf("%v: %w", err, errs.ErrOOM)
		}
		s, err = gen(sched.SVPPOptions{
			P: p, V: par.VP, S: par.SPP, N: n, F: f,
			Reschedule: true, Split: true,
			FineGrainedW: costs.WPieces(),
			Est:          costs,
		}.GenOpts())
		dynamicW = true
	default:
		err = fmt.Errorf("strategy: unknown system %v: %w", sys, errs.ErrIncompatible)
	}
	return s, dynamicW, f, err
}

// lowerBound returns a conservative (never over-estimating) iteration-time
// floor for a candidate: the per-GPU compute floor at peak achievable
// throughput, divided by one minus the Table 3 bubble ratio (itself a lower
// bound on the simulated bubble). Returns ok=false when no analytic row
// applies.
func lowerBound(sys System, m config.Model, cl cluster.Cluster, par config.Parallel, tr config.Training) (float64, bool) {
	n, err := tr.MicroBatches(par)
	if err != nil {
		return 0, false
	}
	compute := 6 * float64(model.TotalParams(m)) * float64(tr.GlobalBatch) * float64(m.SeqLen) /
		(float64(cl.GPUs()) * cl.GPU.MatmulFLOPS)
	switch par.Recompute {
	case config.RecomputeFull:
		// Full recomputation re-runs the forward pass: +1/3 of the
		// fwd+bwd total.
		compute *= 4.0 / 3.0
	case config.RecomputeSelective:
		compute *= 1.1
	}
	var meth analytic.Method
	params := analytic.Params{P: par.PP, V: par.VP, S: 1, N: n}
	switch sys {
	case GPipe:
		meth = analytic.GPipe
	case DAPPLE:
		meth = analytic.DAPPLE
	case VPP:
		meth = analytic.VPP
	case TeraPipe:
		meth = analytic.TeraPipe
		params.S = par.SPP
	case MEPipe:
		meth = analytic.SVPP
		params.S = par.SPP
	default:
		// Zero-bubble systems: no bubble floor, compute-only bound.
		return compute, true
	}
	if !analytic.Supported(meth, params) {
		return compute, true
	}
	bubble, err := analytic.BubbleRatio(meth, params)
	if err != nil || bubble >= 1 {
		return compute, true
	}
	return compute / (1 - bubble), true
}

func minInt64(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// SearchSpace bounds the grid (§7.3).
type SearchSpace struct {
	PP  []int
	CP  []int // context-parallel sizes for CP-capable systems
	SPP []int // slice counts for MEPipe/TeraPipe
	VP  []int // virtual pipeline sizes for VPP
	// MinDP is the paper's "minimal data parallel size 2" constraint.
	MinDP int
	// Prune skips simulating candidates whose analytic lower bound on
	// iteration time (compute floor divided by one minus the Table 3
	// bubble ratio) already exceeds the best feasible time found. The
	// bound is conservative, so the returned Best is unchanged — only
	// cheaper to find. §9 calls for exactly this kind of cost-model
	// assistance to tame the grid-search overhead.
	Prune bool
}

// DefaultSpace returns the grid the paper's evaluation sweeps.
func DefaultSpace() SearchSpace {
	return SearchSpace{
		PP:    []int{2, 4, 8, 16, 32},
		CP:    []int{1, 2, 4, 8},
		SPP:   []int{1, 2, 4, 8, 16, 32},
		VP:    []int{2, 4},
		MinDP: 2,
	}
}

// Search evaluates every compatible candidate for a system and returns them
// sorted by iteration time (feasible first). The best candidate is
// Candidates[0] when Found.
type SearchResult struct {
	Sys        System
	Candidates []*Eval
	// Evaluated and Pruned count full simulations run vs candidates
	// skipped by the analytic lower bound (SearchSpace.Prune).
	Evaluated, Pruned int
}

// Found reports whether any candidate fits in memory.
func (r *SearchResult) Found() bool {
	return len(r.Candidates) > 0 && !r.Candidates[0].OOM
}

// Best returns the fastest feasible candidate, or nil.
func (r *SearchResult) Best() *Eval {
	if !r.Found() {
		return nil
	}
	return r.Candidates[0]
}

// Search grid-searches one system.
func Search(sys System, m config.Model, cl cluster.Cluster, tr config.Training, sp SearchSpace) (*SearchResult, error) {
	return SearchContext(context.Background(), sys, m, cl, tr, sp)
}

// SearchContext is Search with cancellation: a cancelled ctx stops the grid
// between candidates (and inside each simulated candidate), drains every
// worker goroutine, and returns an error wrapping errs.ErrCancelled.
//
//mepipe:deterministic
func SearchContext(ctx context.Context, sys System, m config.Model, cl cluster.Cluster, tr config.Training, sp SearchSpace, opts ...Option) (*SearchResult, error) {
	gpus := cl.GPUs()
	cands := enumerate(sys, gpus, tr, sp)
	res := &SearchResult{Sys: sys}
	if sp.Prune {
		// Pruning is inherently sequential (each decision depends on
		// the best seen so far).
		bestTime := 0.0
		for _, par := range cands {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("strategy: search for %s %w: %v", sys, errs.ErrCancelled, ctx.Err())
			}
			if bestTime > 0 {
				if lb, ok := lowerBound(sys, m, cl, par, tr); ok && lb > bestTime {
					res.Pruned++
					continue
				}
			}
			ev, err := EvaluateContext(ctx, sys, m, cl, par, tr, opts...)
			if err != nil {
				if errors.Is(err, errs.ErrIncompatible) {
					continue // expected: partition/sequence shape rejection
				}
				// Cancellation or a genuine failure (a rejected schedule,
				// a simulator error) — not a shape mismatch to skip.
				return nil, err
			}
			res.Evaluated++
			res.Candidates = append(res.Candidates, ev)
			if !ev.OOM && (bestTime == 0 || ev.IterTime < bestTime) {
				bestTime = ev.IterTime
			}
		}
	} else {
		// Candidates are independent: evaluate them across the host's
		// cores. Failures are classified exactly like the sequential
		// branch: expected shape rejections (errs.ErrIncompatible) skip
		// the candidate, anything else — a rejected schedule, a simulator
		// failure — is a genuine error and the whole search reports the
		// first one in grid order rather than silently dropping it.
		evals := make([]*Eval, len(cands))
		errsAt := make([]error, len(cands))
		workers := runtime.GOMAXPROCS(0)
		if workers > len(cands) {
			workers = len(cands)
		}
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if ctx.Err() != nil {
						continue // drain remaining indices
					}
					ev, err := EvaluateContext(ctx, sys, m, cl, cands[i], tr, opts...)
					if err != nil {
						if !errors.Is(err, errs.ErrIncompatible) {
							errsAt[i] = err
						}
						continue
					}
					evals[i] = ev
				}
			}()
		}
		for i := range cands {
			next <- i
		}
		close(next)
		wg.Wait()
		if ctx.Err() != nil {
			return nil, fmt.Errorf("strategy: search for %s %w: %v", sys, errs.ErrCancelled, ctx.Err())
		}
		for _, err := range errsAt {
			if err != nil {
				return nil, err
			}
		}
		for _, ev := range evals {
			if ev != nil {
				res.Evaluated++
				res.Candidates = append(res.Candidates, ev)
			}
		}
	}
	sort.SliceStable(res.Candidates, func(i, j int) bool {
		return less(res.Candidates[i], res.Candidates[j])
	})
	if len(res.Candidates) == 0 {
		return res, fmt.Errorf("strategy: no candidate for %s fits %d GPUs: %w", sys, gpus, errs.ErrIncompatible)
	}
	return res, nil
}

// enumerate lists every candidate strategy of the system's grid, in the
// fixed grid order both SearchContext and the sweep engine walk (the order
// the branch-and-bound prefix gate and its sequential replay are defined
// over).
func enumerate(sys System, gpus int, tr config.Training, sp SearchSpace) []config.Parallel {
	var cands []config.Parallel
	add := func(par config.Parallel) {
		if par.Validate() != nil {
			return
		}
		if par.Devices() != gpus {
			return
		}
		if par.DP < sp.MinDP {
			return
		}
		if tr.GlobalBatch%par.DP != 0 {
			return
		}
		cands = append(cands, par)
	}
	for _, pp := range sp.PP {
		if gpus%pp != 0 {
			continue
		}
		switch sys {
		case DAPPLE, ZB, GPipe:
			for _, cp := range sp.CP {
				recs := []config.RecomputeMode{config.RecomputeNone, config.RecomputeSelective, config.RecomputeFull}
				if sys == ZB || sys == GPipe {
					recs = recs[:1] // zero-bubble retains activations for deferred W
				}
				for _, rec := range recs {
					add(config.Parallel{PP: pp, DP: gpus / pp / cp, CP: cp, SPP: 1, VP: 1, Recompute: rec})
				}
			}
		case VPP:
			for _, vp := range sp.VP {
				for _, cp := range sp.CP {
					for _, rec := range []config.RecomputeMode{config.RecomputeNone, config.RecomputeSelective, config.RecomputeFull} {
						add(config.Parallel{PP: pp, DP: gpus / pp / cp, CP: cp, SPP: 1, VP: vp, Recompute: rec})
					}
				}
			}
		case ZBV:
			for _, cp := range sp.CP {
				add(config.Parallel{PP: pp, DP: gpus / pp / cp, CP: cp, SPP: 1, VP: 2})
			}
		case MEPipe:
			for _, spp := range sp.SPP {
				for _, vp := range []int{1, 2} {
					add(config.Parallel{PP: pp, DP: gpus / pp, CP: 1, SPP: spp, VP: vp})
				}
			}
		case TeraPipe:
			for _, spp := range sp.SPP {
				add(config.Parallel{PP: pp, DP: gpus / pp, CP: 1, SPP: spp, VP: 1})
			}
		}
	}
	return cands
}

// less is the total candidate order: feasible before OOM, faster before
// slower, and — critically for reproducible reports and golden tests — a
// stable tie-break on the strategy shape when iteration times are equal
// (which happens whenever two grid points degenerate to the same
// schedule).
func less(a, b *Eval) bool {
	if a.OOM != b.OOM {
		return !a.OOM
	}
	if !a.OOM && a.IterTime != b.IterTime {
		return a.IterTime < b.IterTime
	}
	if a.Par.PP != b.Par.PP {
		return a.Par.PP < b.Par.PP
	}
	if a.Par.VP != b.Par.VP {
		return a.Par.VP < b.Par.VP
	}
	if a.Par.SPP != b.Par.SPP {
		return a.Par.SPP < b.Par.SPP
	}
	if a.Par.CP != b.Par.CP {
		return a.Par.CP < b.Par.CP
	}
	if a.Par.DP != b.Par.DP {
		return a.Par.DP < b.Par.DP
	}
	if a.Par.Recompute != b.Par.Recompute {
		return a.Par.Recompute < b.Par.Recompute
	}
	return a.N < b.N
}
