package strategy

import (
	"context"
	"fmt"
	"math"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/errs"
	"mepipe/internal/memplan"
	"mepipe/internal/opt"
	"mepipe/internal/perf"
	"mepipe/internal/sched"
	"mepipe/internal/verify"
)

// Optimized is the outcome of OptimizeContext: one configuration's preset
// schedule annealed by the internal/opt local search under the
// configuration's own byte-accurate memory budget.
type Optimized struct {
	Sys System
	Par config.Parallel
	N   int // micro-batches per data-parallel group
	F   int // chosen SVPP variant (MEPipe only)

	// Opt carries the discovered schedule, its certificate and the
	// search statistics.
	Opt *opt.Result
}

// OptimizeContext builds the configuration's preset schedule exactly like
// EvaluateContext — memory plan, calibrated cost model, schedule
// generator — and then runs the internal/opt simulated-annealing search
// over certified reorderings of it. The memory budget enforced on every
// candidate is the plan's per-stage activation budget with the cost
// model's real activation and gradient footprints (see optimizeBudget),
// so a discovered schedule is proven to retain no more memory than the
// preset it replaces. The search evaluates candidates in the static execution
// model (no dynamic W draining): the discovered order is a complete
// static program per stage.
//
// Errors wrap errs.ErrIncompatible (shape), errs.ErrOOM (the
// configuration does not fit at all), errs.ErrUncertified (the preset's
// static placement exceeds the byte budget) or errs.ErrCancelled.
//
//mepipe:deterministic
func OptimizeContext(ctx context.Context, sys System, m config.Model, cl cluster.Cluster, par config.Parallel, tr config.Training, oopt opt.Options, opts ...Option) (*Optimized, error) {
	o := buildOptions(opts)
	if err := compatible(sys, par); err != nil {
		return nil, err
	}
	mesh, err := cluster.NewMesh(cl, par)
	if err != nil {
		return nil, err
	}
	n, err := tr.MicroBatches(par)
	if err != nil {
		return nil, err
	}
	var reserve int64
	if sys == ZB || sys == ZBV {
		reserve = memplan.SplitReserve
	}
	plan, err := memplan.NewWithReserve(m, mesh, reserve)
	if err != nil {
		return nil, err
	}
	if !plan.Feasible() {
		return nil, fmt.Errorf("strategy: optimizing %s %v: static memory exceeds device capacity: %w", sys, par, errs.ErrOOM)
	}
	costs, err := perf.New(m, mesh)
	if err != nil {
		return nil, err
	}
	s, _, f, err := buildSchedule(sys, par, n, costs, plan)
	if err != nil {
		return nil, fmt.Errorf("strategy: optimizing %s %v: %w", sys, par, err)
	}
	if oopt.Budget == nil {
		oopt.Budget, err = optimizeBudget(s, plan, costs)
		if err != nil {
			return nil, fmt.Errorf("strategy: optimizing %s %v: %w", sys, par, err)
		}
	}
	if oopt.Trace == nil {
		oopt.Trace = o.sink
	}
	res, err := opt.Optimize(ctx, s, costs, oopt)
	if err != nil {
		return nil, fmt.Errorf("strategy: optimizing %s %v: %w", sys, par, err)
	}
	return &Optimized{Sys: sys, Par: par, N: n, F: f, Opt: res}, nil
}

// optimizeBudget builds the memory budget the search enforces: the
// plan's per-stage activation budget with the cost model's real
// footprints, relaxed to the preset's own swept static peak where the
// preset exceeds the plan. A preset's static placement may legitimately
// retain more bytes than the plan budget in the split-backward window —
// at runtime the §5 dynamic engine drains deferred W under memory
// pressure, but the optimizer reasons about static orders — so the
// enforceable invariant is "never retain more than max(plan budget,
// preset's static retention)" per stage: the seed always certifies, and
// a discovered schedule is proven at least as memory-frugal as the
// preset it replaces.
func optimizeBudget(s *sched.Schedule, plan *memplan.Plan, costs *perf.Costs) (*verify.Budget, error) {
	unbounded := &verify.Budget{
		ActBudget:   make([]int64, s.P),
		FamilyBytes: costs.ActBytes,
		GradBytes:   costs.GradBytes,
	}
	for k := range unbounded.ActBudget {
		unbounded.ActBudget[k] = math.MaxInt64
	}
	cert, err := verify.Certify(s, verify.Options{Budget: unbounded})
	if err != nil {
		return nil, err
	}
	budget := verify.PlanBudget(plan, costs)
	caps := append([]int64(nil), budget.ActBudget...)
	for k := range caps {
		if k < len(cert.PeakBytes) && cert.PeakBytes[k] > caps[k] {
			caps[k] = cert.PeakBytes[k]
		}
	}
	budget.ActBudget = caps
	return budget, nil
}
