package strategy

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/errs"
	"mepipe/internal/obs"
)

// TestSearchContextCancelled: a cancelled context stops the grid search on
// both the parallel and the pruned path, returns an error wrapping
// errs.ErrCancelled, and leaves no worker goroutines behind.
func TestSearchContextCancelled(t *testing.T) {
	m := config.Llama13B()
	cl := cluster.RTX4090Cluster(8)
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}

	for _, prune := range []bool{false, true} {
		sp := DefaultSpace()
		sp.Prune = prune
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := SearchContext(ctx, MEPipe, m, cl, tr, sp)
		if !errors.Is(err, errs.ErrCancelled) {
			t.Fatalf("prune=%v: SearchContext = (%v, %v), want ErrCancelled", prune, res, err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > before {
			t.Errorf("prune=%v: goroutines leaked: %d running, baseline %d", prune, n, before)
		}
	}
}

// TestSearchContextCancelMidway cancels after the first simulated candidate
// rather than up front, exercising the in-flight drain.
func TestSearchContextCancelMidway(t *testing.T) {
	m := config.Llama13B()
	cl := cluster.RTX4090Cluster(8)
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}

	ctx, cancel := context.WithCancel(context.Background())
	var fired bool
	sink := sinkFunc(func(obs.Event) {
		if !fired {
			fired = true
			cancel()
		}
	})
	_, err := SearchContext(ctx, MEPipe, m, cl, tr, SearchSpace{
		PP: []int{8}, SPP: []int{4}, MinDP: 2, Prune: true, // sequential: sink is single-goroutine
	}, WithSink(sink))
	if !fired {
		t.Fatal("no candidate simulated before cancellation")
	}
	if !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("SearchContext = %v, want ErrCancelled", err)
	}
}

type sinkFunc func(obs.Event)

func (f sinkFunc) Emit(e obs.Event) { f(e) }

// TestSentinelErrors: every classified failure wraps its sentinel.
func TestSentinelErrors(t *testing.T) {
	m := config.Llama13B()
	cl := cluster.RTX4090Cluster(8)
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}

	// Shape a system cannot express → ErrIncompatible.
	_, err := Evaluate(DAPPLE, m, cl, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1}, tr)
	if !errors.Is(err, errs.ErrIncompatible) {
		t.Errorf("slices under DAPPLE: %v, want ErrIncompatible", err)
	}

	// An empty grid → ErrIncompatible.
	_, err = Search(MEPipe, m, cl, tr, SearchSpace{PP: []int{7}, SPP: []int{1}, MinDP: 2})
	if !errors.Is(err, errs.ErrIncompatible) {
		t.Errorf("empty grid: %v, want ErrIncompatible", err)
	}
}

// TestSearchDeterministicOrder: two runs of the same search (one parallel,
// one sequential via pruning disabled twice) produce identical candidate
// orderings — the tie-break on strategy shape makes the sort total.
func TestSearchDeterministicOrder(t *testing.T) {
	m := config.Llama13B()
	cl := cluster.RTX4090Cluster(8)
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}
	sp := SearchSpace{PP: []int{2, 4, 8}, SPP: []int{1, 2, 4}, MinDP: 2}

	var orders [][]config.Parallel
	for run := 0; run < 3; run++ {
		res, err := Search(MEPipe, m, cl, tr, sp)
		if err != nil {
			t.Fatal(err)
		}
		var order []config.Parallel
		for _, ev := range res.Candidates {
			order = append(order, ev.Par)
		}
		orders = append(orders, order)
	}
	for run := 1; run < len(orders); run++ {
		if len(orders[run]) != len(orders[0]) {
			t.Fatalf("run %d: %d candidates vs %d", run, len(orders[run]), len(orders[0]))
		}
		for i := range orders[0] {
			if orders[run][i] != orders[0][i] {
				t.Errorf("run %d candidate %d: %v vs %v", run, i, orders[run][i], orders[0][i])
			}
		}
	}
}
