package strategy

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
)

// TestSearchReferenceMatchesSequential keeps the benchmark baseline honest:
// the cold reference path must return byte-identical results to
// SearchContext (which TestSweepMatchesSequential in turn pins against the
// sweep engine), so a speedup measured against SearchReference is a speedup
// against the same search, not against a strawman.
func TestSearchReferenceMatchesSequential(t *testing.T) {
	m := config.Llama13B()
	cl := cluster.RTX4090Cluster(4)
	tr := config.Training{GlobalBatch: 64, MicroBatch: 1}
	for _, prune := range []bool{false, true} {
		t.Run(fmt.Sprintf("prune=%v", prune), func(t *testing.T) {
			sp := DefaultSpace()
			sp.Prune = prune
			for _, sys := range Systems() {
				want, wantErr := SearchContext(context.Background(), sys, m, cl, tr, sp)
				got, gotErr := SearchReference(context.Background(), sys, m, cl, tr, sp)
				if (wantErr == nil) != (gotErr == nil) ||
					(wantErr != nil && wantErr.Error() != gotErr.Error()) {
					t.Fatalf("%s: error mismatch: reference %v, sequential %v", sys, gotErr, wantErr)
				}
				if got == nil {
					t.Fatalf("%s: reference returned no result", sys)
				}
				if got.Evaluated != want.Evaluated || got.Pruned != want.Pruned {
					t.Errorf("%s: counters (evaluated %d, pruned %d), want (%d, %d)",
						sys, got.Evaluated, got.Pruned, want.Evaluated, want.Pruned)
				}
				if !reflect.DeepEqual(got.Candidates, want.Candidates) {
					t.Fatalf("%s: candidates differ between reference and sequential paths", sys)
				}
			}
		})
	}
}
