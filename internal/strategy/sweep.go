package strategy

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/errs"
	"mepipe/internal/memplan"
	"mepipe/internal/perf"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
	"mepipe/internal/verify"
)

// The streaming sweep engine. Sweep evaluates the grids of several systems
// in one pass, and is guaranteed to return, per system, byte-identical
// candidates (contents AND order) to a sequential SearchContext call — the
// equivalence test in sweep_test.go pins that. It gets its speed from three
// structural facts the one-candidate-at-a-time path cannot exploit:
//
//   - Shape-deduplicated certification. Grid points that differ only in a
//     cost knob (the recomputation mode) share a schedule shape
//     (sys, P, V, S, N, F, dynamicW). Members of a shape group are still
//     generated individually — generation order depends on relative op
//     costs, so byte-equality must be observed, not assumed — but when a
//     member's table is byte-identical to the group representative's, its
//     certification is provably the same pure function of the same bytes
//     and is skipped, and the member is re-costed through the worker's
//     bound sim.Session (Session.Recost) instead of paying a fresh bind.
//
//   - Memoized planning. Meshes, memory plans, and cost models are shared
//     across grid points (and systems) with equal inputs: the memory plan
//     is independent of the recomputation mode, and the cost model is keyed
//     by the full strategy. ZBV's cost model is built fresh per point
//     because its wave placement retarget mutates the model in place.
//
//   - Parallel branch-and-bound. Shape groups are processed by a worker
//     pool sharing a monotonically tightening atomic prefix gate: point i
//     may be skipped once any completed, non-OOM point j < i (grid order)
//     has a simulated time below i's analytic lower bound. Every gate skip
//     is provably also a sequential-pruning skip (see prefixGate), so a
//     deterministic grid-order replay reconstructs the exact sequential
//     result — including Evaluated/Pruned counters and the first error —
//     regardless of worker interleaving.
//
// plannedPoint and the planning phase reproduce EvaluateContext's decision
// sequence exactly; any divergence between the two paths is an equivalence
// bug, not a tolerance.

// SweepStats counts what the engine actually did, across all systems.
type SweepStats struct {
	// GridPoints is the number of enumerated candidate strategies.
	GridPoints int
	// Shapes is the number of distinct schedule-shape groups the grid
	// deduplicated into.
	Shapes int
	// Generated counts schedule generations; Certified counts the
	// byte-distinct schedules that went through verify.Certify.
	Generated, Certified int
	// Deduped counts grid points that reused a representative's
	// certification and session binding (certify + bind skipped; the
	// point was re-costed through Session.Recost).
	Deduped int
	// Simulated counts simulator evaluations actually run; GateSkipped
	// counts points the parallel branch-and-bound gate skipped before
	// simulation.
	Simulated, GateSkipped int
	// Evaluated and Pruned are the sequential-equivalent totals over all
	// systems (the sums of the per-system SearchResult counters).
	Evaluated, Pruned int
}

// DedupRatio is the fraction of grid points that shared a previously
// certified schedule.
func (st SweepStats) DedupRatio() float64 {
	if st.GridPoints == 0 {
		return 0
	}
	return float64(st.Deduped) / float64(st.GridPoints)
}

// PruneRate is the sequential-equivalent fraction of grid points skipped by
// the analytic lower bound.
func (st SweepStats) PruneRate() float64 {
	if st.GridPoints == 0 {
		return 0
	}
	return float64(st.Pruned) / float64(st.GridPoints)
}

// SweepResult is the outcome of one multi-system sweep.
type SweepResult struct {
	// Results holds one SearchResult per requested system, in input
	// order, each byte-identical to what SearchContext would return.
	Results []*SearchResult
	// Errs[i] is the error SearchContext would have returned for system i
	// (e.g. "no candidate fits"), nil on success. Cancellation and
	// genuine failures abort the whole sweep through Sweep's own error
	// instead.
	Errs []error
	// Stats aggregates engine counters across all systems.
	Stats SweepStats
}

// Sweep grid-searches several systems in one streaming pass over a
// deduplicated work plan. See the engine comment above for how it stays
// byte-identical to per-system SearchContext calls while doing strictly
// less work. Tracing (WithSink) is incompatible with the engine's session
// reuse — attach sinks to a single Evaluate instead.
//
//mepipe:deterministic
func Sweep(ctx context.Context, systems []System, m config.Model, cl cluster.Cluster, tr config.Training, sp SearchSpace, opts ...Option) (*SweepResult, error) {
	o := buildOptions(opts)
	if o.sink != nil {
		return nil, fmt.Errorf("strategy: sweep cannot trace (attach the sink to a single Evaluate): %w", errs.ErrIncompatible)
	}
	plans := make([]*sysPlan, len(systems))
	memo := newPlanMemo()
	var groups []*shapeGroup
	stats := SweepStats{}
	for si, sys := range systems {
		pl := planSystem(sys, m, cl, tr, sp, memo)
		plans[si] = pl
		stats.GridPoints += len(pl.pts)
		groups = append(groups, pl.groups(sp)...)
	}
	stats.Shapes = len(groups)

	// Parallel branch-and-bound pass over the shape groups.
	var counters sweepCounters
	workers := runtime.GOMAXPROCS(0)
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		w := &sweepWorker{o: o, counters: &counters}
		for _, g := range groups {
			w.runGroup(ctx, g)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := &sweepWorker{o: o, counters: &counters}
				for {
					gi := int(cursor.Add(1)) - 1
					if gi >= len(groups) {
						return
					}
					w.runGroup(ctx, groups[gi])
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("strategy: sweep %w: %v", errs.ErrCancelled, err)
	}
	stats.Generated = int(counters.generated.Load())
	stats.Certified = int(counters.certified.Load())
	stats.Deduped = int(counters.deduped.Load())
	stats.Simulated = int(counters.simulated.Load())
	stats.GateSkipped = int(counters.gateSkipped.Load())

	// Deterministic sequential replay: reconstruct, per system, exactly
	// what SearchContext would have produced from the superset of
	// evaluations the parallel pass ran.
	res := &SweepResult{
		Results: make([]*SearchResult, len(systems)),
		Errs:    make([]error, len(systems)),
	}
	for si, pl := range plans {
		sr, err := pl.replay(sp)
		if err != nil {
			if errors.Is(err, errs.ErrIncompatible) && sr != nil {
				// The system's own "no candidate fits" outcome: recorded
				// per system, like a SearchContext caller looping systems
				// and collecting errors would see it.
				res.Results[si] = sr
				res.Errs[si] = err
				stats.Evaluated += sr.Evaluated
				stats.Pruned += sr.Pruned
				continue
			}
			return nil, err
		}
		res.Results[si] = sr
		stats.Evaluated += sr.Evaluated
		stats.Pruned += sr.Pruned
	}
	res.Stats = stats
	return res, nil
}

// sweepCounters aggregates engine statistics across workers.
type sweepCounters struct {
	generated, certified, deduped, simulated, gateSkipped atomic.Int64
}

// plannedPoint is one grid point after the cheap planning phase: the
// prefix of EvaluateContext that runs before schedule generation, with its
// outcome when that prefix already settles the point.
type plannedPoint struct {
	par config.Parallel
	n   int

	// skip marks points EvaluateContext would reject before building a
	// schedule (incompatible shape, mesh, micro-batching, or cost model).
	// Sequential search skips them silently, and so does the replay.
	skip bool

	// lower bound for the pruning gate
	lb   float64
	lbOK bool

	// planning products for the evaluation phase (nil when skip or done)
	plan  *memplan.Plan
	costs *perf.Costs
	f     int // MEPipe's chosen SVPP variant
	dynW  bool

	// Settled outcome. done points (static OOM, no feasible F variant)
	// never reach a worker; the rest are filled by the parallel pass.
	done bool
	ev   *Eval
	err  error
}

// reject classifies a planning error exactly the way SearchContext does:
// expected shape rejections (wrapping errs.ErrIncompatible) are skipped,
// anything else is a genuine error the replay surfaces in grid order.
func (pt *plannedPoint) reject(err error) {
	if errors.Is(err, errs.ErrIncompatible) {
		pt.skip = true
		return
	}
	pt.err = err
	pt.done = true
}

// sysPlan is one system's planned grid, in grid order.
type sysPlan struct {
	sys   System
	gpus  int
	prune bool // SearchSpace.Prune: the gate only runs when set
	pts   []*plannedPoint
	gate  *prefixGate
}

// planMemo shares planning products across grid points — and systems —
// with equal inputs.
type planMemo struct {
	mesh  map[config.Parallel]cluster.Mesh
	plan  map[planKey]*memplan.Plan
	costs map[config.Parallel]*perf.Costs
}

// planKey identifies a memory plan: the strategy with its recomputation
// mode cleared (the plan reads only the partition shape, never the cost
// knob — see memplan.NewWithReserve) plus the allocator reserve.
type planKey struct {
	par     config.Parallel
	reserve int64
}

func newPlanMemo() *planMemo {
	return &planMemo{
		mesh:  make(map[config.Parallel]cluster.Mesh),
		plan:  make(map[planKey]*memplan.Plan),
		costs: make(map[config.Parallel]*perf.Costs),
	}
}

// planSystem runs the cheap prefix of EvaluateContext for every grid point
// of one system: compatibility, mesh, micro-batching, the memory plan, the
// cost model, and (for MEPipe) the F-variant choice. Points whose outcome
// is already settled here (skips and pre-simulation OOMs) never reach the
// parallel pass.
func planSystem(sys System, m config.Model, cl cluster.Cluster, tr config.Training, sp SearchSpace, memo *planMemo) *sysPlan {
	gpus := cl.GPUs()
	cands := enumerate(sys, gpus, tr, sp)
	pl := &sysPlan{sys: sys, gpus: gpus, prune: sp.Prune, pts: make([]*plannedPoint, len(cands))}
	for i, par := range cands {
		pt := &plannedPoint{par: par}
		pl.pts[i] = pt
		// The bound is computed for every point, settled or not:
		// sequential search prune-checks a candidate before it can
		// discover the candidate is incompatible, so the replay needs the
		// bound even on points the planner rejects.
		if lb, ok := lowerBound(sys, m, cl, par, tr); ok {
			pt.lb, pt.lbOK = lb, true
		}
		if err := compatible(sys, par); err != nil {
			pt.reject(err)
			continue
		}
		mesh, ok := memo.mesh[par]
		if !ok {
			var err error
			mesh, err = cluster.NewMesh(cl, par)
			if err != nil {
				pt.reject(err)
				continue
			}
			memo.mesh[par] = mesh
		}
		n, err := tr.MicroBatches(par)
		if err != nil {
			pt.reject(err)
			continue
		}
		pt.n = n
		var reserve int64
		if sys == ZB || sys == ZBV {
			reserve = memplan.SplitReserve
		}
		pk := planKey{par: par, reserve: reserve}
		pk.par.Recompute = config.RecomputeNone
		plan, ok := memo.plan[pk]
		if !ok {
			plan, err = memplan.NewWithReserve(m, mesh, reserve)
			if err != nil {
				pt.reject(err)
				continue
			}
			memo.plan[pk] = plan
		}
		pt.plan = plan
		ev := &Eval{Sys: sys, Par: par, N: n, Budget: minInt64(plan.ActBudget)}
		if !plan.Feasible() {
			ev.OOM = true
			ev.OOMWhy = "static memory exceeds device capacity"
			pt.done, pt.ev = true, ev
			continue
		}
		var costs *perf.Costs
		if sys == ZBV {
			// ZBV retargets the cost model at the wave placement in
			// place (perf.Costs.WithPlacement mutates the receiver), so
			// it must own a fresh model rather than a memoized one.
			costs, err = perf.New(m, mesh)
		} else {
			var hit bool
			costs, hit = memo.costs[par]
			if !hit {
				costs, err = perf.New(m, mesh)
				if err == nil {
					memo.costs[par] = costs
				}
			}
		}
		if err != nil {
			pt.reject(err)
			continue
		}
		pt.costs = costs
		if sys == MEPipe {
			fam := costs.ActBytes(0, sched.Op{Kind: sched.F})
			grad := costs.GradBytes(0, sched.Op{Kind: sched.BAct})
			f, err := memplan.ChooseF(par, fam, grad, plan.ActBudget[0])
			if err != nil {
				// No SVPP variant fits the activation budget: the same
				// pre-simulation OOM EvaluateContext reports.
				ev.OOM = true
				ev.OOMWhy = fmt.Sprintf("%v: %v", err, errs.ErrOOM)
				pt.done, pt.ev = true, ev
				continue
			}
			pt.f = f
			pt.dynW = true
		}
		pt.ev = ev
	}
	pl.gate = newPrefixGate(len(pl.pts))
	return pl
}

// shapeKey identifies a schedule shape: every grid point with the same key
// generates a structurally identical op universe, and byte-identical
// tables whenever the cost knobs do not reorder the generator's choices.
type shapeKey struct {
	p, v, s, n, f int
	dynW          bool
}

func (pt *plannedPoint) key() shapeKey {
	return shapeKey{p: pt.par.PP, v: pt.par.VP, s: pt.par.SPP, n: pt.n, f: pt.f, dynW: pt.dynW}
}

// shapeGroup is one unit of parallel work: the open grid points of one
// system sharing a schedule shape, in grid order.
type shapeGroup struct {
	pl  *sysPlan
	idx []int
}

// groups partitions the system's open points into shape groups, preserving
// grid order within each group and first-appearance order across groups.
func (pl *sysPlan) groups(sp SearchSpace) []*shapeGroup {
	var out []*shapeGroup
	at := make(map[shapeKey]int)
	for i, pt := range pl.pts {
		if pt.skip || pt.done {
			continue
		}
		k := pt.key()
		gi, ok := at[k]
		if !ok {
			gi = len(out)
			at[k] = gi
			out = append(out, &shapeGroup{pl: pl})
		}
		out[gi].idx = append(out[gi].idx, i)
	}
	return out
}

// sweepWorker owns one reusable simulation session; the engine runs one
// worker per core and hands each a stream of shape groups.
type sweepWorker struct {
	o        options
	se       sim.Session
	counters *sweepCounters
}

// runGroup evaluates one shape group: the first live member becomes the
// representative (generated, certified, bound), and each later member is
// generated, byte-compared, and — when identical — re-costed through the
// bound session instead of re-certified and re-bound.
func (w *sweepWorker) runGroup(ctx context.Context, g *shapeGroup) {
	pl := g.pl
	var rep *sched.Schedule
	bound := false
	for _, i := range g.idx {
		if ctx.Err() != nil {
			return // the sweep reports cancellation after the drain
		}
		pt := pl.pts[i]
		if pl.prune && pt.lbOK {
			// The branch-and-bound gate: skip the point if some
			// completed earlier point already beats its lower bound.
			// Every skip here is provably also a sequential-replay
			// prune (see prefixGate), so skipped points are never
			// needed again.
			if b := pl.gate.bound(i); pt.lb > b {
				w.counters.gateSkipped.Add(1)
				continue
			}
		}
		s, dynamicW, f, err := buildSchedule(pl.sys, pt.par, pt.n, pt.costs, pt.plan)
		w.counters.generated.Add(1)
		if err != nil {
			ev := *pt.ev
			ev.OOM = true
			ev.OOMWhy = err.Error()
			pt.ev = &ev
			pt.done = true
			continue
		}
		var simCosts sim.Costs = pt.costs
		if w.o.costWrap != nil {
			simCosts = w.o.costWrap(s, pt.costs)
		}
		opt := sim.Options{
			Sched: s, Costs: simCosts,
			ActBudget:   pt.plan.ActBudget,
			DynamicW:    dynamicW,
			TailTime:    pt.costs.TailTime,
			AssumeValid: true,
		}
		if bound && rep != nil && sameOps(s, rep) {
			// Byte-identical to the certified representative:
			// certification of equal bytes is the same pure function
			// application, so skip it and re-cost the bound session.
			err = w.se.Recost(opt)
			w.counters.deduped.Add(1)
		} else {
			if _, cerr := verify.Certify(s, verify.Options{}); cerr != nil {
				pt.err = fmt.Errorf("strategy: %s schedule rejected: %w", pl.sys, cerr)
				pt.done = true
				continue
			}
			w.counters.certified.Add(1)
			err = w.se.Bind(opt)
			bound = err == nil
			rep = s
		}
		if err == nil {
			var r *sim.Result
			r, err = w.se.Eval(s)
			w.counters.simulated.Add(1)
			if err == nil {
				ev := *pt.ev
				res := r.Clone()
				ev.Result = res
				ev.IterTime = res.IterTime
				ev.Bubble = res.BubbleRatio
				ev.PeakAct = res.PeakAct
				ev.F = f
				if res.OOM {
					ev.OOM = true
					ev.OOMWhy = fmt.Sprintf("activations exceed budget on stage %d", res.OOMStage)
				}
				pt.ev = &ev
				pt.done = true
				if !ev.OOM {
					pl.gate.complete(i, ev.IterTime)
				}
				continue
			}
		}
		pt.err = fmt.Errorf("strategy: simulating %s %v: %w", pl.sys, pt.par, err)
		pt.done = true
	}
}

// replay reconstructs the exact sequential SearchContext result from the
// parallel pass's evaluations: it walks the grid in order, re-deriving the
// best-so-far pruning decisions, and consumes the parallel results only
// for points sequential search would actually have evaluated.
func (pl *sysPlan) replay(sp SearchSpace) (*SearchResult, error) {
	res := &SearchResult{Sys: pl.sys}
	bestTime := 0.0
	for _, pt := range pl.pts {
		// Mirror the sequential loop's order exactly: the prune check runs
		// before anything else, so even a point the planner skipped or
		// settled counts as pruned when its bound clears the best.
		if sp.Prune && bestTime > 0 && pt.lbOK && pt.lb > bestTime {
			res.Pruned++
			continue
		}
		if pt.skip {
			continue
		}
		if pt.err != nil {
			if errors.Is(pt.err, errs.ErrIncompatible) {
				continue
			}
			return nil, pt.err
		}
		if !pt.done {
			// Unreachable when the gate's prefix argument holds: a point
			// the replay needs was evaluated by the parallel pass.
			return nil, fmt.Errorf("strategy: sweep dropped %s %v (internal branch-and-bound error): %w",
				pl.sys, pt.par, errs.ErrUncertified)
		}
		res.Evaluated++
		res.Candidates = append(res.Candidates, pt.ev)
		if !pt.ev.OOM && (bestTime == 0 || pt.ev.IterTime < bestTime) {
			bestTime = pt.ev.IterTime
		}
	}
	sort.SliceStable(res.Candidates, func(i, j int) bool {
		return less(res.Candidates[i], res.Candidates[j])
	})
	if len(res.Candidates) == 0 {
		return res, fmt.Errorf("strategy: no candidate for %s fits %d GPUs: %w", pl.sys, pl.gpus, errs.ErrIncompatible)
	}
	return res, nil
}

// sameOps reports whether two schedules of the same shape carry identical
// op tables.
func sameOps(a, b *sched.Schedule) bool {
	if len(a.Stages) != len(b.Stages) {
		return false
	}
	for k := range a.Stages {
		x, y := a.Stages[k], b.Stages[k]
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
	}
	return true
}

// prefixGate is the monotonically tightening bound the branch-and-bound
// workers share. slot[i] holds the minimum simulated iteration time over
// the COMPLETED non-OOM points j < i; completing point j tightens every
// later slot with a CAS-min.
//
// Soundness (gate skips ⊆ sequential prunes): suppose the gate skips i
// because lb(i) > T_j for a completed non-OOM j < i. If sequential search
// evaluated j, then its best-so-far at i is ≤ T_j < lb(i), so it prunes i
// too. If sequential search PRUNED j, then lb(j) exceeded its best-so-far
// at j, and T_j ≥ lb(j) > best(j) ≥ best(i), so lb(i) > T_j > best(i) and
// sequential search again prunes i (a non-OOM evaluated predecessor exists
// in both cases — the first non-OOM point is never pruned). Hence the
// replay never needs a point the gate skipped.
type prefixGate struct {
	slots []atomic.Uint64
}

func newPrefixGate(n int) *prefixGate {
	g := &prefixGate{slots: make([]atomic.Uint64, n)}
	inf := math.Float64bits(math.Inf(1))
	for i := range g.slots {
		g.slots[i].Store(inf)
	}
	return g
}

// bound returns the tightest completed-prefix time for point i (+Inf when
// nothing before i has completed).
func (g *prefixGate) bound(i int) float64 {
	return math.Float64frombits(g.slots[i].Load())
}

// complete records point i's simulated time, tightening every later slot.
// Positive float ordering matches unsigned bit ordering, so CAS-min on the
// raw bits is exact.
func (g *prefixGate) complete(i int, t float64) {
	bits := math.Float64bits(t)
	for k := i + 1; k < len(g.slots); k++ {
		for {
			cur := g.slots[k].Load()
			if bits >= cur {
				break
			}
			if g.slots[k].CompareAndSwap(cur, bits) {
				break
			}
		}
	}
}
