package strategy

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/errs"
	"mepipe/internal/memplan"
	"mepipe/internal/perf"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
	"mepipe/internal/verify"
)

// SearchReference grid-searches one system the way the pre-sweep code path
// did: a sequential loop that, for every grid point, builds the mesh, the
// memory plan, and the cost model from scratch (no memoization), generates
// the schedule with the frozen map-indexed generator
// (sched.GenerateReference, which runs the original two-pass Validate),
// certifies it with the frozen map-graph certifier
// (verify.CertifyReference), and simulates it through the frozen
// map-bound session (sim.EvaluateReference).
//
// It exists for two reasons. First, it is the live benchmark baseline for
// the sweep engine: mepipe-bench measures Sweep against SearchReference in
// the same process, so the reported speedup is never contaminated by
// machine drift between runs. Second, it is an independent equivalence
// oracle — the frozen implementations share none of the engine's dense
// index, dependency table, caches, or sessions, so agreement between the
// two is evidence about the engine, not about shared state.
//
// The result is byte-identical to SearchContext (and therefore to the
// per-system slice of Sweep); the tests pin all three against each other.
//
//mepipe:deterministic
func SearchReference(ctx context.Context, sys System, m config.Model, cl cluster.Cluster, tr config.Training, sp SearchSpace) (*SearchResult, error) {
	gpus := cl.GPUs()
	res := &SearchResult{Sys: sys}
	bestTime := 0.0
	for _, par := range enumerate(sys, gpus, tr, sp) {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("strategy: search for %s %w: %v", sys, errs.ErrCancelled, ctx.Err())
		}
		if sp.Prune && bestTime > 0 {
			if lb, ok := lowerBound(sys, m, cl, par, tr); ok && lb > bestTime {
				res.Pruned++
				continue
			}
		}
		ev, err := referenceEvaluate(ctx, sys, m, cl, par, tr)
		if err != nil {
			if errors.Is(err, errs.ErrIncompatible) {
				continue
			}
			return nil, err
		}
		res.Evaluated++
		res.Candidates = append(res.Candidates, ev)
		if !ev.OOM && (bestTime == 0 || ev.IterTime < bestTime) {
			bestTime = ev.IterTime
		}
	}
	sort.SliceStable(res.Candidates, func(i, j int) bool {
		return less(res.Candidates[i], res.Candidates[j])
	})
	if len(res.Candidates) == 0 {
		return res, fmt.Errorf("strategy: no candidate for %s fits %d GPUs: %w", sys, gpus, errs.ErrIncompatible)
	}
	return res, nil
}

// referenceEvaluate is the cold per-point evaluation through the frozen
// pre-sweep pipeline: every model object is constructed fresh, and the
// schedule is generated, validated, certified, and simulated by the
// original map-based implementations.
func referenceEvaluate(ctx context.Context, sys System, m config.Model, cl cluster.Cluster, par config.Parallel, tr config.Training) (*Eval, error) {
	if err := compatible(sys, par); err != nil {
		return nil, err
	}
	mesh, err := cluster.NewMesh(cl, par)
	if err != nil {
		return nil, err
	}
	n, err := tr.MicroBatches(par)
	if err != nil {
		return nil, err
	}
	ev := &Eval{Sys: sys, Par: par, N: n}
	var reserve int64
	if sys == ZB || sys == ZBV {
		reserve = memplan.SplitReserve
	}
	plan, err := memplan.NewWithReserve(m, mesh, reserve)
	if err != nil {
		return nil, err
	}
	ev.Budget = minInt64(plan.ActBudget)
	if !plan.Feasible() {
		ev.OOM = true
		ev.OOMWhy = "static memory exceeds device capacity"
		return ev, nil
	}
	costs, err := perf.New(m, mesh)
	if err != nil {
		return nil, err
	}
	s, dynamicW, f, err := buildScheduleWith(sched.GenerateReference, sys, par, n, costs, plan)
	if err != nil {
		ev.OOM = true
		ev.OOMWhy = err.Error()
		return ev, nil
	}
	if _, err := verify.CertifyReference(s, verify.Options{}); err != nil {
		return nil, fmt.Errorf("strategy: %s schedule rejected: %w", sys, err)
	}
	res, err := sim.EvaluateReference(ctx, sim.Options{
		Sched: s, Costs: costs,
		ActBudget: plan.ActBudget,
		DynamicW:  dynamicW,
		TailTime:  costs.TailTime,
	})
	if err != nil {
		return nil, fmt.Errorf("strategy: simulating %s %v: %w", sys, par, err)
	}
	ev.Result = res
	ev.IterTime = res.IterTime
	ev.Bubble = res.BubbleRatio
	ev.PeakAct = res.PeakAct
	ev.F = f
	if res.OOM {
		ev.OOM = true
		ev.OOMWhy = fmt.Sprintf("activations exceed budget on stage %d", res.OOMStage)
	}
	return ev, nil
}
