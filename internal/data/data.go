// Package data provides the deterministic synthetic token stream that
// stands in for the paper's OpenWebText subset. The evaluation depends only
// on shapes (sequence length, batch size), never on content, so a seeded
// generator with a skewed unigram distribution and local repetition — just
// enough structure for a tiny model to have something learnable — preserves
// the relevant behaviour.
package data

import (
	"fmt"
	"math/rand"
)

// Stream yields training samples of fixed length.
type Stream struct {
	vocab  int
	seqLen int
	rng    *rand.Rand
}

// NewStream returns a deterministic stream.
func NewStream(vocab, seqLen int, seed int64) (*Stream, error) {
	if vocab < 2 || seqLen < 1 {
		return nil, fmt.Errorf("data: need vocab >= 2 and seqLen >= 1, got %d, %d", vocab, seqLen)
	}
	return &Stream{vocab: vocab, seqLen: seqLen, rng: rand.New(rand.NewSource(seed))}, nil
}

// Sample returns one sample of seqLen+1 tokens (inputs plus shifted
// targets). Tokens follow a Zipf-ish distribution with bursts of local
// repetition, giving next-token prediction learnable structure.
func (s *Stream) Sample() []int {
	out := make([]int, s.seqLen+1)
	prev := s.rng.Intn(s.vocab)
	for i := range out {
		switch {
		case s.rng.Float64() < 0.3:
			// Repeat the previous token (local structure).
			out[i] = prev
		case s.rng.Float64() < 0.5:
			// Low-id tokens are frequent (Zipf-ish head).
			out[i] = s.rng.Intn(1 + s.vocab/4)
		default:
			out[i] = s.rng.Intn(s.vocab)
		}
		prev = out[i]
	}
	return out
}

// Batch returns n samples.
func (s *Stream) Batch(n int) [][]int {
	out := make([][]int, n)
	for i := range out {
		out[i] = s.Sample()
	}
	return out
}
