package data

import "testing"

func TestStreamShapes(t *testing.T) {
	s, err := NewStream(32, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := s.Batch(3)
	if len(b) != 3 {
		t.Fatalf("batch size %d, want 3", len(b))
	}
	for _, sample := range b {
		if len(sample) != 17 {
			t.Fatalf("sample length %d, want seqLen+1 = 17", len(sample))
		}
		for _, tok := range sample {
			if tok < 0 || tok >= 32 {
				t.Fatalf("token %d out of vocab", tok)
			}
		}
	}
}

func TestStreamDeterministic(t *testing.T) {
	a, _ := NewStream(32, 16, 42)
	b, _ := NewStream(32, 16, 42)
	for i := 0; i < 5; i++ {
		sa, sb := a.Sample(), b.Sample()
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("sample %d diverges at token %d", i, j)
			}
		}
	}
	c, _ := NewStream(32, 16, 43)
	diff := false
	sa, sc := a.Sample(), c.Sample()
	for j := range sa {
		if sa[j] != sc[j] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical samples")
	}
}

func TestStreamHasStructure(t *testing.T) {
	// The stream must be learnable: repeated tokens appear far more often
	// than chance (the 30% repetition rule).
	s, _ := NewStream(64, 512, 7)
	sample := s.Sample()
	repeats := 0
	for i := 1; i < len(sample); i++ {
		if sample[i] == sample[i-1] {
			repeats++
		}
	}
	if frac := float64(repeats) / float64(len(sample)-1); frac < 0.15 {
		t.Errorf("repetition fraction %.2f too low for learnable structure", frac)
	}
}

func TestStreamValidation(t *testing.T) {
	if _, err := NewStream(1, 16, 1); err == nil {
		t.Error("vocab 1 accepted")
	}
	if _, err := NewStream(32, 0, 1); err == nil {
		t.Error("zero seq len accepted")
	}
}
