package core

import (
	"strings"
	"testing"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
)

func job13B(gbs int) Job {
	return Job{
		Model:   config.Llama13B(),
		Cluster: cluster.RTX4090Cluster(8),
		Train:   config.Training{GlobalBatch: gbs, MicroBatch: 1},
	}
}

func TestPlanMEPipeAtPaperConfig(t *testing.T) {
	plan, err := PlanMEPipeAt(job13B(64), config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.N != 8 {
		t.Errorf("n = %d, want 8", plan.N)
	}
	if plan.F < 4 || plan.F > 11 {
		t.Errorf("f = %d, want within [v·s, v·p+s−1] = [4, 11]", plan.F)
	}
	if plan.Schedule == nil || !plan.Schedule.SplitBW || plan.Schedule.WPieces == 0 {
		t.Error("plan schedule must be the full split + fine-grained MEPipe schedule")
	}
	res, err := plan.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM {
		t.Fatal("paper configuration should fit in 24 GB")
	}
	if res.IterTime < 2 || res.IterTime > 6 {
		t.Errorf("iteration %.2f s outside the plausible band", res.IterTime)
	}
	var sb strings.Builder
	if err := plan.RenderTimeline(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "stage  0") {
		t.Error("timeline rendering incomplete")
	}
}

func TestPlanMEPipeSearches(t *testing.T) {
	if testing.Short() {
		t.Skip("grid search is slow")
	}
	plan, err := PlanMEPipe(job13B(64))
	if err != nil {
		t.Fatal(err)
	}
	// Table 5: the search should land on PP=8, SPP=4, VP=1.
	if plan.Par.PP != 8 || plan.Par.SPP != 4 || plan.Par.VP != 1 {
		t.Errorf("planned %v, paper reports (PP=8, SPP=4, VP=1)", plan.Par)
	}
}

func TestPlanMEPipeAtErrors(t *testing.T) {
	// 34B at PP=4 cannot hold its own parameters.
	job := Job{
		Model:   config.Llama34B(),
		Cluster: cluster.RTX4090Cluster(8),
		Train:   config.Training{GlobalBatch: 128, MicroBatch: 1},
	}
	if _, err := PlanMEPipeAt(job, config.Parallel{PP: 4, DP: 16, CP: 1, SPP: 4, VP: 1}); err == nil {
		t.Error("34B at PP=4 should be rejected (static memory)")
	}
	// Wrong device count.
	if _, err := PlanMEPipeAt(job13B(64), config.Parallel{PP: 8, DP: 4, CP: 1, SPP: 4, VP: 1}); err == nil {
		t.Error("32-GPU strategy on 64-GPU cluster accepted")
	}
	// Indivisible batch.
	if _, err := PlanMEPipeAt(job13B(63), config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1}); err == nil {
		t.Error("indivisible global batch accepted")
	}
}
