// Package core wires the substrates into the MEPipe system of §6: a
// profiler (the perf cost model standing in for on-device measurement), the
// SVPP scheduler with its memory-model-driven variant selection, and the
// execution engine (the discrete-event simulator with the dynamic
// fine-grained weight-gradient queue, or the real goroutine runtime for
// numeric validation).
package core

import (
	"fmt"
	"io"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/memplan"
	"mepipe/internal/perf"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
	"mepipe/internal/strategy"
	"mepipe/internal/timeline"
)

// Job is one training job to plan.
type Job struct {
	Model   config.Model
	Cluster cluster.Cluster
	Train   config.Training
}

// Plan is a fully resolved MEPipe configuration: the strategy, the chosen
// SVPP variant, the generated schedule, and the models behind them.
type Plan struct {
	Job      Job
	Par      config.Parallel
	N        int // micro-batches per pipeline
	F        int // SVPP variant (§4.2)
	Schedule *sched.Schedule
	Costs    *perf.Costs
	Memory   *memplan.Plan
}

// PlanMEPipe grid-searches the strategy space (§7.3) and materialises the
// best MEPipe plan for the job.
func PlanMEPipe(job Job) (*Plan, error) {
	res, err := strategy.Search(strategy.MEPipe, job.Model, job.Cluster, job.Train, strategy.DefaultSpace())
	if err != nil {
		return nil, err
	}
	best := res.Best()
	if best == nil {
		return nil, fmt.Errorf("core: no MEPipe configuration fits %s on %s", job.Model.Name, job.Cluster.GPU.Name)
	}
	return PlanMEPipeAt(job, best.Par)
}

// PlanMEPipeAt materialises the MEPipe plan for a specific strategy
// (useful to pin the paper's Table 5 configurations).
func PlanMEPipeAt(job Job, par config.Parallel) (*Plan, error) {
	mesh, err := cluster.NewMesh(job.Cluster, par)
	if err != nil {
		return nil, err
	}
	n, err := job.Train.MicroBatches(par)
	if err != nil {
		return nil, err
	}
	costs, err := perf.New(job.Model, mesh)
	if err != nil {
		return nil, err
	}
	mem, err := memplan.New(job.Model, mesh)
	if err != nil {
		return nil, err
	}
	if !mem.Feasible() {
		return nil, fmt.Errorf("core: static memory of %s at %v exceeds %s", job.Model.Name, par, job.Cluster.GPU.Name)
	}
	f, err := memplan.ChooseF(par,
		costs.ActBytes(0, sched.Op{Kind: sched.F}),
		costs.GradBytes(0, sched.Op{Kind: sched.BAct}),
		mem.ActBudget[0])
	if err != nil {
		return nil, err
	}
	s, err := sched.SVPP(sched.SVPPOptions{
		P: par.PP, V: par.VP, S: par.SPP, N: n, F: f,
		Reschedule: true, Split: true, FineGrainedW: costs.WPieces(),
		Est: costs,
	})
	if err != nil {
		return nil, err
	}
	return &Plan{Job: job, Par: par, N: n, F: f, Schedule: s, Costs: costs, Memory: mem}, nil
}

// Simulate executes the plan on the modelled cluster with the dynamic
// fine-grained weight-gradient engine.
func (p *Plan) Simulate() (*sim.Result, error) {
	return sim.Run(sim.Options{
		Sched: p.Schedule, Costs: p.Costs,
		ActBudget: p.Memory.ActBudget,
		DynamicW:  true,
		TailTime:  p.Costs.TailTime,
	})
}

// RenderTimeline simulates and writes the ASCII Gantt chart.
func (p *Plan) RenderTimeline(w io.Writer) error {
	res, err := p.Simulate()
	if err != nil {
		return err
	}
	timeline.Render(w, res, 0)
	return nil
}
