package hw

// EffCurve models how achievable GEMM/attention throughput degrades as the
// per-kernel token count shrinks — the effect Fig 9 of the paper measures
// when CP or SPP slices samples finer. The saturating form
//
//	e(t) = t / (t + Tau)
//
// multiplies the accelerator's MatmulFLOPS. Tau is calibrated from the
// paper's data point that a Llama 13B transformer layer loses 12.6% of its
// throughput when SPP grows from 1 to 8 (4096 → 512 tokens per call):
// solving e(512)/e(4096) = 0.874 gives Tau ≈ 86 tokens.
type EffCurve struct {
	Tau float64
}

// DefaultEff returns the calibrated curve.
func DefaultEff() EffCurve { return EffCurve{Tau: 86} }

// At returns the efficiency multiplier for t tokens per kernel call.
func (c EffCurve) At(t int) float64 {
	if t <= 0 {
		return 0
	}
	ft := float64(t)
	return ft / (ft + c.Tau)
}

// Relative returns the throughput at t tokens relative to full-sequence
// calls of tFull tokens (the quantity Fig 9 plots).
func (c EffCurve) Relative(t, tFull int) float64 {
	return c.At(t) / c.At(tFull)
}
