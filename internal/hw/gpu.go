// Package hw catalogs the accelerators and interconnects the paper
// evaluates on, together with the empirical operator-efficiency curves that
// stand in for real CUDA kernels. Peak numbers follow Table 9; efficiency
// curves are calibrated so that end-to-end simulations land on the paper's
// measured anchors (116 TFLOPS / 35 % MFU for Llama 13B on RTX 4090, −12.6 %
// per-layer throughput at SPP = 8, Figure 9's CP-vs-SPP gap).
package hw

import "fmt"

// GPU describes one accelerator model.
type GPU struct {
	Name string
	// MemoryBytes is the usable HBM/GDDR capacity.
	MemoryBytes int64
	// PeakFLOPS is the advertised dense FP16 tensor throughput (FLOP/s).
	PeakFLOPS float64
	// MatmulFLOPS is the *achievable* large-GEMM throughput given the
	// numerics the paper uses. On RTX 4090 the paper accumulates GEMMs in
	// FP32 to preserve convergence, which halves tensor-core throughput
	// (§7.6: "a single RTX 4090 achieves approximately half the
	// performance of a single A100"). On A100 FP32 accumulation is free.
	MatmulFLOPS float64
	// ServerPriceUSD is the price of one 8-GPU server (Table 9).
	ServerPriceUSD float64
	// PowerWatts is the board power (§9).
	PowerWatts float64
	// KernelOverhead is the fixed per-kernel-launch cost folded into every
	// scheduled compute op. PCIe-attached consumer parts see slightly
	// higher launch overhead than SXM parts.
	KernelOverhead float64 // seconds
}

const (
	gb = int64(1) << 30
)

// RTX4090 returns the consumer accelerator the paper targets.
// 24 GB GDDR6X; 330 TFLOPS FP16 peak (Table 9); roughly half of that
// attainable with FP32 accumulation.
func RTX4090() GPU {
	return GPU{
		Name:           "RTX 4090",
		MemoryBytes:    24 * gb,
		PeakFLOPS:      330e12,
		MatmulFLOPS:    135e12,
		ServerPriceUSD: 30000,
		PowerWatts:     450,
		KernelOverhead: 12e-6,
	}
}

// A100 returns the 80 GB SXM A100 used for the cost comparison.
func A100() GPU {
	return GPU{
		Name:           "A100 80GB",
		MemoryBytes:    80 * gb,
		PeakFLOPS:      312e12,
		MatmulFLOPS:    265e12,
		ServerPriceUSD: 150000,
		PowerWatts:     400,
		KernelOverhead: 8e-6,
	}
}

// GPUByName looks up a catalog entry.
func GPUByName(name string) (GPU, error) {
	switch name {
	case "4090", "rtx4090", "RTX 4090":
		return RTX4090(), nil
	case "a100", "A100", "A100 80GB":
		return A100(), nil
	}
	return GPU{}, fmt.Errorf("hw: unknown GPU %q (want rtx4090 or a100)", name)
}

// Link describes a point-to-point or shared interconnect.
type Link struct {
	Name string
	// BandwidthBytes is the attainable unidirectional bandwidth in B/s.
	BandwidthBytes float64
	// Latency is the per-message latency in seconds.
	Latency float64
}

// PCIe4 returns a PCIe 4.0 x16 device-to-device path. Consumer boards have
// no P2P DMA, so transfers stage through host memory; Table 9 quotes
// 64 GB/s *bidirectional intra-node aggregate* for the whole 8-GPU server,
// which works out to ~11 GB/s attainable per direction per pair.
func PCIe4() Link {
	return Link{Name: "PCIe 4.0 x16", BandwidthBytes: 11e9, Latency: 8e-6}
}

// NVLink3 returns an A100 NVLink path (600 GB/s bidirectional per Table 9,
// ~250 GB/s attainable per direction).
func NVLink3() Link {
	return Link{Name: "NVLink 3", BandwidthBytes: 250e9, Latency: 3e-6}
}

// IB100 returns a 100 Gb/s InfiniBand NIC path (4090 cluster, §7.1).
func IB100() Link {
	return Link{Name: "InfiniBand 100Gbps", BandwidthBytes: 11e9, Latency: 5e-6}
}

// IB800 returns an 800 Gb/s InfiniBand NIC path (A100 cluster, §7.6).
func IB800() Link {
	return Link{Name: "InfiniBand 800Gbps", BandwidthBytes: 88e9, Latency: 5e-6}
}

// TransferTime returns the time to move n bytes across the link.
func (l Link) TransferTime(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return l.Latency + float64(n)/l.BandwidthBytes
}
