package hw

import (
	"math"
	"testing"
)

func TestCatalogLookup(t *testing.T) {
	for _, name := range []string{"4090", "rtx4090", "RTX 4090", "a100", "A100"} {
		if _, err := GPUByName(name); err != nil {
			t.Errorf("GPUByName(%q): %v", name, err)
		}
	}
	if _, err := GPUByName("h100"); err == nil {
		t.Error("unknown GPU accepted")
	}
}

func TestTable9Anchors(t *testing.T) {
	g4090, a100 := RTX4090(), A100()
	// Table 9: comparable FP16 peaks, 5× server price gap, 24 vs 80 GB.
	if g4090.PeakFLOPS < a100.PeakFLOPS {
		t.Error("4090 FP16 peak should be at or above A100's (Table 9)")
	}
	if r := a100.ServerPriceUSD / g4090.ServerPriceUSD; math.Abs(r-5) > 0.01 {
		t.Errorf("server price ratio %.1f, want 5 (Table 9)", r)
	}
	if g4090.MemoryBytes >= a100.MemoryBytes {
		t.Error("4090 must have less memory than A100")
	}
	// §7.6: one 4090 achieves roughly half an A100 with FP32 accumulation.
	if r := a100.MatmulFLOPS / g4090.MatmulFLOPS; r < 1.7 || r > 2.3 {
		t.Errorf("A100/4090 achievable ratio %.2f, want ~2", r)
	}
	// §9: 4090 draws more power.
	if g4090.PowerWatts <= a100.PowerWatts {
		t.Error("4090 board power should exceed A100's")
	}
}

func TestLinkTransfer(t *testing.T) {
	l := PCIe4()
	if got := l.TransferTime(0); got != 0 {
		t.Errorf("zero bytes cost %v, want 0", got)
	}
	small := l.TransferTime(1)
	if small < l.Latency {
		t.Error("transfer cannot beat latency")
	}
	big := l.TransferTime(1 << 30)
	if big <= small {
		t.Error("more bytes must take longer")
	}
	// Bandwidth ordering across the catalog.
	if !(IB100().BandwidthBytes < IB800().BandwidthBytes) {
		t.Error("IB100 must be slower than IB800")
	}
	if !(PCIe4().BandwidthBytes < NVLink3().BandwidthBytes) {
		t.Error("PCIe must be slower than NVLink")
	}
}

func TestEffCurveCalibration(t *testing.T) {
	c := DefaultEff()
	// Calibration anchor: −12.6% per-layer throughput going from 4096 to
	// 512 tokens per call (Fig 9, SPP 1 → 8). The curve carries most of
	// it; kernel overheads in perf carry the rest, so the raw curve
	// should sit within a couple of points of the anchor.
	rel := c.Relative(512, 4096)
	if rel < 0.85 || rel > 0.92 {
		t.Errorf("eff(512)/eff(4096) = %.4f, want ≈ 0.874 ± 0.05", rel)
	}
	// Monotonicity and bounds.
	prev := 0.0
	for _, tok := range []int{1, 64, 256, 1024, 4096, 1 << 20} {
		e := c.At(tok)
		if e <= prev || e >= 1 {
			t.Fatalf("At(%d) = %v, want strictly increasing in (0,1)", tok, e)
		}
		prev = e
	}
	if c.At(0) != 0 {
		t.Error("At(0) must be 0")
	}
}
