package opt

import (
	"bytes"
	"context"
	_ "embed"
	"encoding/json"
	"fmt"
	"io"

	"mepipe/internal/errs"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
	"mepipe/internal/verify"
)

// The discovered-schedule artifact: a fully specified optimization point
// (shape, cost model, memory budget), the best preset at that point, the
// optimizer configuration that beat it, and the discovered schedule
// itself. The checked-in instance under testdata/ is the regression
// gate's subject — CI re-certifies and re-simulates it on every push and
// fails if it stops beating its recorded preset baseline — and the bench
// harness replays the same point for BENCH_opt.json.

// ArtifactPreset pins the best preset at the artifact's point: the SVPP
// generator parameters to rebuild it and its simulated iteration time.
type ArtifactPreset struct {
	Name       string  `json:"name"`
	F          int     `json:"f"`
	Split      bool    `json:"split"`
	Reschedule bool    `json:"reschedule"`
	IterTime   float64 `json:"iter_time"`
}

// ArtifactOpt pins the optimizer run that discovered the schedule.
type ArtifactOpt struct {
	Seed      int64   `json:"seed"`
	Iters     int     `json:"iters"`
	Proposals int     `json:"proposals"`
	IterTime  float64 `json:"iter_time"`
}

// Artifact is the serialized record of one discovered schedule.
type Artifact struct {
	Note string `json:"note"`

	P int `json:"p"`
	V int `json:"v"`
	S int `json:"s"`
	N int `json:"n"`

	// Est, ActBytes and GradBytes reconstruct the uniform cost model the
	// point was evaluated under; SlotBudget the per-stage family-slot
	// memory budget.
	Est        sched.UniformEst `json:"est"`
	ActBytes   int64            `json:"act_bytes"`
	GradBytes  int64            `json:"grad_bytes"`
	SlotBudget []int            `json:"slot_budget"`

	Preset ArtifactPreset `json:"preset"`
	Opt    ArtifactOpt    `json:"opt"`

	// Schedule is the discovered schedule in sched.Save form.
	Schedule json.RawMessage `json:"schedule"`
}

//go:embed testdata/discovered.json
var discoveredJSON []byte

// Discovered parses the checked-in discovered-schedule artifact.
func Discovered() (*Artifact, error) {
	return LoadArtifact(bytes.NewReader(discoveredJSON))
}

// LoadArtifact reads an artifact written by Artifact.Save.
func LoadArtifact(r io.Reader) (*Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("opt: decoding artifact: %w", err)
	}
	if a.P <= 0 || a.V <= 0 || a.S <= 0 || a.N <= 0 {
		return nil, fmt.Errorf("opt: artifact has non-positive shape: %w", errs.ErrIncompatible)
	}
	if len(a.SlotBudget) != a.P {
		return nil, fmt.Errorf("opt: artifact budget has %d stages, want %d: %w", len(a.SlotBudget), a.P, errs.ErrIncompatible)
	}
	return &a, nil
}

// Save writes the artifact as indented JSON (stable bytes for diffs).
func (a *Artifact) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// Costs returns the point's uniform cost model.
func (a *Artifact) Costs() sim.UniformCosts {
	return sim.UniformCosts{Est: a.Est, Act: a.ActBytes, Grad: a.GradBytes}
}

// Budget returns the point's family-slot memory budget.
func (a *Artifact) Budget() *verify.Budget {
	return verify.SlotBudget(a.SlotBudget)
}

// PresetSchedule rebuilds the recorded best preset from its generator
// parameters.
func (a *Artifact) PresetSchedule() (*sched.Schedule, error) {
	return sched.SVPP(sched.SVPPOptions{
		P: a.P, V: a.V, S: a.S, N: a.N,
		F: a.Preset.F, Split: a.Preset.Split, Reschedule: a.Preset.Reschedule,
		Est: a.Est,
	})
}

// DiscoveredSchedule decodes (and validates) the discovered schedule.
func (a *Artifact) DiscoveredSchedule() (*sched.Schedule, error) {
	return sched.Load(bytes.NewReader(a.Schedule))
}

// BestPreset sweeps the SVPP preset family at the artifact's point —
// split × reschedule × f up to the micro-batch count — keeping only
// presets that certify under the budget, and returns the fastest. This
// is the baseline the discovered schedule must beat, recomputed from
// scratch so the recorded iteration times cannot drift silently. The
// certified presets are simulated as one sim.EvaluateMany batch; the
// winner is selected in generation order, so the result is identical to
// the serial sweep regardless of worker count.
func (a *Artifact) BestPreset() (ArtifactPreset, *sched.Schedule, error) {
	costs := a.Costs()
	budget := a.Budget()
	type presetCand struct {
		p ArtifactPreset
		s *sched.Schedule
	}
	var cands []presetCand
	var scheds []*sched.Schedule
	for _, split := range []bool{false, true} {
		for _, re := range []bool{false, true} {
			for f := 1; f <= a.N*a.S; f++ {
				s, err := sched.SVPP(sched.SVPPOptions{
					P: a.P, V: a.V, S: a.S, N: a.N,
					F: f, Split: split, Reschedule: re, Est: a.Est,
				})
				if err != nil {
					continue
				}
				if _, err := verify.Certify(s, verify.Options{Budget: budget}); err != nil {
					continue
				}
				cands = append(cands, presetCand{
					p: ArtifactPreset{
						Name:       fmt.Sprintf("svpp f=%d split=%v resched=%v", f, split, re),
						F:          f,
						Split:      split,
						Reschedule: re,
					},
					s: s,
				})
				scheds = append(scheds, s)
			}
		}
	}
	results, err := sim.EvaluateMany(context.Background(), scheds, sim.Options{Costs: costs, MakespanOnly: true}, 0)
	if err != nil {
		return ArtifactPreset{}, nil, fmt.Errorf("opt: preset sweep: %w", err)
	}
	var best ArtifactPreset
	var bestSched *sched.Schedule
	for i, r := range results {
		if r == nil || r.OOM {
			continue
		}
		if bestSched == nil || r.IterTime < best.IterTime-eps {
			best = cands[i].p
			best.IterTime = r.IterTime
			bestSched = cands[i].s
		}
	}
	if bestSched == nil {
		return ArtifactPreset{}, nil, fmt.Errorf("opt: no SVPP preset certifies at the artifact's point: %w", errs.ErrIncompatible)
	}
	return best, bestSched, nil
}
