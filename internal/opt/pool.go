package opt

import (
	"sync"
	"sync/atomic"
)

// forEachWorker runs fn over indices 0..n-1 using at most `workers`
// goroutines and joins them all before returning. Each invocation also
// receives the stable index w of the worker running it, so callers can
// give every worker private scratch (the annealer binds one incremental
// simulator session per worker). It is the package's only goroutine
// launch point (allowlisted for the gospawn analyzer): workers pull
// indices from an atomic cursor, run pure evaluations, and cannot
// outlive the call — there is no channel, no shared mutable search
// state, and no panic path that leaks a goroutine past the WaitGroup.
func forEachWorker(workers, n int, fn func(w, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}()
	}
	wg.Wait()
}

// forEach is forEachWorker for callers that need no per-worker state.
func forEach(workers, n int, fn func(i int)) {
	forEachWorker(workers, n, func(_, i int) { fn(i) })
}
