package opt

import (
	"sync"
	"sync/atomic"
)

// forEach runs fn(0..n-1) over at most `workers` goroutines and joins
// them all before returning. It is the package's only goroutine launch
// point (allowlisted for the gospawn analyzer): workers pull indices
// from an atomic cursor, run pure evaluations, and cannot outlive the
// call — there is no channel, no shared mutable search state, and no
// panic path that leaks a goroutine past the WaitGroup.
func forEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
