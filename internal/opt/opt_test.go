package opt

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"math"
	"os"
	"reflect"
	"testing"

	"mepipe/internal/errs"
	"mepipe/internal/obs"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
	"mepipe/internal/verify"
)

var writeDiscovered = flag.Bool("write-discovered", false,
	"regenerate testdata/discovered.json (the checked-in discovered-schedule artifact)")

// discoveredPoint is the canonical optimization point of the checked-in
// artifact: P=4, V=1, S=2, N=6 under a 5-family-per-stage slot budget
// with unit op costs and 0.2 communication.
func discoveredPoint() *Artifact {
	return &Artifact{
		Note: "discovered-schedule artifact; regenerate with `make opt-regen` " +
			"(go test ./internal/opt -run TestWriteDiscovered -write-discovered)",
		P: 4, V: 1, S: 2, N: 6,
		Est:        sched.UniformEst{F: 1, BFused: 2, BAct: 1, W: 1, WPiece: 0, Comm: 0.2},
		ActBytes:   1,
		GradBytes:  0,
		SlotBudget: []int{5, 5, 5, 5},
		Opt:        ArtifactOpt{Seed: 1, Iters: 1500, Proposals: 4},
	}
}

// TestWriteDiscovered regenerates the checked-in artifact: sweep the
// preset family at the canonical point, anneal from the best preset with
// the recorded seed, and save preset + discovered + their times. Only
// runs under -write-discovered.
func TestWriteDiscovered(t *testing.T) {
	if !*writeDiscovered {
		t.Skip("no -write-discovered; run via make opt-regen")
	}
	a := discoveredPoint()
	best, presetSched, err := a.BestPreset()
	if err != nil {
		t.Fatalf("preset sweep: %v", err)
	}
	a.Preset = best
	res, err := Optimize(context.Background(), presetSched, a.Costs(), Options{
		Seed: a.Opt.Seed, Iters: a.Opt.Iters, Proposals: a.Opt.Proposals,
		Budget: a.Budget(),
	})
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if res.BestTime >= best.IterTime-eps {
		t.Fatalf("discovered %.3f does not beat best preset %.3f; not writing artifact", res.BestTime, best.IterTime)
	}
	a.Opt.IterTime = res.BestTime
	var doc bytes.Buffer
	if err := res.Schedule.Save(&doc); err != nil {
		t.Fatalf("save schedule: %v", err)
	}
	a.Schedule = json.RawMessage(doc.Bytes())
	f, err := os.Create("testdata/discovered.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := a.Save(f); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote testdata/discovered.json: preset %s %.3f -> discovered %.3f (%.2f%%)",
		best.Name, best.IterTime, res.BestTime, 100*(best.IterTime-res.BestTime)/best.IterTime)
}

// TestDiscoveredBeatsPresets is the regression gate CI runs on every
// push: the checked-in schedule must (a) certify clean — completeness
// included — under its recorded budget, (b) simulate to its recorded
// iteration time, and (c) beat the best preset of a from-scratch sweep
// of the whole SVPP family at the point.
func TestDiscoveredBeatsPresets(t *testing.T) {
	a, err := Discovered()
	if err != nil {
		t.Fatalf("loading artifact: %v", err)
	}
	s, err := a.DiscoveredSchedule()
	if err != nil {
		t.Fatalf("decoding discovered schedule: %v", err)
	}
	cert, err := verify.Certify(s, verify.Options{Budget: a.Budget()})
	if err != nil {
		t.Fatalf("discovered schedule no longer certifies: %v", err)
	}
	for k, peak := range cert.PeakFamilies {
		if peak > a.SlotBudget[k] {
			t.Errorf("stage %d peak %d exceeds slot budget %d", k, peak, a.SlotBudget[k])
		}
	}
	r, err := sim.Run(sim.Options{Sched: s, Costs: a.Costs()})
	if err != nil {
		t.Fatalf("simulating discovered schedule: %v", err)
	}
	if diff := r.IterTime - a.Opt.IterTime; diff > eps || diff < -eps {
		t.Errorf("discovered schedule simulates to %.6f, artifact records %.6f", r.IterTime, a.Opt.IterTime)
	}
	best, _, err := a.BestPreset()
	if err != nil {
		t.Fatalf("preset sweep: %v", err)
	}
	if diff := best.IterTime - a.Preset.IterTime; diff > eps || diff < -eps {
		t.Errorf("best preset is now %s at %.6f, artifact records %s at %.6f",
			best.Name, best.IterTime, a.Preset.Name, a.Preset.IterTime)
	}
	if r.IterTime >= best.IterTime-eps {
		t.Errorf("discovered schedule (%.6f) no longer beats the best preset %s (%.6f)",
			r.IterTime, best.Name, best.IterTime)
	}
}

// TestDiscoveredBytesPinned re-runs the optimizer with the artifact's
// recorded seed and asserts it reproduces the checked-in schedule byte
// for byte — the end-to-end determinism gate. Any change to the search's
// rng consumption shows up here and forces a conscious regeneration.
func TestDiscoveredBytesPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("full-length deterministic replay")
	}
	a, err := Discovered()
	if err != nil {
		t.Fatal(err)
	}
	presetSched, err := a.PresetSchedule()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(context.Background(), presetSched, a.Costs(), Options{
		Seed: a.Opt.Seed, Iters: a.Opt.Iters, Proposals: a.Opt.Proposals,
		Budget: a.Budget(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := res.Schedule.Save(&got); err != nil {
		t.Fatal(err)
	}
	var want, gotC bytes.Buffer
	if err := json.Compact(&want, a.Schedule); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&gotC, got.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), gotC.Bytes()) {
		t.Errorf("replaying seed %d did not reproduce the checked-in schedule;\ngot  %s\nwant %s",
			a.Opt.Seed, gotC.Bytes(), want.Bytes())
	}
}

// TestOptimizeSmoke is the short fixed-seed optimization the CI
// opt-smoke job runs: a few hundred rounds on the canonical point must
// hold the optimizer's invariants and not regress below its seed.
func TestOptimizeSmoke(t *testing.T) {
	a := discoveredPoint()
	best, presetSched, err := a.BestPreset()
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	res, err := Optimize(context.Background(), presetSched, a.Costs(), Options{
		Seed: 1, Iters: 200, Budget: a.Budget(), Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseTime != best.IterTime {
		t.Errorf("base time %.6f, preset sweep said %.6f", res.BaseTime, best.IterTime)
	}
	if res.BestTime > res.BaseTime+eps {
		t.Errorf("search worsened the schedule: %.6f > %.6f", res.BestTime, res.BaseTime)
	}
	if res.Cert == nil {
		t.Fatal("no certificate on result")
	}
	if res.Proposed != 200*4 {
		t.Errorf("proposed %d, want %d", res.Proposed, 200*4)
	}
	if res.Evaluated+res.Infeasible != res.Proposed {
		t.Errorf("evaluated %d + infeasible %d != proposed %d", res.Evaluated, res.Infeasible, res.Proposed)
	}
	moves := 0
	for _, e := range rec.Trace().Events {
		if e.Kind == obs.EvMove {
			moves++
		}
	}
	if moves != res.Proposed {
		t.Errorf("%d EvMove events for %d proposals", moves, res.Proposed)
	}
}

// TestOptimizeDeterministicAcrossWorkers pins that Workers affects
// wall-clock only: 1 worker and 8 workers discover byte-identical
// schedules with identical counters.
func TestOptimizeDeterministicAcrossWorkers(t *testing.T) {
	a := discoveredPoint()
	_, presetSched, err := a.BestPreset()
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (*Result, []byte) {
		res, err := Optimize(context.Background(), presetSched, a.Costs(), Options{
			Seed: 7, Iters: 150, Workers: workers, Budget: a.Budget(),
		})
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := res.Schedule.Save(&b); err != nil {
			t.Fatal(err)
		}
		return res, b.Bytes()
	}
	r1, b1 := run(1)
	r8, b8 := run(8)
	if !bytes.Equal(b1, b8) {
		t.Error("1-worker and 8-worker runs discovered different schedules")
	}
	if r1.BestTime != r8.BestTime || r1.Accepted != r8.Accepted || r1.Infeasible != r8.Infeasible {
		t.Errorf("counter drift across workers: %+v vs %+v", r1, r8)
	}
}

// TestOptimizeErrors pins the sentinel contract.
func TestOptimizeErrors(t *testing.T) {
	a := discoveredPoint()
	_, presetSched, err := a.BestPreset()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := Optimize(ctx, nil, a.Costs(), Options{}); !errors.Is(err, errs.ErrIncompatible) {
		t.Errorf("nil schedule: got %v, want ErrIncompatible", err)
	}
	if _, err := Optimize(ctx, presetSched, nil, Options{}); !errors.Is(err, errs.ErrIncompatible) {
		t.Errorf("nil costs: got %v, want ErrIncompatible", err)
	}
	tight := verify.SlotBudget([]int{1, 1, 1, 1})
	if _, err := Optimize(ctx, presetSched, a.Costs(), Options{Budget: tight}); !errors.Is(err, errs.ErrUncertified) {
		t.Errorf("over-budget seed: got %v, want ErrUncertified", err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := Optimize(cancelled, presetSched, a.Costs(), Options{Iters: 50}); !errors.Is(err, errs.ErrCancelled) {
		t.Errorf("cancelled ctx: got %v, want ErrCancelled", err)
	}
}

// TestOptimizeFusedAndSplitPresets smokes the annealer across backward
// modes: fused (B), split (BAct+W) and fine-grained (WPiece) schedules
// all optimize without error and never regress.
func TestOptimizeFusedAndSplitPresets(t *testing.T) {
	est := sched.Unit()
	costs := sim.UniformCosts{Est: est, Act: 1}
	cases := []struct {
		name string
		make func() (*sched.Schedule, error)
	}{
		{"dapple", func() (*sched.Schedule, error) { return sched.DAPPLE(4, 8, est) }},
		{"zb1p", func() (*sched.Schedule, error) { return sched.ZB1P(4, 8, est) }},
		{"svpp-fine", func() (*sched.Schedule, error) {
			return sched.SVPP(sched.SVPPOptions{P: 4, V: 1, S: 2, N: 4, F: 4, Split: true, FineGrainedW: 2, Est: est})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := tc.make()
			if err != nil {
				t.Fatal(err)
			}
			res, err := Optimize(context.Background(), s, costs, Options{Seed: 3, Iters: 100})
			if err != nil {
				t.Fatal(err)
			}
			if res.BestTime > res.BaseTime+eps {
				t.Errorf("worsened: %.6f > %.6f", res.BestTime, res.BaseTime)
			}
			if !reflect.DeepEqual(opMultiset(s), opMultiset(res.Schedule)) {
				t.Error("optimization changed the op multiset")
			}
		})
	}
}

// opMultiset returns per-stage op multisets (order-insensitive).
func opMultiset(s *sched.Schedule) []map[sched.Op]int {
	out := make([]map[sched.Op]int, len(s.Stages))
	for k, ops := range s.Stages {
		out[k] = make(map[sched.Op]int, len(ops))
		for _, op := range ops {
			out[k][op]++
		}
	}
	return out
}

// TestDiscoveredReplaysThroughSession pins the fast-evaluation layer to
// the checked-in artifact: the incremental session and the batched
// evaluator must reproduce the full simulator bitwise on the discovered
// schedule, and all of them must land on the recorded iteration time.
// This is the regression gate for the session fast path at the exact
// point the optimizer bench replays.
func TestDiscoveredReplaysThroughSession(t *testing.T) {
	a, err := Discovered()
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.DiscoveredSchedule()
	if err != nil {
		t.Fatal(err)
	}
	opt := sim.Options{Sched: s, Costs: a.Costs(), MakespanOnly: true}
	full, err := sim.Run(opt)
	if err != nil {
		t.Fatalf("full replay: %v", err)
	}
	se, err := sim.NewSession(opt)
	if err != nil {
		t.Fatalf("binding session: %v", err)
	}
	inc, err := se.Eval(s)
	if err != nil {
		t.Fatalf("incremental replay: %v", err)
	}
	if math.Float64bits(inc.IterTime) != math.Float64bits(full.IterTime) ||
		math.Float64bits(inc.BubbleRatio) != math.Float64bits(full.BubbleRatio) {
		t.Fatalf("session replay diverges: inc %.17g/%.17g, full %.17g/%.17g",
			inc.IterTime, inc.BubbleRatio, full.IterTime, full.BubbleRatio)
	}
	batch, err := sim.EvaluateMany(context.Background(), []*sched.Schedule{s},
		sim.Options{Costs: a.Costs(), MakespanOnly: true}, 2)
	if err != nil {
		t.Fatalf("batched replay: %v", err)
	}
	if batch[0] == nil || math.Float64bits(batch[0].IterTime) != math.Float64bits(full.IterTime) {
		t.Fatalf("batched replay diverges: %v, full %.17g", batch[0], full.IterTime)
	}
	if diff := inc.IterTime - a.Opt.IterTime; diff > eps || diff < -eps {
		t.Fatalf("session replays discovered schedule to %.6f, artifact records %.6f", inc.IterTime, a.Opt.IterTime)
	}
}
