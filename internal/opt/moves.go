package opt

import (
	"math/rand"

	"mepipe/internal/sched"
)

// The neighbourhood. Each operator perturbs exactly one stage's op order
// and by construction preserves the schedule's op multiset — which is
// what makes verify.Options.AssumeComplete sound in the evaluation path.
// None of them tries to be clever about feasibility: deadlock-freedom and
// the memory budget are the certifier's job, and proposals it rejects
// cost one graph check, never a simulation.

// candidate is one proposed neighbour: the perturbed schedule plus the
// move descriptor (for obs events) and, after evaluation, its verdict.
type candidate struct {
	sched    *sched.Schedule
	operator string   // "swap", "shift" or "rebalance"
	stage    int      // the stage the move touched
	op       sched.Op // the op it displaced

	feasible bool
	time     float64
}

// propose draws one candidate from the neighbourhood of cur. All
// randomness comes from rng (the coordinator's stream); degenerate draws
// (single-op stages, zero displacements) fall through as no-op candidates
// rather than redrawing, keeping the rng consumption per proposal fixed.
func propose(rng *rand.Rand, cur *sched.Schedule, maxShift int) candidate {
	c := candidate{sched: cloneSchedule(cur)}
	switch rng.Intn(3) {
	case 0:
		proposeSwap(rng, &c)
	case 1:
		proposeShift(rng, &c, maxShift)
	default:
		proposeRebalance(rng, &c, maxShift)
	}
	return c
}

// proposeSwap exchanges two adjacent ops on one stage — the minimal
// reordering, and the workhorse late in the cooling schedule.
func proposeSwap(rng *rand.Rand, c *candidate) {
	c.operator = "swap"
	k := rng.Intn(c.sched.P)
	ops := c.sched.Stages[k]
	c.stage = k
	if len(ops) < 2 {
		return
	}
	i := rng.Intn(len(ops) - 1)
	ops[i], ops[i+1] = ops[i+1], ops[i]
	c.op = ops[i+1]
}

// proposeShift displaces one op up to maxShift positions along its
// stage, sliding the ops in between — the operator that carries an op
// across a slot boundary.
func proposeShift(rng *rand.Rand, c *candidate, maxShift int) {
	c.operator = "shift"
	k := rng.Intn(c.sched.P)
	ops := c.sched.Stages[k]
	c.stage = k
	if len(ops) < 2 {
		return
	}
	from := rng.Intn(len(ops))
	delta := rng.Intn(2*maxShift+1) - maxShift
	to := from + delta
	if to < 0 || to >= len(ops) || to == from {
		return
	}
	c.op = ops[from]
	displace(ops, from, to)
}

// proposeRebalance re-places one weight-gradient op (W or WPiece) at a
// uniformly drawn position on its stage — the move that redistributes
// deferred W-GEMM work into bubbles, which neither local operator above
// reaches quickly. On fused-backward schedules (no W ops) it degrades to
// a plain shift so the draw is never wasted.
func proposeRebalance(rng *rand.Rand, c *candidate, maxShift int) {
	c.operator = "rebalance"
	k := rng.Intn(c.sched.P)
	ops := c.sched.Stages[k]
	c.stage = k
	var ws []int
	for i, op := range ops {
		if op.Kind == sched.W || op.Kind == sched.WPiece {
			ws = append(ws, i)
		}
	}
	if len(ws) == 0 {
		proposeShiftAt(rng, c, k, maxShift)
		return
	}
	from := ws[rng.Intn(len(ws))]
	to := rng.Intn(len(ops))
	if to == from {
		return
	}
	c.op = ops[from]
	displace(ops, from, to)
}

// proposeShiftAt is proposeShift pinned to stage k (the rebalance
// fallback), keeping the operator label honest about what ran.
func proposeShiftAt(rng *rand.Rand, c *candidate, k, maxShift int) {
	c.operator = "shift"
	ops := c.sched.Stages[k]
	if len(ops) < 2 {
		return
	}
	from := rng.Intn(len(ops))
	delta := rng.Intn(2*maxShift+1) - maxShift
	to := from + delta
	if to < 0 || to >= len(ops) || to == from {
		return
	}
	c.op = ops[from]
	displace(ops, from, to)
}

// displace moves ops[from] to position to, sliding the range between.
func displace(ops []sched.Op, from, to int) {
	op := ops[from]
	if from < to {
		copy(ops[from:], ops[from+1:to+1])
	} else {
		copy(ops[to+1:], ops[to:from])
	}
	ops[to] = op
}
