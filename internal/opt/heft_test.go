package opt

import (
	"bytes"
	"testing"

	"mepipe/internal/sim"
	"mepipe/internal/verify"
)

// TestHeftSeedCertifies pins the list-scheduling seed's contract: for
// every base family the seed (when produced) passes full certification,
// preserves the op multiset, and reports its true simulated time.
func TestHeftSeedCertifies(t *testing.T) {
	costs := sim.Unit()
	for _, base := range moveBases(t) {
		seed, ht, ok := heftSeed(base, costs, nil)
		if !ok {
			t.Errorf("%s: unbudgeted HEFT seed unexpectedly dropped", base.Name)
			continue
		}
		if _, err := verify.Certify(seed, verify.Options{}); err != nil {
			t.Errorf("%s: HEFT seed fails full certification: %v", base.Name, err)
		}
		r, err := sim.Run(sim.Options{Sched: seed, Costs: costs})
		if err != nil {
			t.Errorf("%s: simulating HEFT seed: %v", base.Name, err)
			continue
		}
		if r.IterTime != ht {
			t.Errorf("%s: heftSeed reported %.6f, simulator says %.6f", base.Name, ht, r.IterTime)
		}
	}
}

// TestHeftSeedRespectsBudget: under a tight slot budget the budget-aware
// emission either produces a schedule whose sweep fits, or drops the
// seed — never an over-budget order.
func TestHeftSeedRespectsBudget(t *testing.T) {
	a := discoveredPoint()
	_, presetSched, err := a.BestPreset()
	if err != nil {
		t.Fatal(err)
	}
	seed, _, ok := heftSeed(presetSched, a.Costs(), a.Budget())
	if !ok {
		t.Fatal("budget-aware HEFT emission wedged at the canonical point")
	}
	cert, err := verify.Certify(seed, verify.Options{Budget: a.Budget()})
	if err != nil {
		t.Fatalf("budgeted HEFT seed fails certification: %v", err)
	}
	for k, peak := range cert.PeakFamilies {
		if peak > a.SlotBudget[k] {
			t.Errorf("stage %d: HEFT peak %d exceeds budget %d", k, peak, a.SlotBudget[k])
		}
	}
}

// TestHeftSeedDeterministic: same inputs, byte-identical seed.
func TestHeftSeedDeterministic(t *testing.T) {
	base := moveBases(t)[1]
	costs := sim.Unit()
	s1, t1, ok1 := heftSeed(base, costs, nil)
	s2, t2, ok2 := heftSeed(base, costs, nil)
	if !ok1 || !ok2 || t1 != t2 {
		t.Fatalf("ok=%v/%v t=%v/%v", ok1, ok2, t1, t2)
	}
	var b1, b2 bytes.Buffer
	if err := s1.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := s2.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("two HEFT seeds from identical inputs differ")
	}
}

// TestHeftSeedImprovesLooseBudget documents why the second seed exists:
// with slack memory, rank-greedy list scheduling beats the in-flight-
// capped preset outright at the canonical point.
func TestHeftSeedImprovesLooseBudget(t *testing.T) {
	a := discoveredPoint()
	best, presetSched, err := a.BestPreset()
	if err != nil {
		t.Fatal(err)
	}
	_, ht, ok := heftSeed(presetSched, a.Costs(), nil)
	if !ok {
		t.Fatal("unbudgeted HEFT seed dropped")
	}
	if ht >= best.IterTime {
		t.Errorf("unbudgeted HEFT seed %.6f does not beat preset %.6f at the canonical point", ht, best.IterTime)
	}
}
