// Package opt discovers pipeline schedules that beat the presets. It
// treats scheduling as local search over the op DAG (OptPipe's framing,
// see PAPERS.md): starting from the best preset — and from a HEFT-style
// list-scheduling seed over the dependency graph — it runs seeded,
// deterministic simulated annealing over certified op reorderings. Three
// neighbourhood operators (swap adjacent ops on a stage, shift an op
// across a slot boundary, rebalance weight-gradient placement) generate
// candidates; verify.Certify is the feasibility oracle and the
// discrete-event simulator the cost oracle, so every accepted candidate
// is provably deadlock-free and within the memory budget by
// construction, and infeasible candidates are rejected before a single
// simulated op runs.
//
// Determinism is load-bearing: the entire random stream (operator
// choice, positions, Metropolis draws) lives on the coordinator's seeded
// generator, and workers do pure evaluation only — so a (schedule, costs,
// Options) triple always discovers byte-identical schedules, regardless
// of Workers or machine. CI pins this (see internal/opt tests and
// docs/OPTIMIZER.md).
package opt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mepipe/internal/errs"
	"mepipe/internal/obs"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
	"mepipe/internal/verify"
)

// Options configures one Optimize run. The zero value selects sensible
// defaults for every field.
type Options struct {
	// Seed drives the proposal and acceptance stream. Two runs with the
	// same seed, schedule, costs and options discover identical
	// schedules.
	Seed int64

	// Iters is the number of annealing rounds (default 1500). Each
	// round proposes Proposals candidates and accepts at most one.
	Iters int

	// Proposals is the number of candidates generated per round
	// (default 4). It is part of the deterministic search trajectory;
	// Workers is not.
	Proposals int

	// Workers bounds how many candidates are evaluated concurrently
	// (default Proposals). It affects wall-clock speed only, never the
	// result.
	Workers int

	// InitTemp is the initial Metropolis temperature. Zero selects
	// 2% of the seed schedule's iteration time, scaling acceptance to
	// the cost landscape.
	InitTemp float64

	// Cool is the geometric cooling factor applied each round
	// (default 0.995).
	Cool float64

	// MaxShift bounds how far the shift operator may displace an op
	// (default 8 positions).
	MaxShift int

	// DisableHEFT skips the HEFT list-scheduling seed and anneals from
	// the input schedule alone.
	DisableHEFT bool

	// Budget, when non-nil, is enforced on every candidate: proposals
	// whose static memory sweep exceeds it are rejected before
	// simulation.
	Budget *verify.Budget

	// Trace, when non-nil, receives one obs.EvMove event per proposal,
	// with Cause "<operator>/<outcome>".
	Trace obs.Sink
}

func (o *Options) setDefaults() {
	if o.Iters <= 0 {
		o.Iters = 1500
	}
	if o.Proposals <= 0 {
		o.Proposals = 4
	}
	if o.Workers <= 0 {
		o.Workers = o.Proposals
	}
	if o.Cool <= 0 || o.Cool >= 1 {
		o.Cool = 0.995
	}
	if o.MaxShift <= 0 {
		o.MaxShift = 8
	}
}

// Result reports what the search achieved.
type Result struct {
	// Schedule is the best discovered schedule; Cert is its full
	// (completeness included) certificate under the run's Budget.
	Schedule *sched.Schedule
	Cert     *verify.Certificate

	// BaseTime is the input schedule's simulated iteration time;
	// HEFTTime the list-scheduling seed's (0 when disabled or
	// infeasible); BestTime the discovered schedule's. Seed names which
	// of the two the annealer started from ("preset" or "heft").
	BaseTime float64
	HEFTTime float64
	BestTime float64
	Seed     string

	// Search counters: Proposed candidates total, Infeasible rejected
	// by certification before simulation, Evaluated simulated, Accepted
	// taken as the current state, Improved times a new global best was
	// found.
	Proposed   int
	Infeasible int
	Evaluated  int
	Accepted   int
	Improved   int
}

// Gain returns the fractional improvement over the input schedule.
func (r *Result) Gain() float64 {
	if r.BaseTime <= 0 {
		return 0
	}
	return (r.BaseTime - r.BestTime) / r.BaseTime
}

const eps = 1e-9

// Optimize anneals the schedule under the cost model. The input is not
// modified. Errors wrap errs.ErrIncompatible (nil/invalid inputs),
// errs.ErrUncertified (the input schedule itself fails certification
// under the budget), or errs.ErrCancelled (ctx cancelled mid-search).
//
//mepipe:deterministic
func Optimize(ctx context.Context, s *sched.Schedule, costs sim.Costs, opt Options) (*Result, error) {
	if s == nil {
		return nil, fmt.Errorf("opt: nil schedule: %w", errs.ErrIncompatible)
	}
	if costs == nil {
		return nil, fmt.Errorf("opt: nil cost model: %w", errs.ErrIncompatible)
	}
	opt.setDefaults()

	// The input must certify in full — completeness included — before
	// the search may assume it; every later candidate only permutes op
	// positions, which is what makes AssumeComplete sound below.
	if _, err := verify.Certify(s, verify.Options{Budget: opt.Budget}); err != nil {
		return nil, fmt.Errorf("opt: seed schedule does not certify: %w", err)
	}
	base, err := sim.Run(sim.Options{Sched: s, Costs: costs, MakespanOnly: true})
	if err != nil {
		return nil, fmt.Errorf("opt: seed simulation: %w", err)
	}
	res := &Result{BaseTime: base.IterTime, Seed: "preset"}

	cur := cloneSchedule(s)
	curTime := base.IterTime
	if !opt.DisableHEFT {
		if h, ht, ok := heftSeed(s, costs, opt.Budget); ok {
			res.HEFTTime = ht
			if ht < curTime-eps {
				cur, curTime = h, ht
				res.Seed = "heft"
			}
		}
	}
	best := cloneSchedule(cur)
	bestTime := curTime

	if opt.InitTemp <= 0 {
		opt.InitTemp = 0.02 * curTime
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	temp := opt.InitTemp
	cands := make([]candidate, opt.Proposals)

	// Every candidate is a permutation of the seed's ops, so each worker
	// binds one incremental simulator session and re-propagates only the
	// window each move disturbs instead of replaying the whole pipeline.
	// Sessions affect wall-clock only: Eval is bitwise-identical to a
	// full sim.Run (the sim package's differential fuzzer gates this),
	// and the random stream above is drawn before evaluation, so the
	// search trajectory is untouched.
	sessions := make([]*sim.Session, opt.Workers)

	for round := 0; round < opt.Iters; round++ {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("opt: search %w after %d rounds: %v", errs.ErrCancelled, round, ctx.Err())
		}
		// All randomness is drawn here, before any evaluation, so the
		// trajectory cannot depend on worker timing.
		for i := range cands {
			cands[i] = propose(rng, cur, opt.MaxShift)
		}
		u := rng.Float64()

		forEachWorker(opt.Workers, len(cands), func(w, i int) {
			evaluate(&cands[i], costs, opt.Budget, &sessions[w])
		})

		res.Proposed += len(cands)
		pick := -1
		for i := range cands {
			c := &cands[i]
			if !c.feasible {
				res.Infeasible++
				continue
			}
			res.Evaluated++
			if pick < 0 || c.time < cands[pick].time-eps {
				pick = i
			}
		}
		accepted := -1
		if pick >= 0 {
			c := &cands[pick]
			delta := c.time - curTime
			if delta < -eps || (temp > 0 && u < math.Exp(-delta/temp)) {
				cur, curTime = c.sched, c.time
				res.Accepted++
				accepted = pick
				if curTime < bestTime-eps {
					best = cloneSchedule(cur)
					bestTime = curTime
					res.Improved++
				}
			}
		}
		if opt.Trace != nil {
			emitMoves(opt.Trace, cands, accepted)
		}
		temp *= opt.Cool
	}

	best.Name = s.Name + "+opt"
	cert, err := verify.Certify(best, verify.Options{Budget: opt.Budget})
	if err != nil {
		// Unreachable by construction — every accepted candidate was
		// certified — but a final full proof keeps the guarantee
		// independent of the search internals.
		return nil, fmt.Errorf("opt: discovered schedule failed final certification: %w", err)
	}
	res.Schedule = best
	res.Cert = cert
	res.BestTime = bestTime
	return res, nil
}

// evaluate certifies the candidate and, only if it certifies, simulates
// it through the worker's incremental session. Infeasible candidates
// never reach the simulator — the property the package tests pin.
func evaluate(c *candidate, costs sim.Costs, budget *verify.Budget, sess **sim.Session) {
	if _, err := verify.Certify(c.sched, verify.Options{Budget: budget, AssumeComplete: true}); err != nil {
		c.feasible = false
		return
	}
	r, err := evalSim(c.sched, costs, sess)
	if err != nil || r.OOM {
		c.feasible = false
		return
	}
	c.feasible = true
	c.time = r.IterTime
}

// evalSim runs the makespan-only simulation via the worker's bound
// session, (re)binding it lazily on first use or when the candidate's
// shape diverges from the bound one (never in a normal run — every
// candidate permutes the same ops).
func evalSim(s *sched.Schedule, costs sim.Costs, sess **sim.Session) (*sim.Result, error) {
	if *sess != nil {
		r, err := (*sess).Eval(s)
		if err == nil || !errors.Is(err, errs.ErrIncompatible) {
			return r, err
		}
		*sess = nil
	}
	se, err := sim.NewSession(sim.Options{Sched: s, Costs: costs, MakespanOnly: true})
	if err != nil {
		return nil, err
	}
	*sess = se
	return se.Eval(s)
}

// emitMoves reports one EvMove per proposal; accepted marks which (if
// any) became the current state this round.
func emitMoves(sink obs.Sink, cands []candidate, accepted int) {
	for i := range cands {
		c := &cands[i]
		outcome := "reject"
		switch {
		case !c.feasible:
			outcome = "infeasible"
		case i == accepted:
			outcome = "accept"
		}
		sink.Emit(obs.Event{
			Kind: obs.EvMove, Stage: c.stage, From: c.stage, Op: c.op,
			Start: c.time, End: c.time, Cause: c.operator + "/" + outcome,
		})
	}
}

func cloneSchedule(s *sched.Schedule) *sched.Schedule {
	c := *s
	c.Stages = make([][]sched.Op, len(s.Stages))
	for k := range s.Stages {
		c.Stages[k] = append([]sched.Op(nil), s.Stages[k]...)
	}
	return &c
}
