package opt

import (
	"container/heap"

	"mepipe/internal/sched"
	"mepipe/internal/sim"
	"mepipe/internal/verify"
)

// The HEFT-style second seed (cf. the Octopus scheduler in SNIPPETS.md):
// rank every (stage, op) node by its upward rank — own cost plus the
// most expensive downstream chain, communication included — then emit
// ops in globally rank-greedy topological order, keeping each stage's
// emission subsequence as its new program order. Stage assignment is
// fixed by the placement, so unlike classical HEFT only the *order* is
// being decided; because the emission is one topological order of the
// dependency graph, the seed is deadlock-free by construction. The
// emission is budget-aware: an op whose allocation would push its stage
// past the memory budget (by the certifier's sweep rules) is parked
// until a release on that stage, so the greedy order stays within the
// budget instead of front-loading forwards and getting rejected
// wholesale. If parking wedges (nothing emittable fits), the seed is
// dropped rather than repaired.

type heftNode struct {
	stage int
	op    sched.Op
	pos   int // original position on its stage (deterministic tie-break)
}

// heftSeed builds the list-scheduling seed for s under costs. It returns
// ok=false when the seed cannot be used: a dangling dependency (the
// input was not certified) or a budget the greedy order does not fit.
func heftSeed(s *sched.Schedule, costs sim.Costs, budget *verify.Budget) (*sched.Schedule, float64, bool) {
	seed, ok := heftOrder(s, costs, budget)
	if !ok {
		return nil, 0, false
	}
	if _, err := verify.Certify(seed, verify.Options{Budget: budget, AssumeComplete: true}); err != nil {
		return nil, 0, false
	}
	r, err := sim.Run(sim.Options{Sched: seed, Costs: costs, MakespanOnly: true})
	if err != nil || r.OOM {
		return nil, 0, false
	}
	return seed, r.IterTime, true
}

// heftOrder runs the budget-aware rank-greedy emission and returns the
// re-ordered schedule (not yet certified).
func heftOrder(s *sched.Schedule, costs sim.Costs, budget *verify.Budget) (*sched.Schedule, bool) {
	nodes, index, ok := buildNodes(s)
	if !ok {
		return nil, false
	}
	preds, succs, ok := buildEdges(s, nodes, index)
	if !ok {
		return nil, false
	}
	ranks := upwardRanks(s, costs, nodes, succs)

	// Rank-greedy topological emission: a node becomes ready when all
	// its dependency predecessors have been emitted; among ready nodes
	// the highest rank goes first (ties: lower stage, then original
	// position — fully deterministic). Ready nodes that do not fit the
	// stage's remaining budget are parked and retried after the next
	// release on that stage.
	indeg := make([]int, len(nodes))
	for i, ps := range preds {
		indeg[i] = len(ps)
	}
	h := &nodeHeap{nodes: nodes, ranks: ranks}
	for i, d := range indeg {
		if d == 0 {
			heap.Push(h, i)
		}
	}
	st := newSweeper(s, budget)
	parked := make([][]int, s.P)
	order := make([][]sched.Op, s.P)
	for k := range order {
		order[k] = make([]sched.Op, 0, len(s.Stages[k]))
	}
	emitted := 0
	for h.Len() > 0 {
		i := heap.Pop(h).(int)
		n := &nodes[i]
		if !st.fits(n.stage, n.op) {
			parked[n.stage] = append(parked[n.stage], i)
			continue
		}
		order[n.stage] = append(order[n.stage], n.op)
		freed := st.emit(n.stage, n.op)
		emitted++
		for _, t := range succs[i] {
			indeg[t]--
			if indeg[t] == 0 {
				heap.Push(h, t)
			}
		}
		if freed && len(parked[n.stage]) > 0 {
			for _, p := range parked[n.stage] {
				heap.Push(h, p)
			}
			parked[n.stage] = parked[n.stage][:0]
		}
	}
	if emitted != len(nodes) {
		// Either a cyclic input (the certifier said otherwise) or the
		// budget wedged the greedy emission; no seed either way.
		return nil, false
	}

	seed := cloneSchedule(s)
	seed.Stages = order
	return seed, true
}

// sweeper replays the certifier's static retention rules during
// emission so the greedy order never exceeds the budget it will later be
// certified against. Nil budgets (or nil footprints) degrade exactly as
// verify.Budget does: unit family slots, zero gradient retention.
//
// Admission is group-reserving: the backward of (micro, chunk) can only
// start once all S of its slice forwards are retained simultaneously
// (the KV-gradient chain), so admitting one slice's forward without room
// for its siblings wedges the emission — all remaining allocations are
// over budget and every release is behind one of them. The first forward
// of a (micro, chunk) group therefore reserves the whole group's bytes,
// and later slices draw the reservation down instead of new budget.
type sweeper struct {
	s      *sched.Schedule
	caps   []int64
	fam    func(stage int, f sched.Op) int64
	grad   func(stage int, b sched.Op) int64
	live   []int64              // retained bytes (the certifier's quantity)
	pend   []int64              // reserved, not yet allocated
	fams   []map[sched.Op]int64 // family key -> retained bytes
	pieces []map[sched.Op]int   // family key -> executed WPieces
	groups []map[[2]int]int64   // (micro, chunk) -> remaining reservation
}

func newSweeper(s *sched.Schedule, b *verify.Budget) *sweeper {
	st := &sweeper{
		s:    s,
		fam:  func(int, sched.Op) int64 { return 1 },
		grad: func(int, sched.Op) int64 { return 0 },
	}
	if b != nil {
		st.caps = b.ActBudget
		if b.FamilyBytes != nil {
			st.fam = b.FamilyBytes
		}
		if b.GradBytes != nil {
			st.grad = b.GradBytes
		}
	}
	st.live = make([]int64, s.P)
	st.pend = make([]int64, s.P)
	st.fams = make([]map[sched.Op]int64, s.P)
	st.pieces = make([]map[sched.Op]int, s.P)
	st.groups = make([]map[[2]int]int64, s.P)
	for k := 0; k < s.P; k++ {
		st.fams[k] = make(map[sched.Op]int64)
		st.pieces[k] = make(map[sched.Op]int)
		st.groups[k] = make(map[[2]int]int64)
	}
	return st
}

// groupBytes sums the slice-forward footprints of op's (micro, chunk)
// group on stage k — the co-residency the backward chain will demand.
func (st *sweeper) groupBytes(k int, op sched.Op) int64 {
	var sum int64
	for i := 0; i < st.s.S; i++ {
		sum += st.fam(k, sched.Op{Kind: sched.F, Micro: op.Micro, Slice: i, Chunk: op.Chunk})
	}
	return sum
}

// fits reports whether emitting op next on stage k stays within the
// stage's budget, reservations included. Releasing kinds always fit.
func (st *sweeper) fits(k int, op sched.Op) bool {
	if st.caps == nil || k >= len(st.caps) {
		return true
	}
	switch op.Kind {
	case sched.F:
		if _, reserved := st.groups[k][[2]int{op.Micro, op.Chunk}]; reserved {
			return true // drawn from the group's reservation
		}
		return st.live[k]+st.pend[k]+st.groupBytes(k, op) <= st.caps[k]
	case sched.BAct:
		return st.live[k]+st.pend[k]+st.grad(k, op) <= st.caps[k]
	}
	return true
}

// emit applies op to the sweep state and reports whether it released
// retention (the signal to retry parked ops on stage k).
func (st *sweeper) emit(k int, op sched.Op) bool {
	key := op.Key()
	switch op.Kind {
	case sched.F:
		g := [2]int{op.Micro, op.Chunk}
		add := st.fam(k, op)
		if rem, reserved := st.groups[k][g]; reserved {
			st.groups[k][g] = rem - add
			st.pend[k] -= add
			if st.groups[k][g] <= 0 {
				delete(st.groups[k], g)
			}
		} else if rest := st.groupBytes(k, op) - add; rest > 0 {
			st.groups[k][g] = rest
			st.pend[k] += rest
		}
		st.fams[k][key] += add
		st.live[k] += add
	case sched.B, sched.W:
		st.live[k] -= st.fams[k][key]
		delete(st.fams[k], key)
		return true
	case sched.BAct:
		add := st.grad(k, op)
		st.fams[k][key] += add
		st.live[k] += add
	case sched.WPiece:
		st.pieces[k][key]++
		if st.pieces[k][key] == st.s.WPieces {
			st.live[k] -= st.fams[k][key]
			delete(st.fams[k], key)
			delete(st.pieces[k], key)
			return true
		}
	}
	return false
}

func buildNodes(s *sched.Schedule) ([]heftNode, map[verify.Node]int, bool) {
	var nodes []heftNode
	index := make(map[verify.Node]int)
	for k, ops := range s.Stages {
		for pos, op := range ops {
			key := verify.Node{Stage: k, Op: op}
			if _, dup := index[key]; dup {
				return nil, nil, false
			}
			index[key] = len(nodes)
			nodes = append(nodes, heftNode{stage: k, op: op, pos: pos})
		}
	}
	return nodes, index, true
}

func buildEdges(s *sched.Schedule, nodes []heftNode, index map[verify.Node]int) (preds, succs [][]int, ok bool) {
	preds = make([][]int, len(nodes))
	succs = make([][]int, len(nodes))
	var deps []sched.Dep
	for i := range nodes {
		n := &nodes[i]
		deps = s.Deps(deps[:0], n.stage, n.op)
		for _, d := range deps {
			j, found := index[verify.Node{Stage: d.Stage, Op: d.Op}]
			if !found {
				return nil, nil, false
			}
			preds[i] = append(preds[i], j)
			succs[j] = append(succs[j], i)
		}
	}
	return preds, succs, true
}

// upwardRanks computes rank(u) = cost(u) + max over successors v of
// (comm(u→v) + rank(v)), in reverse topological order via Kahn's
// algorithm on out-degrees.
func upwardRanks(s *sched.Schedule, costs sim.Costs, nodes []heftNode, succs [][]int) []float64 {
	ranks := make([]float64, len(nodes))
	outdeg := make([]int, len(nodes))
	preds := make([][]int, len(nodes))
	for i, ss := range succs {
		outdeg[i] = len(ss)
		for _, t := range ss {
			preds[t] = append(preds[t], i)
		}
	}
	queue := make([]int, 0, len(nodes))
	for i, d := range outdeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		n := &nodes[i]
		best := 0.0
		for _, t := range succs[i] {
			edge := ranks[t]
			if nodes[t].stage != n.stage {
				edge += costs.CommTime(n.stage, nodes[t].stage, n.op)
			}
			if edge > best {
				best = edge
			}
		}
		ranks[i] = costs.OpTime(n.stage, n.op) + best
		for _, p := range preds[i] {
			outdeg[p]--
			if outdeg[p] == 0 {
				queue = append(queue, p)
			}
		}
	}
	return ranks
}

// nodeHeap orders ready nodes by descending rank, then stage, then
// original position — the deterministic emission priority.
type nodeHeap struct {
	nodes []heftNode
	ranks []float64
	items []int
}

func (h *nodeHeap) Len() int { return len(h.items) }
func (h *nodeHeap) Less(a, b int) bool {
	i, j := h.items[a], h.items[b]
	if h.ranks[i] != h.ranks[j] {
		return h.ranks[i] > h.ranks[j]
	}
	if h.nodes[i].stage != h.nodes[j].stage {
		return h.nodes[i].stage < h.nodes[j].stage
	}
	return h.nodes[i].pos < h.nodes[j].pos
}
func (h *nodeHeap) Swap(a, b int) { h.items[a], h.items[b] = h.items[b], h.items[a] }
func (h *nodeHeap) Push(x any)    { h.items = append(h.items, x.(int)) }
func (h *nodeHeap) Pop() any {
	x := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return x
}
