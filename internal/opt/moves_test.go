package opt

import (
	"math/rand"
	"reflect"
	"testing"

	"mepipe/internal/sched"
	"mepipe/internal/sim"
	"mepipe/internal/verify"
)

// countingCosts wraps a cost model and counts OpTime calls — the probe
// that proves infeasible candidates never reach the simulator.
type countingCosts struct {
	sim.Costs
	opCalls int
}

func (c *countingCosts) OpTime(stage int, op sched.Op) float64 {
	c.opCalls++
	return c.Costs.OpTime(stage, op)
}

func moveBases(t *testing.T) []*sched.Schedule {
	t.Helper()
	est := sched.Unit()
	dapple, err := sched.DAPPLE(4, 6, est)
	if err != nil {
		t.Fatal(err)
	}
	zb, err := sched.ZB1P(4, 6, est)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := sched.SVPP(sched.SVPPOptions{P: 4, V: 1, S: 2, N: 4, F: 4, Split: true, FineGrainedW: 2, Est: est})
	if err != nil {
		t.Fatal(err)
	}
	return []*sched.Schedule{dapple, zb, fine}
}

// TestMovesCertifyOrRejectBeforeSim is the neighbourhood property test:
// for thousands of seeded proposals from every operator over fused,
// split and fine-grained bases, each candidate either certifies (under
// AssumeComplete, soundly — the multiset is proven preserved below) or
// is rejected before a single simulated op runs.
func TestMovesCertifyOrRejectBeforeSim(t *testing.T) {
	operators := []struct {
		name  string
		apply func(rng *rand.Rand, c *candidate)
	}{
		{"swap", func(rng *rand.Rand, c *candidate) { proposeSwap(rng, c) }},
		{"shift", func(rng *rand.Rand, c *candidate) { proposeShift(rng, c, 8) }},
		{"rebalance", func(rng *rand.Rand, c *candidate) { proposeRebalance(rng, c, 8) }},
	}
	for _, base := range moveBases(t) {
		budget := slackBudget(t, base)
		baseSet := opMultiset(base)
		for _, op := range operators {
			rng := rand.New(rand.NewSource(42))
			counter := &countingCosts{Costs: sim.Unit()}
			var sess *sim.Session
			for i := 0; i < 500; i++ {
				c := candidate{sched: cloneSchedule(base)}
				op.apply(rng, &c)

				// Every operator preserves the op multiset — the
				// property that makes AssumeComplete sound.
				if !reflect.DeepEqual(baseSet, opMultiset(c.sched)) {
					t.Fatalf("%s on %s: proposal %d changed the op multiset", op.name, base.Name, i)
				}
				// AssumeComplete certification must agree with the full
				// check on multiset-preserving candidates.
				_, fastErr := verify.Certify(c.sched, verify.Options{Budget: budget, AssumeComplete: true})
				_, fullErr := verify.Certify(c.sched, verify.Options{Budget: budget})
				if (fastErr == nil) != (fullErr == nil) {
					t.Fatalf("%s on %s: AssumeComplete disagrees with full certification: fast=%v full=%v",
						op.name, base.Name, fastErr, fullErr)
				}

				before := counter.opCalls
				evaluate(&c, counter, budget, &sess)
				if fastErr != nil {
					if c.feasible {
						t.Fatalf("%s on %s: uncertified candidate marked feasible", op.name, base.Name)
					}
					if counter.opCalls != before {
						t.Fatalf("%s on %s: uncertified candidate was simulated (%d OpTime calls)",
							op.name, base.Name, counter.opCalls-before)
					}
				} else if !c.feasible {
					t.Fatalf("%s on %s: certified candidate marked infeasible", op.name, base.Name)
				}
			}
		}
	}
}

// slackBudget certifies the base and allows one extra family of slack,
// so proposals near the boundary exercise both accept and reject paths.
func slackBudget(t *testing.T, s *sched.Schedule) *verify.Budget {
	t.Helper()
	cert, err := verify.Certify(s, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	slots := make([]int, len(cert.PeakFamilies))
	for k, p := range cert.PeakFamilies {
		slots[k] = p + 1
	}
	return verify.SlotBudget(slots)
}

// TestProposeConsumesFixedRandomness pins that a proposal's rng draw
// count never depends on the candidate's content — the invariant that
// keeps the whole trajectory reproducible.
func TestProposeConsumesFixedRandomness(t *testing.T) {
	base := moveBases(t)[0]
	r1 := rand.New(rand.NewSource(9))
	r2 := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		propose(r1, base, 8)
		propose(r2, base, 8)
		if a, b := r1.Int63(), r2.Int63(); a != b {
			t.Fatalf("after proposal %d the rng streams diverged", i)
		}
	}
}

// TestDisplaceRoundTrips sanity-checks the displacement helper.
func TestDisplaceRoundTrips(t *testing.T) {
	mk := func() []sched.Op {
		return []sched.Op{
			{Kind: sched.F, Micro: 0}, {Kind: sched.F, Micro: 1},
			{Kind: sched.F, Micro: 2}, {Kind: sched.F, Micro: 3},
		}
	}
	ops := mk()
	displace(ops, 0, 3)
	want := []sched.Op{{Kind: sched.F, Micro: 1}, {Kind: sched.F, Micro: 2}, {Kind: sched.F, Micro: 3}, {Kind: sched.F, Micro: 0}}
	if !reflect.DeepEqual(ops, want) {
		t.Errorf("forward displace: got %v", ops)
	}
	displace(ops, 3, 0)
	if !reflect.DeepEqual(ops, mk()) {
		t.Errorf("displace did not round-trip: got %v", ops)
	}
}
