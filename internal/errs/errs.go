// Package errs defines the sentinel errors shared across the execution
// engines and the strategy search, so callers can classify failures with
// errors.Is instead of matching message strings. The root façade re-exports
// them as mepipe.ErrOOM, mepipe.ErrIncompatible and mepipe.ErrCancelled.
package errs

import "errors"

var (
	// ErrOOM marks configurations whose memory demand cannot fit the
	// device budget: static weights/optimizer state exceeding capacity,
	// or an SVPP variant whose minimum in-flight activations overflow
	// the per-stage activation budget.
	ErrOOM = errors.New("out of memory")

	// ErrIncompatible marks configurations a system cannot express
	// (e.g. ZB with recomputation, DAPPLE with slices) and schedule /
	// option combinations the engines reject (e.g. the dynamic
	// weight-gradient engine on a fused-backward schedule).
	ErrIncompatible = errors.New("incompatible configuration")

	// ErrCancelled marks runs abandoned because the caller's context was
	// cancelled or timed out.
	ErrCancelled = errors.New("cancelled")

	// ErrStageFailed marks iterations lost to a pipeline-stage failure
	// the runtime could not recover from: an (injected or real) crash
	// with no checkpoint to restore, a communication error that
	// outlived its retry budget, or a stage aborted because a peer
	// failed. Every goroutine of a failed iteration exits; the returned
	// error carries the originating stage and op.
	ErrStageFailed = errors.New("stage failed")

	// ErrTransient marks communication failures that are expected to
	// succeed on retry (flaky links, dropped frames). The runtime
	// retries them with exponential backoff before escalating to
	// ErrStageFailed.
	ErrTransient = errors.New("transient communication failure")

	// ErrUncertified marks schedules that failed static certification
	// (internal/verify): a dependency cycle that would deadlock any
	// executor, a table whose swept activation retention exceeds the
	// memory plan, or an incomplete op family. Both execution engines
	// and the strategy search reject uncertified schedules before
	// running them.
	ErrUncertified = errors.New("schedule failed certification")
)
