package faults

import (
	"testing"
	"time"
)

// TestPaperClaim reproduces §9: failure overhead under 5% for a thousand
// RTX 4090s with few-minute in-memory recovery.
func TestPaperClaim(t *testing.T) {
	o, err := Default4090(1000).Overhead()
	if err != nil {
		t.Fatal(err)
	}
	if o >= 0.05 {
		t.Errorf("1000-GPU overhead %.1f%%, paper claims < 5%%", 100*o)
	}
	if o < 0.01 {
		t.Errorf("1000-GPU overhead %.2f%% implausibly low", 100*o)
	}
}

func TestOverheadGrowsWithScale(t *testing.T) {
	prev := 0.0
	for _, gpus := range []int{64, 256, 1024, 4096} {
		o, err := Default4090(gpus).Overhead()
		if err != nil {
			t.Fatal(err)
		}
		if o <= prev {
			t.Fatalf("overhead not increasing with cluster size at %d GPUs", gpus)
		}
		prev = o
	}
}

func TestClusterMTBF(t *testing.T) {
	r := Default4090(1000)
	mtbf, err := r.ClusterMTBF()
	if err != nil {
		t.Fatal(err)
	}
	// §9 / OPT logbook: ~12 hours for a thousand GPUs.
	if mtbf < 10*time.Hour || mtbf > 14*time.Hour {
		t.Errorf("cluster MTBF %v, want ≈ 12 h", mtbf)
	}
}

func TestYoungDalyShape(t *testing.T) {
	r := Default4090(1000)
	tau, err := r.OptimalInterval()
	if err != nil {
		t.Fatal(err)
	}
	// Perturbing the interval must not beat the Young–Daly optimum.
	waste := func(tauS float64) float64 {
		mtbf, _ := r.ClusterMTBF()
		return r.CheckpointCost.Seconds()/tauS + (tauS/2+r.RecoveryCost.Seconds())/mtbf.Seconds()
	}
	opt := waste(tau.Seconds())
	for _, f := range []float64{0.5, 0.8, 1.25, 2} {
		if waste(tau.Seconds()*f) < opt-1e-12 {
			t.Errorf("interval %.0fs beats the Young–Daly choice %.0fs", tau.Seconds()*f, tau.Seconds())
		}
	}
}

func TestCheaperCheckpointsHelp(t *testing.T) {
	slow := Default4090(1000)
	slow.CheckpointCost = 10 * time.Minute // disk-based checkpointing
	fast := Default4090(1000)              // in-memory, 30 s
	so, _ := slow.Overhead()
	fo, _ := fast.Overhead()
	if fo >= so {
		t.Errorf("in-memory checkpointing (%.1f%%) should beat disk (%.1f%%)", 100*fo, 100*so)
	}
}

func TestValidation(t *testing.T) {
	if _, err := (Reliability{GPUs: 0, PerGPUMTBF: time.Hour}).ClusterMTBF(); err == nil {
		t.Error("zero GPUs accepted")
	}
	bad := Default4090(8)
	bad.CheckpointCost = 0
	if _, err := bad.OptimalInterval(); err == nil {
		t.Error("zero checkpoint cost accepted")
	}
	if _, err := bad.Overhead(); err == nil {
		t.Error("overhead with zero checkpoint cost accepted")
	}
	g, err := Default4090(64).Goodput()
	if err != nil || g <= 0.95 || g >= 1 {
		t.Errorf("64-GPU goodput %v, want just under 1", g)
	}
}
