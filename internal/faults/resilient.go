package faults

import (
	"fmt"
	"math/rand"
	"time"
)

// ResilientOptions configures an executed reliability evaluation: instead
// of trusting the closed-form Young–Daly estimate, Resilient samples
// failure times from the cluster's exponential failure process and walks a
// virtual training timeline checkpoint by checkpoint, measuring how much
// wall-clock time actually went to checkpoints, lost work, and recovery.
// Optionally it drives a real injected-failure pipeline iteration per
// sampled failure, tying the analytical model to the live runtime.
type ResilientOptions struct {
	Rel Reliability

	// Horizon is the simulated training duration to walk.
	Horizon time.Duration

	// Interval overrides the checkpoint interval; 0 uses the Young–Daly
	// optimum.
	Interval time.Duration

	// Seed drives the failure-time sampling. The walk uses virtual time
	// and seeded draws only, so a seed fixes the result byte for byte.
	Seed int64

	// Execute, when non-nil, runs one real injected-failure iteration for
	// a sampled failure: the k'th executed failure receives a
	// deterministic sub-seed derived from Seed. It returns how many ops
	// the runtime replayed during recovery; an error aborts the
	// evaluation. MaxExecute caps invocations (0 means every failure).
	Execute    func(k int, seed int64) (replayed int, err error)
	MaxExecute int
}

// ResilientResult compares the measured walk against the prediction.
type ResilientResult struct {
	// Predicted is the closed-form waste fraction at the interval used;
	// Measured is the walk's (checkpoint + lost + recovery) / wall.
	Predicted, Measured float64

	// Interval is the checkpoint interval the walk used.
	Interval time.Duration

	// Failures sampled and checkpoints committed during the walk.
	Failures, Checkpoints int

	// Wall-clock decomposition of the walk (Wall = Useful +
	// CheckpointTime + LostWork + RecoveryTime).
	Wall, Useful, CheckpointTime, LostWork, RecoveryTime time.Duration

	// Executed counts real runtime iterations driven through Execute;
	// ReplayedOps sums the ops they replayed during recovery.
	Executed, ReplayedOps int
}

// String renders the comparison in the fixed format the chaos CLI prints.
func (r *ResilientResult) String() string {
	return fmt.Sprintf(
		"predicted %.4f measured %.4f (Δ %+.4f) interval %v failures %d checkpoints %d",
		r.Predicted, r.Measured, r.Measured-r.Predicted, r.Interval.Round(time.Second),
		r.Failures, r.Checkpoints)
}

// Resilient walks the failure process and returns the measured overhead
// next to the Young–Daly prediction. Useful work is only credited once the
// checkpoint covering it commits; work in flight when a failure lands is
// counted lost, exactly like the runtime's restore-and-replay discards it.
func Resilient(opt ResilientOptions) (*ResilientResult, error) {
	mtbf, err := opt.Rel.ClusterMTBF()
	if err != nil {
		return nil, err
	}
	if opt.Horizon <= 0 {
		return nil, fmt.Errorf("faults: horizon %v must be positive", opt.Horizon)
	}
	tau := opt.Interval
	if tau == 0 {
		if tau, err = opt.Rel.OptimalInterval(); err != nil {
			return nil, err
		}
	}
	pred, err := opt.Rel.OverheadAt(tau)
	if err != nil {
		return nil, err
	}

	var (
		rng     = rand.New(rand.NewSource(opt.Seed))
		horizon = opt.Horizon.Seconds()
		mtbfS   = mtbf.Seconds()
		tauS    = tau.Seconds()
		ckptS   = opt.Rel.CheckpointCost.Seconds()
		recS    = opt.Rel.RecoveryCost.Seconds()
	)
	res := &ResilientResult{Predicted: pred, Interval: tau}
	var wall, useful, ckptT, lostT, recT float64
	var seg float64 // uncommitted useful seconds since the last checkpoint
	nextFail := wall + rng.ExpFloat64()*mtbfS

	fail := func(doomed float64) error {
		lostT += doomed
		recT += recS
		wall += recS
		seg = 0
		res.Failures++
		if opt.Execute != nil && (opt.MaxExecute == 0 || res.Executed < opt.MaxExecute) {
			replayed, err := opt.Execute(res.Executed, opt.Seed^int64(res.Failures)*0x5851f42d4c957f2d)
			if err != nil {
				return fmt.Errorf("faults: executed failure %d: %w", res.Executed, err)
			}
			res.Executed++
			res.ReplayedOps += replayed
		}
		nextFail = wall + rng.ExpFloat64()*mtbfS
		return nil
	}

	for wall < horizon {
		// Work until the segment fills, then try to commit a checkpoint;
		// a failure anywhere in between discards the whole segment.
		segEnd := wall + (tauS - seg)
		if segEnd > nextFail {
			doomed := seg + (nextFail - wall)
			wall = nextFail
			if err := fail(doomed); err != nil {
				return nil, err
			}
			continue
		}
		if segEnd >= horizon {
			done := horizon - wall
			useful += seg + done
			wall = horizon
			break
		}
		seg = tauS
		wall = segEnd
		if wall+ckptS > nextFail {
			doomed := seg + (nextFail - wall) // segment plus partial checkpoint
			wall = nextFail
			if err := fail(doomed); err != nil {
				return nil, err
			}
			continue
		}
		wall += ckptS
		ckptT += ckptS
		useful += seg
		seg = 0
		res.Checkpoints++
	}

	res.Wall = secs(wall)
	res.Useful = secs(useful)
	res.CheckpointTime = secs(ckptT)
	res.LostWork = secs(lostT)
	res.RecoveryTime = secs(recT)
	if wall > 0 {
		res.Measured = (ckptT + lostT + recT) / wall
	}
	return res, nil
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
