// Package faults models the hardware-reliability question §9 raises:
// training on thousands of consumer GPUs means frequent failures, and the
// paper estimates — citing in-memory checkpointing systems with
// few-minute recovery — that failures cost under 5% of throughput for a
// thousand RTX 4090s. This package makes that estimate reproducible with
// the standard Young–Daly checkpoint model.
package faults

import (
	"fmt"
	"math"
	"time"
)

// Reliability describes one cluster's failure and checkpoint behaviour.
type Reliability struct {
	// GPUs in the job.
	GPUs int
	// PerGPUMTBF is the mean time between failures of a single
	// accelerator. §9 cites ~12 h MTBF for a thousand A100s (the OPT-175B
	// logbook), i.e. ~12,000 GPU-hours per failure; consumer parts are
	// assumed comparable.
	PerGPUMTBF time.Duration
	// CheckpointCost is the time to take one checkpoint (in-memory
	// checkpointing systems like Gemini bring this to tens of seconds).
	CheckpointCost time.Duration
	// RecoveryCost is the time to detect a failure and restart from the
	// last checkpoint ("a few minutes", §9).
	RecoveryCost time.Duration
}

// Default4090 returns §9's scenario for an n-GPU RTX 4090 job.
func Default4090(gpus int) Reliability {
	return Reliability{
		GPUs:           gpus,
		PerGPUMTBF:     12000 * time.Hour,
		CheckpointCost: 30 * time.Second,
		RecoveryCost:   5 * time.Minute,
	}
}

// ClusterMTBF returns the job-level mean time between failures (any GPU
// failing fails the synchronous job).
func (r Reliability) ClusterMTBF() (time.Duration, error) {
	if r.GPUs <= 0 || r.PerGPUMTBF <= 0 {
		return 0, fmt.Errorf("faults: need positive GPUs (%d) and MTBF (%v)", r.GPUs, r.PerGPUMTBF)
	}
	return r.PerGPUMTBF / time.Duration(r.GPUs), nil
}

// OptimalInterval returns the Young–Daly checkpoint interval
// √(2·C·MTBF_cluster).
func (r Reliability) OptimalInterval() (time.Duration, error) {
	mtbf, err := r.ClusterMTBF()
	if err != nil {
		return 0, err
	}
	if r.CheckpointCost <= 0 {
		return 0, fmt.Errorf("faults: checkpoint cost %v must be positive", r.CheckpointCost)
	}
	sec := math.Sqrt(2 * r.CheckpointCost.Seconds() * mtbf.Seconds())
	return time.Duration(sec * float64(time.Second)), nil
}

// Overhead returns the fraction of wall-clock time lost to checkpointing,
// lost work, and recovery at the Young–Daly interval:
//
//	waste = C/τ + (τ/2 + R) / MTBF_cluster
func (r Reliability) Overhead() (float64, error) {
	tau, err := r.OptimalInterval()
	if err != nil {
		return 0, err
	}
	return r.OverheadAt(tau)
}

// OverheadAt returns the waste fraction at an arbitrary checkpoint
// interval tau (clamped to 1 — a cluster failing faster than it can
// checkpoint makes no progress at all).
func (r Reliability) OverheadAt(tau time.Duration) (float64, error) {
	mtbf, err := r.ClusterMTBF()
	if err != nil {
		return 0, err
	}
	if tau <= 0 {
		return 0, fmt.Errorf("faults: checkpoint interval %v must be positive", tau)
	}
	waste := r.CheckpointCost.Seconds()/tau.Seconds() +
		(tau.Seconds()/2+r.RecoveryCost.Seconds())/mtbf.Seconds()
	if waste > 1 {
		waste = 1
	}
	return waste, nil
}

// Goodput returns 1 − Overhead.
func (r Reliability) Goodput() (float64, error) {
	o, err := r.Overhead()
	if err != nil {
		return 0, err
	}
	return 1 - o, nil
}
