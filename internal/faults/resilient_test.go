package faults

import (
	"errors"
	"math"
	"testing"
	"time"
)

// TestResilientMatchesYoungDaly: over a long horizon, the measured waste of
// the sampled walk converges on the closed-form prediction — the §9
// acceptance bound is agreement within 2 percentage points.
func TestResilientMatchesYoungDaly(t *testing.T) {
	res, err := Resilient(ResilientOptions{
		Rel:     Default4090(1000),
		Horizon: 5000 * time.Hour,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(res.Measured - res.Predicted); d > 0.02 {
		t.Errorf("measured %.4f vs predicted %.4f: |Δ| = %.4f > 0.02", res.Measured, res.Predicted, d)
	}
	if res.Failures == 0 || res.Checkpoints == 0 {
		t.Errorf("walk sampled %d failures / %d checkpoints, want both > 0", res.Failures, res.Checkpoints)
	}
	// Wall-clock decomposition must balance exactly.
	sum := res.Useful + res.CheckpointTime + res.LostWork + res.RecoveryTime
	if d := (res.Wall - sum).Abs(); d > time.Millisecond {
		t.Errorf("wall %v != useful+ckpt+lost+recovery %v (Δ %v)", res.Wall, sum, d)
	}
}

// TestResilientDeterministic: same seed, same result, byte for byte.
func TestResilientDeterministic(t *testing.T) {
	opt := ResilientOptions{Rel: Default4090(1000), Horizon: 500 * time.Hour, Seed: 42}
	a, err := Resilient(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resilient(opt)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("identical options diverged:\n%+v\n%+v", a, b)
	}
	opt.Seed = 43
	c, err := Resilient(opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Failures == c.Failures && a.Measured == c.Measured {
		t.Error("different seeds produced an identical walk")
	}
}

// TestResilientExecuteHook: the Execute callback fires once per sampled
// failure (bounded by MaxExecute) with deterministic sub-seeds, and its
// replay counts aggregate into the result.
func TestResilientExecuteHook(t *testing.T) {
	var seeds []int64
	opt := ResilientOptions{
		Rel:        Default4090(2000),
		Horizon:    2000 * time.Hour,
		Seed:       7,
		MaxExecute: 3,
		Execute: func(k int, seed int64) (int, error) {
			seeds = append(seeds, seed)
			return 5, nil
		},
	}
	res, err := Resilient(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures < 3 {
		t.Fatalf("walk sampled %d failures, need ≥ 3 for this test", res.Failures)
	}
	if res.Executed != 3 || res.ReplayedOps != 15 {
		t.Errorf("executed %d replayed %d, want 3 / 15", res.Executed, res.ReplayedOps)
	}
	first := append([]int64(nil), seeds...)
	seeds = nil
	if _, err := Resilient(opt); err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if seeds[i] != first[i] {
			t.Errorf("sub-seed %d differs across identical walks: %d vs %d", i, seeds[i], first[i])
		}
	}

	wantErr := errors.New("runtime blew up")
	opt.Execute = func(k int, seed int64) (int, error) { return 0, wantErr }
	if _, err := Resilient(opt); !errors.Is(err, wantErr) {
		t.Errorf("execute error %v not propagated", err)
	}
}

// TestResilientValidation rejects degenerate walks.
func TestResilientValidation(t *testing.T) {
	if _, err := Resilient(ResilientOptions{Rel: Default4090(8)}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Resilient(ResilientOptions{Rel: Reliability{}, Horizon: time.Hour}); err == nil {
		t.Error("empty reliability accepted")
	}
	if _, err := Resilient(ResilientOptions{Rel: Default4090(8), Horizon: time.Hour, Interval: -time.Second}); err == nil {
		t.Error("negative interval accepted")
	}
}
