package faults

import (
	"math"
	"testing"
	"time"
)

// TestDegenerateInputs pins exact outputs for the model's edge cases: a
// single-GPU job, free recovery, and a cluster that fails faster than it
// can checkpoint. The wanted values are the closed forms evaluated with
// the same float64 operations, so equality is exact, and each is also
// pinned to its decimal value.
func TestDegenerateInputs(t *testing.T) {
	cases := []struct {
		name     string
		rel      Reliability
		mtbf     time.Duration
		interval time.Duration
		waste    float64 // exact expected Overhead()
		decimal  float64 // human-readable pin for the same value
	}{
		{
			// One GPU: the cluster MTBF is the device MTBF; with free
			// recovery the waste splits evenly between checkpoint cost
			// and expected lost work: 2/2000 + 1000/1e6.
			name: "one-gpu-zero-recovery",
			rel: Reliability{
				GPUs: 1, PerGPUMTBF: 1_000_000 * time.Second,
				CheckpointCost: 2 * time.Second,
			},
			mtbf:     1_000_000 * time.Second,
			interval: 2000 * time.Second, // √(2·2·1e6)
			waste:    2.0/2000.0 + 1000.0/1_000_000.0,
			decimal:  0.002,
		},
		{
			// Zero recovery cost at small scale: 8/4000 + 2000/1e6.
			name: "zero-recovery-4gpu",
			rel: Reliability{
				GPUs: 4, PerGPUMTBF: 4_000_000 * time.Second,
				CheckpointCost: 8 * time.Second,
			},
			mtbf:     1_000_000 * time.Second,
			interval: 4000 * time.Second, // √(2·8·1e6)
			waste:    8.0/4000.0 + 2000.0/1_000_000.0,
			decimal:  0.004,
		},
		{
			// MTBF (1 s) far below the checkpoint cost (30 s): the raw
			// waste exceeds 1 and clamps — the cluster makes no progress.
			name: "mtbf-below-checkpoint-cost",
			rel: Reliability{
				GPUs: 3600, PerGPUMTBF: time.Hour,
				CheckpointCost: 30 * time.Second,
				RecoveryCost:   time.Minute,
			},
			mtbf:     time.Second,
			interval: time.Duration(math.Sqrt(60) * float64(time.Second)),
			waste:    1,
			decimal:  1,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mtbf, err := tc.rel.ClusterMTBF()
			if err != nil {
				t.Fatal(err)
			}
			if mtbf != tc.mtbf {
				t.Errorf("cluster MTBF %v, want exactly %v", mtbf, tc.mtbf)
			}
			tau, err := tc.rel.OptimalInterval()
			if err != nil {
				t.Fatal(err)
			}
			if tau != tc.interval {
				t.Errorf("optimal interval %v, want exactly %v", tau, tc.interval)
			}
			got, err := tc.rel.Overhead()
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.waste {
				t.Errorf("overhead %v, want exactly %v", got, tc.waste)
			}
			if math.Abs(got-tc.decimal) > 1e-12 {
				t.Errorf("overhead %v, want %v within 1e-12", got, tc.decimal)
			}
		})
	}
}

// TestOverheadAtPinned pins OverheadAt off the optimum: halving the
// one-GPU case's interval doubles the checkpoint term and halves the
// lost-work term: 2/1000 + 500/1e6.
func TestOverheadAtPinned(t *testing.T) {
	rel := Reliability{
		GPUs: 1, PerGPUMTBF: 1_000_000 * time.Second,
		CheckpointCost: 2 * time.Second,
	}
	got, err := rel.OverheadAt(1000 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2.0/1000.0 + 500.0/1_000_000.0; got != want {
		t.Errorf("OverheadAt(1000s) = %v, want exactly %v", got, want)
	}
	if _, err := rel.OverheadAt(0); err == nil {
		t.Error("zero interval accepted")
	}
}
