package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"

	v1 "mepipe/api/v1"
	"mepipe/internal/errs"
)

// LoadOptions shapes a load-generator run against the planning service.
type LoadOptions struct {
	// Requests is the total number of requests to issue (default 200).
	Requests int
	// Concurrency is the number of parallel clients (default 8).
	Concurrency int
	// Endpoint is the POSTed path (default "/v1/simulate").
	Endpoint string
	// Clock overrides the wall clock (tests). Nil means the real clock.
	Clock Clock
}

// LoadReport is the measured outcome of one load run; mepipe-bench writes
// it to BENCH_serve.json.
type LoadReport struct {
	API         string  `json:"api"`
	Endpoint    string  `json:"endpoint"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	Documents   int     `json:"documents"`
	Errors      int     `json:"errors"`
	Hits        int     `json:"cache_hits"`
	Misses      int     `json:"cache_misses"`
	Coalesced   int     `json:"coalesced"`
	HitRate     float64 `json:"cache_hit_rate"`
	P50S        float64 `json:"latency_p50_s"`
	P99S        float64 `json:"latency_p99_s"`
	MeanS       float64 `json:"latency_mean_s"`
	MaxS        float64 `json:"latency_max_s"`
	ElapsedS    float64 `json:"elapsed_s"`
	PerSecond   float64 `json:"requests_per_s"`
}

// RunLoad drives handler with opts.Requests POSTs cycling through docs
// (encoded v1 request documents), over a real loopback TCP listener so
// latencies include the full HTTP stack. It reports client-side p50/p99
// latency and the cache outcome mix read back from the X-Mepipe-Cache
// headers.
func RunLoad(ctx context.Context, handler http.Handler, docs [][]byte, opts LoadOptions) (*LoadReport, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("serve: load run needs at least one request document: %w", v1.ErrBadRequest)
	}
	if opts.Requests <= 0 {
		opts.Requests = 200
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	if opts.Endpoint == "" {
		opts.Endpoint = "/v1/simulate"
	}
	now := opts.Clock
	if now == nil {
		now = realClock
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("serve: load listener: %w", err)
	}
	srv := &http.Server{Handler: handler}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		srv.Serve(ln) //nolint:errcheck // always ErrServerClosed after Close
	}()
	defer func() {
		srv.Close() //nolint:errcheck // shutdown; listener already drained
		<-serveDone
	}()
	base := "http://" + ln.Addr().String()

	samples := make([]loadSample, opts.Requests)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for i := range next {
				samples[i] = fire(ctx, client, base+opts.Endpoint, docs[i%len(docs)], now)
			}
		}()
	}
	t0 := now()
	feed := 0
	for feed < opts.Requests {
		select {
		case next <- feed:
			feed++
		case <-ctx.Done():
			feed = opts.Requests
		}
	}
	close(next)
	wg.Wait()
	elapsed := sinceSeconds(now, t0)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("serve: load run cancelled: %w", errs.ErrCancelled)
	}

	rep := &LoadReport{
		API: v1.Version, Endpoint: opts.Endpoint,
		Requests: opts.Requests, Concurrency: opts.Concurrency, Documents: len(docs),
		ElapsedS: elapsed,
	}
	lat := make([]float64, 0, len(samples))
	for _, s := range samples {
		if s.err != nil || s.status != http.StatusOK {
			rep.Errors++
			continue
		}
		lat = append(lat, s.seconds)
		switch cacheOutcome(s.outcome) {
		case cacheHit:
			rep.Hits++
		case cacheMiss:
			rep.Misses++
		case cacheCoalesced:
			rep.Coalesced++
		}
	}
	sort.Float64s(lat)
	if n := len(lat); n > 0 {
		rep.P50S = percentile(lat, 0.50)
		rep.P99S = percentile(lat, 0.99)
		rep.MaxS = lat[n-1]
		var sum float64
		for _, v := range lat {
			sum += v
		}
		rep.MeanS = sum / float64(n)
		rep.HitRate = float64(rep.Hits) / float64(n)
	}
	if elapsed > 0 {
		rep.PerSecond = float64(opts.Requests-rep.Errors) / elapsed
	}
	return rep, nil
}

// loadSample is one measured request.
type loadSample struct {
	seconds float64
	outcome string
	status  int
	err     error
}

// fire issues one POST and measures its client-side latency.
func fire(ctx context.Context, client *http.Client, url string, doc []byte, now Clock) (s loadSample) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(doc))
	if err != nil {
		s.err = fmt.Errorf("serve: building load request: %w", err)
		return s
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := now()
	resp, err := client.Do(req)
	if err != nil {
		s.err = fmt.Errorf("serve: load request: %w", err)
		return s
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive
	resp.Body.Close()              //nolint:errcheck // read-only body
	s.seconds = sinceSeconds(now, t0)
	s.status = resp.StatusCode
	s.outcome = resp.Header.Get(cacheHeader)
	return s
}

// percentile returns the q-quantile of sorted by nearest-rank.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
