// Package serve is the MEPipe planning service: a zero-dependency
// net/http JSON server that turns the strategy search, the simulator and
// the static certifier into long-running, heavily cacheable endpoints.
//
//	POST /v1/search    grid-search a system over a cluster (cached, coalesced)
//	POST /v1/sweep     grid-search several systems in one deduplicated pass
//	POST /v1/simulate  evaluate one pinned strategy (cached, coalesced)
//	POST /v1/optimize  anneal one pinned strategy's schedule (cached, coalesced)
//	POST /v1/certify   statically certify a schedule artifact
//	POST /v1/trace     simulate and export the span-event stream
//	GET  /v1/stats     per-endpoint counters, latencies, cache occupancy
//	GET  /healthz      liveness
//
// Requests are api/v1 documents. Search and simulate answers are
// content-addressed: the canonical SHA-256 of the normalized request keys
// an LRU cache, identical in-flight requests coalesce onto one underlying
// computation, and the X-Mepipe-Cache response header says which path
// served each reply (hit, miss or coalesced). Every result is certified
// before it is served — the strategy layer statically proves each
// simulated schedule deadlock-free and complete. Per-request cancellation
// rides on the existing ErrCancelled plumbing: a disconnected client
// abandons its wait, and a computation every client has abandoned is
// cancelled mid-search. See docs/SERVE.md.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"mepipe"
	v1 "mepipe/api/v1"
	"mepipe/internal/errs"
	"mepipe/internal/obs"
	"mepipe/internal/sched"
	"mepipe/internal/verify"
)

// StatusClientClosedRequest is the nginx-convention status for requests
// abandoned by the client before the response was ready (there is no
// standard code; 499 is the de-facto one).
const StatusClientClosedRequest = 499

// DefaultCacheSize bounds the response cache when Options.CacheSize is
// zero.
const DefaultCacheSize = 512

// Backend computes what the endpoints serve. The zero value routes
// through the public facade (mepipe.Search / mepipe.Evaluate); tests
// substitute stubs to count and steer computations.
type Backend struct {
	Search   func(ctx context.Context, sys mepipe.System, m mepipe.Model, cl mepipe.Cluster, tr mepipe.Training, sp mepipe.SearchSpace, sink obs.Sink) (*mepipe.SearchResult, error)
	Evaluate func(ctx context.Context, sys mepipe.System, m mepipe.Model, cl mepipe.Cluster, par mepipe.Parallel, tr mepipe.Training, sink obs.Sink) (*mepipe.Eval, error)
	Optimize func(ctx context.Context, sys mepipe.System, m mepipe.Model, cl mepipe.Cluster, par mepipe.Parallel, tr mepipe.Training, o mepipe.OptimizeOptions, sink obs.Sink) (*mepipe.Optimized, error)
	// Sweep takes no sink: the sweep engine's session reuse is
	// incompatible with tracing, so the server never taps it.
	Sweep func(ctx context.Context, systems []mepipe.System, m mepipe.Model, cl mepipe.Cluster, tr mepipe.Training, sp mepipe.SearchSpace) (*mepipe.SweepResult, error)
}

// facadeBackend fills the zero fields of a Backend with the facade entry
// points.
func facadeBackend(b Backend) Backend {
	if b.Search == nil {
		b.Search = func(ctx context.Context, sys mepipe.System, m mepipe.Model, cl mepipe.Cluster, tr mepipe.Training, sp mepipe.SearchSpace, sink obs.Sink) (*mepipe.SearchResult, error) {
			return mepipe.Search(ctx, sys, m, cl, tr, sp, mepipe.WithTrace(sink))
		}
	}
	if b.Evaluate == nil {
		b.Evaluate = func(ctx context.Context, sys mepipe.System, m mepipe.Model, cl mepipe.Cluster, par mepipe.Parallel, tr mepipe.Training, sink obs.Sink) (*mepipe.Eval, error) {
			return mepipe.Evaluate(ctx, sys, m, cl, par, tr, mepipe.WithTrace(sink))
		}
	}
	if b.Optimize == nil {
		b.Optimize = func(ctx context.Context, sys mepipe.System, m mepipe.Model, cl mepipe.Cluster, par mepipe.Parallel, tr mepipe.Training, o mepipe.OptimizeOptions, sink obs.Sink) (*mepipe.Optimized, error) {
			return mepipe.OptimizeEval(ctx, sys, m, cl, par, tr, o, mepipe.WithTrace(sink))
		}
	}
	if b.Sweep == nil {
		b.Sweep = mepipe.Sweep
	}
	return b
}

// Options configures a Server.
type Options struct {
	// CacheSize bounds the response cache in entries (default
	// DefaultCacheSize; negative disables caching).
	CacheSize int
	// Timeout bounds each request's wait for a result; zero means no
	// bound. A timed-out wait is reported exactly like a client
	// disconnect (499 cancelled) and does not kill a computation other
	// clients still wait on.
	Timeout time.Duration
	// Sink, when non-nil, receives the structured span events of every
	// computed (non-cached) search and simulation — the server-side tap
	// into the obs layer.
	Sink obs.Sink
	// Backend substitutes the computation functions (tests); zero fields
	// use the facade.
	Backend Backend
	// BaseContext parents every coalesced computation; closing it (server
	// shutdown) cancels all in-flight work. Nil means Background.
	BaseContext context.Context
	// Clock overrides the wall clock (tests). Nil means the real clock.
	Clock Clock
}

// Server is the planning service. Create with New, expose with Handler.
type Server struct {
	backend Backend
	cache   *lruCache
	group   *coalescer
	metrics *metrics
	sink    obs.Sink
	timeout time.Duration
	now     Clock
	mux     *http.ServeMux
}

// New builds a Server.
func New(opts Options) *Server {
	size := opts.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	now := opts.Clock
	if now == nil {
		now = realClock
	}
	s := &Server{
		backend: facadeBackend(opts.Backend),
		cache:   newLRUCache(size),
		group:   newCoalescer(opts.BaseContext),
		metrics: newMetrics(now()),
		sink:    opts.Sink,
		timeout: opts.Timeout,
		now:     now,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("POST /v1/certify", s.handleCertify)
	mux.HandleFunc("POST /v1/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Inflight returns the number of distinct computations currently running
// (exposed for tests and shutdown diagnostics).
func (s *Server) Inflight() int { return s.group.Inflight() }

// statusFor maps an error chain to its HTTP status and wire error code:
// the sentinel-to-status contract of the v1 API.
func statusFor(err error) (int, string) {
	switch {
	case errors.Is(err, v1.ErrBadRequest):
		return http.StatusBadRequest, "bad_request"
	case errors.Is(err, errs.ErrCancelled):
		return StatusClientClosedRequest, "cancelled"
	case errors.Is(err, errs.ErrOOM):
		return http.StatusUnprocessableEntity, "oom"
	case errors.Is(err, errs.ErrIncompatible):
		return http.StatusUnprocessableEntity, "incompatible"
	case errors.Is(err, errs.ErrUncertified):
		return http.StatusUnprocessableEntity, "uncertified"
	}
	return http.StatusInternalServerError, "internal"
}

// cacheHeader is the response header naming how a request was satisfied.
const cacheHeader = "X-Mepipe-Cache"

// request plumbing ---------------------------------------------------------

// reqCtx derives the context a request waits under: the client's own
// context, bounded by the server timeout when one is configured.
func (s *Server) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout > 0 {
		return context.WithTimeout(r.Context(), s.timeout)
	}
	return context.WithCancel(r.Context())
}

// writeJSON writes one JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body) //nolint:errcheck // client gone; nothing to do
}

// fail writes the mapped ErrorResponse for err.
func fail(w http.ResponseWriter, err error) (status int) {
	status, code := statusFor(err)
	body, merr := json.Marshal(v1.ErrorResponse{API: v1.Version, Code: code, Error: err.Error()})
	if merr != nil {
		// Marshaling a struct of strings cannot fail; keep the contract
		// anyway.
		http.Error(w, err.Error(), status)
		return status
	}
	writeJSON(w, status, body)
	return status
}

// cached endpoints ---------------------------------------------------------

// serveCached is the shared hit/miss/coalesced path of /v1/search and
// /v1/simulate: look the canonical key up, else coalesce onto one
// computation, cache its encoded body, and label the reply.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, endpoint, key string, compute func(ctx context.Context) (any, error)) {
	t0 := s.now()
	if body, ok := s.cache.Get(key); ok {
		w.Header().Set(cacheHeader, string(cacheHit))
		writeJSON(w, http.StatusOK, body)
		s.metrics.observe(endpoint, http.StatusOK, cacheHit, sinceSeconds(s.now, t0))
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	val, shared, err := s.group.Do(ctx, key, compute)
	outcome := cacheMiss
	if shared {
		outcome = cacheCoalesced
	}
	if err != nil {
		status := fail(w, err)
		s.metrics.observe(endpoint, status, outcome, sinceSeconds(s.now, t0))
		return
	}
	body := val.([]byte)
	s.cache.Put(key, body)
	w.Header().Set(cacheHeader, string(outcome))
	writeJSON(w, http.StatusOK, body)
	s.metrics.observe(endpoint, http.StatusOK, outcome, sinceSeconds(s.now, t0))
}

// handleSearch is a deterministic entry point, modulo the audited Clock seam
// (latency metrics): a given request body must always produce the same
// response.
//
//mepipe:deterministic
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	req, err := v1.DecodePlanRequest(r.Body)
	if err != nil {
		s.failNow(w, "/v1/search", err)
		return
	}
	plan, err := req.Compile()
	if err != nil {
		s.failNow(w, "/v1/search", err)
		return
	}
	key, err := req.Key("search")
	if err != nil {
		s.failNow(w, "/v1/search", err)
		return
	}
	s.serveCached(w, r, "/v1/search", key, func(ctx context.Context) (any, error) {
		return s.computeSearch(ctx, key, plan)
	})
}

// computeSearch runs one grid search and encodes its response body.
func (s *Server) computeSearch(ctx context.Context, key string, plan *v1.Plan) ([]byte, error) {
	res, err := s.backend.Search(ctx, plan.System, plan.Model, plan.Cluster, plan.Training, plan.Space, s.sink)
	if err != nil {
		return nil, err
	}
	resp := &v1.SearchResponse{
		API: v1.Version, Key: key, System: v1.SystemName(plan.System),
		Certified: true, Found: res.Found(),
		Evaluated: res.Evaluated, Pruned: res.Pruned,
	}
	cands := res.Candidates
	if plan.Top > 0 && len(cands) > plan.Top {
		cands = cands[:plan.Top]
	}
	resp.Candidates = make([]v1.Candidate, 0, len(cands))
	for _, ev := range cands {
		resp.Candidates = append(resp.Candidates, v1.CandidateFrom(ev, plan.Model, plan.Cluster, plan.Training))
	}
	if best := res.Best(); best != nil {
		c := v1.CandidateFrom(best, plan.Model, plan.Cluster, plan.Training)
		resp.Best = &c
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding search response: %w", err)
	}
	return body, nil
}

// handleSweep is a deterministic entry point, modulo the audited Clock seam
// (latency metrics): a given request body must always produce the same
// response.
//
//mepipe:deterministic
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	req, err := v1.DecodeSweepRequest(r.Body)
	if err != nil {
		s.failNow(w, "/v1/sweep", err)
		return
	}
	plan, err := req.Compile()
	if err != nil {
		s.failNow(w, "/v1/sweep", err)
		return
	}
	key, err := req.Key()
	if err != nil {
		s.failNow(w, "/v1/sweep", err)
		return
	}
	s.serveCached(w, r, "/v1/sweep", key, func(ctx context.Context) (any, error) {
		return s.computeSweep(ctx, key, plan)
	})
}

// computeSweep runs one multi-system sweep and encodes its response body.
// Per-system "no candidate fits" failures are part of the document, not
// HTTP errors — a sweep that answers every system answered the request.
func (s *Server) computeSweep(ctx context.Context, key string, plan *v1.SweepPlan) ([]byte, error) {
	res, err := s.backend.Sweep(ctx, plan.Systems, plan.Model, plan.Cluster, plan.Training, plan.Space)
	if err != nil {
		return nil, err
	}
	resp := &v1.SweepResponse{
		API: v1.Version, Key: key, Certified: true,
		Systems: make([]v1.SweepSystemResult, 0, len(plan.Systems)),
		Stats:   v1.SweepStatsFrom(res.Stats),
	}
	for i, sys := range plan.Systems {
		sr := res.Results[i]
		out := v1.SweepSystemResult{
			System:    v1.SystemName(sys),
			Found:     sr.Found(),
			Evaluated: sr.Evaluated,
			Pruned:    sr.Pruned,
		}
		if res.Errs[i] != nil {
			out.Error = res.Errs[i].Error()
		}
		cands := sr.Candidates
		if plan.Top > 0 && len(cands) > plan.Top {
			cands = cands[:plan.Top]
		}
		out.Candidates = make([]v1.Candidate, 0, len(cands))
		for _, ev := range cands {
			out.Candidates = append(out.Candidates, v1.CandidateFrom(ev, plan.Model, plan.Cluster, plan.Training))
		}
		if best := sr.Best(); best != nil {
			c := v1.CandidateFrom(best, plan.Model, plan.Cluster, plan.Training)
			out.Best = &c
		}
		resp.Systems = append(resp.Systems, out)
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding sweep response: %w", err)
	}
	return body, nil
}

// handleSimulate is a deterministic entry point, modulo the audited Clock seam
// (latency metrics): a given request body must always produce the same
// response.
//
//mepipe:deterministic
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req, err := v1.DecodePlanRequest(r.Body)
	if err != nil {
		s.failNow(w, "/v1/simulate", err)
		return
	}
	plan, err := req.Compile()
	if err != nil {
		s.failNow(w, "/v1/simulate", err)
		return
	}
	if plan.Parallel == nil {
		s.failNow(w, "/v1/simulate", fmt.Errorf("%w: simulate needs a parallel strategy", v1.ErrBadRequest))
		return
	}
	key, err := req.Key("simulate")
	if err != nil {
		s.failNow(w, "/v1/simulate", err)
		return
	}
	s.serveCached(w, r, "/v1/simulate", key, func(ctx context.Context) (any, error) {
		return s.computeSimulate(ctx, key, plan)
	})
}

// computeSimulate evaluates one pinned strategy and encodes its response
// body.
func (s *Server) computeSimulate(ctx context.Context, key string, plan *v1.Plan) ([]byte, error) {
	ev, err := s.backend.Evaluate(ctx, plan.System, plan.Model, plan.Cluster, *plan.Parallel, plan.Training, s.sink)
	if err != nil {
		return nil, err
	}
	resp := &v1.SimulateResponse{
		API: v1.Version, Key: key, System: v1.SystemName(plan.System),
		Certified: !ev.OOM,
		Candidate: v1.CandidateFrom(ev, plan.Model, plan.Cluster, plan.Training),
	}
	if ev.Result != nil {
		// Evaluate runs with spans recorded, so a span-less result here is
		// a programming error worth surfacing rather than masking.
		u, err := ev.Result.MeanUtilization()
		if err != nil {
			return nil, err
		}
		f, b, wt, tail, idle := u.Fractions()
		resp.Breakdown = v1.Breakdown{Forward: f, Backward: b, Weight: wt, Tail: tail, Idle: idle}
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding simulate response: %w", err)
	}
	return body, nil
}

// handleOptimize is a deterministic entry point, modulo the audited Clock seam
// (latency metrics): a given request body must always produce the same
// response.
//
//mepipe:deterministic
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	req, err := v1.DecodeOptimizeRequest(r.Body)
	if err != nil {
		s.failNow(w, "/v1/optimize", err)
		return
	}
	norm, err := req.Normalize()
	if err != nil {
		s.failNow(w, "/v1/optimize", err)
		return
	}
	plan, err := norm.PlanRequest.Compile()
	if err != nil {
		s.failNow(w, "/v1/optimize", err)
		return
	}
	key, err := req.Key()
	if err != nil {
		s.failNow(w, "/v1/optimize", err)
		return
	}
	spec := *norm.Opt
	s.serveCached(w, r, "/v1/optimize", key, func(ctx context.Context) (any, error) {
		return s.computeOptimize(ctx, key, plan, spec)
	})
}

// computeOptimize anneals one pinned strategy's preset schedule and
// encodes its response body, discovered schedule document included.
func (s *Server) computeOptimize(ctx context.Context, key string, plan *v1.Plan, spec v1.OptSpec) ([]byte, error) {
	res, err := s.backend.Optimize(ctx, plan.System, plan.Model, plan.Cluster, *plan.Parallel, plan.Training,
		mepipe.OptimizeOptions{Seed: spec.Seed, Iters: spec.Iters, Proposals: spec.Proposals}, s.sink)
	if err != nil {
		return nil, err
	}
	var doc bytes.Buffer
	if err := res.Opt.Schedule.Save(&doc); err != nil {
		return nil, fmt.Errorf("serve: encoding discovered schedule: %w", err)
	}
	resp := &v1.OptimizeResponse{
		API: v1.Version, Key: key, System: v1.SystemName(plan.System),
		Certified:     res.Opt.Cert != nil,
		Parallel:      v1.ParallelFrom(res.Par),
		MicroBatches:  res.N,
		F:             res.F,
		Opt:           spec,
		StartedFrom:   res.Opt.Seed,
		BaseIterTimeS: res.Opt.BaseTime,
		HEFTIterTimeS: res.Opt.HEFTTime,
		BestIterTimeS: res.Opt.BestTime,
		Gain:          res.Opt.Gain(),
		Proposed:      res.Opt.Proposed,
		Infeasible:    res.Opt.Infeasible,
		Evaluated:     res.Opt.Evaluated,
		Accepted:      res.Opt.Accepted,
		Improved:      res.Opt.Improved,
		Schedule:      json.RawMessage(doc.Bytes()),
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding optimize response: %w", err)
	}
	return body, nil
}

// uncached endpoints -------------------------------------------------------

// handleCertify is a deterministic entry point, modulo the audited Clock seam
// (latency metrics): a given request body must always produce the same
// response.
//
//mepipe:deterministic
func (s *Server) handleCertify(w http.ResponseWriter, r *http.Request) {
	t0 := s.now()
	status := http.StatusOK
	defer func() { s.metrics.observe("/v1/certify", status, cacheNone, sinceSeconds(s.now, t0)) }()

	req, err := v1.DecodeCertifyRequest(r.Body)
	if err != nil {
		status = fail(w, err)
		return
	}
	sc, err := sched.Load(bytes.NewReader(req.Schedule))
	if err != nil {
		// A schedule that fails structural validation is a 422; anything
		// else (malformed JSON) is a malformed request.
		if !errors.Is(err, errs.ErrIncompatible) && !errors.Is(err, errs.ErrUncertified) {
			err = fmt.Errorf("%w: %v", v1.ErrBadRequest, err)
		}
		status = fail(w, err)
		return
	}
	var vopts verify.Options
	if req.SlotBudget != nil {
		vopts.Budget = verify.SlotBudget(req.SlotBudget)
	}
	cert, err := mepipe.CertifySchedule(sc, vopts)
	if err != nil {
		status = fail(w, err)
		return
	}
	body, err := json.Marshal(&v1.CertifyResponse{
		API: v1.Version, Schedule: cert.Schedule,
		Nodes: cert.Nodes, Edges: cert.Edges, CrossEdges: cert.CrossEdges,
		PeakFamilies: cert.PeakFamilies, PeakBytes: cert.PeakBytes,
	})
	if err != nil {
		status = fail(w, fmt.Errorf("serve: encoding certificate: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleTrace is a deterministic entry point, modulo the audited Clock seam
// (latency metrics): a given request body must always produce the same
// response.
//
//mepipe:deterministic
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	t0 := s.now()
	status := http.StatusOK
	defer func() { s.metrics.observe("/v1/trace", status, cacheNone, sinceSeconds(s.now, t0)) }()

	req, err := v1.DecodeTraceRequest(r.Body)
	if err != nil {
		status = fail(w, err)
		return
	}
	var exporter obs.Exporter
	contentType := "application/json"
	switch req.Format {
	case "", "chrome":
		exporter = mepipe.ChromeTrace{}
	case "jsonl":
		exporter = mepipe.JSONLTrace{}
		contentType = "application/x-ndjson"
	default:
		status = fail(w, fmt.Errorf("%w: unknown trace format %q (want chrome or jsonl)", v1.ErrBadRequest, req.Format))
		return
	}
	plan, err := req.Compile()
	if err != nil {
		status = fail(w, err)
		return
	}
	if plan.Parallel == nil {
		status = fail(w, fmt.Errorf("%w: trace needs a parallel strategy", v1.ErrBadRequest))
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	rec := obs.NewRecorder()
	ev, err := s.backend.Evaluate(ctx, plan.System, plan.Model, plan.Cluster, *plan.Parallel, plan.Training, obs.Multi(rec, s.sink))
	if err != nil {
		status = fail(w, err)
		return
	}
	if ev.OOM {
		status = fail(w, fmt.Errorf("serve: %s does not fit: %s: %w", ev.Par, ev.OOMWhy, errs.ErrOOM))
		return
	}
	var buf bytes.Buffer
	if err := exporter.Export(&buf, rec.Trace()); err != nil {
		status = fail(w, fmt.Errorf("serve: exporting trace: %w", err))
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes()) //nolint:errcheck // client gone; nothing to do
}

// handleStats is a deterministic entry point, modulo the audited Clock seam
// (latency metrics): a given request body must always produce the same
// response.
//
//mepipe:deterministic
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	body, err := json.Marshal(s.metrics.snapshot(s.now(), s.cache))
	if err != nil {
		fail(w, fmt.Errorf("serve: encoding stats: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleHealth is a deterministic entry point, modulo the audited Clock seam
// (latency metrics): a given request body must always produce the same
// response.
//
//mepipe:deterministic
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n")) //nolint:errcheck // client gone; nothing to do
}

// failNow maps and records an error that occurred before any computation
// was attempted (decode, validation).
func (s *Server) failNow(w http.ResponseWriter, endpoint string, err error) {
	status := fail(w, err)
	s.metrics.observe(endpoint, status, cacheNone, 0)
}
