package serve

import (
	"sync"
	"time"

	v1 "mepipe/api/v1"
	"mepipe/internal/obs"
)

// cacheOutcome labels how a request was satisfied; it is also the value
// of the X-Mepipe-Cache response header.
type cacheOutcome string

const (
	cacheHit       cacheOutcome = "hit"
	cacheMiss      cacheOutcome = "miss"
	cacheCoalesced cacheOutcome = "coalesced"
	cacheNone      cacheOutcome = "" // endpoint does not cache
)

// metrics aggregates per-endpoint counters and latency histograms for
// GET /v1/stats. Latency distributions ride on obs.Histogram, the same
// fixed-bucket histogram the trace layer uses for queue waits.
type metrics struct {
	mu        sync.Mutex
	start     time.Time
	endpoints map[string]*endpointMetrics
}

type endpointMetrics struct {
	requests, errors        int64
	hits, misses, coalesced int64
	latency                 obs.Histogram
}

func newMetrics(start time.Time) *metrics {
	return &metrics{start: start, endpoints: make(map[string]*endpointMetrics)}
}

// observe records one served request.
func (m *metrics) observe(endpoint string, status int, outcome cacheOutcome, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	em := m.endpoints[endpoint]
	if em == nil {
		em = &endpointMetrics{}
		m.endpoints[endpoint] = em
	}
	em.requests++
	if status >= 400 {
		em.errors++
	}
	switch outcome {
	case cacheHit:
		em.hits++
	case cacheMiss:
		em.misses++
	case cacheCoalesced:
		em.coalesced++
	}
	em.latency.Observe(seconds)
}

// snapshot renders the counters as the wire stats document.
func (m *metrics) snapshot(now time.Time, cache *lruCache) *v1.StatsResponse {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := &v1.StatsResponse{
		API:       v1.Version,
		UptimeS:   now.Sub(m.start).Seconds(),
		Endpoints: make(map[string]v1.EndpointStats, len(m.endpoints)),
	}
	for name, em := range m.endpoints {
		out.Endpoints[name] = v1.EndpointStats{
			Requests: em.requests, Errors: em.errors,
			Hits: em.hits, Misses: em.misses, Coalesced: em.coalesced,
			LatencyMeanS: em.latency.Mean(), LatencyMaxS: em.latency.Max,
		}
	}
	entries, capacity, evictions := cache.Stats()
	out.Cache = v1.CacheStats{Entries: entries, Capacity: capacity, Evictions: evictions}
	return out
}
