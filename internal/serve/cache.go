package serve

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity LRU over encoded response bodies, keyed by
// the v1 canonical request hash. Values are immutable byte slices, so a
// cached body is served verbatim without copying.
type lruCache struct {
	mu        sync.Mutex
	cap       int
	order     *list.List // front = most recent
	entries   map[string]*list.Element
	evictions int64
}

type lruEntry struct {
	key  string
	body []byte
}

// newLRUCache returns a cache holding at most capacity entries; a
// non-positive capacity disables caching (every Get misses, Put is a
// no-op).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached body for key and marks it most recently used.
func (c *lruCache) Get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// Put stores body under key, evicting the least recently used entry when
// the cache is full.
func (c *lruCache) Put(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, body: body})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*lruEntry).key)
		c.evictions++
	}
}

// Stats returns the current size, capacity and eviction count.
func (c *lruCache) Stats() (entries, capacity int, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.cap, c.evictions
}
