package serve

import "time"

// Clock supplies the server's wall-clock readings: request latencies, the
// stats uptime base, and the load generator's timings all flow through it.
// Tests pin it for deterministic latency accounting.
//
// This file is the package's only wall-clock access point — mepipe-lint's
// determinism rule forbids time.Now/time.Since elsewhere in the planning
// server, and the allowlist entry for this file is the single audited
// exception (see internal/pipeline/clock.go for the pattern).
type Clock func() time.Time

// realClock is the production clock.
func realClock() time.Time { return time.Now() }

// sinceSeconds returns the seconds elapsed from t0 to now.
func sinceSeconds(now Clock, t0 time.Time) float64 {
	return now().Sub(t0).Seconds()
}
