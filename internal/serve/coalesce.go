package serve

import (
	"context"
	"fmt"
	"sync"

	"mepipe/internal/errs"
)

// coalescer deduplicates identical in-flight computations
// (singleflight-style): concurrent callers with the same key share one
// underlying run. Unlike the classic singleflight, the shared computation
// is cancellation-aware — it runs under its own context that is cancelled
// only when *every* waiter has abandoned it, so one client disconnecting
// never kills a result other clients are still waiting for, while a search
// nobody wants any more stops immediately and leaves the group clean.
type coalescer struct {
	mu    sync.Mutex
	base  context.Context // lifetime of the server; parents every run
	calls map[string]*call
}

type call struct {
	done    chan struct{} // closed when the computation finished
	val     any
	err     error
	waiters int
	cancel  context.CancelFunc
}

func newCoalescer(base context.Context) *coalescer {
	if base == nil {
		base = context.Background()
	}
	return &coalescer{base: base, calls: make(map[string]*call)}
}

// Do runs fn once per key among concurrent callers and hands every caller
// the same (value, error). shared is false for the caller that started
// the computation and true for the callers that joined it. If ctx is done
// before the shared computation finishes, the caller gets an error
// wrapping errs.ErrCancelled; when the last waiter leaves, the
// computation's context is cancelled and the key is released so a later
// identical request starts fresh.
func (g *coalescer) Do(ctx context.Context, key string, fn func(context.Context) (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		return g.wait(ctx, key, c, true)
	}
	runCtx, cancel := context.WithCancel(g.base)
	c := &call{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.calls[key] = c
	go func() {
		v, err := fn(runCtx)
		g.mu.Lock()
		c.val, c.err = v, err
		// Release the key (unless a later call already replaced a
		// fully-abandoned run) so the next identical request recomputes.
		if g.calls[key] == c {
			delete(g.calls, key)
		}
		g.mu.Unlock()
		close(c.done)
		cancel()
	}()
	g.mu.Unlock()
	return g.wait(ctx, key, c, false)
}

// wait blocks until the call completes or ctx is done.
func (g *coalescer) wait(ctx context.Context, key string, c *call, shared bool) (any, bool, error) {
	select {
	case <-c.done:
		return c.val, shared, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		if c.waiters == 0 {
			// Nobody is listening: stop the computation and free the
			// key immediately so the group cannot wedge on a run that
			// is still unwinding.
			if g.calls[key] == c {
				delete(g.calls, key)
			}
			c.cancel()
		}
		g.mu.Unlock()
		return nil, shared, fmt.Errorf("serve: request abandoned before the result was ready: %w", errs.ErrCancelled)
	}
}

// Inflight returns the number of distinct keys currently being computed.
func (g *coalescer) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
