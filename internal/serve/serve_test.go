package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mepipe"
	v1 "mepipe/api/v1"
	"mepipe/internal/errs"
	"mepipe/internal/obs"
	"mepipe/internal/sched"
)

// simDoc is a pinned-strategy request the stub-backend tests POST to
// /v1/simulate.
func simDoc(t *testing.T, gbs int) []byte {
	t.Helper()
	doc, err := json.Marshal(v1.PlanRequest{
		System:   "mepipe",
		Model:    v1.ModelSpec{Preset: "7b"},
		Cluster:  v1.ClusterSpec{Preset: "rtx4090", Servers: 1},
		Training: v1.TrainingSpec{GlobalBatch: gbs},
		Parallel: &v1.ParallelSpec{PP: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// stubEval is a minimal feasible evaluation for stub backends.
func stubEval() *mepipe.Eval {
	return &mepipe.Eval{Sys: mepipe.MEPipe, N: 8, IterTime: 1.2, Bubble: 0.1}
}

// post sends doc and returns the response with its body read.
func post(t *testing.T, url string, doc []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 500; i++ {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waiters reports how many callers are attached to the in-flight
// computation for key.
func (s *Server) waiters(key string) int {
	s.group.mu.Lock()
	defer s.group.mu.Unlock()
	if c, ok := s.group.calls[key]; ok {
		return c.waiters
	}
	return 0
}

// TestCacheHitMiss proves the content-addressed cache: the first request
// computes, the identical repeat is served verbatim from the cache, and a
// semantically different request computes again.
func TestCacheHitMiss(t *testing.T) {
	var calls atomic.Int32
	s := New(Options{Backend: Backend{
		Evaluate: func(ctx context.Context, sys mepipe.System, m mepipe.Model, cl mepipe.Cluster, par mepipe.Parallel, tr mepipe.Training, sink obs.Sink) (*mepipe.Eval, error) {
			calls.Add(1)
			return stubEval(), nil
		},
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body1 := post(t, ts.URL+"/v1/simulate", simDoc(t, 8))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first: %s: %s", resp.Status, body1)
	}
	if got := resp.Header.Get(cacheHeader); got != "miss" {
		t.Errorf("first outcome = %q, want miss", got)
	}

	resp, body2 := post(t, ts.URL+"/v1/simulate", simDoc(t, 8))
	if got := resp.Header.Get(cacheHeader); got != "hit" {
		t.Errorf("repeat outcome = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cached body differs from computed body")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("backend ran %d times, want 1", got)
	}

	resp, _ = post(t, ts.URL+"/v1/simulate", simDoc(t, 16))
	if got := resp.Header.Get(cacheHeader); got != "miss" {
		t.Errorf("different request outcome = %q, want miss", got)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("backend ran %d times, want 2", got)
	}

	var sim v1.SimulateResponse
	if err := json.Unmarshal(body1, &sim); err != nil {
		t.Fatal(err)
	}
	if sim.API != v1.Version || sim.Key == "" || !sim.Certified {
		t.Errorf("response = %+v", sim)
	}
}

// TestCoalescing proves the singleflight contract: two identical
// concurrent requests share exactly one backend computation, one reply is
// labelled miss and the other coalesced.
func TestCoalescing(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int32
	s := New(Options{Backend: Backend{
		Evaluate: func(ctx context.Context, sys mepipe.System, m mepipe.Model, cl mepipe.Cluster, par mepipe.Parallel, tr mepipe.Training, sink obs.Sink) (*mepipe.Eval, error) {
			calls.Add(1)
			select {
			case <-release:
				return stubEval(), nil
			case <-ctx.Done():
				return nil, fmt.Errorf("stub: %w", errs.ErrCancelled)
			}
		},
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, err := v1.DecodePlanRequest(bytes.NewReader(simDoc(t, 8)))
	if err != nil {
		t.Fatal(err)
	}
	key, err := req.Key("simulate")
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		status  int
		outcome string
	}
	results := make(chan result, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := post(t, ts.URL+"/v1/simulate", simDoc(t, 8))
			results <- result{resp.StatusCode, resp.Header.Get(cacheHeader)}
		}()
	}
	// Release only once both callers are attached to the same in-flight
	// computation, so neither can degrade into a plain cache hit.
	waitFor(t, "both waiters attached", func() bool { return s.waiters(key) == 2 })
	close(release)
	wg.Wait()
	close(results)

	outcomes := map[string]int{}
	for r := range results {
		if r.status != http.StatusOK {
			t.Errorf("status = %d", r.status)
		}
		outcomes[r.outcome]++
	}
	if outcomes["miss"] != 1 || outcomes["coalesced"] != 1 {
		t.Errorf("outcomes = %v, want one miss and one coalesced", outcomes)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("backend ran %d times, want exactly 1", got)
	}
	if got := s.Inflight(); got != 0 {
		t.Errorf("inflight after completion = %d", got)
	}
}

// TestDisconnect proves the cancellation contract: a client that goes away
// mid-computation gets 499, the abandoned computation's context is
// cancelled, and the coalescing group does not wedge — the next identical
// request computes fresh.
func TestDisconnect(t *testing.T) {
	entered := make(chan struct{}, 8)
	var blocked atomic.Bool
	blocked.Store(true)
	s := New(Options{Backend: Backend{
		Evaluate: func(ctx context.Context, sys mepipe.System, m mepipe.Model, cl mepipe.Cluster, par mepipe.Parallel, tr mepipe.Training, sink obs.Sink) (*mepipe.Eval, error) {
			entered <- struct{}{}
			if !blocked.Load() {
				return stubEval(), nil
			}
			<-ctx.Done() // block until the server abandons the run
			return nil, fmt.Errorf("stub: %w", errs.ErrCancelled)
		},
	}})

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(simDoc(t, 8))).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Handler().ServeHTTP(rec, req)
	}()
	<-entered // computation started
	cancel()  // client disconnects
	<-done

	if rec.Code != StatusClientClosedRequest {
		t.Errorf("status = %d, want %d", rec.Code, StatusClientClosedRequest)
	}
	var e v1.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != "cancelled" {
		t.Errorf("code = %q, want cancelled", e.Code)
	}
	waitFor(t, "abandoned run unwound", func() bool { return s.Inflight() == 0 })

	// The group must not be wedged and the failure must not be cached:
	// the same request now computes fresh and succeeds.
	blocked.Store(false)
	rec2 := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec2, httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(simDoc(t, 8))))
	if rec2.Code != http.StatusOK {
		t.Fatalf("follow-up status = %d: %s", rec2.Code, rec2.Body)
	}
	if got := rec2.Header().Get(cacheHeader); got != "miss" {
		t.Errorf("follow-up outcome = %q, want miss (errors must not be cached)", got)
	}
}

// TestCoalescedSurvivorGetsResult proves one disconnecting client does not
// kill a computation another client still waits on.
func TestCoalescedSurvivorGetsResult(t *testing.T) {
	g := newCoalescer(context.Background())
	release := make(chan struct{})
	fn := func(ctx context.Context) (any, error) {
		select {
		case <-release:
			return "result", nil
		case <-ctx.Done():
			return nil, fmt.Errorf("computation killed: %w", errs.ErrCancelled)
		}
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	type out struct {
		val    any
		shared bool
		err    error
	}
	leader := make(chan out, 1)
	go func() {
		v, sh, err := g.Do(leaderCtx, "k", fn)
		leader <- out{v, sh, err}
	}()
	waitFor(t, "leader in flight", func() bool { return g.Inflight() == 1 })

	survivor := make(chan out, 1)
	go func() {
		v, sh, err := g.Do(context.Background(), "k", fn)
		survivor <- out{v, sh, err}
	}()
	waitFor(t, "survivor joined", func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		c, ok := g.calls["k"]
		return ok && c.waiters == 2
	})

	cancelLeader() // the run must keep going for the survivor
	lr := <-leader
	if !errors.Is(lr.err, errs.ErrCancelled) {
		t.Errorf("leader err = %v, want ErrCancelled", lr.err)
	}
	close(release)
	sr := <-survivor
	if sr.err != nil || sr.val != "result" || !sr.shared {
		t.Errorf("survivor = %+v, want shared result", sr)
	}
}

// TestErrorStatusMapping pins the sentinel-to-HTTP contract of the v1 API.
func TestErrorStatusMapping(t *testing.T) {
	var backendErr error
	s := New(Options{Backend: Backend{
		Evaluate: func(ctx context.Context, sys mepipe.System, m mepipe.Model, cl mepipe.Cluster, par mepipe.Parallel, tr mepipe.Training, sink obs.Sink) (*mepipe.Eval, error) {
			return nil, backendErr
		},
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		err    error
		status int
		code   string
	}{
		{"oom", fmt.Errorf("x: %w", errs.ErrOOM), 422, "oom"},
		{"incompatible", fmt.Errorf("x: %w", errs.ErrIncompatible), 422, "incompatible"},
		{"uncertified", fmt.Errorf("x: %w", errs.ErrUncertified), 422, "uncertified"},
		{"cancelled", fmt.Errorf("x: %w", errs.ErrCancelled), 499, "cancelled"},
		{"internal", errors.New("backend exploded"), 500, "internal"},
	}
	for i, tc := range cases {
		backendErr = tc.err
		// Vary the batch so each case misses the cache.
		resp, body := post(t, ts.URL+"/v1/simulate", simDoc(t, 8+8*i))
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		var e v1.ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if e.Code != tc.code || e.API != v1.Version {
			t.Errorf("%s: body = %+v, want code %q", tc.name, e, tc.code)
		}
	}

	// Malformed documents: 400 before any backend work.
	for name, doc := range map[string]string{
		"bad json":      `{`,
		"unknown field": `{"system":"mepipe","modle":{}}`,
		"no parallel":   `{"system":"mepipe","model":{"preset":"7b"},"cluster":{"preset":"rtx4090"},"training":{"global_batch":8}}`,
	} {
		resp, _ := post(t, ts.URL+"/v1/simulate", []byte(doc))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}

	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/search status = %d, want 405", resp.StatusCode)
	}
}

// TestSearchEndToEnd drives the real facade: a small grid search must come
// back certified with a ranked best candidate, repeat from the cache, and
// show up in the stats.
func TestSearchEndToEnd(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	doc, err := json.Marshal(v1.PlanRequest{
		System:   "mepipe",
		Model:    v1.ModelSpec{Preset: "7b"},
		Cluster:  v1.ClusterSpec{Preset: "rtx4090", Servers: 1},
		Training: v1.TrainingSpec{GlobalBatch: 8},
		Space:    &v1.SpaceSpec{PP: []int{8}, CP: []int{1}, SPP: []int{4}, VP: []int{1}, MinDP: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, ts.URL+"/v1/search", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s", resp.Status, body)
	}
	var res v1.SearchResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Certified || !res.Found || res.Best == nil || len(res.Candidates) == 0 {
		t.Fatalf("search found nothing: %+v", res)
	}
	if res.Best.OOM || res.Best.IterTimeS <= 0 || res.Best.MFU <= 0 {
		t.Errorf("best candidate = %+v", res.Best)
	}

	resp, body2 := post(t, ts.URL+"/v1/search", doc)
	if got := resp.Header.Get(cacheHeader); got != "hit" {
		t.Errorf("repeat outcome = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Error("cached search body differs")
	}

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats v1.StatsResponse
	err = json.NewDecoder(sresp.Body).Decode(&stats)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	ep := stats.Endpoints["/v1/search"]
	if ep.Requests != 2 || ep.Hits != 1 || ep.Misses != 1 {
		t.Errorf("stats = %+v, want 2 requests, 1 hit, 1 miss", ep)
	}
	if stats.Cache.Entries != 1 {
		t.Errorf("cache entries = %d, want 1", stats.Cache.Entries)
	}
}

// TestCertifyEndpoint round-trips a saved schedule artifact through
// /v1/certify, including a budget violation and a malformed document.
func TestCertifyEndpoint(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	dapple, err := sched.DAPPLE(2, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var artifact bytes.Buffer
	if err := dapple.Save(&artifact); err != nil {
		t.Fatal(err)
	}
	doc, err := json.Marshal(v1.CertifyRequest{Schedule: artifact.Bytes()})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL+"/v1/certify", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s", resp.Status, body)
	}
	var cert v1.CertifyResponse
	if err := json.Unmarshal(body, &cert); err != nil {
		t.Fatal(err)
	}
	if cert.Nodes == 0 || len(cert.PeakFamilies) != 2 {
		t.Errorf("certificate = %+v", cert)
	}

	// A slot budget below the swept peak must be rejected as uncertified.
	doc, err = json.Marshal(v1.CertifyRequest{Schedule: artifact.Bytes(), SlotBudget: []int{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, ts.URL+"/v1/certify", doc)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("over-budget status = %s: %s", resp.Status, body)
	}
	var e v1.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != "uncertified" {
		t.Errorf("code = %q, want uncertified", e.Code)
	}

	// A well-formed document whose schedule fails structural validation is
	// a 422; a schedule that is not even a JSON object is a bad request.
	// Neither may surface as a 500.
	resp, body = post(t, ts.URL+"/v1/certify", []byte(`{"schedule": {"not": "a schedule"}}`))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("invalid schedule status = %d, want 422: %s", resp.StatusCode, body)
	}
	resp, _ = post(t, ts.URL+"/v1/certify", []byte(`{"schedule": "not an object"}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-object schedule status = %d, want 400", resp.StatusCode)
	}
}

// TestTraceEndpoint checks both export formats and the format validation.
func TestTraceEndpoint(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mk := func(format string) []byte {
		doc, err := json.Marshal(v1.TraceRequest{
			PlanRequest: v1.PlanRequest{
				System:   "mepipe",
				Model:    v1.ModelSpec{Preset: "7b"},
				Cluster:  v1.ClusterSpec{Preset: "rtx4090", Servers: 1},
				Training: v1.TrainingSpec{GlobalBatch: 8},
				Parallel: &v1.ParallelSpec{PP: 8},
			},
			Format: format,
		})
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}

	resp, body := post(t, ts.URL+"/v1/trace", mk("chrome"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s", resp.Status, body)
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Error("chrome trace has no events")
	}

	resp, body = post(t, ts.URL+"/v1/trace", mk("jsonl"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s", resp.Status, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("jsonl content type = %q", ct)
	}
	if lines := strings.Count(strings.TrimSpace(string(body)), "\n"); lines == 0 {
		t.Error("jsonl trace has no events")
	}

	resp, _ = post(t, ts.URL+"/v1/trace", mk("dot"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format status = %d, want 400", resp.StatusCode)
	}
}

// TestLRU pins the eviction policy.
func TestLRU(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted despite refresh")
	}
	entries, capacity, evictions := c.Stats()
	if entries != 2 || capacity != 2 || evictions != 1 {
		t.Errorf("stats = %d/%d/%d, want 2/2/1", entries, capacity, evictions)
	}

	off := newLRUCache(0)
	off.Put("a", []byte("A"))
	if _, ok := off.Get("a"); ok {
		t.Error("disabled cache stored an entry")
	}
}

// TestRunLoad drives the load generator against a stub backend and checks
// the report adds up.
func TestRunLoad(t *testing.T) {
	s := New(Options{Backend: Backend{
		Evaluate: func(ctx context.Context, sys mepipe.System, m mepipe.Model, cl mepipe.Cluster, par mepipe.Parallel, tr mepipe.Training, sink obs.Sink) (*mepipe.Eval, error) {
			return stubEval(), nil
		},
	}})
	docs := [][]byte{simDoc(t, 8), simDoc(t, 16)}
	rep, err := RunLoad(context.Background(), s.Handler(), docs, LoadOptions{Requests: 16, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("report has %d errors: %+v", rep.Errors, rep)
	}
	if got := rep.Hits + rep.Misses + rep.Coalesced; got != 16 {
		t.Errorf("outcomes sum to %d, want 16: %+v", got, rep)
	}
	if rep.Hits == 0 {
		t.Error("no cache hits across 16 requests over 2 documents")
	}
	if rep.P50S > rep.P99S || rep.P99S > rep.MaxS || rep.MaxS <= 0 {
		t.Errorf("latency ordering broken: p50=%g p99=%g max=%g", rep.P50S, rep.P99S, rep.MaxS)
	}
	if rep.HitRate <= 0 || rep.HitRate >= 1 {
		t.Errorf("hit rate = %g", rep.HitRate)
	}
}

// TestHealthz pins the liveness endpoint.
func TestHealthz(t *testing.T) {
	s := New(Options{})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Errorf("healthz = %d %q", rec.Code, rec.Body.String())
	}
}

// optDoc is the optimize request the end-to-end test POSTs: a small real
// configuration plus a short, fixed-seed search.
func optDoc(t *testing.T, iters int) []byte {
	t.Helper()
	doc, err := json.Marshal(v1.OptimizeRequest{
		PlanRequest: v1.PlanRequest{
			System:   "mepipe",
			Model:    v1.ModelSpec{Preset: "7b"},
			Cluster:  v1.ClusterSpec{Preset: "rtx4090", Servers: 1},
			Training: v1.TrainingSpec{GlobalBatch: 8},
			Parallel: &v1.ParallelSpec{PP: 8},
		},
		Opt: &v1.OptSpec{Seed: 1, Iters: iters, Proposals: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestOptimizeEndToEnd drives POST /v1/optimize through the real facade
// backend: the discovered schedule must decode, never regress on the
// preset, and the identical repeat must be a cache hit with byte-equal
// body (the optimizer's determinism is what makes the endpoint cacheable
// at all).
func TestOptimizeEndToEnd(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := post(t, ts.URL+"/v1/optimize", optDoc(t, 3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s", resp.Status, body)
	}
	if got := resp.Header.Get(cacheHeader); got != "miss" {
		t.Errorf("first outcome = %q, want miss", got)
	}
	var or v1.OptimizeResponse
	if err := json.Unmarshal(body, &or); err != nil {
		t.Fatal(err)
	}
	if or.API != v1.Version || or.Key == "" || or.System != "mepipe" || !or.Certified {
		t.Errorf("response = %+v", or)
	}
	if or.StartedFrom != "preset" && or.StartedFrom != "heft" {
		t.Errorf("started_from = %q", or.StartedFrom)
	}
	if or.BestIterTimeS > or.BaseIterTimeS {
		t.Errorf("discovered %.6f is slower than the preset %.6f", or.BestIterTimeS, or.BaseIterTimeS)
	}
	if or.Proposed != 3*2 || or.Evaluated+or.Infeasible != or.Proposed {
		t.Errorf("counters: proposed %d evaluated %d infeasible %d", or.Proposed, or.Evaluated, or.Infeasible)
	}
	if _, err := sched.Load(bytes.NewReader(or.Schedule)); err != nil {
		t.Errorf("discovered schedule does not load: %v", err)
	}

	resp, body2 := post(t, ts.URL+"/v1/optimize", optDoc(t, 3))
	if got := resp.Header.Get(cacheHeader); got != "hit" {
		t.Errorf("repeat outcome = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Error("cached optimize body differs from computed body")
	}

	// A different round count is a different computation.
	resp, _ = post(t, ts.URL+"/v1/optimize", optDoc(t, 4))
	if got := resp.Header.Get(cacheHeader); got != "miss" {
		t.Errorf("different iters outcome = %q, want miss", got)
	}

	// Optimize without a pinned strategy is a 400.
	var noPar v1.OptimizeRequest
	if err := json.Unmarshal(optDoc(t, 3), &noPar); err != nil {
		t.Fatal(err)
	}
	noPar.Parallel = nil
	doc, err := json.Marshal(noPar)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, ts.URL+"/v1/optimize", doc)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("no parallel: %s: %s", resp.Status, body)
	}
}

// TestSweepEndToEnd runs /v1/sweep against the real engine on a small
// grid and cross-checks each system's slice against its own /v1/search:
// the sweep is advertised as byte-identical to per-system searches, and
// the wire layer must preserve that.
func TestSweepEndToEnd(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	space := &v1.SpaceSpec{PP: []int{8}, CP: []int{1}, SPP: []int{4}, VP: []int{1}, MinDP: 1}
	doc, err := json.Marshal(v1.SweepRequest{
		Systems:  []string{"mepipe", "terapipe"},
		Model:    v1.ModelSpec{Preset: "7b"},
		Cluster:  v1.ClusterSpec{Preset: "rtx4090", Servers: 1},
		Training: v1.TrainingSpec{GlobalBatch: 8},
		Space:    space,
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, ts.URL+"/v1/sweep", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s", resp.Status, body)
	}
	var res v1.SweepResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Certified || len(res.Systems) != 2 || res.Key == "" {
		t.Fatalf("sweep response = %+v", res)
	}
	if res.Stats.GridPoints == 0 || res.Stats.Evaluated == 0 {
		t.Errorf("implausible stats: %+v", res.Stats)
	}
	for i, name := range []string{"mepipe", "terapipe"} {
		sdoc, err := json.Marshal(v1.PlanRequest{
			System:   name,
			Model:    v1.ModelSpec{Preset: "7b"},
			Cluster:  v1.ClusterSpec{Preset: "rtx4090", Servers: 1},
			Training: v1.TrainingSpec{GlobalBatch: 8},
			Space:    space,
		})
		if err != nil {
			t.Fatal(err)
		}
		sresp, sbody := post(t, ts.URL+"/v1/search", sdoc)
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("search %s: %s: %s", name, sresp.Status, sbody)
		}
		var sr v1.SearchResponse
		if err := json.Unmarshal(sbody, &sr); err != nil {
			t.Fatal(err)
		}
		sys := res.Systems[i]
		if sys.System != name || sys.Found != sr.Found ||
			sys.Evaluated != sr.Evaluated || sys.Pruned != sr.Pruned {
			t.Errorf("%s: sweep slice %+v does not match search %+v", name, sys, sr)
		}
		if len(sys.Candidates) != len(sr.Candidates) {
			t.Fatalf("%s: sweep has %d candidates, search %d", name, len(sys.Candidates), len(sr.Candidates))
		}
		for j := range sr.Candidates {
			if sys.Candidates[j] != sr.Candidates[j] {
				t.Errorf("%s: candidate %d differs:\nsweep:  %+v\nsearch: %+v", name, j, sys.Candidates[j], sr.Candidates[j])
			}
		}
	}

	resp, body2 := post(t, ts.URL+"/v1/sweep", doc)
	if got := resp.Header.Get(cacheHeader); got != "hit" {
		t.Errorf("repeat outcome = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Error("cached sweep body differs from computed body")
	}

	// An unknown system name is a 400.
	bad, err := json.Marshal(v1.SweepRequest{
		Systems:  []string{"nope"},
		Model:    v1.ModelSpec{Preset: "7b"},
		Cluster:  v1.ClusterSpec{Preset: "rtx4090", Servers: 1},
		Training: v1.TrainingSpec{GlobalBatch: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, ts.URL+"/v1/sweep", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown system: %s: %s", resp.Status, body)
	}
}

// TestSweepBackendStub proves /v1/sweep routes through Backend.Sweep and
// counts its metrics under its own endpoint.
func TestSweepBackendStub(t *testing.T) {
	var calls atomic.Int32
	s := New(Options{Backend: Backend{
		Sweep: func(ctx context.Context, systems []mepipe.System, m mepipe.Model, cl mepipe.Cluster, tr mepipe.Training, sp mepipe.SearchSpace) (*mepipe.SweepResult, error) {
			calls.Add(1)
			res := &mepipe.SweepResult{}
			for range systems {
				res.Results = append(res.Results, &mepipe.SearchResult{Candidates: []*mepipe.Eval{stubEval()}, Evaluated: 1})
				res.Errs = append(res.Errs, nil)
			}
			return res, nil
		},
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	doc, err := json.Marshal(v1.SweepRequest{
		Model:    v1.ModelSpec{Preset: "7b"},
		Cluster:  v1.ClusterSpec{Preset: "rtx4090", Servers: 1},
		Training: v1.TrainingSpec{GlobalBatch: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL+"/v1/sweep", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s", resp.Status, body)
	}
	var res v1.SweepResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	// An empty system list expands to every system.
	if len(res.Systems) != len(mepipe.Systems()) {
		t.Errorf("sweep covered %d systems, want %d", len(res.Systems), len(mepipe.Systems()))
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("backend ran %d times, want 1", got)
	}
}
