// Package profile implements MEPipe's profiler component (§6: "a profiler
// that measures the computation time and memory consumption for each
// forward and backward pass"). It times real operations — here the tiny
// decoder's layers on the host CPU — and fits the same saturating
// efficiency model the simulator uses, closing the measure → model →
// schedule loop on actual hardware.
package profile

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mepipe/internal/nn"
	"mepipe/internal/sched"
	"mepipe/internal/tensor"
)

// Sample is one timing observation: a kernel call over Tokens tokens took
// Seconds.
type Sample struct {
	Tokens  int
	Seconds float64
}

// FitThroughput fits the saturating throughput model
//
//	time(t) = work(t) / (peak · t/(t+tau))
//
// to samples whose work is proportional to the token count (GEMM-shaped):
// time(t) = (c/peak)·(t + tau). A least-squares line through (t, time)
// yields slope = c/peak and intercept = slope·tau.
func FitThroughput(samples []Sample) (tauTokens float64, secPerToken float64, err error) {
	if len(samples) < 2 {
		return 0, 0, fmt.Errorf("profile: need at least 2 samples, got %d", len(samples))
	}
	var n, sx, sy, sxx, sxy float64
	for _, s := range samples {
		if s.Tokens <= 0 || s.Seconds <= 0 {
			return 0, 0, fmt.Errorf("profile: non-positive sample %+v", s)
		}
		x, y := float64(s.Tokens), s.Seconds
		n++
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("profile: degenerate samples (all equal token counts)")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	if slope <= 0 {
		return 0, 0, fmt.Errorf("profile: non-increasing timings (slope %g)", slope)
	}
	tau := intercept / slope
	if tau < 0 {
		tau = 0
	}
	return tau, slope, nil
}

// LayerTimer measures the real forward and backward time of one decoder
// layer at the given slice widths, with repetitions and median selection to
// tame scheduler noise.
type LayerTimer struct {
	Model *nn.Model
	Reps  int
}

// timeOnce measures one forward+backward of width tokens through layer 0.
func (lt *LayerTimer) timeOnce(width int) (fwd, bwd float64) {
	l := lt.Model.Layers[0]
	st := nn.NewLayerState(lt.Model.Cfg)
	x := tensor.New(width, lt.Model.Cfg.Hidden)
	for i := range x.Data {
		x.Data[i] = float32(i%7) * 0.01
	}
	t0 := time.Now()
	y := l.ForwardSlice(nil, st, x, 0)
	fwd = time.Since(t0).Seconds()
	dy := tensor.New(width, lt.Model.Cfg.Hidden)
	copy(dy.Data, y.Data)
	t1 := time.Now()
	_, tasks := l.BackwardSlice(nil, st, 0, dy, nil)
	for _, task := range tasks {
		task.Run()
	}
	bwd = time.Since(t1).Seconds()
	return fwd, bwd
}

// Measure returns median forward and backward samples per width.
func (lt *LayerTimer) Measure(widths []int) (fwd, bwd []Sample) {
	reps := lt.Reps
	if reps <= 0 {
		reps = 5
	}
	for _, w := range widths {
		fs := make([]float64, 0, reps)
		bs := make([]float64, 0, reps)
		for i := 0; i < reps; i++ {
			f, b := lt.timeOnce(w)
			fs = append(fs, f)
			bs = append(bs, b)
		}
		sort.Float64s(fs)
		sort.Float64s(bs)
		fwd = append(fwd, Sample{w, fs[reps/2]})
		bwd = append(bwd, Sample{w, bs[reps/2]})
	}
	return fwd, bwd
}

// MeasuredEstimator turns layer timings into a sched.Estimator for the tiny
// runtime: per-op durations are the measured per-layer times scaled by the
// chunk's layer count and the slice's causal-attention position factor.
type MeasuredEstimator struct {
	// FwdPerToken / BwdPerToken and Tau come from FitThroughput.
	FwdPerToken, BwdPerToken, Tau float64
	LayersPerChunk                int
	SliceTokens                   int
	Slices                        int
	// WShare is the fraction of the backward that is weight-gradient
	// work (deferrable); the rest is the activation-gradient half.
	WShare float64
	Pieces int
}

// opSeconds estimates one op's duration from the fitted line.
func (e MeasuredEstimator) opSeconds(perToken float64, op sched.Op) float64 {
	t := float64(e.SliceTokens)
	base := perToken * (t + e.Tau) * float64(e.LayersPerChunk)
	// Causal attention grows roughly linearly across slices; the tiny
	// model's attention share is small, so a mild tilt suffices.
	tilt := 1 + 0.1*float64(op.Slice)/float64(max(1, e.Slices-1))
	return base * tilt
}

func (e MeasuredEstimator) OpTime(stage int, op sched.Op) float64 {
	switch op.Kind {
	case sched.F:
		return e.opSeconds(e.FwdPerToken, op)
	case sched.B:
		return e.opSeconds(e.BwdPerToken, op)
	case sched.BAct:
		return e.opSeconds(e.BwdPerToken, op) * (1 - e.WShare)
	case sched.W:
		return e.opSeconds(e.BwdPerToken, op) * e.WShare
	case sched.WPiece:
		return e.opSeconds(e.BwdPerToken, op) * e.WShare / float64(max(1, e.Pieces))
	}
	return 0
}

func (e MeasuredEstimator) CommTime(from, to int, op sched.Op) float64 { return 0 }

// RelativeError reports how well the fit explains the samples (max
// fractional residual), a quality gate for the profiler.
func RelativeError(samples []Sample, tau, perToken float64) float64 {
	worst := 0.0
	for _, s := range samples {
		pred := perToken * (float64(s.Tokens) + tau)
		if r := math.Abs(pred-s.Seconds) / s.Seconds; r > worst {
			worst = r
		}
	}
	return worst
}

// OpTable is a table-driven estimator built from direct measurements of
// every (slice, op-kind) at its true shape — what MEPipe's profiler
// actually records (§6), with no curve fitting in between.
type OpTable struct {
	// F, BAct, W hold per-slice seconds for one chunk's worth of layers.
	F, BAct, W []float64
	Pieces     int
}

func (t *OpTable) OpTime(stage int, op sched.Op) float64 {
	switch op.Kind {
	case sched.F:
		return t.F[op.Slice]
	case sched.B:
		return t.BAct[op.Slice] + t.W[op.Slice]
	case sched.BAct:
		return t.BAct[op.Slice]
	case sched.W:
		return t.W[op.Slice]
	case sched.WPiece:
		return t.W[op.Slice] / float64(max(1, t.Pieces))
	}
	return 0
}

func (t *OpTable) CommTime(from, to int, op sched.Op) float64 { return 0 }

// MeasureSliceOps times each slice's forward, activation-gradient, and
// weight-gradient work at its real shape: the forward runs with the KV
// cache grown to the slice's start position, the backward in reverse slice
// order with real gradient payloads. Times are medians over reps and are
// scaled to layersPerChunk layers.
func MeasureSliceOps(m *nn.Model, slices, layersPerChunk, reps int) (*OpTable, error) {
	if m.Cfg.SeqLen%slices != 0 {
		return nil, fmt.Errorf("profile: %d tokens not divisible by %d slices", m.Cfg.SeqLen, slices)
	}
	if reps <= 0 {
		reps = 5
	}
	width := m.Cfg.SeqLen / slices
	l := m.Layers[0]
	scale := float64(layersPerChunk)

	fs := make([][]float64, slices)
	bs := make([][]float64, slices)
	ws := make([][]float64, slices)
	for rep := 0; rep < reps; rep++ {
		st := nn.NewLayerState(m.Cfg)
		outs := make([]*tensor.Matrix, slices)
		for i := 0; i < slices; i++ {
			x := tensor.New(width, m.Cfg.Hidden)
			for j := range x.Data {
				x.Data[j] = float32((j+i)%11) * 0.01
			}
			t0 := time.Now()
			outs[i] = l.ForwardSlice(nil, st, x, i*width)
			fs[i] = append(fs[i], time.Since(t0).Seconds())
		}
		for i := slices - 1; i >= 0; i-- {
			dy := tensor.New(width, m.Cfg.Hidden)
			copy(dy.Data, outs[i].Data)
			t0 := time.Now()
			_, tasks := l.BackwardSlice(nil, st, i*width, dy, nil)
			bs[i] = append(bs[i], time.Since(t0).Seconds())
			t1 := time.Now()
			for _, task := range tasks {
				task.Run()
			}
			ws[i] = append(ws[i], time.Since(t1).Seconds())
		}
	}
	table := &OpTable{Pieces: nn.WeightGradGEMMs}
	med := func(v []float64) float64 {
		sort.Float64s(v)
		return v[len(v)/2]
	}
	for i := 0; i < slices; i++ {
		table.F = append(table.F, med(fs[i])*scale)
		table.BAct = append(table.BAct, med(bs[i])*scale)
		table.W = append(table.W, med(ws[i])*scale)
	}
	return table, nil
}
