package profile

import (
	"math"
	"testing"

	"mepipe/internal/nn"
	"mepipe/internal/sched"
)

// TestFitRecoversPlantedModel: synthetic samples from a known (tau, rate)
// must be recovered exactly.
func TestFitRecoversPlantedModel(t *testing.T) {
	const tau, rate = 48.0, 3e-6
	var samples []Sample
	for _, tok := range []int{16, 32, 64, 128, 256} {
		samples = append(samples, Sample{tok, rate * (float64(tok) + tau)})
	}
	gotTau, gotRate, err := FitThroughput(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotTau-tau) > 1e-6 || math.Abs(gotRate-rate)/rate > 1e-9 {
		t.Errorf("fit = (tau %.3f, rate %.3g), want (%.3f, %.3g)", gotTau, gotRate, tau, rate)
	}
	if re := RelativeError(samples, gotTau, gotRate); re > 1e-9 {
		t.Errorf("perfect data should fit perfectly, residual %g", re)
	}
}

func TestFitErrors(t *testing.T) {
	if _, _, err := FitThroughput(nil); err == nil {
		t.Error("empty samples accepted")
	}
	if _, _, err := FitThroughput([]Sample{{8, 1}, {8, 2}}); err == nil {
		t.Error("degenerate samples accepted")
	}
	if _, _, err := FitThroughput([]Sample{{8, 2}, {16, 1}, {32, 0.5}}); err == nil {
		t.Error("decreasing timings accepted")
	}
	if _, _, err := FitThroughput([]Sample{{0, 1}, {8, 2}}); err == nil {
		t.Error("zero-token sample accepted")
	}
}

// TestMeasureRealKernels: real measurements of the tiny decoder must be
// positive, grow with width, and fit the saturating model reasonably.
func TestMeasureRealKernels(t *testing.T) {
	m, err := nn.NewModel(nn.Config{Hidden: 32, Heads: 2, FFN: 64, Vocab: 17, Layers: 1, SeqLen: 256}, 1)
	if err != nil {
		t.Fatal(err)
	}
	lt := &LayerTimer{Model: m, Reps: 3}
	fwd, bwd := lt.Measure([]int{16, 64, 256})
	for i := 1; i < len(fwd); i++ {
		if fwd[i].Seconds <= 0 || bwd[i].Seconds <= 0 {
			t.Fatal("non-positive timing")
		}
		if fwd[i].Seconds < fwd[i-1].Seconds/2 {
			t.Errorf("forward time shrank drastically with 4x width: %+v", fwd)
		}
	}
	tau, rate, err := FitThroughput(fwd)
	if err != nil {
		t.Fatalf("fitting real forward timings: %v (%+v)", err, fwd)
	}
	if rate <= 0 || tau < 0 {
		t.Errorf("implausible fit tau=%v rate=%v", tau, rate)
	}
}

// TestMeasuredEstimatorShape: durations respect the kind semantics (BAct +
// W == B; pieces split W evenly; later slices cost more).
func TestMeasuredEstimatorShape(t *testing.T) {
	e := MeasuredEstimator{
		FwdPerToken: 1e-6, BwdPerToken: 2e-6, Tau: 32,
		LayersPerChunk: 2, SliceTokens: 64, Slices: 4, WShare: 0.4, Pieces: 4,
	}
	op := sched.Op{Kind: sched.B, Slice: 1}
	b := e.OpTime(0, op)
	op.Kind = sched.BAct
	ba := e.OpTime(0, op)
	op.Kind = sched.W
	w := e.OpTime(0, op)
	if math.Abs(ba+w-b) > 1e-12 {
		t.Errorf("BAct %v + W %v != B %v", ba, w, b)
	}
	var pieces float64
	for i := 0; i < 4; i++ {
		pc := sched.Op{Kind: sched.WPiece, Slice: 1, Piece: i}
		pieces += e.OpTime(0, pc)
	}
	if math.Abs(pieces-w) > 1e-12 {
		t.Errorf("pieces sum %v != whole W %v", pieces, w)
	}
	f0 := e.OpTime(0, sched.Op{Kind: sched.F, Slice: 0})
	f3 := e.OpTime(0, sched.Op{Kind: sched.F, Slice: 3})
	if f3 <= f0 {
		t.Error("later slices should cost more (causal attention)")
	}
	if e.CommTime(0, 1, op) != 0 {
		t.Error("measured estimator has no comm model")
	}
}

// TestMeasureSliceOpsShape: real per-slice measurements show the causal
// growth (later slices cost more forward) while weight-gradient work stays
// flat — the §5 premise, observed on real kernels.
func TestMeasureSliceOpsShape(t *testing.T) {
	m, err := nn.NewModel(nn.Config{Hidden: 32, Heads: 2, FFN: 64, Vocab: 17, Layers: 1, SeqLen: 512}, 2)
	if err != nil {
		t.Fatal(err)
	}
	table, err := MeasureSliceOps(m, 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.F) != 4 {
		t.Fatalf("%d forward entries, want 4", len(table.F))
	}
	for i := 0; i < 4; i++ {
		if table.F[i] <= 0 || table.BAct[i] <= 0 || table.W[i] <= 0 {
			t.Fatalf("slice %d: non-positive timing", i)
		}
	}
	// Causal attention: the last slice's forward should exceed the
	// first's (noise-tolerant: ≥ 1.0x would be flaky, demand the sum of
	// later halves beats the earlier half).
	early := table.F[0] + table.F[1]
	late := table.F[2] + table.F[3]
	if late <= early {
		t.Errorf("later slices (%.2gs) not slower than earlier (%.2gs)", late, early)
	}
	// The estimator must be usable by the generator.
	if _, err := sched.MEPipe(2, 1, 4, 2, 0, table.Pieces, table); err != nil {
		t.Fatal(err)
	}
	if table.OpTime(0, sched.Op{Kind: sched.B, Slice: 1}) !=
		table.BAct[1]+table.W[1] {
		t.Error("fused B must equal BAct + W")
	}
}
