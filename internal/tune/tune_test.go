package tune

import (
	"testing"

	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

func TestImproveNeverWorsensAndStaysValid(t *testing.T) {
	builds := []func() (*sched.Schedule, error){
		func() (*sched.Schedule, error) { return sched.DAPPLE(4, 6, nil) },
		func() (*sched.Schedule, error) { return sched.Hanayo(4, 8, nil) },
		func() (*sched.Schedule, error) { return sched.MEPipe(4, 1, 2, 4, 0, 3, nil) },
	}
	for _, build := range builds {
		s, err := build()
		if err != nil {
			t.Fatal(err)
		}
		origLen := len(s.Stages[0])
		res, err := Improve(s, sim.Unit(), Options{Iters: 300, Seed: 1, MaxMove: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.After > res.Before {
			t.Errorf("%s: search worsened %.2f -> %.2f", s, res.Before, res.After)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Errorf("%s: tuned schedule invalid: %v", s, err)
		}
		if len(s.Stages[0]) != origLen {
			t.Error("input schedule was mutated")
		}
		// The result's claimed makespan must be reproducible.
		check, err := sim.Run(sim.Options{Sched: res.Schedule, Costs: sim.Unit()})
		if err != nil {
			t.Fatal(err)
		}
		if diff := check.IterTime - res.After; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: claimed %.4f, replay %.4f", s, res.After, check.IterTime)
		}
	}
}

// TestImproveClosesHanayoGap: the greedy wave order leaves real room; local
// search must recover a meaningful share of it.
func TestImproveClosesHanayoGap(t *testing.T) {
	s, err := sched.Hanayo(4, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Improve(s, sim.Unit(), Options{Iters: 6000, Seed: 7, MaxMove: 6, Plateau: true})
	if err != nil {
		t.Fatal(err)
	}
	gain := (res.Before - res.After) / res.Before
	if gain < 0.03 {
		t.Errorf("only %.1f%% improvement on the greedy wave; expected a few percent", 100*gain)
	}
	if res.Accepted == 0 {
		t.Error("no proposals accepted")
	}
}

// TestImproveRespectsKeepPeak: memory-preserving mode never raises the
// activation peak.
func TestImproveRespectsKeepPeak(t *testing.T) {
	s, err := sched.SVPP(sched.SVPPOptions{P: 4, V: 2, S: 2, N: 2, F: 4})
	if err != nil {
		t.Fatal(err)
	}
	before, err := sim.Run(sim.Options{Sched: s, Costs: sim.Unit()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Improve(s, sim.Unit(), Options{Iters: 800, Seed: 3, MaxMove: 4, KeepPeak: true})
	if err != nil {
		t.Fatal(err)
	}
	after, err := sim.Run(sim.Options{Sched: res.Schedule, Costs: sim.Unit()})
	if err != nil {
		t.Fatal(err)
	}
	if after.PeakAct > before.PeakAct {
		t.Errorf("KeepPeak violated: %d -> %d", before.PeakAct, after.PeakAct)
	}
}

// TestImproveFindsLittleOnMEPipe: the rescheduled SVPP order is already
// near the analytic bound, so local search should gain almost nothing —
// evidence the generator is good.
func TestImproveFindsLittleOnMEPipe(t *testing.T) {
	s, err := sched.SVPP(sched.SVPPOptions{P: 4, V: 2, S: 2, N: 8, Reschedule: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Improve(s, sim.Unit(), Options{Iters: 1500, Seed: 5, MaxMove: 4})
	if err != nil {
		t.Fatal(err)
	}
	if gain := (res.Before - res.After) / res.Before; gain > 0.02 {
		t.Errorf("local search found %.1f%% on a near-optimal schedule — generator regression?", 100*gain)
	}
}

func TestMoveHelper(t *testing.T) {
	mk := func() []sched.Op {
		return []sched.Op{{Micro: 0}, {Micro: 1}, {Micro: 2}, {Micro: 3}}
	}
	ops := mk()
	move(ops, 0, 2) // 1 2 0 3
	if ops[0].Micro != 1 || ops[2].Micro != 0 || ops[3].Micro != 3 {
		t.Errorf("forward move wrong: %v", ops)
	}
	ops = mk()
	move(ops, 3, 1) // 0 3 1 2
	if ops[1].Micro != 3 || ops[2].Micro != 1 || ops[3].Micro != 2 {
		t.Errorf("backward move wrong: %v", ops)
	}
	// Round trip restores.
	ops = mk()
	move(ops, 0, 3)
	move(ops, 3, 0)
	for i, op := range ops {
		if op.Micro != i {
			t.Fatalf("move round trip broken: %v", ops)
		}
	}
}

func TestImproveDefaults(t *testing.T) {
	s, err := sched.DAPPLE(2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Improve(s, sim.Unit(), Options{}) // all defaults
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule == nil || res.Before <= 0 {
		t.Error("defaulted options produced no result")
	}
}
