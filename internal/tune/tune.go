// Package tune post-optimises generated schedules by local search: random
// adjacent swaps and short-range moves in per-stage op orders, accepted
// when the simulated makespan improves and the schedule stays valid. The
// greedy generators are good but not optimal (the wave layouts especially);
// this is the tooling a schedule-research repo needs to measure how much
// order is left on the table.
package tune

import (
	"fmt"
	"math/rand"

	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

// Options configures the search.
type Options struct {
	// Iters is the number of proposals to try.
	Iters int
	// Seed drives the proposal sequence (deterministic).
	Seed int64
	// MaxMove bounds how far an op may be displaced per proposal
	// (1 = adjacent swaps only).
	MaxMove int
	// KeepPeak rejects proposals that raise the peak activation
	// retention, preserving the schedule's memory variant (§4.2).
	KeepPeak bool
	// Plateau accepts equal-makespan moves, letting the walk drift
	// across plateaus to find downhill exits (strict descent stalls on
	// rugged schedule landscapes).
	Plateau bool
}

// Result reports what the search achieved.
type Result struct {
	Schedule *sched.Schedule
	Before   float64 // simulated makespan of the input
	After    float64
	Accepted int
	Tried    int
}

// Improve hill-climbs the schedule under the given costs. The input is not
// modified.
func Improve(s *sched.Schedule, costs sim.Costs, opt Options) (*Result, error) {
	if opt.Iters <= 0 {
		opt.Iters = 500
	}
	if opt.MaxMove <= 0 {
		opt.MaxMove = 1
	}
	cur := cloneSchedule(s)
	base, err := sim.Run(sim.Options{Sched: cur, Costs: costs})
	if err != nil {
		return nil, err
	}
	res := &Result{Before: base.IterTime, After: base.IterTime}
	bestTime := base.IterTime
	bestPeak := base.PeakAct
	rng := rand.New(rand.NewSource(opt.Seed))

	for i := 0; i < opt.Iters; i++ {
		k := rng.Intn(cur.P)
		ops := cur.Stages[k]
		if len(ops) < 2 {
			continue
		}
		from := rng.Intn(len(ops))
		delta := rng.Intn(2*opt.MaxMove+1) - opt.MaxMove
		to := from + delta
		if to < 0 || to >= len(ops) || to == from {
			continue
		}
		res.Tried++
		move(ops, from, to)
		ok := cur.Validate() == nil
		var r *sim.Result
		if ok {
			r, err = sim.Run(sim.Options{Sched: cur, Costs: costs})
			limit := bestTime - 1e-12
			if opt.Plateau {
				limit = bestTime + 1e-12
			}
			ok = err == nil && r.IterTime <= limit &&
				(!opt.KeepPeak || r.PeakAct <= bestPeak)
		}
		if !ok {
			move(ops, to, from) // revert
			continue
		}
		if r.IterTime < bestTime {
			bestTime = r.IterTime
		}
		if r.PeakAct < bestPeak {
			bestPeak = r.PeakAct
		}
		res.Accepted++
	}
	res.Schedule = cur
	res.After = bestTime
	if res.After > res.Before+1e-12 {
		return nil, fmt.Errorf("tune: internal error — search worsened the schedule")
	}
	return res, nil
}

// move displaces ops[from] to position to, shifting the range between.
func move(ops []sched.Op, from, to int) {
	op := ops[from]
	if from < to {
		copy(ops[from:], ops[from+1:to+1])
	} else {
		copy(ops[to+1:], ops[to:from])
	}
	ops[to] = op
}

func cloneSchedule(s *sched.Schedule) *sched.Schedule {
	c := *s
	c.Stages = make([][]sched.Op, len(s.Stages))
	for k := range s.Stages {
		c.Stages[k] = append([]sched.Op(nil), s.Stages[k]...)
	}
	return &c
}
