// Package cluster models the evaluation testbeds: servers of GPUs joined by
// an intra-node fabric (PCIe or NVLink) and an inter-node InfiniBand
// network, the Megatron-style placement of a PP×DP×CP mesh onto them, and
// the collective cost models (ring all-reduce / reduce-scatter /
// all-gather, point-to-point) the simulator charges.
package cluster

import (
	"fmt"

	"mepipe/internal/config"
	"mepipe/internal/errs"
	"mepipe/internal/hw"
)

// Cluster is one homogeneous GPU cluster.
type Cluster struct {
	GPU           hw.GPU
	GPUsPerServer int
	Servers       int
	Intra         hw.Link // GPU-to-GPU within a server
	Inter         hw.Link // server-to-server (per NIC)
	Eff           hw.EffCurve
}

// RTX4090Cluster returns the paper's main testbed (§7.1): `servers` hosts,
// each with 8 RTX 4090 GPUs on PCIe 4.0, joined by 100 Gb/s InfiniBand.
func RTX4090Cluster(servers int) Cluster {
	return Cluster{
		GPU: hw.RTX4090(), GPUsPerServer: 8, Servers: servers,
		Intra: hw.PCIe4(), Inter: hw.IB100(), Eff: hw.DefaultEff(),
	}
}

// A100Cluster returns the cost-comparison testbed (§7.6): 8× A100 80 GB per
// server on NVLink, 800 Gb/s InfiniBand between servers.
func A100Cluster(servers int) Cluster {
	return Cluster{
		GPU: hw.A100(), GPUsPerServer: 8, Servers: servers,
		Intra: hw.NVLink3(), Inter: hw.IB800(), Eff: hw.DefaultEff(),
	}
}

// GPUs returns the total device count.
func (c Cluster) GPUs() int { return c.GPUsPerServer * c.Servers }

// ServerPrice returns the price of the whole cluster in USD.
func (c Cluster) Price() float64 { return float64(c.Servers) * c.GPU.ServerPriceUSD }

// Placement follows Megatron-LM's rank order (pipeline outermost): pipeline
// stage k owns the contiguous GPU block [k·G/pp, (k+1)·G/pp); the DP×CP
// replicas of a stage live inside that block. With pp equal to or above the
// server count, consecutive stages may share a server; otherwise each
// stage's block spans full servers and pipeline hops cross InfiniBand.

// Mesh validates that a parallel strategy fits the cluster and returns
// placement-derived quantities.
type Mesh struct {
	C   Cluster
	Par config.Parallel
}

// NewMesh checks the strategy against the cluster size.
func NewMesh(c Cluster, par config.Parallel) (Mesh, error) {
	if err := par.Validate(); err != nil {
		return Mesh{}, err
	}
	if par.Devices() != c.GPUs() {
		return Mesh{}, fmt.Errorf("cluster: strategy %v needs %d GPUs, cluster has %d: %w", par, par.Devices(), c.GPUs(), errs.ErrIncompatible)
	}
	return Mesh{C: c, Par: par}, nil
}

// gpusPerStage returns the block size owned by one pipeline stage.
func (m Mesh) gpusPerStage() int { return m.Par.DP * m.Par.CP * m.Par.TPSize() }

// server returns the server index of a global GPU rank.
func (m Mesh) server(rank int) int { return rank / m.C.GPUsPerServer }

// StageLink returns the link used by the pipeline hop from stage k to k+1
// (wrapping hops, used by virtual pipelining, take the same path as
// stage p−1 → 0).
func (m Mesh) StageLink(k int) hw.Link {
	per := m.gpusPerStage()
	p := m.Par.PP
	a := (k % p) * per
	b := ((k + 1) % p) * per
	if m.server(a) == m.server(b) {
		return m.C.Intra
	}
	return m.C.Inter
}

// CPGroupLink returns the link spanning a context-parallel group. CP ranks
// are contiguous inside a stage block, so the group stays intra-node
// whenever it fits in one server.
func (m Mesh) CPGroupLink() hw.Link {
	if m.Par.CP <= m.C.GPUsPerServer && m.gpusPerStage() <= m.C.GPUsPerServer {
		return m.C.Intra
	}
	if m.Par.CP <= m.C.GPUsPerServer {
		return m.C.Intra
	}
	return m.C.Inter
}

// TPGroupLink returns the link spanning a tensor-parallel group. TP ranks
// are innermost (Megatron order), so the group is intra-node whenever it
// fits in one server.
func (m Mesh) TPGroupLink() hw.Link {
	if m.Par.TPSize() <= m.C.GPUsPerServer {
		return m.C.Intra
	}
	return m.C.Inter
}

// DPGroupLink returns the slowest link inside a data-parallel group (which
// bounds ring collectives). The DP group of one stage spans the stage's
// block; if that block exceeds one server the ring crosses InfiniBand.
func (m Mesh) DPGroupLink() hw.Link {
	if m.gpusPerStage() <= m.C.GPUsPerServer {
		return m.C.Intra
	}
	return m.C.Inter
}

// AllReduceTime returns the ring all-reduce time for n bytes over a group of
// g ranks on link l: 2·(g−1)/g · n / bw plus per-step latencies.
func AllReduceTime(l hw.Link, g int, n int64) float64 {
	if g <= 1 || n <= 0 {
		return 0
	}
	steps := 2 * (g - 1)
	volume := 2 * float64(g-1) / float64(g) * float64(n)
	return volume/l.BandwidthBytes + float64(steps)*l.Latency
}

// ReduceScatterTime returns the ring reduce-scatter time (half an
// all-reduce).
func ReduceScatterTime(l hw.Link, g int, n int64) float64 {
	if g <= 1 || n <= 0 {
		return 0
	}
	volume := float64(g-1) / float64(g) * float64(n)
	return volume/l.BandwidthBytes + float64(g-1)*l.Latency
}

// AllGatherTime returns the ring all-gather time (same volume as
// reduce-scatter).
func AllGatherTime(l hw.Link, g int, n int64) float64 {
	return ReduceScatterTime(l, g, n)
}

// P2PTime returns the point-to-point transfer time for n bytes.
func P2PTime(l hw.Link, n int64) float64 { return l.TransferTime(n) }
