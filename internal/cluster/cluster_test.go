package cluster

import (
	"testing"

	"mepipe/internal/config"
	"mepipe/internal/hw"
)

func mesh(t *testing.T, c Cluster, par config.Parallel) Mesh {
	t.Helper()
	m, err := NewMesh(c, par)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMeshValidates(t *testing.T) {
	c := RTX4090Cluster(8)
	if c.GPUs() != 64 {
		t.Fatalf("cluster GPUs = %d, want 64", c.GPUs())
	}
	if _, err := NewMesh(c, config.Parallel{PP: 8, DP: 4, CP: 1, SPP: 1, VP: 1}); err == nil {
		t.Error("32-GPU strategy accepted on a 64-GPU cluster")
	}
	if _, err := NewMesh(c, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 1, VP: 1}); err != nil {
		t.Errorf("valid mesh rejected: %v", err)
	}
}

func TestStageLinksFollowPlacement(t *testing.T) {
	c := RTX4090Cluster(8)
	// PP=8 on 8 servers: each stage owns one full server (DP·CP = 8), so
	// every pipeline hop crosses InfiniBand.
	m := mesh(t, c, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 1, VP: 1})
	for k := 0; k < 8; k++ {
		if got := m.StageLink(k); got != c.Inter {
			t.Fatalf("pp=8: hop %d on %s, want InfiniBand", k, got.Name)
		}
	}
	// PP=16: stage blocks of 4 GPUs, two stages per server: alternate
	// hops stay on PCIe.
	m = mesh(t, c, config.Parallel{PP: 16, DP: 4, CP: 1, SPP: 1, VP: 1})
	intra, inter := 0, 0
	for k := 0; k < 16; k++ {
		if m.StageLink(k) == c.Intra {
			intra++
		} else {
			inter++
		}
	}
	if intra != 8 || inter != 8 {
		t.Errorf("pp=16: %d intra / %d inter hops, want 8/8", intra, inter)
	}
	// DP group of a stage block that fits one server rides PCIe.
	m = mesh(t, c, config.Parallel{PP: 8, DP: 4, CP: 2, SPP: 1, VP: 1})
	if got := m.DPGroupLink(); got != c.Intra {
		t.Errorf("DP group on %s, want intra-node", got.Name)
	}
	if got := m.CPGroupLink(); got != c.Intra {
		t.Errorf("CP group on %s, want intra-node", got.Name)
	}
}

func TestCollectiveCosts(t *testing.T) {
	l := hw.PCIe4()
	if AllReduceTime(l, 1, 1<<30) != 0 {
		t.Error("single-rank all-reduce must be free")
	}
	if AllReduceTime(l, 8, 0) != 0 {
		t.Error("zero-byte all-reduce must be free")
	}
	ar := AllReduceTime(l, 8, 1<<30)
	rs := ReduceScatterTime(l, 8, 1<<30)
	ag := AllGatherTime(l, 8, 1<<30)
	if rs != ag {
		t.Error("ring reduce-scatter and all-gather move the same volume")
	}
	if ar <= rs || ar >= rs+ag+1e-6 {
		t.Errorf("all-reduce %.4f should be ≈ reduce-scatter %.4f + all-gather %.4f", ar, rs, ag)
	}
	// More ranks → more volume per the 2(g−1)/g law.
	if AllReduceTime(l, 2, 1<<30) >= AllReduceTime(l, 8, 1<<30) {
		t.Error("2-rank all-reduce should be cheaper than 8-rank")
	}
}

func TestClusterPrice(t *testing.T) {
	if p := RTX4090Cluster(8).Price(); p != 240000 {
		t.Errorf("4090 cluster price %v, want 240000", p)
	}
	// §7.6: 32 A100s (4 servers) cost 2.5× the 64-4090 cluster.
	r := A100Cluster(4).Price() / RTX4090Cluster(8).Price()
	if r != 2.5 {
		t.Errorf("price ratio %v, want 2.5", r)
	}
}

func TestA100MeshLinks(t *testing.T) {
	c := A100Cluster(4) // 32 GPUs
	m := mesh(t, c, config.Parallel{PP: 4, DP: 8, CP: 1, SPP: 1, VP: 1})
	// PP=4 on 4 servers: one stage per server, hops over IB800.
	for k := 0; k < 4; k++ {
		if m.StageLink(k).Name != c.Inter.Name {
			t.Fatalf("hop %d on %s, want InfiniBand", k, m.StageLink(k).Name)
		}
	}
	if m.DPGroupLink().Name != c.Intra.Name {
		t.Error("DP group should ride NVLink")
	}
}

func TestTPGroupLink(t *testing.T) {
	c := RTX4090Cluster(8)
	m := mesh(t, c, config.Parallel{PP: 8, DP: 4, CP: 1, SPP: 1, VP: 1, TP: 2})
	if m.TPGroupLink().Name != c.Intra.Name {
		t.Error("TP=2 group should stay intra-node")
	}
	m = mesh(t, c, config.Parallel{PP: 2, DP: 2, CP: 1, SPP: 1, VP: 1, TP: 16})
	if m.TPGroupLink().Name != c.Inter.Name {
		t.Error("TP=16 group cannot fit one 8-GPU server")
	}
}

func TestDPGroupSpansServers(t *testing.T) {
	c := RTX4090Cluster(8)
	// PP=2: each stage block holds 32 GPUs across 4 servers; the DP ring
	// must cross InfiniBand.
	m := mesh(t, c, config.Parallel{PP: 2, DP: 32, CP: 1, SPP: 1, VP: 1})
	if m.DPGroupLink().Name != c.Inter.Name {
		t.Error("a 32-GPU DP group cannot stay intra-node")
	}
}
