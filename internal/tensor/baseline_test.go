package tensor

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
)

var benchJSON = flag.String("bench-json", "", "write the kernel benchmark baseline to this file (see make bench-kernels)")

// BenchmarkMatMul256 is the acceptance benchmark of the kernel rewrite: the
// 256×256×256 GEMM through the naive baseline, the tiled serial kernel, and
// the pooled 4-worker kernel. The parallel speedup target (≥3× vs serial)
// is only observable on a machine with ≥4 cores; the recorded baseline
// carries the core count so readers can interpret the ratio.
func BenchmarkMatMul256(b *testing.B) {
	serial := NewPool(KernelConfig{Workers: 1})
	defer serial.Close()
	par := NewPool(KernelConfig{Workers: 4})
	defer par.Close()
	b.Run("naive", func(b *testing.B) { benchGemm(b, 256, NaiveMatMul) })
	b.Run("serial", func(b *testing.B) { benchGemm(b, 256, serial.MatMul) })
	b.Run("workers4", func(b *testing.B) { benchGemm(b, 256, par.MatMul) })
}

// baselineEntry is one measured kernel configuration in BENCH_kernels.json.
type baselineEntry struct {
	Kernel  string  `json:"kernel"`
	Variant string  `json:"variant"`
	Size    int     `json:"size"`
	NsPerOp int64   `json:"ns_per_op"`
	GFLOPs  float64 `json:"gflops"`
}

// TestWriteKernelBaseline measures the kernel suite and writes the
// machine-readable baseline subsequent PRs regress against. It only runs
// when -bench-json names an output file (wired by `make bench-kernels`).
func TestWriteKernelBaseline(t *testing.T) {
	if *benchJSON == "" {
		t.Skip("no -bench-json target; run via make bench-kernels")
	}
	serial := NewPool(KernelConfig{Workers: 1})
	defer serial.Close()
	par := NewPool(KernelConfig{Workers: 4})
	defer par.Close()

	type kernelSet struct {
		name                 string
		naive, tiled, pooled func(dst, a, b *Matrix)
	}
	sets := []kernelSet{
		{"MatMul", NaiveMatMul, serial.MatMul, par.MatMul},
		{"MatMulBT", NaiveMatMulBT, serial.MatMulBT, par.MatMulBT},
		{"MatMulAT", NaiveMatMulAT, serial.MatMulAT, par.MatMulAT},
	}
	var entries []baselineEntry
	measure := func(kernel, variant string, size int, f func(dst, a, b *Matrix)) int64 {
		r := testing.Benchmark(func(b *testing.B) { benchGemm(b, size, f) })
		ns := r.NsPerOp()
		flops := 2 * float64(size) * float64(size) * float64(size)
		entries = append(entries, baselineEntry{
			Kernel: kernel, Variant: variant, Size: size,
			NsPerOp: ns, GFLOPs: flops / float64(ns),
		})
		return ns
	}
	var serial256, workers256 int64
	for _, s := range sets {
		for _, size := range []int{64, 256} {
			measure(s.name, "naive", size, s.naive)
			ns := measure(s.name, "serial", size, s.tiled)
			nw := measure(s.name, "workers4", size, s.pooled)
			if s.name == "MatMul" && size == 256 {
				serial256, workers256 = ns, nw
			}
		}
	}
	out := struct {
		Note    string          `json:"note"`
		Go      string          `json:"go"`
		Arch    string          `json:"arch"`
		Cores   int             `json:"cores"`
		Entries []baselineEntry `json:"entries"`
		// SpeedupWorkers4 is serial/workers4 time on the 256³ MatMul — the
		// ≥3× acceptance ratio, meaningful only when cores >= 4.
		SpeedupWorkers4 float64 `json:"speedup_workers4_matmul256"`
	}{
		Note:            "kernel perf baseline; regenerate with `make bench-kernels`",
		Go:              runtime.Version(),
		Arch:            runtime.GOARCH,
		Cores:           runtime.NumCPU(),
		Entries:         entries,
		SpeedupWorkers4: float64(serial256) / float64(workers256),
	}
	f, err := os.Create(*benchJSON)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d cores, speedup(4w, 256³)=%.2fx)", *benchJSON, out.Cores, out.SpeedupWorkers4)
}
