package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// KernelConfig sizes the GEMM kernels: how many workers cooperate on one
// multiplication and how the loops are tiled. The zero value of any field
// selects the default. Tile sizes never affect results (accumulation order
// per destination element is fixed); they only affect speed.
type KernelConfig struct {
	// Workers is the total number of participants in one GEMM, including
	// the calling goroutine. <= 0 means GOMAXPROCS.
	Workers int
	// TileM is the number of destination rows per work unit handed to a
	// worker. <= 0 means 32.
	TileM int
	// TileN is the destination-column tile of the MM variant. <= 0 means 256.
	TileN int
	// TileK is the reduction-dimension tile of the MM variant. <= 0 means 256.
	TileK int
}

const (
	defaultTileM = 32
	defaultTileN = 256
	defaultTileK = 256

	// parallelFLOPCutoff is the GEMM cost below which fan-out costs more
	// than it saves and the calling goroutine runs the kernel alone.
	parallelFLOPCutoff = 1 << 18
)

// NormalizeKernelConfig resolves zero fields to their concrete defaults —
// the form Configure stores and CurrentConfig reports.
func NormalizeKernelConfig(c KernelConfig) KernelConfig { return c.withDefaults() }

// withDefaults resolves zero fields to concrete values.
func (c KernelConfig) withDefaults() KernelConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.TileM <= 0 {
		c.TileM = defaultTileM
	}
	if c.TileN <= 0 {
		c.TileN = defaultTileN
	}
	if c.TileK <= 0 {
		c.TileK = defaultTileK
	}
	return c
}

// Pool is a persistent set of kernel workers shared by every GEMM call
// routed through it. Workers claim destination row tiles from an atomic
// cursor; each tile is owned by exactly one worker, so no two goroutines
// ever write the same output element and results are bitwise identical to
// serial execution.
type Pool struct {
	cfg  KernelConfig
	jobs chan *gemmJob
}

// gemmJob is one multiplication being processed cooperatively. Jobs are
// recycled through a sync.Pool so steady-state dispatch allocates nothing.
type gemmJob struct {
	kind       gemmKind
	dst, a, b  *Matrix
	rows, tile int
	cfg        KernelConfig
	cursor     atomic.Int64
	wg         sync.WaitGroup
}

var jobPool = sync.Pool{New: func() any { return new(gemmJob) }}

// NewPool starts a worker pool. cfg.Workers counts the caller as a
// participant, so Workers-1 goroutines are spawned; a Workers <= 1 pool
// spawns none and runs every kernel on the calling goroutine. Close the
// pool to stop the workers.
func NewPool(cfg KernelConfig) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{cfg: cfg, jobs: make(chan *gemmJob, 8*cfg.Workers)}
	for i := 0; i < cfg.Workers-1; i++ {
		spawnKernelWorker(p)
	}
	return p
}

// spawnKernelWorker is the package's only goroutine spawn site (allowlisted
// for the gospawn lint rule; tensor cannot route through pipeline.spawn
// without an import cycle).
func spawnKernelWorker(p *Pool) {
	go p.worker()
}

// Close stops the pool's workers. It must not race with in-flight kernels
// on the same pool.
func (p *Pool) Close() { close(p.jobs) }

// Config reports the pool's resolved configuration.
func (p *Pool) Config() KernelConfig { return p.cfg }

func (p *Pool) worker() {
	for j := range p.jobs {
		j.work()
		j.wg.Done()
	}
}

// work claims row tiles until the cursor is exhausted.
func (j *gemmJob) work() {
	for {
		t := int(j.cursor.Add(1)) - 1
		i0 := t * j.tile
		if i0 >= j.rows {
			return
		}
		gemmRange(j.kind, j.dst, j.a, j.b, i0, min(i0+j.tile, j.rows), j.cfg)
	}
}

// run executes one GEMM on the pool, with the calling goroutine working
// alongside the pool's goroutines. All handed-out job pointers are consumed
// before wg.Wait returns, so recycling the job afterwards is safe.
func (p *Pool) run(kind gemmKind, dst, a, b *Matrix, rows int) {
	j := jobPool.Get().(*gemmJob)
	j.kind, j.dst, j.a, j.b = kind, dst, a, b
	j.rows, j.tile, j.cfg = rows, p.cfg.TileM, p.cfg
	j.cursor.Store(0)
	helpers := p.cfg.Workers - 1
	j.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		p.jobs <- j
	}
	j.work()
	j.wg.Wait()
	j.dst, j.a, j.b = nil, nil, nil
	jobPool.Put(j)
}

// MatMul runs dst += a·b on this pool (see the package-level MatMul).
func (p *Pool) MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	p.gemm(kindMM, dst, a, b, dst.Rows, 2*int64(a.Rows)*int64(a.Cols)*int64(b.Cols))
}

// MatMulBT runs dst += a·bᵀ on this pool.
func (p *Pool) MatMulBT(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulBT shape mismatch (%dx%d)·(%dx%d)T->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	p.gemm(kindBT, dst, a, b, dst.Rows, 2*int64(a.Rows)*int64(a.Cols)*int64(b.Rows))
}

// MatMulAT runs dst += aᵀ·b on this pool.
func (p *Pool) MatMulAT(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulAT shape mismatch (%dx%d)T·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	p.gemm(kindAT, dst, a, b, dst.Rows, 2*int64(a.Rows)*int64(a.Cols)*int64(b.Cols))
}

// gemm picks serial or pooled execution. Small multiplications (or ones
// with fewer row tiles than workers could share) stay on the caller.
func (p *Pool) gemm(kind gemmKind, dst, a, b *Matrix, rows int, flops int64) {
	if p.cfg.Workers < 2 || flops < parallelFLOPCutoff || rows < 2*p.cfg.TileM {
		gemmRange(kind, dst, a, b, 0, rows, p.cfg)
		return
	}
	p.run(kind, dst, a, b, rows)
}

// defaultPool is the pool the package-level MatMul variants use. It is
// created lazily on first use (sized by GOMAXPROCS) and replaced by
// Configure.
var defaultPool atomic.Pointer[Pool]

// Configure replaces the shared kernel pool used by the package-level GEMM
// functions. It is meant for process startup (flag parsing, facade options)
// and must not race with in-flight kernels; the previous pool's workers are
// stopped. Returns the resolved configuration.
func Configure(cfg KernelConfig) KernelConfig {
	p := NewPool(cfg)
	if old := defaultPool.Swap(p); old != nil {
		old.Close()
	}
	return p.cfg
}

// CurrentConfig reports the configuration of the shared kernel pool,
// creating it with defaults if it does not exist yet.
func CurrentConfig() KernelConfig { return sharedPool().cfg }

// sharedPool returns the process-wide kernel pool, building it on first use.
//
//mepipe:coldalloc one-time lazy pool construction; every later call is an atomic load
func sharedPool() *Pool {
	for {
		if p := defaultPool.Load(); p != nil {
			return p
		}
		p := NewPool(KernelConfig{})
		if defaultPool.CompareAndSwap(nil, p) {
			return p
		}
		p.Close()
	}
}

func dispatch(kind gemmKind, dst, a, b *Matrix, rows int, flops int64) {
	sharedPool().gemm(kind, dst, a, b, rows, flops)
}
