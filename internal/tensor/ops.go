package tensor

import (
	"math"
	"math/rand"
)

// RandInit fills m with small uniform values in [−scale, scale) from rng —
// deterministic given the seed, which the equivalence tests rely on.
func (m *Matrix) RandInit(rng *rand.Rand, scale float32) {
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * scale
	}
}

// SiLU applies x·sigmoid(x) element-wise into dst.
func SiLU(dst, x *Matrix) {
	for i, v := range x.Data {
		dst.Data[i] = v * sigmoid(v)
	}
}

// SiLUBackward computes dx += dy ⊙ silu'(x).
func SiLUBackward(dx, dy, x *Matrix) {
	for i, v := range x.Data {
		s := sigmoid(v)
		dx.Data[i] += dy.Data[i] * (s + v*s*(1-s))
	}
}

func sigmoid(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}

// newVec allocates a fresh float32 slice for callers that did not supply a
// reusable buffer.
//
//mepipe:coldalloc fallback for callers without scratch storage; hot paths pass a reused buffer instead
func newVec(n int) []float32 { return make([]float32, n) }

// Mul computes dst = a ⊙ b element-wise.
func Mul(dst, a, b *Matrix) {
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// MulAdd computes dst += a ⊙ b element-wise.
func MulAdd(dst, a, b *Matrix) {
	for i := range dst.Data {
		dst.Data[i] += a.Data[i] * b.Data[i]
	}
}

// RMSNorm normalises each row of x by its root-mean-square and scales by g
// (a 1×Cols vector), writing into dst. It returns the per-row inverse RMS
// needed by the backward pass, written into inv when the caller provides a
// buffer of length x.Rows (so hot paths can reuse scratch storage) and into
// a fresh slice when inv is nil.
func RMSNorm(dst, x *Matrix, g, inv []float32) []float32 {
	if inv == nil {
		inv = newVec(x.Rows)
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var ss float64
		for _, v := range row {
			ss += float64(v) * float64(v)
		}
		r := float32(1 / math.Sqrt(ss/float64(len(row))+1e-6))
		inv[i] = r
		drow := dst.Row(i)
		for j, v := range row {
			drow[j] = v * r * g[j]
		}
	}
	return inv
}

// RMSNormBackward accumulates dx and dg for y = g ⊙ x·invRMS.
func RMSNormBackward(dx *Matrix, dg []float32, dy, x *Matrix, g []float32, inv []float32) {
	n := float32(x.Cols)
	for i := 0; i < x.Rows; i++ {
		xr, dyr, dxr := x.Row(i), dy.Row(i), dx.Row(i)
		r := inv[i]
		// dg_j += dy_j * x_j * r
		var dot float64 // Σ dy_j g_j x_j
		for j := range xr {
			dg[j] += dyr[j] * xr[j] * r
			dot += float64(dyr[j]) * float64(g[j]) * float64(xr[j])
		}
		c := float32(dot) * r * r * r / n
		for j := range xr {
			dxr[j] += dyr[j]*g[j]*r - c*xr[j]
		}
	}
}

// SoftmaxRowsCausal applies a causal-masked softmax to each row of scores:
// row q may attend to columns 0..offset+q (absolute positions), where offset
// is the absolute position of the slice's first query. Masked entries are
// zeroed. The computation is done in place.
func SoftmaxRowsCausal(scores *Matrix, offset int) {
	for q := 0; q < scores.Rows; q++ {
		row := scores.Row(q)
		limit := offset + q + 1
		if limit > len(row) {
			limit = len(row)
		}
		maxv := float32(math.Inf(-1))
		for j := 0; j < limit; j++ {
			if row[j] > maxv {
				maxv = row[j]
			}
		}
		var sum float64
		for j := 0; j < limit; j++ {
			e := float32(math.Exp(float64(row[j] - maxv)))
			row[j] = e
			sum += float64(e)
		}
		invSum := float32(1 / sum)
		for j := 0; j < limit; j++ {
			row[j] *= invSum
		}
		for j := limit; j < len(row); j++ {
			row[j] = 0
		}
	}
}

// SoftmaxBackwardCausal computes dScores (in place over dProbs) given the
// probabilities from SoftmaxRowsCausal: ds = p ⊙ (dp − Σ dp·p), respecting
// the same causal mask.
func SoftmaxBackwardCausal(dProbs, probs *Matrix, offset int) {
	for q := 0; q < dProbs.Rows; q++ {
		dp, p := dProbs.Row(q), probs.Row(q)
		limit := offset + q + 1
		if limit > len(dp) {
			limit = len(dp)
		}
		var dot float64
		for j := 0; j < limit; j++ {
			dot += float64(dp[j]) * float64(p[j])
		}
		for j := 0; j < limit; j++ {
			dp[j] = p[j] * (dp[j] - float32(dot))
		}
		for j := limit; j < len(dp); j++ {
			dp[j] = 0
		}
	}
}

// CrossEntropy computes the mean cross-entropy loss of logits [T×V] against
// targets, and writes dLogits (softmax − onehot)/T into dst. Rows with
// target < 0 are ignored.
func CrossEntropy(dst, logits *Matrix, targets []int) float64 {
	var loss float64
	count := 0
	for _, t := range targets {
		if t >= 0 {
			count++
		}
	}
	if count == 0 {
		dst.Zero()
		return 0
	}
	invCount := float32(1.0 / float64(count))
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		drow := dst.Row(i)
		if targets[i] < 0 {
			for j := range drow {
				drow[j] = 0
			}
			continue
		}
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum)
		loss += logSum - float64(row[targets[i]]-maxv)
		for j, v := range row {
			p := float32(math.Exp(float64(v-maxv)) / sum)
			drow[j] = p * invCount
		}
		drow[targets[i]] -= invCount
	}
	return loss / float64(count)
}
