// Package tensor provides the minimal dense float32 kernels the executable
// runtime needs: blocked matrix multiplication in the three transpose
// variants used by forward passes, activation-gradient passes, and
// weight-gradient passes, plus element-wise helpers. It is deliberately
// simple — correctness and determinism over speed — because the runtime's
// job is to prove schedule equivalence, not to race BLAS.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set writes element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears the matrix in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CopyFrom copies src into m (shapes must match).
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: copy shape mismatch %dx%d <- %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Add accumulates src into m element-wise.
func (m *Matrix) Add(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: add shape mismatch %dx%d += %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i, v := range src.Data {
		m.Data[i] += v
	}
}

// Scale multiplies every element by a.
func (m *Matrix) Scale(a float32) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// MaxAbsDiff returns the largest absolute element-wise difference.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	max := 0.0
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > max {
			max = d
		}
	}
	return max
}

const blk = 32

// MatMul computes dst += a·b with a [m×k], b [k×n], dst [m×n], using simple
// cache blocking. dst is accumulated so gradient sums compose naturally;
// call dst.Zero() first for a plain product.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	for i0 := 0; i0 < m; i0 += blk {
		i1 := min(i0+blk, m)
		for k0 := 0; k0 < k; k0 += blk {
			k1 := min(k0+blk, k)
			for i := i0; i < i1; i++ {
				ar := a.Data[i*k : (i+1)*k]
				dr := dst.Data[i*n : (i+1)*n]
				for kk := k0; kk < k1; kk++ {
					av := ar[kk]
					if av == 0 {
						continue
					}
					br := b.Data[kk*n : (kk+1)*n]
					for j, bv := range br {
						dr[j] += av * bv
					}
				}
			}
		}
	}
}

// MatMulBT computes dst += a·bᵀ with a [m×k], b [n×k], dst [m×n] — the shape
// of activation-gradient GEMMs (dX = dY·Wᵀ) and attention scores (Q·Kᵀ).
func MatMulBT(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulBT shape mismatch (%dx%d)·(%dx%d)T->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	m, k, n := a.Rows, a.Cols, b.Rows
	for i := 0; i < m; i++ {
		ar := a.Data[i*k : (i+1)*k]
		dr := dst.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			br := b.Data[j*k : (j+1)*k]
			var s float32
			for kk, av := range ar {
				s += av * br[kk]
			}
			dr[j] += s
		}
	}
}

// MatMulAT computes dst += aᵀ·b with a [k×m], b [k×n], dst [m×n] — the shape
// of weight-gradient GEMMs (dW = Xᵀ·dY) and attention value gathers.
func MatMulAT(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulAT shape mismatch (%dx%d)T·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	k, m, n := a.Rows, a.Cols, b.Cols
	for kk := 0; kk < k; kk++ {
		ar := a.Data[kk*m : (kk+1)*m]
		br := b.Data[kk*n : (kk+1)*n]
		for i, av := range ar {
			if av == 0 {
				continue
			}
			dr := dst.Data[i*n : (i+1)*n]
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
