// Package tensor provides the dense float32 kernels the executable runtime
// needs: cache-tiled matrix multiplication in the three transpose variants
// used by forward passes, activation-gradient passes, and weight-gradient
// passes (optionally parallelised over a persistent worker pool — see
// pool.go), plus element-wise helpers and a scratch arena for
// allocation-free training steps (scratch.go). Parallel execution partitions
// work by row-tile ownership, so results are bitwise identical to serial
// execution — the property the sim-vs-runtime equivalence tests rely on.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// NewWithRowCap returns a zeroed rows×cols matrix whose backing array can
// hold rowCap rows, so AppendRows can grow it in place without reallocating.
func NewWithRowCap(rows, cols, rowCap int) *Matrix {
	if rows < 0 || cols < 0 || rowCap < rows {
		panic(fmt.Sprintf("tensor: bad capacity shape %dx%d cap %d rows", rows, cols, rowCap))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols, rowCap*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set writes element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears the matrix in place.
func (m *Matrix) Zero() {
	clear(m.Data)
}

// CopyFrom copies src into m (shapes must match).
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: copy shape mismatch (%dx%d)<-(%dx%d)", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Add accumulates src into m element-wise.
func (m *Matrix) Add(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: add shape mismatch (%dx%d)+=(%dx%d)", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i, v := range src.Data {
		m.Data[i] += v
	}
}

// AppendRows appends src's rows to m in place, growing the backing array
// geometrically when capacity runs out. Matrices built with NewWithRowCap
// (or checked out of a Scratch, whose buffers are power-of-two sized) append
// without allocating once warm.
func (m *Matrix) AppendRows(src *Matrix) {
	if m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: append shape mismatch (%dx%d)<<(%dx%d)", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	used := m.Rows * m.Cols
	need := used + src.Rows*src.Cols
	if cap(m.Data) < need {
		growData(m, used, need)
	} else {
		m.Data = m.Data[:need]
	}
	copy(m.Data[used:], src.Data[:src.Rows*src.Cols])
	m.Rows += src.Rows
}

// growData reallocates m's backing array to at least need elements,
// preserving the first used.
//
//mepipe:coldalloc geometric growth; warm KV caches and scratch matrices are pre-sized, so steady state never enters
func growData(m *Matrix, used, need int) {
	grown := make([]float32, need, max(need, 2*cap(m.Data)))
	copy(grown, m.Data[:used])
	m.Data = grown
}

// Scale multiplies every element by a.
func (m *Matrix) Scale(a float32) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// MaxAbsDiff returns the largest absolute element-wise difference.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	maxd := 0.0
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}
