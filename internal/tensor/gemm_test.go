package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// gemmCase builds operands of one logical m×k·k×n product for each variant.
type gemmCase struct {
	name string
	run  func(dst, a, b *Matrix) // kernel under test (shared pool)
	ref  func(dst, a, b *Matrix) // naive oracle
	pool func(p *Pool, dst, a, b *Matrix)
	// shape maps (m, k, n) to the (a, b) operand shapes of this variant.
	shape func(m, k, n int) (ar, ac, br, bc int)
	out   func(m, k, n int) (dr, dc int)
}

func gemmCases() []gemmCase {
	return []gemmCase{
		{
			name: "MatMul",
			run:  MatMul, ref: NaiveMatMul,
			pool:  func(p *Pool, d, a, b *Matrix) { p.MatMul(d, a, b) },
			shape: func(m, k, n int) (int, int, int, int) { return m, k, k, n },
			out:   func(m, k, n int) (int, int) { return m, n },
		},
		{
			name: "MatMulBT",
			run:  MatMulBT, ref: NaiveMatMulBT,
			pool:  func(p *Pool, d, a, b *Matrix) { p.MatMulBT(d, a, b) },
			shape: func(m, k, n int) (int, int, int, int) { return m, k, n, k },
			out:   func(m, k, n int) (int, int) { return m, n },
		},
		{
			name: "MatMulAT",
			run:  MatMulAT, ref: NaiveMatMulAT,
			pool:  func(p *Pool, d, a, b *Matrix) { p.MatMulAT(d, a, b) },
			shape: func(m, k, n int) (int, int, int, int) { return k, m, k, n },
			out:   func(m, k, n int) (int, int) { return m, n },
		},
	}
}

// TestGemmEdgeShapes runs every variant over shapes that stress tile
// boundaries: non-divisible dims, single rows/columns, and k == 1.
func TestGemmEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	shapes := [][3]int{
		{1, 1, 1}, {1, 7, 1}, {1, 5, 9}, {9, 5, 1}, // 1×N and N×1
		{31, 33, 35}, {33, 31, 37}, // straddle the default 32-row tile
		{65, 3, 129}, {2, 1, 2},
		{64, 64, 64}, {100, 100, 100}, // divisible and not
	}
	for _, c := range gemmCases() {
		for _, sz := range shapes {
			m, k, n := sz[0], sz[1], sz[2]
			ar, ac, br, bc := c.shape(m, k, n)
			a, b := randMat(rng, ar, ac), randMat(rng, br, bc)
			dr, dc := c.out(m, k, n)
			want := New(dr, dc)
			c.ref(want, a, b)
			got := New(dr, dc)
			c.run(got, a, b)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%s %v: element %d: got %v want %v (not bitwise identical)",
						c.name, sz, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestGemmBitwiseSerialVsParallel: the same multiplication through a
// 1-worker pool, an 8-worker pool, odd tile sizes, and the naive reference
// must be bitwise identical — the determinism contract of the kernels.
func TestGemmBitwiseSerialVsParallel(t *testing.T) {
	serial := NewPool(KernelConfig{Workers: 1})
	defer serial.Close()
	// TileM 5 forces uneven tile ownership; tiny tiles exercise the loop
	// tails. The FLOP cutoff is bypassed by sizing the product above it.
	wide := NewPool(KernelConfig{Workers: 8, TileM: 5, TileN: 19, TileK: 23})
	defer wide.Close()

	rng := rand.New(rand.NewSource(42))
	for _, c := range gemmCases() {
		for trial := 0; trial < 4; trial++ {
			m := rng.Intn(90) + 40
			k := rng.Intn(90) + 40
			n := rng.Intn(90) + 40
			ar, ac, br, bc := c.shape(m, k, n)
			a, b := randMat(rng, ar, ac), randMat(rng, br, bc)
			dr, dc := c.out(m, k, n)

			want := New(dr, dc)
			c.ref(want, a, b)
			one := New(dr, dc)
			c.pool(serial, one, a, b)
			eight := New(dr, dc)
			c.pool(wide, eight, a, b)
			for i := range want.Data {
				if one.Data[i] != want.Data[i] || eight.Data[i] != want.Data[i] {
					t.Fatalf("%s %dx%dx%d trial %d: element %d diverges: naive %v serial %v parallel %v",
						c.name, m, k, n, trial, i, want.Data[i], one.Data[i], eight.Data[i])
				}
			}
		}
	}
}

// TestShapePanicMessages pins the exact panic text of every shape check, so
// error output stays stable for operators grepping logs.
func TestShapePanicMessages(t *testing.T) {
	cases := []struct {
		name string
		f    func()
		want string
	}{
		{"matmul", func() { MatMul(New(2, 2), New(2, 3), New(4, 2)) },
			"tensor: matmul shape mismatch (2x3)·(4x2)->(2x2)"},
		{"matmulBT", func() { MatMulBT(New(2, 2), New(2, 3), New(2, 4)) },
			"tensor: matmulBT shape mismatch (2x3)·(2x4)T->(2x2)"},
		{"matmulAT", func() { MatMulAT(New(2, 2), New(3, 2), New(2, 2)) },
			"tensor: matmulAT shape mismatch (3x2)T·(2x2)->(2x2)"},
		{"copy", func() { New(1, 2).CopyFrom(New(2, 1)) },
			"tensor: copy shape mismatch (1x2)<-(2x1)"},
		{"add", func() { New(1, 2).Add(New(2, 1)) },
			"tensor: add shape mismatch (1x2)+=(2x1)"},
		{"append", func() { New(1, 2).AppendRows(New(2, 3)) },
			"tensor: append shape mismatch (1x2)<<(2x3)"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				p := recover()
				if p == nil {
					t.Fatal("no panic")
				}
				if got := fmt.Sprint(p); got != c.want {
					t.Fatalf("panic message:\n got %q\nwant %q", got, c.want)
				}
			}()
			c.f()
		})
	}
}

// TestConfigureSharedPool: replacing the shared pool keeps the package-level
// kernels correct and CurrentConfig in sync.
func TestConfigureSharedPool(t *testing.T) {
	old := CurrentConfig()
	defer Configure(old)
	got := Configure(KernelConfig{Workers: 3, TileM: 7})
	if got.Workers != 3 || got.TileM != 7 {
		t.Fatalf("Configure did not apply: %+v", got)
	}
	if CurrentConfig() != got {
		t.Fatalf("CurrentConfig %+v != configured %+v", CurrentConfig(), got)
	}
	rng := rand.New(rand.NewSource(43))
	a, b := randMat(rng, 70, 70), randMat(rng, 70, 70)
	want := New(70, 70)
	NaiveMatMul(want, a, b)
	gotM := New(70, 70)
	MatMul(gotM, a, b)
	if d := MaxAbsDiff(want, gotM); d != 0 {
		t.Fatalf("configured pool diverges from naive by %g", d)
	}
}
