package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	m.RandInit(rng, 1)
	return m
}

// naiveMul is the reference implementation.
func naiveMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			out.Set(i, j, float32(s))
		}
	}
	return out
}

func transpose(a *Matrix) *Matrix {
	out := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Set(j, i, a.At(i, j))
		}
	}
	return out
}

func TestMatMulVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sz := range [][3]int{{1, 1, 1}, {3, 5, 7}, {33, 17, 65}, {64, 64, 64}} {
		m, k, n := sz[0], sz[1], sz[2]
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		want := naiveMul(a, b)

		got := New(m, n)
		MatMul(got, a, b)
		if d := MaxAbsDiff(got, want); d > 1e-4 {
			t.Fatalf("MatMul %v: max diff %g", sz, d)
		}
		got.Zero()
		MatMulBT(got, a, transpose(b))
		if d := MaxAbsDiff(got, want); d > 1e-4 {
			t.Fatalf("MatMulBT %v: max diff %g", sz, d)
		}
		got.Zero()
		MatMulAT(got, transpose(a), b)
		if d := MaxAbsDiff(got, want); d > 1e-4 {
			t.Fatalf("MatMulAT %v: max diff %g", sz, d)
		}
	}
}

func TestMatMulAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randMat(rng, 4, 4), randMat(rng, 4, 4)
	out := New(4, 4)
	MatMul(out, a, b)
	MatMul(out, a, b)
	want := naiveMul(a, b)
	want.Scale(2)
	if d := MaxAbsDiff(out, want); d > 1e-4 {
		t.Fatalf("accumulation broken: diff %g", d)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(4, 2))
}

func TestSoftmaxCausal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randMat(rng, 4, 10) // 4 queries at absolute offset 3, 10 keys
	SoftmaxRowsCausal(s, 3)
	for q := 0; q < 4; q++ {
		var sum float64
		for j, v := range s.Row(q) {
			if j > 3+q {
				if v != 0 {
					t.Fatalf("q=%d: future position %d unmasked (%v)", q, j, v)
				}
				continue
			}
			if v < 0 || v > 1 {
				t.Fatalf("q=%d: probability %v out of range", q, v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("q=%d: probabilities sum to %v", q, sum)
		}
	}
}

// TestSoftmaxBackwardNumeric checks the softmax gradient against finite
// differences through a scalar objective Σ w·p.
func TestSoftmaxBackwardNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const rows, cols, offset = 2, 6, 1
	logits := randMat(rng, rows, cols)
	w := randMat(rng, rows, cols)

	obj := func(l *Matrix) float64 {
		p := l.Clone()
		SoftmaxRowsCausal(p, offset)
		var s float64
		for i := range p.Data {
			s += float64(p.Data[i]) * float64(w.Data[i])
		}
		return s
	}
	probs := logits.Clone()
	SoftmaxRowsCausal(probs, offset)
	grad := w.Clone()
	SoftmaxBackwardCausal(grad, probs, offset)

	const eps = 1e-3
	for idx := 0; idx < rows*cols; idx++ {
		q, j := idx/cols, idx%cols
		if j > offset+q {
			continue
		}
		plus := logits.Clone()
		plus.Data[idx] += eps
		minus := logits.Clone()
		minus.Data[idx] -= eps
		num := (obj(plus) - obj(minus)) / (2 * eps)
		if diff := math.Abs(num - float64(grad.Data[idx])); diff > 2e-3 {
			t.Fatalf("softmax grad[%d,%d]: numeric %g vs analytic %g", q, j, num, grad.Data[idx])
		}
	}
}

// TestRMSNormBackwardNumeric checks the RMSNorm gradient numerically.
func TestRMSNormBackwardNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const rows, cols = 3, 8
	x := randMat(rng, rows, cols)
	g := make([]float32, cols)
	for i := range g {
		g[i] = rng.Float32() + 0.5
	}
	w := randMat(rng, rows, cols)
	obj := func(x *Matrix, g []float32) float64 {
		y := New(rows, cols)
		RMSNorm(y, x, g, nil)
		var s float64
		for i := range y.Data {
			s += float64(y.Data[i]) * float64(w.Data[i])
		}
		return s
	}
	y := New(rows, cols)
	inv := RMSNorm(y, x, g, make([]float32, rows))
	dx := New(rows, cols)
	dg := make([]float32, cols)
	RMSNormBackward(dx, dg, w, x, g, inv)

	const eps = 1e-3
	for idx := 0; idx < rows*cols; idx++ {
		plus := x.Clone()
		plus.Data[idx] += eps
		minus := x.Clone()
		minus.Data[idx] -= eps
		num := (obj(plus, g) - obj(minus, g)) / (2 * eps)
		if diff := math.Abs(num - float64(dx.Data[idx])); diff > 5e-3 {
			t.Fatalf("rmsnorm dx[%d]: numeric %g vs analytic %g", idx, num, dx.Data[idx])
		}
	}
	for j := 0; j < cols; j++ {
		gp := append([]float32(nil), g...)
		gm := append([]float32(nil), g...)
		gp[j] += eps
		gm[j] -= eps
		num := (obj(x, gp) - obj(x, gm)) / (2 * eps)
		if diff := math.Abs(num - float64(dg[j])); diff > 5e-3 {
			t.Fatalf("rmsnorm dg[%d]: numeric %g vs analytic %g", j, num, dg[j])
		}
	}
}

// TestSiLUBackwardNumeric checks the SiLU derivative numerically.
func TestSiLUBackwardNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randMat(rng, 2, 5)
	dy := randMat(rng, 2, 5)
	dx := New(2, 5)
	SiLUBackward(dx, dy, x)
	const eps = 1e-3
	for i := range x.Data {
		f := func(v float32) float64 {
			return float64(v * sigmoid(v))
		}
		num := (f(x.Data[i]+eps) - f(x.Data[i]-eps)) / (2 * eps) * float64(dy.Data[i])
		if math.Abs(num-float64(dx.Data[i])) > 2e-3 {
			t.Fatalf("silu grad[%d]: numeric %g vs analytic %g", i, num, dx.Data[i])
		}
	}
}

// TestCrossEntropyGradNumeric validates dLogits against finite differences.
func TestCrossEntropyGradNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	logits := randMat(rng, 3, 6)
	targets := []int{2, 5, -1} // last row masked
	grad := New(3, 6)
	CrossEntropy(grad, logits, targets)
	const eps = 1e-3
	for i := range logits.Data {
		plus := logits.Clone()
		plus.Data[i] += eps
		minus := logits.Clone()
		minus.Data[i] -= eps
		scratch := New(3, 6)
		num := (CrossEntropy(scratch, plus, targets) - CrossEntropy(scratch, minus, targets)) / (2 * eps)
		if math.Abs(num-float64(grad.Data[i])) > 2e-3 {
			t.Fatalf("CE grad[%d]: numeric %g vs analytic %g", i, num, grad.Data[i])
		}
	}
	// Masked rows contribute nothing.
	for j := 0; j < 6; j++ {
		if grad.At(2, j) != 0 {
			t.Fatal("masked row has gradient")
		}
	}
}

// TestTransposeProperty: (A·B)ᵀ == Bᵀ·Aᵀ under the kernels.
func TestTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := r.Intn(12)+1, r.Intn(12)+1, r.Intn(12)+1
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		ab := New(m, n)
		MatMul(ab, a, b)
		btat := New(n, m)
		MatMul(btat, transpose(b), transpose(a))
		return MaxAbsDiff(transpose(ab), btat) < 1e-4
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHelpers(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("At/Set broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone aliases storage")
	}
	m2 := New(2, 3)
	m2.CopyFrom(m)
	m2.Add(m)
	if m2.At(1, 2) != 10 {
		t.Fatal("Add broken")
	}
	m2.Scale(0.5)
	if m2.At(1, 2) != 5 {
		t.Fatal("Scale broken")
	}
	m2.Zero()
	if m2.At(1, 2) != 0 {
		t.Fatal("Zero broken")
	}
	if !math.IsInf(MaxAbsDiff(New(1, 2), New(2, 1)), 1) {
		t.Fatal("MaxAbsDiff shape mismatch should be +Inf")
	}
}
