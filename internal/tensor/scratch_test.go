package tensor

import "testing"

func TestScratchReuse(t *testing.T) {
	s := NewScratch()
	m := s.Get(8, 8)
	if m.Rows != 8 || m.Cols != 8 {
		t.Fatalf("Get shape %dx%d", m.Rows, m.Cols)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Get returned a dirty buffer")
		}
	}
	m.Data[0] = 7
	s.Put(m)
	m2 := s.GetRaw(4, 16) // same 64-element class, different shape
	if &m2.Data[0] != &m.Data[0] {
		t.Fatal("same-class Get after Put did not reuse the buffer")
	}
	if m2.Rows != 4 || m2.Cols != 16 {
		t.Fatalf("reused buffer shape %dx%d", m2.Rows, m2.Cols)
	}
	st := s.Stats()
	if st.Gets != 2 || st.Hits != 1 {
		t.Fatalf("stats %+v, want 2 gets 1 hit", st)
	}
}

func TestScratchClasses(t *testing.T) {
	if c := classFor(1); c != 0 {
		t.Fatalf("classFor(1) = %d", c)
	}
	if c := classFor(65); c != 7 {
		t.Fatalf("classFor(65) = %d", c)
	}
	if c := classOf(64); c != 6 {
		t.Fatalf("classOf(64) = %d", c)
	}
	// Foreign non-pow2 buffers (e.g. wire frames) bin at the floor class so
	// reuse never hands out a buffer too small for its class.
	if c := classOf(100); c != 6 {
		t.Fatalf("classOf(100) = %d", c)
	}
	s := NewScratch()
	s.Put(&Matrix{Rows: 10, Cols: 10, Data: make([]float32, 100)})
	m := s.GetRaw(8, 8)
	if cap(m.Data) != 100 {
		t.Fatalf("floor-classed foreign buffer not reused (cap %d)", cap(m.Data))
	}
}

func TestScratchNilSafe(t *testing.T) {
	var s *Scratch
	m := s.Get(3, 5)
	if m.Rows != 3 || m.Cols != 5 || len(m.Data) != 15 {
		t.Fatalf("nil scratch Get: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	s.Put(m)
	v := s.GetVec(9)
	if len(v) != 9 {
		t.Fatalf("nil scratch GetVec len %d", len(v))
	}
	s.PutVec(v)
	if s.Stats() != (ScratchStats{}) {
		t.Fatal("nil scratch stats not zero")
	}
	s.AddFLOPs(5)
	s.MatMul(New(1, 1), New(1, 1), New(1, 1)) // counted wrappers nil-safe too
}

func TestScratchZeroSize(t *testing.T) {
	s := NewScratch()
	m := s.GetRaw(0, 8)
	if m.Rows != 0 || m.Cols != 8 || len(m.Data) != 0 {
		t.Fatalf("zero-row Get: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	s.Put(m) // cap 0: dropped, not binned
	s.Put(nil)
}

func TestScratchCountedFLOPs(t *testing.T) {
	s := NewScratch()
	a, b := New(4, 6), New(6, 8)
	s.MatMul(New(4, 8), a, b)
	if got := s.Stats().FLOPs; got != 2*4*6*8 {
		t.Fatalf("counted FLOPs %d, want %d", got, 2*4*6*8)
	}
}

func TestGrabScratchWarm(t *testing.T) {
	s := GrabScratch()
	m := s.Get(16, 16)
	s.Put(m)
	ReleaseScratch(s)
	s2 := GrabScratch()
	defer ReleaseScratch(s2)
	m2 := s2.GetRaw(16, 16)
	if s2 == s && &m2.Data[0] != &m.Data[0] {
		t.Fatal("recycled scratch lost its buffers")
	}
}
