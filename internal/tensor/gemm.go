package tensor

import "fmt"

// The three GEMM variants below are cache-tiled and may run on the shared
// worker pool (pool.go). Parallelism always partitions the destination rows
// into tiles owned by exactly one worker, and within every destination
// element the reduction order over k is strictly ascending with a single
// accumulator — so the result is bitwise identical for any worker count,
// any tile size, and identical to the naive reference kernels kept at the
// bottom of this file.

// gemmKind selects which transpose variant a row range executes.
type gemmKind uint8

const (
	kindMM gemmKind = iota // dst += a·b
	kindBT                 // dst += a·bᵀ
	kindAT                 // dst += aᵀ·b
)

// MatMul computes dst += a·b with a [m×k], b [k×n], dst [m×n]. dst is
// accumulated so gradient sums compose naturally; call dst.Zero() first for
// a plain product.
//
//mepipe:hotpath
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dispatch(kindMM, dst, a, b, dst.Rows, 2*int64(a.Rows)*int64(a.Cols)*int64(b.Cols))
}

// MatMulBT computes dst += a·bᵀ with a [m×k], b [n×k], dst [m×n] — the shape
// of activation-gradient GEMMs (dX = dY·Wᵀ) and attention scores (Q·Kᵀ).
//
//mepipe:hotpath
func MatMulBT(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulBT shape mismatch (%dx%d)·(%dx%d)T->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dispatch(kindBT, dst, a, b, dst.Rows, 2*int64(a.Rows)*int64(a.Cols)*int64(b.Rows))
}

// MatMulAT computes dst += aᵀ·b with a [k×m], b [k×n], dst [m×n] — the shape
// of weight-gradient GEMMs (dW = Xᵀ·dY) and attention value gathers.
//
//mepipe:hotpath
func MatMulAT(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulAT shape mismatch (%dx%d)T·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dispatch(kindAT, dst, a, b, dst.Rows, 2*int64(a.Rows)*int64(a.Cols)*int64(b.Cols))
}

// gemmRange executes one variant over destination rows [i0, i1) — the unit
// of work a pool worker owns. Serial execution is gemmRange over [0, Rows).
func gemmRange(kind gemmKind, dst, a, b *Matrix, i0, i1 int, cfg KernelConfig) {
	switch kind {
	case kindMM:
		matMulRange(dst, a, b, i0, i1, cfg)
	case kindBT:
		matMulBTRange(dst, a, b, i0, i1)
	case kindAT:
		matMulATRange(dst, a, b, i0, i1)
	}
}

// matMulRange tiles over k (operand reuse) and n (dst-row working set); the
// per-element accumulation order stays ascending in k because k tiles are
// visited in order and each (i, j) is touched once per k step.
func matMulRange(dst, a, b *Matrix, i0, i1 int, cfg KernelConfig) {
	k, n := a.Cols, b.Cols
	for j0 := 0; j0 < n; j0 += cfg.TileN {
		j1 := min(j0+cfg.TileN, n)
		for k0 := 0; k0 < k; k0 += cfg.TileK {
			k1 := min(k0+cfg.TileK, k)
			for i := i0; i < i1; i++ {
				ar := a.Data[i*k : (i+1)*k]
				dr := dst.Data[i*n+j0 : i*n+j1]
				for kk := k0; kk < k1; kk++ {
					av := ar[kk]
					if av == 0 {
						continue
					}
					axpy(dr, b.Data[kk*n+j0:kk*n+j1], av)
				}
			}
		}
	}
}

// axpy computes dr += av·br, 4×-unrolled. Each dr[j] is written by exactly
// one statement, so the unroll does not change accumulation order.
func axpy(dr, br []float32, av float32) {
	dr = dr[:len(br)]
	j := 0
	for ; j+4 <= len(br); j += 4 {
		dr[j] += av * br[j]
		dr[j+1] += av * br[j+1]
		dr[j+2] += av * br[j+2]
		dr[j+3] += av * br[j+3]
	}
	for ; j < len(br); j++ {
		dr[j] += av * br[j]
	}
}

// matMulBTRange processes destination columns in panels of four rows of b,
// streaming each a-row once per panel (the packed-B reuse that makes the
// dot-product variant cache friendly). Each output element is one dot
// product with ascending k, identical to the reference kernel.
func matMulBTRange(dst, a, b *Matrix, i0, i1 int) {
	k, n := a.Cols, b.Rows
	for i := i0; i < i1; i++ {
		ar := a.Data[i*k : (i+1)*k]
		dr := dst.Data[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b.Data[j*k : (j+1)*k]
			b1 := b.Data[(j+1)*k : (j+2)*k]
			b2 := b.Data[(j+2)*k : (j+3)*k]
			b3 := b.Data[(j+3)*k : (j+4)*k]
			var s0, s1, s2, s3 float32
			for kk, av := range ar {
				s0 += av * b0[kk]
				s1 += av * b1[kk]
				s2 += av * b2[kk]
				s3 += av * b3[kk]
			}
			dr[j] += s0
			dr[j+1] += s1
			dr[j+2] += s2
			dr[j+3] += s3
		}
		for ; j < n; j++ {
			br := b.Data[j*k : (j+1)*k]
			var s float32
			for kk, av := range ar {
				s += av * br[kk]
			}
			dr[j] += s
		}
	}
}

// matMulATRange keeps the reference loop order (outer k so a and b stream
// row-wise) but restricted to dst rows [i0, i1); a narrow row range keeps
// the dst tile resident across the k sweep.
func matMulATRange(dst, a, b *Matrix, i0, i1 int) {
	k, m, n := a.Rows, a.Cols, b.Cols
	for kk := 0; kk < k; kk++ {
		ar := a.Data[kk*m : (kk+1)*m]
		br := b.Data[kk*n : (kk+1)*n]
		for i := i0; i < i1; i++ {
			av := ar[i]
			if av == 0 {
				continue
			}
			axpy(dst.Data[i*n:(i+1)*n], br, av)
		}
	}
}

// Naive reference kernels — the pre-tiling implementations, retained as the
// oracle for the bitwise-equality property tests and as the baseline the
// kernel benchmarks measure speedups against. Not used by the runtime.

// NaiveMatMul is the straightforward blocked dst += a·b.
func NaiveMatMul(dst, a, b *Matrix) {
	const blk = 32
	m, k, n := a.Rows, a.Cols, b.Cols
	for i0 := 0; i0 < m; i0 += blk {
		i1 := min(i0+blk, m)
		for k0 := 0; k0 < k; k0 += blk {
			k1 := min(k0+blk, k)
			for i := i0; i < i1; i++ {
				ar := a.Data[i*k : (i+1)*k]
				dr := dst.Data[i*n : (i+1)*n]
				for kk := k0; kk < k1; kk++ {
					av := ar[kk]
					if av == 0 {
						continue
					}
					br := b.Data[kk*n : (kk+1)*n]
					for j, bv := range br {
						dr[j] += av * bv
					}
				}
			}
		}
	}
}

// NaiveMatMulBT is the straightforward per-element dot product dst += a·bᵀ.
func NaiveMatMulBT(dst, a, b *Matrix) {
	m, k, n := a.Rows, a.Cols, b.Rows
	for i := 0; i < m; i++ {
		ar := a.Data[i*k : (i+1)*k]
		dr := dst.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			br := b.Data[j*k : (j+1)*k]
			var s float32
			for kk, av := range ar {
				s += av * br[kk]
			}
			dr[j] += s
		}
	}
}

// NaiveMatMulAT is the straightforward outer-k dst += aᵀ·b.
func NaiveMatMulAT(dst, a, b *Matrix) {
	k, m, n := a.Rows, a.Cols, b.Cols
	for kk := 0; kk < k; kk++ {
		ar := a.Data[kk*m : (kk+1)*m]
		br := b.Data[kk*n : (kk+1)*n]
		for i, av := range ar {
			if av == 0 {
				continue
			}
			dr := dst.Data[i*n : (i+1)*n]
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
}
