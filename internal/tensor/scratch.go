package tensor

import (
	"math/bits"
	"sync"
)

// Scratch is an arena of reusable matrix and vector buffers for one
// goroutine (one pipeline stage, one sequential trainer). Forward and
// backward passes check buffers out with Get/GetRaw/GetVec and return them
// with Put/PutVec at slice boundaries, so steady-state training allocates
// nothing per microbatch.
//
// Buffers are binned by power-of-two capacity class. Ownership of a buffer
// may migrate between scratches (a stage frees an activation its upstream
// stage allocated); to keep producer stages from endlessly allocating while
// consumer stages hoard, each local free list is capped and overflows into
// a global per-class sync.Pool that any scratch refills from.
//
// A nil *Scratch is valid everywhere and falls back to plain allocation
// with no recycling — the pre-arena behaviour.
type Scratch struct {
	mats [numClasses][]*Matrix
	vecs [numClasses][][]float32
	st   ScratchStats
}

// ScratchStats counts arena traffic. AllocBytes is the number of bytes
// freshly allocated through this scratch (cache misses); FLOPs accumulates
// the floating-point work of GEMMs routed through the scratch's counted
// kernel wrappers. Both are deltas the caller can sample per operation.
type ScratchStats struct {
	Gets, Hits int64
	AllocBytes int64
	FLOPs      int64
}

const (
	numClasses = 36
	// localCap bounds each local free list; beyond it buffers spill to the
	// shared per-class pools.
	localCap = 64
)

// globalMats shares surplus buffers across scratches, class-indexed.
var globalMats [numClasses]sync.Pool

// scratchPool recycles whole arenas so GrabScratch after ReleaseScratch
// returns a warm one.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GrabScratch checks a scratch arena out of the shared pool.
func GrabScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// ReleaseScratch returns an arena to the shared pool. s may be nil.
func ReleaseScratch(s *Scratch) {
	if s != nil {
		scratchPool.Put(s)
	}
}

// classFor returns the smallest class c with 1<<c >= n (for Get).
func classFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// classOf returns the largest class c with 1<<c <= capacity (for Put), so
// every buffer filed under class c can serve any Get of up to 1<<c items.
func classOf(capacity int) int {
	return bits.Len(uint(capacity)) - 1
}

// NewScratch returns an empty arena (prefer GrabScratch/ReleaseScratch,
// which recycle warm arenas).
func NewScratch() *Scratch { return new(Scratch) }

// Get checks out a zeroed rows×cols matrix.
func (s *Scratch) Get(rows, cols int) *Matrix {
	m := s.GetRaw(rows, cols)
	clear(m.Data)
	return m
}

// GetRaw checks out a rows×cols matrix with undefined contents. Use only
// when every element is overwritten before being read.
//
//mepipe:coldalloc arena miss; counted in ScratchStats.AllocBytes and amortized away once the size class is warm
func (s *Scratch) GetRaw(rows, cols int) *Matrix {
	if s == nil {
		return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
	}
	n := rows * cols
	if n == 0 {
		return &Matrix{Rows: rows, Cols: cols}
	}
	s.st.Gets++
	c := classFor(n)
	if l := s.mats[c]; len(l) > 0 {
		m := l[len(l)-1]
		l[len(l)-1] = nil
		s.mats[c] = l[:len(l)-1]
		s.st.Hits++
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:cap(m.Data)][:n]
		return m
	}
	if v := globalMats[c].Get(); v != nil {
		m := v.(*Matrix)
		s.st.Hits++
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:cap(m.Data)][:n]
		return m
	}
	sz := 1 << c
	s.st.AllocBytes += int64(sz) * 4
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, sz)[:n]}
}

// Put returns a matrix to the arena. Matrices from any source are accepted
// (they are binned by actual capacity), and nil is a no-op. The caller must
// not use m afterwards.
func (s *Scratch) Put(m *Matrix) {
	if s == nil || m == nil || cap(m.Data) == 0 {
		return
	}
	c := classOf(cap(m.Data))
	if len(s.mats[c]) < localCap {
		s.mats[c] = append(s.mats[c], m)
		return
	}
	globalMats[c].Put(m)
}

// GetVec checks out a zeroed length-n slice.
//
//mepipe:coldalloc arena miss; counted in ScratchStats.AllocBytes and amortized away once the size class is warm
func (s *Scratch) GetVec(n int) []float32 {
	if s == nil {
		return make([]float32, n)
	}
	if n == 0 {
		return nil
	}
	s.st.Gets++
	c := classFor(n)
	if l := s.vecs[c]; len(l) > 0 {
		v := l[len(l)-1]
		l[len(l)-1] = nil
		s.vecs[c] = l[:len(l)-1]
		s.st.Hits++
		v = v[:cap(v)][:n]
		clear(v)
		return v
	}
	sz := 1 << c
	s.st.AllocBytes += int64(sz) * 4
	return make([]float32, sz)[:n]
}

// PutVec returns a slice to the arena; nil/empty and nil scratch are no-ops.
func (s *Scratch) PutVec(v []float32) {
	if s == nil || cap(v) == 0 {
		return
	}
	c := classOf(cap(v))
	if len(s.vecs[c]) < localCap {
		s.vecs[c] = append(s.vecs[c], v)
	}
}

// Stats returns a snapshot of the arena counters. A nil scratch reports
// zeros.
func (s *Scratch) Stats() ScratchStats {
	if s == nil {
		return ScratchStats{}
	}
	return s.st
}

// AddFLOPs adds floating-point work to the arena counters (nil-safe).
func (s *Scratch) AddFLOPs(n int64) {
	if s != nil {
		s.st.FLOPs += n
	}
}

// MatMul is the package-level MatMul with the GEMM's 2·m·k·n FLOPs counted
// against the scratch (nil-safe).
func (s *Scratch) MatMul(dst, a, b *Matrix) {
	s.AddFLOPs(2 * int64(a.Rows) * int64(a.Cols) * int64(b.Cols))
	MatMul(dst, a, b)
}

// MatMulBT is the counted package-level MatMulBT.
func (s *Scratch) MatMulBT(dst, a, b *Matrix) {
	s.AddFLOPs(2 * int64(a.Rows) * int64(a.Cols) * int64(b.Rows))
	MatMulBT(dst, a, b)
}

// MatMulAT is the counted package-level MatMulAT.
func (s *Scratch) MatMulAT(dst, a, b *Matrix) {
	s.AddFLOPs(2 * int64(a.Rows) * int64(a.Cols) * int64(b.Cols))
	MatMulAT(dst, a, b)
}
