package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchGemm runs one kernel over square size³ operands.
func benchGemm(b *testing.B, size int, f func(dst, a, bm *Matrix)) {
	rng := rand.New(rand.NewSource(77))
	a, bm := randMat(rng, size, size), randMat(rng, size, size)
	dst := New(size, size)
	b.SetBytes(int64(size) * int64(size) * int64(size) * 2 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Zero()
		f(dst, a, bm)
	}
	flops := 2 * float64(size) * float64(size) * float64(size)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkKernels compares the naive baseline, the tiled serial kernel, and
// the pooled parallel kernel on the paper-relevant GEMM shapes. The
// "workers4" variants are the ≥3×-at-4-workers target of the kernel rewrite
// (meaningful only on a machine with ≥4 cores).
func BenchmarkKernels(b *testing.B) {
	serial := NewPool(KernelConfig{Workers: 1})
	defer serial.Close()
	par := NewPool(KernelConfig{Workers: 4})
	defer par.Close()
	for _, size := range []int{64, 256} {
		b.Run(fmt.Sprintf("MatMul/naive/%d", size), func(b *testing.B) {
			benchGemm(b, size, NaiveMatMul)
		})
		b.Run(fmt.Sprintf("MatMul/tiled/%d", size), func(b *testing.B) {
			benchGemm(b, size, serial.MatMul)
		})
		b.Run(fmt.Sprintf("MatMul/workers4/%d", size), func(b *testing.B) {
			benchGemm(b, size, par.MatMul)
		})
		b.Run(fmt.Sprintf("MatMulBT/naive/%d", size), func(b *testing.B) {
			benchGemm(b, size, NaiveMatMulBT)
		})
		b.Run(fmt.Sprintf("MatMulBT/tiled/%d", size), func(b *testing.B) {
			benchGemm(b, size, serial.MatMulBT)
		})
		b.Run(fmt.Sprintf("MatMulBT/workers4/%d", size), func(b *testing.B) {
			benchGemm(b, size, par.MatMulBT)
		})
		b.Run(fmt.Sprintf("MatMulAT/naive/%d", size), func(b *testing.B) {
			benchGemm(b, size, NaiveMatMulAT)
		})
		b.Run(fmt.Sprintf("MatMulAT/tiled/%d", size), func(b *testing.B) {
			benchGemm(b, size, serial.MatMulAT)
		})
		b.Run(fmt.Sprintf("MatMulAT/workers4/%d", size), func(b *testing.B) {
			benchGemm(b, size, par.MatMulAT)
		})
	}
}
