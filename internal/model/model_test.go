package model

import (
	"math"
	"testing"
	"testing/quick"

	"mepipe/internal/config"
)

func TestTotalParamsNearNominal(t *testing.T) {
	cases := []struct {
		m      config.Model
		lo, hi float64 // billions
	}{
		{config.Llama7B(), 6.0, 7.0},
		{config.Llama13B(), 11.5, 13.0},
		{config.Llama34B(), 30.0, 34.5},
	}
	for _, c := range cases {
		got := float64(TotalParams(c.m)) / 1e9
		if got < c.lo || got > c.hi {
			t.Errorf("%s: %.2fB params, want in [%.1f, %.1f]", c.m.Name, got, c.lo, c.hi)
		}
	}
}

func TestStageParamsSum(t *testing.T) {
	for _, m := range []config.Model{config.Llama7B(), config.Llama13B(), config.Llama34B()} {
		for _, pp := range []int{1, 2, 4, 8, 16} {
			per := StageParams(m, pp)
			var sum int64
			for _, p := range per {
				if p < 0 {
					t.Fatalf("%s pp=%d: negative stage params", m.Name, pp)
				}
				sum += p
			}
			if sum != TotalParams(m) {
				t.Errorf("%s pp=%d: stage params sum %d != total %d", m.Name, pp, sum, TotalParams(m))
			}
		}
	}
}

func TestLayersPerStageInvariants(t *testing.T) {
	check := func(nLayers, pp int) bool {
		if nLayers <= 0 || pp <= 0 {
			return true
		}
		nLayers = nLayers%96 + 1
		pp = pp%24 + 1
		got := LayersPerStage(nLayers, pp)
		if len(got) != pp {
			return false
		}
		sum := 0
		for _, l := range got {
			if l < 0 {
				return false
			}
			sum += l
		}
		return sum == nLayers
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestLayersPerChunkSum(t *testing.T) {
	// Llama 13B: 38 layers + 2 ends = 40 units; p=4, v=2 → 8 chunks of 5.
	if !EvenPartition(38, 4, 2) {
		t.Fatal("13B should partition evenly at p=4 v=2")
	}
	chunks := LayersPerChunk(38, 4, 2)
	sum := 0
	for s := range chunks {
		for _, l := range chunks[s] {
			sum += l
		}
	}
	if sum != 38 {
		t.Errorf("chunk layers sum %d, want 38", sum)
	}
	// Chunk 0 of stage 0 hosts the embedding (one fewer layer).
	if chunks[0][0] != 4 {
		t.Errorf("stage0 chunk0 layers = %d, want 4", chunks[0][0])
	}
	// Last chunk (stage 3, local 1) hosts the head.
	if chunks[3][1] != 4 {
		t.Errorf("last chunk layers = %d, want 4", chunks[3][1])
	}
	// The paper's point: p=8 v=2 (16 chunks for 40 units) does not
	// partition evenly, capping VPP at 4 stages for v=2... 40/16 is not
	// integral.
	if EvenPartition(38, 8, 2) {
		t.Error("13B p=8 v=2 should not partition evenly")
	}
	if !EvenPartition(38, 8, 1) {
		t.Error("13B p=8 v=1 should partition evenly")
	}
}

// TestSliceFlopsSumExact verifies that slicing a sample never changes total
// FLOPs: the causal attention accounting over s slices telescopes to the
// full-sequence value.
func TestSliceFlopsSumExact(t *testing.T) {
	m := config.Llama13B()
	full := LayerForwardFlops(m, m.SeqLen, 0)
	for _, s := range []int{2, 4, 8, 16} {
		tok := m.SeqLen / s
		var sum float64
		for i := 0; i < s; i++ {
			sum += LayerForwardFlops(m, tok, i*tok)
		}
		if rel := math.Abs(sum-full) / full; rel > 1e-12 {
			t.Errorf("s=%d: sliced FLOPs %.6g != full %.6g (rel %.2g)", s, sum, full, rel)
		}
	}
}

func TestAttnScoreGrowsAcrossSlices(t *testing.T) {
	m := config.Llama13B()
	tok := m.SeqLen / 4
	prev := -1.0
	for i := 0; i < 4; i++ {
		f := LayerAttnScoreFlops(m, tok, i*tok)
		if f <= prev {
			t.Fatalf("slice %d attention FLOPs %.3g not increasing", i, f)
		}
		prev = f
	}
}

// TestAttnShareSmall confirms §4.4's claim: attention-score work is under
// 10% of a 7B layer at 4096 context, and a smaller share for larger models.
func TestAttnShareSmall(t *testing.T) {
	share := func(m config.Model) float64 {
		full := LayerForwardFlops(m, m.SeqLen, 0)
		return LayerAttnScoreFlops(m, m.SeqLen, 0) / full
	}
	s7 := share(config.Llama7B())
	s13 := share(config.Llama13B())
	s34 := share(config.Llama34B())
	if s7 >= 0.10 {
		t.Errorf("7B attention share %.3f, want < 0.10", s7)
	}
	if !(s34 < s13 && s13 < s7) {
		t.Errorf("attention share should shrink with model size: 7B %.3f, 13B %.3f, 34B %.3f", s7, s13, s34)
	}
}

func TestWeightGradBalanced(t *testing.T) {
	m := config.Llama13B()
	tok := m.SeqLen / 8
	w0 := LayerWeightGradFlops(m, tok)
	// Weight-gradient FLOPs must not depend on the slice position — the
	// §5 property. (The function has no start parameter by construction;
	// this asserts it stays proportional to tokens only.)
	if w2 := LayerWeightGradFlops(m, 2*tok); math.Abs(w2-2*w0)/w0 > 1e-12 {
		t.Errorf("weight-grad FLOPs not linear in tokens: %g vs 2*%g", w2, w0)
	}
}

func TestBackwardHeavierThanForward(t *testing.T) {
	m := config.Llama13B()
	f := LayerForwardFlops(m, 512, 1024)
	b := LayerActGradFlops(m, 512, 1024) + LayerWeightGradFlops(m, 512)
	if b <= f || b > 2.5*f {
		t.Errorf("backward/forward ratio %.2f, want in (1, 2.5]", b/f)
	}
}

func TestActivationBytesNearClassic(t *testing.T) {
	// The per-token activation footprint should land near the classic
	// ~34·h bytes for Llama shapes (FFN ≈ 2.7·h).
	for _, m := range []config.Model{config.Llama7B(), config.Llama13B()} {
		ratio := float64(LayerActivationBytesPerToken(m)) / float64(m.HiddenSize)
		if ratio < 28 || ratio > 38 {
			t.Errorf("%s: activation bytes per token = %.1f·h, want ~34·h", m.Name, ratio)
		}
	}
}

func TestSampleActivationBytes13B(t *testing.T) {
	// A for Llama 13B at seq 4096 should be tens of GB — the reason
	// Fig 1's baselines hover near a whole sample per worker.
	a := float64(SampleActivationBytes(config.Llama13B())) / (1 << 30)
	if a < 18 || a > 32 {
		t.Errorf("A = %.1f GiB, want in [18, 32]", a)
	}
}

func TestRecomputeReduction(t *testing.T) {
	m := config.Llama13B()
	full := LayerActivationBytesPerToken(m)
	re := RecomputeActivationBytesPerToken(m)
	// §7.3: recomputation reduces activation memory by ~90%.
	if r := float64(re) / float64(full); r > 0.12 {
		t.Errorf("recompute keeps %.1f%% of activations, want < 12%%", 100*r)
	}
}

func TestStaticBytes34BMatchesPaper(t *testing.T) {
	// §7.4: for Llama 34B, parameters+gradients ≈ 34·4/p GB and the
	// mixed-precision optimizer ≈ 6.375 GB per worker at dp·cp·pp = 64.
	m := config.Llama34B()
	par := config.Parallel{PP: 16, DP: 4, CP: 1, SPP: 16, VP: 1}
	static := float64(StaticBytesPerWorker(m, par)) / (1 << 30)
	paramsGrads := float64(TotalParams(m)) * 4 / 16 / (1 << 30)
	opt := float64(TotalParams(m)) * 12 / 64 / (1 << 30)
	want := paramsGrads + opt
	// §7.4 quotes the optimizer shard at ≈ 6.375 GB for 34B on 64 GPUs.
	if opt < 5 || opt > 7 {
		t.Errorf("optimizer shard %.2f GiB, want ≈ 6.375", opt)
	}
	if math.Abs(static-want)/want > 0.25 {
		t.Errorf("34B static = %.2f GiB, want near %.2f GiB", static, want)
	}
	// And the whole thing must be nowhere near fitting at pp=4.
	small := config.Parallel{PP: 4, DP: 16, CP: 1, SPP: 1, VP: 1}
	if got := StaticBytesPerWorker(m, small); got < 24<<30 {
		t.Errorf("34B static at pp=4 = %.1f GiB, expected to exceed a 24 GiB card", float64(got)/(1<<30))
	}
}

func TestTemporaryBytesPositive(t *testing.T) {
	m := config.Llama13B()
	if TemporaryBytes(m, 512) <= 0 {
		t.Error("temporary bytes must be positive")
	}
	if TemporaryBytes(m, 1024) <= TemporaryBytes(m, 512) {
		t.Error("temporary bytes should grow with tokens per call")
	}
}

func TestModelFlopsPerTokenVsExact(t *testing.T) {
	// The 6·params convention should agree with exact accounting within
	// ~15% at 4k context (attention adds the difference).
	for _, m := range []config.Model{config.Llama7B(), config.Llama13B(), config.Llama34B()} {
		conv := ModelFlopsPerToken(m) * float64(m.SeqLen)
		exact := SampleTotalFlops(m)
		if r := exact / conv; r < 0.85 || r > 1.3 {
			t.Errorf("%s: exact/6Np ratio %.3f out of range", m.Name, r)
		}
	}
}

// TestLayersPerGlobalChunkProperty: any chunk split covers the model with
// non-negative per-chunk counts.
func TestLayersPerGlobalChunkProperty(t *testing.T) {
	check := func(nLayersRaw, chunksRaw uint8) bool {
		nLayers := int(nLayersRaw)%80 + 2
		chunks := int(chunksRaw)%(nLayers+2) + 1
		got := LayersPerGlobalChunk(nLayers, chunks)
		if len(got) != chunks {
			return false
		}
		sum := 0
		for _, n := range got {
			if n < 0 {
				return false
			}
			sum += n
		}
		return sum == nLayers
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTPActivationAccounting: sharded activations interpolate between the
// replicated floor and the full footprint.
func TestTPActivationAccounting(t *testing.T) {
	m := config.Llama13B()
	full := LayerActivationBytesPerTokenTP(m, 1)
	if full != LayerActivationBytesPerToken(m) {
		t.Error("tp=1 must equal the unsharded accounting")
	}
	prev := full
	for _, tp := range []int{2, 4, 8} {
		got := LayerActivationBytesPerTokenTP(m, tp)
		if got >= prev {
			t.Fatalf("tp=%d: activations %d did not shrink from %d", tp, got, prev)
		}
		// Never below the replicated 5h floor.
		if got < BytesFP16*5*int64(m.HiddenSize) {
			t.Fatalf("tp=%d: activations %d below the replicated floor", tp, got)
		}
		prev = got
	}
	// Gradient retention behaves the same way.
	if ActGradBytesPerTokenTP(m, 1) != ActGradBytesPerToken(m) {
		t.Error("tp=1 grads must equal the unsharded accounting")
	}
	if ActGradBytesPerTokenTP(m, 4) >= ActGradBytesPerToken(m) {
		t.Error("tp=4 grads should shrink")
	}
	// Selective recompute drops the MLP intermediates exactly.
	sel := SelectiveActivationBytesPerToken(m, 1)
	if want := full - BytesFP16*3*int64(m.FFNHidden); sel != want {
		t.Errorf("selective = %d, want %d", sel, want)
	}
}
