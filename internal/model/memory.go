package model

import "mepipe/internal/config"

// Activation accounting. The forward pass must retain, for each layer, the
// tensors its backward pass consumes. With FlashAttention (which the paper's
// artifact uses) the O(t·ctx) score matrix is never materialised; the
// retained set per token is the enumeration below. The total comes out near
// the classic 34·h bytes/token of Korthikanti et al. for Llama shapes.
//
//	rmsnorm1 input          h        (norm backward)
//	normed attention input  h        (Wq/Wk/Wv weight grads)
//	Q, K, V                 3h       (flash-attention backward)
//	attention output O      h        (Wo weight grad + flash bwd)
//	rmsnorm2 input          h        (norm backward)
//	normed MLP input        h        (gate/up weight grads)
//	gate, up outputs        2·ffn    (SiLU backward, product grads)
//	silu(gate)*up product   ffn      (down-projection weight grad)
//
// All FP16. Dropout is disabled in Llama 2 pre-training, so no masks.

// LayerActivationBytesPerToken returns the retained activation bytes per
// token per transformer layer.
func LayerActivationBytesPerToken(m config.Model) int64 {
	h := int64(m.HiddenSize)
	kvh := int64(m.HiddenSize / m.NumHeads * m.NumKVHeads)
	ffn := int64(m.FFNHidden)
	elems := h + h + (h + 2*kvh) + h + h + h + 2*ffn + ffn
	return BytesFP16 * elems
}

// LayerActivationBytesPerTokenTP returns the per-worker retained activation
// bytes per token per layer under Megatron tensor parallelism (without
// sequence parallelism): the norm inputs/outputs and the post-all-reduce
// attention output stay replicated; Q/K/V and the MLP intermediates shard
// across the tp workers.
func LayerActivationBytesPerTokenTP(m config.Model, tp int) int64 {
	if tp <= 1 {
		return LayerActivationBytesPerToken(m)
	}
	h := int64(m.HiddenSize)
	kvh := int64(m.HiddenSize / m.NumHeads * m.NumKVHeads)
	ffn := int64(m.FFNHidden)
	full := 5 * h                            // rms inputs/outputs, attention output
	split := (h + 2*kvh + 3*ffn) / int64(tp) // Q, K, V, gate, up, product
	return BytesFP16 * (full + split)
}

// SampleActivationBytes returns A — the activation memory of one full sample
// across all layers (the unit of Table 3 and Figure 1).
func SampleActivationBytes(m config.Model) int64 {
	return int64(m.SeqLen) * int64(m.NumLayers) * LayerActivationBytesPerToken(m)
}

// RecomputeActivationBytesPerToken returns the retained bytes per token per
// layer under full recomputation: only the layer input survives the forward
// pass (§2, Megatron-style full recompute).
func RecomputeActivationBytesPerToken(m config.Model) int64 {
	return BytesFP16 * int64(m.HiddenSize)
}

// SelectiveActivationBytesPerToken returns the per-token retention under
// selective recomputation (the paper's reference [16]): the three MLP
// intermediates — by far the largest tensors with FlashAttention — are
// dropped and rebuilt in the backward pass; everything else stays.
func SelectiveActivationBytesPerToken(m config.Model, tp int) int64 {
	full := LayerActivationBytesPerTokenTP(m, tp)
	ffn := int64(m.FFNHidden) / int64(tp)
	return full - BytesFP16*3*ffn
}

// ActGradBytesPerToken returns the bytes of activation gradients that must be
// retained per token per layer while weight-gradient computation is deferred
// (§5: postponing W requires keeping both activations and their gradients
// for every GEMM input). The gradient set mirrors the GEMM outputs: dY for
// each of the 7 GEMMs.
func ActGradBytesPerToken(m config.Model) int64 {
	h := int64(m.HiddenSize)
	kvh := int64(m.HiddenSize / m.NumHeads * m.NumKVHeads)
	ffn := int64(m.FFNHidden)
	// dQKV (h+2kvh), dO (h), d(gate)+d(up) (2ffn), d(down-out) (h).
	return BytesFP16 * (h + 2*kvh + h + 2*ffn + h)
}

// ActGradBytesPerTokenTP is ActGradBytesPerToken under tensor parallelism:
// the sharded GEMM outputs' gradients split across the tp workers while the
// replicated residual-path gradients do not.
func ActGradBytesPerTokenTP(m config.Model, tp int) int64 {
	if tp <= 1 {
		return ActGradBytesPerToken(m)
	}
	h := int64(m.HiddenSize)
	kvh := int64(m.HiddenSize / m.NumHeads * m.NumKVHeads)
	ffn := int64(m.FFNHidden)
	full := 2 * h                            // dO (post all-reduce), d(down output)
	split := (h + 2*kvh + 2*ffn) / int64(tp) // dQKV, d(gate), d(up)
	return BytesFP16 * (full + split)
}

// StaticBytesPerWorker returns the static memory of one worker: FP16
// parameters and gradients for its pipeline stage plus its ZeRO-1 optimizer
// shard (§4.5's first component, the 4m/p + 8m/(d·p) formula, applied to the
// exact per-stage parameter count rather than the uniform approximation).
func StaticBytesPerWorker(m config.Model, par config.Parallel) int64 {
	perStage := StageParams(m, par.PP)
	maxParams := perStage[0]
	for _, p := range perStage[1:] {
		if p > maxParams {
			maxParams = p
		}
	}
	// CP workers replicate the stage's FP16 parameters and gradients;
	// the optimizer state is ZeRO-sharded over every device in the job
	// (§7.2: "optimizer states are evenly distributed across all devices
	// with the ZeRO technique"; §7.4 quotes the resulting 34B shard as
	// 12·m/64 ≈ 6.375 GB).
	devices := int64(par.Devices())
	shard := (TotalParams(m) + devices - 1) / devices
	return maxParams/int64(par.TPSize())*BytesPerParamStatic + shard*BytesPerParamOptimizer
}

// StageParams returns the parameter count of each pipeline stage when the
// model is partitioned into pp stages: the embedding joins the first stage,
// the head the last, and transformer layers are spread as evenly as
// possible (the paper removes two layers from each Llama size precisely so
// embedding+head can be balanced against layers; we mirror that by treating
// embedding and head each as one layer-equivalent when splitting).
func StageParams(m config.Model, pp int) []int64 {
	layers := LayersPerStage(m.NumLayers, pp)
	out := make([]int64, pp)
	for s, l := range layers {
		out[s] = int64(l) * LayerParams(m)
	}
	out[0] += EmbeddingParams(m)
	out[pp-1] += HeadParams(m)
	return out
}

// LayersPerStage splits nLayers transformer layers across pp stages,
// reserving one layer-equivalent slot on the first and last stages for the
// embedding and head (when pp > 1 and the split allows). The returned slice
// sums to nLayers.
func LayersPerStage(nLayers, pp int) []int {
	out := make([]int, pp)
	if pp == 1 {
		out[0] = nLayers
		return out
	}
	// Distribute nLayers+2 "units" (layers + embedding + head) evenly,
	// then take back the embedding/head units from the end stages.
	units := nLayers + 2
	base := units / pp
	rem := units % pp
	for s := range out {
		out[s] = base
		// Spread the remainder over the middle stages first, so the
		// end stages (already carrying embedding/head) stay light.
		if rem > 0 && s != 0 && s != pp-1 {
			out[s]++
			rem--
		}
	}
	for s := 0; rem > 0 && s < pp; s++ {
		out[s]++
		rem--
	}
	out[0]--    // embedding occupies one unit on stage 0
	out[pp-1]-- // head occupies one unit on the last stage
	// Extremely deep pipelines can leave an end stage negative; steal a
	// layer from the heaviest stage so the result is a valid partition.
	for _, end := range []int{0, pp - 1} {
		for out[end] < 0 {
			max := 0
			for s := range out {
				if out[s] > out[max] {
					max = s
				}
			}
			out[max]--
			out[end]++
		}
	}
	return out
}

// EvenPartition reports whether pp stages with vp chunks each split the
// model's nLayers+2 layer-equivalent units evenly — the paper's requirement
// ("the computation graph should be partitioned evenly for all approaches")
// that caps VPP at 4 stages for Llama 13B's 40 units.
func EvenPartition(nLayers, pp, vp int) bool {
	units := nLayers + 2
	chunks := pp * vp
	return chunks <= units && units%chunks == 0
}

// LayersPerGlobalChunk returns the transformer-layer count of each global
// chunk when the model is split into `chunks` sequential chunks. Chunk 0
// hosts the embedding and the last chunk hosts the head; each displaces one
// layer-equivalent unit.
func LayersPerGlobalChunk(nLayers, chunks int) []int {
	units := nLayers + 2
	per := units / chunks
	extra := units % chunks
	out := make([]int, chunks)
	for c := 0; c < chunks; c++ {
		n := per
		if c < extra {
			n++
		}
		if c == 0 {
			n-- // embedding
		}
		if c == chunks-1 {
			n-- // head
		}
		out[c] = n
	}
	return out
}

// LayersPerChunk returns the transformer-layer count of each (stage, local
// chunk) under the round-robin placement: global chunk c lives on stage
// c%pp as that stage's chunk c/pp.
func LayersPerChunk(nLayers, pp, vp int) [][]int {
	global := LayersPerGlobalChunk(nLayers, pp*vp)
	out := make([][]int, pp)
	for s := range out {
		out[s] = make([]int, vp)
	}
	for c, n := range global {
		out[c%pp][c/pp] = n
	}
	return out
}

// TemporaryBytes returns the transient workspace high-water mark (§4.5's
// second component): dominated by the cross-entropy loss over the vocabulary
// on the last stage (logits in FP32 for numerical stability) plus
// communication buffers. t is the largest number of tokens processed in one
// compute call.
func TemporaryBytes(m config.Model, t int) int64 {
	logits := int64(t) * int64(m.VocabSize) * BytesFP32
	commBuffers := int64(4) * int64(t) * int64(m.HiddenSize) * BytesFP16
	return logits + commBuffers
}
