package model

import "mepipe/internal/config"

// FLOP accounting at slice granularity.
//
// A slice is a contiguous run of tokens within one sample. Because the
// decoder is causal, the attention-score work of a slice grows with the
// number of tokens that precede it: slice i of width t attends to i*t earlier
// tokens plus (on average) half of itself. Projection and MLP GEMMs, in
// contrast, depend only on the slice width. This is exactly the imbalance
// §5 of the paper sets out to absorb with fine-grained weight-gradient
// computation.

// LayerProjFlops returns the forward FLOPs of the four attention projections
// for t tokens (2 FLOPs per multiply-accumulate).
func LayerProjFlops(m config.Model, t int) float64 {
	h := float64(m.HiddenSize)
	kv := float64(m.HiddenSize / m.NumHeads * m.NumKVHeads)
	return 2 * float64(t) * (h*h + 2*h*kv + h*h)
}

// LayerMLPFlops returns the forward FLOPs of the SwiGLU MLP for t tokens.
func LayerMLPFlops(m config.Model, t int) float64 {
	return 2 * float64(t) * 3 * float64(m.HiddenSize) * float64(m.FFNHidden)
}

// LayerAttnScoreFlops returns the forward FLOPs of the attention-score part
// (Q·Kᵀ and P·V) for a slice of t query tokens whose first token sits at
// absolute position start. Causality makes the average attended length
// start + (t+1)/2.
func LayerAttnScoreFlops(m config.Model, t, start int) float64 {
	attended := float64(start) + (float64(t)+1)/2
	// Two GEMMs (scores and weighted values), 2 FLOPs per MAC, over the
	// full hidden dimension (queries use all heads).
	return 2 * 2 * float64(t) * attended * float64(m.HiddenSize)
}

// LayerForwardFlops returns the total forward FLOPs of one transformer layer
// for the given slice.
func LayerForwardFlops(m config.Model, t, start int) float64 {
	return LayerProjFlops(m, t) + LayerMLPFlops(m, t) + LayerAttnScoreFlops(m, t, start)
}

// LayerActGradFlops returns the FLOPs of the activation-gradient half of the
// backward pass (dX through every GEMM, plus the attention backward, which
// costs roughly twice its forward because both dQ/dK and dV paths traverse
// the score matrix).
func LayerActGradFlops(m config.Model, t, start int) float64 {
	return LayerProjFlops(m, t) + LayerMLPFlops(m, t) + 2*LayerAttnScoreFlops(m, t, start)
}

// LayerWeightGradFlops returns the FLOPs of the weight-gradient half of the
// backward pass (dW = Xᵀ·dY for every GEMM). It has no attention-score
// component, which is why it is balanced across slices — the property §5
// exploits.
func LayerWeightGradFlops(m config.Model, t int) float64 {
	return LayerProjFlops(m, t) + LayerMLPFlops(m, t)
}

// WeightGradGEMMsPerLayer is the number of independent weight-gradient GEMMs
// in one layer (Wq, Wk, Wv, Wo, gate, up, down): the granularity at which §5
// enqueues work.
const WeightGradGEMMsPerLayer = 7

// EmbeddingForwardFlops returns the forward FLOPs of the embedding lookup
// (treated as negligible compute, returned for completeness).
func EmbeddingForwardFlops(m config.Model, t int) float64 { return 0 }

// HeadForwardFlops returns the forward FLOPs of the LM head projection and
// softmax for t tokens.
func HeadForwardFlops(m config.Model, t int) float64 {
	return 2 * float64(t) * float64(m.HiddenSize) * float64(m.VocabSize)
}

// HeadBackwardFlops returns the combined backward FLOPs of the LM head
// (activation plus weight gradients).
func HeadBackwardFlops(m config.Model, t int) float64 {
	return 2 * HeadForwardFlops(m, t)
}

// SampleForwardFlops returns the forward FLOPs of one full sample through
// the whole model (all layers plus head), used for MFU accounting.
func SampleForwardFlops(m config.Model) float64 {
	t := m.SeqLen
	perLayer := LayerForwardFlops(m, t, 0)
	return float64(m.NumLayers)*perLayer + HeadForwardFlops(m, t)
}

// SampleTotalFlops returns forward + backward FLOPs of one sample (the
// standard ~3× forward multiplier, with the attention imbalance accounted
// exactly).
func SampleTotalFlops(m config.Model) float64 {
	t := m.SeqLen
	perLayer := LayerForwardFlops(m, t, 0) + LayerActGradFlops(m, t, 0) + LayerWeightGradFlops(m, t)
	return float64(m.NumLayers)*perLayer + HeadForwardFlops(m, t) + HeadBackwardFlops(m, t)
}

// ModelFlopsPerToken returns the conventional 6·params estimate used for MFU
// reporting in the paper (FLOPs per trained token).
func ModelFlopsPerToken(m config.Model) float64 {
	return 6 * float64(TotalParams(m))
}
