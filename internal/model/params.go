// Package model provides the analytic cost accounting for decoder-only
// transformers: parameter counts, FLOPs per forward / activation-gradient /
// weight-gradient pass at slice granularity (including the causal-attention
// workload growth across slices that motivates §5 of the paper), activation
// memory per token, and the static/temporary memory components of the §4.5
// memory model.
package model

import "mepipe/internal/config"

// Bytes-per-element constants for the mixed-precision recipe the paper uses
// (§4.5): FP16 parameters, gradients and activations; FP32 master weights and
// Adam moments held by the (ZeRO-sharded) optimizer.
const (
	BytesFP16 = 2
	BytesFP32 = 4

	// BytesPerParamStatic covers the FP16 parameter + FP16 gradient copy
	// each pipeline stage holds (the 4m/p term of §4.5).
	BytesPerParamStatic = 2 * BytesFP16
	// BytesPerParamOptimizer covers the FP32 master weights plus Adam
	// first and second moments held by the ZeRO-sharded optimizer. §7.4
	// quotes the shard at 6.375 GB/worker for Llama 34B on 64 devices —
	// exactly 12 bytes per parameter spread over the whole cluster
	// ("optimizer states are evenly distributed across all devices",
	// §7.2).
	BytesPerParamOptimizer = 12
)

// LayerParams returns the parameter count of one transformer layer:
// attention Q/K/V/O projections, the SwiGLU MLP (gate, up, down), and the
// two RMSNorm scale vectors.
func LayerParams(m config.Model) int64 {
	h := int64(m.HiddenSize)
	kv := int64(m.HiddenSize / m.NumHeads * m.NumKVHeads)
	ffn := int64(m.FFNHidden)
	attn := h*h + 2*h*kv + h*h // Wq, Wk, Wv, Wo
	mlp := 3 * h * ffn         // gate, up, down
	norms := 2 * h
	return attn + mlp + norms
}

// EmbeddingParams returns the token-embedding parameter count. Llama 2 does
// not tie the output head to the embedding, so the head is counted
// separately by HeadParams.
func EmbeddingParams(m config.Model) int64 {
	return int64(m.VocabSize) * int64(m.HiddenSize)
}

// HeadParams returns the parameter count of the output projection (LM head)
// plus the final RMSNorm.
func HeadParams(m config.Model) int64 {
	return int64(m.VocabSize)*int64(m.HiddenSize) + int64(m.HiddenSize)
}

// TotalParams returns the full model parameter count.
func TotalParams(m config.Model) int64 {
	return int64(m.NumLayers)*LayerParams(m) + EmbeddingParams(m) + HeadParams(m)
}
