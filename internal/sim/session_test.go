package sim

import (
	"context"
	"errors"
	"math"
	"testing"

	"mepipe/internal/errs"
	"mepipe/internal/sched"
)

// sessClone deep-copies a schedule's op lists (shape/placement shared).
func sessClone(s *sched.Schedule) *sched.Schedule {
	out := *s
	out.Stages = make([][]sched.Op, len(s.Stages))
	for k := range s.Stages {
		out.Stages[k] = append([]sched.Op(nil), s.Stages[k]...)
	}
	return &out
}

// sessDisplace mirrors internal/opt's displace: move ops[from] to to,
// sliding the range between.
func sessDisplace(ops []sched.Op, from, to int) {
	op := ops[from]
	if from < to {
		copy(ops[from:], ops[from+1:to+1])
	} else {
		copy(ops[to+1:], ops[to:from])
	}
	ops[to] = op
}

// sessLCG is a tiny deterministic generator for move sequences.
type sessLCG uint64

func (l *sessLCG) next(n int) int {
	*l = *l*6364136223846793005 + 1442695040888963407
	return int((uint64(*l) >> 33) % uint64(n))
}

// requireSameResult asserts bitwise identity between a full replay and a
// session evaluation — the tentpole's hard gate.
func requireSameResult(t *testing.T, full, inc *Result, label string) {
	t.Helper()
	if full == nil || inc == nil {
		t.Fatalf("%s: nil result (full=%v inc=%v)", label, full == nil, inc == nil)
	}
	if math.Float64bits(full.IterTime) != math.Float64bits(inc.IterTime) {
		t.Fatalf("%s: IterTime %v != %v", label, full.IterTime, inc.IterTime)
	}
	if math.Float64bits(full.BubbleRatio) != math.Float64bits(inc.BubbleRatio) {
		t.Fatalf("%s: BubbleRatio %v != %v", label, full.BubbleRatio, inc.BubbleRatio)
	}
	if full.PeakAct != inc.PeakAct {
		t.Fatalf("%s: PeakAct %d != %d", label, full.PeakAct, inc.PeakAct)
	}
	if full.OOM != inc.OOM || full.OOMStage != inc.OOMStage {
		t.Fatalf("%s: OOM %v@%d != %v@%d", label, full.OOM, full.OOMStage, inc.OOM, inc.OOMStage)
	}
	if full.SpansRecorded != inc.SpansRecorded {
		t.Fatalf("%s: SpansRecorded %v != %v", label, full.SpansRecorded, inc.SpansRecorded)
	}
	if len(full.Stages) != len(inc.Stages) {
		t.Fatalf("%s: stage count %d != %d", label, len(full.Stages), len(inc.Stages))
	}
	for k := range full.Stages {
		fs, is := &full.Stages[k], &inc.Stages[k]
		if math.Float64bits(fs.ComputeTime) != math.Float64bits(is.ComputeTime) {
			t.Fatalf("%s: stage %d ComputeTime %v != %v", label, k, fs.ComputeTime, is.ComputeTime)
		}
		if math.Float64bits(fs.Finish) != math.Float64bits(is.Finish) {
			t.Fatalf("%s: stage %d Finish %v != %v", label, k, fs.Finish, is.Finish)
		}
		if fs.PeakAct != is.PeakAct {
			t.Fatalf("%s: stage %d PeakAct %d != %d", label, k, fs.PeakAct, is.PeakAct)
		}
		if !full.SpansRecorded {
			continue
		}
		if len(fs.Spans) != len(is.Spans) {
			t.Fatalf("%s: stage %d span count %d != %d", label, k, len(fs.Spans), len(is.Spans))
		}
		for i := range fs.Spans {
			a, b := fs.Spans[i], is.Spans[i]
			if a.Op != b.Op ||
				math.Float64bits(a.Start) != math.Float64bits(b.Start) ||
				math.Float64bits(a.End) != math.Float64bits(b.End) {
				t.Fatalf("%s: stage %d span %d %+v != %+v", label, k, i, a, b)
			}
		}
	}
}

type sessionCase struct {
	name string
	opt  Options // Sched filled per case below
}

// sessionCases builds schedule × option variants covering static/dynamic,
// budgets, tails, and MakespanOnly.
func sessionCases(t *testing.T) []sessionCase {
	t.Helper()
	tail := func(k int) float64 { return 0.3 * float64(k+1) }
	mk := func(name string, s *sched.Schedule, err error, f func(*Options)) sessionCase {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		o := Options{Sched: s, Costs: UniformCosts{Est: sched.UniformEst{F: 1, BFused: 2, BAct: 1, W: 1, WPiece: 0.25, Comm: 0.2}, Act: 3, Grad: 1}}
		if f != nil {
			f(&o)
		}
		return sessionCase{name, o}
	}
	budget := func(p int, b int64) []int64 {
		out := make([]int64, p)
		for i := range out {
			out[i] = b
		}
		return out
	}
	var cases []sessionCase
	s1, err1 := sched.MEPipe(4, 1, 2, 6, 0, 4, nil)
	cases = append(cases,
		mk("mepipe/static", sessClone(s1), err1, nil),
		mk("mepipe/makespan", sessClone(s1), err1, func(o *Options) { o.MakespanOnly = true }),
		mk("mepipe/budget", sessClone(s1), err1, func(o *Options) { o.ActBudget = budget(4, 14) }),
		mk("mepipe/tail", sessClone(s1), err1, func(o *Options) { o.TailTime = tail }),
		mk("mepipe/dynamic", sessClone(s1), err1, func(o *Options) { o.DynamicW = true }),
		mk("mepipe/dynamic-budget", sessClone(s1), err1, func(o *Options) {
			o.DynamicW = true
			o.ActBudget = budget(4, 14)
			o.TailTime = tail
		}),
	)
	s2, err2 := sched.MEPipe(3, 1, 2, 4, 0, 0, nil) // whole-W split
	cases = append(cases,
		mk("mepipe-wholew/static", sessClone(s2), err2, nil),
		mk("mepipe-wholew/dynamic-budget", sessClone(s2), err2, func(o *Options) {
			o.DynamicW = true
			o.ActBudget = budget(3, 11)
		}),
	)
	s3, err3 := sched.SVPP(sched.SVPPOptions{P: 4, V: 1, S: 2, N: 4})
	cases = append(cases, mk("svpp/fused", s3, err3, func(o *Options) { o.ActBudget = budget(4, 12) }))
	s4, err4 := sched.DAPPLE(4, 6, nil)
	cases = append(cases, mk("dapple", s4, err4, func(o *Options) { o.TailTime = tail }))
	s5, err5 := sched.VPP(4, 2, 4, nil)
	cases = append(cases, mk("vpp", s5, err5, nil))
	return cases
}

// TestSessionMatchesRun drives each case through a long deterministic move
// walk, comparing every incremental evaluation bitwise against a fresh full
// replay — including steps whose order deadlocks, where both sides must
// fail with the same error class.
func TestSessionMatchesRun(t *testing.T) {
	for _, tc := range sessionCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			se, err := NewSession(tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			cur := sessClone(tc.opt.Sched)
			rng := sessLCG(1)
			valid, invalid := 0, 0
			for step := 0; step < 160; step++ {
				cand := sessClone(cur)
				k := rng.next(cand.P)
				ops := cand.Stages[k]
				if len(ops) >= 2 {
					switch rng.next(3) {
					case 0: // adjacent swap (the annealer's cheapest move)
						i := rng.next(len(ops) - 1)
						ops[i], ops[i+1] = ops[i+1], ops[i]
					case 1: // short shift, usually survivable
						from := rng.next(len(ops))
						to := from + rng.next(7) - 3
						if to < 0 {
							to = 0
						}
						if to >= len(ops) {
							to = len(ops) - 1
						}
						sessDisplace(ops, from, to)
					default: // long displace, usually deadlocks
						sessDisplace(ops, rng.next(len(ops)), rng.next(len(ops)))
					}
				}
				fullOpt := tc.opt
				fullOpt.Sched = cand
				full, fullErr := Run(fullOpt)
				inc, incErr := se.Eval(cand)
				if (fullErr == nil) != (incErr == nil) {
					t.Fatalf("step %d: full err %v, incremental err %v", step, fullErr, incErr)
				}
				if fullErr != nil {
					// Keep walking from the last valid order, as the
					// annealer does with rejected candidates.
					invalid++
					if !errors.Is(incErr, errs.ErrUncertified) && !errors.Is(incErr, errs.ErrIncompatible) {
						t.Fatalf("step %d: incremental error class %v (full: %v)", step, incErr, fullErr)
					}
					if errors.Is(fullErr, errs.ErrUncertified) != errors.Is(incErr, errs.ErrUncertified) {
						t.Fatalf("step %d: error classes differ: full %v, incremental %v", step, fullErr, incErr)
					}
					continue
				}
				valid++
				requireSameResult(t, full, inc, tc.name)
				cur = cand
			}
			if valid < 20 {
				t.Fatalf("move walk produced only %d valid schedules", valid)
			}
			t.Logf("%s: %d valid, %d deadlocked steps", tc.name, valid, invalid)
		})
	}
}

// TestSessionRecoversAfterError pins that an Eval that fails (deadlocked
// order) leaves the session usable: the next valid order must still match
// the full replay bitwise.
func TestSessionRecoversAfterError(t *testing.T) {
	s, err := sched.MEPipe(4, 1, 2, 4, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Sched: s, Costs: Unit()}
	se, err := NewSession(opt)
	if err != nil {
		t.Fatal(err)
	}
	bad := sessClone(s)
	// Reverse stage 0: every family's BAct now precedes its F, a
	// program-order/dependency cycle.
	ops := bad.Stages[0]
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}
	if _, err := se.Eval(bad); !errors.Is(err, errs.ErrUncertified) {
		t.Fatalf("reversed stage: got %v, want ErrUncertified", err)
	}
	good := sessClone(s)
	inc, err := se.Eval(good)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(Options{Sched: good, Costs: Unit()})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, full, inc, "recovery")
}

// TestSessionIncompatible pins the rebuild contract: shape or placement
// mismatches report errs.ErrIncompatible instead of garbage.
func TestSessionIncompatible(t *testing.T) {
	s, err := sched.MEPipe(4, 1, 2, 4, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewSession(Options{Sched: s, Costs: Unit()})
	if err != nil {
		t.Fatal(err)
	}
	other, err := sched.MEPipe(4, 1, 2, 6, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := se.Eval(other); !errors.Is(err, errs.ErrIncompatible) {
		t.Fatalf("different N: got %v, want ErrIncompatible", err)
	}
	if _, err := se.Eval(nil); !errors.Is(err, errs.ErrIncompatible) {
		t.Fatalf("nil schedule: got %v, want ErrIncompatible", err)
	}
	// Same shape, broken multiset: duplicate one op over another.
	bad := sessClone(s)
	bad.Stages[0][0] = bad.Stages[0][1]
	if _, err := se.Eval(bad); !errors.Is(err, errs.ErrIncompatible) {
		t.Fatalf("duplicated op: got %v, want ErrIncompatible", err)
	}
	// And the session still works on the bound schedule afterwards.
	if _, err := se.Eval(s); err != nil {
		t.Fatalf("after incompatible evals: %v", err)
	}
	// NewSession rejects traced options outright.
	if _, err := NewSession(Options{Sched: s, Costs: Unit(), Trace: nopSink{}}); !errors.Is(err, errs.ErrIncompatible) {
		t.Fatalf("traced session: got %v, want ErrIncompatible", err)
	}
}

// TestSessionZeroAllocSteadyState is the arena-reuse gate: once warm, a
// MakespanOnly evaluation of a moved schedule must not allocate at all.
func TestSessionZeroAllocSteadyState(t *testing.T) {
	s, err := sched.MEPipe(4, 1, 2, 6, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Sched: s, Costs: Unit(), MakespanOnly: true}
	se, err := NewSession(opt)
	if err != nil {
		t.Fatal(err)
	}
	a := sessClone(s)
	b := sessClone(s)
	// A valid adjacent swap so both orders simulate: find one by trial.
	found := false
	for i := 0; i+1 < len(b.Stages[1]) && !found; i++ {
		b.Stages[1][i], b.Stages[1][i+1] = b.Stages[1][i+1], b.Stages[1][i]
		if _, err := Run(Options{Sched: b, Costs: Unit(), MakespanOnly: true}); err == nil {
			found = true
			break
		}
		b.Stages[1][i], b.Stages[1][i+1] = b.Stages[1][i+1], b.Stages[1][i]
	}
	if !found {
		t.Fatal("no valid adjacent swap found")
	}
	// Warm the session (grows queue/buffer capacity to steady state).
	for i := 0; i < 4; i++ {
		if _, err := se.Eval(a); err != nil {
			t.Fatal(err)
		}
		if _, err := se.Eval(b); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := se.Eval(a); err != nil {
			t.Fatal(err)
		}
		if _, err := se.Eval(b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Eval allocates %.1f times per move pair, want 0", allocs)
	}
}

// TestEvaluateMatchesRun pins the pooled one-shot wrapper: identical result
// to Run, caller-owned (survives later Evaluate calls), traced calls fall
// back to RunContext.
func TestEvaluateMatchesRun(t *testing.T) {
	s, err := sched.MEPipe(4, 1, 2, 4, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Sched: s, Costs: Unit(), DynamicW: true, ActBudget: []int64{9, 9, 9, 9}}
	full, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Evaluate(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, full, got, "evaluate")
	// Result must be independent of the pooled session.
	for i := 0; i < 4; i++ {
		if _, err := Evaluate(context.Background(), Options{Sched: s, Costs: Unit()}); err != nil {
			t.Fatal(err)
		}
	}
	requireSameResult(t, full, got, "evaluate after pool reuse")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Evaluate(ctx, opt); !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("cancelled Evaluate: got %v, want ErrCancelled", err)
	}
}

// TestEvaluateManyMatchesRun pins batched evaluation: positional results
// identical to per-schedule Run, nil entries for broken schedules, across
// worker counts.
func TestEvaluateManyMatchesRun(t *testing.T) {
	base, err := sched.MEPipe(4, 1, 2, 4, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Costs: Unit(), MakespanOnly: true}
	rng := sessLCG(7)
	var scheds []*sched.Schedule
	cur := sessClone(base)
	for i := 0; i < 40; i++ {
		k := rng.next(cur.P)
		ops := cur.Stages[k]
		sessDisplace(ops, rng.next(len(ops)), rng.next(len(ops)))
		scheds = append(scheds, sessClone(cur))
	}
	scheds[5] = nil // must yield a nil result, not an error
	other, err := sched.DAPPLE(4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	scheds[11] = other // shape change mid-batch forces a worker rebind
	want := make([]*Result, len(scheds))
	for i, s := range scheds {
		if s == nil {
			continue
		}
		o := opt
		o.Sched = s
		want[i], _ = Run(o) // nil on deadlocked orders, matching EvaluateMany
	}
	for _, workers := range []int{1, 4} {
		got, err := EvaluateMany(context.Background(), scheds, opt, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(scheds) {
			t.Fatalf("workers=%d: %d results for %d schedules", workers, len(got), len(scheds))
		}
		for i := range got {
			if (want[i] == nil) != (got[i] == nil) {
				t.Fatalf("workers=%d: entry %d nil mismatch (want nil=%v)", workers, i, want[i] == nil)
			}
			if want[i] != nil {
				requireSameResult(t, want[i], got[i], "batch entry")
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvaluateMany(ctx, scheds, opt, 2); !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("cancelled EvaluateMany: got %v, want ErrCancelled", err)
	}
	if _, err := EvaluateMany(context.Background(), scheds, Options{Costs: Unit(), Trace: nopSink{}}, 2); !errors.Is(err, errs.ErrIncompatible) {
		t.Fatalf("traced EvaluateMany: got %v, want ErrIncompatible", err)
	}
}

// canonicalBenchWorkload is the P=4/S=2/N=6 point BENCH_sim.json reports.
func canonicalBenchWorkload(b *testing.B) (*sched.Schedule, Options) {
	b.Helper()
	s, err := sched.MEPipe(4, 1, 2, 6, 0, 4, nil)
	if err != nil {
		b.Fatal(err)
	}
	return s, Options{Sched: s, Costs: Unit(), MakespanOnly: true}
}

func benchCandidates(b *testing.B, base *sched.Schedule, n int) []*sched.Schedule {
	b.Helper()
	rng := sessLCG(3)
	cur := sessClone(base)
	out := make([]*sched.Schedule, 0, n)
	for len(out) < n {
		k := rng.next(cur.P)
		ops := cur.Stages[k]
		sessDisplace(ops, rng.next(len(ops)), rng.next(len(ops)))
		if _, err := Run(Options{Sched: cur, Costs: Unit(), MakespanOnly: true}); err != nil {
			continue
		}
		out = append(out, sessClone(cur))
	}
	return out
}

func BenchmarkFullReplay(b *testing.B) {
	base, opt := canonicalBenchWorkload(b)
	cands := benchCandidates(b, base, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := opt
		o.Sched = cands[i%len(cands)]
		if _, err := Run(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionEval(b *testing.B) {
	base, opt := canonicalBenchWorkload(b)
	cands := benchCandidates(b, base, 64)
	se, err := NewSession(opt)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range cands {
		if _, err := se.Eval(c); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := se.Eval(cands[i%len(cands)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateMany(b *testing.B) {
	base, opt := canonicalBenchWorkload(b)
	cands := benchCandidates(b, base, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(cands) {
		if _, err := EvaluateMany(context.Background(), cands, opt, 0); err != nil {
			b.Fatal(err)
		}
	}
}
