package sim

import "mepipe/internal/sched"

// UniformCosts pairs the unit-cost estimator with uniform memory
// footprints: every forward retains Act bytes, every split backward retains
// Grad bytes until its weight gradients finish. Setting Act to the
// schedule's per-family activation share (e.g. A/(v·s·p) units) reproduces
// the paper's analytic memory accounting exactly.
type UniformCosts struct {
	Est  sched.UniformEst
	Act  int64
	Grad int64
}

func (u UniformCosts) OpTime(stage int, op sched.Op) float64  { return u.Est.OpTime(stage, op) }
func (u UniformCosts) CommTime(f, t int, op sched.Op) float64 { return u.Est.CommTime(f, t, op) }
func (u UniformCosts) ActBytes(stage int, f sched.Op) int64   { return u.Act }
func (u UniformCosts) GradBytes(stage int, b sched.Op) int64  { return u.Grad }

// Unit returns uniform costs with unit durations and unit activation size.
func Unit() UniformCosts { return UniformCosts{Est: sched.Unit(), Act: 1} }
