package sim

import (
	"errors"
	"math"
	"testing"

	"mepipe/internal/errs"
	"mepipe/internal/sched"
)

// FuzzIncrementalEquivalence is the differential gate behind the Session
// fast path: for arbitrary shapes, cost models, budgets, modes, and move
// sequences, the incremental evaluation must be bitwise-identical to a
// fresh full replay — including agreeing on which orders deadlock and with
// what error class. Byte layout:
//
//	[0..5]  shape + mode header (P, S, N, split/pieces/dynamic/makespan,
//	        budget/tail/comm/zero-weight flags, budget level)
//	[6..]   move stream, 3 bytes per move: stage, from, to
func FuzzIncrementalEquivalence(f *testing.F) {
	f.Add([]byte{2, 1, 2, 0x01, 0x00, 4, 0, 1, 2, 1, 5, 0})
	f.Add([]byte{1, 0, 1, 0x03, 0x03, 3, 0, 3, 9, 1, 2, 2, 0, 0, 7})
	f.Add([]byte{2, 1, 0, 0x07, 0x05, 2, 1, 4, 4, 0, 0, 11, 1, 8, 2})
	f.Add([]byte{0, 1, 2, 0x0f, 0x0f, 6, 0, 1, 1, 2, 3, 4, 1, 0, 2})
	f.Add([]byte{1, 1, 1, 0x05, 0x0a, 5, 3, 2, 1, 0, 9, 9, 2, 4, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 9 {
			t.Skip()
		}
		p := 2 + int(data[0]%3)
		sl := 1 + int(data[1]%2)
		n := 2 + int(data[2]%3)
		split := data[3]&1 != 0
		pieces := 0
		if split && data[3]&2 != 0 {
			pieces = 2
		}
		dynamicW := split && data[3]&4 != 0
		makespanOnly := data[3]&8 != 0
		useBudget := data[4]&1 != 0
		useTail := data[4]&2 != 0
		est := sched.UniformEst{F: 1, BFused: 2, BAct: 1, W: 1, WPiece: 0.5}
		if data[4]&4 != 0 {
			est.Comm = 0.25
		}
		if data[4]&8 != 0 {
			// Zero-weight ops stress the cycle certificate: finish-only
			// propagation could silently converge through a 0-cost cycle.
			est.W, est.WPiece = 0, 0
		}
		sc, err := sched.SVPP(sched.SVPPOptions{
			P: p, V: 1, S: sl, N: n,
			Split: split, FineGrainedW: pieces,
			Reschedule: data[4]&16 != 0, Est: est,
		})
		if err != nil {
			t.Skip()
		}
		costs := UniformCosts{Est: est, Act: 3, Grad: 1}
		opt := Options{Costs: costs, DynamicW: dynamicW, MakespanOnly: makespanOnly}
		if useBudget {
			lvl := int64(2 + data[5]%14)
			b := make([]int64, p)
			for i := range b {
				b[i] = lvl
			}
			opt.ActBudget = b
		}
		if useTail {
			opt.TailTime = func(k int) float64 { return 0.5 * float64(k+1) }
		}
		opt.Sched = sc
		se, err := NewSession(opt)
		if err != nil {
			t.Fatalf("NewSession on generated schedule: %v", err)
		}
		cur := sessClone(sc)
		for i := 6; i+2 < len(data); i += 3 {
			k := int(data[i]) % p
			ops := cur.Stages[k]
			if len(ops) < 2 {
				continue
			}
			from := int(data[i+1]) % len(ops)
			to := int(data[i+2]) % len(ops)
			if from == to {
				// Degenerate displace; swap adjacents instead so every
				// step perturbs something.
				to = (from + 1) % len(ops)
			}
			sessDisplace(ops, from, to)
			fullOpt := opt
			fullOpt.Sched = cur
			full, fullErr := Run(fullOpt)
			inc, incErr := se.Eval(cur)
			if (fullErr == nil) != (incErr == nil) {
				t.Fatalf("move %d: full err %v, incremental err %v", i, fullErr, incErr)
			}
			if fullErr != nil {
				if errors.Is(fullErr, errs.ErrUncertified) != errors.Is(incErr, errs.ErrUncertified) ||
					errors.Is(fullErr, errs.ErrIncompatible) != errors.Is(incErr, errs.ErrIncompatible) {
					t.Fatalf("move %d: error classes differ: full %v, incremental %v", i, fullErr, incErr)
				}
				continue
			}
			fuzzSameResult(t, full, inc)
		}
	})
}

func fuzzSameResult(t *testing.T, full, inc *Result) {
	t.Helper()
	if math.Float64bits(full.IterTime) != math.Float64bits(inc.IterTime) ||
		math.Float64bits(full.BubbleRatio) != math.Float64bits(inc.BubbleRatio) ||
		full.PeakAct != inc.PeakAct ||
		full.OOM != inc.OOM || full.OOMStage != inc.OOMStage ||
		full.SpansRecorded != inc.SpansRecorded ||
		len(full.Stages) != len(inc.Stages) {
		t.Fatalf("aggregate mismatch:\nfull %+v\ninc  %+v", headline(full), headline(inc))
	}
	for k := range full.Stages {
		fs, is := &full.Stages[k], &inc.Stages[k]
		if math.Float64bits(fs.ComputeTime) != math.Float64bits(is.ComputeTime) ||
			math.Float64bits(fs.Finish) != math.Float64bits(is.Finish) ||
			fs.PeakAct != is.PeakAct || len(fs.Spans) != len(is.Spans) {
			t.Fatalf("stage %d mismatch: full {c=%v f=%v p=%d |s|=%d} inc {c=%v f=%v p=%d |s|=%d}",
				k, fs.ComputeTime, fs.Finish, fs.PeakAct, len(fs.Spans),
				is.ComputeTime, is.Finish, is.PeakAct, len(is.Spans))
		}
		for i := range fs.Spans {
			a, b := fs.Spans[i], is.Spans[i]
			if a.Op != b.Op ||
				math.Float64bits(a.Start) != math.Float64bits(b.Start) ||
				math.Float64bits(a.End) != math.Float64bits(b.End) {
				t.Fatalf("stage %d span %d: %+v != %+v", k, i, a, b)
			}
		}
	}
}

func headline(r *Result) map[string]any {
	return map[string]any{
		"iter": r.IterTime, "bubble": r.BubbleRatio, "peak": r.PeakAct,
		"oom": r.OOM, "oomStage": r.OOMStage, "spans": r.SpansRecorded,
	}
}
