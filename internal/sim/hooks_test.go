package sim

import (
	"testing"

	"mepipe/internal/sched"
)

// TestHookedCostsPassthrough: nil hooks are the identity wrapper, and the
// memory model always delegates.
func TestHookedCostsPassthrough(t *testing.T) {
	base := Unit()
	h := HookedCosts{Base: base}
	op := sched.Op{Kind: sched.F, Micro: 1}
	if h.OpTime(0, op) != base.OpTime(0, op) {
		t.Error("nil op hook changed OpTime")
	}
	if h.CommTime(0, 1, op) != base.CommTime(0, 1, op) {
		t.Error("nil comm hook changed CommTime")
	}
	if h.ActBytes(0, op) != base.ActBytes(0, op) || h.GradBytes(0, op) != base.GradBytes(0, op) {
		t.Error("byte model not delegated")
	}
}

// TestHookedCostsPerturbs: hooks see the base duration and replace it.
func TestHookedCostsPerturbs(t *testing.T) {
	base := Unit()
	op := sched.Op{Kind: sched.B}
	h := HookedCosts{
		Base: base,
		Op: func(stage int, o sched.Op, d float64) float64 {
			if stage == 1 && o == op {
				return d + 3
			}
			return d
		},
		Comm: func(from, to int, o sched.Op, d float64) float64 { return 2 * d },
	}
	if got, want := h.OpTime(1, op), base.OpTime(1, op)+3; got != want {
		t.Errorf("OpTime = %v, want %v", got, want)
	}
	if got, want := h.OpTime(0, op), base.OpTime(0, op); got != want {
		t.Errorf("unhooked OpTime = %v, want %v", got, want)
	}
	if got, want := h.CommTime(0, 1, op), 2*base.CommTime(0, 1, op); got != want {
		t.Errorf("CommTime = %v, want %v", got, want)
	}
}

type bytesCosts struct{ UniformCosts }

func (bytesCosts) CommBytes(from, to int, op sched.Op) int64 { return 4096 }

// TestHookedCostsCommBytes: the wrapper forwards BytesEstimator when the
// base has one and reports zero bytes otherwise — the simulator's own
// fallback for cost models without a byte model.
func TestHookedCostsCommBytes(t *testing.T) {
	op := sched.Op{Kind: sched.F}
	with := HookedCosts{Base: bytesCosts{Unit()}}
	if got := with.CommBytes(0, 1, op); got != 4096 {
		t.Errorf("CommBytes = %d, want 4096", got)
	}
	without := HookedCosts{Base: Unit()}
	if got := without.CommBytes(0, 1, op); got != 0 {
		t.Errorf("CommBytes without base estimator = %d, want 0", got)
	}
}
