package sim

// The frozen pre-sweep evaluation path, kept verbatim from the tree as it
// stood before the streaming sweep engine landed. strategy.SearchReference
// simulates through EvaluateReference so that (a) mepipe-bench's reported
// speedup compares the sweep engine against the code it actually replaced,
// measured live in the same process, and (b) the equivalence tests pin the
// fast path against a genuinely independent implementation — refSession
// shares none of the dense index, dependency-table, or micro-invariance
// machinery the optimized Session uses.
//
// Nothing here is reachable from production paths; do not "optimize" this
// file — its value is that it does not change.

import (
	"context"
	"fmt"
	"math"
	"sync"

	"mepipe/internal/errs"
	"mepipe/internal/sched"
)

// refSessionPool recycles refSession capacity across EvaluateReference
// calls, mirroring the sessionPool the pre-sweep Evaluate used.
var refSessionPool = sync.Pool{New: func() any { return &refSession{} }}

// EvaluateReference is the pre-sweep sim.Evaluate, frozen: RunContext
// through the (map-indexed) session fast path. The returned Result is the
// caller's to keep.
//
//mepipe:deterministic
func EvaluateReference(ctx context.Context, opt Options) (*Result, error) {
	if opt.Trace != nil {
		return RunContext(ctx, opt)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sim: evaluate %w: %v", errs.ErrCancelled, err)
	}
	se := refSessionPool.Get().(*refSession)
	defer refSessionPool.Put(se)
	if err := se.init(opt); err != nil {
		return nil, err
	}
	r, err := se.Eval(opt.Sched)
	if err != nil {
		return nil, err
	}
	return cloneResult(r), nil
}

// refSession is a reusable fast-evaluation context over one schedule shape: it
// pins the cost model, budgets, and op identities once, then re-simulates
// edited copies of the schedule incrementally. The schedule optimizer's
// moves (swap, shift, rebalance) touch a handful of list positions; instead
// of replaying every op, Eval diffs the new order against the previous one
// and re-propagates finish times only through the affected window. The
// result is guaranteed bitwise-identical to sim.Run on the same Options —
// the differential fuzzer in fuzz_test.go holds that gate closed.
//
// A refSession is not safe for concurrent use; EvaluateMany runs one per
// worker. All slices inside the returned Result are owned by the session
// and are overwritten by the next Eval — callers that retain results across
// evaluations must copy them first.
type refSession struct {
	opt  Options
	base *sched.Schedule

	// shape, pinned at bind time
	P, V, S, N int
	splitBW    bool
	wPieces    int
	dynamicW   bool
	record     bool // spans recorded (i.e. !MakespanOnly; sessions never trace)
	hasBudget  bool
	budget     []int64
	hasTail    bool
	tailV      []float64

	// op identity tables. Every op in the bound schedule gets a dense id;
	// moves permute positions but never identities, so the dependency
	// graph, durations, and memory charges below are computed once.
	n      int
	ids    map[opRef]int32 // (stage, op) -> id
	famIDs map[opRef]int32 // (stage, op.Key()) -> family slot
	nfam   int
	opsl   []sched.Op // id -> op
	stg    []int32    // id -> stage
	pos    []int32    // id -> current position in its stage list
	order  [][]int32  // stage -> position -> id
	famID  []int32    // id -> family slot
	dur    []float64  // id -> op duration
	memB   []int64    // id -> bytes allocated at execution (F: act, BAct: grad)

	// dependency edges (identity-based, immutable across moves)
	depOff  []int32 // id -> [depOff[id], depOff[id+1]) into depID/depComm
	depID   []int32
	depComm []float64 // communication delay, 0 for same-stage edges
	sucOff  []int32   // reverse edges: id -> dependents
	sucID   []int32

	// derived weight-gradient work per BAct id (dynamic mode only)
	wOff []int32
	wIDs []int32

	// solved static state: start/finish per op, plus a longest-path height
	// used as the cycle certificate (heights have no fixed point on a
	// cycle, so incremental propagation cannot silently converge through
	// one — it blows its pop budget and the dense sweep catches it).
	start  []float64
	finish []float64
	height []int32

	// worklist (FIFO) for incremental propagation
	queue  []int32
	qhead  int
	inQ    []uint32
	qEpoch uint32

	// dense-sweep scratch (Kahn)
	rem   []int32
	stack []int32

	// diff scratch: window multiset check via epoch-stamped counters
	seenCnt   []int32
	seenEp    []uint32
	seenEpoch uint32

	// per-stage cached aggregates for the static path; order-only, so
	// they survive evals that do not touch the stage
	stDirty   []bool
	stCompute []float64
	stPeak    []int64
	stOOMPos  []int32 // first over-budget alloc position, -1 if none

	// family scratch shared by the static memory scan and the dynamic
	// engine (family ids are stage-disjoint, so per-use epochs never mix)
	famAcc   []int64
	famCnt   []int32
	famEp    []uint32
	famEpoch uint32

	// placement fingerprint: moves never change placement, and the dep
	// rules only consult Place through Global/Host, so semantic equality
	// of those maps is full dependency-equivalence
	placeGlobal []int32 // k*V+j -> global chunk
	placeHost   []int32 // g -> stage

	depScratch []sched.Dep
	spanBuf    [][]Span
	res        Result
	eng        *refEngState

	valid  bool // start/finish/height solve the current order
	resync bool // orders may be inconsistent; rebuild from the schedule
}

// init (re)binds the session, reusing any capacity from a previous binding.
//
//mepipe:coldalloc binding sizes every table once; Eval reuses the capacity, so the steady state never allocates
func (se *refSession) init(opt Options) error {
	if opt.Trace != nil {
		return fmt.Errorf("sim: sessions cannot trace (use RunContext for traced runs): %w", errs.ErrIncompatible)
	}
	s := opt.Sched
	if s == nil {
		return fmt.Errorf("sim: nil schedule: %w", errs.ErrIncompatible)
	}
	// The pre-sweep Validate: the frozen map-based passes, not the
	// current dense ones — bind-time validation cost is part of what the
	// baseline measures.
	if err := sched.ValidateReference(s); err != nil {
		return err
	}
	if opt.DynamicW && !s.SplitBW {
		return fmt.Errorf("sim: dynamic weight-gradient mode requires a split-backward schedule: %w", errs.ErrIncompatible)
	}
	if opt.ActBudget != nil && len(opt.ActBudget) != s.P {
		return fmt.Errorf("sim: ActBudget has %d entries, want %d: %w", len(opt.ActBudget), s.P, errs.ErrIncompatible)
	}
	if s.Place == nil {
		return fmt.Errorf("sim: schedule has no placement: %w", errs.ErrIncompatible)
	}
	se.opt = opt
	se.base = s
	se.P, se.V, se.S, se.N = s.P, s.V, s.S, s.N
	se.splitBW, se.wPieces = s.SplitBW, s.WPieces
	se.dynamicW = opt.DynamicW
	se.record = !opt.MakespanOnly
	se.hasBudget = opt.ActBudget != nil
	se.budget = append(se.budget[:0], opt.ActBudget...)
	se.hasTail = opt.TailTime != nil
	se.tailV = sgrow(se.tailV, s.P)
	for k := 0; k < s.P; k++ {
		if se.hasTail {
			se.tailV[k] = opt.TailTime(k)
		} else {
			se.tailV[k] = 0
		}
	}

	n := 0
	for k := range s.Stages {
		n += len(s.Stages[k])
	}
	se.n = n
	if se.ids == nil {
		se.ids = make(map[opRef]int32, n)
	} else {
		clear(se.ids)
	}
	if se.famIDs == nil {
		se.famIDs = make(map[opRef]int32, n)
	} else {
		clear(se.famIDs)
	}
	se.opsl = sgrow(se.opsl, n)
	se.stg = sgrow(se.stg, n)
	se.pos = sgrow(se.pos, n)
	se.famID = sgrow(se.famID, n)
	se.dur = sgrow(se.dur, n)
	se.memB = sgrow(se.memB, n)
	se.order = sgrow(se.order, s.P)
	id, nfam := int32(0), int32(0)
	for k := range s.Stages {
		ops := s.Stages[k]
		ord := sgrow(se.order[k], len(ops))
		for p := range ops {
			op := ops[p]
			ref := opRef{k, op}
			if _, dup := se.ids[ref]; dup {
				return fmt.Errorf("sim: session: duplicate op %v@stage%d: %w", op, k, errs.ErrIncompatible)
			}
			se.ids[ref] = id
			se.opsl[id] = op
			se.stg[id] = int32(k)
			se.pos[id] = int32(p)
			ord[p] = id
			fref := opRef{k, op.Key()}
			f, okf := se.famIDs[fref]
			if !okf {
				f = nfam
				se.famIDs[fref] = f
				nfam++
			}
			se.famID[id] = f
			se.dur[id] = opt.Costs.OpTime(k, op)
			switch op.Kind {
			case sched.F:
				se.memB[id] = opt.Costs.ActBytes(k, op)
			case sched.BAct:
				se.memB[id] = opt.Costs.GradBytes(k, op)
			default:
				se.memB[id] = 0
			}
			id++
		}
		se.order[k] = ord
	}
	se.nfam = int(nfam)

	// Dependency edges, resolved to dense ids with communication delays
	// folded in (0 for same-stage edges keeps the max loop branch-free
	// without perturbing bits: finish times are never negative zero).
	se.depOff = sgrow(se.depOff, n+1)
	se.depID = se.depID[:0]
	se.depComm = se.depComm[:0]
	for i := 0; i < n; i++ {
		se.depOff[i] = int32(len(se.depID))
		k := int(se.stg[i])
		op := se.opsl[i]
		se.depScratch = s.Deps(se.depScratch[:0], k, op)
		for _, d := range se.depScratch {
			j, okd := se.ids[opRef{d.Stage, d.Op}]
			if !okd {
				return fmt.Errorf("sim: session: op %v@stage%d depends on absent op %v@stage%d: %w", op, k, d.Op, d.Stage, errs.ErrIncompatible)
			}
			comm := 0.0
			if d.Stage != k {
				comm = opt.Costs.CommTime(d.Stage, k, d.Op)
			}
			se.depID = append(se.depID, j)
			se.depComm = append(se.depComm, comm)
		}
	}
	se.depOff[n] = int32(len(se.depID))
	se.sucOff = sgrow(se.sucOff, n+1)
	for i := range se.sucOff {
		se.sucOff[i] = 0
	}
	for _, j := range se.depID {
		se.sucOff[j+1]++
	}
	for i := 0; i < n; i++ {
		se.sucOff[i+1] += se.sucOff[i]
	}
	se.sucID = sgrow(se.sucID, len(se.depID))
	se.rem = sgrow(se.rem, n) // doubles as the fill cursor here
	for i := 0; i < n; i++ {
		se.rem[i] = se.sucOff[i]
	}
	for i := 0; i < n; i++ {
		for e := se.depOff[i]; e < se.depOff[i+1]; e++ {
			j := se.depID[e]
			se.sucID[se.rem[j]] = int32(i)
			se.rem[j]++
		}
	}

	if se.dynamicW {
		se.wOff = sgrow(se.wOff, n+1)
		se.wIDs = se.wIDs[:0]
		for i := 0; i < n; i++ {
			se.wOff[i] = int32(len(se.wIDs))
			if se.opsl[i].Kind != sched.BAct {
				continue
			}
			k := int(se.stg[i])
			b := se.opsl[i]
			if se.wPieces > 0 {
				for p := 0; p < se.wPieces; p++ {
					probe := b
					probe.Kind = sched.WPiece
					probe.Piece = p
					j, okw := se.ids[opRef{k, probe}]
					if !okw {
						return fmt.Errorf("sim: session: family %v@stage%d is missing piece %d: %w", b.Key(), k, p, errs.ErrIncompatible)
					}
					se.wIDs = append(se.wIDs, j)
				}
			} else {
				probe := b
				probe.Kind = sched.W
				j, okw := se.ids[opRef{k, probe}]
				if !okw {
					return fmt.Errorf("sim: session: family %v@stage%d is missing its W op: %w", b.Key(), k, errs.ErrIncompatible)
				}
				se.wIDs = append(se.wIDs, j)
			}
		}
		se.wOff[n] = int32(len(se.wIDs))
	}

	se.placeGlobal = sgrow(se.placeGlobal, se.P*se.V)
	for k := 0; k < se.P; k++ {
		for j := 0; j < se.V; j++ {
			se.placeGlobal[k*se.V+j] = int32(s.Place.Global(k, j))
		}
	}
	se.placeHost = sgrow(se.placeHost, 2*se.P*se.V)
	for g := 0; g < se.P*se.V; g++ {
		hk, hl := s.Place.Host(g)
		se.placeHost[2*g] = int32(hk)
		se.placeHost[2*g+1] = int32(hl)
	}

	se.start = sgrow(se.start, n)
	se.finish = sgrow(se.finish, n)
	se.height = sgrow(se.height, n)
	se.inQ = sgrow(se.inQ, n)
	se.seenCnt = sgrow(se.seenCnt, n)
	se.seenEp = sgrow(se.seenEp, n)
	se.stack = se.stack[:0]
	se.famAcc = sgrow(se.famAcc, se.nfam)
	se.famCnt = sgrow(se.famCnt, se.nfam)
	se.famEp = sgrow(se.famEp, se.nfam)
	se.stDirty = sgrow(se.stDirty, se.P)
	se.stCompute = sgrow(se.stCompute, se.P)
	se.stPeak = sgrow(se.stPeak, se.P)
	se.stOOMPos = sgrow(se.stOOMPos, se.P)
	for k := 0; k < se.P; k++ {
		se.stDirty[k] = true
	}
	se.res.Stages = sgrow(se.res.Stages, se.P)
	se.spanBuf = sgrow(se.spanBuf, se.P)
	se.queue = se.queue[:0]
	se.qhead = 0
	// Bump every epoch past any stamp a previous binding left in reused
	// arrays; new array regions are zero, which the bumped counters also
	// exceed.
	se.qEpoch++
	se.seenEpoch++
	se.famEpoch++
	se.valid = false
	se.resync = false
	return nil
}

// Eval re-simulates s, which must be a per-stage permutation of the bound
// schedule's ops (shape and placement included — anything else returns a
// wrapped errs.ErrIncompatible, telling callers to rebuild the session).
// Orders that deadlock return a wrapped errs.ErrUncertified, exactly as
// sim.Run reports them through Validate.
//
// The returned Result is owned by the session and is overwritten by the
// next Eval.
//
//mepipe:deterministic
func (se *refSession) Eval(s *sched.Schedule) (*Result, error) {
	if err := se.compat(s); err != nil {
		return nil, err
	}
	se.qEpoch++
	se.queue = se.queue[:0]
	se.qhead = 0
	if se.resync {
		if err := se.remapAll(s); err != nil {
			return nil, err
		}
	} else if err := se.diff(s); err != nil {
		return nil, err
	}
	if !se.valid {
		if err := se.sweep(); err != nil {
			return nil, err
		}
	} else if se.qhead < len(se.queue) {
		if !se.propagate() {
			if err := se.sweep(); err != nil {
				return nil, err
			}
		}
	}
	se.valid = true
	if se.dynamicW {
		if err := se.runEngine(); err != nil {
			return nil, err
		}
		se.assembleDynamic()
		return &se.res, nil
	}
	se.memScan()
	se.assembleStatic()
	return &se.res, nil
}

// compat verifies s shares the bound schedule's shape, per-stage op counts,
// and placement maps. It never mutates session state.
func (se *refSession) compat(s *sched.Schedule) error {
	if s == nil {
		return fmt.Errorf("sim: nil schedule: %w", errs.ErrIncompatible)
	}
	if s.P != se.P || s.V != se.V || s.S != se.S || s.N != se.N ||
		s.SplitBW != se.splitBW || s.WPieces != se.wPieces || len(s.Stages) != se.P {
		return fmt.Errorf("sim: session bound to %s, got %s: %w", se.base, s, errs.ErrIncompatible)
	}
	for k := range s.Stages {
		if len(s.Stages[k]) != len(se.order[k]) {
			return fmt.Errorf("sim: session: stage %d has %d ops, bound schedule has %d: %w", k, len(s.Stages[k]), len(se.order[k]), errs.ErrIncompatible)
		}
	}
	if s.Place == nil {
		return fmt.Errorf("sim: schedule has no placement: %w", errs.ErrIncompatible)
	}
	for k := 0; k < se.P; k++ {
		for j := 0; j < se.V; j++ {
			if int32(s.Place.Global(k, j)) != se.placeGlobal[k*se.V+j] {
				return fmt.Errorf("sim: session: placement differs at stage %d chunk %d: %w", k, j, errs.ErrIncompatible)
			}
		}
	}
	for g := 0; g < se.P*se.V; g++ {
		hk, hl := s.Place.Host(g)
		if int32(hk) != se.placeHost[2*g] || int32(hl) != se.placeHost[2*g+1] {
			return fmt.Errorf("sim: session: placement host differs for global chunk %d: %w", g, errs.ErrIncompatible)
		}
	}
	return nil
}

func (se *refSession) touchSeen(id int32) {
	if se.seenEp[id] != se.seenEpoch {
		se.seenEp[id] = se.seenEpoch
		se.seenCnt[id] = 0
	}
}

// diff aligns the session's order tables with s stage by stage: matching
// prefixes and suffixes bound the edited window, an epoch-stamped counter
// checks the window is a permutation, and the window's ops (plus the one
// just after it, whose list predecessor changed) seed the worklist.
func (se *refSession) diff(s *sched.Schedule) error {
	for k := 0; k < se.P; k++ {
		ord := se.order[k]
		ops := s.Stages[k]
		lo := 0
		for lo < len(ops) && se.opsl[ord[lo]] == ops[lo] {
			lo++
		}
		if lo == len(ops) {
			continue
		}
		hi := len(ops) - 1
		for hi > lo && se.opsl[ord[hi]] == ops[hi] {
			hi--
		}
		se.seenEpoch++
		for p := lo; p <= hi; p++ {
			cid := ord[p]
			se.touchSeen(cid)
			se.seenCnt[cid]++
		}
		ok := true
		for p := lo; p <= hi; p++ {
			cid, found := se.ids[opRef{k, ops[p]}]
			if !found {
				ok = false
				break
			}
			se.touchSeen(cid)
			se.seenCnt[cid]--
			if se.seenCnt[cid] < 0 {
				ok = false
				break
			}
			ord[p] = cid
			se.pos[cid] = int32(p)
		}
		if !ok {
			// The order tables are now partially rewritten; remap from
			// scratch on the next Eval.
			se.resync = true
			se.valid = false
			return fmt.Errorf("sim: session: stage %d op list is not a permutation of the bound schedule: %w", k, errs.ErrIncompatible)
		}
		se.stDirty[k] = true
		if se.valid {
			end := hi + 1
			if end > len(ops)-1 {
				end = len(ops) - 1
			}
			for p := lo; p <= end; p++ {
				se.push(ord[p])
			}
		}
	}
	return nil
}

// remapAll rebuilds order/pos from s after a failed diff, verifying the
// whole schedule is a per-stage bijection onto the bound op set.
func (se *refSession) remapAll(s *sched.Schedule) error {
	se.seenEpoch++
	for k := 0; k < se.P; k++ {
		ord := se.order[k]
		ops := s.Stages[k]
		for p := range ops {
			cid, found := se.ids[opRef{k, ops[p]}]
			if !found || se.seenEp[cid] == se.seenEpoch {
				return fmt.Errorf("sim: session: stage %d op list is not a permutation of the bound schedule: %w", k, errs.ErrIncompatible)
			}
			se.seenEp[cid] = se.seenEpoch
			ord[p] = cid
			se.pos[cid] = int32(p)
		}
		se.stDirty[k] = true
	}
	se.resync = false
	se.valid = false
	return nil
}

func (se *refSession) push(id int32) {
	if se.inQ[id] == se.qEpoch {
		return
	}
	se.inQ[id] = se.qEpoch
	se.queue = append(se.queue, id)
}

// recompute solves one op's recurrence from its current predecessors:
//
//	start  = max(finish[list predecessor], max over deps(finish + comm))
//	finish = start + dur
//	height = 1 + max over predecessors(height)   (sources get 0)
//
// and reports whether finish or height changed. The float operations mirror
// the runner's readyTime/execute exactly (same comparison order, same
// math.Max), which is what makes incremental results bitwise-identical.
func (se *refSession) recompute(id int32) bool {
	k := int(se.stg[id])
	p := int(se.pos[id])
	prevFin := 0.0
	h := int32(-1)
	if p > 0 {
		pv := se.order[k][p-1]
		prevFin = se.finish[pv]
		h = se.height[pv]
	}
	t := 0.0
	for e := se.depOff[id]; e < se.depOff[id+1]; e++ {
		d := se.depID[e]
		f := se.finish[d] + se.depComm[e]
		if f > t {
			t = f
		}
		if se.height[d] > h {
			h = se.height[d]
		}
	}
	st := math.Max(prevFin, t)
	fin := st + se.dur[id]
	h++
	changed := math.Float64bits(fin) != math.Float64bits(se.finish[id]) || h != se.height[id]
	se.start[id] = st
	se.finish[id] = fin
	se.height[id] = h
	return changed
}

// propagate drains the worklist seeded by diff, pushing an op's list
// successor and dependents whenever its finish or height changed. On a DAG
// this chaotic iteration reaches the unique fixed point of the recurrence —
// the same values a full replay computes. On a cyclic order heights grow
// without bound, so the pop budget trips and the caller falls back to the
// dense sweep, which certifies the cycle. Returns false on budget trip.
//
//mepipe:hotpath
func (se *refSession) propagate() bool {
	budget := 16*se.n + 64
	pops := 0
	for se.qhead < len(se.queue) {
		if pops >= budget {
			return false
		}
		pops++
		id := se.queue[se.qhead]
		se.qhead++
		se.inQ[id] = se.qEpoch - 1
		if se.recompute(id) {
			k := int(se.stg[id])
			nx := int(se.pos[id]) + 1
			ord := se.order[k]
			if nx < len(ord) {
				se.push(ord[nx])
			}
			for e := se.sucOff[id]; e < se.sucOff[id+1]; e++ {
				se.push(se.sucID[e])
			}
		}
	}
	se.queue = se.queue[:0]
	se.qhead = 0
	return true
}

// sweep recomputes every op in Kahn order over program-order and dependency
// edges. It is the first-evaluation path, the resync path, and the fallback
// that turns a non-converging propagation into a certified cycle error.
func (se *refSession) sweep() error {
	se.qEpoch++
	se.queue = se.queue[:0]
	se.qhead = 0
	for i := 0; i < se.n; i++ {
		d := se.depOff[i+1] - se.depOff[i]
		if se.pos[i] > 0 {
			d++
		}
		se.rem[i] = d
	}
	se.stack = se.stack[:0]
	for i := 0; i < se.n; i++ {
		if se.rem[i] == 0 {
			se.stack = append(se.stack, int32(i))
		}
	}
	processed := 0
	for len(se.stack) > 0 {
		id := se.stack[len(se.stack)-1]
		se.stack = se.stack[:len(se.stack)-1]
		se.recompute(id)
		processed++
		k := int(se.stg[id])
		nx := int(se.pos[id]) + 1
		ord := se.order[k]
		if nx < len(ord) {
			j := ord[nx]
			se.rem[j]--
			if se.rem[j] == 0 {
				se.stack = append(se.stack, j)
			}
		}
		for e := se.sucOff[id]; e < se.sucOff[id+1]; e++ {
			j := se.sucID[e]
			se.rem[j]--
			if se.rem[j] == 0 {
				se.stack = append(se.stack, j)
			}
		}
	}
	if processed != se.n {
		se.valid = false
		return fmt.Errorf("sim: session: %d of %d ops are on a program-order/dependency cycle (the order deadlocks): %w", se.n-processed, se.n, errs.ErrUncertified)
	}
	se.valid = true
	return nil
}

func (se *refSession) touchFam(f int32) {
	if se.famEp[f] != se.famEpoch {
		se.famEp[f] = se.famEpoch
		se.famAcc[f] = 0
		se.famCnt[f] = 0
	}
}

// memScan replays each dirty stage's alloc/free sequence in list order —
// memory in static mode depends only on the per-stage order, never on
// times — caching compute time, peak bytes, and the first over-budget
// position for assembly.
func (se *refSession) memScan() {
	for k := 0; k < se.P; k++ {
		if !se.stDirty[k] {
			continue
		}
		se.stDirty[k] = false
		se.famEpoch++
		ord := se.order[k]
		compute := 0.0
		var live, peak int64
		oomPos := int32(-1)
		var bLim int64
		if se.hasBudget {
			bLim = se.budget[k]
		}
		for p := 0; p < len(ord); p++ {
			id := ord[p]
			compute += se.dur[id]
			f := se.famID[id]
			se.touchFam(f)
			switch se.opsl[id].Kind {
			case sched.F, sched.BAct:
				b := se.memB[id]
				se.famAcc[f] += b
				live += b
				if live > peak {
					peak = live
				}
				if se.hasBudget && live > bLim && oomPos < 0 {
					oomPos = int32(p)
				}
			case sched.B, sched.W:
				live -= se.famAcc[f]
				se.famAcc[f] = 0
			case sched.WPiece:
				se.famCnt[f]++
				if int(se.famCnt[f]) == se.wPieces {
					live -= se.famAcc[f]
					se.famAcc[f] = 0
				}
			}
		}
		se.stCompute[k] = compute
		se.stPeak[k] = peak
		se.stOOMPos[k] = oomPos
	}
}

// assembleStatic writes the Result exactly as the runner's result() does,
// in the same float-operation order. The runner flags OOM at the first
// over-budget allocation in global execution order; with static execution
// sorted by (start, stage), that is the stage minimizing (start of its
// first over-budget op, stage index).
func (se *refSession) assembleStatic() {
	res := &se.res
	res.SpansRecorded = se.record
	res.PeakAct = 0
	res.OOM = false
	res.OOMStage = 0
	end := 0.0
	for k := 0; k < se.P; k++ {
		ord := se.order[k]
		fre := 0.0
		if len(ord) > 0 {
			fre = se.finish[ord[len(ord)-1]]
		}
		fin := fre
		if se.hasTail {
			fin += se.tailV[k]
		}
		var spans []Span
		if se.record {
			buf := se.spanBuf[k][:0]
			for _, id := range ord {
				buf = append(buf, Span{Op: se.opsl[id], Start: se.start[id], End: se.finish[id]})
			}
			se.spanBuf[k] = buf
			spans = buf
		}
		res.Stages[k] = StageResult{Spans: spans, ComputeTime: se.stCompute[k], Finish: fin, PeakAct: se.stPeak[k]}
		if fin > end {
			end = fin
		}
		if se.stPeak[k] > res.PeakAct {
			res.PeakAct = se.stPeak[k]
		}
	}
	res.IterTime = end
	busy := 0.0
	for k := 0; k < se.P; k++ {
		busy += se.stCompute[k]
		if se.hasTail {
			busy += se.tailV[k]
		}
	}
	res.BubbleRatio = 0
	if end > 0 {
		res.BubbleRatio = 1 - busy/(float64(se.P)*end)
	}
	if se.hasBudget {
		at := -1
		bestStart := 0.0
		for k := 0; k < se.P; k++ {
			p := se.stOOMPos[k]
			if p < 0 {
				continue
			}
			s0 := se.start[se.order[k][p]]
			if at < 0 || s0 < bestStart {
				at = k
				bestStart = s0
			}
		}
		if at >= 0 {
			res.OOM = true
			res.OOMStage = at
		}
	}
}

// refEngState is the refSession's dynamic-mode (§5) execution engine: a dense
// replay of the runner's event loop over the session's id tables. Dynamic W
// drain order depends on runtime decisions across stages, so there is no
// local window to re-propagate — instead the engine mirrors the runner
// op-for-op (same tie-breaks, same math.Max calls, same epsilon) on arrays
// that are allocated once and reused across Evals.
type refEngState struct {
	cursor []int // per stage: position of the next scheduled (non-W) op
	free   []float64
	comp   []float64
	live   []int64
	peak   []int64
	drain  []int64
	wq     [][]refWRef
	wqHead []int
	fin    []float64
	done   []uint32
	ep     uint32
	oom    bool
	oomAt  int
}

type refWRef struct {
	id    int32
	ready float64
}

func (se *refSession) runEngine() error {
	e := se.eng
	if e == nil {
		e = &refEngState{}
		se.eng = e
	}
	e.cursor = sgrow(e.cursor, se.P)
	e.free = sgrow(e.free, se.P)
	e.comp = sgrow(e.comp, se.P)
	e.live = sgrow(e.live, se.P)
	e.peak = sgrow(e.peak, se.P)
	e.drain = sgrow(e.drain, se.P)
	e.wq = sgrow(e.wq, se.P)
	e.wqHead = sgrow(e.wqHead, se.P)
	e.fin = sgrow(e.fin, se.n)
	e.done = sgrow(e.done, se.n)
	e.ep++
	se.famEpoch++
	e.oom = false
	e.oomAt = 0
	for k := 0; k < se.P; k++ {
		e.cursor[k] = 0
		se.engSkip(k)
		e.free[k] = 0
		e.comp[k] = 0
		e.live[k] = 0
		e.peak[k] = 0
		e.drain[k] = 0
		e.wq[k] = e.wq[k][:0]
		e.wqHead[k] = 0
		if se.record {
			se.spanBuf[k] = se.spanBuf[k][:0]
		}
	}
	done := 0
	for done < se.n {
		k, ok := se.engNext()
		if !ok {
			return fmt.Errorf("sim: session: deadlock with %d/%d ops executed (schedule order violates dependencies): %w", done, se.n, errs.ErrUncertified)
		}
		done += se.engExecute(k)
	}
	return nil
}

// engSkip advances stage k's cursor past statically-placed W/WPiece entries;
// the engine executes those from the per-stage queue instead, exactly as
// the runner strips them from its order.
func (se *refSession) engSkip(k int) {
	e := se.eng
	ord := se.order[k]
	c := e.cursor[k]
	for c < len(ord) {
		kd := se.opsl[ord[c]].Kind
		if kd != sched.W && kd != sched.WPiece {
			break
		}
		c++
	}
	e.cursor[k] = c
}

// engNext mirrors the runner's nextStage: earliest next start wins, ties go
// to the lowest stage.
func (se *refSession) engNext() (int, bool) {
	e := se.eng
	best, bestStart, found := -1, math.Inf(1), false
	for k := 0; k < se.P; k++ {
		if e.cursor[k] >= len(se.order[k]) && e.wqHead[k] >= len(e.wq[k]) {
			continue
		}
		start, ok := se.engStart(k)
		if !ok {
			continue
		}
		if start < bestStart {
			best, bestStart, found = k, start, true
		}
	}
	return best, found
}

func (se *refSession) engStart(k int) (float64, bool) {
	e := se.eng
	if e.cursor[k] < len(se.order[k]) {
		id := se.order[k][e.cursor[k]]
		rt, ok := se.engReady(id)
		if ok {
			return math.Max(e.free[k], rt), true
		}
		// Next scheduled op blocked: a queued W can still run.
	}
	if e.wqHead[k] < len(e.wq[k]) {
		return math.Max(e.free[k], e.wq[k][e.wqHead[k]].ready), true
	}
	return 0, false
}

func (se *refSession) engReady(id int32) (float64, bool) {
	e := se.eng
	t := 0.0
	for ed := se.depOff[id]; ed < se.depOff[id+1]; ed++ {
		d := se.depID[ed]
		if e.done[d] != e.ep {
			return 0, false
		}
		f := e.fin[d] + se.depComm[ed]
		if f > t {
			t = f
		}
	}
	return t, true
}

func (se *refSession) engExecute(k int) int {
	e := se.eng
	if e.cursor[k] < len(se.order[k]) {
		id := se.order[k][e.cursor[k]]
		rt, ok := se.engReady(id)
		if ok {
			start := math.Max(e.free[k], rt)
			if n := se.engFillGap(k, start, id); n > 0 {
				return n
			}
			e.cursor[k]++
			se.engSkip(k)
			se.engRunOp(k, id, start)
			return 1
		}
		if e.wqHead[k] < len(e.wq[k]) {
			return se.engPopW(k)
		}
		return 0
	}
	if e.wqHead[k] < len(e.wq[k]) {
		return se.engPopW(k)
	}
	return 0
}

// engFillGap mirrors the runner's fillGap: drain a queued W that fits the
// stall before start, or — under memory pressure that draining can actually
// cover — before admitting an allocating op.
func (se *refSession) engFillGap(k int, start float64, nextID int32) int {
	e := se.eng
	if e.wqHead[k] >= len(e.wq[k]) {
		return 0
	}
	w := e.wq[k][e.wqHead[k]]
	wStart := math.Max(e.free[k], w.ready)
	dur := se.dur[w.id]
	const eps = 1e-9
	if wStart+dur <= start+eps {
		return se.engPopW(k)
	}
	if se.hasBudget {
		var need int64
		switch se.opsl[nextID].Kind {
		case sched.F, sched.BAct:
			need = se.memB[nextID]
		}
		if need > 0 && e.live[k]+need > se.budget[k] {
			if e.live[k]+need-e.drain[k] > se.budget[k] {
				// Uncoverable overshoot: admit the op and let its
				// allocation flag the OOM (see runner.fillGap).
				return 0
			}
			return se.engPopW(k)
		}
	}
	return 0
}

func (se *refSession) engPopW(k int) int {
	e := se.eng
	w := e.wq[k][e.wqHead[k]]
	e.wqHead[k]++
	if e.wqHead[k] == len(e.wq[k]) {
		e.wq[k] = e.wq[k][:0]
		e.wqHead[k] = 0
	}
	start := math.Max(e.free[k], w.ready)
	se.engRunOp(k, w.id, start)
	return 1
}

func (se *refSession) engRunOp(k int, id int32, start float64) {
	e := se.eng
	dur := se.dur[id]
	end := start + dur
	e.free[k] = end
	e.comp[k] += dur
	if se.record {
		se.spanBuf[k] = append(se.spanBuf[k], Span{Op: se.opsl[id], Start: start, End: end})
	}
	e.fin[id] = end
	e.done[id] = e.ep
	f := se.famID[id]
	switch se.opsl[id].Kind {
	case sched.F:
		se.engAlloc(k, f, se.memB[id])
	case sched.B:
		se.engRelease(k, f)
	case sched.BAct:
		se.engAlloc(k, f, se.memB[id])
		se.engEnqueueW(k, id, end)
	case sched.W:
		se.touchFam(f)
		e.drain[k] -= se.famAcc[f]
		se.engRelease(k, f)
	case sched.WPiece:
		se.touchFam(f)
		se.famCnt[f]++
		if int(se.famCnt[f]) == se.wPieces {
			e.drain[k] -= se.famAcc[f]
			se.engRelease(k, f)
		}
	}
}

// engEnqueueW queues the family's precomputed weight-gradient ops and makes
// its retained bytes drainable, mirroring the runner's enqueueW.
func (se *refSession) engEnqueueW(k int, bID int32, ready float64) {
	e := se.eng
	f := se.famID[bID]
	se.touchFam(f)
	e.drain[k] += se.famAcc[f]
	for w := se.wOff[bID]; w < se.wOff[bID+1]; w++ {
		e.wq[k] = append(e.wq[k], refWRef{se.wIDs[w], ready})
	}
}

func (se *refSession) engAlloc(k int, f int32, bytes int64) {
	e := se.eng
	se.touchFam(f)
	se.famAcc[f] += bytes
	e.live[k] += bytes
	if e.live[k] > e.peak[k] {
		e.peak[k] = e.live[k]
	}
	if se.hasBudget && e.live[k] > se.budget[k] && !e.oom {
		// Dynamic mode is OOM exactly when draining every queued weight
		// gradient could not bring the stage back under budget.
		if e.live[k]-e.drain[k] > se.budget[k] {
			e.oom = true
			e.oomAt = k
		}
	}
}

func (se *refSession) engRelease(k int, f int32) {
	e := se.eng
	se.touchFam(f)
	e.live[k] -= se.famAcc[f]
	se.famAcc[f] = 0
}

// assembleDynamic writes the Result from the engine's per-stage state in
// the runner's result() float-operation order.
func (se *refSession) assembleDynamic() {
	e := se.eng
	res := &se.res
	res.SpansRecorded = se.record
	res.PeakAct = 0
	end := 0.0
	for k := 0; k < se.P; k++ {
		fin := e.free[k]
		if se.hasTail {
			fin += se.tailV[k]
		}
		var spans []Span
		if se.record {
			spans = se.spanBuf[k]
		}
		res.Stages[k] = StageResult{Spans: spans, ComputeTime: e.comp[k], Finish: fin, PeakAct: e.peak[k]}
		if fin > end {
			end = fin
		}
		if e.peak[k] > res.PeakAct {
			res.PeakAct = e.peak[k]
		}
	}
	res.IterTime = end
	busy := 0.0
	for k := 0; k < se.P; k++ {
		busy += e.comp[k]
		if se.hasTail {
			busy += se.tailV[k]
		}
	}
	res.BubbleRatio = 0
	if end > 0 {
		res.BubbleRatio = 1 - busy/(float64(se.P)*end)
	}
	res.OOM = e.oom
	res.OOMStage = e.oomAt
}
