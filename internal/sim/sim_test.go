package sim

import (
	"math"
	"testing"
	"testing/quick"

	"mepipe/internal/analytic"
	"mepipe/internal/sched"
)

func mustRun(t *testing.T, s *sched.Schedule, err error, opt Options) *Result {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	opt.Sched = s
	if opt.Costs == nil {
		opt.Costs = Unit()
	}
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSimMatchesAnalyticExact cross-validates the simulator against the
// Table 3 closed forms for the schedulers whose generated orders achieve
// them exactly (zero communication, uniform costs).
func TestSimMatchesAnalyticExact(t *testing.T) {
	type tc struct {
		name   string
		meth   analytic.Method
		params analytic.Params
		build  func() (*sched.Schedule, error)
		exactB bool
		exactM bool
	}
	cases := []tc{}
	for _, n := range []int{4, 8, 12} {
		for _, p := range []int{2, 4, 8} {
			p, n := p, n
			cases = append(cases,
				tc{"gpipe", analytic.GPipe, analytic.Params{P: p, V: 1, S: 1, N: n},
					func() (*sched.Schedule, error) { return sched.GPipe(p, n, nil) }, true, true},
				tc{"dapple", analytic.DAPPLE, analytic.Params{P: p, V: 1, S: 1, N: n},
					func() (*sched.Schedule, error) { return sched.DAPPLE(p, n, nil) }, true, true},
				tc{"terapipe", analytic.TeraPipe, analytic.Params{P: p, V: 1, S: 4, N: n},
					func() (*sched.Schedule, error) { return sched.TeraPipe(p, 4, n, nil) }, true, true},
			)
			if n >= p {
				// Real interleaved VPP requires n to be a
				// multiple of p (Megatron asserts it); the
				// greedy order is exact only there.
				cases = append(cases, tc{"vpp", analytic.VPP, analytic.Params{P: p, V: 2, S: 1, N: n},
					func() (*sched.Schedule, error) { return sched.VPP(p, 2, n, nil) }, n%p == 0, n%p == 0})
			}
			cases = append(cases, tc{"svpp", analytic.SVPP, analytic.Params{P: p, V: 2, S: 2, N: n},
				func() (*sched.Schedule, error) {
					return sched.SVPP(sched.SVPPOptions{P: p, V: 2, S: 2, N: n, Reschedule: true})
				}, n >= p && p <= 4, true})
		}
	}
	for _, c := range cases {
		s, err := c.build()
		res := mustRun(t, s, err, Options{})
		wantB, err := analytic.BubbleRatio(c.meth, c.params)
		if err != nil {
			t.Fatalf("%s %+v: %v", c.name, c.params, err)
		}
		// The analytic expressions are idealized lower bounds; the
		// generated orders achieve them exactly for the flat-pipeline
		// systems and stay within 3 points for deep interleaved shapes
		// (drain-phase chain latency the closed forms ignore).
		if res.BubbleRatio < wantB-1e-9 {
			t.Errorf("%s %+v: sim bubble %.6f below analytic lower bound %.6f", c.name, c.params, res.BubbleRatio, wantB)
		}
		slack := 0.0
		if !c.exactB {
			slack = 0.03
			if c.params.N < c.params.P {
				// The n < p regime leaves long structural stalls
				// the greedy order cannot compact perfectly.
				slack = 0.05
			}
		}
		if res.BubbleRatio > wantB+slack+1e-9 {
			t.Errorf("%s %+v: sim bubble %.6f exceeds analytic %.6f by more than %.2f", c.name, c.params, res.BubbleRatio, wantB, slack)
		}
		// Peak activation in units of slice-chunk families: analytic
		// value is in units of A = v·s·p families.
		wantM, err := analytic.ActivationMemory(c.meth, c.params)
		if err != nil {
			t.Fatal(err)
		}
		gotM := float64(res.PeakAct) / float64(c.params.V*c.params.S*c.params.P)
		if c.exactM && math.Abs(gotM-wantM) > 1e-9 {
			t.Errorf("%s %+v: sim peak %.6f A != analytic %.6f A", c.name, c.params, gotM, wantM)
		}
	}
}

// TestHanayoNearAnalytic: the wave schedule is greedy-generated over the V
// placement, so it tracks the idealized formula loosely; require it to stay
// within 8 points above the bound (the paper's evaluation uses Hanayo only
// through its analytic row in Table 3 / Fig 1).
func TestHanayoNearAnalytic(t *testing.T) {
	for _, n := range []int{8, 16} {
		s, err := sched.Hanayo(4, n, nil)
		res := mustRun(t, s, err, Options{})
		want, _ := analytic.BubbleRatio(analytic.Hanayo, analytic.Params{P: 4, V: 2, S: 1, N: n})
		if res.BubbleRatio < want-1e-9 {
			t.Errorf("n=%d: Hanayo sim bubble %.4f below analytic %.4f", n, res.BubbleRatio, want)
		}
		// The greedy wave order is structurally looser than the
		// hand-crafted Hanayo schedule (see sched.Hanayo docs); it is
		// used only for validation, never for the paper's evaluation
		// figures, which take Hanayo's analytic row.
		if res.BubbleRatio > want+0.12 {
			t.Errorf("n=%d: Hanayo sim bubble %.4f too far above analytic %.4f", n, res.BubbleRatio, want)
		}
	}
}

func TestZB1PBeatsDAPPLE(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		zb, err := sched.ZB1P(4, n, nil)
		zbRes := mustRun(t, zb, err, Options{})
		da, err := sched.DAPPLE(4, n, nil)
		daRes := mustRun(t, da, err, Options{})
		if zbRes.IterTime >= daRes.IterTime {
			t.Errorf("n=%d: ZB-1P %.1f not faster than DAPPLE %.1f", n, zbRes.IterTime, daRes.IterTime)
		}
	}
}

func TestSVPPVariantTradeoff(t *testing.T) {
	// Fig 5: shrinking f reduces peak memory and (weakly) increases the
	// makespan.
	prevPeak, prevTime := int64(1<<62), 0.0
	for _, f := range []int{8, 6, 4} {
		s, err := sched.SVPP(sched.SVPPOptions{P: 4, V: 2, S: 2, N: 2, F: f, Reschedule: true})
		res := mustRun(t, s, err, Options{})
		if res.PeakAct > prevPeak {
			t.Errorf("f=%d: peak %d exceeds larger variant %d", f, res.PeakAct, prevPeak)
		}
		if res.IterTime+1e-9 < prevTime {
			t.Errorf("f=%d: makespan %.1f improved while shrinking memory (%.1f)", f, res.IterTime, prevTime)
		}
		if res.PeakAct != int64(f) {
			t.Errorf("f=%d: peak %d families, want exactly f", f, res.PeakAct)
		}
		prevPeak, prevTime = res.PeakAct, res.IterTime
	}
}

func TestRescheduleNeverHurts(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		base, err := sched.SVPP(sched.SVPPOptions{P: 4, V: 2, S: 2, N: n})
		baseRes := mustRun(t, base, err, Options{})
		opt, err := sched.SVPP(sched.SVPPOptions{P: 4, V: 2, S: 2, N: n, Reschedule: true})
		optRes := mustRun(t, opt, err, Options{})
		if optRes.IterTime > baseRes.IterTime+1e-9 {
			t.Errorf("n=%d: rescheduling worsened makespan %.2f -> %.2f", n, baseRes.IterTime, optRes.IterTime)
		}
		if optRes.PeakAct > baseRes.PeakAct {
			t.Errorf("n=%d: rescheduling raised peak memory %d -> %d", n, baseRes.PeakAct, optRes.PeakAct)
		}
	}
}

// TestDynamicWFillsBubbles: §5's headline — draining weight-gradient GEMMs
// into stalls beats computing W immediately after each BAct (the Fig 11 vs
// Fig 12 comparison), and the gap-filling static placement matches the
// dynamic engine under accurate cost estimates.
func TestDynamicWFillsBubbles(t *testing.T) {
	costs := UniformCosts{
		Est: sched.UniformEst{F: 1, BAct: 1, W: 1, WPiece: 0.25},
		Act: 1, Grad: 1,
	}
	// Baseline: weight gradients forced right after their backward
	// (WDeferCap 0), as in "MEPipe w/o fine-grained weight gradients".
	prompt, err := sched.SVPP(sched.SVPPOptions{
		P: 4, V: 1, S: 2, N: 4, Split: true, Reschedule: true,
		Est:       costs.Est,
		WDeferCap: func(int) int { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	inline := mustRun(t, prompt, nil, Options{Costs: costs})
	// Dynamic engine on the same schedule re-places the W work freely.
	dynamic := mustRun(t, prompt, nil, Options{Costs: costs, DynamicW: true})
	if dynamic.IterTime >= inline.IterTime {
		t.Errorf("dynamic W %.2f not faster than prompt-W %.2f", dynamic.IterTime, inline.IterTime)
	}
	if dynamic.BubbleRatio >= inline.BubbleRatio {
		t.Errorf("dynamic W bubble %.3f not lower than prompt-W %.3f", dynamic.BubbleRatio, inline.BubbleRatio)
	}
	// Fine-grained pieces placed by the generator's gap filler should be
	// at least as good as whole-op dynamic placement.
	pieces, err := sched.MEPipe(4, 1, 2, 4, 0, 4, costs.Est)
	if err != nil {
		t.Fatal(err)
	}
	static := mustRun(t, pieces, nil, Options{Costs: costs})
	if static.IterTime > dynamic.IterTime+1e-9 {
		t.Errorf("static fine-grained placement %.2f worse than dynamic whole-W %.2f", static.IterTime, dynamic.IterTime)
	}
}

// TestDynamicWMemoryCeiling: with a tight activation budget the dynamic
// engine drains weight gradients early, trading speed for fitting.
func TestDynamicWMemoryCeiling(t *testing.T) {
	costs := UniformCosts{
		Est: sched.UniformEst{F: 1, BAct: 1, W: 1, WPiece: 0.25},
		Act: 1, Grad: 1,
	}
	s, err := sched.MEPipe(4, 1, 2, 4, 0, 4, costs.Est)
	if err != nil {
		t.Fatal(err)
	}
	free := mustRun(t, s, nil, Options{Costs: costs, DynamicW: true})
	budget := make([]int64, 4)
	for i := range budget {
		budget[i] = free.PeakAct - 2
	}
	tight := mustRun(t, s, nil, Options{Costs: costs, DynamicW: true, ActBudget: budget})
	if tight.OOM {
		t.Fatalf("tight run OOMed at stage %d (peak %d, budget %d)", tight.OOMStage, tight.PeakAct, budget[0])
	}
	if tight.PeakAct > budget[0] {
		t.Errorf("peak %d exceeds budget %d", tight.PeakAct, budget[0])
	}
	if tight.IterTime < free.IterTime-1e-9 {
		t.Errorf("tight budget cannot be faster: %.2f vs %.2f", tight.IterTime, free.IterTime)
	}
	// An infeasible budget must be reported as OOM, not silently exceeded.
	for i := range budget {
		budget[i] = 2
	}
	infeasible := mustRun(t, s, nil, Options{Costs: costs, DynamicW: true, ActBudget: budget})
	if !infeasible.OOM {
		t.Error("expected OOM under an infeasible budget")
	}
}

func TestStaticOOMDetection(t *testing.T) {
	s, err := sched.DAPPLE(4, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	budget := []int64{3, 3, 3, 3} // DAPPLE stage 0 needs p = 4
	res := mustRun(t, s, nil, Options{ActBudget: budget})
	if !res.OOM {
		t.Error("expected OOM with budget below the DAPPLE peak")
	}
	if res.OOMStage != 0 {
		t.Errorf("OOM at stage %d, want 0 (first stage holds the most)", res.OOMStage)
	}
}

func TestMemoryNeverNegativeAndEndsAtZero(t *testing.T) {
	schedules := []func() (*sched.Schedule, error){
		func() (*sched.Schedule, error) { return sched.DAPPLE(4, 8, nil) },
		func() (*sched.Schedule, error) { return sched.ZBV(4, 8, nil) },
		func() (*sched.Schedule, error) { return sched.MEPipe(4, 2, 2, 4, 0, 3, nil) },
	}
	for _, build := range schedules {
		s, err := build()
		if err != nil {
			t.Fatal(err)
		}
		for _, dyn := range []bool{false, true} {
			if dyn && !s.SplitBW {
				continue
			}
			opt := Options{Sched: s, Costs: UniformCosts{Est: sched.Unit(), Act: 3, Grad: 2}, DynamicW: dyn}
			res, err := Run(opt)
			if err != nil {
				t.Fatal(err)
			}
			// Replay alloc/free from spans: live must never dip
			// below zero and must return to zero.
			for k := range res.Stages {
				live := int64(0)
				for _, sp := range res.Stages[k].Spans {
					switch sp.Op.Kind {
					case sched.F:
						live += 3
					case sched.B:
						live -= 3
					case sched.BAct:
						live += 2
					case sched.W:
						live -= 5
					case sched.WPiece:
						if sp.Op.Piece == done(res.Stages[k].Spans, sp.Op, s.WPieces) {
							live -= 5
						}
					}
					if live < 0 {
						t.Fatalf("%s stage %d: live bytes went negative", s, k)
					}
				}
				if live != 0 {
					t.Errorf("%s stage %d (dyn=%v): %d bytes leaked", s, k, dyn, live)
				}
			}
		}
	}
}

// done returns the Piece index of the last-executed WPiece of op's family in
// spans order.
func done(spans []Span, op sched.Op, pieces int) int {
	last := -1
	for _, sp := range spans {
		if sp.Op.Kind == sched.WPiece && sp.Op.Micro == op.Micro && sp.Op.Slice == op.Slice && sp.Op.Chunk == op.Chunk {
			last = sp.Op.Piece
		}
	}
	return last
}

func TestTailTimeExtendsIteration(t *testing.T) {
	s, err := sched.DAPPLE(2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := mustRun(t, s, nil, Options{})
	tail := mustRun(t, s, nil, Options{TailTime: func(int) float64 { return 5 }})
	if tail.IterTime != base.IterTime+5 {
		t.Errorf("tail time not applied: %.1f vs %.1f+5", tail.IterTime, base.IterTime)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Error("nil schedule accepted")
	}
	s, _ := sched.DAPPLE(2, 2, nil)
	if _, err := Run(Options{Sched: s, Costs: Unit(), DynamicW: true}); err == nil {
		t.Error("dynamic W accepted on fused schedule")
	}
	if _, err := Run(Options{Sched: s, Costs: Unit(), ActBudget: []int64{1}}); err == nil {
		t.Error("wrong-length budget accepted")
	}
}

// TestCausalityProperty: every op starts no earlier than all of its
// dependencies finish (plus communication), across a mix of schedules.
func TestCausalityProperty(t *testing.T) {
	est := sched.UniformEst{F: 1, BFused: 2, BAct: 1, W: 1, WPiece: 0.5, Comm: 0.25}
	builds := []func() (*sched.Schedule, error){
		func() (*sched.Schedule, error) { return sched.DAPPLE(4, 6, est) },
		func() (*sched.Schedule, error) { return sched.VPP(4, 2, 8, est) },
		func() (*sched.Schedule, error) {
			return sched.SVPP(sched.SVPPOptions{P: 4, V: 2, S: 2, N: 4, Est: est, Split: true, FineGrainedW: 2, Reschedule: true})
		},
	}
	for _, build := range builds {
		s, err := build()
		if err != nil {
			t.Fatal(err)
		}
		costs := UniformCosts{Est: est, Act: 1, Grad: 1}
		res, err := Run(Options{Sched: s, Costs: costs})
		if err != nil {
			t.Fatal(err)
		}
		fin := map[opRef]float64{}
		for k := range res.Stages {
			for _, sp := range res.Stages[k].Spans {
				fin[opRef{k, sp.Op}] = sp.End
			}
		}
		var deps []sched.Dep
		for k := range res.Stages {
			for _, sp := range res.Stages[k].Spans {
				deps = s.Deps(deps[:0], k, sp.Op)
				for _, d := range deps {
					need := fin[opRef{d.Stage, d.Op}]
					if d.Stage != k {
						need += est.Comm
					}
					if sp.Start < need-1e-9 {
						t.Fatalf("%s: op %s@%d starts %.3f before dep %s@%d ready %.3f",
							s, sp.Op, k, sp.Start, d.Op, d.Stage, need)
					}
				}
			}
		}
	}
}

func TestStageUtilization(t *testing.T) {
	s, err := sched.MEPipe(4, 1, 2, 4, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	costs := UniformCosts{Est: sched.UniformEst{F: 1, BAct: 1, WPiece: 0.5}, Act: 1, Grad: 1}
	res, err := Run(Options{Sched: s, Costs: costs, DynamicW: true})
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Stages {
		u, err := res.StageUtilization(k)
		if err != nil {
			t.Fatal(err)
		}
		sum := u.Forward + u.Backward + u.Weight + u.Tail + u.Idle
		if diff := sum - u.Total; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("stage %d: breakdown %v does not sum to makespan %v", k, sum, u.Total)
		}
		f, b, w, tail, idle := u.Fractions()
		if f <= 0 || b <= 0 || w <= 0 || tail != 0 || idle < 0 {
			t.Fatalf("stage %d: implausible fractions %v %v %v %v %v", k, f, b, w, tail, idle)
		}
		// F and BAct have equal unit durations and counts; W is half.
		if rel := u.Forward / u.Backward; rel < 0.99 || rel > 1.01 {
			t.Errorf("stage %d: F/B time ratio %v, want 1", k, rel)
		}
	}
	mean, err := res.MeanUtilization()
	if err != nil {
		t.Fatal(err)
	}
	// Mean idle fraction must reproduce the aggregate bubble ratio.
	_, _, _, _, idle := mean.Fractions()
	if diff := idle - res.BubbleRatio; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("mean idle %v != bubble ratio %v", idle, res.BubbleRatio)
	}
}

// TestMakespanBounds: simulated makespans must respect the order-free lower
// bounds, and the well-packed schedules must sit close to them.
func TestMakespanBounds(t *testing.T) {
	costs := Unit()
	cases := []struct {
		name  string
		build func() (*sched.Schedule, error)
		// slack: max allowed makespan / bound ratio
		slack float64
	}{
		{"dapple", func() (*sched.Schedule, error) { return sched.DAPPLE(4, 16, nil) }, 1.25},
		{"svpp", func() (*sched.Schedule, error) {
			return sched.SVPP(sched.SVPPOptions{P: 4, V: 2, S: 2, N: 16, Reschedule: true})
		}, 1.10},
		{"gpipe", func() (*sched.Schedule, error) { return sched.GPipe(4, 8, nil) }, 1.40},
	}
	for _, c := range cases {
		s, err := c.build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Options{Sched: s, Costs: costs})
		if err != nil {
			t.Fatal(err)
		}
		bound, err := MakespanBound(s, costs)
		if err != nil {
			t.Fatal(err)
		}
		if res.IterTime < bound-1e-9 {
			t.Errorf("%s: makespan %.2f beats the lower bound %.2f (impossible)", c.name, res.IterTime, bound)
		}
		if res.IterTime > bound*c.slack {
			t.Errorf("%s: makespan %.2f vs bound %.2f exceeds slack %.2f", c.name, res.IterTime, bound, c.slack)
		}
	}
	// Busiest-stage is the binding bound for large n (pipeline full).
	s, _ := sched.DAPPLE(4, 64, nil)
	busiest := BusiestStageBound(s, costs)
	cp, err := CriticalPathBound(s, costs)
	if err != nil {
		t.Fatal(err)
	}
	if busiest <= cp {
		t.Errorf("with n >> p the resource bound (%.0f) should dominate the chain bound (%.0f)", busiest, cp)
	}
}

// TestCommDelayExact: a cross-stage dependency delays the consumer by
// exactly the link time.
func TestCommDelayExact(t *testing.T) {
	s, err := sched.DAPPLE(2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	costs := UniformCosts{Est: sched.UniformEst{F: 1, BFused: 2, Comm: 0.75}, Act: 1}
	res, err := Run(Options{Sched: s, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	// Stage 1's forward starts at stage 0's finish (1.0) + comm.
	f1 := res.Stages[1].Spans[0]
	if f1.Start != 1.75 {
		t.Errorf("stage 1 forward starts at %v, want 1.75", f1.Start)
	}
	// Stage 0's backward starts at stage 1's backward finish + comm.
	b0 := res.Stages[0].Spans[1]
	want := res.Stages[1].Spans[1].End + 0.75
	if b0.Start != want {
		t.Errorf("stage 0 backward starts at %v, want %v", b0.Start, want)
	}
}

// TestOOMStageIndex: the reported OOM stage is the one whose budget broke.
func TestOOMStageIndex(t *testing.T) {
	s, err := sched.DAPPLE(4, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	budget := []int64{100, 100, 1, 100} // only stage 2 is tight (needs p-k = 2)
	res, err := Run(Options{Sched: s, Costs: Unit(), ActBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OOM || res.OOMStage != 2 {
		t.Errorf("OOM=%v at stage %d, want OOM at stage 2", res.OOM, res.OOMStage)
	}
}

// TestPerStageTail: stage-dependent tail times shift each stage's finish
// individually.
func TestPerStageTail(t *testing.T) {
	s, err := sched.DAPPLE(3, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Sched: s, Costs: Unit(), TailTime: func(k int) float64 { return float64(k) }})
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Stages {
		lastEnd := res.Stages[k].Spans[len(res.Stages[k].Spans)-1].End
		if got := res.Stages[k].Finish - lastEnd; got != float64(k) {
			t.Errorf("stage %d tail %v, want %d", k, got, k)
		}
	}
}

// TestMemorySeriesConsistent: the reconstructed curve's maximum equals the
// tracker's peak and the curve returns to zero.
func TestMemorySeriesConsistent(t *testing.T) {
	s, err := sched.MEPipe(4, 1, 2, 4, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	costs := UniformCosts{Est: sched.UniformEst{F: 1, BAct: 1, WPiece: 0.3}, Act: 5, Grad: 2}
	res, err := Run(Options{Sched: s, Costs: costs, DynamicW: true})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < s.P; k++ {
		series, err := res.MemorySeries(s, costs, k)
		if err != nil {
			t.Fatal(err)
		}
		var peak int64
		for _, p := range series {
			if p.Bytes < 0 {
				t.Fatalf("stage %d: negative retained bytes", k)
			}
			if p.Bytes > peak {
				peak = p.Bytes
			}
		}
		if peak != res.Stages[k].PeakAct {
			t.Errorf("stage %d: series peak %d != tracked peak %d", k, peak, res.Stages[k].PeakAct)
		}
		if series[len(series)-1].Bytes != 0 {
			t.Errorf("stage %d: %d bytes leaked at iteration end", k, series[len(series)-1].Bytes)
		}
	}
}

// TestBoundPropertyRandomShapes: for random SVPP shapes and skewed costs,
// the simulated makespan never beats the order-free lower bound.
func TestBoundPropertyRandomShapes(t *testing.T) {
	type shape struct{ P, V, S, N, F uint8 }
	costs := UniformCosts{Est: sched.UniformEst{F: 1, BFused: 2.3, Comm: 0.15}, Act: 1}
	check := func(sh shape) bool {
		p := int(sh.P)%5 + 1
		v := int(sh.V)%2 + 1
		s := int(sh.S)%3 + 1
		n := int(sh.N)%5 + 1
		f := int(sh.F)%(v*s*p+2) + 1
		sch, err := sched.SVPP(sched.SVPPOptions{P: p, V: v, S: s, N: n, F: f, Est: costs.Est})
		if err != nil {
			return false
		}
		res, err := Run(Options{Sched: sch, Costs: costs})
		if err != nil {
			return false
		}
		bound, err := MakespanBound(sch, costs)
		if err != nil {
			return false
		}
		return res.IterTime >= bound-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
