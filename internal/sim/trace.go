package sim

import (
	"sort"

	"mepipe/internal/obs"
)

// Trace converts the result's executed spans into an obs.Trace of op
// events. It carries the exact makespan and bubble ratio of the run (which
// include tail time a span-only reconstruction would miss), so renderers
// and exporters working from a Result agree with its reported numbers.
//
// A trace built this way contains op events only; run the simulation with
// Options.Trace set to a Recorder to also capture comm, memory, stall and
// drain events.
func (r *Result) Trace() *obs.Trace {
	t := &obs.Trace{
		Stages:   len(r.Stages),
		Makespan: r.IterTime,
		Bubble:   r.BubbleRatio,
	}
	for k := range r.Stages {
		for _, sp := range r.Stages[k].Spans {
			t.Events = append(t.Events, obs.Event{
				Kind: obs.EvOp, Stage: k, From: k, Op: sp.Op,
				Start: sp.Start, End: sp.End,
			})
		}
	}
	sort.SliceStable(t.Events, func(i, j int) bool {
		if t.Events[i].Start != t.Events[j].Start {
			return t.Events[i].Start < t.Events[j].Start
		}
		return t.Events[i].Stage < t.Events[j].Stage
	})
	return t
}
