package sim

import (
	"context"
	"errors"
	"testing"

	"mepipe/internal/errs"
	"mepipe/internal/obs"
	"mepipe/internal/sched"
)

func TestRunContextCancelled(t *testing.T) {
	s, err := sched.SVPP(sched.SVPPOptions{P: 4, V: 1, S: 2, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, Options{Sched: s, Costs: Unit()}); !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("RunContext = %v, want ErrCancelled", err)
	}
}

func TestRunWrapsIncompatible(t *testing.T) {
	s, err := sched.SVPP(sched.SVPPOptions{P: 2, V: 1, S: 2, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Options{Sched: s, Costs: Unit(), DynamicW: true}); !errors.Is(err, errs.ErrIncompatible) {
		t.Errorf("DynamicW without split backward: %v, want ErrIncompatible", err)
	}
	if _, err := Run(Options{Sched: s, Costs: Unit(), ActBudget: []int64{1}}); !errors.Is(err, errs.ErrIncompatible) {
		t.Errorf("short ActBudget: %v, want ErrIncompatible", err)
	}
}

// TestTraceMatchesResult: the trace's derived quantities agree with the
// simulator's own accounting, and Result.Trace carries the exact values.
func TestTraceMatchesResult(t *testing.T) {
	s, err := sched.SVPP(sched.SVPPOptions{P: 4, V: 2, S: 2, N: 4, Reschedule: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	res, err := Run(Options{Sched: s, Costs: Unit(), Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	live := rec.Trace()
	conv := res.Trace()
	if live.Stages != conv.Stages {
		t.Errorf("stages: recorded %d, converted %d", live.Stages, conv.Stages)
	}
	if conv.Makespan != res.IterTime || conv.Bubble != res.BubbleRatio {
		t.Errorf("converted trace (%g, %g) != result (%g, %g)",
			conv.Makespan, conv.Bubble, res.IterTime, res.BubbleRatio)
	}
	for k := 0; k < live.Stages; k++ {
		lo, co := live.OpSpans(k), conv.OpSpans(k)
		if len(lo) != len(co) {
			t.Fatalf("stage %d: %d recorded op spans, %d converted", k, len(lo), len(co))
		}
		for i := range lo {
			if lo[i].Op != co[i].Op || lo[i].Start != co[i].Start || lo[i].End != co[i].End {
				t.Errorf("stage %d span %d: recorded %+v, converted %+v", k, i, lo[i], co[i])
			}
		}
	}
}
