package sim

import (
	"fmt"

	"mepipe/internal/errs"
	"mepipe/internal/sched"
)

// Lower bounds on the iteration makespan, independent of op ordering. They
// quantify how much a *better schedule* could still buy: the simulated
// makespan can never beat max(CriticalPath, BusiestStage), so the gap
// between the two is the true remaining bubble.

// CriticalPathBound returns the longest dependency chain through the
// schedule's op DAG (durations plus cross-stage communication), ignoring
// resource (stage) contention. No executor — however cleverly ordered — can
// finish faster.
func CriticalPathBound(s *sched.Schedule, costs Costs) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	type node struct {
		stage int
		op    sched.Op
	}
	index := map[node]int{}
	var nodes []node
	for k, ops := range s.Stages {
		for _, op := range ops {
			index[node{k, op}] = len(nodes)
			nodes = append(nodes, node{k, op})
		}
	}
	// Longest path via reverse topological order (Kahn).
	adj := make([][]int32, len(nodes))
	indeg := make([]int, len(nodes))
	var deps []sched.Dep
	for id, n := range nodes {
		deps = s.Deps(deps[:0], n.stage, n.op)
		for _, d := range deps {
			from, ok := index[node{d.Stage, d.Op}]
			if !ok {
				return 0, fmt.Errorf("sim: dangling dependency %v@%d: %w", d.Op, d.Stage, errs.ErrIncompatible)
			}
			adj[from] = append(adj[from], int32(id))
			indeg[id]++
		}
	}
	finish := make([]float64, len(nodes))
	queue := make([]int, 0, len(nodes))
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
			finish[id] = costs.OpTime(nodes[id].stage, nodes[id].op)
		}
	}
	best := 0.0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if finish[id] > best {
			best = finish[id]
		}
		for _, t := range adj[id] {
			n := nodes[t]
			ready := finish[id]
			if nodes[id].stage != n.stage {
				ready += costs.CommTime(nodes[id].stage, n.stage, nodes[id].op)
			}
			start := ready + costs.OpTime(n.stage, n.op)
			if start > finish[t] {
				finish[t] = start
			}
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, int(t))
			}
		}
	}
	return best, nil
}

// BusiestStageBound returns the largest per-stage total compute — the
// resource floor no schedule can beat.
func BusiestStageBound(s *sched.Schedule, costs Costs) float64 {
	best := 0.0
	for k, ops := range s.Stages {
		var sum float64
		for _, op := range ops {
			sum += costs.OpTime(k, op)
		}
		if sum > best {
			best = sum
		}
	}
	return best
}

// MakespanBound returns max(CriticalPathBound, BusiestStageBound).
func MakespanBound(s *sched.Schedule, costs Costs) (float64, error) {
	cp, err := CriticalPathBound(s, costs)
	if err != nil {
		return 0, err
	}
	if b := BusiestStageBound(s, costs); b > cp {
		return b, nil
	}
	return cp, nil
}
