package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mepipe/internal/errs"
	"mepipe/internal/sched"
)

// sessionPool recycles Session capacity across Evaluate/EvaluateMany calls:
// rebinding a pooled session reuses its id maps, edge tables, and result
// buffers, which removes the dominant allocations of one-shot evaluation.
var sessionPool = sync.Pool{New: func() any { return &Session{} }}

// Evaluate is RunContext through the session fast path: identical Results
// (bitwise — the differential fuzzer gates this), far fewer allocations.
// Traced runs fall back to RunContext, which owns span/event emission.
// Unlike RunContext, cancellation is only checked on entry — a single
// evaluation is short, so mid-run cancellation buys nothing.
//
// The returned Result is the caller's to keep.
//
//mepipe:deterministic
func Evaluate(ctx context.Context, opt Options) (*Result, error) {
	if opt.Trace != nil {
		return RunContext(ctx, opt)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sim: evaluate %w: %v", errs.ErrCancelled, err)
	}
	se := sessionPool.Get().(*Session)
	defer sessionPool.Put(se)
	if err := se.init(opt); err != nil {
		return nil, err
	}
	r, err := se.Eval(opt.Sched)
	if err != nil {
		return nil, err
	}
	return cloneResult(r), nil
}

// EvaluateMany simulates every schedule under the same Options (opt.Sched
// is ignored), amortizing session construction across a bounded worker
// pool: each worker binds one session and re-evaluates compatible schedules
// incrementally, rebinding only when the shape changes. workers <= 0 uses
// GOMAXPROCS. Results are positional; a schedule that fails to evaluate
// (invalid, deadlocked, nil) leaves a nil entry rather than failing the
// batch. The only error is cancellation, which wraps errs.ErrCancelled and
// returns the results completed so far. Tracing is incompatible with
// batched evaluation and reports errs.ErrIncompatible.
//
//mepipe:deterministic
func EvaluateMany(ctx context.Context, scheds []*sched.Schedule, opt Options, workers int) ([]*Result, error) {
	if opt.Trace != nil {
		return nil, fmt.Errorf("sim: batched evaluation cannot trace (use RunContext per schedule): %w", errs.ErrIncompatible)
	}
	results := make([]*Result, len(scheds))
	if len(scheds) == 0 {
		return results, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scheds) {
		workers = len(scheds)
	}
	var cancelled atomic.Bool
	if workers <= 1 {
		evalWorker(ctx, scheds, results, opt, &cancelled)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				evalWorkerShared(ctx, scheds, results, opt, &cancelled, &next)
			}()
		}
		wg.Wait()
	}
	if cancelled.Load() {
		return results, fmt.Errorf("sim: evaluate many %w: %v", errs.ErrCancelled, ctx.Err())
	}
	return results, nil
}

// evalWorker evaluates every schedule serially with one pooled session.
func evalWorker(ctx context.Context, scheds []*sched.Schedule, results []*Result, opt Options, cancelled *atomic.Bool) {
	se := sessionPool.Get().(*Session)
	defer sessionPool.Put(se)
	bound := false
	for i := range scheds {
		if ctx.Err() != nil {
			cancelled.Store(true)
			return
		}
		results[i] = evalOne(se, &bound, opt, scheds[i])
	}
}

// evalWorkerShared pulls indices from a shared cursor (the same chokepoint
// shape as internal/opt's worker pool).
func evalWorkerShared(ctx context.Context, scheds []*sched.Schedule, results []*Result, opt Options, cancelled *atomic.Bool, next *atomic.Int64) {
	se := sessionPool.Get().(*Session)
	defer sessionPool.Put(se)
	bound := false
	for {
		i := int(next.Add(1)) - 1
		if i >= len(scheds) {
			return
		}
		if ctx.Err() != nil {
			cancelled.Store(true)
			return
		}
		results[i] = evalOne(se, &bound, opt, scheds[i])
	}
}

// evalOne evaluates s with se, rebinding the session when s is not a
// permutation of its bound schedule. Failures yield nil.
func evalOne(se *Session, bound *bool, opt Options, s *sched.Schedule) *Result {
	if *bound {
		r, err := se.Eval(s)
		if err == nil {
			return cloneResult(r)
		}
		if !errors.Is(err, errs.ErrIncompatible) {
			return nil
		}
		*bound = false
	}
	o := opt
	o.Sched = s
	if err := se.init(o); err != nil {
		return nil
	}
	*bound = true
	r, err := se.Eval(s)
	if err != nil {
		return nil
	}
	return cloneResult(r)
}

// Clone deep-copies the result. Callers that drive a Session directly and
// retain results across Eval calls need it: Eval's Result is session-owned
// and overwritten by the next evaluation.
func (r *Result) Clone() *Result { return cloneResult(r) }

// cloneResult deep-copies a session-owned Result so it survives the next
// Eval.
func cloneResult(r *Result) *Result {
	out := *r
	out.Stages = make([]StageResult, len(r.Stages))
	copy(out.Stages, r.Stages)
	for k := range out.Stages {
		if sp := out.Stages[k].Spans; sp != nil {
			c := make([]Span, len(sp))
			copy(c, sp)
			out.Stages[k].Spans = c
		}
	}
	return &out
}
