package sim

import "mepipe/internal/sched"

// HookedCosts wraps a base cost model with pure perturbation hooks — the
// seam fault-aware evaluations plug into (see internal/chaos.FaultyCosts).
// Each hook receives the base model's duration and returns the perturbed
// one; nil hooks pass through. Hooks must be deterministic functions of
// their arguments: the simulator may query the same op more than once.
type HookedCosts struct {
	Base Costs

	// Op perturbs OpTime for (stage, op); Comm perturbs CommTime for
	// (from, to, op).
	Op   func(stage int, op sched.Op, d float64) float64
	Comm func(from, to int, op sched.Op, d float64) float64
}

// OpTime implements sched.Estimator.
func (h HookedCosts) OpTime(stage int, op sched.Op) float64 {
	d := h.Base.OpTime(stage, op)
	if h.Op != nil {
		d = h.Op(stage, op, d)
	}
	return d
}

// CommTime implements sched.Estimator.
func (h HookedCosts) CommTime(from, to int, op sched.Op) float64 {
	d := h.Base.CommTime(from, to, op)
	if h.Comm != nil {
		d = h.Comm(from, to, op, d)
	}
	return d
}

// ActBytes delegates to the base model (faults do not change footprints).
func (h HookedCosts) ActBytes(stage int, f sched.Op) int64 {
	return h.Base.ActBytes(stage, f)
}

// GradBytes delegates to the base model.
func (h HookedCosts) GradBytes(stage int, b sched.Op) int64 {
	return h.Base.GradBytes(stage, b)
}

// CommBytes delegates when the base model reports transfer sizes,
// preserving its BytesEstimator capability through the wrapper.
func (h HookedCosts) CommBytes(from, to int, op sched.Op) int64 {
	if be, ok := h.Base.(BytesEstimator); ok {
		return be.CommBytes(from, to, op)
	}
	return 0
}
