package sim

import (
	"context"
	"errors"
	"testing"

	"mepipe/internal/errs"
	"mepipe/internal/obs"
	"mepipe/internal/sched"
)

type nopSink struct{}

func (nopSink) Emit(obs.Event) {}

// hugeFCosts charges one designated forward an enormous activation so its
// admission overshoots any budget by more than the W queue can drain.
type hugeFCosts struct {
	sched.UniformEst
	huge sched.Op
}

func (c hugeFCosts) ActBytes(k int, f sched.Op) int64 {
	if k == 0 && f == c.huge {
		return 1000
	}
	return 2
}

func (c hugeFCosts) GradBytes(int, sched.Op) int64 { return 1 }

// TestDynamicOOMUncoverableOvershoot is the satellite-1 regression: when an
// admission overshoots the budget by more than draining every queued W
// could free, the run must flag OOM at the admitting op — without first
// serially draining the queue into a distorted timeline. The old code
// under-reported this state by draining the (futile) queue, so the queued
// W ran before the overshooting op; now it must run after.
func TestDynamicOOMUncoverableOvershoot(t *testing.T) {
	s, err := sched.MEPipe(2, 1, 2, 2, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	op := func(kind sched.Kind, m, sl int) sched.Op {
		return sched.Op{Kind: kind, Micro: m, Slice: sl}
	}
	// Hand-ordered stage 0: one family's BAct completes (queueing its W),
	// then two forwards run back-to-back with no stall the W could fill.
	// The second forward is the huge one.
	s.Stages[0] = []sched.Op{
		op(sched.F, 0, 0), op(sched.F, 0, 1),
		op(sched.BAct, 0, 1),
		op(sched.F, 1, 0), op(sched.F, 1, 1),
		op(sched.BAct, 0, 0), op(sched.BAct, 1, 1), op(sched.BAct, 1, 0),
		op(sched.W, 0, 1), op(sched.W, 0, 0), op(sched.W, 1, 1), op(sched.W, 1, 0),
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("hand-ordered schedule invalid: %v", err)
	}
	huge := op(sched.F, 1, 1)
	costs := hugeFCosts{
		// W far longer than any gap, so gap-filling never drains it.
		UniformEst: sched.UniformEst{F: 1, BFused: 2, BAct: 1, W: 50, Comm: 0.2},
		huge:       huge,
	}
	res, err := Run(Options{
		Sched: s, Costs: costs, DynamicW: true,
		ActBudget: []int64{50, 1 << 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OOM || res.OOMStage != 0 {
		t.Fatalf("uncoverable overshoot not flagged: OOM=%v stage=%d", res.OOM, res.OOMStage)
	}
	// The regression proper: the W queued before the huge admission (its
	// BAct finished earlier) must NOT have been futilely drained first.
	var hugeStart float64
	foundHuge := false
	for _, sp := range res.Stages[0].Spans {
		if sp.Op == huge {
			hugeStart, foundHuge = sp.Start, true
		}
	}
	if !foundHuge {
		t.Fatal("huge forward did not execute")
	}
	queuedW := op(sched.W, 0, 1)
	sawQueued := false
	for _, sp := range res.Stages[0].Spans {
		if sp.Op.Kind != sched.W {
			continue
		}
		if sp.Op == queuedW {
			sawQueued = true
			if sp.Start < hugeStart {
				t.Fatalf("queued W drained before the uncoverable admission (W start %v < F start %v)", sp.Start, hugeStart)
			}
		}
	}
	if !sawQueued {
		t.Fatal("expected W(0,1) to execute")
	}
	// Coverable overshoots must still drain rather than flag: same run
	// with a budget the queue CAN cover stays healthy.
	resOK, err := Run(Options{
		Sched: s, Costs: hugeFCosts{UniformEst: costs.UniformEst, huge: sched.Op{Kind: sched.F, Micro: -1}},
		DynamicW: true, ActBudget: []int64{8, 1 << 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resOK.OOM {
		t.Fatalf("coverable pressure wrongly flagged OOM at stage %d", resOK.OOMStage)
	}
}

// TestStatsRefuseMakespanOnly is the satellite-2 pin: statistics over a
// span-less result fail with a classifiable errs.ErrIncompatible instead
// of returning all-idle/all-tail garbage.
func TestStatsRefuseMakespanOnly(t *testing.T) {
	s, err := sched.DAPPLE(2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Options{Sched: s, Costs: Unit(), MakespanOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.SpansRecorded {
		t.Fatal("MakespanOnly result claims spans")
	}
	if _, err := r.StageUtilization(0); !errors.Is(err, errs.ErrIncompatible) {
		t.Fatalf("StageUtilization: got %v, want ErrIncompatible", err)
	}
	if _, err := r.MeanUtilization(); !errors.Is(err, errs.ErrIncompatible) {
		t.Fatalf("MeanUtilization: got %v, want ErrIncompatible", err)
	}
	if _, err := r.MemorySeries(s, Unit(), 0); !errors.Is(err, errs.ErrIncompatible) {
		t.Fatalf("MemorySeries: got %v, want ErrIncompatible", err)
	}

	full, err := Run(Options{Sched: s, Costs: Unit()})
	if err != nil {
		t.Fatal(err)
	}
	if !full.SpansRecorded {
		t.Fatal("span-recording result claims no spans")
	}
	if _, err := full.StageUtilization(0); err != nil {
		t.Fatalf("StageUtilization with spans: %v", err)
	}
	if _, err := full.MeanUtilization(); err != nil {
		t.Fatalf("MeanUtilization with spans: %v", err)
	}
	if _, err := full.MemorySeries(s, Unit(), 0); err != nil {
		t.Fatalf("MemorySeries with spans: %v", err)
	}
	// Traced MakespanOnly runs keep spans (Trace wins), so stats work.
	traced, err := RunContext(context.Background(), Options{Sched: s, Costs: Unit(), MakespanOnly: true, Trace: nopSink{}})
	if err != nil {
		t.Fatal(err)
	}
	if !traced.SpansRecorded {
		t.Fatal("traced MakespanOnly result dropped spans")
	}
	if _, err := traced.MeanUtilization(); err != nil {
		t.Fatalf("MeanUtilization on traced result: %v", err)
	}
}

// TestTraceWaitReusesDepScratch is the satellite-3 pin: the traced hot loop
// must reuse the runner's dependency scratch rather than allocating one
// Deps walk per traced op. We bound the allocation *overhead* of tracing
// (with a no-op sink) by a small fraction of the op count — the old code's
// per-op allocation made it scale 1:1 with ops.
func TestTraceWaitReusesDepScratch(t *testing.T) {
	s, err := sched.MEPipe(4, 1, 2, 6, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for k := range s.Stages {
		n += len(s.Stages[k])
	}
	base := testing.AllocsPerRun(10, func() {
		if _, err := Run(Options{Sched: s, Costs: Unit()}); err != nil {
			t.Fatal(err)
		}
	})
	traced := testing.AllocsPerRun(10, func() {
		if _, err := RunContext(context.Background(), Options{Sched: s, Costs: Unit(), Trace: nopSink{}}); err != nil {
			t.Fatal(err)
		}
	})
	if over := traced - base; over > float64(n)/4 {
		t.Fatalf("tracing allocates %.0f extra times for %d ops (untraced %.0f); dep scratch is not being reused", over, n, base)
	}
}
