// Package sim executes pipeline schedules in simulated time over a modelled
// cluster: a discrete-event replay that derives every op's start from its
// dependencies, charges communication delays on cross-stage edges, tracks
// activation memory alloc/free, and (in dynamic mode) re-places fine-grained
// weight-gradient GEMMs into stalls exactly as the paper's execution engine
// does (§5). It reports iteration time, per-stage bubble ratio, and peak
// memory — the three quantities every table and figure of the paper is
// built from.
package sim

import (
	"context"
	"fmt"
	"math"

	"mepipe/internal/errs"
	"mepipe/internal/obs"
	"mepipe/internal/sched"
)

// Costs supplies exact per-op durations, communication delays, and memory
// footprints for a simulation run.
type Costs interface {
	sched.Estimator
	// ActBytes returns the activation bytes retained when forward op f
	// (Kind F) completes on stage.
	ActBytes(stage int, f sched.Op) int64
	// GradBytes returns the additional bytes retained from the end of a
	// split BAct until the family's weight gradients complete.
	GradBytes(stage int, b sched.Op) int64
}

// Options configures one simulated iteration.
type Options struct {
	Sched *sched.Schedule
	Costs Costs

	// ActBudget, when non-nil, is the per-stage activation memory budget
	// in bytes. In dynamic mode the budget forces weight-gradient work to
	// drain before new forwards are admitted (§5); exceeding it with no
	// drainable work marks the run OOM.
	ActBudget []int64

	// DynamicW ignores the static positions of W/WPiece ops and instead
	// drains them from a per-stage queue into dependency stalls — the
	// paper's execution-engine behaviour. Requires a SplitBW schedule.
	DynamicW bool

	// TailTime is appended after the last op on every stage (optimizer
	// step plus gradient synchronisation), indexed by stage. Nil means
	// zero.
	TailTime func(stage int) float64

	// Trace, when non-nil, receives structured span events as the run
	// executes: op spans, cross-stage transfers, memory alloc/free with
	// live totals, dependency/communication stalls, and the §5 dynamic
	// engine's budget-stall and W-drain events. Nil costs nothing.
	Trace obs.Sink

	// MakespanOnly skips recording per-op Spans, leaving Result.Stages
	// with empty timelines but exact IterTime/BubbleRatio/PeakAct. The
	// schedule optimizer evaluates thousands of candidates per second and
	// only reads the aggregates; dropping the span slices removes the
	// dominant allocation. Incompatible with Trace (spans feed nothing
	// there, but exporters built on Result would silently go blind), so
	// Trace wins when both are set.
	MakespanOnly bool

	// AssumeValid skips the redundant Schedule.Validate at session bind.
	// It is sound only for schedules that come valid — sched.Generate's
	// output is valid by construction and the strategy paths additionally
	// certify before binding. Misuse still fails safe:
	// malformed tables are rejected while the identity tables build
	// (wrapping errs.ErrIncompatible) and deadlocking orders surface at
	// the first evaluation exactly like Run reports them (wrapping
	// errs.ErrUncertified).
	AssumeValid bool
}

// BytesEstimator is optionally implemented by Costs to report the payload
// size of a cross-stage transfer; traces fall back to 0 bytes otherwise.
type BytesEstimator interface {
	CommBytes(from, to int, op sched.Op) int64
}

// Span records one executed op.
type Span struct {
	Op         sched.Op
	Start, End float64
}

// StageResult aggregates one stage's timeline.
type StageResult struct {
	Spans       []Span
	ComputeTime float64 // sum of op durations
	Finish      float64 // end of last op (before tail time)
	PeakAct     int64   // peak retained activation+gradient bytes
}

// Result is the outcome of a simulated iteration.
type Result struct {
	Stages   []StageResult
	IterTime float64
	// BubbleRatio is the aggregate idle fraction: 1 − Σ busy / (p · T),
	// with T the iteration makespan (§2.1's definition applied uniformly
	// across stages).
	BubbleRatio float64
	// PeakAct is the maximum over stages of retained activation bytes.
	PeakAct int64
	// OOM is set when a stage's activation budget was exceeded and no
	// deferred weight-gradient work could free memory.
	OOM      bool
	OOMStage int
	// SpansRecorded reports whether Stages carry per-op Span timelines.
	// MakespanOnly runs drop them, and the utilization/memory statistics
	// refuse to compute from a span-less result instead of returning
	// all-idle garbage (see stats.go).
	SpansRecorded bool
}

type stageState struct {
	order   []sched.Op
	cursor  int
	free    float64
	compute float64
	spans   []Span
	// memory
	live    int64
	peak    int64
	famActs map[sched.Op]int64 // family key -> retained bytes
	// dynamic W queue (op, readiness)
	wq []wItem
	// drainable is the number of live bytes completing every queued W
	// would free: the sum of famActs over families with queued
	// weight-gradient work. The budget logic compares overshoots against
	// it — draining cannot help when live + need − drainable still
	// exceeds the budget.
	drainable int64
}

type wItem struct {
	op    sched.Op
	ready float64
}

type opRef struct {
	stage int
	op    sched.Op
}

// Run simulates one iteration and returns its result.
//
//mepipe:deterministic
func Run(opt Options) (*Result, error) {
	return RunContext(context.Background(), opt)
}

// RunContext is Run with cancellation: if ctx is cancelled mid-run, the
// simulation stops and returns an error wrapping errs.ErrCancelled.
//
//mepipe:deterministic
func RunContext(ctx context.Context, opt Options) (*Result, error) {
	s := opt.Sched
	if s == nil {
		return nil, fmt.Errorf("sim: nil schedule: %w", errs.ErrIncompatible)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if opt.DynamicW && !s.SplitBW {
		return nil, fmt.Errorf("sim: dynamic weight-gradient mode requires a split-backward schedule: %w", errs.ErrIncompatible)
	}
	if opt.ActBudget != nil && len(opt.ActBudget) != s.P {
		return nil, fmt.Errorf("sim: ActBudget has %d entries, want %d: %w", len(opt.ActBudget), s.P, errs.ErrIncompatible)
	}
	r := &runner{opt: opt, s: s, ctx: ctx, finish: make(map[opRef]float64)}
	r.stages = make([]stageState, s.P)
	for k := range r.stages {
		st := &r.stages[k]
		st.famActs = make(map[sched.Op]int64)
		if opt.DynamicW {
			st.order = stripW(s.Stages[k])
		} else {
			st.order = s.Stages[k]
		}
	}
	if err := r.run(); err != nil {
		return nil, err
	}
	return r.result(), nil
}

func stripW(ops []sched.Op) []sched.Op {
	out := make([]sched.Op, 0, len(ops))
	for _, op := range ops {
		if op.Kind != sched.W && op.Kind != sched.WPiece {
			out = append(out, op)
		}
	}
	return out
}

type runner struct {
	opt    Options
	s      *sched.Schedule
	ctx    context.Context
	stages []stageState
	finish map[opRef]float64
	oom    bool
	oomAt  int
	deps   []sched.Dep
}

// readyTime returns when op's dependencies are satisfied on stage, or
// (0, false) if some dependency has not completed yet.
func (r *runner) readyTime(stage int, op sched.Op) (float64, bool) {
	r.deps = r.s.Deps(r.deps[:0], stage, op)
	t := 0.0
	for _, d := range r.deps {
		f, ok := r.finish[opRef{d.Stage, d.Op}]
		if !ok {
			return 0, false
		}
		if d.Stage != stage {
			f += r.opt.Costs.CommTime(d.Stage, stage, d.Op)
		}
		if f > t {
			t = f
		}
	}
	return t, true
}

func (r *runner) run() error {
	total := 0
	for k := range r.stages {
		total += len(r.stages[k].order)
		if r.opt.DynamicW {
			total += countW(r.s.Stages[k])
		}
	}
	done := 0
	for done < total {
		// Amortise the context check: once every 256 completed ops is
		// cheap but still bounds cancellation latency for huge grids.
		if done&0xff == 0 && r.ctx.Err() != nil {
			return fmt.Errorf("sim: run %w: %v", errs.ErrCancelled, r.ctx.Err())
		}
		k, _, ok := r.nextStage()
		if !ok {
			return fmt.Errorf("sim: deadlock with %d/%d ops executed (schedule order violates dependencies): %w", done, total, errs.ErrUncertified)
		}
		done += r.execute(k)
	}
	return nil
}

func countW(ops []sched.Op) int {
	n := 0
	for _, op := range ops {
		if op.Kind == sched.W || op.Kind == sched.WPiece {
			n++
		}
	}
	return n
}

// nextStage picks the stage whose next executable action starts earliest.
func (r *runner) nextStage() (int, float64, bool) {
	best, bestStart, found := -1, math.Inf(1), false
	for k := range r.stages {
		st := &r.stages[k]
		if st.cursor >= len(st.order) && len(st.wq) == 0 {
			continue
		}
		start, ok := r.stageStart(k)
		if !ok {
			continue
		}
		if start < bestStart {
			best, bestStart, found = k, start, true
		}
	}
	return best, bestStart, found
}

// stageStart returns the earliest time stage k can begin its next action.
func (r *runner) stageStart(k int) (float64, bool) {
	st := &r.stages[k]
	if st.cursor < len(st.order) {
		rt, ok := r.readyTime(k, st.order[st.cursor])
		if ok {
			return max(st.free, rt), true
		}
		// Next scheduled op blocked: a queued W can still run.
	}
	if len(st.wq) > 0 {
		return max(st.free, st.wq[0].ready), true
	}
	return 0, false
}

// execute runs stage k's next action (or a queued weight-gradient piece)
// and returns how many ops completed.
func (r *runner) execute(k int) int {
	st := &r.stages[k]
	if st.cursor < len(st.order) {
		op := st.order[st.cursor]
		rt, ok := r.readyTime(k, op)
		if ok {
			start := max(st.free, rt)
			if r.opt.DynamicW {
				// Fill the stall before `start` with queued
				// weight-gradient pieces (§5), and drain under
				// memory pressure before admitting a forward.
				n := r.fillGap(k, start, op)
				if n > 0 {
					return n
				}
			}
			if r.opt.Trace != nil {
				r.traceWait(k, op, start)
			}
			st.cursor++
			r.runOp(k, op, start, "")
			return 1
		}
		// Blocked: dynamic mode lets W work proceed.
		if r.opt.DynamicW && len(st.wq) > 0 {
			return r.popW(k, "drain-gap")
		}
		return 0
	}
	// Order exhausted: drain the W queue.
	if len(st.wq) > 0 {
		return r.popW(k, "drain-tail")
	}
	return 0
}

// traceWait emits the comm events feeding op and classifies any idle gap
// before start as a dependency or communication stall.
func (r *runner) traceWait(k int, op sched.Op, start float64) {
	const eps = 1e-12
	st := &r.stages[k]
	// Reuse the dependency scratch readyTime already owns: the walk here
	// re-resolves edges the readiness check just produced, and a fresh
	// Deps(nil, ...) would allocate once per traced op.
	r.deps = r.s.Deps(r.deps[:0], k, op)
	depReady := 0.0 // latest dependency finish, communication excluded
	for _, d := range r.deps {
		f, ok := r.finish[opRef{d.Stage, d.Op}]
		if !ok {
			return // unreachable: caller checked readiness
		}
		if f > depReady {
			depReady = f
		}
		if d.Stage != k {
			comm := r.opt.Costs.CommTime(d.Stage, k, d.Op)
			var bytes int64
			if be, ok := r.opt.Costs.(BytesEstimator); ok {
				bytes = be.CommBytes(d.Stage, k, d.Op)
			}
			r.opt.Trace.Emit(obs.Event{
				Kind: obs.EvComm, Stage: k, From: d.Stage, Op: op,
				Start: f, End: f + comm, Bytes: bytes,
			})
		}
	}
	if start <= st.free+eps {
		return // no idle gap
	}
	cause := "dep"
	if depReady <= st.free+eps {
		// Inputs were computed before the stage went idle; the wait is
		// purely tensors in flight.
		cause = "comm"
	}
	r.opt.Trace.Emit(obs.Event{
		Kind: obs.EvStall, Stage: k, From: k, Op: op,
		Start: st.free, End: start, Cause: cause,
	})
}

// fillGap runs queued W pieces that finish before `start`, or that must run
// to free memory before a forward. Returns the number of ops it executed
// (0 means proceed with the scheduled op).
func (r *runner) fillGap(k int, start float64, next sched.Op) int {
	st := &r.stages[k]
	if len(st.wq) == 0 {
		return 0
	}
	w := st.wq[0]
	wStart := max(st.free, w.ready)
	dur := r.opt.Costs.OpTime(k, w.op)
	const eps = 1e-9
	if wStart+dur <= start+eps {
		return r.popW(k, "drain-gap")
	}
	// Memory pressure: if the upcoming op would allocate past the budget,
	// weight gradients must drain first (completing a family's W frees
	// its activations and retained gradients).
	if r.opt.ActBudget != nil {
		var need int64
		switch next.Kind {
		case sched.F:
			need = r.opt.Costs.ActBytes(k, next)
		case sched.BAct:
			need = r.opt.Costs.GradBytes(k, next)
		}
		if need > 0 && st.live+need > r.opt.ActBudget[k] {
			if st.live+need-st.drainable > r.opt.ActBudget[k] {
				// Draining every queued W could not cover the
				// overshoot (W only frees its own family's bytes), so
				// serially draining the queue here would distort the
				// timeline without saving the run. Admit the op; its
				// allocation flags the OOM.
				return 0
			}
			if r.opt.Trace != nil {
				r.opt.Trace.Emit(obs.Event{
					Kind: obs.EvBudget, Stage: k, From: k, Op: next,
					Start: st.free, End: st.free,
					Bytes: need, Live: st.live,
				})
			}
			return r.popW(k, "drain-budget")
		}
	}
	return 0
}

// popW executes the head of the W queue; cause tags the drain in traces.
func (r *runner) popW(k int, cause string) int {
	st := &r.stages[k]
	w := st.wq[0]
	st.wq = st.wq[1:]
	start := max(st.free, w.ready)
	r.runOp(k, w.op, start, cause)
	return 1
}

// runOp executes op at start, updating time, memory, and wq state. cause is
// non-empty for weight-gradient work drained by the dynamic engine.
func (r *runner) runOp(k int, op sched.Op, start float64, cause string) {
	st := &r.stages[k]
	dur := r.opt.Costs.OpTime(k, op)
	end := start + dur
	st.free = end
	st.compute += dur
	if !r.opt.MakespanOnly || r.opt.Trace != nil {
		st.spans = append(st.spans, Span{Op: op, Start: start, End: end})
	}
	r.finish[opRef{k, op}] = end
	if r.opt.Trace != nil {
		r.opt.Trace.Emit(obs.Event{
			Kind: obs.EvOp, Stage: k, From: k, Op: op,
			Start: start, End: end, Cause: cause,
		})
	}
	key := op.Key()
	switch op.Kind {
	case sched.F:
		r.alloc(k, key, r.opt.Costs.ActBytes(k, op))
	case sched.B:
		r.release(k, key)
	case sched.BAct:
		r.alloc(k, key, r.opt.Costs.GradBytes(k, op))
		if r.opt.DynamicW {
			r.enqueueW(k, op, end)
		}
	case sched.W:
		if r.opt.DynamicW {
			st.drainable -= st.famActs[key]
		}
		r.release(k, key)
	case sched.WPiece:
		if r.lastPiece(k, op) {
			if r.opt.DynamicW {
				st.drainable -= st.famActs[key]
			}
			r.release(k, key)
		}
	}
}

// enqueueW adds the family's weight-gradient work to the dynamic queue.
// The family's retained bytes (activations plus gradients, both already
// allocated by the time its BAct completes) become drainable: completing
// the queued W — all pieces, for fine-grained families — frees them.
func (r *runner) enqueueW(k int, b sched.Op, ready float64) {
	st := &r.stages[k]
	st.drainable += st.famActs[b.Key()]
	if r.s.WPieces > 0 {
		for p := 0; p < r.s.WPieces; p++ {
			op := b
			op.Kind = sched.WPiece
			op.Piece = p
			st.wq = append(st.wq, wItem{op, ready})
		}
		return
	}
	op := b
	op.Kind = sched.W
	st.wq = append(st.wq, wItem{op, ready})
}

// lastPiece reports whether op is the family's final executed WPiece.
func (r *runner) lastPiece(k int, op sched.Op) bool {
	for p := 0; p < r.s.WPieces; p++ {
		if p == op.Piece {
			continue
		}
		probe := op
		probe.Piece = p
		if _, ok := r.finish[opRef{k, probe}]; !ok {
			return false
		}
	}
	return true
}

func (r *runner) alloc(k int, key sched.Op, bytes int64) {
	st := &r.stages[k]
	st.famActs[key] += bytes
	st.live += bytes
	if st.live > st.peak {
		st.peak = st.live
	}
	if r.opt.Trace != nil && bytes != 0 {
		r.opt.Trace.Emit(obs.Event{
			Kind: obs.EvAlloc, Stage: k, From: k, Op: key,
			Start: st.free, End: st.free, Bytes: bytes, Live: st.live,
		})
	}
	if r.opt.ActBudget != nil && st.live > r.opt.ActBudget[k] && !r.oom {
		// Static schedules simply exceed. Dynamic mode is OOM exactly
		// when draining every queued weight gradient could not bring
		// the stage back under budget — which subsumes the empty-queue
		// case (drainable is then zero). Transient overshoots a queued
		// family can still absorb are not flagged; the next admission's
		// budget drain resolves them.
		if !r.opt.DynamicW || st.live-st.drainable > r.opt.ActBudget[k] {
			r.oom = true
			r.oomAt = k
		}
	}
}

func (r *runner) release(k int, key sched.Op) {
	st := &r.stages[k]
	freed := st.famActs[key]
	st.live -= freed
	delete(st.famActs, key)
	if r.opt.Trace != nil && freed != 0 {
		r.opt.Trace.Emit(obs.Event{
			Kind: obs.EvFree, Stage: k, From: k, Op: key,
			Start: st.free, End: st.free, Bytes: freed, Live: st.live,
		})
	}
}

func (r *runner) result() *Result {
	res := &Result{Stages: make([]StageResult, len(r.stages))}
	res.SpansRecorded = !r.opt.MakespanOnly || r.opt.Trace != nil
	end := 0.0
	for k := range r.stages {
		st := &r.stages[k]
		fin := st.free
		if r.opt.TailTime != nil {
			fin += r.opt.TailTime(k)
		}
		res.Stages[k] = StageResult{
			Spans: st.spans, ComputeTime: st.compute, Finish: fin, PeakAct: st.peak,
		}
		if fin > end {
			end = fin
		}
		if st.peak > res.PeakAct {
			res.PeakAct = st.peak
		}
	}
	res.IterTime = end
	busy := 0.0
	for k := range res.Stages {
		busy += res.Stages[k].ComputeTime
		if r.opt.TailTime != nil {
			busy += r.opt.TailTime(k)
		}
	}
	if end > 0 {
		res.BubbleRatio = 1 - busy/(float64(len(r.stages))*end)
	}
	res.OOM = r.oom
	res.OOMStage = r.oomAt
	return res
}
