package sim

import (
	"fmt"

	"mepipe/internal/errs"
	"mepipe/internal/sched"
)

// Utilization breaks one stage's iteration down by op class — the numbers
// behind the Fig 11/12 timelines: how much of the makespan went to
// forwards, backward halves, weight-gradient work, and bubbles.
type Utilization struct {
	Forward  float64
	Backward float64 // fused B or BAct
	Weight   float64 // W and WPiece
	Tail     float64 // optimizer step + gradient synchronisation
	Idle     float64
	// Sums to the iteration makespan.
	Total float64
}

// Fractions returns the breakdown normalised by the makespan.
func (u Utilization) Fractions() (f, b, w, tail, idle float64) {
	if u.Total == 0 {
		return 0, 0, 0, 0, 0
	}
	return u.Forward / u.Total, u.Backward / u.Total, u.Weight / u.Total,
		u.Tail / u.Total, u.Idle / u.Total
}

// errNoSpans rejects statistics over a result whose spans were dropped.
// MakespanOnly results used to flow through these reconstructions and come
// out as plausible-looking all-tail/all-idle breakdowns and empty memory
// curves; refusing with a classifiable sentinel is the fix.
func errNoSpans(what string) error {
	return fmt.Errorf("sim: %s needs per-op spans, but the result was produced with MakespanOnly (re-run without it): %w", what, errs.ErrIncompatible)
}

// StageUtilization computes the per-class busy time of stage k against the
// whole-iteration makespan. The gap between the stage's last op and its
// recorded finish is the tail (optimizer step plus gradient sync). It
// fails with a wrapped errs.ErrIncompatible when the result carries no
// spans (MakespanOnly).
func (r *Result) StageUtilization(k int) (Utilization, error) {
	if !r.SpansRecorded {
		return Utilization{}, errNoSpans("stage utilization")
	}
	u := Utilization{Total: r.IterTime}
	lastEnd := 0.0
	for _, sp := range r.Stages[k].Spans {
		d := sp.End - sp.Start
		switch sp.Op.Kind {
		case sched.F:
			u.Forward += d
		case sched.B, sched.BAct:
			u.Backward += d
		case sched.W, sched.WPiece:
			u.Weight += d
		}
		if sp.End > lastEnd {
			lastEnd = sp.End
		}
	}
	u.Tail = r.Stages[k].Finish - lastEnd
	if u.Tail < 0 {
		u.Tail = 0
	}
	u.Idle = u.Total - u.Forward - u.Backward - u.Weight - u.Tail
	if u.Idle < 0 {
		u.Idle = 0
	}
	return u, nil
}

// MeanUtilization averages the per-stage breakdowns. Like
// StageUtilization, it fails with a wrapped errs.ErrIncompatible on a
// span-less (MakespanOnly) result.
func (r *Result) MeanUtilization() (Utilization, error) {
	var u Utilization
	if !r.SpansRecorded {
		return u, errNoSpans("mean utilization")
	}
	if len(r.Stages) == 0 {
		return u, nil
	}
	for k := range r.Stages {
		s, err := r.StageUtilization(k)
		if err != nil {
			return Utilization{}, err
		}
		u.Forward += s.Forward
		u.Backward += s.Backward
		u.Weight += s.Weight
		u.Tail += s.Tail
		u.Idle += s.Idle
		u.Total = s.Total
	}
	n := float64(len(r.Stages))
	u.Forward /= n
	u.Backward /= n
	u.Weight /= n
	u.Tail /= n
	u.Idle /= n
	return u, nil
}

// MemPoint is one step of a stage's retained-bytes curve.
type MemPoint struct {
	Time  float64
	Bytes int64
}

// MemorySeries reconstructs stage k's retained activation bytes over time
// from the executed spans — the per-stage curve behind Fig 1's peak values.
// The same alloc/free rules as the live tracker apply: forwards allocate,
// fused backwards free, split backwards retain gradients until the
// family's weight gradients finish. It fails with a wrapped
// errs.ErrIncompatible when the result carries no spans (MakespanOnly).
func (r *Result) MemorySeries(s *sched.Schedule, costs Costs, k int) ([]MemPoint, error) {
	if !r.SpansRecorded {
		return nil, errNoSpans("memory series")
	}
	type fam struct{ act, grad int64 }
	live := int64(0)
	fams := map[sched.Op]fam{}
	piecesDone := map[sched.Op]int{}
	out := []MemPoint{{0, 0}}
	for _, sp := range r.Stages[k].Spans {
		switch sp.Op.Kind {
		case sched.F:
			b := costs.ActBytes(k, sp.Op)
			fams[sp.Op.Key()] = fam{act: b}
			live += b
		case sched.B:
			live -= fams[sp.Op.Key()].act
			delete(fams, sp.Op.Key())
		case sched.BAct:
			g := costs.GradBytes(k, sp.Op)
			f := fams[sp.Op.Key()]
			f.grad = g
			fams[sp.Op.Key()] = f
			live += g
		case sched.W:
			f := fams[sp.Op.Key()]
			live -= f.act + f.grad
			delete(fams, sp.Op.Key())
		case sched.WPiece:
			piecesDone[sp.Op.Key()]++
			if piecesDone[sp.Op.Key()] == s.WPieces {
				f := fams[sp.Op.Key()]
				live -= f.act + f.grad
				delete(fams, sp.Op.Key())
			}
		}
		out = append(out, MemPoint{sp.End, live})
	}
	return out, nil
}
