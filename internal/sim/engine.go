package sim

import (
	"fmt"
	"math"

	"mepipe/internal/errs"
	"mepipe/internal/sched"
)

// engState is the Session's dynamic-mode (§5) execution engine: a dense
// replay of the runner's event loop over the session's id tables. Dynamic W
// drain order depends on runtime decisions across stages, so there is no
// local window to re-propagate — instead the engine mirrors the runner
// op-for-op (same tie-breaks, same math.Max calls, same epsilon) on arrays
// that are allocated once and reused across Evals.
type engState struct {
	cursor []int // per stage: position of the next scheduled (non-W) op
	free   []float64
	comp   []float64
	live   []int64
	peak   []int64
	drain  []int64
	wq     [][]wRef
	wqHead []int
	fin    []float64
	done   []uint32
	ep     uint32
	oom    bool
	oomAt  int
}

type wRef struct {
	id    int32
	ready float64
}

func (se *Session) runEngine() error {
	e := se.eng
	if e == nil {
		e = &engState{}
		se.eng = e
	}
	e.cursor = sgrow(e.cursor, se.P)
	e.free = sgrow(e.free, se.P)
	e.comp = sgrow(e.comp, se.P)
	e.live = sgrow(e.live, se.P)
	e.peak = sgrow(e.peak, se.P)
	e.drain = sgrow(e.drain, se.P)
	e.wq = sgrow(e.wq, se.P)
	e.wqHead = sgrow(e.wqHead, se.P)
	e.fin = sgrow(e.fin, se.n)
	e.done = sgrow(e.done, se.n)
	e.ep++
	se.famEpoch++
	e.oom = false
	e.oomAt = 0
	for k := 0; k < se.P; k++ {
		e.cursor[k] = 0
		se.engSkip(k)
		e.free[k] = 0
		e.comp[k] = 0
		e.live[k] = 0
		e.peak[k] = 0
		e.drain[k] = 0
		e.wq[k] = e.wq[k][:0]
		e.wqHead[k] = 0
		if se.record {
			se.spanBuf[k] = se.spanBuf[k][:0]
		}
	}
	done := 0
	for done < se.n {
		k, ok := se.engNext()
		if !ok {
			return fmt.Errorf("sim: session: deadlock with %d/%d ops executed (schedule order violates dependencies): %w", done, se.n, errs.ErrUncertified)
		}
		done += se.engExecute(k)
	}
	return nil
}

// engSkip advances stage k's cursor past statically-placed W/WPiece entries;
// the engine executes those from the per-stage queue instead, exactly as
// the runner strips them from its order.
func (se *Session) engSkip(k int) {
	e := se.eng
	ord := se.order[k]
	c := e.cursor[k]
	for c < len(ord) {
		kd := se.opsl[ord[c]].Kind
		if kd != sched.W && kd != sched.WPiece {
			break
		}
		c++
	}
	e.cursor[k] = c
}

// engNext mirrors the runner's nextStage: earliest next start wins, ties go
// to the lowest stage.
func (se *Session) engNext() (int, bool) {
	e := se.eng
	best, bestStart, found := -1, math.Inf(1), false
	for k := 0; k < se.P; k++ {
		if e.cursor[k] >= len(se.order[k]) && e.wqHead[k] >= len(e.wq[k]) {
			continue
		}
		start, ok := se.engStart(k)
		if !ok {
			continue
		}
		if start < bestStart {
			best, bestStart, found = k, start, true
		}
	}
	return best, found
}

func (se *Session) engStart(k int) (float64, bool) {
	e := se.eng
	if e.cursor[k] < len(se.order[k]) {
		id := se.order[k][e.cursor[k]]
		rt, ok := se.engReady(id)
		if ok {
			return max(e.free[k], rt), true
		}
		// Next scheduled op blocked: a queued W can still run.
	}
	if e.wqHead[k] < len(e.wq[k]) {
		return max(e.free[k], e.wq[k][e.wqHead[k]].ready), true
	}
	return 0, false
}

func (se *Session) engReady(id int32) (float64, bool) {
	e := se.eng
	t := 0.0
	for ed := se.depOff[id]; ed < se.depOff[id+1]; ed++ {
		d := se.depID[ed]
		if e.done[d] != e.ep {
			return 0, false
		}
		f := e.fin[d] + se.depComm[ed]
		if f > t {
			t = f
		}
	}
	return t, true
}

func (se *Session) engExecute(k int) int {
	e := se.eng
	if e.cursor[k] < len(se.order[k]) {
		id := se.order[k][e.cursor[k]]
		rt, ok := se.engReady(id)
		if ok {
			start := max(e.free[k], rt)
			if n := se.engFillGap(k, start, id); n > 0 {
				return n
			}
			e.cursor[k]++
			se.engSkip(k)
			se.engRunOp(k, id, start)
			return 1
		}
		if e.wqHead[k] < len(e.wq[k]) {
			return se.engPopW(k)
		}
		return 0
	}
	if e.wqHead[k] < len(e.wq[k]) {
		return se.engPopW(k)
	}
	return 0
}

// engFillGap mirrors the runner's fillGap: drain a queued W that fits the
// stall before start, or — under memory pressure that draining can actually
// cover — before admitting an allocating op.
func (se *Session) engFillGap(k int, start float64, nextID int32) int {
	e := se.eng
	if e.wqHead[k] >= len(e.wq[k]) {
		return 0
	}
	w := e.wq[k][e.wqHead[k]]
	wStart := max(e.free[k], w.ready)
	dur := se.dur[w.id]
	const eps = 1e-9
	if wStart+dur <= start+eps {
		return se.engPopW(k)
	}
	if se.hasBudget {
		var need int64
		switch se.opsl[nextID].Kind {
		case sched.F, sched.BAct:
			need = se.memB[nextID]
		}
		if need > 0 && e.live[k]+need > se.budget[k] {
			if e.live[k]+need-e.drain[k] > se.budget[k] {
				// Uncoverable overshoot: admit the op and let its
				// allocation flag the OOM (see runner.fillGap).
				return 0
			}
			return se.engPopW(k)
		}
	}
	return 0
}

func (se *Session) engPopW(k int) int {
	e := se.eng
	w := e.wq[k][e.wqHead[k]]
	e.wqHead[k]++
	if e.wqHead[k] == len(e.wq[k]) {
		e.wq[k] = e.wq[k][:0]
		e.wqHead[k] = 0
	}
	start := max(e.free[k], w.ready)
	se.engRunOp(k, w.id, start)
	return 1
}

func (se *Session) engRunOp(k int, id int32, start float64) {
	e := se.eng
	dur := se.dur[id]
	end := start + dur
	e.free[k] = end
	e.comp[k] += dur
	if se.record {
		se.spanBuf[k] = append(se.spanBuf[k], Span{Op: se.opsl[id], Start: start, End: end})
	}
	e.fin[id] = end
	e.done[id] = e.ep
	f := se.famID[id]
	switch se.opsl[id].Kind {
	case sched.F:
		se.engAlloc(k, f, se.memB[id])
	case sched.B:
		se.engRelease(k, f)
	case sched.BAct:
		se.engAlloc(k, f, se.memB[id])
		se.engEnqueueW(k, id, end)
	case sched.W:
		se.touchFam(f)
		e.drain[k] -= se.famAcc[f]
		se.engRelease(k, f)
	case sched.WPiece:
		se.touchFam(f)
		se.famCnt[f]++
		if int(se.famCnt[f]) == se.wPieces {
			e.drain[k] -= se.famAcc[f]
			se.engRelease(k, f)
		}
	}
}

// engEnqueueW queues the family's precomputed weight-gradient ops and makes
// its retained bytes drainable, mirroring the runner's enqueueW.
func (se *Session) engEnqueueW(k int, bID int32, ready float64) {
	e := se.eng
	f := se.famID[bID]
	se.touchFam(f)
	e.drain[k] += se.famAcc[f]
	for w := se.wOff[bID]; w < se.wOff[bID+1]; w++ {
		e.wq[k] = append(e.wq[k], wRef{se.wIDs[w], ready})
	}
}

func (se *Session) engAlloc(k int, f int32, bytes int64) {
	e := se.eng
	se.touchFam(f)
	se.famAcc[f] += bytes
	e.live[k] += bytes
	if e.live[k] > e.peak[k] {
		e.peak[k] = e.live[k]
	}
	if se.hasBudget && e.live[k] > se.budget[k] && !e.oom {
		// Dynamic mode is OOM exactly when draining every queued weight
		// gradient could not bring the stage back under budget.
		if e.live[k]-e.drain[k] > se.budget[k] {
			e.oom = true
			e.oomAt = k
		}
	}
}

func (se *Session) engRelease(k int, f int32) {
	e := se.eng
	se.touchFam(f)
	e.live[k] -= se.famAcc[f]
	se.famAcc[f] = 0
}

// assembleDynamic writes the Result from the engine's per-stage state in
// the runner's result() float-operation order.
func (se *Session) assembleDynamic() {
	e := se.eng
	res := &se.res
	res.SpansRecorded = se.record
	res.PeakAct = 0
	end := 0.0
	for k := 0; k < se.P; k++ {
		fin := e.free[k]
		if se.hasTail {
			fin += se.tailV[k]
		}
		var spans []Span
		if se.record {
			spans = se.spanBuf[k]
		}
		res.Stages[k] = StageResult{Spans: spans, ComputeTime: e.comp[k], Finish: fin, PeakAct: e.peak[k]}
		if fin > end {
			end = fin
		}
		if e.peak[k] > res.PeakAct {
			res.PeakAct = e.peak[k]
		}
	}
	res.IterTime = end
	busy := 0.0
	for k := 0; k < se.P; k++ {
		busy += e.comp[k]
		if se.hasTail {
			busy += se.tailV[k]
		}
	}
	res.BubbleRatio = 0
	if end > 0 {
		res.BubbleRatio = 1 - busy/(float64(se.P)*end)
	}
	res.OOM = e.oom
	res.OOMStage = e.oomAt
}
