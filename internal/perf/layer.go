package perf

import (
	"fmt"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/model"
	"mepipe/internal/sched"
)

// TransformerLayerTime returns the time one worker spends on a single
// transformer layer per micro-batch (forward + full backward) when the
// sample is split `factor` ways by CP (useCP) or SPP (!useCP) — the
// quantity Figure 9 profiles. With CP the worker owns seq/factor tokens;
// with SPP the worker processes all `factor` slices sequentially, so the
// time is normalised to the per-worker token share (seq/factor) to make the
// two directly comparable.
func TransformerLayerTime(m config.Model, cl cluster.Cluster, factor int, useCP bool) (float64, error) {
	if factor < 1 {
		return 0, fmt.Errorf("perf: factor %d must be >= 1", factor)
	}
	par := config.Parallel{PP: 1, DP: cl.GPUs(), CP: 1, SPP: factor, VP: 1}
	if useCP {
		par = config.Parallel{PP: 1, DP: cl.GPUs() / factor, CP: factor, SPP: 1, VP: 1}
	}
	mesh, err := cluster.NewMesh(cl, par)
	if err != nil {
		return 0, err
	}
	c, err := New(m, mesh)
	if err != nil {
		return 0, err
	}
	if useCP || factor == 1 {
		op := sched.Op{Kind: sched.F}
		return c.layerForward(op) + c.layerActGrad(op) + c.layerWeightGrad(op) +
			c.cpRingTime(false) + c.cpRingTime(true), nil
	}
	var total float64
	for i := 0; i < factor; i++ {
		op := sched.Op{Kind: sched.F, Slice: i}
		total += c.layerForward(op) + c.layerActGrad(op) + c.layerWeightGrad(op)
	}
	return total / float64(factor), nil
}

// TransformerLayerTFLOPS returns the achieved per-GPU TFLOPS of one
// transformer layer under the given slicing — Figure 9's y-axis.
func TransformerLayerTFLOPS(m config.Model, cl cluster.Cluster, factor int, useCP bool) (float64, error) {
	t, err := TransformerLayerTime(m, cl, factor, useCP)
	if err != nil {
		return 0, err
	}
	seq := m.SeqLen
	flops := model.LayerForwardFlops(m, seq, 0) + model.LayerActGradFlops(m, seq, 0) + model.LayerWeightGradFlops(m, seq)
	perWorker := flops / float64(factor)
	return perWorker / t / 1e12, nil
}

// SliceCost returns a cost function over (width, start) token spans: the
// full processing time (forward + activation-gradient + weight-gradient) of
// one transformer layer for such a slice. It feeds partition.Optimal when
// exploring TeraPipe-style non-uniform slicing (§5's long-context
// discussion).
func (c *Costs) SliceCost() func(width, start int) float64 {
	return func(width, start int) float64 {
		// GEMMs appear three times (forward, dX, dW); the attention
		// score work appears once forward and twice backward.
		gemms := model.LayerProjFlops(c.M, width) + model.LayerMLPFlops(c.M, width)
		t := c.dense(3*gemms, width)
		t += c.dense(3*model.LayerAttnScoreFlops(c.M, width, start), width)
		t += float64(c.K.KernelsPerLayerF+c.K.KernelsPerLayerB) * c.Mesh.C.GPU.KernelOverhead
		return t
	}
}
