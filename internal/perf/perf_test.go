package perf

import (
	"testing"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/sched"
)

func costs(t *testing.T, m config.Model, par config.Parallel) *Costs {
	t.Helper()
	cl := cluster.RTX4090Cluster(par.Devices() / 8)
	mesh, err := cluster.NewMesh(cl, par)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(m, mesh)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsUnevenPartition(t *testing.T) {
	m := config.Llama13B() // 40 units
	cl := cluster.RTX4090Cluster(8)
	mesh, err := cluster.NewMesh(cl, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 1, VP: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(m, mesh); err == nil {
		t.Error("p=8 v=2 (16 chunks for 40 units) accepted")
	}
}

func TestSliceImbalanceAcrossSlices(t *testing.T) {
	// Later slices must cost more in F and BAct (causal attention) while
	// W stays constant — the §5 premise.
	c := costs(t, config.Llama13B(), config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1})
	var prevF, prevB float64
	for i := 0; i < 4; i++ {
		f := c.OpTime(1, sched.Op{Kind: sched.F, Slice: i})
		b := c.OpTime(1, sched.Op{Kind: sched.BAct, Slice: i})
		if f <= prevF || b <= prevB {
			t.Fatalf("slice %d not monotonically more expensive (F %.4g, B %.4g)", i, f, b)
		}
		prevF, prevB = f, b
	}
	w0 := c.OpTime(1, sched.Op{Kind: sched.W, Slice: 0})
	w3 := c.OpTime(1, sched.Op{Kind: sched.W, Slice: 3})
	if w0 != w3 {
		t.Errorf("weight-gradient time differs across slices: %.4g vs %.4g", w0, w3)
	}
}

func TestFig7Ratio(t *testing.T) {
	// §5's working example: with s=2, the forward of slice 0 is roughly
	// 75% of slice 1 — attention is the only asymmetric part, so the
	// ratio is model-dependent but must lie strictly in (0.7, 1).
	c := costs(t, config.Llama13B(), config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 2, VP: 1})
	f0 := c.OpTime(1, sched.Op{Kind: sched.F, Slice: 0})
	f1 := c.OpTime(1, sched.Op{Kind: sched.F, Slice: 1})
	if r := f0 / f1; r <= 0.7 || r >= 1.0 {
		t.Errorf("slice0/slice1 forward ratio %.3f, want in (0.7, 1.0)", r)
	}
}

func TestWPieceSumsToWholeW(t *testing.T) {
	c := costs(t, config.Llama13B(), config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1})
	whole := c.OpTime(2, sched.Op{Kind: sched.W, Slice: 1})
	var sum float64
	for p := 0; p < c.WPieces(); p++ {
		sum += c.OpTime(2, sched.Op{Kind: sched.WPiece, Slice: 1, Piece: p})
	}
	if diff := sum - whole; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("WPiece sum %.6g != whole W %.6g", sum, whole)
	}
}

func TestHeadChargedOnLastChunkOnly(t *testing.T) {
	c := costs(t, config.Llama13B(), config.Parallel{PP: 4, DP: 16, CP: 1, SPP: 1, VP: 2})
	// Stage 3 chunk 1 is the last global chunk (round-robin). It hosts 4
	// transformer layers (the head displaces one) vs 5 on stage 2 chunk 1
	// — that is the balancing design, so the head chunk must cost more
	// than its bare 4 layers but stay close to a 5-layer chunk.
	head := c.OpTime(3, sched.Op{Kind: sched.F, Chunk: 1})
	mid := c.OpTime(2, sched.Op{Kind: sched.F, Chunk: 1})
	if head <= mid*4/5 {
		t.Errorf("head chunk F %.4g should exceed its 4 bare layers (%.4g)", head, mid*4/5)
	}
	if head > mid*1.5 {
		t.Errorf("head chunk F %.4g badly unbalanced vs mid chunk %.4g", head, mid)
	}
}

func TestWavePlacementReindex(t *testing.T) {
	par := config.Parallel{PP: 4, DP: 16, CP: 1, SPP: 1, VP: 2}
	c := costs(t, config.Llama13B(), par)
	c.WithPlacement(sched.Wave{P: 4})
	// Under the wave, the last global chunk (7) lives on stage 0 local 1.
	if !c.isHeadChunk(0, 1) {
		t.Error("wave: head chunk should be stage 0, local 1")
	}
	if c.isHeadChunk(3, 1) {
		t.Error("wave: stage 3 local 1 is not the head chunk")
	}
	// Layers must still cover the whole model.
	total := 0
	for s := range c.layers {
		for _, n := range c.layers[s] {
			total += n
		}
	}
	if total != 38 {
		t.Errorf("wave layers sum %d, want 38", total)
	}
}

func TestCPChargesCommunicationSPPDoesNot(t *testing.T) {
	// Fig 9 / Table 2: CP pays ring communication, SPP does not. At equal
	// slicing factor the per-token forward cost of CP must exceed SPP's.
	mCfg := config.Llama13B()
	spp := costs(t, mCfg, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1})
	cp := costs(t, mCfg, config.Parallel{PP: 8, DP: 2, CP: 4, SPP: 1, VP: 1})
	// SPP op covers seq/4 tokens; CP op covers seq/4 tokens per worker.
	// Average forward cost per token over one micro-batch:
	var sppTotal float64
	for i := 0; i < 4; i++ {
		sppTotal += spp.OpTime(1, sched.Op{Kind: sched.F, Slice: i})
	}
	cpTotal := cp.OpTime(1, sched.Op{Kind: sched.F})
	if cpTotal <= sppTotal/4 {
		t.Errorf("CP per-worker forward %.4g should exceed SPP per-slice %.4g", cpTotal, sppTotal/4)
	}
}

func TestCommTimeGrowsWithHiddenSize(t *testing.T) {
	small := costs(t, config.Llama7B(), config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 1, VP: 1})
	big := costs(t, config.Llama34B(), config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 1, VP: 1})
	if small.CommTime(0, 1, sched.Op{Kind: sched.F}) >= big.CommTime(0, 1, sched.Op{Kind: sched.F}) {
		t.Error("larger hidden size must cost more pipeline communication")
	}
}

func TestRecomputeTradesMemoryForTime(t *testing.T) {
	base := costs(t, config.Llama13B(), config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 1, VP: 1})
	rec := costs(t, config.Llama13B(), config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 1, VP: 1, Recompute: config.RecomputeFull})
	op := sched.Op{Kind: sched.B}
	if rec.OpTime(1, op) <= base.OpTime(1, op) {
		t.Error("recompute must slow the backward")
	}
	fop := sched.Op{Kind: sched.F}
	if rec.ActBytes(1, fop) >= base.ActBytes(1, fop)/5 {
		t.Errorf("recompute retains %d bytes vs %d; want ~10x reduction", rec.ActBytes(1, fop), base.ActBytes(1, fop))
	}
}

func TestTailTimePositiveAndDPDependent(t *testing.T) {
	dp8 := costs(t, config.Llama13B(), config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 1, VP: 1})
	if dp8.TailTime(0) <= 0 {
		t.Error("tail time must be positive")
	}
	cl16 := cluster.RTX4090Cluster(16)
	mesh, err := cluster.NewMesh(cl16, config.Parallel{PP: 8, DP: 16, CP: 1, SPP: 1, VP: 1})
	if err != nil {
		t.Fatal(err)
	}
	dp16, err := New(config.Llama13B(), mesh)
	if err != nil {
		t.Fatal(err)
	}
	if dp16.TailTime(0) <= dp8.TailTime(0) {
		t.Error("a larger DP group must pay more gradient synchronisation")
	}
}

// TestLayerThroughputDegradation pins the Fig 9 anchor end-to-end: the
// per-layer throughput (fwd+bwd) at SPP=8 sits within a few points of the
// paper's −12.6%, and the CP curve is strictly worse at every size.
func TestLayerThroughputDegradation(t *testing.T) {
	m := config.Llama13B()
	rel := func(factor int, useCP bool) float64 {
		par := config.Parallel{PP: 8, DP: 8, CP: 1, SPP: factor, VP: 1}
		if useCP {
			par = config.Parallel{PP: 8, DP: 8 / factor, CP: factor, SPP: 1, VP: 1}
		}
		c := costs(t, m, par)
		// Average layer time per token over a micro-batch.
		var tTotal float64
		if useCP || factor == 1 {
			op := sched.Op{Kind: sched.F}
			tTotal = c.layerForward(op) + c.layerActGrad(op) + c.layerWeightGrad(op) + c.cpRingTime(false) + c.cpRingTime(true)
		} else {
			for i := 0; i < factor; i++ {
				op := sched.Op{Kind: sched.F, Slice: i}
				tTotal += c.layerForward(op) + c.layerActGrad(op) + c.layerWeightGrad(op)
			}
		}
		return tTotal
	}
	base := rel(1, false)
	spp8 := rel(8, false)
	drop := 1 - base/spp8
	if drop < 0.08 || drop > 0.20 {
		t.Errorf("SPP=8 layer slowdown %.1f%%, want ≈ 12.6%% ± a few points", 100*drop)
	}
	// A CP op covers seq/cp tokens per worker while the SPP sum covers
	// the whole sequence; normalise to whole-sample cost before
	// comparing.
	for _, f := range []int{2, 4, 8} {
		if rel(f, true)*float64(f) <= rel(f, false) {
			t.Errorf("CP=%d should be slower than SPP=%d per token (Fig 9)", f, f)
		}
	}
}

// TestSlicePartitionCosts: a non-uniform partition must shift per-slice
// costs and memory to the declared widths, preserving totals.
func TestSlicePartitionCosts(t *testing.T) {
	m := config.Llama13B()
	par := config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1}
	uni := costs(t, m, par)
	nonUni := costs(t, m, par)
	if _, err := nonUni.WithSlicePartition([]int{2048, 1024, 512, 512}); err != nil {
		t.Fatal(err)
	}
	// Slice 0 is wider, so costlier; slice 3 narrower, so cheaper.
	if nonUni.OpTime(1, sched.Op{Kind: sched.F, Slice: 0}) <= uni.OpTime(1, sched.Op{Kind: sched.F, Slice: 0}) {
		t.Error("wide slice 0 should cost more than uniform")
	}
	if nonUni.OpTime(1, sched.Op{Kind: sched.F, Slice: 3}) >= uni.OpTime(1, sched.Op{Kind: sched.F, Slice: 3}) {
		t.Error("narrow slice 3 should cost less than uniform")
	}
	// Activation memory follows the widths exactly.
	u0 := uni.ActBytes(1, sched.Op{Kind: sched.F, Slice: 0})
	n0 := nonUni.ActBytes(1, sched.Op{Kind: sched.F, Slice: 0})
	if n0 != 2*u0 {
		t.Errorf("slice 0 activations %d, want 2x uniform %d", n0, u0)
	}
	// Invalid partitions rejected.
	if _, err := nonUni.WithSlicePartition([]int{4096}); err == nil {
		t.Error("wrong slice count accepted")
	}
	if _, err := nonUni.WithSlicePartition([]int{4096, 0, 0, 0}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := nonUni.WithSlicePartition([]int{1024, 1024, 1024, 512}); err == nil {
		t.Error("wrong total accepted")
	}
}

// TestTPScalesComputeAndMemory: tensor parallelism must shrink per-worker
// GEMM time and parameters while adding all-reduce cost.
func TestTPScalesComputeAndMemory(t *testing.T) {
	m := config.Llama13B()
	base := costs(t, m, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 1, VP: 1})
	cl16 := cluster.RTX4090Cluster(16)
	mesh, err := cluster.NewMesh(cl16, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 1, VP: 1, TP: 2})
	if err != nil {
		t.Fatal(err)
	}
	tp2, err := New(m, mesh)
	if err != nil {
		t.Fatal(err)
	}
	op := sched.Op{Kind: sched.W}
	// Weight gradients have no all-reduce, so TP=2 must halve-ish them.
	b, d := base.OpTime(1, op), tp2.OpTime(1, op)
	if r := d / b; r < 0.4 || r > 0.7 {
		t.Errorf("TP=2 weight-grad ratio %.2f, want ~0.5", r)
	}
	// Forward pays the all-reduce: on PCIe it should NOT halve.
	fb, fd := base.OpTime(1, sched.Op{Kind: sched.F}), tp2.OpTime(1, sched.Op{Kind: sched.F})
	if fd < 0.55*fb {
		t.Errorf("TP=2 forward on PCIe %.4f vs %.4f: all-reduce cost missing", fd, fb)
	}
	// Activations shrink but not fully by 2 (replicated residual path).
	ab, ad := base.ActBytes(1, sched.Op{Kind: sched.F}), tp2.ActBytes(1, sched.Op{Kind: sched.F})
	if !(ad < ab && ad > ab/2) {
		t.Errorf("TP=2 activations %d vs %d: want between 1/2 and 1x", ad, ab)
	}
	// TP must divide the head count.
	badMesh, err := cluster.NewMesh(cl16, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 1, VP: 1, TP: 2})
	if err != nil {
		t.Fatal(err)
	}
	badModel := m
	badModel.NumHeads = 5
	badModel.NumKVHeads = 5
	if _, err := New(badModel, badMesh); err == nil {
		t.Error("TP not dividing heads accepted")
	}
}

// TestSelectiveRecompute sits strictly between none and full in both
// memory and backward time.
func TestSelectiveRecompute(t *testing.T) {
	m := config.Llama13B()
	mk := func(mode config.RecomputeMode) *Costs {
		return costs(t, m, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 1, VP: 1, Recompute: mode})
	}
	none, sel, full := mk(config.RecomputeNone), mk(config.RecomputeSelective), mk(config.RecomputeFull)
	fop := sched.Op{Kind: sched.F}
	bop := sched.Op{Kind: sched.B}
	an, as, af := none.ActBytes(1, fop), sel.ActBytes(1, fop), full.ActBytes(1, fop)
	if !(af < as && as < an) {
		t.Errorf("memory ordering broken: none %d, selective %d, full %d", an, as, af)
	}
	// Selective should roughly halve activations for Llama shapes
	// (3·ffn of the ~32h per-token elements).
	if r := float64(as) / float64(an); r < 0.4 || r > 0.6 {
		t.Errorf("selective keeps %.2f of activations, want ~0.5", r)
	}
	tn, ts, tf := none.OpTime(1, bop), sel.OpTime(1, bop), full.OpTime(1, bop)
	if !(tn < ts && ts < tf) {
		t.Errorf("backward-time ordering broken: none %v, selective %v, full %v", tn, ts, tf)
	}
	// Selective overhead must be mild (well under full's extra forward).
	if (ts-tn)/tn > 0.35 {
		t.Errorf("selective backward overhead %.1f%% too high", 100*(ts-tn)/tn)
	}
}
