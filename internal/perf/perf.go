// Package perf turns a (model, cluster, parallel strategy) triple into the
// exact per-op costs the simulator and the schedule generator consume:
// compute durations from FLOP accounting divided by calibrated achievable
// throughput (hw.EffCurve), per-layer kernel-launch overheads, context-
// parallel ring-attention communication, pipeline point-to-point transfer
// delays, per-op activation/gradient footprints, and the end-of-iteration
// gradient synchronisation + optimizer tail. It is the reproduction's
// stand-in for MEPipe's profiler component (§6).
package perf

import (
	"fmt"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/errs"
	"mepipe/internal/model"
	"mepipe/internal/sched"
)

// Knobs are the calibration constants of the cost model. Defaults are tuned
// so end-to-end simulations land on the paper's measured anchors (116
// TFLOPS / 35% MFU for Llama 13B on 64 RTX 4090s, Fig 9's operator
// degradation, Table 9's A100 times).
type Knobs struct {
	// KernelsPerLayerF/B are kernel launches charged per transformer
	// layer per forward / backward-half pass.
	KernelsPerLayerF int
	KernelsPerLayerB int
	// CPOverlap is the fraction of context-parallel ring communication
	// hidden behind attention compute (Megatron overlaps the ring
	// exchange with per-chunk attention kernels).
	CPOverlap float64
	// RecomputeOverhead is the extra forward fraction recomputation adds
	// to each backward (§7.3 quotes 33% more compute ≈ one extra forward
	// of the roughly 3×-forward total).
	RecomputeOverhead float64
}

// DefaultKnobs returns the calibrated constants.
func DefaultKnobs() Knobs {
	return Knobs{
		KernelsPerLayerF:  12,
		KernelsPerLayerB:  20,
		CPOverlap:         0.3,
		RecomputeOverhead: 1.0,
	}
}

// Costs implements sched.Estimator and sim.Costs for one configuration.
type Costs struct {
	M    config.Model
	Mesh cluster.Mesh
	K    Knobs

	p, v, s int
	place   sched.Placement
	// layers[stage][chunk], indexed by the *placement's* local chunk
	layers [][]int
	// tokens handled per compute call and per worker
	sliceTokens  int // tokens per SPP slice (seq when spp == 1)
	workerTokens int // tokens of one micro-batch owned by this worker (seq/cp)
	callTokens   int // tokens per GEMM kernel call (CP halves twice)
	// sliceWidths/sliceStarts describe the (possibly non-uniform) slice
	// partition; nil means uniform sliceTokens-wide slices.
	sliceWidths, sliceStarts []int

	recompute config.RecomputeMode
}

// New builds the cost model. The schedule shape is derived from the
// strategy: p = PP, v = VP, s = SPP.
func New(m config.Model, mesh cluster.Mesh) (*Costs, error) {
	par := mesh.Par
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if !model.EvenPartition(m.NumLayers, par.PP, par.VP) {
		return nil, fmt.Errorf("perf: %s (%d layers + 2) does not split evenly into %d×%d chunks: %w", m.Name, m.NumLayers, par.PP, par.VP, errs.ErrIncompatible)
	}
	if m.SeqLen%(par.SPP*par.CP) != 0 {
		return nil, fmt.Errorf("perf: sequence %d not divisible by slice factor %d: %w", m.SeqLen, par.SPP*par.CP, errs.ErrIncompatible)
	}
	if tp := par.TPSize(); m.NumHeads%tp != 0 || m.FFNHidden%tp != 0 {
		return nil, fmt.Errorf("perf: tensor-parallel size %d does not divide %d heads / %d ffn: %w", tp, m.NumHeads, m.FFNHidden, errs.ErrIncompatible)
	}
	c := &Costs{
		M: m, Mesh: mesh, K: DefaultKnobs(),
		p: par.PP, v: par.VP, s: par.SPP,
		recompute: par.Recompute,
	}
	c.place = sched.RoundRobin{P: par.PP, V: par.VP}
	c.reindexLayers()
	c.workerTokens = m.SeqLen / par.CP
	c.sliceTokens = c.workerTokens / par.SPP
	c.callTokens = c.sliceTokens
	if par.CP > 1 {
		// Megatron CP assigns each worker two symmetric chunks of
		// seq/(2·cp) tokens, so kernels run at half the worker's
		// tokens per call.
		c.callTokens = c.workerTokens / 2
	}
	return c, nil
}

// WithSlicePartition replaces the uniform slice widths with an explicit
// partition (TeraPipe-style non-uniform slicing; see internal/partition).
// The widths must sum to the worker's tokens. It returns the receiver.
func (c *Costs) WithSlicePartition(widths []int) (*Costs, error) {
	if len(widths) != c.s {
		return nil, fmt.Errorf("perf: %d widths for %d slices", len(widths), c.s)
	}
	total, starts := 0, make([]int, len(widths))
	for i, w := range widths {
		if w <= 0 {
			return nil, fmt.Errorf("perf: non-positive slice width %d", w)
		}
		starts[i] = total
		total += w
	}
	if total != c.workerTokens {
		return nil, fmt.Errorf("perf: widths sum to %d, want %d", total, c.workerTokens)
	}
	c.sliceWidths = append([]int(nil), widths...)
	c.sliceStarts = starts
	return c, nil
}

// sliceShape returns the token width and absolute start of slice i.
func (c *Costs) sliceShape(i int) (width, start int) {
	if c.sliceWidths != nil {
		return c.sliceWidths[i], c.sliceStarts[i]
	}
	return c.sliceTokens, i * c.sliceTokens
}

// WithPlacement re-targets the cost model at a different chunk placement
// (e.g. the wave layout of Hanayo/ZBV) and returns the receiver.
func (c *Costs) WithPlacement(place sched.Placement) *Costs {
	c.place = place
	c.reindexLayers()
	return c
}

// reindexLayers maps per-global-chunk layer counts onto the placement's
// (stage, local chunk) coordinates.
func (c *Costs) reindexLayers() {
	global := model.LayersPerGlobalChunk(c.M.NumLayers, c.p*c.v)
	c.layers = make([][]int, c.p)
	for s := range c.layers {
		c.layers[s] = make([]int, c.v)
	}
	for g, n := range global {
		s, l := c.place.Host(g)
		c.layers[s][l] = n
	}
}

// dense returns the time to execute the given FLOPs at the calibrated
// throughput for kernels of t tokens.
func (c *Costs) dense(flops float64, t int) float64 {
	gpu := c.Mesh.C.GPU
	return flops / (gpu.MatmulFLOPS * c.Mesh.C.Eff.At(t))
}

// tp returns the tensor-parallel group size.
func (c *Costs) tp() float64 { return float64(c.Mesh.Par.TPSize()) }

// tpARTime returns the per-layer tensor-parallel synchronisation charge:
// Megatron inserts two all-reduces of the layer's activations per forward
// (after attention and after the MLP) and two per backward. This is the
// term that makes TP prohibitive on PCIe (§2.2) and affordable on NVLink.
func (c *Costs) tpARTime(tokens int) float64 {
	g := c.Mesh.Par.TPSize()
	if g <= 1 {
		return 0
	}
	bytes := int64(tokens) * int64(c.M.HiddenSize) * model.BytesFP16
	return 2 * cluster.AllReduceTime(c.Mesh.TPGroupLink(), g, bytes)
}

// attnStarts returns the absolute token offsets of the attention work a
// forward op covers: one span per CP chunk (symmetric placement) or the
// single SPP slice span.
func (c *Costs) attnSpans(op sched.Op) [][2]int {
	cp := c.Mesh.Par.CP
	if cp > 1 {
		half := c.workerTokens / 2
		// Symmetric chunks w and 2cp−1−w; use the average worker
		// (w = cp/2) — the placement balances work across workers.
		w := cp / 2
		return [][2]int{
			{w * half, half},
			{(2*cp - 1 - w) * half, half},
		}
	}
	w, start := c.sliceShape(op.Slice)
	return [][2]int{{start, w}}
}

// gemmShape returns the tokens per GEMM kernel call and call count for op:
// one call covering the slice for SPP, two calls of workerTokens/2 for CP.
func (c *Costs) gemmShape(op sched.Op) (tokens int, calls float64) {
	if c.Mesh.Par.CP > 1 {
		return c.callTokens, 2
	}
	w, _ := c.sliceShape(op.Slice)
	return w, 1
}

// layerForward returns the forward time of one transformer layer for op.
func (c *Costs) layerForward(op sched.Op) float64 {
	t := 0.0
	tok, calls := c.gemmShape(op)
	gemms := (model.LayerProjFlops(c.M, tok) + model.LayerMLPFlops(c.M, tok)) / c.tp()
	t += c.dense(gemms, tok) * calls
	for _, span := range c.attnSpans(op) {
		t += c.dense(model.LayerAttnScoreFlops(c.M, span[1], span[0])/c.tp(), span[1])
	}
	t += float64(c.K.KernelsPerLayerF) * c.Mesh.C.GPU.KernelOverhead
	t += c.tpARTime(int(float64(tok) * calls))
	return t
}

// layerActGrad returns the activation-gradient backward time of one layer.
func (c *Costs) layerActGrad(op sched.Op) float64 {
	t := 0.0
	tok, calls := c.gemmShape(op)
	gemms := (model.LayerProjFlops(c.M, tok) + model.LayerMLPFlops(c.M, tok)) / c.tp()
	t += c.dense(gemms, tok) * calls
	for _, span := range c.attnSpans(op) {
		t += c.dense(2*model.LayerAttnScoreFlops(c.M, span[1], span[0])/c.tp(), span[1])
	}
	t += float64(c.K.KernelsPerLayerB) * c.Mesh.C.GPU.KernelOverhead
	t += c.tpARTime(int(float64(tok) * calls))
	return t
}

// layerWeightGrad returns the weight-gradient backward time of one layer
// for op's slice — GEMM-only, hence position-independent (§5).
func (c *Costs) layerWeightGrad(op sched.Op) float64 {
	tok, calls := c.gemmShape(op)
	gemms := model.LayerWeightGradFlops(c.M, tok) / c.tp()
	return c.dense(gemms, tok)*calls +
		float64(model.WeightGradGEMMsPerLayer)*c.Mesh.C.GPU.KernelOverhead
}

// recomputeTime returns the per-layer rebuild cost the backward pass pays
// under the active recomputation mode: a full forward replay, or just the
// two MLP up-projections for the selective variant.
func (c *Costs) recomputeTime(op sched.Op) float64 {
	switch c.recompute {
	case config.RecomputeFull:
		return c.K.RecomputeOverhead * c.layerForward(op)
	case config.RecomputeSelective:
		tok, calls := c.gemmShape(op)
		flops := 2.0 / 3.0 * model.LayerMLPFlops(c.M, tok) / c.tp()
		return c.dense(flops, tok) * calls
	}
	return 0
}

// cpRingTime returns the per-layer context-parallel communication charge:
// the ring exchange of K/V blocks (forward) or K/V plus their gradients
// (backward), after the overlap discount.
func (c *Costs) cpRingTime(backward bool) float64 {
	cp := c.Mesh.Par.CP
	if cp <= 1 {
		return 0
	}
	kvDim := c.M.HeadDim() * c.M.NumKVHeads
	bytes := int64(float64(cp-1) / float64(cp) * float64(c.M.SeqLen) * float64(2*kvDim) * model.BytesFP16)
	if backward {
		bytes *= 2
	}
	link := c.Mesh.CPGroupLink()
	raw := cluster.P2PTime(link, bytes) + float64(cp-1)*link.Latency
	return raw * (1 - c.K.CPOverlap)
}

// headTime returns the LM-head (+loss) time for the op's slice.
func (c *Costs) headTime(op sched.Op, backward bool) float64 {
	tok, _ := c.sliceShape(op.Slice)
	if c.Mesh.Par.CP > 1 {
		tok = c.workerTokens
	}
	f := model.HeadForwardFlops(c.M, tok)
	if backward {
		f = model.HeadBackwardFlops(c.M, tok)
	}
	gemmTok, _ := c.gemmShape(op)
	return c.dense(f/c.tp(), gemmTok)
}

// isHeadChunk reports whether (stage, chunk) hosts the LM head — the last
// global chunk under the active placement.
func (c *Costs) isHeadChunk(stage, chunk int) bool {
	return c.place.Global(stage, chunk) == c.p*c.v-1
}

// OpTime implements sched.Estimator.
func (c *Costs) OpTime(stage int, op sched.Op) float64 {
	nl := float64(c.layers[stage][op.Chunk])
	var t float64
	switch op.Kind {
	case sched.F:
		t = nl * (c.layerForward(op) + c.cpRingTime(false))
		if c.isHeadChunk(stage, op.Chunk) {
			t += c.headTime(op, false)
		}
	case sched.B:
		t = nl * (c.layerActGrad(op) + c.layerWeightGrad(op) + c.cpRingTime(true))
		if c.isHeadChunk(stage, op.Chunk) {
			t += c.headTime(op, true)
		}
		t += nl * c.recomputeTime(op)
	case sched.BAct:
		t = nl * (c.layerActGrad(op) + c.cpRingTime(true))
		if c.isHeadChunk(stage, op.Chunk) {
			t += c.headTime(op, true) / 2
		}
		t += nl * c.recomputeTime(op)
	case sched.W:
		t = nl * c.layerWeightGrad(op)
		if c.isHeadChunk(stage, op.Chunk) {
			t += c.headTime(op, true) / 2
		}
	case sched.WPiece:
		whole := nl * c.layerWeightGrad(op)
		if c.isHeadChunk(stage, op.Chunk) {
			whole += c.headTime(op, true) / 2
		}
		t = whole / float64(c.wPieces())
	}
	return t
}

// wPieces returns the fine-grained decomposition width used for WPiece ops.
func (c *Costs) wPieces() int { return model.WeightGradGEMMsPerLayer }

// WPieces exposes the decomposition width for schedule construction.
func (c *Costs) WPieces() int { return c.wPieces() }

// MicroInvariantCosts implements sched.MicroInvariant: every per-op query
// of this model (OpTime, CommTime, ActBytes, GradBytes, CommBytes) reads
// the op's kind, chunk, slice, and piece — never Op.Micro — so all
// micro-batches of a family cost the same, bitwise. Consumers may query
// the micro-0 twin and copy.
func (c *Costs) MicroInvariantCosts() bool { return true }

// CommTime implements sched.Estimator: the pipeline point-to-point delay of
// op's output from stage `from` to stage `to`.
func (c *Costs) CommTime(from, to int, op sched.Op) float64 {
	return cluster.P2PTime(c.Mesh.StageLink(from), c.CommBytes(from, to, op))
}

// CommBytes implements sim.BytesEstimator: the payload of op's output
// crossing from stage `from` to stage `to` (one slice's hidden states or
// gradients in fp16).
func (c *Costs) CommBytes(from, to int, op sched.Op) int64 {
	w, _ := c.sliceShape(op.Slice)
	return int64(w) * int64(c.M.HiddenSize) * model.BytesFP16
}

// ActBytes implements sim.Costs: activation bytes retained when op (a
// forward) completes.
func (c *Costs) ActBytes(stage int, op sched.Op) int64 {
	var per int64
	switch c.recompute {
	case config.RecomputeFull:
		per = model.RecomputeActivationBytesPerToken(c.M)
	case config.RecomputeSelective:
		per = model.SelectiveActivationBytesPerToken(c.M, c.Mesh.Par.TPSize())
	default:
		per = model.LayerActivationBytesPerTokenTP(c.M, c.Mesh.Par.TPSize())
	}
	w, _ := c.sliceShape(op.Slice)
	return int64(c.layers[stage][op.Chunk]) * int64(w) * per
}

// GradBytes implements sim.Costs: bytes retained from BAct until the
// family's weight gradients finish.
func (c *Costs) GradBytes(stage int, op sched.Op) int64 {
	w, _ := c.sliceShape(op.Slice)
	return int64(c.layers[stage][op.Chunk]) * int64(w) * model.ActGradBytesPerTokenTP(c.M, c.Mesh.Par.TPSize())
}

// TailTime returns the end-of-iteration cost per stage: ZeRO-1 gradient
// reduce-scatter + parameter all-gather over the stage's DP×CP group, plus
// a small optimizer-step charge.
func (c *Costs) TailTime(stage int) float64 {
	group := c.Mesh.Par.DP * c.Mesh.Par.CP
	params := model.StageParams(c.M, c.p)[stage] / int64(c.Mesh.Par.TPSize())
	gradBytes := params * model.BytesFP16
	link := c.Mesh.DPGroupLink()
	t := cluster.ReduceScatterTime(link, group, gradBytes) +
		cluster.AllGatherTime(link, group, gradBytes)
	// Optimizer step: streaming 16 bytes/param of the local shard at an
	// assumed 800 GB/s effective memory bandwidth.
	shard := params / int64(group)
	t += float64(shard) * 16 / 800e9
	return t
}
