package memplan

import (
	"testing"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
)

func plan(t *testing.T, m config.Model, par config.Parallel) *Plan {
	t.Helper()
	cl := cluster.RTX4090Cluster(par.Devices() / 8)
	mesh, err := cluster.NewMesh(cl, par)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(m, mesh)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlanShape(t *testing.T) {
	p := plan(t, config.Llama13B(), config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1})
	if len(p.Static) != 8 || len(p.Temp) != 8 || len(p.ActBudget) != 8 {
		t.Fatal("plan must have one entry per stage")
	}
	for k := range p.Static {
		if p.Static[k] <= 0 || p.Temp[k] <= 0 {
			t.Fatalf("stage %d: non-positive components", k)
		}
		if p.ActBudget[k] > p.Capacity {
			t.Fatalf("stage %d: budget exceeds capacity", k)
		}
	}
	// The last stage carries the loss logits, so its temp is the largest.
	if p.Temp[7] <= p.Temp[3] {
		t.Error("last stage should have the largest temporary memory (loss logits)")
	}
	if !p.Feasible() {
		t.Error("13B at PP=8 must be feasible on 24 GB")
	}
}

// TestStaticMatchesPaperFormula pins §4.5: static ≈ 4m/p + 8m/(d·p).
func TestStaticMatchesPaperFormula(t *testing.T) {
	m := config.Llama13B()
	p := plan(t, m, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1})
	// Mid stages hold ~5 layers = m/8 of the model.
	var total int64
	for _, s := range p.Static {
		total += s
	}
	// Summed over stages: 4m (FP16 params+grads) plus p workers each
	// holding a 12m/64 optimizer shard.
	mParams := float64(13e9) * 0.955 // preset is ~12.4B
	want := 4*mParams + 8*12*mParams/64
	got := float64(total)
	if r := got / want; r < 0.9 || r > 1.1 {
		t.Errorf("summed static %.2fGB vs paper formula %.2fGB (ratio %.2f)", got/1e9, want/1e9, r)
	}
}

// Test34BStaticGate reproduces §7.4: at PP=4/8 the static memory of Llama
// 34B exceeds 24 GB cards entirely; PP=16 leaves room.
func Test34BStaticGate(t *testing.T) {
	m := config.Llama34B()
	if p := plan(t, m, config.Parallel{PP: 4, DP: 16, CP: 1, SPP: 1, VP: 1}); p.Feasible() {
		t.Error("34B at PP=4 should be infeasible on 24 GB")
	}
	// §7.4: "the static memory exceeds the capacity of the GPU" at the
	// maximum VPP/ZBV pipeline size of 8 — no practical activation room.
	if p := plan(t, m, config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 1, VP: 1}); p.ActBudget[3] > 2<<30 {
		t.Errorf("34B at PP=8 leaves %.1f GiB for activations, want < 2 GiB", float64(p.ActBudget[3])/(1<<30))
	}
	p := plan(t, m, config.Parallel{PP: 16, DP: 4, CP: 1, SPP: 16, VP: 1})
	if !p.Feasible() {
		t.Fatal("34B at PP=16 must be feasible")
	}
	// §7.4: "the left memory for activations is around 5GB".
	if b := float64(p.ActBudget[1]) / (1 << 30); b < 3 || b > 10 {
		t.Errorf("34B PP=16 activation budget %.1f GiB, want ≈ 5 GiB", b)
	}
}

func TestSplitReserveShrinksBudget(t *testing.T) {
	m := config.Llama13B()
	par := config.Parallel{PP: 8, DP: 4, CP: 2, SPP: 1, VP: 1}
	cl := cluster.RTX4090Cluster(8)
	mesh, _ := cluster.NewMesh(cl, par)
	base, err := New(m, mesh)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := NewWithReserve(m, mesh, SplitReserve)
	if err != nil {
		t.Fatal(err)
	}
	for k := range base.ActBudget {
		if tight.ActBudget[k] >= base.ActBudget[k] {
			t.Fatalf("stage %d: reserve did not shrink the budget", k)
		}
	}
}

func TestChooseF(t *testing.T) {
	par := config.Parallel{PP: 8, DP: 8, CP: 1, SPP: 4, VP: 1}
	fam := int64(1 << 30)
	// Plenty of budget: f caps at the bubble-optimal v·max+min−1 = 11.
	f, err := ChooseF(par, fam, 0, 100<<30)
	if err != nil || f != 11 {
		t.Errorf("ChooseF(rich) = %d, %v; want 11", f, err)
	}
	// Tight: 6 families fit.
	f, err = ChooseF(par, fam, 0, 6<<30)
	if err != nil || f != 6 {
		t.Errorf("ChooseF(6GB) = %d, %v; want 6", f, err)
	}
	// Gradient retention reserves two families' worth off the top.
	f, err = ChooseF(par, fam, 1<<29, 7<<30)
	if err != nil || f != 6 {
		t.Errorf("ChooseF(grad reserve) = %d, %v; want 6", f, err)
	}
	// Below the v·s = 4 minimum: no variant exists (§4.2).
	if _, err := ChooseF(par, fam, 0, 3<<30); err == nil {
		t.Error("ChooseF below the v·s minimum must fail")
	}
	if _, err := ChooseF(par, 0, 0, 1<<30); err == nil {
		t.Error("zero family footprint must fail")
	}
}
