// Package memplan implements the paper's memory model (§4.5): the static /
// temporary / activation decomposition of a worker's memory, the per-stage
// activation budget under a device's capacity, and the selection of the
// SVPP scheduling-method variant (the f knob of §4.2) that fits the budget
// with the lowest bubble ratio.
package memplan

import (
	"fmt"

	"mepipe/internal/cluster"
	"mepipe/internal/config"
	"mepipe/internal/errs"
	"mepipe/internal/model"
	"mepipe/internal/sched"
)

// AllocatorReserve approximates the CUDA caching-allocator headroom real
// frameworks lose to fragmentation and transient buffers (§7.2 observes the
// PyTorch allocator reserving beyond the model's accounting; this constant
// stands in for that gap).
const AllocatorReserve = int64(1) << 30 // 1 GiB

// Plan is the memory budget of one configuration.
type Plan struct {
	Capacity int64 // device memory
	// Static[stage]: FP16 parameters + gradients of the stage plus the
	// worker's ZeRO optimizer shard.
	Static []int64
	// Temp[stage]: transient workspace (loss logits on the last stage,
	// communication buffers everywhere).
	Temp []int64
	// ActBudget[stage] = Capacity − Static − Temp − AllocatorReserve,
	// floored at zero.
	ActBudget []int64
}

// SplitReserve is the extra allocator headroom charged to zero-bubble
// baselines (ZB, ZBV): deferring weight gradients keeps per-GEMM inputs and
// output gradients alive as many small tensors, and §7.2 reports the
// PyTorch caching allocator reserving enough extra memory to push ZB out of
// configurations that fit on paper. MEPipe's engine drains weight gradients
// under memory pressure (§5) and is charged only the base reserve.
const SplitReserve = int64(3) << 29 // 1.5 GiB

// New computes the plan for one model/strategy on a cluster, charging
// `extraReserve` additional allocator headroom (see SplitReserve).
func New(m config.Model, mesh cluster.Mesh) (*Plan, error) {
	return NewWithReserve(m, mesh, 0)
}

// NewWithReserve is New with extra allocator headroom.
func NewWithReserve(m config.Model, mesh cluster.Mesh, extraReserve int64) (*Plan, error) {
	par := mesh.Par
	if err := m.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{Capacity: mesh.C.GPU.MemoryBytes}
	stageParams := model.StageParams(m, par.PP)
	devices := int64(par.Devices())
	shard := (model.TotalParams(m) + devices - 1) / devices
	callTokens := m.SeqLen / (par.SPP * par.CP)
	tp := int64(par.TPSize())
	for k := 0; k < par.PP; k++ {
		// FP16 parameters + gradients per stage (sharded across the
		// tensor-parallel group), plus the worker's cluster-wide ZeRO
		// optimizer shard (12 bytes/param over all devices — §7.2,
		// §7.4).
		static := stageParams[k]/tp*model.BytesPerParamStatic + shard*model.BytesPerParamOptimizer
		temp := int64(4) * int64(callTokens) * int64(m.HiddenSize) * model.BytesFP16
		if k == par.PP-1 {
			// Cross-entropy holds FP32 logits over the (vocab-
			// parallel under TP) vocabulary.
			temp += int64(callTokens) * int64(m.VocabSize) * model.BytesFP32 / tp
		}
		budget := p.Capacity - static - temp - AllocatorReserve - extraReserve
		if budget < 0 {
			budget = 0
		}
		p.Static = append(p.Static, static)
		p.Temp = append(p.Temp, temp)
		p.ActBudget = append(p.ActBudget, budget)
	}
	return p, nil
}

// Feasible reports whether any activations fit at all (static memory alone
// may exceed the device, e.g. Llama 34B at PP=4 on 24 GB cards, §7.4).
func (p *Plan) Feasible() bool {
	for _, b := range p.ActBudget {
		if b <= 0 {
			return false
		}
	}
	return true
}

// ChooseF selects the SVPP variant: the largest f (forwards in flight on
// stage 0 before the first backward) whose activation retention fits stage
// 0's budget, clamped to [v·s, v·max(p,s)+min(p,s)−1]. familyBytes is the
// retention of one slice-chunk forward on stage 0 (perf.Costs.ActBytes);
// gradBytes is the extra retention between a split backward and its weight
// gradients (perf.Costs.GradBytes) — two families' worth is reserved so the
// engine always has room to start a backward before any weight-gradient
// work is drainable (pass 0 for fused-backward schedules).
func ChooseF(par config.Parallel, familyBytes, gradBytes, budget int64) (int, error) {
	if familyBytes <= 0 {
		return 0, fmt.Errorf("memplan: non-positive family footprint %d: %w", familyBytes, errs.ErrIncompatible)
	}
	usable := budget - 2*gradBytes
	lo := par.VP * par.SPP
	hi := sched.DefaultF(par.PP, par.VP, par.SPP)
	f := int(usable / familyBytes)
	if f < lo {
		return 0, fmt.Errorf("memplan: budget %d fits only %d forwards, below the v·s=%d minimum (§4.2): %w", budget, f, lo, errs.ErrOOM)
	}
	if f > hi {
		f = hi
	}
	return f, nil
}
