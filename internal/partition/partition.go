// Package partition implements sequence-slice partitioning strategies.
//
// MEPipe slices samples uniformly and absorbs the causal-attention
// imbalance with fine-grained weight-gradient scheduling (§5), arguing that
// non-uniform slices hurt GEMM/FlashAttention efficiency. TeraPipe instead
// balances slice *times* with a dynamic-programming partitioner. The paper
// concedes (§5, last paragraph) that beyond ~128k tokens of context the
// attention imbalance grows so large that the non-uniform strategy wins.
// This package provides both, so the crossover can be measured
// (bench experiment "longctx").
package partition

import "fmt"

// Uniform splits seq tokens into s equal slices (seq must divide evenly).
func Uniform(seq, s int) ([]int, error) {
	if s <= 0 || seq <= 0 || seq%s != 0 {
		return nil, fmt.Errorf("partition: %d tokens do not split into %d uniform slices", seq, s)
	}
	widths := make([]int, s)
	for i := range widths {
		widths[i] = seq / s
	}
	return widths, nil
}

// CostFunc returns the processing time of a slice of `width` tokens whose
// first token sits at absolute position `start`.
type CostFunc func(width, start int) float64

// Optimal computes the slice widths minimising the *maximum* slice time —
// TeraPipe's balance objective, which minimises the pipeline's critical
// path when every stage processes the slices back to back. Boundaries are
// restricted to multiples of quantum (operators want aligned shapes; the
// paper notes powers of two perform best). Dynamic programming over
// (boundary, slices-used) in O((seq/quantum)²·s).
func Optimal(seq, s, quantum int, cost CostFunc) ([]int, error) {
	switch {
	case seq <= 0 || s <= 0 || quantum <= 0:
		return nil, fmt.Errorf("partition: non-positive inputs seq=%d s=%d quantum=%d", seq, s, quantum)
	case seq%quantum != 0:
		return nil, fmt.Errorf("partition: %d tokens not a multiple of quantum %d", seq, quantum)
	case seq/quantum < s:
		return nil, fmt.Errorf("partition: %d quanta cannot fill %d slices", seq/quantum, s)
	}
	g := seq / quantum // grid points
	const inf = 1e300
	// best[j][i]: minimal max-slice-time covering the first i quanta with
	// j slices; choice[j][i]: the previous boundary achieving it.
	best := make([][]float64, s+1)
	choice := make([][]int, s+1)
	for j := range best {
		best[j] = make([]float64, g+1)
		choice[j] = make([]int, g+1)
		for i := range best[j] {
			best[j][i] = inf
		}
	}
	best[0][0] = 0
	for j := 1; j <= s; j++ {
		for i := j; i <= g; i++ {
			for k := j - 1; k < i; k++ {
				if best[j-1][k] >= inf {
					continue
				}
				c := cost((i-k)*quantum, k*quantum)
				m := best[j-1][k]
				if c > m {
					m = c
				}
				if m < best[j][i] {
					best[j][i] = m
					choice[j][i] = k
				}
			}
		}
	}
	if best[s][g] >= inf {
		return nil, fmt.Errorf("partition: no feasible partition of %d quanta into %d slices", g, s)
	}
	widths := make([]int, s)
	i := g
	for j := s; j >= 1; j-- {
		k := choice[j][i]
		widths[j-1] = (i - k) * quantum
		i = k
	}
	return widths, nil
}

// MaxSliceTime evaluates the balance objective for a partition.
func MaxSliceTime(widths []int, cost CostFunc) float64 {
	start, max := 0, 0.0
	for _, w := range widths {
		if c := cost(w, start); c > max {
			max = c
		}
		start += w
	}
	return max
}

// TotalTime sums the slice times (the serial workload; partition-invariant
// when cost is linear, larger under imbalance-sensitive costs).
func TotalTime(widths []int, cost CostFunc) float64 {
	start, sum := 0, 0.0
	for _, w := range widths {
		sum += cost(w, start)
		start += w
	}
	return sum
}
