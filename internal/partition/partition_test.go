package partition

import (
	"math"
	"testing"
	"testing/quick"
)

// causalCost mimics a transformer slice: linear in width plus a causal
// attention term that grows with the attended prefix.
func causalCost(width, start int) float64 {
	return float64(width) + 0.002*float64(width)*(float64(start)+float64(width)/2)
}

func TestUniform(t *testing.T) {
	w, err := Uniform(4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range w {
		if v != 1024 {
			t.Fatalf("uniform widths %v", w)
		}
	}
	if _, err := Uniform(4096, 3); err == nil {
		t.Error("indivisible uniform split accepted")
	}
	if _, err := Uniform(0, 2); err == nil {
		t.Error("zero tokens accepted")
	}
}

func TestOptimalValidPartition(t *testing.T) {
	widths, err := Optimal(4096, 4, 128, causalCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(widths) != 4 {
		t.Fatalf("%d widths, want 4", len(widths))
	}
	total := 0
	for _, w := range widths {
		if w <= 0 || w%128 != 0 {
			t.Fatalf("invalid width %d in %v", w, widths)
		}
		total += w
	}
	if total != 4096 {
		t.Fatalf("widths sum to %d", total)
	}
	// Under causal costs the optimal partition front-loads tokens.
	for i := 1; i < len(widths); i++ {
		if widths[i] > widths[i-1] {
			t.Errorf("widths %v not non-increasing under causal costs", widths)
		}
	}
}

// TestOptimalBeatsUniform: the DP must never balance worse than uniform,
// and under causal imbalance it must balance strictly better.
func TestOptimalBeatsUniform(t *testing.T) {
	uni, _ := Uniform(4096, 8)
	opt, err := Optimal(4096, 8, 128, causalCost)
	if err != nil {
		t.Fatal(err)
	}
	u, o := MaxSliceTime(uni, causalCost), MaxSliceTime(opt, causalCost)
	if o > u {
		t.Fatalf("DP (%.1f) worse than uniform (%.1f)", o, u)
	}
	if o >= 0.95*u {
		t.Errorf("DP (%.1f) should beat uniform (%.1f) clearly under causal imbalance", o, u)
	}
}

// TestOptimalMatchesBruteForce on small grids.
func TestOptimalMatchesBruteForce(t *testing.T) {
	const seq, s, q = 12, 3, 1
	cost := func(w, st int) float64 { return causalCost(w*97, st*97) }
	got, err := Optimal(seq, s, q, cost)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	// Enumerate all (a, b, c) with a+b+c = 12, a,b,c >= 1.
	for a := 1; a <= seq-2; a++ {
		for b := 1; a+b <= seq-1; b++ {
			c := seq - a - b
			m := MaxSliceTime([]int{a, b, c}, cost)
			if m < best {
				best = m
			}
		}
	}
	if gotMax := MaxSliceTime(got, cost); math.Abs(gotMax-best) > 1e-9 {
		t.Errorf("DP max %.4f != brute-force optimum %.4f (widths %v)", gotMax, best, got)
	}
}

// TestOptimalProperty: random cost shapes, the partition is always valid
// and never worse than uniform.
func TestOptimalProperty(t *testing.T) {
	check := func(seedA, seedB uint8) bool {
		alpha := float64(seedA%50) / 1e3
		beta := 1 + float64(seedB%5)
		cost := func(w, st int) float64 {
			return beta*float64(w) + alpha*float64(w)*float64(st+w/2)
		}
		widths, err := Optimal(2048, 4, 128, cost)
		if err != nil {
			return false
		}
		sum := 0
		for _, w := range widths {
			if w <= 0 || w%128 != 0 {
				return false
			}
			sum += w
		}
		if sum != 2048 {
			return false
		}
		uni, _ := Uniform(2048, 4)
		return MaxSliceTime(widths, cost) <= MaxSliceTime(uni, cost)+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOptimalErrors(t *testing.T) {
	if _, err := Optimal(100, 2, 3, causalCost); err == nil {
		t.Error("non-multiple quantum accepted")
	}
	if _, err := Optimal(256, 5, 128, causalCost); err == nil {
		t.Error("too few quanta accepted")
	}
	if _, err := Optimal(0, 1, 1, causalCost); err == nil {
		t.Error("zero sequence accepted")
	}
}

func TestTotalTime(t *testing.T) {
	uni, _ := Uniform(1024, 4)
	linear := func(w, st int) float64 { return float64(w) }
	if got := TotalTime(uni, linear); got != 1024 {
		t.Errorf("TotalTime = %v, want 1024", got)
	}
}
