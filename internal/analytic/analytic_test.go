package analytic

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestTable3SmallCluster(t *testing.T) {
	// Spot values for p=4, v=2, s=2, n=8 (n ≥ p regime).
	p := Params{P: 4, V: 1, S: 1, N: 8}
	if b, _ := BubbleRatio(DAPPLE, p); !almost(b, 3.0/11) {
		t.Errorf("DAPPLE bubble = %v, want 3/11", b)
	}
	if m, _ := ActivationMemory(DAPPLE, p); !almost(m, 1) {
		t.Errorf("DAPPLE memory = %v, want A", m)
	}
	pv := Params{P: 4, V: 2, S: 1, N: 8}
	if b, _ := BubbleRatio(VPP, pv); !almost(b, 3.0/19) {
		t.Errorf("VPP bubble = %v, want 3/19", b)
	}
	if m, _ := ActivationMemory(VPP, pv); !almost(m, 1+3.0/8) {
		t.Errorf("VPP memory = %v, want 1+3/8", m)
	}
	ps := Params{P: 4, V: 1, S: 2, N: 8}
	if b, _ := BubbleRatio(TeraPipe, ps); !almost(b, 3.0/19) {
		t.Errorf("TeraPipe bubble = %v, want 3/19", b)
	}
	if m, _ := ActivationMemory(TeraPipe, ps); !almost(m, 2) {
		t.Errorf("TeraPipe memory = %v, want n/p = 2", m)
	}
	sv := Params{P: 4, V: 2, S: 2, N: 8}
	if b, _ := BubbleRatio(SVPP, sv); !almost(b, 3.0/35) {
		t.Errorf("SVPP bubble = %v, want 3/35", b)
	}
	// Fig 4(b): peak 9/16 A.
	if m, _ := ActivationMemory(SVPP, sv); !almost(m, 9.0/16) {
		t.Errorf("SVPP memory = %v, want 9/16", m)
	}
}

func TestSVPPMemoryFig4a(t *testing.T) {
	// Fig 4(a): p=4, v=1, s=2 → 5/8 A.
	m, err := ActivationMemory(SVPP, Params{P: 4, V: 1, S: 2, N: 8})
	if err != nil || !almost(m, 5.0/8) {
		t.Errorf("SVPP v=1 memory = %v (%v), want 5/8", m, err)
	}
}

func TestFig1MemoryReduction(t *testing.T) {
	// Fig 1's headline: at s=4 and s=8 (p=8, v=2), SVPP cuts peak
	// activation memory by >70% and >80% vs DAPPLE's A.
	base, _ := ActivationMemory(DAPPLE, Params{P: 8, V: 1, S: 1, N: 8})
	m4, _ := ActivationMemory(SVPP, Params{P: 8, V: 2, S: 4, N: 8})
	m8, _ := ActivationMemory(SVPP, Params{P: 8, V: 2, S: 8, N: 8})
	if red := 1 - m4/base; red < 0.70 {
		t.Errorf("s=4 reduction %.1f%%, want > 70%%", 100*red)
	}
	if red := 1 - m8/base; red < 0.80 {
		t.Errorf("s=8 reduction %.1f%%, want > 80%%", 100*red)
	}
}

func TestLargeClusterRegime(t *testing.T) {
	// n < p: DAPPLE memory falls to n/p; SVPP picks up extra bubbles
	// when (v−1)·(p−s·n) > 0.
	p := Params{P: 8, V: 1, S: 1, N: 4}
	if m, _ := ActivationMemory(DAPPLE, p); !almost(m, 0.5) {
		t.Errorf("DAPPLE n<p memory = %v, want 1/2", m)
	}
	// SVPP with v=2, s=2, n=2, p=8: extra = (2−1)·(8−4) = 4.
	sv := Params{P: 8, V: 2, S: 2, N: 2}
	want := (7.0 + 4) / (7 + 4 + 8)
	if b, _ := BubbleRatio(SVPP, sv); !almost(b, want) {
		t.Errorf("SVPP n<p bubble = %v, want %v", b, want)
	}
	// With s·n ≥ p the extra term vanishes.
	sv2 := Params{P: 8, V: 2, S: 4, N: 2}
	if b, _ := BubbleRatio(SVPP, sv2); !almost(b, 7.0/(7+16)) {
		t.Errorf("SVPP n<p s·n≥p bubble = %v, want 7/23", b)
	}
}

func TestSVPPBeatsBaselines(t *testing.T) {
	// Table 3's qualitative claim: with the same shape, SVPP's bubble is
	// the lowest and its memory far below A.
	for _, n := range []int{8, 16, 32} {
		d, _ := BubbleRatio(DAPPLE, Params{P: 8, V: 1, S: 1, N: n})
		v, _ := BubbleRatio(VPP, Params{P: 8, V: 2, S: 1, N: n})
		tp, _ := BubbleRatio(TeraPipe, Params{P: 8, V: 1, S: 4, N: n})
		sv, _ := BubbleRatio(SVPP, Params{P: 8, V: 2, S: 4, N: n})
		if !(sv < tp && sv < v && sv < d) {
			t.Errorf("n=%d: SVPP bubble %v not lowest (dapple %v, vpp %v, terapipe %v)", n, sv, d, v, tp)
		}
		dm, _ := ActivationMemory(DAPPLE, Params{P: 8, V: 1, S: 1, N: n})
		svm, _ := ActivationMemory(SVPP, Params{P: 8, V: 2, S: 4, N: n})
		if svm >= dm {
			t.Errorf("n=%d: SVPP memory %v not below DAPPLE %v", n, svm, dm)
		}
	}
}

func TestSVPPLimitSliceCount(t *testing.T) {
	// Table 3 footer: s → ∞ drives bubble to 0 and memory to A/p.
	b, _ := BubbleRatio(SVPP, Params{P: 8, V: 1, S: 1 << 20, N: 8})
	if b > 1e-4 {
		t.Errorf("bubble at huge s = %v, want → 0", b)
	}
	m, _ := ActivationMemory(SVPP, Params{P: 8, V: 1, S: 1 << 20, N: 8})
	if math.Abs(m-1.0/8) > 1e-4 {
		t.Errorf("memory at huge s = %v, want → 1/8", m)
	}
}

func TestSVPPMemoryAtVariants(t *testing.T) {
	// Fig 5: p=4, v=2, s=2, n=2. The f=8 variant peaks at n·v·s forwards
	// = 1/2 A (Fig 6 caption); the f=4 minimum peaks at v·s/(v·s·p) = 1/4.
	p := Params{P: 4, V: 2, S: 2, N: 2}
	if m := SVPPMemoryAt(p, 9); !almost(m, 0.5) {
		t.Errorf("f=9 memory %v, want clamp to 1/2 (only 8 forwards exist)", m)
	}
	if m := SVPPMemoryAt(p, 4); !almost(m, 0.25) {
		t.Errorf("f=4 memory %v, want 1/4", m)
	}
	if m := SVPPMemoryAt(p, 1); !almost(m, 0.25) {
		t.Errorf("f below v·s must clamp up: %v, want 1/4", m)
	}
}

func TestUnsupportedCombos(t *testing.T) {
	if _, err := BubbleRatio(VPP, Params{P: 8, V: 2, S: 1, N: 4}); err == nil {
		t.Error("VPP with n < p should be unsupported (Table 3 dash)")
	}
	if _, err := BubbleRatio(DAPPLE, Params{P: 8, V: 2, S: 1, N: 16}); err == nil {
		t.Error("DAPPLE with v > 1 should be unsupported")
	}
	if _, err := ActivationMemory(GPipe, Params{P: 8, V: 1, S: 2, N: 16}); err == nil {
		t.Error("GPipe with s > 1 should be unsupported")
	}
	if _, err := BubbleRatio(SVPP, Params{}); err == nil {
		t.Error("zero params should error")
	}
}

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{GPipe: "GPipe", DAPPLE: "DAPPLE", VPP: "VPP", Hanayo: "Hanayo", TeraPipe: "TeraPipe", SVPP: "SVPP"} {
		if m.String() != want {
			t.Errorf("%v.String() = %q", int(m), m.String())
		}
	}
}

func TestHanayoLargeCluster(t *testing.T) {
	// n < p: Table 3's wave formula (vp+n−1−nv)/(vp+n−1).
	b, err := BubbleRatio(Hanayo, Params{P: 8, V: 2, S: 1, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := (16.0 + 4 - 1 - 8) / (16 + 4 - 1)
	if !almost(b, want) {
		t.Errorf("Hanayo n<p bubble %v, want %v", b, want)
	}
	m, err := ActivationMemory(Hanayo, Params{P: 8, V: 2, S: 1, N: 4})
	if err != nil || !almost(m, 0.5) {
		t.Errorf("Hanayo n<p memory %v (%v), want n/p = 1/2", m, err)
	}
}

// TestSVPPDefaultFConsistency: the §4.4 memory row equals the default-f
// variant of SVPPMemoryAt for n >= p.
func TestSVPPDefaultFConsistency(t *testing.T) {
	for _, p := range []Params{
		{P: 4, V: 1, S: 2, N: 8}, {P: 8, V: 2, S: 4, N: 16}, {P: 4, V: 2, S: 8, N: 8},
	} {
		table, err := ActivationMemory(SVPP, p)
		if err != nil {
			t.Fatal(err)
		}
		f := p.V*maxi(p.P, p.S) + mini(p.P, p.S) - 1
		if at := SVPPMemoryAt(p, f); !almost(table, at) {
			t.Errorf("%+v: table %v != SVPPMemoryAt(default f=%d) %v", p, table, f, at)
		}
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}
