// Package analytic implements the closed-form bubble-ratio and activation-
// memory expressions of Table 3 of the paper, for both cluster regimes
// (n ≥ p, the "small cluster" case, and n < p, the "large cluster" case).
// The unit of memory is A, the activation footprint of one full sample
// (model.SampleActivationBytes). The discrete-event simulator is cross-
// validated against these expressions in tests.
package analytic

import "fmt"

// Params identifies one scheduling configuration.
type Params struct {
	P int // pipeline stages
	V int // virtual pipeline size
	S int // sequence pipeline size (slices)
	N int // micro-batches
}

func (p Params) validate() error {
	if p.P <= 0 || p.V <= 0 || p.S <= 0 || p.N <= 0 {
		return fmt.Errorf("analytic: non-positive parameter in %+v", p)
	}
	return nil
}

// Method is one row of Table 3.
type Method int

const (
	GPipe Method = iota
	DAPPLE
	VPP
	Hanayo
	TeraPipe
	SVPP
)

func (m Method) String() string {
	switch m {
	case GPipe:
		return "GPipe"
	case DAPPLE:
		return "DAPPLE"
	case VPP:
		return "VPP"
	case Hanayo:
		return "Hanayo"
	case TeraPipe:
		return "TeraPipe"
	case SVPP:
		return "SVPP"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Supported reports whether Table 3 defines the method for the given shape
// (VPP is undefined for n < p; only SVPP and TeraPipe accept s > 1; only
// VPP, Hanayo and SVPP accept v > 1).
func Supported(m Method, p Params) bool {
	switch m {
	case GPipe, DAPPLE:
		return p.V == 1 && p.S == 1
	case VPP:
		return p.S == 1 && p.N >= p.P
	case Hanayo:
		return p.S == 1 && p.V == 2
	case TeraPipe:
		return p.V == 1
	case SVPP:
		return true
	}
	return false
}

// BubbleRatio returns the Table 3 bubble ratio.
func BubbleRatio(m Method, p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if !Supported(m, p) {
		return 0, fmt.Errorf("analytic: %s does not support shape %+v", m, p)
	}
	fp, fv, fs, fn := float64(p.P), float64(p.V), float64(p.S), float64(p.N)
	switch m {
	case GPipe, DAPPLE:
		return (fp - 1) / (fp - 1 + fn), nil
	case VPP:
		return (fp - 1) / (fp - 1 + fn*fv), nil
	case Hanayo:
		if p.N >= p.P {
			return (fp - 1) / (fp - 1 + fn*fv), nil
		}
		return (fv*fp + fn - 1 - fn*fv) / (fv*fp + fn - 1), nil
	case TeraPipe:
		return (fp - 1) / (fn*fs + fp - 1), nil
	case SVPP:
		if p.N >= p.P {
			return (fp - 1) / (fn*fs*fv + fp - 1), nil
		}
		extra := (fv - 1) * max0(fp-fs*fn)
		return (fp - 1 + extra) / (fp - 1 + extra + fn*fv*fs), nil
	}
	return 0, fmt.Errorf("analytic: unknown method %v", m)
}

// ActivationMemory returns the Table 3 peak activation memory of the first
// (most loaded) stage, in units of A.
func ActivationMemory(m Method, p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if !Supported(m, p) {
		return 0, fmt.Errorf("analytic: %s does not support shape %+v", m, p)
	}
	fp, fv, fs, fn := float64(p.P), float64(p.V), float64(p.S), float64(p.N)
	switch m {
	case GPipe:
		return fn / fp, nil
	case DAPPLE:
		if p.N >= p.P {
			return 1, nil
		}
		return fn / fp, nil
	case VPP:
		return min2(1+(fp-1)/(fp*fv), fn/fp), nil
	case Hanayo:
		if p.N >= p.P {
			return min2(1+(fp-1)/(fp*fv), fn/fp), nil
		}
		return fn / fp, nil
	case TeraPipe:
		return fn / fp, nil
	case SVPP:
		peak := (fv*maxf(fp, fs) + minf(fp, fs) - 1) / (fv * fs * fp)
		return min2(peak, fn/fp), nil
	}
	return 0, fmt.Errorf("analytic: unknown method %v", m)
}

// SVPPMemoryAt returns the peak activation memory (in units of A) of the
// SVPP variant that admits f forwards before the first backward (§4.2):
// simply f slice-chunk activations, each A/(v·s·p), floored at the v·s
// minimum and capped by the n·v·s forwards that exist.
func SVPPMemoryAt(p Params, f int) float64 {
	if f < p.V*p.S {
		f = p.V * p.S
	}
	if lim := p.N * p.V * p.S; f > lim {
		f = lim
	}
	return float64(f) / float64(p.V*p.S*p.P)
}

func max0(x float64) float64 {
	if x < 0 {
		return 0
	}
	return x
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
