package timeline

import (
	"encoding/json"
	"strings"
	"testing"

	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

func result(t *testing.T) *sim.Result {
	t.Helper()
	s, err := sched.DAPPLE(3, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Options{Sched: s, Costs: sim.Unit()})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRenderShape(t *testing.T) {
	res := result(t)
	var sb strings.Builder
	Render(&sb, res, 0.5)
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // 3 stages + footer
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	for k := 0; k < 3; k++ {
		if !strings.HasPrefix(lines[k], "stage") {
			t.Errorf("line %d does not start with 'stage': %q", k, lines[k])
		}
		if !strings.Contains(lines[k], "F0") {
			t.Errorf("stage %d row missing first forward: %q", k, lines[k])
		}
	}
	if !strings.Contains(lines[3], "bubble") {
		t.Errorf("footer missing bubble ratio: %q", lines[3])
	}
	// Rows must be equally long (aligned chart).
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Error("rows not aligned")
	}
}

func TestRenderAutoUnit(t *testing.T) {
	res := result(t)
	var sb strings.Builder
	Render(&sb, res, 0) // auto-scale
	for _, line := range strings.Split(sb.String(), "\n") {
		if len(line) > 200 {
			t.Fatalf("auto-scaled row too wide: %d cols", len(line))
		}
	}
}

func TestRenderOrder(t *testing.T) {
	s, err := sched.MEPipe(2, 1, 2, 2, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	RenderOrder(&sb, s)
	out := sb.String()
	if !strings.Contains(out, "F0.0") || !strings.Contains(out, "b0.1") {
		t.Errorf("order rendering missing slice-annotated ops:\n%s", out)
	}
}

func TestChromeTrace(t *testing.T) {
	res := result(t)
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, res); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	want := 3 * 2 * 4 // stages × (F+B) × micros
	if len(doc.TraceEvents) != want {
		t.Fatalf("%d trace events, want %d", len(doc.TraceEvents), want)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Dur <= 0 || ev.TID < 0 || ev.TID > 2 {
			t.Fatalf("malformed event %+v", ev)
		}
	}
}

func TestWriteSVG(t *testing.T) {
	res := result(t)
	var sb strings.Builder
	if err := WriteSVG(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	// One rect per span plus one background per stage plus the canvas.
	spans := 0
	for k := range res.Stages {
		spans += len(res.Stages[k].Spans)
	}
	if got := strings.Count(out, "<rect"); got != spans+len(res.Stages)+1 {
		t.Errorf("%d rects, want %d", got, spans+len(res.Stages)+1)
	}
	for _, frag := range []string{"stage 0", "stage 2", "bubble", "<title>"} {
		if !strings.Contains(out, frag) {
			t.Errorf("SVG missing %q", frag)
		}
	}
}
