package timeline

import (
	"fmt"
	"io"

	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

// WriteSVG renders the result as a self-contained SVG Gantt chart — the
// graphical counterpart of the paper's Figs 11/12 timelines. Colors follow
// the paper's convention: one hue per op class, micro-batches shaded.
func WriteSVG(w io.Writer, res *sim.Result) error {
	const (
		rowH   = 26
		rowGap = 6
		width  = 1200
		padX   = 60
		padY   = 24
	)
	stages := len(res.Stages)
	height := padY*2 + stages*(rowH+rowGap)
	scale := float64(width-2*padX) / res.IterTime
	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n",
		width, height); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	for k := range res.Stages {
		y := padY + k*(rowH+rowGap)
		fmt.Fprintf(w, `<text x="4" y="%d">stage %d</text>`+"\n", y+rowH-9, k)
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d" fill="#f2f2f2"/>`+"\n",
			padX, y, width-2*padX, rowH)
		for _, sp := range res.Stages[k].Spans {
			x := padX + sp.Start*scale
			wd := (sp.End - sp.Start) * scale
			if wd < 0.5 {
				wd = 0.5
			}
			fmt.Fprintf(w,
				`<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" stroke="white" stroke-width="0.4"><title>%s [%.4g, %.4g]</title></rect>`+"\n",
				x, y, wd, rowH, opColor(sp.Op), sp.Op, sp.Start, sp.End)
		}
	}
	fmt.Fprintf(w, `<text x="%d" y="%d">makespan %.4g, bubble %.1f%%</text>`+"\n",
		padX, height-6, res.IterTime, 100*res.BubbleRatio)
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

// opColor shades by op class, darkening with the micro-batch index.
func opColor(op sched.Op) string {
	shade := 1.0 - 0.06*float64(op.Micro%8)
	scaleC := func(r, g, b int) string {
		return fmt.Sprintf("#%02x%02x%02x",
			int(float64(r)*shade), int(float64(g)*shade), int(float64(b)*shade))
	}
	switch op.Kind {
	case sched.F:
		return scaleC(0x4c, 0x9f, 0xeb) // blue
	case sched.B:
		return scaleC(0xf2, 0x8c, 0x38) // orange
	case sched.BAct:
		return scaleC(0xf2, 0xb1, 0x38) // amber
	case sched.W, sched.WPiece:
		return scaleC(0x67, 0xc2, 0x7f) // green
	}
	return "#999999"
}
