package timeline

import (
	"fmt"
	"io"

	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

// WriteSVG renders the result as a self-contained SVG Gantt chart — the
// graphical counterpart of the paper's Figs 11/12 timelines. Colors follow
// the paper's convention: one hue per op class, micro-batches shaded.
//
// Deprecated: use SVG{}.Export with a trace, which this delegates to.
func WriteSVG(w io.Writer, res *sim.Result) error {
	return SVG{}.Export(w, res.Trace())
}

// opColor shades by op class, darkening with the micro-batch index.
func opColor(op sched.Op) string {
	shade := 1.0 - 0.06*float64(op.Micro%8)
	scaleC := func(r, g, b int) string {
		return fmt.Sprintf("#%02x%02x%02x",
			int(float64(r)*shade), int(float64(g)*shade), int(float64(b)*shade))
	}
	switch op.Kind {
	case sched.F:
		return scaleC(0x4c, 0x9f, 0xeb) // blue
	case sched.B:
		return scaleC(0xf2, 0x8c, 0x38) // orange
	case sched.BAct:
		return scaleC(0xf2, 0xb1, 0x38) // amber
	case sched.W, sched.WPiece:
		return scaleC(0x67, 0xc2, 0x7f) // green
	}
	return "#999999"
}
