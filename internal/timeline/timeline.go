// Package timeline renders pipeline timelines as ASCII Gantt charts (the
// textual equivalent of the paper's Figs 2–7, 11 and 12) and SVG. The ASCII
// and SVG renderers implement obs.Exporter (see exporter.go), so they
// compose with the obs package's Chrome-trace and JSONL exporters behind a
// single interface; the functions here are thin compatibility wrappers over
// those exporters.
package timeline

import (
	"fmt"
	"io"
	"strings"

	"mepipe/internal/obs"
	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

// Render writes an ASCII Gantt chart of the result. unit is the time per
// character column (0 picks one that keeps the chart under ~160 columns).
// Each op cell shows the op kind and micro-batch index, with the slice index
// appended when the schedule has more than one slice: e.g. F3.1 is the
// forward of slice 1 of micro-batch 3, b/w are split backward halves.
//
// Deprecated: use ASCII{Unit: unit}.Export with a trace (Result.Trace or a
// recorded obs.Trace), which this delegates to.
func Render(w io.Writer, res *sim.Result, unit float64) {
	_ = ASCII{Unit: unit}.Export(w, res.Trace())
}

func cellLabel(op sched.Op) string {
	return fmt.Sprintf("%s%d", op.Kind, op.Micro)
}

func fill(op sched.Op) byte {
	switch op.Kind {
	case sched.F:
		return '='
	case sched.B:
		return '#'
	case sched.BAct:
		return '-'
	default:
		return '~'
	}
}

// RenderOrder writes the per-stage op order without timing — useful for
// inspecting a schedule before simulation.
func RenderOrder(w io.Writer, s *sched.Schedule) {
	for k, ops := range s.Stages {
		var b strings.Builder
		for i, op := range ops {
			if i > 0 {
				b.WriteByte(' ')
			}
			if s.S > 1 || s.V > 1 {
				fmt.Fprintf(&b, "%s%d.%d", op.Kind, op.Micro, op.Slice)
				if s.V > 1 {
					fmt.Fprintf(&b, "c%d", op.Chunk)
				}
			} else {
				fmt.Fprintf(&b, "%s%d", op.Kind, op.Micro)
			}
		}
		fmt.Fprintf(w, "stage %2d: %s\n", k, b.String())
	}
}

// WriteChromeTrace emits the result as a Chrome trace (times in µs assuming
// the result's unit is seconds).
//
// Deprecated: use obs.ChromeTrace{}.Export with a trace, which this
// delegates to; a trace recorded from a live run also carries comm, memory
// and stall events the span-only Result cannot reconstruct.
func WriteChromeTrace(w io.Writer, res *sim.Result) error {
	return obs.ChromeTrace{}.Export(w, res.Trace())
}
