// Package timeline renders simulated pipeline timelines as ASCII Gantt
// charts (the textual equivalent of the paper's Figs 2–7, 11 and 12) and as
// Chrome-trace JSON for chrome://tracing.
package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"mepipe/internal/sched"
	"mepipe/internal/sim"
)

// Render writes an ASCII Gantt chart of the result. unit is the time per
// character column (0 picks one that keeps the chart under ~160 columns).
// Each op cell shows the op kind and micro-batch index, with the slice index
// appended when the schedule has more than one slice: e.g. F3.1 is the
// forward of slice 1 of micro-batch 3, b/w are split backward halves.
func Render(w io.Writer, res *sim.Result, unit float64) {
	end := res.IterTime
	if unit <= 0 {
		unit = end / 156
		if unit <= 0 {
			unit = 1
		}
	}
	cols := int(math.Ceil(end/unit)) + 1
	for k := range res.Stages {
		row := make([]byte, cols)
		for i := range row {
			row[i] = '.'
		}
		for _, sp := range res.Stages[k].Spans {
			c0 := int(sp.Start / unit)
			c1 := int(math.Ceil(sp.End / unit))
			if c1 <= c0 {
				c1 = c0 + 1
			}
			if c1 > cols {
				c1 = cols
			}
			label := cellLabel(sp.Op)
			for i := c0; i < c1; i++ {
				j := i - c0
				if j < len(label) {
					row[i] = label[j]
				} else {
					row[i] = fill(sp.Op)
				}
			}
		}
		fmt.Fprintf(w, "stage %2d |%s|\n", k, string(row))
	}
	fmt.Fprintf(w, "          time: %.4g per column, makespan %.6g, bubble %.1f%%\n",
		unit, res.IterTime, 100*res.BubbleRatio)
}

func cellLabel(op sched.Op) string {
	return fmt.Sprintf("%s%d", op.Kind, op.Micro)
}

func fill(op sched.Op) byte {
	switch op.Kind {
	case sched.F:
		return '='
	case sched.B:
		return '#'
	case sched.BAct:
		return '-'
	default:
		return '~'
	}
}

// RenderOrder writes the per-stage op order without timing — useful for
// inspecting a schedule before simulation.
func RenderOrder(w io.Writer, s *sched.Schedule) {
	for k, ops := range s.Stages {
		var b strings.Builder
		for i, op := range ops {
			if i > 0 {
				b.WriteByte(' ')
			}
			if s.S > 1 || s.V > 1 {
				fmt.Fprintf(&b, "%s%d.%d", op.Kind, op.Micro, op.Slice)
				if s.V > 1 {
					fmt.Fprintf(&b, "c%d", op.Chunk)
				}
			} else {
				fmt.Fprintf(&b, "%s%d", op.Kind, op.Micro)
			}
		}
		fmt.Fprintf(w, "stage %2d: %s\n", k, b.String())
	}
}

// traceEvent is the Chrome trace event format (phase "X" complete events).
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// WriteChromeTrace emits the result as a Chrome trace (times in µs assuming
// the result's unit is seconds).
func WriteChromeTrace(w io.Writer, res *sim.Result) error {
	var evs []traceEvent
	for k := range res.Stages {
		for _, sp := range res.Stages[k].Spans {
			evs = append(evs, traceEvent{
				Name: sp.Op.String(), Cat: sp.Op.Kind.String(), Ph: "X",
				TS: sp.Start * 1e6, Dur: (sp.End - sp.Start) * 1e6,
				PID: 0, TID: k,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{evs})
}
