package timeline

import (
	"fmt"
	"io"
	"math"

	"mepipe/internal/obs"
)

// ASCII renders a trace as the textual Gantt chart of Render, implementing
// obs.Exporter so text output composes with the SVG / Chrome-trace / JSONL
// exporters behind one interface. Unit is the time per character column (0
// auto-scales to keep the chart under ~160 columns).
type ASCII struct {
	Unit float64
}

// Export implements obs.Exporter.
func (a ASCII) Export(w io.Writer, t *obs.Trace) error {
	end := t.Makespan
	unit := a.Unit
	if unit <= 0 {
		unit = end / 156
		if unit <= 0 {
			unit = 1
		}
	}
	cols := int(math.Ceil(end/unit)) + 1
	for k := 0; k < t.Stages; k++ {
		row := make([]byte, cols)
		for i := range row {
			row[i] = '.'
		}
		for _, sp := range t.OpSpans(k) {
			c0 := int(sp.Start / unit)
			c1 := int(math.Ceil(sp.End / unit))
			if c1 <= c0 {
				c1 = c0 + 1
			}
			if c1 > cols {
				c1 = cols
			}
			label := cellLabel(sp.Op)
			for i := c0; i < c1; i++ {
				j := i - c0
				if j < len(label) {
					row[i] = label[j]
				} else {
					row[i] = fill(sp.Op)
				}
			}
		}
		if _, err := fmt.Fprintf(w, "stage %2d |%s|\n", k, string(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "          time: %.4g per column, makespan %.6g, bubble %.1f%%\n",
		unit, t.Makespan, 100*t.Bubble)
	return err
}

// SVG renders a trace as the self-contained SVG Gantt chart of WriteSVG,
// implementing obs.Exporter.
type SVG struct{}

// Export implements obs.Exporter.
func (SVG) Export(w io.Writer, t *obs.Trace) error {
	const (
		rowH   = 26
		rowGap = 6
		width  = 1200
		padX   = 60
		padY   = 24
	)
	stages := t.Stages
	height := padY*2 + stages*(rowH+rowGap)
	scale := float64(width-2*padX) / t.Makespan
	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n",
		width, height); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	for k := 0; k < stages; k++ {
		y := padY + k*(rowH+rowGap)
		fmt.Fprintf(w, `<text x="4" y="%d">stage %d</text>`+"\n", y+rowH-9, k)
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d" fill="#f2f2f2"/>`+"\n",
			padX, y, width-2*padX, rowH)
		for _, sp := range t.OpSpans(k) {
			x := padX + sp.Start*scale
			wd := (sp.End - sp.Start) * scale
			if wd < 0.5 {
				wd = 0.5
			}
			fmt.Fprintf(w,
				`<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" stroke="white" stroke-width="0.4"><title>%s [%.4g, %.4g]</title></rect>`+"\n",
				x, y, wd, rowH, opColor(sp.Op), sp.Op, sp.Start, sp.End)
		}
	}
	fmt.Fprintf(w, `<text x="%d" y="%d">makespan %.4g, bubble %.1f%%</text>`+"\n",
		padX, height-6, t.Makespan, 100*t.Bubble)
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}
