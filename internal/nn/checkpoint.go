package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Checkpointing: §9 leans on fast (in-memory) checkpointing to make
// thousand-GPU consumer clusters viable; this is the serialisation those
// checkpoints need. The format is a simple framed binary: a magic header,
// the config, then every parameter tensor in a fixed traversal order.
// Loading validates shapes, so a truncated or mismatched checkpoint fails
// loudly instead of corrupting training.

const checkpointMagic = uint32(0x4d455050) // "MEPP"

// Save writes the model's parameters (not optimizer state or gradients).
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{
		checkpointMagic,
		uint32(m.Cfg.Hidden), uint32(m.Cfg.Heads), uint32(m.Cfg.FFN),
		uint32(m.Cfg.Vocab), uint32(m.Cfg.Layers), uint32(m.Cfg.SeqLen),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, p := range m.params() {
		if err := binary.Write(bw, binary.LittleEndian, p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a checkpoint written by Save into an existing model whose
// configuration must match.
func (m *Model) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	var hdr [7]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return fmt.Errorf("nn: reading checkpoint header: %w", err)
		}
	}
	if hdr[0] != checkpointMagic {
		return fmt.Errorf("nn: not a checkpoint (magic %#x)", hdr[0])
	}
	got := Config{
		Hidden: int(hdr[1]), Heads: int(hdr[2]), FFN: int(hdr[3]),
		Vocab: int(hdr[4]), Layers: int(hdr[5]), SeqLen: int(hdr[6]),
	}
	if got != m.Cfg {
		return fmt.Errorf("nn: checkpoint config %+v does not match model %+v", got, m.Cfg)
	}
	for _, p := range m.params() {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return fmt.Errorf("nn: reading checkpoint tensors: %w", err)
		}
	}
	// Reject trailing garbage (corrupt concatenations).
	if _, err := br.ReadByte(); err != io.EOF {
		return fmt.Errorf("nn: trailing bytes after checkpoint")
	}
	return nil
}

// params returns every parameter buffer in a fixed traversal order.
func (m *Model) params() [][]float32 {
	out := [][]float32{m.Embed.Table.Data}
	for _, l := range m.Layers {
		for _, lin := range []*Linear{&l.Wq, &l.Wk, &l.Wv, &l.Wo, &l.Wg, &l.Wu, &l.Wd} {
			out = append(out, lin.W.Data)
		}
		out = append(out, l.AttnNorm, l.MLPNorm)
	}
	out = append(out, m.Head.W.W.Data, m.Head.Norm)
	return out
}

// MaxParamDiff returns the largest absolute parameter difference between
// two models of the same configuration (diagnostics for resume tests).
func MaxParamDiff(a, b *Model) float64 {
	if a.Cfg != b.Cfg {
		return -1
	}
	ap, bp := a.params(), b.params()
	max := 0.0
	for i := range ap {
		for j := range ap[i] {
			d := float64(ap[i][j]) - float64(bp[i][j])
			if d < 0 {
				d = -d
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}
