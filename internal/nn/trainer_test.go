package nn

import (
	"math/rand"
	"testing"

	"mepipe/internal/tensor"
)

// TestTrainerMatchesSequential: a long-lived Trainer stepping repeatedly
// must be bitwise identical to a throwaway trainer per step — buffer
// recycling changes nothing about the math.
func TestTrainerMatchesSequential(t *testing.T) {
	cfg := tinyCfg()
	rng := rand.New(rand.NewSource(101))
	batch := randBatch(rng, cfg, 2)

	reused, _ := NewModel(cfg, 17)
	fresh, _ := NewModel(cfg, 17)
	tr := NewTrainer(reused)
	defer tr.Close()
	for step := 0; step < 4; step++ {
		reused.ZeroGrads()
		lossR, err := tr.Step(batch, 2)
		if err != nil {
			t.Fatal(err)
		}
		fresh.ZeroGrads()
		lossF, err := fresh.TrainSequential(batch, 2)
		if err != nil {
			t.Fatal(err)
		}
		if lossR != lossF {
			t.Fatalf("step %d: reused trainer loss %v != fresh %v", step, lossR, lossF)
		}
		rg, fg := reused.Grads(), fresh.Grads()
		for name, g := range fg {
			if d := tensor.MaxAbsDiff(g, rg[name]); d != 0 {
				t.Fatalf("step %d: grad %s differs by %g", step, name, d)
			}
		}
		reused.SGDStep(0.05)
		fresh.SGDStep(0.05)
	}
}

// TestTrainerLeanMatches: recompute mode through a reused trainer stays
// bitwise identical too (the lean replay recycles its rebuilt buffers).
func TestTrainerLeanMatches(t *testing.T) {
	cfg := tinyCfg()
	rng := rand.New(rand.NewSource(102))
	batch := randBatch(rng, cfg, 1)
	full, _ := NewModel(cfg, 23)
	lossFull, err := full.TrainSequential(batch, 4)
	if err != nil {
		t.Fatal(err)
	}
	lean, _ := NewModel(cfg, 23)
	lean.LeanActivations = true
	tr := NewTrainer(lean)
	defer tr.Close()
	lossLean, err := tr.Step(batch, 4)
	if err != nil {
		t.Fatal(err)
	}
	if lossFull != lossLean {
		t.Fatalf("lean trainer loss %v != full %v", lossLean, lossFull)
	}
	fg, lg := full.Grads(), lean.Grads()
	for name, g := range fg {
		if d := tensor.MaxAbsDiff(g, lg[name]); d != 0 {
			t.Fatalf("lean trainer grad %s differs by %g", name, d)
		}
	}
}

// TestTrainStepZeroAlloc asserts the tentpole memory claim: after warm-up,
// one training step allocates nothing — every buffer comes from the arena.
func TestTrainStepZeroAlloc(t *testing.T) {
	cfg := tinyCfg()
	rng := rand.New(rand.NewSource(103))
	batch := randBatch(rng, cfg, 2)
	m, _ := NewModel(cfg, 29)
	tr := NewTrainer(m)
	defer tr.Close()
	step := func() {
		m.ZeroGrads()
		if _, err := tr.Step(batch, 2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ { // warm the arena and state maps
		step()
	}
	if allocs := testing.AllocsPerRun(10, step); allocs > 0 {
		t.Errorf("train step allocates %v objects per run, want 0", allocs)
	}
}

// BenchmarkTrainStep measures one full training step (forward, loss,
// backward, weight gradients) through the zero-allocation hot path.
func BenchmarkTrainStep(b *testing.B) {
	cfg := Config{Hidden: 64, Heads: 4, FFN: 128, Vocab: 64, Layers: 2, SeqLen: 64}
	rng := rand.New(rand.NewSource(104))
	batch := randBatch(rng, cfg, 1)
	m, err := NewModel(cfg, 31)
	if err != nil {
		b.Fatal(err)
	}
	tr := NewTrainer(m)
	defer tr.Close()
	if _, err := tr.Step(batch, 2); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrads()
		if _, err := tr.Step(batch, 2); err != nil {
			b.Fatal(err)
		}
	}
	st := tr.Stats()
	b.ReportMetric(float64(st.FLOPs)/1e9/b.Elapsed().Seconds(), "GFLOP/s")
}
