package nn

import (
	"fmt"

	"mepipe/internal/tensor"
)

// Trainer owns the reusable state of sequential (single-device) training:
// a scratch arena, per-layer states with preallocated KV caches, head
// bookkeeping, and the deferred-task list. After a warm-up step, Step
// allocates zero bytes per microbatch — the arena satisfies every
// checkout, layer states rewind in place, and weight-task buffers cycle
// back through Release.
type Trainer struct {
	m      *Model
	sc     *tensor.Scratch
	states []*LayerState
	head   *HeadState
	logits []*tensor.Matrix
	tasks  []WeightTask
}

// NewTrainer builds a trainer for m. Close it to return the arena to the
// shared pool.
func NewTrainer(m *Model) *Trainer {
	t := &Trainer{m: m, sc: tensor.GrabScratch(), head: NewHeadState()}
	for i := 0; i < m.Cfg.Layers; i++ {
		t.states = append(t.states, NewLayerState(m.Cfg))
	}
	return t
}

// Close releases the trainer's arena. The trainer must not be used after.
func (t *Trainer) Close() {
	tensor.ReleaseScratch(t.sc)
	t.sc = nil
}

// Stats reports the trainer's arena counters (allocation traffic, GEMM
// FLOPs) accumulated so far.
func (t *Trainer) Stats() tensor.ScratchStats { return t.sc.Stats() }

// Step runs one full iteration over batch with the given sequence-pipeline
// slice count and returns the mean loss. Identical op order to the
// pipelined runtime's sequential reference semantics: forward slice by
// slice, per-slice losses, backward slices in reverse with weight
// gradients inline.
//
// Step validates and grows first-touch state, then hands off to the
// annotated hot loop: everything error formatting or allocating stays on
// this side of the split so mepipe-lint's hotpath-alloc proof covers the
// steady-state path.
func (t *Trainer) Step(batch [][]int, slices int) (float64, error) {
	cfg := t.m.Cfg
	if cfg.SeqLen%slices != 0 {
		return 0, fmt.Errorf("nn: seq len %d not divisible by %d slices", cfg.SeqLen, slices)
	}
	for _, sample := range batch {
		if len(sample) != cfg.SeqLen+1 {
			return 0, fmt.Errorf("nn: sample has %d tokens, want %d", len(sample), cfg.SeqLen+1)
		}
	}
	if cap(t.logits) < slices {
		t.logits = make([]*tensor.Matrix, slices)
	}
	return t.step(batch, slices), nil
}

// step is the per-microbatch hot loop: after warm-up it allocates zero
// bytes, a property mepipe-lint proves statically for every function it
// transitively calls (audited //mepipe:coldalloc escapes excepted) and
// TestTrainStepZeroAlloc re-checks dynamically at one config.
//
//mepipe:hotpath
func (t *Trainer) step(batch [][]int, slices int) float64 {
	cfg := t.m.Cfg
	tok := cfg.SeqLen / slices
	logits := t.logits[:slices]
	var total float64
	for _, sample := range batch {
		for _, st := range t.states {
			st.Reset()
		}
		t.head.Reset()
		// Forward, slice by slice.
		for s := 0; s < slices; s++ {
			start := s * tok
			x := t.m.Embed.Forward(t.sc, sample[start:start+tok])
			for li, l := range t.m.Layers {
				if t.m.LeanActivations {
					x = l.ForwardSliceLean(t.sc, t.states[li], x, start)
				} else {
					x = l.ForwardSlice(t.sc, t.states[li], x, start)
				}
			}
			logits[s] = t.m.Head.Forward(t.sc, x, t.head, start)
		}
		// Loss per slice (targets are the next tokens). The reported
		// loss is the mean over samples and slices; the gradient is
		// scaled to match it exactly, so finite-difference checks and
		// pipelined replays agree with the sequential reference.
		norm := float64(slices * len(batch))
		for s := 0; s < slices; s++ {
			start := s * tok
			dl := t.sc.GetRaw(tok, cfg.Vocab)
			total += tensor.CrossEntropy(dl, logits[s], sample[start+1:start+tok+1]) / norm
			dl.Scale(float32(1 / norm))
			t.sc.Put(logits[s])
			logits[s] = dl // the slot now carries dLogits
		}
		// Backward, slices in reverse; weight gradients inline.
		tasks := t.tasks[:0]
		for s := slices - 1; s >= 0; s-- {
			start := s * tok
			dx, tasks2 := t.m.Head.Backward(t.sc, logits[s], t.head, start, tasks)
			tasks = tasks2
			logits[s] = nil
			for li := len(t.m.Layers) - 1; li >= 0; li-- {
				dx, tasks = t.m.Layers[li].BackwardSlice(t.sc, t.states[li], start, dx, tasks)
			}
			t.m.Embed.Backward(sample[start:start+tok], dx)
			t.sc.Put(dx)
			for _, task := range tasks {
				task.RunCounted(t.sc)
			}
			Release(t.sc, tasks)
			tasks = tasks[:0]
		}
		t.tasks = tasks
	}
	return total
}
