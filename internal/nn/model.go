package nn

import (
	"fmt"
	"math"
	"math/rand"

	"mepipe/internal/tensor"
)

// Embedding maps token ids to hidden vectors.
type Embedding struct {
	Table, DTable *tensor.Matrix // [vocab × hidden]
}

func newEmbedding(rng *rand.Rand, cfg Config) *Embedding {
	e := &Embedding{Table: tensor.New(cfg.Vocab, cfg.Hidden), DTable: tensor.New(cfg.Vocab, cfg.Hidden)}
	e.Table.RandInit(rng, 0.1)
	return e
}

// Forward gathers the rows for the given tokens into an arena buffer (or a
// fresh matrix when sc is nil). The caller owns the result.
func (e *Embedding) Forward(sc *tensor.Scratch, tokens []int) *tensor.Matrix {
	out := sc.GetRaw(len(tokens), e.Table.Cols)
	for i, t := range tokens {
		copy(out.Row(i), e.Table.Row(t))
	}
	return out
}

// Backward scatter-adds dX into the token rows.
func (e *Embedding) Backward(tokens []int, dx *tensor.Matrix) {
	for i, t := range tokens {
		row := e.DTable.Row(t)
		for j, v := range dx.Row(i) {
			row[j] += v
		}
	}
}

// Head is the final RMSNorm plus LM projection and loss.
type Head struct {
	Norm, DNorm []float32
	W           Linear
}

func newHead(rng *rand.Rand, cfg Config) *Head {
	return &Head{Norm: ones(cfg.Hidden), DNorm: make([]float32, cfg.Hidden), W: newLinear(rng, cfg.Hidden, cfg.Vocab)}
}

// headSave retains the head's forward tensors for one slice.
type headSave struct {
	x, xn *tensor.Matrix
	inv   []float32
}

// HeadState is the per-micro-batch bookkeeping of the head (one save per
// slice start position). Reusable across samples via Reset.
type HeadState struct {
	saves map[int]*headSave
	pool  []*headSave
}

// NewHeadState returns an empty head state.
func NewHeadState() *HeadState { return &HeadState{saves: map[int]*headSave{}} }

// Reset drops any leftover saves so the state can serve the next sample.
func (st *HeadState) Reset() { clear(st.saves) }

// getSave recycles a headSave from the pool.
//
//mepipe:coldalloc pool miss builds one headSave per live slice; putSave recycles it, so steady state never misses
func (st *HeadState) getSave() *headSave {
	if n := len(st.pool); n > 0 {
		sv := st.pool[n-1]
		st.pool[n-1] = nil
		st.pool = st.pool[:n-1]
		return sv
	}
	return &headSave{}
}

func (st *HeadState) putSave(sv *headSave) {
	*sv = headSave{}
	st.pool = append(st.pool, sv)
}

// Forward computes logits and retains state under the given key (the
// slice's start position). The head takes ownership of x; the caller owns
// the returned logits.
func (h *Head) Forward(sc *tensor.Scratch, x *tensor.Matrix, st *HeadState, key int) *tensor.Matrix {
	sv := st.getSave()
	sv.x = x
	sv.xn = sc.GetRaw(x.Rows, x.Cols)
	sv.inv = tensor.RMSNorm(sv.xn, x, h.Norm, sc.GetVec(x.Rows))
	st.saves[key] = sv
	logits := sc.Get(x.Rows, h.W.W.Cols)
	sc.MatMul(logits, sv.xn, h.W.W)
	return logits
}

// Backward consumes dLogits for the slice saved under key (taking ownership
// of it), returning dX and the head's deferred weight-gradient task.
func (h *Head) Backward(sc *tensor.Scratch, dLogits *tensor.Matrix, st *HeadState, key int, tasks []WeightTask) (*tensor.Matrix, []WeightTask) {
	sv := st.saves[key]
	delete(st.saves, key)
	dXn := sc.Get(sv.xn.Rows, sv.xn.Cols)
	sc.MatMulBT(dXn, dLogits, h.W.W)
	tasks = append(tasks, WeightTask{lin: &h.W, x: sv.xn, dy: dLogits, freeX: true, freeDY: true})
	dX := sc.Get(sv.x.Rows, sv.x.Cols)
	tensor.RMSNormBackward(dX, h.DNorm, dXn, sv.x, h.Norm, sv.inv)
	sc.Put(dXn)
	sc.Put(sv.x)
	sc.PutVec(sv.inv)
	if sc != nil {
		// As with LayerState saves: snapshots share these pointers, so
		// only recycle when running with an arena (never under resilience).
		st.putSave(sv)
	}
	return dX, tasks
}

// Model is the full decoder.
type Model struct {
	Cfg    Config
	Embed  *Embedding
	Layers []*Layer
	Head   *Head
	// LeanActivations enables the recomputation technique (§2): forward
	// passes retain only each layer's slice input, and backward passes
	// replay the forward math to rebuild the rest. Gradients are
	// identical; memory drops to roughly the layer inputs plus KV cache.
	LeanActivations bool
}

// NewModel builds a model with deterministic weights from the seed.
func NewModel(cfg Config, seed int64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Model{Cfg: cfg, Embed: newEmbedding(rng, cfg)}
	for i := 0; i < cfg.Layers; i++ {
		m.Layers = append(m.Layers, newLayer(rng, cfg))
	}
	m.Head = newHead(rng, cfg)
	return m, nil
}

// ZeroGrads clears every gradient buffer.
func (m *Model) ZeroGrads() {
	m.Embed.DTable.Zero()
	for _, l := range m.Layers {
		for _, lin := range []*Linear{&l.Wq, &l.Wk, &l.Wv, &l.Wo, &l.Wg, &l.Wu, &l.Wd} {
			lin.DW.Zero()
		}
		for i := range l.DAttnNorm {
			l.DAttnNorm[i] = 0
			l.DMLPNorm[i] = 0
		}
	}
	m.Head.W.DW.Zero()
	for i := range m.Head.DNorm {
		m.Head.DNorm[i] = 0
	}
}

// Grads returns every gradient matrix with a stable name, for comparisons.
func (m *Model) Grads() map[string]*tensor.Matrix {
	out := map[string]*tensor.Matrix{"embed": m.Embed.DTable, "head.W": m.Head.W.DW}
	for i, l := range m.Layers {
		out[fmt.Sprintf("l%d.Wq", i)] = l.Wq.DW
		out[fmt.Sprintf("l%d.Wk", i)] = l.Wk.DW
		out[fmt.Sprintf("l%d.Wv", i)] = l.Wv.DW
		out[fmt.Sprintf("l%d.Wo", i)] = l.Wo.DW
		out[fmt.Sprintf("l%d.Wg", i)] = l.Wg.DW
		out[fmt.Sprintf("l%d.Wu", i)] = l.Wu.DW
		out[fmt.Sprintf("l%d.Wd", i)] = l.Wd.DW
	}
	return out
}

// SGDStep applies a plain gradient step to every parameter.
func (m *Model) SGDStep(lr float32) {
	step := func(w, dw *tensor.Matrix) {
		for i := range w.Data {
			w.Data[i] -= lr * dw.Data[i]
		}
	}
	stepVec := func(w, dw []float32) {
		for i := range w {
			w[i] -= lr * dw[i]
		}
	}
	step(m.Embed.Table, m.Embed.DTable)
	for _, l := range m.Layers {
		for _, lin := range []*Linear{&l.Wq, &l.Wk, &l.Wv, &l.Wo, &l.Wg, &l.Wu, &l.Wd} {
			step(lin.W, lin.DW)
		}
		stepVec(l.AttnNorm, l.DAttnNorm)
		stepVec(l.MLPNorm, l.DMLPNorm)
	}
	step(m.Head.W.W, m.Head.W.DW)
	stepVec(m.Head.Norm, m.Head.DNorm)
}

// GradClip returns the global L2 norm of all gradients (diagnostics).
func (m *Model) GradNorm() float64 {
	var ss float64
	for _, g := range m.Grads() {
		for _, v := range g.Data {
			ss += float64(v) * float64(v)
		}
	}
	return math.Sqrt(ss)
}

// TrainSequential runs one full iteration — forward and backward over every
// micro-batch, slice by slice, weight gradients computed inline — and
// returns the mean loss. It is the single-device reference the pipeline
// runtime is validated against. batch[i] is one sample of SeqLen+1 tokens
// (inputs plus next-token targets); slices is the sequence pipeline size.
//
// Each call builds a throwaway Trainer; callers stepping in a loop should
// hold a Trainer themselves to reuse its buffers across steps.
func (m *Model) TrainSequential(batch [][]int, slices int) (float64, error) {
	t := NewTrainer(m)
	defer t.Close()
	return t.Step(batch, slices)
}
