// Package nn implements a real (tiny) Llama-style decoder with manual
// forward and backward passes at slice granularity — the numeric substrate
// behind the executable pipeline runtime. It mirrors the structure the
// paper's scheduler exploits:
//
//   - forward processes a sample slice by slice, each slice appending its
//     keys/values to a per-micro-batch cache that later slices attend to
//     (Fig 3's dependency);
//   - backward runs slices in reverse, accumulating dK/dV contributions
//     from later slices into earlier ones;
//   - activation-gradient and weight-gradient computation are separable:
//     BackwardSlice produces dX and *stashes* the seven per-layer GEMMs
//     (Wq, Wk, Wv, Wo, gate, up, down) as WeightTasks that can run at any
//     later time, in any order — exactly the §5 decomposition.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"mepipe/internal/tensor"
)

// Config sizes the decoder.
type Config struct {
	Hidden, Heads, FFN, Vocab, Layers, SeqLen int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Hidden <= 0 || c.Heads <= 0 || c.FFN <= 0 || c.Vocab <= 0 || c.Layers <= 0 || c.SeqLen <= 0:
		return fmt.Errorf("nn: non-positive field in %+v", c)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("nn: hidden %d not divisible by %d heads", c.Hidden, c.Heads)
	}
	return nil
}

// Linear is a bias-free projection with separable weight gradients.
type Linear struct {
	W, DW *tensor.Matrix // [in×out]
}

func newLinear(rng *rand.Rand, in, out int) Linear {
	l := Linear{W: tensor.New(in, out), DW: tensor.New(in, out)}
	l.W.RandInit(rng, float32(1/math.Sqrt(float64(in))))
	return l
}

// Forward computes y = x·W.
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	y := tensor.New(x.Rows, l.W.Cols)
	tensor.MatMul(y, x, l.W)
	return y
}

// BackwardAct accumulates dx += dy·Wᵀ.
func (l *Linear) BackwardAct(dx, dy *tensor.Matrix) {
	tensor.MatMulBT(dx, dy, l.W)
}

// BackwardWeight accumulates DW += xᵀ·dy — the §5-deferrable GEMM.
func (l *Linear) BackwardWeight(x, dy *tensor.Matrix) {
	tensor.MatMulAT(l.DW, x, dy)
}

// WeightTask is one deferred weight-gradient GEMM.
type WeightTask struct {
	lin   *Linear
	x, dy *tensor.Matrix
}

// Run executes the deferred GEMM.
func (t WeightTask) Run() { t.lin.BackwardWeight(t.x, t.dy) }

// Layer is one transformer block.
type Layer struct {
	cfg Config

	AttnNorm, MLPNorm   []float32
	DAttnNorm, DMLPNorm []float32

	Wq, Wk, Wv, Wo Linear
	Wg, Wu, Wd     Linear
}

func newLayer(rng *rand.Rand, cfg Config) *Layer {
	h, f := cfg.Hidden, cfg.FFN
	l := &Layer{
		cfg:       cfg,
		AttnNorm:  ones(h),
		MLPNorm:   ones(h),
		DAttnNorm: make([]float32, h),
		DMLPNorm:  make([]float32, h),
		Wq:        newLinear(rng, h, h),
		Wk:        newLinear(rng, h, h),
		Wv:        newLinear(rng, h, h),
		Wo:        newLinear(rng, h, h),
		Wg:        newLinear(rng, h, f),
		Wu:        newLinear(rng, h, f),
		Wd:        newLinear(rng, f, h),
	}
	return l
}

func ones(n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// sliceSave holds everything a slice's backward needs.
type sliceSave struct {
	start      int // absolute position of the slice's first token
	xIn        *tensor.Matrix
	inv1, inv2 []float32
	xn1        *tensor.Matrix
	q          *tensor.Matrix
	probs      []*tensor.Matrix // per head, [t × cachedLen]
	ctx        *tensor.Matrix   // pre-Wo attention output
	xMid       *tensor.Matrix
	xn2        *tensor.Matrix
	g, u, act  *tensor.Matrix
}

// LayerState is the per-micro-batch runtime state of one layer: the KV
// cache grown by forward slices and the dK/dV accumulators filled by
// backward slices in reverse order.
type LayerState struct {
	K, V   *tensor.Matrix // [cachedTokens × hidden]
	dK, dV *tensor.Matrix
	saves  map[int]*sliceSave // by slice start position
}

// NewLayerState returns an empty state for one micro-batch.
func NewLayerState(cfg Config) *LayerState {
	return &LayerState{
		K: tensor.New(0, cfg.Hidden), V: tensor.New(0, cfg.Hidden),
		saves: map[int]*sliceSave{},
	}
}

func appendRows(dst, rows *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(dst.Rows+rows.Rows, rows.Cols)
	copy(out.Data, dst.Data)
	copy(out.Data[len(dst.Data):], rows.Data)
	return out
}

// ForwardSlice runs one slice of tokens (x: [t×hidden], first token at
// absolute position start) through the layer, growing the KV cache. With
// lean set, only the slice input is retained — the recomputation technique
// (§2): the backward pass rebuilds the intermediates from xIn and the KV
// cache at the cost of replaying the forward math.
func (l *Layer) ForwardSlice(st *LayerState, x *tensor.Matrix, start int) *tensor.Matrix {
	return l.forwardSlice(st, x, start, false)
}

// ForwardSliceLean is ForwardSlice under activation recomputation.
func (l *Layer) ForwardSliceLean(st *LayerState, x *tensor.Matrix, start int) *tensor.Matrix {
	return l.forwardSlice(st, x, start, true)
}

func (l *Layer) forwardSlice(st *LayerState, x *tensor.Matrix, start int, lean bool) *tensor.Matrix {
	if st.K.Rows != start {
		panic(fmt.Sprintf("nn: slice at %d but cache holds %d tokens (slices must arrive in order)", start, st.K.Rows))
	}
	sv := &sliceSave{start: start, xIn: x.Clone()}
	// Project and append this slice's keys/values; later slices need them
	// regardless of recomputation.
	xn1 := tensor.New(x.Rows, l.cfg.Hidden)
	inv1 := tensor.RMSNorm(xn1, x, l.AttnNorm)
	st.K = appendRows(st.K, l.Wk.Forward(xn1))
	st.V = appendRows(st.V, l.Wv.Forward(xn1))
	y := l.computeSlice(st, sv, xn1, inv1)
	if lean {
		// Drop everything but the input; BackwardSlice rebuilds it.
		*sv = sliceSave{start: start, xIn: sv.xIn}
	}
	st.saves[start] = sv
	return y
}

// computeSlice runs attention and the MLP for the slice described by sv
// (whose xIn is set and whose K/V rows are already in the cache up to
// start+t), filling the save and returning the layer output.
func (l *Layer) computeSlice(st *LayerState, sv *sliceSave, xn1 *tensor.Matrix, inv1 []float32) *tensor.Matrix {
	h := l.cfg.Hidden
	nh := l.cfg.Heads
	hd := h / nh
	t := sv.xIn.Rows
	cached := sv.start + t

	sv.xn1, sv.inv1 = xn1, inv1
	sv.q = l.Wq.Forward(sv.xn1)
	kAll := rowsView(st.K, 0, cached)
	vAll := rowsView(st.V, 0, cached)

	// Per-head causal attention against the cache as of this slice.
	sv.ctx = tensor.New(t, h)
	sv.probs = make([]*tensor.Matrix, nh)
	scale := float32(1 / math.Sqrt(float64(hd)))
	for hI := 0; hI < nh; hI++ {
		qh := headView(sv.q, hI, hd)
		kh := headView(kAll, hI, hd)
		vh := headView(vAll, hI, hd)
		scores := tensor.New(t, cached)
		tensor.MatMulBT(scores, qh, kh)
		scores.Scale(scale)
		tensor.SoftmaxRowsCausal(scores, sv.start)
		sv.probs[hI] = scores
		ctxh := tensor.New(t, hd)
		tensor.MatMul(ctxh, scores, vh)
		writeHead(sv.ctx, ctxh, hI, hd)
	}
	attnOut := l.Wo.Forward(sv.ctx)

	sv.xMid = sv.xIn.Clone()
	sv.xMid.Add(attnOut)

	sv.xn2 = tensor.New(t, h)
	sv.inv2 = tensor.RMSNorm(sv.xn2, sv.xMid, l.MLPNorm)
	sv.g = l.Wg.Forward(sv.xn2)
	sv.u = l.Wu.Forward(sv.xn2)
	sv.act = tensor.New(t, l.cfg.FFN)
	tensor.SiLU(sv.act, sv.g)
	tensor.Mul(sv.act, sv.act, sv.u)
	mlpOut := l.Wd.Forward(sv.act)

	y := sv.xMid.Clone()
	y.Add(mlpOut)
	return y
}

// headView copies head hI's columns out of a [rows×hidden] matrix.
func headView(m *tensor.Matrix, hI, hd int) *tensor.Matrix {
	out := tensor.New(m.Rows, hd)
	for r := 0; r < m.Rows; r++ {
		copy(out.Row(r), m.Row(r)[hI*hd:(hI+1)*hd])
	}
	return out
}

// writeHead copies a [rows×hd] block into head hI's columns (overwriting).
func writeHead(dst, src *tensor.Matrix, hI, hd int) {
	for r := 0; r < src.Rows; r++ {
		copy(dst.Row(r)[hI*hd:(hI+1)*hd], src.Row(r))
	}
}

// addHead accumulates a [rows×hd] block into head hI's columns of dst,
// starting at dst row rowOff.
func addHead(dst, src *tensor.Matrix, rowOff, hI, hd int) {
	for r := 0; r < src.Rows; r++ {
		drow := dst.Row(rowOff + r)[hI*hd : (hI+1)*hd]
		srow := src.Row(r)
		for c := range srow {
			drow[c] += srow[c]
		}
	}
}

// BackwardSlice consumes dY for the slice that starts at `start`, returning
// dX and appending the layer's seven deferred weight-gradient GEMMs to
// tasks. Slices MUST be processed in reverse order: the dK/dV contributions
// of later slices land in the state's accumulators before earlier slices
// read their own rows.
func (l *Layer) BackwardSlice(st *LayerState, start int, dy *tensor.Matrix, tasks []WeightTask) (*tensor.Matrix, []WeightTask) {
	sv, ok := st.saves[start]
	if !ok {
		panic(fmt.Sprintf("nn: backward for unseen slice at %d", start))
	}
	delete(st.saves, start)
	if sv.q == nil {
		// Lean forward: replay the forward math to rebuild the
		// intermediates (identical inputs, identical results).
		xn1 := tensor.New(sv.xIn.Rows, l.cfg.Hidden)
		inv1 := tensor.RMSNorm(xn1, sv.xIn, l.AttnNorm)
		l.computeSlice(st, sv, xn1, inv1)
	}
	h, nh := l.cfg.Hidden, l.cfg.Heads
	hd := h / nh
	t := dy.Rows
	if st.dK == nil {
		st.dK = tensor.New(st.K.Rows, h)
		st.dV = tensor.New(st.V.Rows, h)
	}

	// MLP backward. y = xMid + Wd(silu(Wg xn2) ⊙ Wu xn2).
	dXmid := dy.Clone()
	dAct := tensor.New(t, l.cfg.FFN)
	l.Wd.BackwardAct(dAct, dy)
	tasks = append(tasks, WeightTask{&l.Wd, sv.act, dy.Clone()})
	// act = silu(g) ⊙ u
	dG := tensor.New(t, l.cfg.FFN)
	siluG := tensor.New(t, l.cfg.FFN)
	tensor.SiLU(siluG, sv.g)
	dU := tensor.New(t, l.cfg.FFN)
	tensor.MulAdd(dU, dAct, siluG)
	dActSilu := tensor.New(t, l.cfg.FFN)
	tensor.Mul(dActSilu, dAct, sv.u)
	tensor.SiLUBackward(dG, dActSilu, sv.g)
	dXn2 := tensor.New(t, h)
	l.Wg.BackwardAct(dXn2, dG)
	l.Wu.BackwardAct(dXn2, dU)
	tasks = append(tasks, WeightTask{&l.Wg, sv.xn2, dG})
	tasks = append(tasks, WeightTask{&l.Wu, sv.xn2, dU})
	tensor.RMSNormBackward(dXmid, l.DMLPNorm, dXn2, sv.xMid, l.MLPNorm, sv.inv2)

	// Attention backward. xMid = xIn + Wo·ctx.
	dCtx := tensor.New(t, h)
	l.Wo.BackwardAct(dCtx, dXmid)
	tasks = append(tasks, WeightTask{&l.Wo, sv.ctx, dXmid.Clone()})
	dQ := tensor.New(t, h)
	// The slice attended to the cache as it stood at its forward pass —
	// exactly `cached` tokens — so the K/V views must be truncated even
	// though later slices have grown the cache since.
	cached := sv.probs[0].Cols
	scale := float32(1 / math.Sqrt(float64(hd)))
	for hI := 0; hI < nh; hI++ {
		dCtxh := headView(dCtx, hI, hd)
		probs := sv.probs[hI]
		kh := headView(rowsView(st.K, 0, cached), hI, hd)
		vh := headView(rowsView(st.V, 0, cached), hI, hd)
		// dV_cache += probsᵀ · dCtxh
		dVh := tensor.New(cached, hd)
		tensor.MatMulAT(dVh, probs, dCtxh)
		addHead(st.dV, dVh, 0, hI, hd)
		// dProbs = dCtxh · Vᵀ, then softmax backward in place.
		dProbs := tensor.New(t, cached)
		tensor.MatMulBT(dProbs, dCtxh, vh)
		tensor.SoftmaxBackwardCausal(dProbs, probs, sv.start)
		// dQ_h += dScores · K · scale; dK_cache += dScoresᵀ · Q · scale.
		dQh := tensor.New(t, hd)
		tensor.MatMul(dQh, dProbs, kh)
		dQh.Scale(scale)
		writeHead(dQ, dQh, hI, hd)
		qh := headView(sv.q, hI, hd)
		dKh := tensor.New(cached, hd)
		tensor.MatMulAT(dKh, dProbs, qh)
		dKh.Scale(scale)
		addHead(st.dK, dKh, 0, hI, hd)
	}

	// The slice's own K/V rows now hold every contribution (this slice's
	// plus all later slices'); project them back.
	dKslice := rowsView(st.dK, sv.start, t)
	dVslice := rowsView(st.dV, sv.start, t)
	dXn1 := tensor.New(t, h)
	l.Wq.BackwardAct(dXn1, dQ)
	l.Wk.BackwardAct(dXn1, dKslice)
	l.Wv.BackwardAct(dXn1, dVslice)
	tasks = append(tasks, WeightTask{&l.Wq, sv.xn1, dQ})
	tasks = append(tasks, WeightTask{&l.Wk, sv.xn1, dKslice})
	tasks = append(tasks, WeightTask{&l.Wv, sv.xn1, dVslice})

	dX := dXmid.Clone()
	tensor.RMSNormBackward(dX, l.DAttnNorm, dXn1, sv.xIn, l.AttnNorm, sv.inv1)
	return dX, tasks
}

// rowsView copies rows [off, off+n) into a fresh matrix.
func rowsView(m *tensor.Matrix, off, n int) *tensor.Matrix {
	out := tensor.New(n, m.Cols)
	copy(out.Data, m.Data[off*m.Cols:(off+n)*m.Cols])
	return out
}

// WeightGradGEMMs is the per-layer fine-grained decomposition width
// (matching model.WeightGradGEMMsPerLayer).
const WeightGradGEMMs = 7
